package dt

import (
	"math/rand"
	"testing"
)

func TestCityBlockSinglePoint(t *testing.T) {
	const n = 5
	fg := make([]bool, n*n)
	fg[2*n+2] = true // center
	r, err := CityBlock(n, fg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < n; row++ {
		for c := 0; c < n; c++ {
			want := int64(abs(row-2) + abs(c-2))
			if r.Dist[row*n+c] != want {
				t.Errorf("dist[%d,%d] = %d, want %d", row, c, r.Dist[row*n+c], want)
			}
		}
	}
	// The four direction sweeps within a round chain (Gauss-Seidel), so
	// distance-4 information arrives in 2 productive rounds + 1 detecting.
	if r.Rounds < 2 || r.Rounds > 5 {
		t.Errorf("Rounds = %d, want within [2,5]", r.Rounds)
	}
	if r.Metrics.ShiftSteps == 0 || r.Metrics.BusCycles != 0 {
		t.Errorf("unexpected cost profile: %v", r.Metrics)
	}
}

func TestCityBlockNoWrapAround(t *testing.T) {
	// A single point in the corner: the opposite corner must be at
	// distance 2(n-1), not 0 — shifts must not leak around the torus.
	const n = 6
	fg := make([]bool, n*n)
	fg[0] = true
	r, err := CityBlock(n, fg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Dist[n*n-1], int64(2*(n-1)); got != want {
		t.Errorf("far corner = %d, want %d (torus wrap leaked?)", got, want)
	}
	if r.Dist[n-1] != int64(n-1) {
		t.Errorf("top-right corner = %d, want %d", r.Dist[n-1], n-1)
	}
}

func TestCityBlockMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		fg := make([]bool, n*n)
		any := false
		for i := range fg {
			fg[i] = rng.Float64() < 0.15
			any = any || fg[i]
		}
		if !any {
			fg[rng.Intn(n*n)] = true
		}
		r, err := CityBlock(n, fg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := ReferenceCityBlock(n, fg, r.Inf)
		for i := range want {
			if r.Dist[i] != want[i] {
				t.Fatalf("trial %d n=%d pixel %d: %d, want %d", trial, n, i, r.Dist[i], want[i])
			}
		}
	}
}

func TestCityBlockEmptyImage(t *testing.T) {
	const n = 4
	r, err := CityBlock(n, make([]bool, n*n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range r.Dist {
		if d != r.Inf {
			t.Errorf("pixel %d = %d, want Inf on empty image", i, d)
		}
	}
	if r.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", r.Rounds)
	}
}

func TestCityBlockAllForeground(t *testing.T) {
	const n = 3
	fg := make([]bool, n*n)
	for i := range fg {
		fg[i] = true
	}
	r, err := CityBlock(n, fg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range r.Dist {
		if d != 0 {
			t.Errorf("pixel %d = %d, want 0", i, d)
		}
	}
}

func TestCityBlockErrors(t *testing.T) {
	if _, err := CityBlock(0, nil, Options{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := CityBlock(3, make([]bool, 4), Options{}); err == nil {
		t.Error("wrong image size accepted")
	}
	if _, err := CityBlock(3, make([]bool, 9), Options{Bits: 63}); err == nil {
		t.Error("oversized Bits accepted")
	}
	if _, err := CityBlock(16, make([]bool, 256), Options{Bits: 4}); err == nil {
		t.Error("too-narrow Bits accepted (max distance 30 needs > 4 bits)")
	}
}

func TestCityBlockWorkersDeterminism(t *testing.T) {
	const n = 9
	rng := rand.New(rand.NewSource(2))
	fg := make([]bool, n*n)
	for i := range fg {
		fg[i] = rng.Float64() < 0.1
	}
	fg[0] = true
	a, err := CityBlock(n, fg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CityBlock(n, fg, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Dist {
		if a.Dist[i] != b.Dist[i] {
			t.Fatal("worker pool changed distances")
		}
	}
	if a.Metrics != b.Metrics {
		t.Error("worker pool changed metrics")
	}
}

func TestBitsFor(t *testing.T) {
	// n=5: max distance 8, need 2^h-1 > 9 -> h=4.
	if got := bitsFor(5); got != 4 {
		t.Errorf("bitsFor(5) = %d, want 4", got)
	}
	if got := bitsFor(1); got < 1 {
		t.Errorf("bitsFor(1) = %d", got)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
