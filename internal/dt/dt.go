// Package dt implements the city-block distance transform on the PPA —
// the image-processing companion workload of the paper's research line
// (the PPC communication primitives are introduced there as the ones
// "used to implement the EDT algorithm"). Each pixel of a binary image
// obtains its L1 distance to the nearest foreground pixel by iterative
// four-neighbour relaxation with shift operations, terminating through
// the global-OR line — a second, shift-dominated algorithm over the same
// machine and programming layer as the MCP solver.
package dt

import (
	"fmt"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// Options tunes CityBlock.
type Options struct {
	// Bits is the word width (0 = smallest that represents the maximum
	// possible distance 2(n-1)).
	Bits uint
	// Workers fans the simulator's ring operations out over goroutines.
	Workers int
}

// Result is the computed distance field plus cost accounting.
type Result struct {
	// N is the image side.
	N int
	// Dist is row-major; pixels that cannot reach any foreground pixel
	// (i.e. an image with no foreground at all) hold Inf.
	Dist []int64
	// Inf is the MAXINT sentinel used.
	Inf int64
	// Rounds is the number of relaxation rounds (the maximum distance,
	// plus the detecting round).
	Rounds  int
	Metrics ppa.Metrics
	Bits    uint
}

// bitsFor returns the smallest h whose MAXINT exceeds the largest
// possible city-block distance on an n x n image.
func bitsFor(n int) uint {
	bound := int64(2*(n-1)) + 1
	h := uint(1)
	for int64(1)<<h-1 <= bound {
		h++
	}
	return h
}

// CityBlock computes the L1 distance transform of the n x n binary image
// foreground (true = foreground pixel, distance 0). Image edges do not
// wrap: the torus shifts are masked at the boundary. The four direction
// sweeps within one round run sequentially and therefore chain
// (Gauss-Seidel), so convergence typically takes far fewer rounds than
// the maximum distance.
func CityBlock(n int, foreground []bool, opt Options) (*Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("dt: image side %d < 1", n)
	}
	if len(foreground) != n*n {
		return nil, fmt.Errorf("dt: image has %d pixels, want %d", len(foreground), n*n)
	}
	h := opt.Bits
	if h == 0 {
		h = bitsFor(n)
	}
	if h > ppa.MaxBits {
		return nil, fmt.Errorf("dt: word width %d exceeds %d bits", h, ppa.MaxBits)
	}
	inf := ppa.Infinity(h)
	if int64(2*(n-1)) >= int64(inf) {
		return nil, fmt.Errorf("dt: %d-bit words cannot hold distances up to %d", h, 2*(n-1))
	}

	var mopts []ppa.Option
	if opt.Workers > 1 {
		mopts = append(mopts, ppa.WithWorkers(opt.Workers))
	}
	m := ppa.New(n, h, mopts...)
	a := par.New(m)

	dist := a.Inf()
	a.Where(a.FromBools(foreground), func() {
		dist.AssignConst(0)
	})

	// Wrap guards: the lane that receives a wrapped value for each shift
	// direction. Shifting East delivers col n-1's values to col 0, etc.
	row, col := a.Row(), a.Col()
	wrapGuard := map[ppa.Direction]*par.Bool{
		ppa.East:  col.EqConst(0),
		ppa.West:  col.EqConst(ppa.Word(n - 1)),
		ppa.South: row.EqConst(0),
		ppa.North: row.EqConst(ppa.Word(n - 1)),
	}
	dirs := []ppa.Direction{ppa.East, ppa.West, ppa.South, ppa.North}

	rounds := 0
	old := a.Zeros()
	for {
		rounds++
		if rounds > 2*n {
			return nil, fmt.Errorf("dt: did not converge within %d rounds", 2*n)
		}
		old.Assign(dist)
		for _, d := range dirs {
			cand := a.Shift(dist, d).AddSatConst(1)
			a.Where(wrapGuard[d], func() {
				cand.AssignConst(inf)
			})
			dist.Assign(dist.MinWith(cand))
		}
		if a.None(dist.Ne(old)) {
			break
		}
	}

	res := &Result{
		N:       n,
		Dist:    make([]int64, n*n),
		Inf:     int64(inf),
		Rounds:  rounds,
		Metrics: m.Metrics(),
		Bits:    h,
	}
	for i, w := range dist.Slice() {
		res.Dist[i] = int64(w)
	}
	return res, nil
}

// ReferenceCityBlock is the host-side multi-source BFS the PPA result is
// validated against.
func ReferenceCityBlock(n int, foreground []bool, inf int64) []int64 {
	dist := make([]int64, n*n)
	queue := make([]int, 0, n*n)
	for i := range dist {
		if foreground[i] {
			dist[i] = 0
			queue = append(queue, i)
		} else {
			dist[i] = inf
		}
	}
	for head := 0; head < len(queue); head++ {
		p := queue[head]
		r, c := p/n, p%n
		for _, d := range [][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
			nr, nc := r+d[0], c+d[1]
			if nr < 0 || nr >= n || nc < 0 || nc >= n {
				continue
			}
			q := nr*n + nc
			if dist[q] > dist[p]+1 {
				dist[q] = dist[p] + 1
				queue = append(queue, q)
			}
		}
	}
	return dist
}
