package ppclang

import (
	"fmt"

	"ppamcp/internal/ppa"
)

// builtinFn evaluates a builtin call.
type builtinFn func(in *Interp, ex *Call, sc *scope) (Value, error)

// builtins is the PPC standard library: the communication primitives of
// the paper plus the controller helpers needed to express it.
var builtins map[string]builtinFn

func init() {
	builtins = map[string]builtinFn{
		"shift":        builtinShift,
		"broadcast":    builtinBroadcast,
		"min":          builtinMin,
		"max":          builtinMax,
		"selected_min": builtinSelectedMin,
		"selected_max": builtinSelectedMax,
		"or":           builtinOr,
		"bit":          builtinBit,
		"any":          builtinAny,
		"opposite":     builtinOpposite,
		"print":        builtinPrint,
	}
}

func (in *Interp) argValues(ex *Call, sc *scope, want int) ([]Value, error) {
	if len(ex.Args) != want {
		return nil, errAt(ex.Pos, "%s expects %d arguments, got %d", ex.Name, want, len(ex.Args))
	}
	vals := make([]Value, want)
	for k, a := range ex.Args {
		v, err := in.eval(a, sc)
		if err != nil {
			return nil, err
		}
		vals[k] = v
	}
	return vals, nil
}

func asDirection(pos Pos, v Value) (ppa.Direction, error) {
	s, err := asScalarInt(pos, v)
	if err != nil {
		return 0, err
	}
	if s < 0 || s > 3 {
		return 0, errAt(pos, "direction must be NORTH, EAST, SOUTH or WEST (got %d)", s)
	}
	return ppa.Direction(s), nil
}

// builtinShift implements shift(src, dir): nearest-neighbour data movement.
func builtinShift(in *Interp, ex *Call, sc *scope) (Value, error) {
	vals, err := in.argValues(ex, sc, 2)
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(ex.Args[1].nodePos(), vals[1])
	if err != nil {
		return Value{}, err
	}
	if vals[0].T.Parallel && vals[0].T.Base == BaseLogical {
		return parallelBool(in.arr.ShiftBool(vals[0].PBool, dir)), nil
	}
	src, err := asParallelInt(ex.Args[0].nodePos(), in.arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	return parallelInt(in.arr.Shift(src, dir)), nil
}

// builtinBroadcast implements broadcast(src, dir, L): segmented-bus
// delivery from the Open PEs designated by L.
func builtinBroadcast(in *Interp, ex *Call, sc *scope) (Value, error) {
	vals, err := in.argValues(ex, sc, 3)
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(ex.Args[1].nodePos(), vals[1])
	if err != nil {
		return Value{}, err
	}
	open, err := asParallelBool(ex.Args[2].nodePos(), in.arr, vals[2])
	if err != nil {
		return Value{}, err
	}
	if vals[0].T.Parallel && vals[0].T.Base == BaseLogical {
		return parallelBool(in.arr.BroadcastBool(vals[0].PBool, dir, open)), nil
	}
	src, err := asParallelInt(ex.Args[0].nodePos(), in.arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	return parallelInt(in.arr.Broadcast(src, dir, open)), nil
}

// builtinMin implements min(src, dir, L): the bit-serial cluster minimum.
func builtinMin(in *Interp, ex *Call, sc *scope) (Value, error) {
	vals, err := in.argValues(ex, sc, 3)
	if err != nil {
		return Value{}, err
	}
	src, err := asParallelInt(ex.Args[0].nodePos(), in.arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(ex.Args[1].nodePos(), vals[1])
	if err != nil {
		return Value{}, err
	}
	open, err := asParallelBool(ex.Args[2].nodePos(), in.arr, vals[2])
	if err != nil {
		return Value{}, err
	}
	return parallelInt(in.arr.Min(src, dir, open)), nil
}

// builtinMax implements max(src, dir, L): the bit-serial cluster maximum
// (not used by the paper's listings; part of the natural primitive set).
func builtinMax(in *Interp, ex *Call, sc *scope) (Value, error) {
	vals, err := in.argValues(ex, sc, 3)
	if err != nil {
		return Value{}, err
	}
	src, err := asParallelInt(ex.Args[0].nodePos(), in.arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(ex.Args[1].nodePos(), vals[1])
	if err != nil {
		return Value{}, err
	}
	open, err := asParallelBool(ex.Args[2].nodePos(), in.arr, vals[2])
	if err != nil {
		return Value{}, err
	}
	return parallelInt(in.arr.Max(src, dir, open)), nil
}

// builtinSelectedMax implements selected_max(src, dir, L, sel).
func builtinSelectedMax(in *Interp, ex *Call, sc *scope) (Value, error) {
	vals, err := in.argValues(ex, sc, 4)
	if err != nil {
		return Value{}, err
	}
	src, err := asParallelInt(ex.Args[0].nodePos(), in.arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(ex.Args[1].nodePos(), vals[1])
	if err != nil {
		return Value{}, err
	}
	open, err := asParallelBool(ex.Args[2].nodePos(), in.arr, vals[2])
	if err != nil {
		return Value{}, err
	}
	sel, err := asParallelBool(ex.Args[3].nodePos(), in.arr, vals[3])
	if err != nil {
		return Value{}, err
	}
	return parallelInt(in.arr.SelectedMax(src, dir, open, sel)), nil
}

// builtinSelectedMin implements selected_min(src, dir, L, sel).
func builtinSelectedMin(in *Interp, ex *Call, sc *scope) (Value, error) {
	vals, err := in.argValues(ex, sc, 4)
	if err != nil {
		return Value{}, err
	}
	src, err := asParallelInt(ex.Args[0].nodePos(), in.arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(ex.Args[1].nodePos(), vals[1])
	if err != nil {
		return Value{}, err
	}
	open, err := asParallelBool(ex.Args[2].nodePos(), in.arr, vals[2])
	if err != nil {
		return Value{}, err
	}
	sel, err := asParallelBool(ex.Args[3].nodePos(), in.arr, vals[3])
	if err != nil {
		return Value{}, err
	}
	return parallelInt(in.arr.SelectedMin(src, dir, open, sel)), nil
}

// builtinOr implements or(x, dir, L): the wired-OR over bus clusters.
func builtinOr(in *Interp, ex *Call, sc *scope) (Value, error) {
	vals, err := in.argValues(ex, sc, 3)
	if err != nil {
		return Value{}, err
	}
	x, err := asParallelBool(ex.Args[0].nodePos(), in.arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(ex.Args[1].nodePos(), vals[1])
	if err != nil {
		return Value{}, err
	}
	open, err := asParallelBool(ex.Args[2].nodePos(), in.arr, vals[2])
	if err != nil {
		return Value{}, err
	}
	return parallelBool(in.arr.Or(x, dir, open)), nil
}

// builtinBit implements bit(x, j): the j-th bit plane of x.
func builtinBit(in *Interp, ex *Call, sc *scope) (Value, error) {
	vals, err := in.argValues(ex, sc, 2)
	if err != nil {
		return Value{}, err
	}
	x, err := asParallelInt(ex.Args[0].nodePos(), in.arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	j, err := asScalarInt(ex.Args[1].nodePos(), vals[1])
	if err != nil {
		return Value{}, err
	}
	if j < 0 || uint(j) >= in.arr.Machine().Bits() {
		return Value{}, errAt(ex.Pos, "bit plane %d out of range [0,%d)", j, in.arr.Machine().Bits())
	}
	return parallelBool(x.BitPlane(uint(j))), nil
}

// builtinAny implements any(L): the global-OR line to the controller.
func builtinAny(in *Interp, ex *Call, sc *scope) (Value, error) {
	vals, err := in.argValues(ex, sc, 1)
	if err != nil {
		return Value{}, err
	}
	b, err := asParallelBool(ex.Args[0].nodePos(), in.arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	return scalarBool(in.arr.Any(b)), nil
}

// builtinOpposite implements opposite(dir).
func builtinOpposite(in *Interp, ex *Call, sc *scope) (Value, error) {
	vals, err := in.argValues(ex, sc, 1)
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(ex.Args[0].nodePos(), vals[0])
	if err != nil {
		return Value{}, err
	}
	return scalarInt(int64(dir.Opposite())), nil
}

// builtinPrint implements print(args...): scalars print as numbers,
// parallel values as N x N grids (MAXINT as "inf"). A debugging aid for
// cmd/ppcrun; output goes to the interpreter's configured writer.
func builtinPrint(in *Interp, ex *Call, sc *scope) (Value, error) {
	for k, a := range ex.Args {
		v, err := in.eval(a, sc)
		if err != nil {
			return Value{}, err
		}
		if k > 0 {
			fmt.Fprint(in.out, " ")
		}
		if err := in.printValue(v); err != nil {
			return Value{}, err
		}
	}
	fmt.Fprintln(in.out)
	return voidValue(), nil
}

func (in *Interp) printValue(v Value) error {
	n := in.arr.N()
	inf := in.arr.Machine().Inf()
	switch {
	case !v.T.Parallel:
		_, err := fmt.Fprint(in.out, v.String())
		return err
	case v.T.Base == BaseInt:
		fmt.Fprintln(in.out)
		data := v.PInt.Slice()
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if c > 0 {
					fmt.Fprint(in.out, " ")
				}
				if w := data[r*n+c]; w == inf {
					fmt.Fprint(in.out, "inf")
				} else {
					fmt.Fprintf(in.out, "%d", w)
				}
			}
			fmt.Fprintln(in.out)
		}
		return nil
	default:
		fmt.Fprintln(in.out)
		data := v.PBool.Slice()
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if c > 0 {
					fmt.Fprint(in.out, " ")
				}
				if data[r*n+c] {
					fmt.Fprint(in.out, "1")
				} else {
					fmt.Fprint(in.out, "0")
				}
			}
			fmt.Fprintln(in.out)
		}
		return nil
	}
}
