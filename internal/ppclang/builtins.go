package ppclang

import (
	"fmt"
)

// builtinFn evaluates a builtin call in the tree-walker. The semantic
// bodies live in semantics.go (builtinTable) so the bytecode VM applies
// the exact same argument conversions and par.Array primitives; this file
// only adapts them to the interpreter's eval loop.
type builtinFn func(in *Interp, ex *Call, sc *scope) (Value, error)

// builtins is the PPC standard library: the communication primitives of
// the paper plus the controller helpers needed to express it.
var builtins map[string]builtinFn

func init() {
	builtins = make(map[string]builtinFn, len(builtinTable)+1)
	for _, b := range builtinTable {
		impl := b.impl
		builtins[b.name] = func(in *Interp, ex *Call, sc *scope) (Value, error) {
			vals, err := in.argValues(ex, sc, impl.arity)
			if err != nil {
				return Value{}, err
			}
			argPos := make([]Pos, len(ex.Args))
			for k, a := range ex.Args {
				argPos[k] = a.nodePos()
			}
			return impl.apply(in.arr, ex.Pos, argPos, vals)
		}
	}
	builtins["print"] = builtinPrint
}

func (in *Interp) argValues(ex *Call, sc *scope, want int) ([]Value, error) {
	if len(ex.Args) != want {
		return nil, errAt(ex.Pos, "%s expects %d arguments, got %d", ex.Name, want, len(ex.Args))
	}
	vals := make([]Value, want)
	for k, a := range ex.Args {
		v, err := in.eval(a, sc)
		if err != nil {
			return nil, err
		}
		vals[k] = v
	}
	return vals, nil
}

// builtinPrint implements print(args...): scalars print as numbers,
// parallel values as N x N grids (MAXINT as "inf"). A debugging aid for
// cmd/ppcrun; output goes to the interpreter's configured writer. The
// arguments are evaluated and printed interleaved, so a mid-list error
// leaves the earlier arguments already printed (the VM mirrors this).
func builtinPrint(in *Interp, ex *Call, sc *scope) (Value, error) {
	for k, a := range ex.Args {
		v, err := in.eval(a, sc)
		if err != nil {
			return Value{}, err
		}
		if k > 0 {
			fmt.Fprint(in.cfg.out, " ")
		}
		if err := printValue(in.cfg.out, in.arr, v); err != nil {
			return Value{}, err
		}
	}
	fmt.Fprintln(in.cfg.out)
	return voidValue(), nil
}
