package ppclang

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ppamcp/internal/graph"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// The bytecode VM's contract is byte-identical behaviour with the
// tree-walking oracle: same outputs, same errors (string and position),
// same ppa.Metrics, under success, runtime errors, and fuel/deadline
// budgets. These tests enforce the contract differentially.

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// valueRepr renders a Value for comparison (parallel values by content).
func valueRepr(v Value) string {
	switch {
	case v.T.Parallel && v.T.Base == BaseInt:
		return fmt.Sprintf("%s %v", v.T, v.PInt.Slice())
	case v.T.Parallel && v.T.Base == BaseLogical:
		return fmt.Sprintf("%s %v", v.T, v.PBool.Slice())
	default:
		return v.T.String() + " " + v.String()
	}
}

type diffSide struct {
	m    *ppa.Machine
	arr  *par.Array
	out  *strings.Builder
	ex   Executor
	cerr error
}

func newDiffSide(prog *Program, n int, h uint, reference bool, opts []Option) *diffSide {
	s := &diffSide{m: ppa.New(n, h), out: &strings.Builder{}}
	s.arr = par.New(s.m)
	all := append([]Option{WithOutput(s.out), WithReference(reference)}, opts...)
	s.ex, s.cerr = NewExecutor(prog, s.arr, all...)
	return s
}

// diffProgram runs src on both executors (fresh machines) and fails on any
// divergence in construction errors, call results/errors, print output,
// metrics, or readable globals. setup binds inputs on both sides; entries
// are called in order. Returns the oracle side for extra assertions.
func diffProgram(t *testing.T, src string, n int, h uint, opts []Option, setup func(Executor) error, entries ...string) *diffSide {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	oracle := newDiffSide(prog, n, h, true, opts)
	vm := newDiffSide(prog, n, h, false, opts)
	if errString(oracle.cerr) != errString(vm.cerr) {
		t.Fatalf("construction diverged:\noracle: %v\nvm:     %v", oracle.cerr, vm.cerr)
	}
	if om, vmm := oracle.m.Metrics(), vm.m.Metrics(); om != vmm {
		t.Fatalf("init metrics diverged:\noracle: %+v\nvm:     %+v", om, vmm)
	}
	if oracle.cerr != nil {
		return oracle
	}
	if setup != nil {
		if err := setup(oracle.ex); err != nil {
			t.Fatalf("setup oracle: %v", err)
		}
		if err := setup(vm.ex); err != nil {
			t.Fatalf("setup vm: %v", err)
		}
	}
	for _, entry := range entries {
		ov, oerr := oracle.ex.Call(entry)
		vv, verr := vm.ex.Call(entry)
		if errString(oerr) != errString(verr) {
			t.Fatalf("Call(%q) errors diverged:\noracle: %v\nvm:     %v", entry, oerr, verr)
		}
		if oerr == nil && valueRepr(ov) != valueRepr(vv) {
			t.Fatalf("Call(%q) results diverged:\noracle: %s\nvm:     %s", entry, valueRepr(ov), valueRepr(vv))
		}
		if om, vmm := oracle.m.Metrics(), vm.m.Metrics(); om != vmm {
			t.Fatalf("metrics diverged after Call(%q):\noracle: %+v\nvm:     %+v", entry, om, vmm)
		}
		if oracle.out.String() != vm.out.String() {
			t.Fatalf("output diverged after Call(%q):\noracle: %q\nvm:     %q", entry, oracle.out.String(), vm.out.String())
		}
	}
	diffGlobals(t, prog, oracle.ex, vm.ex)
	return oracle
}

// diffGlobals compares every host-readable program global across paths.
func diffGlobals(t *testing.T, prog *Program, a, b Executor) {
	t.Helper()
	for _, d := range prog.Globals {
		for _, name := range d.Names {
			switch {
			case d.Type.Parallel && d.Type.Base == BaseInt:
				av, ae := a.GetParallelInt(name)
				bv, be := b.GetParallelInt(name)
				if errString(ae) != errString(be) || fmt.Sprint(av) != fmt.Sprint(bv) {
					t.Fatalf("global %q diverged: %v/%v vs %v/%v", name, av, ae, bv, be)
				}
			case d.Type.Parallel && d.Type.Base == BaseLogical:
				av, ae := a.GetParallelLogical(name)
				bv, be := b.GetParallelLogical(name)
				if errString(ae) != errString(be) || fmt.Sprint(av) != fmt.Sprint(bv) {
					t.Fatalf("global %q diverged: %v/%v vs %v/%v", name, av, ae, bv, be)
				}
			case !d.Type.Parallel && d.Type.Base == BaseInt:
				av, ae := a.GetInt(name)
				bv, be := b.GetInt(name)
				if errString(ae) != errString(be) || av != bv {
					t.Fatalf("global %q diverged: %v/%v vs %v/%v", name, av, ae, bv, be)
				}
			}
		}
	}
}

// TestVMParityPaperProgram sweeps the paper program across geometries and
// random graphs: identical SOW/PTN and identical machine metrics.
func TestVMParityPaperProgram(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(9)
		h := uint(8 + rng.Intn(8))
		g := graph.GenRandom(n, 0.2+rng.Float64()*0.5, 1+int64(rng.Intn(12)), rng.Int63())
		dest := rng.Intn(n)
		inf := ppa.New(1, h).Inf()
		w := make([]ppa.Word, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				switch wt := g.At(i, j); {
				case i == j:
					w[i*n+j] = 0
				case wt == graph.NoEdge:
					w[i*n+j] = inf
				default:
					w[i*n+j] = ppa.Word(wt)
				}
			}
		}
		diffProgram(t, PaperMCPSource, n, h, nil, func(ex Executor) error {
			if err := ex.SetParallelInt("W", w); err != nil {
				return err
			}
			return ex.SetInt("d", int64(dest))
		}, "minimum_cost_path")
	}
}

// TestVMParityShippedPrograms runs sort/widest/DT across geometries.
func TestVMParityShippedPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		n := 2 + rng.Intn(8)
		flat := make([]ppa.Word, n*n)
		for i := range flat {
			flat[i] = ppa.Word(rng.Intn(50))
		}
		diffProgram(t, SortRowsSource, n, 10, nil, func(ex Executor) error {
			return ex.SetParallelInt("V", flat)
		}, "sort_rows")

		fg := make([]bool, n*n)
		for i := range fg {
			fg[i] = rng.Float64() < 0.25
		}
		fg[rng.Intn(n*n)] = true
		diffProgram(t, DistanceTransformSource, n, 10, nil, func(ex Executor) error {
			return ex.SetParallelLogical("FG", fg)
		}, "distance_transform")

		g := graph.GenRandom(n, 0.4, 1+int64(rng.Intn(20)), rng.Int63())
		dest := rng.Intn(n)
		inf := ppa.New(1, 12).Inf()
		w := make([]ppa.Word, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				switch wt := g.At(i, j); {
				case i == j:
					w[i*n+j] = inf
				case wt == graph.NoEdge:
					w[i*n+j] = 0
				default:
					w[i*n+j] = ppa.Word(wt)
				}
			}
		}
		diffProgram(t, WidestPathSource, n, 12, nil, func(ex Executor) error {
			if err := ex.SetParallelInt("W", w); err != nil {
				return err
			}
			return ex.SetInt("d", int64(dest))
		}, "widest_path")
	}
}

// TestVMParityLanguageFeatures drives each construct (and its error
// paths) through both executors.
func TestVMParityLanguageFeatures(t *testing.T) {
	cases := map[string]struct {
		src     string
		entries []string
	}{
		"arith and compare": {`
int r;
void main() { r = (3 + 4) * 2 - 10 / 2 + 9 % 4; r = r + (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5) + (1 == 1) + (2 != 2); }
`, []string{"main"}},
		"logical short circuit": {`
int hits;
int tick() { hits++; return 1; }
void main() { int a; a = 0 && tick(); a = 1 || tick(); a = 1 && tick(); a = 0 || tick(); }
`, []string{"main"}},
		"parallel logical ops": {`
parallel logical A, B, C;
void main() { A = ROW == 0; B = COL == 0; C = A && B; C = A || B; C = A == B; C = A != B; C = !A; }
`, []string{"main"}},
		"parallel arith saturates": {`
parallel int V;
void main() { V = MAXINT + ROW; V = V - MAXINT; V = ROW + COL; }
`, []string{"main"}},
		"where elsewhere nesting": {`
parallel int V;
void main() {
	where (ROW == 0) { V = 1; where (COL == 0) V = 2; elsewhere V = 3; }
	elsewhere { V = 4; }
}
`, []string{"main"}},
		"where int condition": {`
parallel int V;
void main() { where (COL) V = 5; }
`, []string{"main"}},
		"loops": {`
int total;
void main() {
	for (int i = 0; i < 5; i++) { if (i == 2) continue; if (i == 4) break; total = total + i; }
	int j; j = 0;
	while (j < 3) { j++; }
	do { j--; } while (j > 0);
	total = total + j;
}
`, []string{"main"}},
		"functions and recursion": {`
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int r;
void main() { r = fib(10); }
`, []string{"main"}},
		"param value semantics": {`
parallel int V;
void clobber(parallel int x) { x = 0; }
void main() { V = ROW; clobber(V); }
`, []string{"main"}},
		"builtins": {`
parallel int V; parallel logical L; int s; logical b;
void main() {
	V = shift(ROW, EAST);
	V = broadcast(V, SOUTH, ROW == 0);
	V = min(V, EAST, COL == 0);
	V = max(V, WEST, COL == 0);
	V = selected_min(V, EAST, COL == 0, ROW == COL);
	V = selected_max(V, EAST, COL == 0, ROW == COL);
	L = or(ROW == 0, SOUTH, ROW == 0);
	L = bit(V, 0);
	L = shift(L, NORTH);
	L = broadcast(L, EAST, COL == 0);
	b = any(L);
	s = opposite(WEST);
}
`, []string{"main"}},
		"print formats": {`
parallel int V; parallel logical L;
void main() { V = ROW; L = COL == 0; print(1, V, L); print(); print(MAXINT); }
`, []string{"main"}},
		"global init chain": {`
int a = 3;
int b = a + 4;
parallel int V = ROW + a;
void main() { }
`, []string{"main"}},
		"global init calls function": {`
int f() { return 7; }
int a = f();
void main() { }
`, []string{"main"}},
		"global init forward ref fails": {`
int f() { return later; }
int a = f();
int later = 5;
void main() { }
`, []string{"main"}},
		"redeclared global": {`
int x;
int x;
void main() { }
`, []string{"main"}},
		"shadow predefined global": {`
int ROW;
void main() { }
`, []string{"main"}},
		"local shadows global": {`
int x = 1;
int r;
void main() { int x; x = 5; { int x; x = 9; r = r + x; } r = r + x; }
`, []string{"main"}},
		"local redeclared": {`
void main() { int x; int x; }
`, []string{"main"}},
		"init resolves against enclosing scope": {`
int x = 7;
int r;
void main() { int x = x + 1; r = x; { int x = x * 2; r = r + x; } }
`, []string{"main"}},
		"init self reference undefined": {`
void main() { int fresh = fresh; }
`, []string{"main"}},
		"multi name decl chains": {`
int r;
void main() { int a = 2, b = a + 1, c = b * b; r = c; }
`, []string{"main"}},
		"dead local redeclare not reached": {`
void main() { return; int x; int x; }
`, []string{"main"}},
		"undefined variable": {`
void main() { x = 1; }
`, []string{"main"}},
		"undefined function": {`
void main() { nosuch(1); }
`, []string{"main"}},
		"division by zero": {`
int z;
void main() { z = 1 / z; }
`, []string{"main"}},
		"modulo by zero": {`
int z;
void main() { z = 1 % z; }
`, []string{"main"}},
		"parallel star rejected": {`
parallel int V;
void main() { V = V * V; }
`, []string{"main"}},
		"unary minus parallel rejected": {`
parallel int V;
void main() { V = -V; }
`, []string{"main"}},
		"where scalar cond rejected": {`
void main() { where (1) ; }
`, []string{"main"}},
		"if parallel cond rejected": {`
void main() { if (ROW == 0) ; }
`, []string{"main"}},
		"break crosses where": {`
void main() { while (1) { where (ROW == 0) { break; } } }
`, []string{"main"}},
		"return crosses where": {`
int f() { where (ROW == 0) { return 1; } return 0; }
void main() { f(); }
`, []string{"main"}},
		"return in loop in where ok-ish": {`
int f() { where (ROW == 0) { while (1) { break; } } return 2; }
int r;
void main() { r = f(); }
`, []string{"main"}},
		"break outside loop void fn": {`
void main() { break; }
`, []string{"main"}},
		"continue outside loop nonvoid fn": {`
int f() { continue; }
void main() { f(); }
`, []string{"main"}},
		"missing return": {`
int f() { if (N == 0) return 1; }
void main() { f(); }
`, []string{"main"}},
		"recursion depth": {`
int a(int n) { return b(n); }
int b(int n) { return a(n); }
void main() { a(0); }
`, []string{"main"}},
		"builtin arity": {`
void main() { shift(ROW); }
`, []string{"main"}},
		"builtin bad direction": {`
void main() { shift(ROW, 7); }
`, []string{"main"}},
		"bit out of range": {`
parallel logical L;
void main() { L = bit(ROW, 99); }
`, []string{"main"}},
		"call arity": {`
void f(int a) { }
void main() { f(); }
`, []string{"main"}},
		"dup params": {`
void f(int a, int a) { }
void main() { f(1, 2); }
`, []string{"main"}},
		"void in expression": {`
void f() { }
void main() { int x; x = f() + 1; }
`, []string{"main"}},
		"assign parallel to scalar": {`
int s;
void main() { s = ROW; }
`, []string{"main"}},
		"incdec on parallel": {`
parallel int V;
void main() { V++; }
`, []string{"main"}},
		"incdec globals and return values": {`
int i;
int r;
void main() { r = i++; r = r + i--; r = r + i; }
`, []string{"main"}},
		"scalar not representable": {`
parallel int V;
void main() { V = 100000; }
`, []string{"main"}},
		"empty statements": {`
void main() { ; if (1) ; else ; for (;0;) ; }
`, []string{"main"}},
		"two entry calls reuse state": {`
int calls;
void bump() { calls++; }
`, []string{"bump", "bump"}},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			diffProgram(t, tc.src, 3, 8, nil, nil, tc.entries...)
		})
	}
}

// TestVMParityHostAPIErrors: host-facing errors match too.
func TestVMParityHostAPIErrors(t *testing.T) {
	src := `
int s;
parallel int V;
parallel logical L;
void main() { }
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range []bool{true, false} {
		ex, err := NewExecutor(prog, par.New(ppa.New(2, 8)), WithReference(ref))
		if err != nil {
			t.Fatal(err)
		}
		checks := []error{
			func() error { _, e := ex.Call("nosuch"); return e }(),
			func() error { _, e := ex.GetInt("nope"); return e }(),
			func() error { _, e := ex.GetInt("V"); return e }(),
			ex.SetParallelInt("V", make([]ppa.Word, 3)),
			ex.SetParallelLogical("L", make([]bool, 7)),
			ex.SetParallelInt("L", make([]ppa.Word, 4)),
		}
		want := []string{
			`ppclang: undefined function "nosuch"`,
			`ppclang: no global "nope"`,
			`ppclang: global "V" is parallel int, not int`,
			`ppclang: "V" needs 4 values, got 3`,
			`ppclang: "L" needs 4 values, got 7`,
			`ppclang: global "L" is parallel logical, not parallel int`,
		}
		for i, e := range checks {
			if errString(e) != want[i] {
				t.Errorf("ref=%v check %d: got %q, want %q", ref, i, errString(e), want[i])
			}
		}
	}
	// Non-niladic entry points are rejected identically.
	prog2, _ := Compile(`void f(int a) { }`)
	for _, ref := range []bool{true, false} {
		ex, err := NewExecutor(prog2, par.New(ppa.New(2, 8)), WithReference(ref))
		if err != nil {
			t.Fatal(err)
		}
		_, e := ex.Call("f")
		if got := errString(e); got != "ppclang: f takes 1 parameters; Call supports only niladic entry points" {
			t.Errorf("ref=%v: %q", ref, got)
		}
	}
}

// fuelTestSource runs long enough to abort at any small budget.
const fuelTestSource = `
int total;
int work(int k) { int acc; for (int i = 0; i < k; i++) { acc = acc + i; } return acc; }
parallel int V;
void main() {
	for (int round = 0; round < 4; round++) {
		total = total + work(round + 3);
		where (ROW == 0) { V = V + 1; }
	}
}
`

// TestVMFuelParity: for every budget the two paths fail (or succeed) at
// the identical statement with identical metrics, and the error is a
// typed FuelError matching ErrFuelExhausted.
func TestVMFuelParity(t *testing.T) {
	prog, err := Compile(fuelTestSource)
	if err != nil {
		t.Fatal(err)
	}
	// Find the unbounded statement count first, then probe every budget up
	// to beyond it.
	exhausted := 0
	for budget := int64(1); budget <= 220; budget++ {
		oracle := newDiffSide(prog, 3, 8, true, []Option{WithFuel(budget)})
		vm := newDiffSide(prog, 3, 8, false, []Option{WithFuel(budget)})
		if errString(oracle.cerr) != errString(vm.cerr) {
			t.Fatalf("budget %d: construction diverged: %v vs %v", budget, oracle.cerr, vm.cerr)
		}
		_, oerr := oracle.ex.Call("main")
		_, verr := vm.ex.Call("main")
		if errString(oerr) != errString(verr) {
			t.Fatalf("budget %d: errors diverged:\noracle: %v\nvm:     %v", budget, oerr, verr)
		}
		if om, vmm := oracle.m.Metrics(), vm.m.Metrics(); om != vmm {
			t.Fatalf("budget %d: metrics diverged:\noracle: %+v\nvm:     %+v", budget, om, vmm)
		}
		if oerr != nil {
			exhausted++
			if !errors.Is(oerr, ErrFuelExhausted) || !errors.Is(verr, ErrFuelExhausted) {
				t.Fatalf("budget %d: error not ErrFuelExhausted: %v", budget, verr)
			}
			var fe *FuelError
			if !errors.As(verr, &fe) || fe.Limit != budget {
				t.Fatalf("budget %d: FuelError limit mismatch: %v", budget, verr)
			}
		}
	}
	if exhausted == 0 {
		t.Fatal("no budget exhausted fuel; test source too small")
	}
}

// TestVMFuelResetsPerCall: the budget is per host Call, not cumulative.
func TestVMFuelResetsPerCall(t *testing.T) {
	src := `void main() { int a; a = 1; a = 2; }`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range []bool{true, false} {
		ex, err := NewExecutor(prog, par.New(ppa.New(2, 8)), WithReference(ref), WithFuel(16))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, err := ex.Call("main"); err != nil {
				t.Fatalf("ref=%v call %d: %v", ref, i, err)
			}
		}
	}
}

// TestVMDeadline: a cancelled context aborts both paths with the same
// DeadlineError.
func TestVMDeadline(t *testing.T) {
	src := `void main() { int i; for (i = 0; i < 100000; i++) ; }`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var msgs []string
	for _, ref := range []bool{true, false} {
		ex, err := NewExecutor(prog, par.New(ppa.New(2, 8)), WithReference(ref), WithContext(ctx))
		if err != nil {
			t.Fatal(err)
		}
		_, cerr := ex.Call("main")
		if cerr == nil {
			t.Fatalf("ref=%v: cancelled context did not abort", ref)
		}
		if !errors.Is(cerr, context.Canceled) {
			t.Fatalf("ref=%v: error does not unwrap to context.Canceled: %v", ref, cerr)
		}
		var de *DeadlineError
		if !errors.As(cerr, &de) {
			t.Fatalf("ref=%v: not a DeadlineError: %v", ref, cerr)
		}
		msgs = append(msgs, cerr.Error())
	}
	if msgs[0] != msgs[1] {
		t.Fatalf("deadline errors diverged: %q vs %q", msgs[0], msgs[1])
	}
}

// TestVMNoLeakedTemporaries: an aborted run leaves no values on the VM
// stack and no extra local frames.
func TestVMNoLeakedTemporaries(t *testing.T) {
	src := `
int f(int n) { return f(n + 1); }
void main() { f(0); }
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(prog, par.New(ppa.New(2, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Call("main"); err == nil {
		t.Fatal("runaway recursion not caught")
	}
	if len(vm.stack) != 0 {
		t.Errorf("stack not cleared: %d values", len(vm.stack))
	}
	if len(vm.locals) != 0 {
		t.Errorf("locals not unwound: %d values", len(vm.locals))
	}
	if vm.depth != 0 {
		t.Errorf("depth not restored: %d", vm.depth)
	}
}

// TestDisassemble: the disassembly names every function and resolves
// builtin and jump operands.
func TestDisassemble(t *testing.T) {
	prog, err := Compile(PaperMCPSource)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Disassemble(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"minimum_cost_path", "builtin", "where", "jmpt", "fuel", "storeg"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
	// Round-trip: disassembly is stable across calls (cached Code).
	text2, err := Disassemble(prog)
	if err != nil || text != text2 {
		t.Errorf("disassembly not stable: %v", err)
	}
}

// TestExecutorSelection: NewExecutor returns the VM by default and the
// tree-walker under WithReference.
func TestExecutorSelection(t *testing.T) {
	prog, err := Compile(`void main() { }`)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExecutor(prog, par.New(ppa.New(2, 8)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.(*VM); !ok {
		t.Errorf("default executor is %T, want *VM", ex)
	}
	ex, err = NewExecutor(prog, par.New(ppa.New(2, 8)), WithReference(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.(*Interp); !ok {
		t.Errorf("reference executor is %T, want *Interp", ex)
	}
}

// TestVMParityRandomPrograms cross-checks generated programs built from
// the full statement grammar (a seeded mini-fuzzer that always produces
// parseable sources, many of which still fail at runtime).
func TestVMParityRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	exprs := []string{
		"0", "1", "3", "N", "BITS", "MAXINT", "ROW", "COL", "i", "V", "L",
		"ROW + COL", "V - 1", "i * 2", "i / 2", "i % 3", "-i", "!L",
		"ROW == COL", "i < N", "L && (ROW == 0)", "i > 0 || L",
		"shift(V, EAST)", "min(V, EAST, COL == 0)", "any(L)", "bit(V, 0)",
		"broadcast(V, SOUTH, ROW == 0)", "opposite(NORTH)", "f(i)",
		"i++", "V = ROW", "L = COL == 0", "i = i + 1",
	}
	stmts := []string{
		"i = i + 1;", "V = V + 1;", "L = !L;", "print(i);", ";",
		"if (i < 2) i = 5; else i = 6;", "while (i > 0) i--;",
		"for (int k = 0; k < 2; k++) i = i + k;",
		"do i--; while (i > 3);",
		"where (L) V = 1; elsewhere V = 2;",
		"where (ROW == 0) { V = V + 1; }",
		"{ int t; t = i; i = t + 1; }",
		"int z = i; i = z;",
		"break;", "continue;", "return;",
	}
	for trial := 0; trial < 60; trial++ {
		var sb strings.Builder
		sb.WriteString("int i;\nparallel int V;\nparallel logical L;\n")
		sb.WriteString("int f(int x) { return x + 1; }\n")
		sb.WriteString("void main() {\n")
		for k := 0; k < 3+rng.Intn(6); k++ {
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&sb, "\ti = %s == 0;\n", exprs[rng.Intn(len(exprs))])
			} else {
				fmt.Fprintf(&sb, "\t%s\n", stmts[rng.Intn(len(stmts))])
			}
		}
		sb.WriteString("}\n")
		src := sb.String()
		if _, err := Compile(src); err != nil {
			continue
		}
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			diffProgram(t, src, 3, 8, []Option{WithFuel(5000)}, nil, "main")
		})
	}
}

// TestVMParityAllNiladicEntries: every niladic function of a program is a
// valid entry point on both paths.
func TestVMParityAllNiladicEntries(t *testing.T) {
	src := `
int state;
int get() { return state; }
void bump() { state++; }
void twice() { bump(); bump(); }
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var entries []string
	for name, f := range prog.Funcs {
		if len(f.Params) == 0 {
			entries = append(entries, name)
		}
	}
	sort.Strings(entries)
	diffProgram(t, src, 2, 8, nil, nil, entries...)
}
