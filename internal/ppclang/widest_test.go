package ppclang

import (
	"math/rand"
	"testing"

	"ppamcp/internal/core"
	"ppamcp/internal/graph"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// widestSource aliases the exported program under test.
const widestSource = WidestPathSource

func TestWidestPathInPPC(t *testing.T) {
	prog, err := Compile(widestSource)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(9)
		g := graph.GenRandom(n, 0.2+rng.Float64()*0.5, 1+int64(rng.Intn(20)), rng.Int63())
		dest := rng.Intn(n)
		want, _, err := core.SolveWidest(g, dest, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Match the native solver's word width.
		h := uint(1)
		for int64(1)<<h-1 <= g.MaxWeight() || int64(1)<<h-1 <= int64(n-1) {
			h++
		}
		m := ppa.New(n, h)
		in, err := NewInterp(prog, par.New(m))
		if err != nil {
			t.Fatal(err)
		}
		inf := m.Inf()
		w := make([]ppa.Word, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				switch wt := g.At(i, j); {
				case i == j:
					w[i*n+j] = inf
				case wt == graph.NoEdge:
					w[i*n+j] = 0
				default:
					w[i*n+j] = ppa.Word(wt)
				}
			}
		}
		if err := in.SetParallelInt("W", w); err != nil {
			t.Fatal(err)
		}
		if err := in.SetInt("d", int64(dest)); err != nil {
			t.Fatal(err)
		}
		if _, err := in.Call("widest_path"); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cap, _ := in.GetParallelInt("CAP")
		ptn, _ := in.GetParallelInt("PTN")
		for i := 0; i < n; i++ {
			gotCap := int64(cap[dest*n+i])
			switch {
			case i == dest:
				if cap[dest*n+i] != inf {
					t.Fatalf("trial %d: CAP[d][d] = %d, want MAXINT", trial, cap[dest*n+i])
				}
			case want.Cap[i] == 0:
				if gotCap != 0 {
					t.Fatalf("trial %d vertex %d: PPC cap %d, want unreachable", trial, i, gotCap)
				}
			default:
				if gotCap != want.Cap[i] || int(ptn[dest*n+i]) != want.Next[i] {
					t.Fatalf("trial %d vertex %d: PPC (%d via %d), native (%d via %d)",
						trial, i, gotCap, ptn[dest*n+i], want.Cap[i], want.Next[i])
				}
			}
		}
	}
}
