package ppclang

import (
	"fmt"
	"sync"
)

// This file lowers a checked AST into a flat bytecode program (Code) for
// the VM in vm.go. The lowering is a direct transcription of the
// tree-walker's evaluation strategy:
//
//   - map-based scope lookups become pre-resolved frame slots (locals)
//     and global indices, assigned lexically in source order — which
//     coincides with the dynamic scoping of the tree-walker because PPC
//     has no goto and loop bodies re-enter their block from the top;
//   - builtin name dispatch becomes a pre-bound index into builtinTable;
//   - if/while/do/for become relative jumps; where/elsewhere becomes an
//     opWhere header whose branch bodies are inline sub-ranges executed
//     under the narrowed activity mask;
//   - every statement begins with an opFuel tick, mirroring the one
//     guard.tick per Interp.exec call, so fuel budgets exhaust at the
//     identical statement on both paths.
//
// Conditions the tree-walker only detects at runtime but that are
// decidable statically (undefined variables, redeclarations, arity
// mismatches, control flow crossing a where boundary) compile to an
// opErr carrying the exact position and message the tree-walker would
// produce, placed exactly where the tree-walker would raise it — so even
// erroring programs behave identically on both paths. Conditions that
// are genuinely dynamic (type mismatches, division by zero, fuel, global
// declaration order during init) stay runtime checks in the VM.

// Op is a bytecode opcode. Operands follow inline in Code.ops; each
// opcode has a fixed width (see opWidth).
type Op int32

// Opcodes.
const (
	opFuel        Op = iota // pos — charge one statement tick (fuel/deadline)
	opConst                 // constIdx — push scalar int constant
	opVoid                  // push the void value
	opLoadL                 // slot — push local
	opLoadG                 // gidx, pos, name — push global (checks declared)
	opChkG                  // gidx, pos, name — error if global not yet declared
	opStoreL                // slot, pos — masked/scalar assign into local, push result
	opStoreG                // gidx, pos — masked/scalar assign into global, push result
	opDeclL                 // slot, type, pos — convert TOS to type, bind local
	opDeclZeroL             // slot, type — bind local to zero value
	opDeclG                 // gidx, type, pos — convert TOS, bind global, mark declared
	opDeclZeroG             // gidx, type — bind global to zero value, mark declared
	opIncDecL               // slot, kind, pos, name — postfix ++/-- on local
	opIncDecG               // gidx, kind, pos, name — postfix ++/-- on global
	opPop                   // discard TOS
	opUnary                 // kind, pos — apply ! or - to TOS
	opBinary                // kind, posOp, posL, posR — apply binary op
	opLogicalPre            // kind, posL, offset — short-circuit && / || head
	opLogicalPost           // kind, posL, posR — combine && / || operands
	opJump                  // offset — relative jump (from instruction end)
	opJumpFalse             // pos, offset — pop scalar cond, jump if false
	opJumpTrue              // pos, offset — pop scalar cond, jump if true
	opWhere                 // thenLen, elseLen, condPos, thenPos, elsePos
	opCallPre               // fidx, pos — recursion depth check before args
	opParam                 // type, argPos — convert TOS to param type + copy
	opCall                  // fidx — invoke function on pre-converted args
	opBuiltin               // bidx, callPos, argPosBase — apply builtin to top args
	opPrintArg              // k — pop and print one print() argument
	opPrintEnd              // newline + push void (print()'s value)
	opReturn                // pop TOS and return it from the current function
	opErr                   // pos, msg — raise a precomputed runtime error
)

// opWidth is the total instruction width (opcode + operands) per opcode.
var opWidth = [...]int{
	opFuel: 2, opConst: 2, opVoid: 1, opLoadL: 2, opLoadG: 4, opChkG: 4,
	opStoreL: 3, opStoreG: 3, opDeclL: 4, opDeclZeroL: 3, opDeclG: 4,
	opDeclZeroG: 3, opIncDecL: 5, opIncDecG: 5, opPop: 1, opUnary: 3,
	opBinary: 5, opLogicalPre: 4, opLogicalPost: 4, opJump: 2,
	opJumpFalse: 3, opJumpTrue: 3, opWhere: 6, opCallPre: 3, opParam: 3,
	opCall: 2, opBuiltin: 4, opPrintArg: 2, opPrintEnd: 1, opReturn: 1,
	opErr: 3,
}

var opNames = [...]string{
	opFuel: "fuel", opConst: "const", opVoid: "void", opLoadL: "loadl",
	opLoadG: "loadg", opChkG: "chkg", opStoreL: "storel", opStoreG: "storeg",
	opDeclL: "decll", opDeclZeroL: "declzl", opDeclG: "declg",
	opDeclZeroG: "declzg", opIncDecL: "incdecl", opIncDecG: "incdecg",
	opPop: "pop", opUnary: "unary", opBinary: "binary",
	opLogicalPre: "logpre", opLogicalPost: "logpost", opJump: "jump",
	opJumpFalse: "jmpf", opJumpTrue: "jmpt", opWhere: "where",
	opCallPre: "callpre", opParam: "param", opCall: "call",
	opBuiltin: "builtin", opPrintArg: "printarg", opPrintEnd: "printend",
	opReturn: "return", opErr: "err",
}

// compiledFunc is one function's metadata in the flat program.
type compiledFunc struct {
	name     string
	pos      Pos
	ret      Type
	params   []Param
	dupParam int // index of the first duplicate param name, or -1
	nslots   int // frame size (params + all block-local declarations)
	start    int // code range [start, end)
	end      int
}

// Code is a compiled PPC program: flat opcode stream plus pools. It is
// immutable after compilation and shared by all VMs for the same Program
// (compilation is cached on the Program).
type Code struct {
	ops    []int32
	consts []int64
	poss   []Pos
	names  []string

	funcs      []compiledFunc
	funcByName map[string]int

	globalNames  []string // index → name (predefined first)
	globalTypes  []Type   // static decl type per global (predefined + first decl)
	globalByName map[string]int
	numPredef    int

	initStart, initEnd int // global-initializer chunk range
}

// predefNames fixes the global slot order of the predefined environment.
var predefNames = []string{"ROW", "COL", "N", "BITS", "MAXINT", "NORTH", "EAST", "SOUTH", "WEST"}

var predefTypes = map[string]Type{
	"ROW": {Parallel: true, Base: BaseInt},
	"COL": {Parallel: true, Base: BaseInt},
	"N":   {Base: BaseInt}, "BITS": {Base: BaseInt}, "MAXINT": {Base: BaseInt},
	"NORTH": {Base: BaseInt}, "EAST": {Base: BaseInt},
	"SOUTH": {Base: BaseInt}, "WEST": {Base: BaseInt},
}

// compiledState caches the bytecode on the Program so repeated NewVM
// calls (one per fabric geometry, per benchmark iteration, per serve
// session) compile once.
type compiledState struct {
	once sync.Once
	code *Code
	err  error
}

var compileCache sync.Map // *Program → *compiledState

// bytecode returns the (cached) compiled form of prog.
func bytecode(prog *Program) (*Code, error) {
	st, _ := compileCache.LoadOrStore(prog, &compiledState{})
	cs := st.(*compiledState)
	cs.once.Do(func() { cs.code, cs.err = compileProgram(prog) })
	return cs.code, cs.err
}

// typeCode packs a Type into an operand word.
func typeCode(t Type) int32 {
	c := int32(t.Base) << 1
	if t.Parallel {
		c |= 1
	}
	return c
}

func typeFromCode(c int32) Type {
	return Type{Parallel: c&1 != 0, Base: BaseType(c >> 1)}
}

type varRef struct {
	global bool
	idx    int32
}

type loopCtx struct {
	whereDepth int   // len(c.wheres) when the loop was entered
	breaks     []int // operand indices to patch to the loop end
	conts      []int // operand indices to patch to the continue target
}

type compiler struct {
	prog *Program
	code *Code

	constIdx map[int64]int32
	posIdx   map[Pos]int32
	nameIdx  map[string]int32

	// per-function state
	scopes   []map[string]int32
	nslots   int32
	loops    []*loopCtx
	wheres   []Pos // positions of enclosing where-branch bodies
	funcEnds []int // operand indices to patch to the current function's end
}

func compileProgram(prog *Program) (*Code, error) {
	c := &compiler{
		prog: prog,
		code: &Code{
			funcByName:   map[string]int{},
			globalByName: map[string]int{},
		},
		constIdx: map[int64]int32{},
		posIdx:   map[Pos]int32{},
		nameIdx:  map[string]int32{},
	}
	// Global slot map: predefined names first, then program globals in
	// declaration order (first declaration wins on duplicates; the
	// duplicate itself compiles to the redeclaration error).
	for i, name := range predefNames {
		c.code.globalByName[name] = i
		c.code.globalNames = append(c.code.globalNames, name)
		c.code.globalTypes = append(c.code.globalTypes, predefTypes[name])
	}
	c.code.numPredef = len(predefNames)
	for _, d := range prog.Globals {
		for _, name := range d.Names {
			if _, dup := c.code.globalByName[name]; dup {
				continue
			}
			c.code.globalByName[name] = len(c.code.globalNames)
			c.code.globalNames = append(c.code.globalNames, name)
			c.code.globalTypes = append(c.code.globalTypes, d.Type)
		}
	}
	// Function table before bodies, so calls resolve forward references.
	for _, n := range prog.Order {
		f, ok := n.(*FuncDecl)
		if !ok {
			continue
		}
		dup := -1
		seen := map[string]bool{}
		for i, p := range f.Params {
			if seen[p.Name] {
				dup = i
				break
			}
			seen[p.Name] = true
		}
		c.code.funcByName[f.Name] = len(c.code.funcs)
		c.code.funcs = append(c.code.funcs, compiledFunc{
			name: f.Name, pos: f.Pos, ret: f.Ret, params: f.Params, dupParam: dup,
		})
	}
	// Global-initializer chunk: VarDecls run directly (no statement tick),
	// exactly like NewInterp's execVarDecl loop.
	c.code.initStart = len(c.code.ops)
	declared := map[string]bool{}
	for _, name := range predefNames {
		declared[name] = true
	}
	c.scopes = nil
	for _, d := range prog.Globals {
		for k, name := range d.Names {
			gi := int32(c.code.globalByName[name])
			if d.Inits[k] != nil {
				c.expr(d.Inits[k])
				c.emit(opDeclG, gi, typeCode(d.Type), c.pos(d.Inits[k].nodePos()))
			} else {
				c.emit(opDeclZeroG, gi, typeCode(d.Type))
			}
			if declared[name] {
				c.emitErr(d.Pos, fmt.Sprintf("variable %q redeclared in this scope", name))
			}
			declared[name] = true
		}
	}
	c.code.initEnd = len(c.code.ops)
	// Function bodies.
	for _, n := range prog.Order {
		f, ok := n.(*FuncDecl)
		if !ok {
			continue
		}
		c.compileFunc(f)
	}
	return c.code, nil
}

func (c *compiler) compileFunc(f *FuncDecl) {
	fi := c.code.funcByName[f.Name]
	c.scopes = []map[string]int32{{}}
	c.nslots = 0
	c.loops = nil
	c.wheres = nil
	c.funcEnds = nil
	// Parameters occupy the first frame slots, in order. Duplicate names
	// keep their first binding; calls to such a function error while
	// binding arguments (see the call lowering), so the body is dead code
	// and only needs to compile consistently.
	for _, p := range f.Params {
		top := c.scopes[0]
		if _, dup := top[p.Name]; !dup {
			top[p.Name] = c.nslots
		}
		c.nslots++
	}
	start := len(c.code.ops)
	c.stmt(f.Body)
	end := len(c.code.ops)
	for _, pi := range c.funcEnds {
		c.patch(pi, end)
	}
	cf := &c.code.funcs[fi]
	cf.nslots = int(c.nslots)
	cf.start, cf.end = start, end
}

// emit appends one instruction.
func (c *compiler) emit(op Op, operands ...int32) int {
	at := len(c.code.ops)
	c.code.ops = append(c.code.ops, int32(op))
	c.code.ops = append(c.code.ops, operands...)
	if len(operands)+1 != opWidth[op] {
		panic(fmt.Sprintf("ppclang: %s emitted with %d words, width %d", opNames[op], len(operands)+1, opWidth[op]))
	}
	return at
}

// emitErr emits the precomputed runtime error the tree-walker would
// raise at this point.
func (c *compiler) emitErr(pos Pos, msg string) {
	c.emit(opErr, c.pos(pos), c.name(msg))
}

// jump emission: the offset operand is always the last word of its
// instruction and is relative to the instruction end. emitJump* return
// the operand index for patching.
func (c *compiler) emitJump() int {
	at := c.emit(opJump, 0)
	return at + 1
}

func (c *compiler) emitJumpCond(op Op, pos Pos) int {
	at := c.emit(op, c.pos(pos), 0)
	return at + 2
}

// patch sets the jump operand at pi to land on target.
func (c *compiler) patch(pi, target int) {
	c.code.ops[pi] = int32(target - (pi + 1))
}

func (c *compiler) pos(p Pos) int32 {
	if i, ok := c.posIdx[p]; ok {
		return i
	}
	i := int32(len(c.code.poss))
	c.code.poss = append(c.code.poss, p)
	c.posIdx[p] = i
	return i
}

func (c *compiler) name(s string) int32 {
	if i, ok := c.nameIdx[s]; ok {
		return i
	}
	i := int32(len(c.code.names))
	c.code.names = append(c.code.names, s)
	c.nameIdx[s] = i
	return i
}

func (c *compiler) konst(v int64) int32 {
	if i, ok := c.constIdx[v]; ok {
		return i
	}
	i := int32(len(c.code.consts))
	c.code.consts = append(c.code.consts, v)
	c.constIdx[v] = i
	return i
}

func (c *compiler) pushScope() { c.scopes = append(c.scopes, map[string]int32{}) }
func (c *compiler) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

// declareLocal allocates a fresh slot for name; dup reports a
// redeclaration in the innermost scope (the name keeps its first slot).
func (c *compiler) declareLocal(name string) (slot int32, dup bool) {
	slot = c.nslots
	c.nslots++
	top := c.scopes[len(c.scopes)-1]
	if _, d := top[name]; d {
		return slot, true
	}
	top[name] = slot
	return slot, false
}

func (c *compiler) resolve(name string) (varRef, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return varRef{global: false, idx: s}, true
		}
	}
	if g, ok := c.code.globalByName[name]; ok {
		return varRef{global: true, idx: int32(g)}, true
	}
	return varRef{}, false
}

// stmt compiles one statement, starting with its fuel tick (one per
// Interp.exec call).
func (c *compiler) stmt(s Stmt) {
	c.emit(opFuel, c.pos(s.nodePos()))
	switch st := s.(type) {
	case *VarDecl:
		c.varDecl(st)
	case *ExprStmt:
		c.expr(st.X)
		c.emit(opPop)
	case *Block:
		c.pushScope()
		for _, sub := range st.Stmts {
			c.stmt(sub)
		}
		c.popScope()
	case *If:
		c.expr(st.Cond)
		jf := c.emitJumpCond(opJumpFalse, st.Cond.nodePos())
		c.pushScope()
		c.stmt(st.Then)
		c.popScope()
		if st.Else != nil {
			j := c.emitJump()
			c.patch(jf, len(c.code.ops))
			c.pushScope()
			c.stmt(st.Else)
			c.popScope()
			c.patch(j, len(c.code.ops))
		} else {
			c.patch(jf, len(c.code.ops))
		}
	case *Where:
		c.where(st)
	case *While:
		condStart := len(c.code.ops)
		c.expr(st.Cond)
		jf := c.emitJumpCond(opJumpFalse, st.Cond.nodePos())
		loop := &loopCtx{whereDepth: len(c.wheres)}
		c.loops = append(c.loops, loop)
		c.pushScope()
		c.stmt(st.Body)
		c.popScope()
		c.loops = c.loops[:len(c.loops)-1]
		back := c.emitJump()
		c.patch(back, condStart)
		end := len(c.code.ops)
		c.patch(jf, end)
		for _, pi := range loop.breaks {
			c.patch(pi, end)
		}
		for _, pi := range loop.conts {
			c.patch(pi, condStart)
		}
	case *DoWhile:
		bodyStart := len(c.code.ops)
		loop := &loopCtx{whereDepth: len(c.wheres)}
		c.loops = append(c.loops, loop)
		c.pushScope()
		c.stmt(st.Body)
		c.popScope()
		c.loops = c.loops[:len(c.loops)-1]
		condStart := len(c.code.ops)
		c.expr(st.Cond)
		jt := c.emitJumpCond(opJumpTrue, st.Cond.nodePos())
		c.patch(jt, bodyStart)
		end := len(c.code.ops)
		for _, pi := range loop.breaks {
			c.patch(pi, end)
		}
		for _, pi := range loop.conts {
			c.patch(pi, condStart)
		}
	case *For:
		c.pushScope() // header scope (for-init declarations)
		if st.Init != nil {
			c.stmt(st.Init)
		}
		condStart := len(c.code.ops)
		jf := -1
		if st.Cond != nil {
			c.expr(st.Cond)
			jf = c.emitJumpCond(opJumpFalse, st.Cond.nodePos())
		}
		loop := &loopCtx{whereDepth: len(c.wheres)}
		c.loops = append(c.loops, loop)
		c.pushScope()
		c.stmt(st.Body)
		c.popScope()
		c.loops = c.loops[:len(c.loops)-1]
		postStart := len(c.code.ops)
		if st.Post != nil {
			c.expr(st.Post)
			c.emit(opPop)
		}
		back := c.emitJump()
		c.patch(back, condStart)
		end := len(c.code.ops)
		if jf >= 0 {
			c.patch(jf, end)
		}
		for _, pi := range loop.breaks {
			c.patch(pi, end)
		}
		for _, pi := range loop.conts {
			c.patch(pi, postStart)
		}
		c.popScope()
	case *Return:
		// Inside a where branch the return value is still evaluated (with
		// its machine effects) before the boundary violation surfaces —
		// mirror by evaluating, discarding, then raising.
		if len(c.wheres) > 0 {
			if st.Val != nil {
				c.expr(st.Val)
				c.emit(opPop)
			}
			c.emitErr(c.wheres[len(c.wheres)-1], "break/continue/return cannot cross a where boundary")
			return
		}
		if st.Val != nil {
			c.expr(st.Val)
		} else {
			c.emit(opVoid)
		}
		c.emit(opReturn)
	case *Break, *Continue:
		c.breakContinue(s)
	default:
		c.emitErr(s.nodePos(), fmt.Sprintf("internal: unknown statement %T", s))
	}
}

// breakContinue lowers break/continue, which in the tree-walker are
// control signals interpreted by the nearest enclosing construct:
//   - a loop entered inside the same where nesting → a jump;
//   - a where branch between here and the loop → the boundary error, at
//     the branch body's position (runBranch raises it there);
//   - no enclosing loop at all → the signal propagates out of the
//     function body, which evalCall treats exactly like falling off the
//     end (void functions return, non-void raise missing-return).
func (c *compiler) breakContinue(s Stmt) {
	var loop *loopCtx
	if len(c.loops) > 0 {
		loop = c.loops[len(c.loops)-1]
	}
	switch {
	case loop != nil && loop.whereDepth == len(c.wheres):
		pi := c.emitJump()
		if _, isBreak := s.(*Break); isBreak {
			loop.breaks = append(loop.breaks, pi)
		} else {
			loop.conts = append(loop.conts, pi)
		}
	case len(c.wheres) > 0:
		c.emitErr(c.wheres[len(c.wheres)-1], "break/continue/return cannot cross a where boundary")
	default:
		pi := c.emitJump()
		c.funcEnds = append(c.funcEnds, pi)
	}
}

func (c *compiler) varDecl(d *VarDecl) {
	for k, name := range d.Names {
		// The initializer is compiled BEFORE the name is declared: in the
		// tree-walker `int x = x;` resolves the init's x against the
		// enclosing scope (outer local, global, or undefined) because
		// sc.declare runs only after eval+convert.
		if d.Inits[k] != nil {
			c.expr(d.Inits[k])
			slot, dup := c.declareLocal(name)
			c.emit(opDeclL, slot, typeCode(d.Type), c.pos(d.Inits[k].nodePos()))
			if dup {
				c.emitErr(d.Pos, fmt.Sprintf("variable %q redeclared in this scope", name))
			}
		} else {
			slot, dup := c.declareLocal(name)
			c.emit(opDeclZeroL, slot, typeCode(d.Type))
			if dup {
				c.emitErr(d.Pos, fmt.Sprintf("variable %q redeclared in this scope", name))
			}
		}
	}
}

func (c *compiler) where(st *Where) {
	c.expr(st.Cond)
	wp := c.emit(opWhere, 0, 0, 0, 0, 0)
	thenStart := len(c.code.ops)
	c.wheres = append(c.wheres, st.Then.nodePos())
	c.pushScope()
	c.stmt(st.Then)
	c.popScope()
	c.wheres = c.wheres[:len(c.wheres)-1]
	thenLen := len(c.code.ops) - thenStart
	elseLen := 0
	var elsePos int32
	if st.Else != nil {
		elseStart := len(c.code.ops)
		c.wheres = append(c.wheres, st.Else.nodePos())
		c.pushScope()
		c.stmt(st.Else)
		c.popScope()
		c.wheres = c.wheres[:len(c.wheres)-1]
		elseLen = len(c.code.ops) - elseStart
		elsePos = c.pos(st.Else.nodePos())
	}
	c.code.ops[wp+1] = int32(thenLen)
	c.code.ops[wp+2] = int32(elseLen)
	c.code.ops[wp+3] = c.pos(st.Cond.nodePos())
	c.code.ops[wp+4] = c.pos(st.Then.nodePos())
	c.code.ops[wp+5] = elsePos
}

// expr compiles one expression; the generated code leaves exactly one
// value on the stack (or aborts with an error).
func (c *compiler) expr(e Expr) {
	switch ex := e.(type) {
	case *IntLit:
		c.emit(opConst, c.konst(ex.Val))
	case *Ident:
		ref, ok := c.resolve(ex.Name)
		switch {
		case !ok:
			c.emitErr(ex.Pos, fmt.Sprintf("undefined variable %q", ex.Name))
		case ref.global:
			c.emit(opLoadG, ref.idx, c.pos(ex.Pos), c.name(ex.Name))
		default:
			c.emit(opLoadL, ref.idx)
		}
	case *Assign:
		// The tree-walker resolves the target before evaluating the RHS.
		ref, ok := c.resolve(ex.Name)
		if !ok {
			c.emitErr(ex.Pos, fmt.Sprintf("undefined variable %q", ex.Name))
			return
		}
		if ref.global {
			c.emit(opChkG, ref.idx, c.pos(ex.Pos), c.name(ex.Name))
			c.expr(ex.Val)
			c.emit(opStoreG, ref.idx, c.pos(ex.Pos))
		} else {
			c.expr(ex.Val)
			c.emit(opStoreL, ref.idx, c.pos(ex.Pos))
		}
	case *IncDec:
		ref, ok := c.resolve(ex.Name)
		switch {
		case !ok:
			c.emitErr(ex.Pos, fmt.Sprintf("undefined variable %q", ex.Name))
		case ref.global:
			c.emit(opIncDecG, ref.idx, int32(ex.Op), c.pos(ex.Pos), c.name(ex.Name))
		default:
			c.emit(opIncDecL, ref.idx, int32(ex.Op), c.pos(ex.Pos), c.name(ex.Name))
		}
	case *Unary:
		c.expr(ex.X)
		c.emit(opUnary, int32(ex.Op), c.pos(ex.Pos))
	case *Binary:
		if ex.Op == ANDAND || ex.Op == OROR {
			// Short-circuit head: a decided scalar left side skips the
			// right side entirely; otherwise both combine in opLogicalPost.
			c.expr(ex.L)
			at := c.emit(opLogicalPre, int32(ex.Op), c.pos(ex.L.nodePos()), 0)
			c.expr(ex.R)
			c.emit(opLogicalPost, int32(ex.Op), c.pos(ex.L.nodePos()), c.pos(ex.R.nodePos()))
			c.patch(at+3, len(c.code.ops))
			return
		}
		c.expr(ex.L)
		c.expr(ex.R)
		c.emit(opBinary, int32(ex.Op), c.pos(ex.Pos), c.pos(ex.L.nodePos()), c.pos(ex.R.nodePos()))
	case *Call:
		c.call(ex)
	default:
		c.emitErr(e.nodePos(), fmt.Sprintf("internal: unknown expression %T", e))
	}
}

func (c *compiler) call(ex *Call) {
	// Builtins shadow user functions, as in the tree-walker's dispatch.
	if ex.Name == "print" {
		for k, a := range ex.Args {
			c.expr(a)
			c.emit(opPrintArg, int32(k))
		}
		c.emit(opPrintEnd)
		return
	}
	if bi := builtinIndex(ex.Name); bi >= 0 {
		impl := builtinTable[bi].impl
		if len(ex.Args) != impl.arity {
			c.emitErr(ex.Pos, fmt.Sprintf("%s expects %d arguments, got %d", ex.Name, impl.arity, len(ex.Args)))
			return
		}
		for _, a := range ex.Args {
			c.expr(a)
		}
		// Argument positions live contiguously in the pos pool so the VM
		// can slice them without allocation.
		base := int32(len(c.code.poss))
		for _, a := range ex.Args {
			c.code.poss = append(c.code.poss, a.nodePos())
		}
		c.emit(opBuiltin, int32(bi), c.pos(ex.Pos), base)
		return
	}
	fi, ok := c.code.funcByName[ex.Name]
	if !ok {
		c.emitErr(ex.Pos, fmt.Sprintf("undefined function %q", ex.Name))
		return
	}
	f := &c.code.funcs[fi]
	if len(ex.Args) != len(f.params) {
		c.emitErr(ex.Pos, fmt.Sprintf("%s expects %d arguments, got %d", ex.Name, len(f.params), len(ex.Args)))
		return
	}
	c.emit(opCallPre, int32(fi), c.pos(ex.Pos))
	for k, a := range ex.Args {
		c.expr(a)
		c.emit(opParam, typeCode(f.params[k].Type), c.pos(a.nodePos()))
		if f.dupParam == k {
			// Binding this parameter redeclares an earlier one; the
			// tree-walker errors here, after converting and copying the
			// argument but before evaluating the rest.
			c.emitErr(f.pos, fmt.Sprintf("variable %q redeclared in this scope", f.params[k].Name))
			return
		}
	}
	c.emit(opCall, int32(fi))
}
