package ppclang

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Compile parses PPC source into a Program.
func Compile(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{Funcs: make(map[string]*FuncDecl)}
	for p.cur().Kind != EOF {
		decl, err := p.topLevel()
		if err != nil {
			return nil, err
		}
		switch d := decl.(type) {
		case *VarDecl:
			prog.Globals = append(prog.Globals, d)
			prog.Order = append(prog.Order, d)
		case *FuncDecl:
			if _, dup := prog.Funcs[d.Name]; dup {
				return nil, fmt.Errorf("%s: function %q redefined", d.Pos, d.Name)
			}
			prog.Funcs[d.Name] = d
			prog.Order = append(prog.Order, d)
		}
	}
	return prog, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k Kind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, fmt.Errorf("%s: expected %v, found %v", p.cur().Pos, k, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

// typeSpec parses [parallel] (int|logical|void).
func (p *parser) typeSpec() (Type, error) {
	var t Type
	if p.accept(KWPARALLEL) {
		t.Parallel = true
	}
	switch p.cur().Kind {
	case KWINT:
		t.Base = BaseInt
	case KWLOGICAL:
		t.Base = BaseLogical
	case KWVOID:
		if t.Parallel {
			return t, fmt.Errorf("%s: 'parallel void' is not a type", p.cur().Pos)
		}
		t.Base = BaseVoid
	default:
		return t, fmt.Errorf("%s: expected type, found %v", p.cur().Pos, p.cur())
	}
	p.advance()
	return t, nil
}

func (p *parser) atTypeStart() bool {
	switch p.cur().Kind {
	case KWPARALLEL, KWINT, KWLOGICAL, KWVOID:
		return true
	}
	return false
}

// topLevel parses one global declaration: a variable or a function.
func (p *parser) topLevel() (Node, error) {
	pos := p.cur().Pos
	t, err := p.typeSpec()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == LPAREN {
		return p.funcDecl(pos, t, name.Text)
	}
	if t.Base == BaseVoid {
		return nil, fmt.Errorf("%s: variable %q cannot have type void", pos, name.Text)
	}
	return p.varDeclTail(pos, t, name.Text)
}

// varDeclTail parses the remainder of a declaration after `type name`.
func (p *parser) varDeclTail(pos Pos, t Type, first string) (*VarDecl, error) {
	d := &VarDecl{Pos: pos, Type: t, Names: []string{first}, Inits: []Expr{nil}}
	if p.accept(ASSIGN) {
		init, err := p.expression()
		if err != nil {
			return nil, err
		}
		d.Inits[len(d.Inits)-1] = init
	}
	for p.accept(COMMA) {
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, name.Text)
		d.Inits = append(d.Inits, nil)
		if p.accept(ASSIGN) {
			init, err := p.expression()
			if err != nil {
				return nil, err
			}
			d.Inits[len(d.Inits)-1] = init
		}
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return d, nil
}

// funcDecl parses a function definition after `type name`.
func (p *parser) funcDecl(pos Pos, ret Type, name string) (*FuncDecl, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	f := &FuncDecl{Pos: pos, Ret: ret, Name: name}
	if !p.accept(RPAREN) {
		for {
			if p.accept(KWVOID) && p.cur().Kind == RPAREN {
				break // C-style `f(void)`
			}
			pt, err := p.typeSpec()
			if err != nil {
				return nil, err
			}
			if pt.Base == BaseVoid {
				return nil, fmt.Errorf("%s: parameter cannot be void", p.cur().Pos)
			}
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, Param{Type: pt, Name: pn.Text})
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) block() (*Block, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for p.cur().Kind != RBRACE {
		if p.cur().Kind == EOF {
			return nil, fmt.Errorf("%s: unterminated block (opened at %s)", p.cur().Pos, lb.Pos)
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // consume '}'
	return b, nil
}

func (p *parser) statement() (Stmt, error) {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case LBRACE:
		return p.block()
	case SEMI:
		p.advance()
		return &Block{Pos: pos}, nil // empty statement
	case KWIF:
		p.advance()
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.statement()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(KWELSE) {
			if els, err = p.statement(); err != nil {
				return nil, err
			}
		}
		return &If{Pos: pos, Cond: cond, Then: then, Else: els}, nil
	case KWWHERE:
		p.advance()
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.statement()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(KWELSEWHERE) {
			if els, err = p.statement(); err != nil {
				return nil, err
			}
		}
		return &Where{Pos: pos, Cond: cond, Then: then, Else: els}, nil
	case KWWHILE:
		p.advance()
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &While{Pos: pos, Cond: cond, Body: body}, nil
	case KWDO:
		p.advance()
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KWWHILE); err != nil {
			return nil, err
		}
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &DoWhile{Pos: pos, Body: body, Cond: cond}, nil
	case KWFOR:
		p.advance()
		if _, err := p.expect(LPAREN); err != nil {
			return nil, err
		}
		var init Stmt
		if p.cur().Kind != SEMI {
			if p.atTypeStart() {
				t, err := p.typeSpec()
				if err != nil {
					return nil, err
				}
				name, err := p.expect(IDENT)
				if err != nil {
					return nil, err
				}
				d, err := p.varDeclTail(pos, t, name.Text)
				if err != nil {
					return nil, err
				}
				init = d
			} else {
				x, err := p.expression()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(SEMI); err != nil {
					return nil, err
				}
				init = &ExprStmt{Pos: pos, X: x}
			}
		} else {
			p.advance()
		}
		var cond Expr
		var err error
		if p.cur().Kind != SEMI {
			if cond, err = p.expression(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		var post Expr
		if p.cur().Kind != RPAREN {
			if post, err = p.expression(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &For{Pos: pos, Init: init, Cond: cond, Post: post, Body: body}, nil
	case KWRETURN:
		p.advance()
		var val Expr
		var err error
		if p.cur().Kind != SEMI {
			if val, err = p.expression(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Return{Pos: pos, Val: val}, nil
	case KWBREAK:
		p.advance()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Break{Pos: pos}, nil
	case KWCONTINUE:
		p.advance()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Continue{Pos: pos}, nil
	}
	if p.atTypeStart() {
		t, err := p.typeSpec()
		if err != nil {
			return nil, err
		}
		if t.Base == BaseVoid {
			return nil, fmt.Errorf("%s: variable cannot have type void", pos)
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		return p.varDeclTail(pos, t, name.Text)
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: pos, X: x}, nil
}

func (p *parser) parenExpr() (Expr, error) {
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	return x, nil
}

// expression parses an assignment-level expression.
func (p *parser) expression() (Expr, error) {
	// Assignment: IDENT '=' expression (lookahead distinguishes '==').
	if p.cur().Kind == IDENT && p.peek().Kind == ASSIGN {
		name := p.advance()
		p.advance() // '='
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &Assign{Pos: name.Pos, Name: name.Text, Val: val}, nil
	}
	return p.logicalOr()
}

func (p *parser) logicalOr() (Expr, error) {
	x, err := p.logicalAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == OROR {
		op := p.advance()
		r, err := p.logicalAnd()
		if err != nil {
			return nil, err
		}
		x = &Binary{Pos: op.Pos, Op: OROR, L: x, R: r}
	}
	return x, nil
}

func (p *parser) logicalAnd() (Expr, error) {
	x, err := p.equality()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == ANDAND {
		op := p.advance()
		r, err := p.equality()
		if err != nil {
			return nil, err
		}
		x = &Binary{Pos: op.Pos, Op: ANDAND, L: x, R: r}
	}
	return x, nil
}

func (p *parser) equality() (Expr, error) {
	x, err := p.relational()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == EQ || p.cur().Kind == NEQ {
		op := p.advance()
		r, err := p.relational()
		if err != nil {
			return nil, err
		}
		x = &Binary{Pos: op.Pos, Op: op.Kind, L: x, R: r}
	}
	return x, nil
}

func (p *parser) relational() (Expr, error) {
	x, err := p.additive()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case LT, GT, LE, GE:
			op := p.advance()
			r, err := p.additive()
			if err != nil {
				return nil, err
			}
			x = &Binary{Pos: op.Pos, Op: op.Kind, L: x, R: r}
		default:
			return x, nil
		}
	}
}

func (p *parser) additive() (Expr, error) {
	x, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == PLUS || p.cur().Kind == MINUS {
		op := p.advance()
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		x = &Binary{Pos: op.Pos, Op: op.Kind, L: x, R: r}
	}
	return x, nil
}

func (p *parser) multiplicative() (Expr, error) {
	x, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == STAR || p.cur().Kind == SLASH || p.cur().Kind == PERCENT {
		op := p.advance()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		x = &Binary{Pos: op.Pos, Op: op.Kind, L: x, R: r}
	}
	return x, nil
}

func (p *parser) unary() (Expr, error) {
	switch p.cur().Kind {
	case NOT, MINUS:
		op := p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: op.Pos, Op: op.Kind, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == INC || p.cur().Kind == DEC {
		id, ok := x.(*Ident)
		if !ok {
			return nil, fmt.Errorf("%s: ++/-- requires a variable", p.cur().Pos)
		}
		op := p.advance()
		return &IncDec{Pos: op.Pos, Name: id.Name, Op: op.Kind}, nil
	}
	return x, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.advance()
		return &IntLit{Pos: t.Pos, Val: t.Val}, nil
	case IDENT:
		p.advance()
		if p.cur().Kind == LPAREN {
			p.advance()
			call := &Call{Pos: t.Pos, Name: t.Text}
			if !p.accept(RPAREN) {
				for {
					arg, err := p.expression()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(COMMA) {
						break
					}
				}
				if _, err := p.expect(RPAREN); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	case LPAREN:
		p.advance()
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, fmt.Errorf("%s: expected expression, found %v", t.Pos, t)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
