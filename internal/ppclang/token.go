// Package ppclang implements Polymorphic Parallel C (PPC), the
// data-parallel C dialect the paper uses to express the MCP algorithm
// (Maresca & Baglietto, "A Programming Model for Reconfigurable Mesh Based
// Parallel Computers"). It provides a lexer, a recursive-descent parser
// and a tree-walking interpreter that executes programs against a
// par.Array, so a PPC program and its native-Go transliteration run on the
// *same* simulated machine and can be compared cycle for cycle
// (experiment E5).
//
// The implemented subset covers everything the paper's listings use:
//
//   - declarations: `parallel` storage class, `int` and `logical` types,
//     global and local variables, functions with value parameters;
//   - statements: if/else, while, do-while, for, where/elsewhere, return,
//     break, continue, blocks, expression statements;
//   - expressions: ||, &&, ==, !=, <, <=, >, >=, +, -, *, / , % (scalar
//     only for * / %), unary !/-, ++/--, assignment, calls;
//   - builtins: shift, broadcast, min, selected_min, or, bit, any,
//     opposite, print; constants ROW, COL, N, BITS, MAXINT and the
//     directions NORTH/EAST/SOUTH/WEST.
//
// Parallel `+` saturates at MAXINT, mirroring the machine's path-cost
// arithmetic.
package ppclang

import "fmt"

// Kind classifies a token.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT // integer literal

	// Punctuation and operators.
	LPAREN  // (
	RPAREN  // )
	LBRACE  // {
	RBRACE  // }
	SEMI    // ;
	COMMA   // ,
	ASSIGN  // =
	EQ      // ==
	NEQ     // !=
	LT      // <
	GT      // >
	LE      // <=
	GE      // >=
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	NOT     // !
	ANDAND  // &&
	OROR    // ||
	INC     // ++
	DEC     // --

	// Keywords.
	KWPARALLEL
	KWINT
	KWLOGICAL
	KWVOID
	KWIF
	KWELSE
	KWWHERE
	KWELSEWHERE
	KWWHILE
	KWDO
	KWFOR
	KWRETURN
	KWBREAK
	KWCONTINUE
)

var kindNames = map[Kind]string{
	EOF: "end of input", IDENT: "identifier", INT: "integer literal",
	LPAREN: "'('", RPAREN: "')'", LBRACE: "'{'", RBRACE: "'}'",
	SEMI: "';'", COMMA: "','", ASSIGN: "'='", EQ: "'=='", NEQ: "'!='",
	LT: "'<'", GT: "'>'", LE: "'<='", GE: "'>='", PLUS: "'+'",
	MINUS: "'-'", STAR: "'*'", SLASH: "'/'", PERCENT: "'%'", NOT: "'!'",
	ANDAND: "'&&'", OROR: "'||'", INC: "'++'", DEC: "'--'",
	KWPARALLEL: "'parallel'", KWINT: "'int'", KWLOGICAL: "'logical'",
	KWVOID: "'void'", KWIF: "'if'", KWELSE: "'else'", KWWHERE: "'where'",
	KWELSEWHERE: "'elsewhere'", KWWHILE: "'while'", KWDO: "'do'",
	KWFOR: "'for'", KWRETURN: "'return'", KWBREAK: "'break'",
	KWCONTINUE: "'continue'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"parallel":  KWPARALLEL,
	"int":       KWINT,
	"logical":   KWLOGICAL,
	"void":      KWVOID,
	"if":        KWIF,
	"else":      KWELSE,
	"where":     KWWHERE,
	"elsewhere": KWELSEWHERE,
	"while":     KWWHILE,
	"do":        KWDO,
	"for":       KWFOR,
	"return":    KWRETURN,
	"break":     KWBREAK,
	"continue":  KWCONTINUE,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit.
type Token struct {
	Kind Kind
	Text string // identifier name or literal text
	Val  int64  // value of INT literals
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case INT:
		return fmt.Sprintf("literal %s", t.Text)
	default:
		return t.Kind.String()
	}
}
