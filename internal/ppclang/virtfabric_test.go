package ppclang

import (
	"reflect"
	"testing"

	"ppamcp/internal/core"
	"ppamcp/internal/graph"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
	"ppamcp/internal/virt"
)

// TestPaperProgramOnVirtualFabric runs the paper's PPC program on a
// block-mapped virtual machine: the whole language layer is
// fabric-agnostic, so an 8x8 logical program executes unchanged on a 2x2
// physical array with identical outputs (and physical cycle counts scaled
// by k, measured).
func TestPaperProgramOnVirtualFabric(t *testing.T) {
	prog, err := Compile(PaperMCPSource)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	g := graph.GenRandomConnected(n, 0.3, 9, 88)
	const dest = 3
	native, err := core.Solve(g, dest, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	run := func(m ppa.Fabric) ([]ppa.Word, ppa.Metrics) {
		in, err := NewInterp(prog, par.New(m))
		if err != nil {
			t.Fatal(err)
		}
		inf := m.Inf()
		w := make([]ppa.Word, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				switch wt := g.At(i, j); {
				case i == j:
					w[i*n+j] = 0
				case wt == graph.NoEdge:
					w[i*n+j] = inf
				default:
					w[i*n+j] = ppa.Word(wt)
				}
			}
		}
		if err := in.SetParallelInt("W", w); err != nil {
			t.Fatal(err)
		}
		if err := in.SetInt("d", dest); err != nil {
			t.Fatal(err)
		}
		if _, err := in.Call("minimum_cost_path"); err != nil {
			t.Fatal(err)
		}
		sow, err := in.GetParallelInt("SOW")
		if err != nil {
			t.Fatal(err)
		}
		return sow, m.Metrics()
	}

	direct, directMetrics := run(ppa.New(n, native.Bits))
	for _, phys := range []int{4, 2} {
		vm, err := virt.New(n, phys, native.Bits)
		if err != nil {
			t.Fatal(err)
		}
		virtual, virtualMetrics := run(vm)
		if !reflect.DeepEqual(direct, virtual) {
			t.Fatalf("phys=%d: PPC program output diverged on the virtual fabric", phys)
		}
		k := int64(n / phys)
		if virtualMetrics.BusCycles != k*directMetrics.BusCycles ||
			virtualMetrics.WiredOrCycles != k*directMetrics.WiredOrCycles {
			t.Errorf("phys=%d: cycles bus=%d wOR=%d, want %dx of bus=%d wOR=%d",
				phys, virtualMetrics.BusCycles, virtualMetrics.WiredOrCycles,
				k, directMetrics.BusCycles, directMetrics.WiredOrCycles)
		}
	}
}
