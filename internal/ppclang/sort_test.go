package ppclang

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// sortSource aliases the exported program under test.
const sortSource = SortRowsSource

func TestSortRowsInPPC(t *testing.T) {
	prog, err := Compile(sortSource)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := Check(prog); err != nil {
		t.Fatalf("Check: %v", err)
	}
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(9)
		const h = 10
		m := ppa.New(n, h)
		arr := par.New(m)
		in, err := NewInterp(prog, arr)
		if err != nil {
			t.Fatal(err)
		}
		flat := make([]ppa.Word, n*n)
		for i := range flat {
			flat[i] = ppa.Word(rng.Intn(64)) // plenty of ties
		}
		if err := in.SetParallelInt("V", flat); err != nil {
			t.Fatal(err)
		}
		before := m.Metrics()
		if _, err := in.Call("sort_rows"); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d := m.Metrics().Sub(before)
		got, _ := in.GetParallelInt("V")
		for r := 0; r < n; r++ {
			want := append([]ppa.Word(nil), flat[r*n:r*n+n]...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !reflect.DeepEqual(got[r*n:r*n+n], want) {
				t.Fatalf("trial %d row %d: %v, want %v", trial, r, got[r*n:r*n+n], want)
			}
		}
		if d.BusCycles != int64(2*n) {
			t.Errorf("trial %d: %d bus cycles, want 2n = %d", trial, d.BusCycles, 2*n)
		}
	}
}

// TestSortRowsPPCMatchesNativePrimitive: the PPC program and par.SortRows
// compute the same permutation at the same bus cost.
func TestSortRowsPPCMatchesNativePrimitive(t *testing.T) {
	prog, err := Compile(sortSource)
	if err != nil {
		t.Fatal(err)
	}
	const n, h = 6, 9
	rng := rand.New(rand.NewSource(5))
	flat := make([]ppa.Word, n*n)
	for i := range flat {
		flat[i] = ppa.Word(rng.Intn(100))
	}

	mPPC := ppa.New(n, h)
	in, err := NewInterp(prog, par.New(mPPC))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.SetParallelInt("V", flat); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Call("sort_rows"); err != nil {
		t.Fatal(err)
	}
	fromPPC, _ := in.GetParallelInt("V")

	mGo := ppa.New(n, h)
	aGo := par.New(mGo)
	fromGo := aGo.SortRows(aGo.FromSlice(flat)).Slice()

	if !reflect.DeepEqual(fromPPC, fromGo) {
		t.Fatal("PPC sort diverged from par.SortRows")
	}
	if mPPC.Metrics().BusCycles != mGo.Metrics().BusCycles {
		t.Errorf("bus cycles differ: PPC %d, native %d",
			mPPC.Metrics().BusCycles, mGo.Metrics().BusCycles)
	}
}
