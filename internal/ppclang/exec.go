package ppclang

import (
	"context"
	"errors"
	"fmt"
	"io"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// Executor runs a PPC program against a par.Array. Two implementations
// exist: the bytecode VM (the default production path) and the
// tree-walking Interp retained as the semantic oracle — the same
// fast-path/oracle split as par's fused kernels vs. ReferenceKernels.
// Both are driven through the identical host API: bind inputs with the
// Set* methods, invoke a niladic entry point with Call, read results back
// with the Get* methods.
type Executor interface {
	// Call invokes a niladic PPC function by name (the host entry point).
	Call(name string) (Value, error)
	// Array returns the array the program runs on.
	Array() *par.Array

	SetInt(name string, val int64) error
	GetInt(name string) (int64, error)
	SetParallelInt(name string, data []ppa.Word) error
	GetParallelInt(name string) ([]ppa.Word, error)
	SetParallelLogical(name string, data []bool) error
	GetParallelLogical(name string) ([]bool, error)
}

// NewExecutor creates an executor for prog on arr: the bytecode VM by
// default, or the tree-walking interpreter under WithReference(true).
// Installing either evaluates the program's global declarations in order,
// so host inputs can be bound immediately afterwards.
func NewExecutor(prog *Program, arr *par.Array, opts ...Option) (Executor, error) {
	var cfg config
	cfg.apply(opts)
	if cfg.reference {
		return NewInterp(prog, arr, opts...)
	}
	return NewVM(prog, arr, opts...)
}

// config is the execution configuration shared by both executors.
type config struct {
	out       io.Writer
	fuel      int64
	ctx       context.Context
	reference bool
}

func (c *config) apply(opts []Option) {
	c.out = io.Discard
	for _, o := range opts {
		o(c)
	}
}

// Option configures an Executor (either implementation).
type Option func(*config)

// InterpOption is kept as an alias for Option; the historical name from
// when the tree-walker was the only executor.
type InterpOption = Option

// WithOutput directs print() output to w (default: discarded).
func WithOutput(w io.Writer) Option {
	return func(c *config) { c.out = w }
}

// WithFuel bounds execution to n PPC statements per Call (0 = unlimited).
// Exhausting the budget aborts with an error satisfying
// errors.Is(err, ErrFuelExhausted). Both executors charge fuel at the same
// points — once per statement entered, in execution order — so a budgeted
// run fails at the identical statement on either path.
func WithFuel(n int64) Option {
	return func(c *config) { c.fuel = n }
}

// WithContext attaches a context whose cancellation/deadline aborts
// execution. The check is coarse-grained (every 64 statements) to keep it
// off the dispatch fast path.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// WithReference forces the tree-walking interpreter — the retained
// semantic oracle the bytecode VM is differentially tested against.
func WithReference(on bool) Option {
	return func(c *config) { c.reference = on }
}

// ErrFuelExhausted is the sentinel matched by errors.Is when a fuel
// budget set with WithFuel runs out.
var ErrFuelExhausted = errors.New("ppclang: fuel exhausted")

// FuelError reports where a fuel budget ran out.
type FuelError struct {
	Pos   Pos
	Limit int64
}

func (e *FuelError) Error() string {
	return fmt.Sprintf("%s: fuel exhausted (budget %d statements)", e.Pos, e.Limit)
}

// Is reports ErrFuelExhausted identity for errors.Is.
func (e *FuelError) Is(target error) bool { return target == ErrFuelExhausted }

// DeadlineError reports where a WithContext cancellation or deadline
// interrupted execution; it unwraps to the context's error.
type DeadlineError struct {
	Pos   Pos
	Cause error
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("%s: execution aborted: %v", e.Pos, e.Cause)
}

func (e *DeadlineError) Unwrap() error { return e.Cause }

// guard is the per-executor fuel and deadline state. Both executors call
// tick exactly once per statement entered, before the statement's effects,
// so the abort point is deterministic and identical across paths.
type guard struct {
	fuelOn   bool
	fuelLeft int64
	limit    int64
	ctx      context.Context
	ticks    uint64
}

func newGuard(cfg *config) guard {
	g := guard{ctx: cfg.ctx}
	if cfg.fuel > 0 {
		g.fuelOn = true
		g.limit = cfg.fuel
		g.fuelLeft = cfg.fuel
	}
	return g
}

// reset restores the full budget (called at each host-level Call).
func (g *guard) reset() { g.fuelLeft = g.limit }

// tick charges one statement and enforces budget and deadline.
func (g *guard) tick(pos Pos) error {
	if g.fuelOn {
		if g.fuelLeft <= 0 {
			return &FuelError{Pos: pos, Limit: g.limit}
		}
		g.fuelLeft--
	}
	if g.ctx != nil {
		g.ticks++
		if g.ticks&63 == 0 {
			select {
			case <-g.ctx.Done():
				return &DeadlineError{Pos: pos, Cause: g.ctx.Err()}
			default:
			}
		}
	}
	return nil
}
