package ppclang

import (
	"strings"
	"testing"
)

func checkOf(t *testing.T, src string) error {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return Check(prog)
}

func TestCheckAcceptsShippedPrograms(t *testing.T) {
	for name, src := range map[string]string{
		"paper mcp":          PaperMCPSource,
		"paper min":          PaperMinSource,
		"paper min verbatim": PaperMinVerbatimSource,
		"distance transform": dtSource,
		"widest path":        widestSource,
	} {
		if err := checkOf(t, src); err != nil {
			t.Errorf("%s: Check rejected a shipped program: %v", name, err)
		}
	}
}

func TestCheckFlagsStaticErrors(t *testing.T) {
	cases := map[string]struct {
		src  string
		want string // substring of the reported error
	}{
		"undefined var":       {"void main() { x = 1; }", "undefined variable"},
		"undefined in expr":   {"void main() { int a; a = b + 1; }", "undefined variable"},
		"undefined func":      {"void main() { nosuch(); }", "undefined function"},
		"redeclared local":    {"void main() { int x; int x; }", "redeclared"},
		"redeclared global":   {"int g; int g; void main() { }", "redeclared"},
		"shadow predefined":   {"int ROW; void main() { }", "redeclared"},
		"parallel if":         {"void main() { if (ROW == 0) ; }", "must be scalar"},
		"parallel while":      {"void main() { while (ROW == 0) ; }", "must be scalar"},
		"parallel dowhile":    {"void main() { do ; while (ROW == 0); }", "must be scalar"},
		"parallel for":        {"void main() { for (; ROW == 0;) ; }", "must be scalar"},
		"scalar where":        {"void main() { where (1 < 2) ; }", "must be parallel"},
		"parallel to scalar":  {"int s; void main() { s = ROW; }", "cannot assign"},
		"parallel star":       {"parallel int v; void main() { v = ROW * COL; }", "not supported on parallel"},
		"parallel unary neg":  {"parallel int v; void main() { v = -ROW; }", "unary minus on parallel"},
		"parallel incdec":     {"parallel int v; void main() { v++; }", "scalar int"},
		"break outside":       {"void main() { break; }", "outside a loop"},
		"continue outside":    {"void main() { continue; }", "outside a loop"},
		"break across where":  {"void main() { while (1 < 2) where (ROW == 0) break; }", "where boundary"},
		"return across where": {"void main() { where (ROW == 0) return; }", "where boundary"},
		"missing return":      {"int f() { }", "without returning"},
		"void returns value":  {"void f() { return 3; }", "void function returns"},
		"return missing val":  {"int f() { return; }", "missing return value"},
		"call arity":          {"int f(int x) { return x; } void main() { f(); }", "expects 1 arguments"},
		"builtin arity":       {"void main() { min(ROW, WEST); }", "expects 3 arguments"},
		"builtin scalar arg":  {"void main() { shift(ROW, COL); }", "must be scalar"},
		"void in expr":        {"void f() { } void main() { int x; x = f() + 1; }", "void value"},
		"void condition":      {"void f() { } void main() { if (f()) ; }", "void"},
		"void arg":            {"void f() { } void main() { any(f()); }", "void value"},
		"void in print":       {"void f() { } void main() { print(f()); }", "void value in print"},
		"void param arg":      {"void f() {} int g(parallel int v) { return 0; } void main() { g(f()); }", "void value"},
		"missing ret if":      {"int f(int x) { if (x > 0) return 1; }", "without returning"},
	}
	for name, c := range cases {
		err := checkOf(t, c.src)
		if err == nil {
			t.Errorf("%s: Check accepted %q", name, c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", name, err, c.want)
		}
	}
}

func TestCheckAcceptsStaticallyFinePrograms(t *testing.T) {
	cases := map[string]string{
		"if-else returns": "int f(int x) { if (x > 0) return 1; else return 2; }",
		"dowhile returns": "int f() { do return 3; while (1 < 2); }",
		"block returns":   "int f() { { int y; return y; } }",
		"loop controls":   "void main() { for (int i = 0; i < 3; i++) { if (i == 1) continue; break; } }",
		"where nesting":   "parallel int v; void main() { where (ROW == 0) where (COL == 0) v = 1; elsewhere v = 2; }",
		"promotions":      "parallel logical L; void main() { L = 1; L = ROW; L = any(L); }",
		"print scalars":   "void main() { print(1, 2 + 3, N); }",
		"recursion":       "int f(int x) { return f(x - 1); }",
		"global init":     "int a = 3; int b = a * 2; void main() { }",
		// Dynamically-failing but statically fine.
		"div zero":  "void main() { int x; x = 1 / 0; }",
		"bad dir":   "void main() { shift(ROW, 9); }",
		"bit range": "void main() { bit(ROW, 99); }",
	}
	for name, src := range cases {
		if err := checkOf(t, src); err != nil {
			t.Errorf("%s: Check rejected: %v", name, err)
		}
	}
}

func TestCheckCollectsMultipleErrors(t *testing.T) {
	err := checkOf(t, `
void main() {
	x = 1;
	break;
	if (ROW == 0) ;
}`)
	if err == nil {
		t.Fatal("no errors reported")
	}
	msg := err.Error()
	for _, want := range []string{"undefined variable", "outside a loop", "must be scalar"} {
		if !strings.Contains(msg, want) {
			t.Errorf("combined error missing %q:\n%s", want, msg)
		}
	}
}

// TestCheckConsistentWithRuntime: every statically-accepted error case in
// TestRuntimeErrors must be one the checker deliberately defers to
// runtime; conversely nothing the checker rejects may run fine. This test
// cross-validates the two layers on the shipped programs by running a
// checked program end to end.
func TestCheckThenRunPaperProgram(t *testing.T) {
	prog, err := Compile(PaperMCPSource)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(prog); err != nil {
		t.Fatalf("checker rejected the paper program: %v", err)
	}
}
