package ppclang

// This file collects the complete PPC programs shipped beyond the paper's
// own listing (PaperMCPSource in paper.go) — a small program library
// demonstrating that the language generalizes across the machine's
// algorithm family. Each is validated in this package's tests against its
// native-Go counterpart.

// DistanceTransformSource computes the city-block distance transform of a
// binary image (bind FG, read DIST back) — the shift-fabric workload of
// internal/dt, written in PPC. See TestDistanceTransformInPPC.
const DistanceTransformSource = `
parallel logical FG;     /* input: foreground mask */
parallel int DIST;       /* output: city-block distance field */

void relax(int direction, int guard_row, int guard_col)
{
	parallel int cand;
	cand = shift(DIST, direction) + 1;
	/* The torus wraps; candidates arriving across the image edge are
	 * invalid. guard_row/guard_col select the receiving edge lanes
	 * (-1 = no guard on that axis). */
	where ((guard_row >= 0 && ROW == guard_row) ||
	       (guard_col >= 0 && COL == guard_col))
		cand = MAXINT;
	where (cand < DIST)
		DIST = cand;
}

void distance_transform()
{
	parallel int old;

	DIST = MAXINT;
	where (FG)
		DIST = 0;
	do {
		old = DIST;
		relax(EAST, -1, 0);          /* east shift wraps into col 0 */
		relax(WEST, -1, N - 1);
		relax(SOUTH, 0, -1);
		relax(NORTH, N - 1, -1);
	} while (any(DIST != old));
}
`

// WidestPathSource computes single-destination widest (maximum
// bottleneck) paths — the (max, min) dual of the paper's program (bind W
// with 0 for missing links and MAXINT on the diagonal, plus d; read CAP
// and PTN back). See TestWidestPathInPPC.
const WidestPathSource = `
parallel int W;      /* capacities: 0 = no link, MAXINT on the diagonal */
int d;

parallel int CAP;
parallel int PTN;
parallel int MAX_CAP = MAXINT;  /* row-d lanes never written: keeps CAP[d][d] unbounded */

void widest_path()
{
    parallel int OLD_CAP, cand;

    where (ROW == d) {
        CAP = broadcast(broadcast(W, EAST, COL == d), SOUTH, ROW == COL);
        PTN = d;
    }
    where (ROW == d && COL == d)
        CAP = MAXINT;

    do {
        where (ROW != d) {
            cand = broadcast(CAP, SOUTH, ROW == d);
            where (W < cand)
                cand = W;          /* lanewise min(w_ij, CAP_jd) */
            CAP = cand;
            MAX_CAP = max(CAP, WEST, COL == (N - 1));
            PTN = selected_min(COL, WEST, COL == (N - 1), MAX_CAP == CAP);
        }
        where (ROW == d) {
            OLD_CAP = CAP;
            CAP = broadcast(MAX_CAP, SOUTH, ROW == COL);
            where (CAP != OLD_CAP)
                PTN = broadcast(PTN, SOUTH, ROW == COL);
        }
    } while (any(ROW == d && CAP != OLD_CAP));
}
`

// SortRowsSource sorts every row of V ascending with rank-and-route: its
// bus heads are data dependent (RANK == k), the per-PE dynamic
// reconfiguration that distinguishes the PPA from a plain mesh. Cost: 2N
// bus cycles, cycle-identical to the Go-level par.SortRows. See
// TestSortRowsInPPC.
const SortRowsSource = `
parallel int V;       /* input and output: each row sorted ascending */

void sort_rows()
{
    parallel int RANK, pivot, routed;
    int k;

    /* Rank: count, for each PE, the row values ordered before its own
     * (ties break toward the smaller column). */
    for (k = 0; k < N; k++) {
        pivot = broadcast(V, EAST, COL == k);
        where (pivot < V || (pivot == V && k < COL))
            RANK = RANK + 1;
    }

    /* Route: the PE holding rank k broadcasts; column k captures. */
    routed = V;
    for (k = 0; k < N; k++) {
        pivot = broadcast(V, EAST, RANK == k);
        where (COL == k)
            routed = pivot;
    }
    V = routed;
}
`
