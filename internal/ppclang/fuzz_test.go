package ppclang

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// FuzzCompile asserts the front end never panics and that anything it
// accepts can at least be installed into an interpreter without crashing
// (global initializers may legitimately fail with an error).
func FuzzCompile(f *testing.F) {
	seeds := []string{
		PaperMCPSource,
		PaperMinSource,
		dtSource,
		"int x = 1;",
		"void main() { where (ROW == 0) ; elsewhere ; }",
		"parallel logical L; void f(parallel int v, int s) { return; }",
		"void main() { for (int i = 0; i < 3; i++) { break; } }",
		"/* comment */ // line\nint y;",
		"void main() { do ; while (0 != 0); }",
		"int f(int x) { return f(x - 1); } void main() { }",
		"}{)(!!!",
		"int 5x;",
		"where where where",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err != nil {
			return
		}
		// Accepted programs must also survive interpreter installation.
		_, _ = NewInterp(prog, par.New(ppa.New(2, 8)))
	})
}

// FuzzDiffExec is the differential oracle fuzzer: any program the front
// end accepts is executed on both the tree-walking interpreter and the
// bytecode VM, and every observable — construction error, per-call error
// string, return value, print output, readable globals, and the machine's
// ppa.Metrics — must be byte-identical. Entry points are all niladic
// functions, called in sorted order with cumulative state. Fuel bounds
// runtime so infinite loops fuzz fine; the fuel error itself must match
// across paths too.
func FuzzDiffExec(f *testing.F) {
	seeds := []string{
		PaperMCPSource,
		PaperMinSource,
		SortRowsSource,
		WidestPathSource,
		DistanceTransformSource,
		dtSource,
		"int x = 1; void main() { x++; print(x); }",
		"parallel int V; void main() { where (ROW == 0) { V = V + 1; } elsewhere { V = shift(V, EAST); } }",
		"void main() { for (int i = 0; i < 3; i++) { if (i == 1) continue; break; } }",
		"int f(int x) { if (x < 1) return 0; return f(x - 1); } void main() { f(5); }",
		"void main() { int a; a = 1 / 0; }",
		"void main() { undefined_var = 1; }",
		"void main() { while (1) ; }",
		"parallel logical L; void main() { L = bit(ROW, 99); }",
		"int x; int x; void main() { }",
		"void main() { where (ROW == 0) { break; } }",
		// Regression: a local initializer must resolve names against the
		// enclosing scope, not the slot being declared.
		"int x = 7; void main() { int x = x + 1; }",
		"void main() { int fresh = fresh; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err != nil {
			return
		}
		run := func(reference bool) string {
			var trace strings.Builder
			m := ppa.New(3, 8)
			arr := par.New(m)
			ex, cerr := NewExecutor(prog, arr,
				WithOutput(&trace), WithReference(reference), WithFuel(2000))
			fmt.Fprintf(&trace, "\n[new] err=%v metrics=%+v\n", cerr, m.Metrics())
			if cerr != nil {
				return trace.String()
			}
			var entries []string
			for name, fn := range prog.Funcs {
				if len(fn.Params) == 0 {
					entries = append(entries, name)
				}
			}
			sort.Strings(entries)
			for _, entry := range entries {
				v, err := ex.Call(entry)
				fmt.Fprintf(&trace, "[call %s] err=%v", entry, err)
				if err == nil {
					fmt.Fprintf(&trace, " val=%s %s", v.T, v)
					if v.T.Parallel && v.T.Base == BaseInt {
						fmt.Fprintf(&trace, " %v", v.PInt.Slice())
					} else if v.T.Parallel && v.T.Base == BaseLogical {
						fmt.Fprintf(&trace, " %v", v.PBool.Slice())
					}
				}
				fmt.Fprintf(&trace, " metrics=%+v\n", m.Metrics())
			}
			for _, d := range prog.Globals {
				for _, name := range d.Names {
					switch {
					case d.Type.Parallel && d.Type.Base == BaseInt:
						v, err := ex.GetParallelInt(name)
						fmt.Fprintf(&trace, "[g %s] %v %v\n", name, v, err)
					case d.Type.Parallel && d.Type.Base == BaseLogical:
						v, err := ex.GetParallelLogical(name)
						fmt.Fprintf(&trace, "[g %s] %v %v\n", name, v, err)
					default:
						v, err := ex.GetInt(name)
						fmt.Fprintf(&trace, "[g %s] %v %v\n", name, v, err)
					}
				}
			}
			return trace.String()
		}
		oracle := run(true)
		vm := run(false)
		if oracle != vm {
			t.Fatalf("executors diverged on:\n%s\n--- oracle ---\n%s\n--- vm ---\n%s", src, oracle, vm)
		}
	})
}
