package ppclang

import (
	"testing"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// FuzzCompile asserts the front end never panics and that anything it
// accepts can at least be installed into an interpreter without crashing
// (global initializers may legitimately fail with an error).
func FuzzCompile(f *testing.F) {
	seeds := []string{
		PaperMCPSource,
		PaperMinSource,
		dtSource,
		"int x = 1;",
		"void main() { where (ROW == 0) ; elsewhere ; }",
		"parallel logical L; void f(parallel int v, int s) { return; }",
		"void main() { for (int i = 0; i < 3; i++) { break; } }",
		"/* comment */ // line\nint y;",
		"void main() { do ; while (0 != 0); }",
		"int f(int x) { return f(x - 1); } void main() { }",
		"}{)(!!!",
		"int 5x;",
		"where where where",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err != nil {
			return
		}
		// Accepted programs must also survive interpreter installation.
		_, _ = NewInterp(prog, par.New(ppa.New(2, 8)))
	})
}
