package ppclang

import (
	"fmt"
	"strconv"
)

// lexer scans PPC source into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{l.line, l.col} }

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool   { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool   { return c >= '0' && c <= '9' }
func isLetter(c byte) bool  { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentCh(c byte) bool { return isLetter(c) || isDigit(c) }

// skipSpaceAndComments consumes whitespace, // line comments and
// /* block */ comments.
func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		switch {
		case isSpace(l.peek()):
			l.advance()
		case l.peek() == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case l.peek() == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return fmt.Errorf("%s: unterminated block comment", start)
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	p := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: p}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, fmt.Errorf("%s: bad integer literal %q", p, text)
		}
		return Token{Kind: INT, Text: text, Val: v, Pos: p}, nil
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && isIdentCh(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: p}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: p}, nil
	}
	l.advance()
	two := func(second byte, both, single Kind) (Token, error) {
		if l.peek() == second {
			l.advance()
			return Token{Kind: both, Pos: p}, nil
		}
		return Token{Kind: single, Pos: p}, nil
	}
	switch c {
	case '(':
		return Token{Kind: LPAREN, Pos: p}, nil
	case ')':
		return Token{Kind: RPAREN, Pos: p}, nil
	case '{':
		return Token{Kind: LBRACE, Pos: p}, nil
	case '}':
		return Token{Kind: RBRACE, Pos: p}, nil
	case ';':
		return Token{Kind: SEMI, Pos: p}, nil
	case ',':
		return Token{Kind: COMMA, Pos: p}, nil
	case '=':
		return two('=', EQ, ASSIGN)
	case '!':
		return two('=', NEQ, NOT)
	case '<':
		return two('=', LE, LT)
	case '>':
		return two('=', GE, GT)
	case '+':
		return two('+', INC, PLUS)
	case '-':
		return two('-', DEC, MINUS)
	case '*':
		return Token{Kind: STAR, Pos: p}, nil
	case '/':
		return Token{Kind: SLASH, Pos: p}, nil
	case '%':
		return Token{Kind: PERCENT, Pos: p}, nil
	case '&':
		if l.peek() == '&' {
			l.advance()
			return Token{Kind: ANDAND, Pos: p}, nil
		}
		return Token{}, fmt.Errorf("%s: unexpected '&' (PPC has no bitwise operators; use bit())", p)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return Token{Kind: OROR, Pos: p}, nil
		}
		return Token{}, fmt.Errorf("%s: unexpected '|'", p)
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", p, string(c))
}

// lexAll scans the whole source.
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
