package ppclang

import (
	"errors"
	"fmt"
)

// Check performs static semantic analysis of a compiled program — the
// front-end pass a PPC compiler would run before code generation. It
// reports, with positions:
//
//   - undefined variables and functions; redeclarations; arity errors;
//   - type errors: parallel values in scalar contexts (conditions of
//     if/while/do/for need any()), scalar conditions under where,
//     void values used in expressions, parallel * / % and unary minus,
//     ++/-- on anything but a scalar int;
//   - placement errors: break/continue outside loops, and
//     break/continue/return crossing a where boundary (SIMD control
//     cannot diverge per PE);
//   - non-void functions that can fall off the end without returning.
//
// Value-dependent conditions (division by zero, direction operands out of
// 0..3, bit-plane ranges, recursion depth) remain runtime errors.
// cmd/ppcrun runs Check before executing; the interpreter re-detects
// everything dynamically, so Check is a usability layer, not a soundness
// requirement.
func Check(prog *Program) error {
	c := &checker{
		prog:    prog,
		globals: map[string]Type{},
	}
	// Predefined environment (must match NewInterp's).
	for name, t := range map[string]Type{
		"ROW": {Parallel: true, Base: BaseInt},
		"COL": {Parallel: true, Base: BaseInt},
		"N":   {Base: BaseInt}, "BITS": {Base: BaseInt}, "MAXINT": {Base: BaseInt},
		"NORTH": {Base: BaseInt}, "EAST": {Base: BaseInt},
		"SOUTH": {Base: BaseInt}, "WEST": {Base: BaseInt},
	} {
		c.globals[name] = t
	}
	for _, d := range prog.Globals {
		c.checkGlobalDecl(d)
	}
	for _, f := range prog.Funcs {
		c.checkFunc(f)
	}
	return errors.Join(c.errs...)
}

type checker struct {
	prog    *Program
	globals map[string]Type
	errs    []error

	// per-function state
	scopes     []map[string]Type
	ret        Type
	loopDepth  int
	whereDepth int
}

func (c *checker) errorf(pos Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (c *checker) lookup(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	t, ok := c.globals[name]
	return t, ok
}

func (c *checker) declare(pos Pos, name string, t Type) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(pos, "variable %q redeclared in this scope", name)
		return
	}
	top[name] = t
}

func (c *checker) checkGlobalDecl(d *VarDecl) {
	for k, name := range d.Names {
		if _, dup := c.globals[name]; dup {
			c.errorf(d.Pos, "global %q redeclared (or shadows a predefined name)", name)
		}
		c.globals[name] = d.Type
		if init := d.Inits[k]; init != nil {
			// Global initializers run in the global scope.
			c.scopes = []map[string]Type{{}}
			t := c.checkExpr(init)
			c.requireAssignable(init.nodePos(), t, d.Type)
			c.scopes = nil
		}
	}
}

func (c *checker) checkFunc(f *FuncDecl) {
	c.scopes = []map[string]Type{{}}
	c.ret = f.Ret
	c.loopDepth, c.whereDepth = 0, 0
	for _, p := range f.Params {
		c.declare(f.Pos, p.Name, p.Type)
	}
	c.checkStmt(f.Body)
	if f.Ret.Base != BaseVoid && !alwaysReturns(f.Body) {
		c.errorf(f.Pos, "function %q may reach its end without returning %s", f.Name, f.Ret)
	}
	c.scopes = nil
}

// alwaysReturns conservatively decides whether every path through s ends
// in a return.
func alwaysReturns(s Stmt) bool {
	switch st := s.(type) {
	case *Return:
		return true
	case *Block:
		for _, sub := range st.Stmts {
			if alwaysReturns(sub) {
				return true
			}
		}
		return false
	case *If:
		return st.Else != nil && alwaysReturns(st.Then) && alwaysReturns(st.Else)
	case *DoWhile:
		return alwaysReturns(st.Body)
	default:
		return false
	}
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]Type{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *VarDecl:
		for k, name := range st.Names {
			if init := st.Inits[k]; init != nil {
				t := c.checkExpr(init)
				c.requireAssignable(init.nodePos(), t, st.Type)
			}
			c.declare(st.Pos, name, st.Type)
		}
	case *ExprStmt:
		c.checkExpr(st.X)
	case *Block:
		c.pushScope()
		for _, sub := range st.Stmts {
			c.checkStmt(sub)
		}
		c.popScope()
	case *If:
		c.requireScalarCond(st.Cond, "if")
		c.pushScope()
		c.checkStmt(st.Then)
		c.popScope()
		if st.Else != nil {
			c.pushScope()
			c.checkStmt(st.Else)
			c.popScope()
		}
	case *Where:
		t := c.checkExpr(st.Cond)
		if t.Base != BaseVoid && !t.Parallel {
			c.errorf(st.Cond.nodePos(), "where condition must be parallel, got %s (use if for scalar conditions)", t)
		}
		c.whereDepth++
		c.pushScope()
		c.checkStmt(st.Then)
		c.popScope()
		if st.Else != nil {
			c.pushScope()
			c.checkStmt(st.Else)
			c.popScope()
		}
		c.whereDepth--
	case *While:
		c.requireScalarCond(st.Cond, "while")
		c.loopDepth++
		c.pushScope()
		c.checkStmt(st.Body)
		c.popScope()
		c.loopDepth--
	case *DoWhile:
		c.loopDepth++
		c.pushScope()
		c.checkStmt(st.Body)
		c.popScope()
		c.loopDepth--
		c.requireScalarCond(st.Cond, "do-while")
	case *For:
		c.pushScope()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.requireScalarCond(st.Cond, "for")
		}
		if st.Post != nil {
			c.checkExpr(st.Post)
		}
		c.loopDepth++
		c.pushScope()
		c.checkStmt(st.Body)
		c.popScope()
		c.loopDepth--
		c.popScope()
	case *Return:
		if c.whereDepth > 0 {
			c.errorf(st.Pos, "return cannot cross a where boundary")
		}
		if st.Val == nil {
			if c.ret.Base != BaseVoid {
				c.errorf(st.Pos, "missing return value (%s expected)", c.ret)
			}
			return
		}
		if c.ret.Base == BaseVoid {
			c.errorf(st.Pos, "void function returns a value")
			c.checkExpr(st.Val)
			return
		}
		t := c.checkExpr(st.Val)
		c.requireAssignable(st.Pos, t, c.ret)
	case *Break:
		if c.loopDepth == 0 {
			c.errorf(st.Pos, "break outside a loop")
		} else if c.whereDepth > 0 {
			c.errorf(st.Pos, "break cannot cross a where boundary")
		}
	case *Continue:
		if c.loopDepth == 0 {
			c.errorf(st.Pos, "continue outside a loop")
		} else if c.whereDepth > 0 {
			c.errorf(st.Pos, "continue cannot cross a where boundary")
		}
	}
}

func (c *checker) requireScalarCond(e Expr, what string) {
	t := c.checkExpr(e)
	if t.Base == BaseVoid {
		c.errorf(e.nodePos(), "%s condition is void", what)
		return
	}
	if t.Parallel {
		c.errorf(e.nodePos(), "%s condition must be scalar, got %s (reduce with any())", what, t)
	}
}

// requireAssignable mirrors the runtime conversion rules.
func (c *checker) requireAssignable(pos Pos, from, to Type) {
	if from.Base == BaseVoid {
		c.errorf(pos, "void value in expression")
		return
	}
	if from.Parallel && !to.Parallel {
		c.errorf(pos, "cannot assign %s to %s (reduce with any() first)", from, to)
	}
}

// checkExpr types an expression; errors are recorded and a best-effort
// type returned so checking can continue.
func (c *checker) checkExpr(e Expr) Type {
	switch ex := e.(type) {
	case *IntLit:
		return Type{Base: BaseInt}
	case *Ident:
		t, ok := c.lookup(ex.Name)
		if !ok {
			c.errorf(ex.Pos, "undefined variable %q", ex.Name)
			return Type{Base: BaseInt}
		}
		return t
	case *Assign:
		target, ok := c.lookup(ex.Name)
		if !ok {
			c.errorf(ex.Pos, "undefined variable %q", ex.Name)
			c.checkExpr(ex.Val)
			return Type{Base: BaseInt}
		}
		t := c.checkExpr(ex.Val)
		c.requireAssignable(ex.Pos, t, target)
		return target
	case *IncDec:
		t, ok := c.lookup(ex.Name)
		if !ok {
			c.errorf(ex.Pos, "undefined variable %q", ex.Name)
			return Type{Base: BaseInt}
		}
		if t.Parallel || t.Base != BaseInt {
			c.errorf(ex.Pos, "++/-- requires a scalar int, %q is %s", ex.Name, t)
		}
		return Type{Base: BaseInt}
	case *Unary:
		t := c.checkExpr(ex.X)
		if t.Base == BaseVoid {
			c.errorf(ex.Pos, "void value in expression")
			return Type{Base: BaseInt}
		}
		if ex.Op == MINUS {
			if t.Parallel {
				c.errorf(ex.Pos, "unary minus on parallel values is not supported")
			}
			return Type{Base: BaseInt}
		}
		return Type{Parallel: t.Parallel, Base: BaseLogical}
	case *Binary:
		return c.checkBinary(ex)
	case *Call:
		return c.checkCall(ex)
	}
	return Type{Base: BaseInt}
}

func (c *checker) checkBinary(ex *Binary) Type {
	l := c.checkExpr(ex.L)
	r := c.checkExpr(ex.R)
	if l.Base == BaseVoid {
		c.errorf(ex.L.nodePos(), "void value in expression")
		return Type{Base: BaseInt}
	}
	if r.Base == BaseVoid {
		c.errorf(ex.R.nodePos(), "void value in expression")
		return Type{Base: BaseInt}
	}
	parallel := l.Parallel || r.Parallel
	switch ex.Op {
	case ANDAND, OROR:
		return Type{Parallel: parallel, Base: BaseLogical}
	case EQ, NEQ, LT, LE, GT, GE:
		return Type{Parallel: parallel, Base: BaseLogical}
	case STAR, SLASH, PERCENT:
		if parallel {
			c.errorf(ex.Pos, "%v is not supported on parallel values", ex.Op)
		}
		return Type{Base: BaseInt}
	default: // PLUS, MINUS
		return Type{Parallel: parallel, Base: BaseInt}
	}
}

// builtinSig describes a builtin's static signature: argument kinds and
// how its result type derives from the arguments.
type builtinSig struct {
	argc int
	// kinds: 'p' = parallel (any base), 's' = scalar, 'i' = parallel int,
	// '*' = anything non-void.
	kinds  string
	result func(args []Type) Type
}

var builtinSigs = map[string]builtinSig{
	"shift": {2, "ps", func(a []Type) Type { return a[0] }},
	"broadcast": {3, "psp", func(a []Type) Type {
		return Type{Parallel: true, Base: a[0].Base}
	}},
	"min":          {3, "isp", parallelIntResult},
	"max":          {3, "isp", parallelIntResult},
	"selected_min": {4, "ispp", parallelIntResult},
	"selected_max": {4, "ispp", parallelIntResult},
	"or":           {3, "psp", func([]Type) Type { return Type{Parallel: true, Base: BaseLogical} }},
	"bit":          {2, "is", func([]Type) Type { return Type{Parallel: true, Base: BaseLogical} }},
	"any":          {1, "p", func([]Type) Type { return Type{Base: BaseLogical} }},
	"opposite":     {1, "s", func([]Type) Type { return Type{Base: BaseInt} }},
}

func parallelIntResult([]Type) Type { return Type{Parallel: true, Base: BaseInt} }

func (c *checker) checkCall(ex *Call) Type {
	if ex.Name == "print" {
		for _, a := range ex.Args {
			if t := c.checkExpr(a); t.Base == BaseVoid {
				c.errorf(a.nodePos(), "void value in print")
			}
		}
		return Type{Base: BaseVoid}
	}
	if sig, ok := builtinSigs[ex.Name]; ok {
		if len(ex.Args) != sig.argc {
			c.errorf(ex.Pos, "%s expects %d arguments, got %d", ex.Name, sig.argc, len(ex.Args))
			for _, a := range ex.Args {
				c.checkExpr(a)
			}
			return sig.result(make([]Type, sig.argc))
		}
		args := make([]Type, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = c.checkExpr(a)
			if args[i].Base == BaseVoid {
				c.errorf(a.nodePos(), "void value as argument %d of %s", i+1, ex.Name)
				continue
			}
			switch sig.kinds[i] {
			case 's':
				if args[i].Parallel {
					c.errorf(a.nodePos(), "argument %d of %s must be scalar, got %s", i+1, ex.Name, args[i])
				}
			case 'p', 'i':
				// Scalars promote to parallel; nothing to reject
				// statically beyond void (handled above).
			}
		}
		return sig.result(args)
	}
	f, ok := c.prog.Funcs[ex.Name]
	if !ok {
		c.errorf(ex.Pos, "undefined function %q", ex.Name)
		for _, a := range ex.Args {
			c.checkExpr(a)
		}
		return Type{Base: BaseInt}
	}
	if len(ex.Args) != len(f.Params) {
		c.errorf(ex.Pos, "%s expects %d arguments, got %d", ex.Name, len(f.Params), len(ex.Args))
	}
	for i, a := range ex.Args {
		t := c.checkExpr(a)
		if i < len(f.Params) {
			c.requireAssignable(a.nodePos(), t, f.Params[i].Type)
		}
	}
	return f.Ret
}
