package ppclang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	ks := make([]Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestLexBasics(t *testing.T) {
	toks, err := lexAll("parallel int x = 42; where (x == 3) x = x + 1;")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{
		KWPARALLEL, KWINT, IDENT, ASSIGN, INT, SEMI,
		KWWHERE, LPAREN, IDENT, EQ, INT, RPAREN,
		IDENT, ASSIGN, IDENT, PLUS, INT, SEMI, EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: %v, want %v", i, got[i], want[i])
		}
	}
	if toks[4].Val != 42 {
		t.Errorf("literal value = %d", toks[4].Val)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lexAll("== != <= >= < > = ! && || ++ -- + - * / %")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{EQ, NEQ, LE, GE, LT, GT, ASSIGN, NOT, ANDAND, OROR,
		INC, DEC, PLUS, MINUS, STAR, SLASH, PERCENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
// line comment
int x; /* block
comment */ int y;`
	toks, err := lexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KWINT, IDENT, SEMI, KWINT, IDENT, SEMI, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lexAll("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) || toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("positions: %v, %v", toks[0].Pos, toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"@", "x & y", "x | y", "/* unterminated", "#define"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) succeeded, want error", src)
		}
	}
}

func TestLexKeywordsAll(t *testing.T) {
	for word, kind := range keywords {
		toks, err := lexAll(word)
		if err != nil || toks[0].Kind != kind {
			t.Errorf("keyword %q: %v %v", word, toks, err)
		}
	}
	// Identifiers that merely contain keywords stay identifiers.
	toks, _ := lexAll("interior whereabouts")
	if toks[0].Kind != IDENT || toks[1].Kind != IDENT {
		t.Error("keyword prefix misclassified")
	}
}

func TestTokenAndKindString(t *testing.T) {
	toks, _ := lexAll("x 5 +")
	if !strings.Contains(toks[0].String(), "x") ||
		!strings.Contains(toks[1].String(), "5") ||
		toks[2].String() != "'+'" {
		t.Errorf("token strings: %v %v %v", toks[0], toks[1], toks[2])
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind string empty")
	}
}
