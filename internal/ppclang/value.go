package ppclang

import (
	"fmt"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// Value is a PPC runtime value: a scalar (controller) int or logical, or a
// parallel int or logical living on the array.
type Value struct {
	T     Type
	SInt  int64
	SBool bool
	PInt  *par.Var
	PBool *par.Bool
}

func scalarInt(v int64) Value { return Value{T: Type{Base: BaseInt}, SInt: v} }
func scalarBool(b bool) Value { return Value{T: Type{Base: BaseLogical}, SBool: b} }
func parallelInt(v *par.Var) Value {
	return Value{T: Type{Parallel: true, Base: BaseInt}, PInt: v}
}
func parallelBool(b *par.Bool) Value {
	return Value{T: Type{Parallel: true, Base: BaseLogical}, PBool: b}
}

func voidValue() Value { return Value{T: Type{Base: BaseVoid}} }

func (v Value) String() string {
	switch {
	case v.T.Base == BaseVoid:
		return "void"
	case !v.T.Parallel && v.T.Base == BaseInt:
		return fmt.Sprintf("%d", v.SInt)
	case !v.T.Parallel && v.T.Base == BaseLogical:
		if v.SBool {
			return "1"
		}
		return "0"
	default:
		return "<" + v.T.String() + ">"
	}
}

// runtimeErr is an evaluation error with a source position.
type runtimeErr struct {
	pos Pos
	msg string
}

func (e *runtimeErr) Error() string { return fmt.Sprintf("%s: %s", e.pos, e.msg) }

func errAt(pos Pos, format string, args ...interface{}) error {
	return &runtimeErr{pos: pos, msg: fmt.Sprintf(format, args...)}
}

// conversions

// asScalarInt converts a scalar value to int64 (logical -> 0/1).
func asScalarInt(pos Pos, v Value) (int64, error) {
	if v.T.Parallel {
		return 0, errAt(pos, "expected a scalar value, got %s", v.T)
	}
	switch v.T.Base {
	case BaseInt:
		return v.SInt, nil
	case BaseLogical:
		if v.SBool {
			return 1, nil
		}
		return 0, nil
	}
	return 0, errAt(pos, "void value in expression")
}

// asScalarBool converts a scalar value to bool (int -> nonzero).
func asScalarBool(pos Pos, v Value) (bool, error) {
	if v.T.Parallel {
		return false, errAt(pos, "expected a scalar condition, got %s (use any() to reduce)", v.T)
	}
	switch v.T.Base {
	case BaseInt:
		return v.SInt != 0, nil
	case BaseLogical:
		return v.SBool, nil
	}
	return false, errAt(pos, "void value in condition")
}

// asParallelInt promotes v to a parallel int on arr.
func asParallelInt(pos Pos, arr *par.Array, v Value) (*par.Var, error) {
	switch {
	case v.T.Parallel && v.T.Base == BaseInt:
		return v.PInt, nil
	case v.T.Parallel && v.T.Base == BaseLogical:
		return v.PBool.ToVar(), nil
	case v.T.Base == BaseVoid:
		return nil, errAt(pos, "void value in expression")
	default:
		s, err := asScalarInt(pos, v)
		if err != nil {
			return nil, err
		}
		if s < 0 || ppa.Word(s) > arr.Machine().Inf() {
			return nil, errAt(pos, "scalar %d not representable on the %d-bit array", s, arr.Machine().Bits())
		}
		return arr.Lit(ppa.Word(s)), nil
	}
}

// asParallelBool promotes v to a parallel logical on arr.
func asParallelBool(pos Pos, arr *par.Array, v Value) (*par.Bool, error) {
	switch {
	case v.T.Parallel && v.T.Base == BaseLogical:
		return v.PBool, nil
	case v.T.Parallel && v.T.Base == BaseInt:
		return v.PInt.NeConst(0), nil
	case v.T.Base == BaseVoid:
		return nil, errAt(pos, "void value in expression")
	default:
		b, err := asScalarBool(pos, v)
		if err != nil {
			return nil, err
		}
		if b {
			return arr.True(), nil
		}
		return arr.False(), nil
	}
}

// convertTo coerces v to the declared type t (C-style int<->logical
// conversions; scalar->parallel promotion; parallel->scalar is an error).
func convertTo(pos Pos, arr *par.Array, v Value, t Type) (Value, error) {
	if v.T.Parallel && !t.Parallel {
		return Value{}, errAt(pos, "cannot assign %s to %s (reduce with any() first)", v.T, t)
	}
	switch {
	case t.Parallel && t.Base == BaseInt:
		p, err := asParallelInt(pos, arr, v)
		if err != nil {
			return Value{}, err
		}
		return parallelInt(p), nil
	case t.Parallel && t.Base == BaseLogical:
		p, err := asParallelBool(pos, arr, v)
		if err != nil {
			return Value{}, err
		}
		return parallelBool(p), nil
	case t.Base == BaseInt:
		s, err := asScalarInt(pos, v)
		if err != nil {
			return Value{}, err
		}
		return scalarInt(s), nil
	case t.Base == BaseLogical:
		b, err := asScalarBool(pos, v)
		if err != nil {
			return Value{}, err
		}
		return scalarBool(b), nil
	}
	return Value{}, errAt(pos, "cannot convert %s to %s", v.T, t)
}
