package ppclang

import (
	"testing"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// Dispatch-overhead microbenchmarks: compile once, execute the entry
// point repeatedly on a warm executor. scalarLoop is pure controller
// work (no machine transactions), so it isolates executor dispatch;
// the paper benchmarks measure the full mix.

const scalarLoopSrc = `
int total;
int add(int a, int b) { return a + b; }
void main() {
	total = 0;
	for (int i = 0; i < 200; i++) {
		total = add(total, i) % 251;
		if (total > 100) { total = total - 50; }
	}
}
`

const parallelLoopSrc = `
parallel int V;
void main() {
	V = ROW + COL;
	for (int i = 0; i < 20; i++) {
		where (bit(V, 0)) { V = V + 1; }
		elsewhere { V = max(V, EAST, COL == 0); }
		V = shift(V, SOUTH);
	}
}
`

func benchExec(b *testing.B, src string, reference bool) {
	prog, err := Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	ex, err := NewExecutor(prog, par.New(ppa.New(8, 10)), WithReference(reference))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Call("main"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarLoopBytecode(b *testing.B)  { benchExec(b, scalarLoopSrc, false) }
func BenchmarkScalarLoopReference(b *testing.B) { benchExec(b, scalarLoopSrc, true) }

func BenchmarkParallelLoopBytecode(b *testing.B)  { benchExec(b, parallelLoopSrc, false) }
func BenchmarkParallelLoopReference(b *testing.B) { benchExec(b, parallelLoopSrc, true) }

// BenchmarkCompileToBytecode measures the lowering pass alone (parse
// excluded): what a cold NewVM pays over a cold NewInterp.
func BenchmarkCompileToBytecode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := Compile(PaperMCPSource)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bytecode(prog); err != nil {
			b.Fatal(err)
		}
	}
}
