package ppclang

import (
	"math/rand"
	"strings"
	"testing"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// TestCompileNeverPanics feeds the compiler random garbage built from the
// language's own token fragments: it must always return (possibly an
// error), never panic.
func TestCompileNeverPanics(t *testing.T) {
	fragments := []string{
		"int", "parallel", "logical", "void", "where", "elsewhere", "if",
		"else", "while", "do", "for", "return", "break", "continue",
		"x", "y", "min", "broadcast", "ROW", "N", "42", "0", "(", ")",
		"{", "}", ";", ",", "=", "==", "!=", "<", "<=", "+", "-", "*",
		"/", "%", "!", "&&", "||", "++", "--",
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		var sb strings.Builder
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			sb.WriteString(fragments[rng.Intn(len(fragments))])
			sb.WriteByte(' ')
		}
		src := sb.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Compile panicked on %q: %v", src, r)
				}
			}()
			_, _ = Compile(src) //nolint:errcheck // error or success both fine
		}()
	}
}

// TestCompileNeverPanicsOnRandomBytes does the same with raw byte noise.
func TestCompileNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		buf := make([]byte, rng.Intn(80))
		for i := range buf {
			buf[i] = byte(rng.Intn(128))
		}
		src := string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Compile panicked on %q: %v", src, r)
				}
			}()
			_, _ = Compile(src)
		}()
	}
}

// TestBuiltinErrorPaths drives every builtin through its argument
// validation.
func TestBuiltinErrorPaths(t *testing.T) {
	cases := map[string]string{
		"shift argc":           "void main() { shift(ROW); }",
		"shift bad dir":        "void main() { shift(ROW, 7); }",
		"shift dir parallel":   "void main() { shift(ROW, COL); }",
		"broadcast argc":       "void main() { broadcast(ROW, EAST); }",
		"broadcast bad dir":    "void main() { broadcast(ROW, 4, COL == 0); }",
		"broadcast void L":     "void f() {} void main() { broadcast(ROW, EAST, f()); }",
		"min void src":         "void f() {} void main() { min(f(), EAST, COL == 0); }",
		"min bad dir":          "void main() { min(ROW, 12, COL == 0); }",
		"max argc":             "void main() { max(ROW, EAST); }",
		"max bad dir":          "void main() { max(ROW, 9, COL == 0); }",
		"selected_min argc":    "void main() { selected_min(COL, WEST, COL == 0); }",
		"selected_min bad dir": "void main() { selected_min(COL, -1, COL == 0, COL == 0); }",
		"selected_max argc":    "void main() { selected_max(COL, WEST, COL == 0); }",
		"selected_max bad dir": "void main() { selected_max(COL, 5, COL == 0, COL == 0); }",
		"or argc":              "void main() { or(COL == 0, EAST); }",
		"or bad dir":           "void main() { or(COL == 0, 8, COL == 0); }",
		"bit argc":             "void main() { bit(ROW); }",
		"bit negative":         "void main() { bit(ROW, -1); }",
		"any argc":             "void main() { any(ROW == 0, ROW == 1); }",
		"any void":             "void f() {} void main() { any(f()); }",
		"opposite argc":        "void main() { opposite(); }",
		"opposite bad":         "void main() { opposite(77); }",
		"print void nested":    "void f() {} void main() { print(f() + 1); }",
		"minus void":           "void f() {} void main() { int x; x = -f(); }",
		"not void":             "void f() {} void main() { int x; x = !f(); }",
		"binary void left":     "void f() {} void main() { int x; x = f() + 1; }",
		"assign void":          "void f() {} void main() { int x; x = f(); }",
		"cond void":            "void f() {} void main() { if (f()) ; }",
		"selmin sel void":      "void f() {} void main() { selected_min(COL, WEST, COL == 0, f()); }",
		"shift void src":       "void f() {} void main() { shift(f(), EAST); }",
	}
	for name, src := range cases {
		in := newTestInterp(t, src, 2, 8)
		if _, err := in.Call("main"); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestPrintBoolGridAndScalars exercises printValue's remaining shapes.
func TestPrintBoolGridAndScalars(t *testing.T) {
	src := `
parallel logical L;
logical s;
void main() {
	L = ROW == 0;
	s = 0;
	print(L);
	print(s);
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	in, err := NewInterp(prog, par.New(ppa.New(2, 8)), WithOutput(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Call("main"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1 1") || !strings.Contains(out, "0 0") {
		t.Errorf("bool grid missing:\n%s", out)
	}
}

// TestGlobalRedeclarationRejected covers NewInterp's collision paths.
func TestGlobalRedeclarationRejected(t *testing.T) {
	prog, err := Compile("int ROW;\nvoid main() { }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInterp(prog, par.New(ppa.New(2, 8))); err == nil {
		t.Error("shadowing predefined ROW accepted")
	}
	prog2, err := Compile("int x, x;\nvoid main() { }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInterp(prog2, par.New(ppa.New(2, 8))); err == nil {
		t.Error("duplicate global accepted")
	}
}

// TestGlobalInitializerErrorSurfacesFromNewInterp.
func TestGlobalInitializerErrorSurfaces(t *testing.T) {
	prog, err := Compile("int x = 1 / 0;\nvoid main() { }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInterp(prog, par.New(ppa.New(2, 8))); err == nil {
		t.Error("failing global initializer accepted")
	}
}

// TestWhereWithParallelIntCondition: an int condition converts via != 0.
func TestWhereWithParallelIntCondition(t *testing.T) {
	src := `
parallel int V;
void main() {
	where (COL) V = 5;   /* col != 0 */
}
`
	in := newTestInterp(t, src, 3, 8)
	callOK(t, in, "main")
	v, _ := in.GetParallelInt("V")
	if v[0] != 0 || v[1] != 5 || v[2] != 5 {
		t.Errorf("int-condition where: %v", v[:3])
	}
}

// TestForWithDeclInit and empty header parts.
func TestForHeaderVariants(t *testing.T) {
	src := `
int total;
void main() {
	for (int j = 0; j < 3; j++) total = total + j;
	int i;
	i = 0;
	for (; i < 2;) i++;
	total = total + i;
}
`
	in := newTestInterp(t, src, 2, 8)
	callOK(t, in, "main")
	if got, _ := in.GetInt("total"); got != 5 {
		t.Errorf("total = %d, want 5", got)
	}
}

// TestDeepRecursionGuard covers the depth limiter with mutual recursion.
func TestDeepRecursionGuard(t *testing.T) {
	src := `
int a(int n) { return b(n); }
int b(int n) { return a(n); }
void main() { a(0); }
`
	in := newTestInterp(t, src, 2, 8)
	if _, err := in.Call("main"); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("recursion guard: %v", err)
	}
}
