package ppclang

import (
	"math/rand"
	"testing"

	"ppamcp/internal/dt"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// dtSource aliases the exported program under test.
const dtSource = DistanceTransformSource

func TestDistanceTransformInPPC(t *testing.T) {
	prog, err := Compile(dtSource)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(8)
		fg := make([]bool, n*n)
		for i := range fg {
			fg[i] = rng.Float64() < 0.2
		}
		fg[rng.Intn(n*n)] = true // ensure non-empty

		// Pick the same word width the native implementation would.
		native, err := dt.CityBlock(n, fg, dt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m := ppa.New(n, native.Bits)
		in, err := NewInterp(prog, par.New(m))
		if err != nil {
			t.Fatal(err)
		}
		if err := in.SetParallelLogical("FG", fg); err != nil {
			t.Fatal(err)
		}
		if _, err := in.Call("distance_transform"); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := in.GetParallelInt("DIST")
		if err != nil {
			t.Fatal(err)
		}
		want := dt.ReferenceCityBlock(n, fg, native.Inf)
		for i := range want {
			if int64(got[i]) != want[i] {
				t.Fatalf("trial %d n=%d pixel %d: PPC %d, reference %d",
					trial, n, i, got[i], want[i])
			}
		}
	}
}

// TestDistanceTransformPPCEmptyImage: with no foreground the program must
// terminate after one sweep with an all-MAXINT field.
func TestDistanceTransformPPCEmptyImage(t *testing.T) {
	prog, err := Compile(dtSource)
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	m := ppa.New(n, 8)
	in, err := NewInterp(prog, par.New(m))
	if err != nil {
		t.Fatal(err)
	}
	if err := in.SetParallelLogical("FG", make([]bool, n*n)); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Call("distance_transform"); err != nil {
		t.Fatal(err)
	}
	got, _ := in.GetParallelInt("DIST")
	for i, w := range got {
		if w != 255 {
			t.Errorf("pixel %d = %d, want MAXINT", i, w)
		}
	}
	if m.Metrics().GlobalOrOps != 1 {
		t.Errorf("GlobalOrOps = %d, want 1 (single detecting sweep)", m.Metrics().GlobalOrOps)
	}
}
