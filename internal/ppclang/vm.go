package ppclang

import (
	"fmt"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// VM executes the flat bytecode produced by compile.go against a
// par.Array. It is the production execution path; the tree-walking Interp
// is retained as its semantic oracle, and both funnel every operator and
// builtin through the shared helpers in semantics.go so the VM's outputs,
// errors, and ppa.Metrics are byte-identical to the tree-walker's.
type VM struct {
	p   *Code
	arr *par.Array
	cfg config
	g   guard

	globals []Value
	gdecl   []bool // per-global "declared yet" (false until its opDeclG runs)
	stack   []Value
	locals  []Value
	depth   int
}

// NewVM compiles prog (cached per Program) and instantiates it on arr:
// the predefined environment is installed and the program's global
// declarations are evaluated in order, exactly as NewInterp does.
func NewVM(prog *Program, arr *par.Array, opts ...Option) (*VM, error) {
	code, err := bytecode(prog)
	if err != nil {
		return nil, err
	}
	vm := &VM{p: code, arr: arr}
	vm.cfg.apply(opts)
	vm.g = newGuard(&vm.cfg)
	vm.globals = make([]Value, len(code.globalNames))
	vm.gdecl = make([]bool, len(code.globalNames))
	for i, name := range predefNames {
		switch name {
		case "ROW":
			vm.globals[i] = parallelInt(arr.Row())
		case "COL":
			vm.globals[i] = parallelInt(arr.Col())
		case "N":
			vm.globals[i] = scalarInt(int64(arr.N()))
		case "BITS":
			vm.globals[i] = scalarInt(int64(arr.Machine().Bits()))
		case "MAXINT":
			vm.globals[i] = scalarInt(int64(arr.Machine().Inf()))
		case "NORTH":
			vm.globals[i] = scalarInt(int64(ppa.North))
		case "EAST":
			vm.globals[i] = scalarInt(int64(ppa.East))
		case "SOUTH":
			vm.globals[i] = scalarInt(int64(ppa.South))
		case "WEST":
			vm.globals[i] = scalarInt(int64(ppa.West))
		}
		vm.gdecl[i] = true
	}
	if code.initEnd > code.initStart {
		_, _, err := vm.run(0, code.initStart, code.initEnd)
		vm.clearStack()
		if err != nil {
			return nil, err
		}
	}
	return vm, nil
}

// Array returns the array the VM runs on.
func (vm *VM) Array() *par.Array { return vm.arr }

func (vm *VM) push(v Value) { vm.stack = append(vm.stack, v) }

func (vm *VM) pop() Value {
	v := vm.stack[len(vm.stack)-1]
	vm.stack = vm.stack[:len(vm.stack)-1]
	return v
}

// clearStack drops all stack entries and their array references (no
// leaked temporaries after an aborted run).
func (vm *VM) clearStack() {
	for i := range vm.stack {
		vm.stack[i] = Value{}
	}
	vm.stack = vm.stack[:0]
}

// Call invokes a niladic PPC function by name (the host entry point).
func (vm *VM) Call(name string) (Value, error) {
	fi, ok := vm.p.funcByName[name]
	if !ok {
		return Value{}, fmt.Errorf("ppclang: undefined function %q", name)
	}
	f := &vm.p.funcs[fi]
	if len(f.params) != 0 {
		return Value{}, fmt.Errorf("ppclang: %s takes %d parameters; Call supports only niladic entry points", name, len(f.params))
	}
	vm.g.reset()
	// The tree-walker's evalCall dispatches builtins by name first, so a
	// user function shadowed by a builtin behaves as the builtin would on
	// zero arguments.
	if name == "print" {
		fmt.Fprintln(vm.cfg.out)
		return voidValue(), nil
	}
	if bi := builtinIndex(name); bi >= 0 {
		return Value{}, errAt(f.pos, "%s expects %d arguments, got 0", name, builtinTable[bi].impl.arity)
	}
	if vm.depth >= maxCallDepth {
		return Value{}, errAt(f.pos, "call depth exceeds %d (runaway recursion?)", maxCallDepth)
	}
	v, err := vm.invoke(fi)
	if err != nil {
		vm.clearStack()
		return Value{}, err
	}
	return v, nil
}

// invoke runs function fi; its parameters (already converted and copied)
// must be the top len(params) stack values.
func (vm *VM) invoke(fi int) (Value, error) {
	f := &vm.p.funcs[fi]
	n := len(f.params)
	base := len(vm.stack) - n
	fp := len(vm.locals)
	if cap(vm.locals)-fp >= f.nslots {
		vm.locals = vm.locals[:fp+f.nslots]
		for i := fp; i < fp+f.nslots; i++ {
			vm.locals[i] = Value{}
		}
	} else {
		vm.locals = append(vm.locals, make([]Value, f.nslots)...)
	}
	copy(vm.locals[fp:], vm.stack[base:])
	for i := base; i < len(vm.stack); i++ {
		vm.stack[i] = Value{}
	}
	vm.stack = vm.stack[:base]
	vm.depth++
	returned, ret, err := vm.run(fp, f.start, f.end)
	vm.depth--
	for i := fp; i < len(vm.locals); i++ {
		vm.locals[i] = Value{}
	}
	vm.locals = vm.locals[:fp]
	if err != nil {
		return Value{}, err
	}
	// Call tail, mirroring evalCall: falling off the end (or break /
	// continue propagating out) returns void from void functions and is a
	// missing-return error otherwise; returned values convert to the
	// declared return type at the function's position.
	if !returned {
		if f.ret.Base != BaseVoid {
			return Value{}, errAt(f.pos, "%s: missing return of %s", f.name, f.ret)
		}
		return voidValue(), nil
	}
	if f.ret.Base == BaseVoid {
		return voidValue(), nil
	}
	return convertTo(f.pos, vm.arr, ret, f.ret)
}

// run executes code[from:to] with frame pointer fp. It returns when the
// range is exhausted, an opReturn executes (returned=true), or an error
// occurs. Loops are jumps within the range; where branches are nested
// sub-ranges run under the narrowed mask; calls recurse through invoke.
func (vm *VM) run(fp, from, to int) (returned bool, ret Value, err error) {
	code := vm.p.ops
	poss := vm.p.poss
	names := vm.p.names
	pc := from
	for pc < to {
		switch op := Op(code[pc]); op {
		case opFuel:
			if err := vm.g.tick(poss[code[pc+1]]); err != nil {
				return false, Value{}, err
			}
			pc += 2
		case opConst:
			vm.push(scalarInt(vm.p.consts[code[pc+1]]))
			pc += 2
		case opVoid:
			vm.push(voidValue())
			pc++
		case opLoadL:
			vm.push(vm.locals[fp+int(code[pc+1])])
			pc += 2
		case opLoadG:
			g := code[pc+1]
			if !vm.gdecl[g] {
				return false, Value{}, errAt(poss[code[pc+2]], "undefined variable %q", names[code[pc+3]])
			}
			vm.push(vm.globals[g])
			pc += 4
		case opChkG:
			if !vm.gdecl[code[pc+1]] {
				return false, Value{}, errAt(poss[code[pc+2]], "undefined variable %q", names[code[pc+3]])
			}
			pc += 4
		case opStoreL:
			v, err := storeAssign(vm.arr, poss[code[pc+2]], &vm.locals[fp+int(code[pc+1])], vm.pop())
			if err != nil {
				return false, Value{}, err
			}
			vm.push(v)
			pc += 3
		case opStoreG:
			v, err := storeAssign(vm.arr, poss[code[pc+2]], &vm.globals[code[pc+1]], vm.pop())
			if err != nil {
				return false, Value{}, err
			}
			vm.push(v)
			pc += 3
		case opDeclL:
			v, err := convertTo(poss[code[pc+3]], vm.arr, vm.pop(), typeFromCode(code[pc+2]))
			if err != nil {
				return false, Value{}, err
			}
			vm.locals[fp+int(code[pc+1])] = v
			pc += 4
		case opDeclZeroL:
			vm.locals[fp+int(code[pc+1])] = zeroValueOn(vm.arr, typeFromCode(code[pc+2]))
			pc += 3
		case opDeclG:
			v, err := convertTo(poss[code[pc+3]], vm.arr, vm.pop(), typeFromCode(code[pc+2]))
			if err != nil {
				return false, Value{}, err
			}
			vm.globals[code[pc+1]] = v
			vm.gdecl[code[pc+1]] = true
			pc += 4
		case opDeclZeroG:
			vm.globals[code[pc+1]] = zeroValueOn(vm.arr, typeFromCode(code[pc+2]))
			vm.gdecl[code[pc+1]] = true
			pc += 3
		case opIncDecL:
			v, err := applyIncDec(Kind(code[pc+2]), poss[code[pc+3]], names[code[pc+4]], &vm.locals[fp+int(code[pc+1])])
			if err != nil {
				return false, Value{}, err
			}
			vm.push(v)
			pc += 5
		case opIncDecG:
			g := code[pc+1]
			if !vm.gdecl[g] {
				return false, Value{}, errAt(poss[code[pc+3]], "undefined variable %q", names[code[pc+4]])
			}
			v, err := applyIncDec(Kind(code[pc+2]), poss[code[pc+3]], names[code[pc+4]], &vm.globals[g])
			if err != nil {
				return false, Value{}, err
			}
			vm.push(v)
			pc += 5
		case opPop:
			vm.stack[len(vm.stack)-1] = Value{}
			vm.stack = vm.stack[:len(vm.stack)-1]
			pc++
		case opUnary:
			v, err := applyUnary(vm.arr, Kind(code[pc+1]), poss[code[pc+2]], vm.pop())
			if err != nil {
				return false, Value{}, err
			}
			vm.push(v)
			pc += 3
		case opBinary:
			r := vm.pop()
			l := vm.pop()
			v, err := applyBinary(vm.arr, Kind(code[pc+1]), poss[code[pc+2]], poss[code[pc+3]], poss[code[pc+4]], l, r)
			if err != nil {
				return false, Value{}, err
			}
			vm.push(v)
			pc += 5
		case opLogicalPre:
			l := vm.stack[len(vm.stack)-1]
			if !l.T.Parallel {
				lb, err := asScalarBool(poss[code[pc+2]], l)
				if err != nil {
					return false, Value{}, err
				}
				vm.stack[len(vm.stack)-1] = scalarBool(lb)
				op2 := Kind(code[pc+1])
				if (op2 == ANDAND && !lb) || (op2 == OROR && lb) {
					pc += 4 + int(code[pc+3])
					continue
				}
			}
			pc += 4
		case opLogicalPost:
			r := vm.pop()
			l := vm.pop()
			v, err := applyLogicalCombine(vm.arr, Kind(code[pc+1]), poss[code[pc+2]], poss[code[pc+3]], l, r)
			if err != nil {
				return false, Value{}, err
			}
			vm.push(v)
			pc += 4
		case opJump:
			pc += 2 + int(code[pc+1])
		case opJumpFalse:
			b, err := asScalarBool(poss[code[pc+1]], vm.pop())
			if err != nil {
				return false, Value{}, err
			}
			if !b {
				pc += 3 + int(code[pc+2])
			} else {
				pc += 3
			}
		case opJumpTrue:
			b, err := asScalarBool(poss[code[pc+1]], vm.pop())
			if err != nil {
				return false, Value{}, err
			}
			if b {
				pc += 3 + int(code[pc+2])
			} else {
				pc += 3
			}
		case opWhere:
			thenLen := int(code[pc+1])
			elseLen := int(code[pc+2])
			condPos := poss[code[pc+3]]
			condV := vm.pop()
			if !condV.T.Parallel {
				return false, Value{}, errAt(condPos,
					"where condition must be parallel, got %s (use if for scalar conditions)", condV.T)
			}
			cond, err := asParallelBool(condPos, vm.arr, condV)
			if err != nil {
				return false, Value{}, err
			}
			thenStart := pc + opWidth[opWhere]
			var bodyErr error
			thenFn := func() {
				if _, _, err := vm.run(fp, thenStart, thenStart+thenLen); err != nil {
					bodyErr = err
				}
			}
			var elseFn func()
			if elseLen > 0 {
				elseFn = func() {
					if bodyErr != nil {
						return
					}
					if _, _, err := vm.run(fp, thenStart+thenLen, thenStart+thenLen+elseLen); err != nil {
						bodyErr = err
					}
				}
			}
			vm.arr.WhereElse(cond, thenFn, elseFn)
			if bodyErr != nil {
				return false, Value{}, bodyErr
			}
			pc = thenStart + thenLen + elseLen
		case opCallPre:
			if vm.depth >= maxCallDepth {
				return false, Value{}, errAt(poss[code[pc+2]], "call depth exceeds %d (runaway recursion?)", maxCallDepth)
			}
			pc += 3
		case opParam:
			v, err := convertTo(poss[code[pc+2]], vm.arr, vm.pop(), typeFromCode(code[pc+1]))
			if err != nil {
				return false, Value{}, err
			}
			vm.push(copyParam(v))
			pc += 3
		case opCall:
			v, err := vm.invoke(int(code[pc+1]))
			if err != nil {
				return false, Value{}, err
			}
			vm.push(v)
			pc += 2
		case opBuiltin:
			impl := builtinTable[code[pc+1]].impl
			base := len(vm.stack) - impl.arity
			pb := int(code[pc+3])
			v, err := impl.apply(vm.arr, poss[code[pc+2]], poss[pb:pb+impl.arity], vm.stack[base:])
			if err != nil {
				return false, Value{}, err
			}
			for i := base; i < len(vm.stack); i++ {
				vm.stack[i] = Value{}
			}
			vm.stack = vm.stack[:base]
			vm.push(v)
			pc += 4
		case opPrintArg:
			v := vm.pop()
			if code[pc+1] > 0 {
				fmt.Fprint(vm.cfg.out, " ")
			}
			if err := printValue(vm.cfg.out, vm.arr, v); err != nil {
				return false, Value{}, err
			}
			pc += 2
		case opPrintEnd:
			fmt.Fprintln(vm.cfg.out)
			vm.push(voidValue())
			pc++
		case opReturn:
			return true, vm.pop(), nil
		case opErr:
			return false, Value{}, &runtimeErr{pos: poss[code[pc+1]], msg: names[code[pc+2]]}
		default:
			return false, Value{}, fmt.Errorf("ppclang: corrupt bytecode: opcode %d at %d", op, pc)
		}
	}
	return false, Value{}, nil
}

// global returns the named global slot, type-checked against want.
func (vm *VM) global(name string, want Type) (*Value, error) {
	g, ok := vm.p.globalByName[name]
	if !ok {
		return nil, fmt.Errorf("ppclang: no global %q", name)
	}
	v := &vm.globals[g]
	if v.T != want {
		return nil, fmt.Errorf("ppclang: global %q is %s, not %s", name, v.T, want)
	}
	return v, nil
}

// SetInt binds a scalar int global.
func (vm *VM) SetInt(name string, val int64) error {
	v, err := vm.global(name, Type{Base: BaseInt})
	if err != nil {
		return err
	}
	v.SInt = val
	return nil
}

// GetInt reads a scalar int global.
func (vm *VM) GetInt(name string) (int64, error) {
	v, err := vm.global(name, Type{Base: BaseInt})
	if err != nil {
		return 0, err
	}
	return v.SInt, nil
}

// SetParallelInt binds a parallel int global from host data (row-major,
// length N*N); models the host DMA path, charging no cycles.
func (vm *VM) SetParallelInt(name string, data []ppa.Word) error {
	v, err := vm.global(name, Type{Parallel: true, Base: BaseInt})
	if err != nil {
		return err
	}
	if len(data) != vm.arr.N()*vm.arr.N() {
		return fmt.Errorf("ppclang: %q needs %d values, got %d", name, vm.arr.N()*vm.arr.N(), len(data))
	}
	v.PInt = vm.arr.FromSlice(data)
	return nil
}

// GetParallelInt reads a parallel int global back to the host.
func (vm *VM) GetParallelInt(name string) ([]ppa.Word, error) {
	v, err := vm.global(name, Type{Parallel: true, Base: BaseInt})
	if err != nil {
		return nil, err
	}
	return v.PInt.Slice(), nil
}

// SetParallelLogical binds a parallel logical global from host data.
func (vm *VM) SetParallelLogical(name string, data []bool) error {
	v, err := vm.global(name, Type{Parallel: true, Base: BaseLogical})
	if err != nil {
		return err
	}
	if len(data) != vm.arr.N()*vm.arr.N() {
		return fmt.Errorf("ppclang: %q needs %d values, got %d", name, vm.arr.N()*vm.arr.N(), len(data))
	}
	v.PBool = vm.arr.FromBools(data)
	return nil
}

// GetParallelLogical reads a parallel logical global back to the host.
func (vm *VM) GetParallelLogical(name string) ([]bool, error) {
	v, err := vm.global(name, Type{Parallel: true, Base: BaseLogical})
	if err != nil {
		return nil, err
	}
	return v.PBool.Slice(), nil
}
