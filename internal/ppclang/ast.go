package ppclang

// Type is a PPC value type: the cross product of {scalar, parallel} and
// {int, logical}, plus void for functions.
type Type struct {
	Parallel bool
	Base     BaseType
}

// BaseType is int, logical or void.
type BaseType uint8

// Base types.
const (
	BaseInt BaseType = iota
	BaseLogical
	BaseVoid
)

func (t Type) String() string {
	base := map[BaseType]string{BaseInt: "int", BaseLogical: "logical", BaseVoid: "void"}[t.Base]
	if t.Parallel {
		return "parallel " + base
	}
	return base
}

// Node is any AST node.
type Node interface {
	nodePos() Pos
}

// Expressions.

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// Ident is a variable reference.
type Ident struct {
	Pos  Pos
	Name string
}

// Unary is !x or -x.
type Unary struct {
	Pos Pos
	Op  Kind // NOT or MINUS
	X   Expr
}

// Binary is a binary operation.
type Binary struct {
	Pos  Pos
	Op   Kind
	L, R Expr
}

// Assign is `name = value` (an expression, C-style).
type Assign struct {
	Pos  Pos
	Name string
	Val  Expr
}

// IncDec is `name++` or `name--`.
type IncDec struct {
	Pos  Pos
	Name string
	Op   Kind // INC or DEC
}

// Call is a function or builtin invocation.
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

// Expr is any expression node.
type Expr interface {
	Node
	exprNode()
}

func (e *IntLit) nodePos() Pos { return e.Pos }
func (e *Ident) nodePos() Pos  { return e.Pos }
func (e *Unary) nodePos() Pos  { return e.Pos }
func (e *Binary) nodePos() Pos { return e.Pos }
func (e *Assign) nodePos() Pos { return e.Pos }
func (e *IncDec) nodePos() Pos { return e.Pos }
func (e *Call) nodePos() Pos   { return e.Pos }

func (*IntLit) exprNode() {}
func (*Ident) exprNode()  {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
func (*Assign) exprNode() {}
func (*IncDec) exprNode() {}
func (*Call) exprNode()   {}

// Statements.

// VarDecl declares one or more variables of a common type, each with an
// optional initializer.
type VarDecl struct {
	Pos   Pos
	Type  Type
	Names []string
	Inits []Expr // parallel slice to Names; nil entries mean zero-value
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// If is `if (cond) then [else els]` with a *scalar* condition.
type If struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// Where is `where (cond) then [elsewhere els]` with a *parallel* condition.
type Where struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is `while (cond) body`.
type While struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// DoWhile is `do body while (cond);`.
type DoWhile struct {
	Pos  Pos
	Body Stmt
	Cond Expr
}

// For is `for (init; cond; post) body`; each header part may be nil.
type For struct {
	Pos  Pos
	Init Stmt // VarDecl or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Return is `return;` or `return expr;`.
type Return struct {
	Pos Pos
	Val Expr // may be nil
}

// Break is `break;`.
type Break struct{ Pos Pos }

// Continue is `continue;`.
type Continue struct{ Pos Pos }

// Block is `{ stmts }`.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// Stmt is any statement node.
type Stmt interface {
	Node
	stmtNode()
}

func (s *VarDecl) nodePos() Pos  { return s.Pos }
func (s *ExprStmt) nodePos() Pos { return s.Pos }
func (s *If) nodePos() Pos       { return s.Pos }
func (s *Where) nodePos() Pos    { return s.Pos }
func (s *While) nodePos() Pos    { return s.Pos }
func (s *DoWhile) nodePos() Pos  { return s.Pos }
func (s *For) nodePos() Pos      { return s.Pos }
func (s *Return) nodePos() Pos   { return s.Pos }
func (s *Break) nodePos() Pos    { return s.Pos }
func (s *Continue) nodePos() Pos { return s.Pos }
func (s *Block) nodePos() Pos    { return s.Pos }

func (*VarDecl) stmtNode()  {}
func (*ExprStmt) stmtNode() {}
func (*If) stmtNode()       {}
func (*Where) stmtNode()    {}
func (*While) stmtNode()    {}
func (*DoWhile) stmtNode()  {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Block) stmtNode()    {}

// Param is one function parameter.
type Param struct {
	Type Type
	Name string
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Ret    Type
	Name   string
	Params []Param
	Body   *Block
}

func (f *FuncDecl) nodePos() Pos { return f.Pos }

// Program is a parsed PPC source file.
type Program struct {
	Globals []*VarDecl
	Funcs   map[string]*FuncDecl
	// Order preserves declaration order for global initialization.
	Order []Node
}
