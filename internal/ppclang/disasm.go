package ppclang

import (
	"fmt"
	"strings"
)

// Disassemble compiles prog (cached) and renders the bytecode as text:
// one instruction per line with its offset, opcode, decoded operands, and
// source position where the instruction carries one. Used by
// `ppcrun -disasm`.
func Disassemble(prog *Program) (string, error) {
	code, err := bytecode(prog)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "; %d globals (%d predefined), %d consts, %d funcs, %d words\n",
		len(code.globalNames), code.numPredef, len(code.consts), len(code.funcs), len(code.ops))
	if code.initEnd > code.initStart {
		fmt.Fprintf(&sb, "\ninit:\n")
		disasmRange(&sb, code, code.initStart, code.initEnd)
	}
	for i := range code.funcs {
		f := &code.funcs[i]
		params := make([]string, len(f.params))
		for k, p := range f.params {
			params[k] = fmt.Sprintf("%s %s", p.Type, p.Name)
		}
		fmt.Fprintf(&sb, "\n%s %s(%s):  ; %d slots, at %s\n",
			f.ret, f.name, strings.Join(params, ", "), f.nslots, f.pos)
		disasmRange(&sb, code, f.start, f.end)
	}
	return sb.String(), nil
}

func disasmRange(sb *strings.Builder, c *Code, from, to int) {
	for pc := from; pc < to; {
		op := Op(c.ops[pc])
		if int(op) >= len(opWidth) || opWidth[op] == 0 {
			fmt.Fprintf(sb, "%6d  ?? opcode %d\n", pc, op)
			return
		}
		fmt.Fprintf(sb, "%6d  %-8s %s\n", pc, opNames[op], disasmOperands(c, pc, op))
		pc += opWidth[op]
	}
}

// disasmOperands renders one instruction's operands symbolically.
func disasmOperands(c *Code, pc int, op Op) string {
	ops := c.ops
	pos := func(i int) string { return c.poss[ops[pc+i]].String() }
	name := func(i int) string { return c.names[ops[pc+i]] }
	// Jump targets: the offset operand is the last word, relative to the
	// instruction end.
	target := func() int { return pc + opWidth[op] + int(ops[pc+opWidth[op]-1]) }
	switch op {
	case opFuel:
		return fmt.Sprintf("; %s", pos(1))
	case opConst:
		return fmt.Sprintf("%d", c.consts[ops[pc+1]])
	case opVoid, opPop, opPrintEnd, opReturn:
		return ""
	case opLoadL:
		return fmt.Sprintf("slot %d", ops[pc+1])
	case opLoadG, opChkG:
		return fmt.Sprintf("%s  ; %s", c.globalNames[ops[pc+1]], pos(2))
	case opStoreL:
		return fmt.Sprintf("slot %d  ; %s", ops[pc+1], pos(2))
	case opStoreG:
		return fmt.Sprintf("%s  ; %s", c.globalNames[ops[pc+1]], pos(2))
	case opDeclL:
		return fmt.Sprintf("slot %d, %s  ; %s", ops[pc+1], typeFromCode(ops[pc+2]), pos(3))
	case opDeclZeroL:
		return fmt.Sprintf("slot %d, %s", ops[pc+1], typeFromCode(ops[pc+2]))
	case opDeclG:
		return fmt.Sprintf("%s, %s  ; %s", c.globalNames[ops[pc+1]], typeFromCode(ops[pc+2]), pos(3))
	case opDeclZeroG:
		return fmt.Sprintf("%s, %s", c.globalNames[ops[pc+1]], typeFromCode(ops[pc+2]))
	case opIncDecL:
		return fmt.Sprintf("slot %d, %s  ; %s", ops[pc+1], Kind(ops[pc+2]), pos(3))
	case opIncDecG:
		return fmt.Sprintf("%s, %s  ; %s", c.globalNames[ops[pc+1]], Kind(ops[pc+2]), pos(3))
	case opUnary:
		return fmt.Sprintf("%s  ; %s", Kind(ops[pc+1]), pos(2))
	case opBinary:
		return fmt.Sprintf("%s  ; %s", Kind(ops[pc+1]), pos(2))
	case opLogicalPre:
		return fmt.Sprintf("%s -> %d  ; %s", Kind(ops[pc+1]), target(), pos(2))
	case opLogicalPost:
		return fmt.Sprintf("%s", Kind(ops[pc+1]))
	case opJump:
		return fmt.Sprintf("-> %d", target())
	case opJumpFalse, opJumpTrue:
		return fmt.Sprintf("-> %d  ; %s", target(), pos(1))
	case opWhere:
		thenStart := pc + opWidth[opWhere]
		thenLen, elseLen := int(ops[pc+1]), int(ops[pc+2])
		s := fmt.Sprintf("then [%d,%d)", thenStart, thenStart+thenLen)
		if elseLen > 0 {
			s += fmt.Sprintf(", else [%d,%d)", thenStart+thenLen, thenStart+thenLen+elseLen)
		}
		return s + "  ; " + pos(3)
	case opCallPre:
		return fmt.Sprintf("%s  ; %s", c.funcs[ops[pc+1]].name, pos(2))
	case opParam:
		return fmt.Sprintf("%s  ; %s", typeFromCode(ops[pc+1]), pos(2))
	case opCall:
		return c.funcs[ops[pc+1]].name
	case opBuiltin:
		return fmt.Sprintf("%s  ; %s", builtinTable[ops[pc+1]].name, pos(2))
	case opPrintArg:
		return fmt.Sprintf("arg %d", ops[pc+1])
	case opErr:
		return fmt.Sprintf("%q  ; %s", name(2), pos(1))
	}
	return ""
}
