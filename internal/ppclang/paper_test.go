package ppclang

import (
	"math/rand"
	"testing"

	"ppamcp/internal/core"
	"ppamcp/internal/graph"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// runPaperMCP executes PaperMCPSource for g/dest on a fresh machine and
// returns the decoded result plus the machine metrics.
func runPaperMCP(t *testing.T, g *graph.Graph, dest int, h uint) (*graph.Result, ppa.Metrics) {
	t.Helper()
	prog, err := Compile(PaperMCPSource)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	n := g.N
	m := ppa.New(n, h)
	arr := par.New(m)
	in, err := NewInterp(prog, arr)
	if err != nil {
		t.Fatalf("NewInterp: %v", err)
	}
	inf := m.Inf()
	w := make([]ppa.Word, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch wt := g.At(i, j); {
			case i == j:
				w[i*n+j] = 0
			case wt == graph.NoEdge:
				w[i*n+j] = inf
			default:
				w[i*n+j] = ppa.Word(wt)
			}
		}
	}
	if err := in.SetParallelInt("W", w); err != nil {
		t.Fatal(err)
	}
	if err := in.SetInt("d", int64(dest)); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Call("minimum_cost_path"); err != nil {
		t.Fatalf("minimum_cost_path: %v", err)
	}
	sow, err := in.GetParallelInt("SOW")
	if err != nil {
		t.Fatal(err)
	}
	ptn, err := in.GetParallelInt("PTN")
	if err != nil {
		t.Fatal(err)
	}
	res := &graph.Result{Dest: dest, Dist: make([]int64, n), Next: make([]int, n)}
	for i := 0; i < n; i++ {
		s := sow[dest*n+i]
		switch {
		case i == dest:
			res.Dist[i] = 0
			res.Next[i] = -1
		case s == inf:
			res.Dist[i] = graph.NoEdge
			res.Next[i] = -1
		default:
			res.Dist[i] = int64(s)
			res.Next[i] = int(ptn[dest*n+i])
		}
	}
	return res, m.Metrics()
}

// TestPaperProgramMatchesNativeSolver is experiment E5's core assertion:
// the PPC-language program produces the same SOW/PTN as the native Go
// implementation AND issues exactly the same bus, wired-OR and global-OR
// transactions.
func TestPaperProgramMatchesNativeSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(10)
		g := graph.GenRandom(n, 0.2+rng.Float64()*0.5, 1+int64(rng.Intn(12)), rng.Int63())
		dest := rng.Intn(n)
		native, err := core.Solve(g, dest, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ppcRes, ppcMetrics := runPaperMCP(t, g, dest, native.Bits)
		for i := 0; i < n; i++ {
			if native.Dist[i] != ppcRes.Dist[i] || native.Next[i] != ppcRes.Next[i] {
				t.Fatalf("trial %d vertex %d: native (%d,%d) vs PPC (%d,%d)",
					trial, i, native.Dist[i], native.Next[i], ppcRes.Dist[i], ppcRes.Next[i])
			}
		}
		if err := graph.CheckResult(g, ppcRes); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ppcMetrics.BusCycles != native.Metrics.BusCycles ||
			ppcMetrics.WiredOrCycles != native.Metrics.WiredOrCycles ||
			ppcMetrics.GlobalOrOps != native.Metrics.GlobalOrOps {
			t.Fatalf("trial %d: comm cycles differ\nPPC:    %v\nnative: %v",
				trial, ppcMetrics, native.Metrics)
		}
	}
}

// TestPaperMinVerbatimMatchesBuiltin runs the min() listing exactly as
// printed (statement 9's broadcast included) on whole-ring clusters and
// checks it computes the same minima as the builtin, at h extra bus
// cycles (one per bit plane).
func TestPaperMinVerbatimMatchesBuiltin(t *testing.T) {
	src := PaperMinVerbatimSource + `
parallel int V, M1, M2;
void main() {
	M1 = min(V, WEST, COL == (N - 1));
	M2 = my_min_verbatim(V, WEST, COL == (N - 1));
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(7)
		const h = 8
		m := ppa.New(n, h)
		arr := par.New(m)
		in, err := NewInterp(prog, arr)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]ppa.Word, n*n)
		for i := range data {
			data[i] = ppa.Word(rng.Intn(256))
		}
		if err := in.SetParallelInt("V", data); err != nil {
			t.Fatal(err)
		}
		before := m.Metrics()
		if _, err := in.Call("main"); err != nil {
			t.Fatal(err)
		}
		d := m.Metrics().Sub(before)
		m1, _ := in.GetParallelInt("M1")
		m2, _ := in.GetParallelInt("M2")
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("trial %d lane %d: builtin %d, verbatim %d", trial, i, m1[i], m2[i])
			}
		}
		// builtin: h wired-OR + 2 bus; verbatim adds h bus (statement 9).
		if d.WiredOrCycles != 2*h || d.BusCycles != 4+h {
			t.Fatalf("trial %d: cost %d wired-OR / %d bus, want %d / %d",
				trial, d.WiredOrCycles, d.BusCycles, 2*h, 4+h)
		}
	}
}

func TestPaperProgramChain(t *testing.T) {
	g := graph.GenChain(6, 2)
	res, _ := runPaperMCP(t, g, 5, g.BitsNeeded())
	want := []int64{10, 8, 6, 4, 2, 0}
	for i := range want {
		if res.Dist[i] != want[i] {
			t.Errorf("Dist[%d] = %d, want %d", i, res.Dist[i], want[i])
		}
	}
}

func TestPaperProgramUnreachable(t *testing.T) {
	g := graph.GenChain(4, 1)
	res, _ := runPaperMCP(t, g, 0, 8)
	if res.Dist[3] != graph.NoEdge || res.Next[3] != -1 {
		t.Errorf("unreachable: %v %v", res.Dist, res.Next)
	}
}
