package ppclang

import (
	"fmt"
	"io"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// Interp executes a compiled Program against a par.Array. Globals are
// created (and their initializers run) by NewInterp; host code can then
// bind input data with the Set* methods, invoke entry points with Call,
// and read results back with the Get* methods.
type Interp struct {
	prog    *Program
	arr     *par.Array
	globals *scope
	out     io.Writer
	depth   int // call depth, to catch runaway recursion
}

// maxCallDepth bounds recursion in interpreted programs.
const maxCallDepth = 256

// scope is one lexical environment level.
type scope struct {
	vars   map[string]*Value
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{vars: make(map[string]*Value), parent: parent}
}

func (s *scope) lookup(name string) *Value {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v
		}
	}
	return nil
}

func (s *scope) declare(pos Pos, name string, v Value) error {
	if _, dup := s.vars[name]; dup {
		return errAt(pos, "variable %q redeclared in this scope", name)
	}
	cp := v
	s.vars[name] = &cp
	return nil
}

// InterpOption configures an Interp.
type InterpOption func(*Interp)

// WithOutput directs print() output to w (default: discarded).
func WithOutput(w io.Writer) InterpOption {
	return func(i *Interp) { i.out = w }
}

// NewInterp creates an interpreter for prog on arr: it installs the
// predefined environment (ROW, COL, N, BITS, MAXINT, the four directions)
// and evaluates the program's global declarations in order.
func NewInterp(prog *Program, arr *par.Array, opts ...InterpOption) (*Interp, error) {
	in := &Interp{prog: prog, arr: arr, globals: newScope(nil), out: io.Discard}
	for _, o := range opts {
		o(in)
	}
	// Predefined environment. Directions share ppa.Direction's encoding.
	pre := map[string]Value{
		"ROW":    parallelInt(arr.Row()),
		"COL":    parallelInt(arr.Col()),
		"N":      scalarInt(int64(arr.N())),
		"BITS":   scalarInt(int64(arr.Machine().Bits())),
		"MAXINT": scalarInt(int64(arr.Machine().Inf())),
		"NORTH":  scalarInt(int64(ppa.North)),
		"EAST":   scalarInt(int64(ppa.East)),
		"SOUTH":  scalarInt(int64(ppa.South)),
		"WEST":   scalarInt(int64(ppa.West)),
	}
	for name, v := range pre {
		if err := in.globals.declare(Pos{}, name, v); err != nil {
			return nil, err
		}
	}
	for _, d := range prog.Globals {
		if err := in.execVarDecl(d, in.globals); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// Array returns the array the interpreter runs on.
func (in *Interp) Array() *par.Array { return in.arr }

// control describes how a statement finished.
type control uint8

const (
	ctrlNone control = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// execVarDecl declares the variables of d in sc.
func (in *Interp) execVarDecl(d *VarDecl, sc *scope) error {
	for k, name := range d.Names {
		var v Value
		if d.Inits[k] != nil {
			raw, err := in.eval(d.Inits[k], sc)
			if err != nil {
				return err
			}
			if v, err = convertTo(d.Inits[k].nodePos(), in.arr, raw, d.Type); err != nil {
				return err
			}
		} else {
			v = in.zeroValue(d.Type)
		}
		if err := sc.declare(d.Pos, name, v); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) zeroValue(t Type) Value {
	switch {
	case t.Parallel && t.Base == BaseInt:
		return parallelInt(in.arr.Zeros())
	case t.Parallel && t.Base == BaseLogical:
		return parallelBool(in.arr.False())
	case t.Base == BaseLogical:
		return scalarBool(false)
	default:
		return scalarInt(0)
	}
}

// exec runs one statement.
func (in *Interp) exec(s Stmt, sc *scope) (control, Value, error) {
	switch st := s.(type) {
	case *VarDecl:
		return ctrlNone, Value{}, in.execVarDecl(st, sc)
	case *ExprStmt:
		_, err := in.eval(st.X, sc)
		return ctrlNone, Value{}, err
	case *Block:
		inner := newScope(sc)
		for _, sub := range st.Stmts {
			c, v, err := in.exec(sub, inner)
			if err != nil || c != ctrlNone {
				return c, v, err
			}
		}
		return ctrlNone, Value{}, nil
	case *If:
		condV, err := in.eval(st.Cond, sc)
		if err != nil {
			return ctrlNone, Value{}, err
		}
		cond, err := asScalarBool(st.Cond.nodePos(), condV)
		if err != nil {
			return ctrlNone, Value{}, err
		}
		if cond {
			return in.exec(st.Then, newScope(sc))
		}
		if st.Else != nil {
			return in.exec(st.Else, newScope(sc))
		}
		return ctrlNone, Value{}, nil
	case *Where:
		return in.execWhere(st, sc)
	case *While:
		for iter := 0; ; iter++ {
			condV, err := in.eval(st.Cond, sc)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			cond, err := asScalarBool(st.Cond.nodePos(), condV)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if !cond {
				return ctrlNone, Value{}, nil
			}
			c, v, err := in.exec(st.Body, newScope(sc))
			if err != nil {
				return ctrlNone, Value{}, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, Value{}, nil
			case ctrlReturn:
				return c, v, nil
			}
		}
	case *DoWhile:
		for {
			c, v, err := in.exec(st.Body, newScope(sc))
			if err != nil {
				return ctrlNone, Value{}, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, Value{}, nil
			case ctrlReturn:
				return c, v, nil
			}
			condV, err := in.eval(st.Cond, sc)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			cond, err := asScalarBool(st.Cond.nodePos(), condV)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if !cond {
				return ctrlNone, Value{}, nil
			}
		}
	case *For:
		outer := newScope(sc)
		if st.Init != nil {
			if c, v, err := in.exec(st.Init, outer); err != nil || c != ctrlNone {
				return c, v, err
			}
		}
		for {
			if st.Cond != nil {
				condV, err := in.eval(st.Cond, outer)
				if err != nil {
					return ctrlNone, Value{}, err
				}
				cond, err := asScalarBool(st.Cond.nodePos(), condV)
				if err != nil {
					return ctrlNone, Value{}, err
				}
				if !cond {
					return ctrlNone, Value{}, nil
				}
			}
			c, v, err := in.exec(st.Body, newScope(outer))
			if err != nil {
				return ctrlNone, Value{}, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, Value{}, nil
			case ctrlReturn:
				return c, v, nil
			}
			if st.Post != nil {
				if _, err := in.eval(st.Post, outer); err != nil {
					return ctrlNone, Value{}, err
				}
			}
		}
	case *Return:
		if st.Val == nil {
			return ctrlReturn, voidValue(), nil
		}
		v, err := in.eval(st.Val, sc)
		return ctrlReturn, v, err
	case *Break:
		return ctrlBreak, Value{}, nil
	case *Continue:
		return ctrlContinue, Value{}, nil
	}
	return ctrlNone, Value{}, errAt(s.nodePos(), "internal: unknown statement %T", s)
}

// execWhere runs the where/elsewhere construct: the condition must be (or
// convert to) a parallel logical, and the branch bodies run under the
// narrowed activity mask. break/continue/return cannot cross a where
// boundary (a SIMD controller cannot diverge per PE).
func (in *Interp) execWhere(st *Where, sc *scope) (control, Value, error) {
	condV, err := in.eval(st.Cond, sc)
	if err != nil {
		return ctrlNone, Value{}, err
	}
	if !condV.T.Parallel {
		return ctrlNone, Value{}, errAt(st.Cond.nodePos(),
			"where condition must be parallel, got %s (use if for scalar conditions)", condV.T)
	}
	cond, err := asParallelBool(st.Cond.nodePos(), in.arr, condV)
	if err != nil {
		return ctrlNone, Value{}, err
	}
	var bodyErr error
	runBranch := func(body Stmt) func() {
		return func() {
			if bodyErr != nil || body == nil {
				return
			}
			c, _, err := in.exec(body, newScope(sc))
			if err != nil {
				bodyErr = err
				return
			}
			if c != ctrlNone {
				bodyErr = errAt(body.nodePos(), "break/continue/return cannot cross a where boundary")
			}
		}
	}
	var elseFn func()
	if st.Else != nil {
		elseFn = runBranch(st.Else)
	}
	in.arr.WhereElse(cond, runBranch(st.Then), elseFn)
	return ctrlNone, Value{}, bodyErr
}

// eval computes one expression.
func (in *Interp) eval(e Expr, sc *scope) (Value, error) {
	switch ex := e.(type) {
	case *IntLit:
		return scalarInt(ex.Val), nil
	case *Ident:
		v := sc.lookup(ex.Name)
		if v == nil {
			return Value{}, errAt(ex.Pos, "undefined variable %q", ex.Name)
		}
		return *v, nil
	case *Assign:
		return in.evalAssign(ex, sc)
	case *IncDec:
		v := sc.lookup(ex.Name)
		if v == nil {
			return Value{}, errAt(ex.Pos, "undefined variable %q", ex.Name)
		}
		if v.T.Parallel || v.T.Base != BaseInt {
			return Value{}, errAt(ex.Pos, "++/-- requires a scalar int, %q is %s", ex.Name, v.T)
		}
		old := v.SInt
		if ex.Op == INC {
			v.SInt++
		} else {
			v.SInt--
		}
		return scalarInt(old), nil
	case *Unary:
		return in.evalUnary(ex, sc)
	case *Binary:
		return in.evalBinary(ex, sc)
	case *Call:
		return in.evalCall(ex, sc)
	}
	return Value{}, errAt(e.nodePos(), "internal: unknown expression %T", e)
}

func (in *Interp) evalAssign(ex *Assign, sc *scope) (Value, error) {
	target := sc.lookup(ex.Name)
	if target == nil {
		return Value{}, errAt(ex.Pos, "undefined variable %q", ex.Name)
	}
	raw, err := in.eval(ex.Val, sc)
	if err != nil {
		return Value{}, err
	}
	v, err := convertTo(ex.Pos, in.arr, raw, target.T)
	if err != nil {
		return Value{}, err
	}
	switch {
	case target.T.Parallel && target.T.Base == BaseInt:
		target.PInt.Assign(v.PInt) // masked store
	case target.T.Parallel && target.T.Base == BaseLogical:
		target.PBool.Assign(v.PBool) // masked store
	default:
		// Scalar (controller) variables ignore the activity mask.
		*target = v
	}
	return *target, nil
}

func (in *Interp) evalUnary(ex *Unary, sc *scope) (Value, error) {
	v, err := in.eval(ex.X, sc)
	if err != nil {
		return Value{}, err
	}
	switch ex.Op {
	case NOT:
		if v.T.Parallel {
			b, err := asParallelBool(ex.Pos, in.arr, v)
			if err != nil {
				return Value{}, err
			}
			return parallelBool(b.Not()), nil
		}
		b, err := asScalarBool(ex.Pos, v)
		if err != nil {
			return Value{}, err
		}
		return scalarBool(!b), nil
	case MINUS:
		if v.T.Parallel {
			return Value{}, errAt(ex.Pos, "unary minus on parallel values is not supported (machine words are unsigned)")
		}
		s, err := asScalarInt(ex.Pos, v)
		if err != nil {
			return Value{}, err
		}
		return scalarInt(-s), nil
	}
	return Value{}, errAt(ex.Pos, "internal: unknown unary op %v", ex.Op)
}

func (in *Interp) evalBinary(ex *Binary, sc *scope) (Value, error) {
	// Scalar && and || short-circuit, C-style.
	if ex.Op == ANDAND || ex.Op == OROR {
		return in.evalLogical(ex, sc)
	}
	l, err := in.eval(ex.L, sc)
	if err != nil {
		return Value{}, err
	}
	r, err := in.eval(ex.R, sc)
	if err != nil {
		return Value{}, err
	}
	if l.T.Parallel || r.T.Parallel {
		return in.parallelBinary(ex, l, r)
	}
	return in.scalarBinary(ex, l, r)
}

func (in *Interp) evalLogical(ex *Binary, sc *scope) (Value, error) {
	l, err := in.eval(ex.L, sc)
	if err != nil {
		return Value{}, err
	}
	if !l.T.Parallel {
		lb, err := asScalarBool(ex.L.nodePos(), l)
		if err != nil {
			return Value{}, err
		}
		// A decided scalar left side short-circuits, C-style: the right
		// side is not evaluated at all (even if it would be parallel; the
		// scalar result converts wherever it is used).
		if (ex.Op == ANDAND && !lb) || (ex.Op == OROR && lb) {
			return scalarBool(lb), nil
		}
		r, err := in.eval(ex.R, sc)
		if err != nil {
			return Value{}, err
		}
		if !r.T.Parallel {
			rb, err := asScalarBool(ex.R.nodePos(), r)
			if err != nil {
				return Value{}, err
			}
			if ex.Op == ANDAND {
				return scalarBool(lb && rb), nil
			}
			return scalarBool(lb || rb), nil
		}
		return in.parallelLogical(ex, scalarBool(lb), r)
	}
	r, err := in.eval(ex.R, sc)
	if err != nil {
		return Value{}, err
	}
	return in.parallelLogical(ex, l, r)
}

func (in *Interp) parallelLogical(ex *Binary, l, r Value) (Value, error) {
	lb, err := asParallelBool(ex.L.nodePos(), in.arr, l)
	if err != nil {
		return Value{}, err
	}
	rb, err := asParallelBool(ex.R.nodePos(), in.arr, r)
	if err != nil {
		return Value{}, err
	}
	if ex.Op == ANDAND {
		return parallelBool(lb.And(rb)), nil
	}
	return parallelBool(lb.Or(rb)), nil
}

func (in *Interp) scalarBinary(ex *Binary, l, r Value) (Value, error) {
	// Logical == / != compare truth values.
	if (ex.Op == EQ || ex.Op == NEQ) && l.T.Base == BaseLogical && r.T.Base == BaseLogical {
		eq := l.SBool == r.SBool
		if ex.Op == NEQ {
			eq = !eq
		}
		return scalarBool(eq), nil
	}
	a, err := asScalarInt(ex.L.nodePos(), l)
	if err != nil {
		return Value{}, err
	}
	b, err := asScalarInt(ex.R.nodePos(), r)
	if err != nil {
		return Value{}, err
	}
	switch ex.Op {
	case PLUS:
		return scalarInt(a + b), nil
	case MINUS:
		return scalarInt(a - b), nil
	case STAR:
		return scalarInt(a * b), nil
	case SLASH:
		if b == 0 {
			return Value{}, errAt(ex.Pos, "division by zero")
		}
		return scalarInt(a / b), nil
	case PERCENT:
		if b == 0 {
			return Value{}, errAt(ex.Pos, "modulo by zero")
		}
		return scalarInt(a % b), nil
	case EQ:
		return scalarBool(a == b), nil
	case NEQ:
		return scalarBool(a != b), nil
	case LT:
		return scalarBool(a < b), nil
	case GT:
		return scalarBool(a > b), nil
	case LE:
		return scalarBool(a <= b), nil
	case GE:
		return scalarBool(a >= b), nil
	}
	return Value{}, errAt(ex.Pos, "internal: unknown scalar op %v", ex.Op)
}

func (in *Interp) parallelBinary(ex *Binary, l, r Value) (Value, error) {
	// Logical equality on two logicals.
	if (ex.Op == EQ || ex.Op == NEQ) &&
		l.T.Base == BaseLogical && r.T.Base == BaseLogical {
		lb, err := asParallelBool(ex.L.nodePos(), in.arr, l)
		if err != nil {
			return Value{}, err
		}
		rb, err := asParallelBool(ex.R.nodePos(), in.arr, r)
		if err != nil {
			return Value{}, err
		}
		x := lb.Xor(rb)
		if ex.Op == EQ {
			x = x.Not()
		}
		return parallelBool(x), nil
	}
	a, err := asParallelInt(ex.L.nodePos(), in.arr, l)
	if err != nil {
		return Value{}, err
	}
	b, err := asParallelInt(ex.R.nodePos(), in.arr, r)
	if err != nil {
		return Value{}, err
	}
	switch ex.Op {
	case PLUS:
		return parallelInt(a.AddSat(b)), nil
	case MINUS:
		return parallelInt(a.SubClamp(b)), nil
	case STAR, SLASH, PERCENT:
		return Value{}, errAt(ex.Pos, "%v is not supported on parallel values", ex.Op)
	case EQ:
		return parallelBool(a.Eq(b)), nil
	case NEQ:
		return parallelBool(a.Ne(b)), nil
	case LT:
		return parallelBool(a.Lt(b)), nil
	case LE:
		return parallelBool(a.Le(b)), nil
	case GT:
		return parallelBool(b.Lt(a)), nil
	case GE:
		return parallelBool(b.Le(a)), nil
	}
	return Value{}, errAt(ex.Pos, "internal: unknown parallel op %v", ex.Op)
}

func (in *Interp) evalCall(ex *Call, sc *scope) (Value, error) {
	if fn, ok := builtins[ex.Name]; ok {
		return fn(in, ex, sc)
	}
	f, ok := in.prog.Funcs[ex.Name]
	if !ok {
		return Value{}, errAt(ex.Pos, "undefined function %q", ex.Name)
	}
	if len(ex.Args) != len(f.Params) {
		return Value{}, errAt(ex.Pos, "%s expects %d arguments, got %d", ex.Name, len(f.Params), len(ex.Args))
	}
	if in.depth >= maxCallDepth {
		return Value{}, errAt(ex.Pos, "call depth exceeds %d (runaway recursion?)", maxCallDepth)
	}
	fsc := newScope(in.globals)
	for k, param := range f.Params {
		raw, err := in.eval(ex.Args[k], sc)
		if err != nil {
			return Value{}, err
		}
		v, err := convertTo(ex.Args[k].nodePos(), in.arr, raw, param.Type)
		if err != nil {
			return Value{}, err
		}
		// Value semantics: parallel arguments are copied, so callee
		// mutation (as in the paper's min(), which overwrites src) stays
		// local.
		switch {
		case v.T.Parallel && v.T.Base == BaseInt:
			v = parallelInt(v.PInt.Copy())
		case v.T.Parallel && v.T.Base == BaseLogical:
			v = parallelBool(v.PBool.Copy())
		}
		if err := fsc.declare(f.Pos, param.Name, v); err != nil {
			return Value{}, err
		}
	}
	in.depth++
	c, ret, err := in.exec(f.Body, fsc)
	in.depth--
	if err != nil {
		return Value{}, err
	}
	if c != ctrlReturn {
		if f.Ret.Base != BaseVoid {
			return Value{}, errAt(f.Pos, "%s: missing return of %s", f.Name, f.Ret)
		}
		return voidValue(), nil
	}
	if f.Ret.Base == BaseVoid {
		return voidValue(), nil
	}
	return convertTo(f.Pos, in.arr, ret, f.Ret)
}

// Call invokes a niladic PPC function by name (the host entry point).
func (in *Interp) Call(name string) (Value, error) {
	f, ok := in.prog.Funcs[name]
	if !ok {
		return Value{}, fmt.Errorf("ppclang: undefined function %q", name)
	}
	if len(f.Params) != 0 {
		return Value{}, fmt.Errorf("ppclang: %s takes %d parameters; Call supports only niladic entry points", name, len(f.Params))
	}
	return in.evalCall(&Call{Pos: f.Pos, Name: name}, in.globals)
}

// global returns the named global, type-checked against want.
func (in *Interp) global(name string, want Type) (*Value, error) {
	v, ok := in.globals.vars[name]
	if !ok {
		return nil, fmt.Errorf("ppclang: no global %q", name)
	}
	if v.T != want {
		return nil, fmt.Errorf("ppclang: global %q is %s, not %s", name, v.T, want)
	}
	return v, nil
}

// SetInt binds a scalar int global.
func (in *Interp) SetInt(name string, val int64) error {
	v, err := in.global(name, Type{Base: BaseInt})
	if err != nil {
		return err
	}
	v.SInt = val
	return nil
}

// GetInt reads a scalar int global.
func (in *Interp) GetInt(name string) (int64, error) {
	v, err := in.global(name, Type{Base: BaseInt})
	if err != nil {
		return 0, err
	}
	return v.SInt, nil
}

// SetParallelInt binds a parallel int global from host data (row-major,
// length N*N); models the host DMA path, charging no cycles.
func (in *Interp) SetParallelInt(name string, data []ppa.Word) error {
	v, err := in.global(name, Type{Parallel: true, Base: BaseInt})
	if err != nil {
		return err
	}
	if len(data) != in.arr.N()*in.arr.N() {
		return fmt.Errorf("ppclang: %q needs %d values, got %d", name, in.arr.N()*in.arr.N(), len(data))
	}
	v.PInt = in.arr.FromSlice(data)
	return nil
}

// GetParallelInt reads a parallel int global back to the host.
func (in *Interp) GetParallelInt(name string) ([]ppa.Word, error) {
	v, err := in.global(name, Type{Parallel: true, Base: BaseInt})
	if err != nil {
		return nil, err
	}
	return v.PInt.Slice(), nil
}

// SetParallelLogical binds a parallel logical global from host data.
func (in *Interp) SetParallelLogical(name string, data []bool) error {
	v, err := in.global(name, Type{Parallel: true, Base: BaseLogical})
	if err != nil {
		return err
	}
	if len(data) != in.arr.N()*in.arr.N() {
		return fmt.Errorf("ppclang: %q needs %d values, got %d", name, in.arr.N()*in.arr.N(), len(data))
	}
	v.PBool = in.arr.FromBools(data)
	return nil
}

// GetParallelLogical reads a parallel logical global back to the host.
func (in *Interp) GetParallelLogical(name string) ([]bool, error) {
	v, err := in.global(name, Type{Parallel: true, Base: BaseLogical})
	if err != nil {
		return nil, err
	}
	return v.PBool.Slice(), nil
}
