package ppclang

import (
	"fmt"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// Interp executes a compiled Program against a par.Array by walking the
// AST. It is retained as the semantic oracle for the bytecode VM (vm.go):
// both funnel every operator and builtin through the shared helpers in
// semantics.go, and the differential tests pin outputs, errors, and
// ppa.Metrics as byte-identical across the two. Globals are created (and
// their initializers run) by NewInterp; host code can then bind input
// data with the Set* methods, invoke entry points with Call, and read
// results back with the Get* methods.
type Interp struct {
	prog    *Program
	arr     *par.Array
	globals *scope
	cfg     config
	g       guard
	depth   int // call depth, to catch runaway recursion
}

// maxCallDepth bounds recursion in interpreted programs.
const maxCallDepth = 256

// scope is one lexical environment level.
type scope struct {
	vars   map[string]*Value
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{vars: make(map[string]*Value), parent: parent}
}

func (s *scope) lookup(name string) *Value {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v
		}
	}
	return nil
}

func (s *scope) declare(pos Pos, name string, v Value) error {
	if _, dup := s.vars[name]; dup {
		return errAt(pos, "variable %q redeclared in this scope", name)
	}
	cp := v
	s.vars[name] = &cp
	return nil
}

// NewInterp creates an interpreter for prog on arr: it installs the
// predefined environment (ROW, COL, N, BITS, MAXINT, the four directions)
// and evaluates the program's global declarations in order.
func NewInterp(prog *Program, arr *par.Array, opts ...Option) (*Interp, error) {
	in := &Interp{prog: prog, arr: arr, globals: newScope(nil)}
	in.cfg.apply(opts)
	in.g = newGuard(&in.cfg)
	// Predefined environment. Directions share ppa.Direction's encoding.
	pre := map[string]Value{
		"ROW":    parallelInt(arr.Row()),
		"COL":    parallelInt(arr.Col()),
		"N":      scalarInt(int64(arr.N())),
		"BITS":   scalarInt(int64(arr.Machine().Bits())),
		"MAXINT": scalarInt(int64(arr.Machine().Inf())),
		"NORTH":  scalarInt(int64(ppa.North)),
		"EAST":   scalarInt(int64(ppa.East)),
		"SOUTH":  scalarInt(int64(ppa.South)),
		"WEST":   scalarInt(int64(ppa.West)),
	}
	for name, v := range pre {
		if err := in.globals.declare(Pos{}, name, v); err != nil {
			return nil, err
		}
	}
	for _, d := range prog.Globals {
		if err := in.execVarDecl(d, in.globals); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// Array returns the array the interpreter runs on.
func (in *Interp) Array() *par.Array { return in.arr }

// control describes how a statement finished.
type control uint8

const (
	ctrlNone control = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// execVarDecl declares the variables of d in sc.
func (in *Interp) execVarDecl(d *VarDecl, sc *scope) error {
	for k, name := range d.Names {
		var v Value
		if d.Inits[k] != nil {
			raw, err := in.eval(d.Inits[k], sc)
			if err != nil {
				return err
			}
			if v, err = convertTo(d.Inits[k].nodePos(), in.arr, raw, d.Type); err != nil {
				return err
			}
		} else {
			v = zeroValueOn(in.arr, d.Type)
		}
		if err := sc.declare(d.Pos, name, v); err != nil {
			return err
		}
	}
	return nil
}

// exec runs one statement. Every statement entered charges one guard tick
// (fuel unit); the compiler emits one opFuel per statement at the same
// points, so budgeted runs abort at the identical statement on both paths.
func (in *Interp) exec(s Stmt, sc *scope) (control, Value, error) {
	if err := in.g.tick(s.nodePos()); err != nil {
		return ctrlNone, Value{}, err
	}
	switch st := s.(type) {
	case *VarDecl:
		return ctrlNone, Value{}, in.execVarDecl(st, sc)
	case *ExprStmt:
		_, err := in.eval(st.X, sc)
		return ctrlNone, Value{}, err
	case *Block:
		inner := newScope(sc)
		for _, sub := range st.Stmts {
			c, v, err := in.exec(sub, inner)
			if err != nil || c != ctrlNone {
				return c, v, err
			}
		}
		return ctrlNone, Value{}, nil
	case *If:
		condV, err := in.eval(st.Cond, sc)
		if err != nil {
			return ctrlNone, Value{}, err
		}
		cond, err := asScalarBool(st.Cond.nodePos(), condV)
		if err != nil {
			return ctrlNone, Value{}, err
		}
		if cond {
			return in.exec(st.Then, newScope(sc))
		}
		if st.Else != nil {
			return in.exec(st.Else, newScope(sc))
		}
		return ctrlNone, Value{}, nil
	case *Where:
		return in.execWhere(st, sc)
	case *While:
		for iter := 0; ; iter++ {
			condV, err := in.eval(st.Cond, sc)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			cond, err := asScalarBool(st.Cond.nodePos(), condV)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if !cond {
				return ctrlNone, Value{}, nil
			}
			c, v, err := in.exec(st.Body, newScope(sc))
			if err != nil {
				return ctrlNone, Value{}, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, Value{}, nil
			case ctrlReturn:
				return c, v, nil
			}
		}
	case *DoWhile:
		for {
			c, v, err := in.exec(st.Body, newScope(sc))
			if err != nil {
				return ctrlNone, Value{}, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, Value{}, nil
			case ctrlReturn:
				return c, v, nil
			}
			condV, err := in.eval(st.Cond, sc)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			cond, err := asScalarBool(st.Cond.nodePos(), condV)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if !cond {
				return ctrlNone, Value{}, nil
			}
		}
	case *For:
		outer := newScope(sc)
		if st.Init != nil {
			if c, v, err := in.exec(st.Init, outer); err != nil || c != ctrlNone {
				return c, v, err
			}
		}
		for {
			if st.Cond != nil {
				condV, err := in.eval(st.Cond, outer)
				if err != nil {
					return ctrlNone, Value{}, err
				}
				cond, err := asScalarBool(st.Cond.nodePos(), condV)
				if err != nil {
					return ctrlNone, Value{}, err
				}
				if !cond {
					return ctrlNone, Value{}, nil
				}
			}
			c, v, err := in.exec(st.Body, newScope(outer))
			if err != nil {
				return ctrlNone, Value{}, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNone, Value{}, nil
			case ctrlReturn:
				return c, v, nil
			}
			if st.Post != nil {
				if _, err := in.eval(st.Post, outer); err != nil {
					return ctrlNone, Value{}, err
				}
			}
		}
	case *Return:
		if st.Val == nil {
			return ctrlReturn, voidValue(), nil
		}
		v, err := in.eval(st.Val, sc)
		return ctrlReturn, v, err
	case *Break:
		return ctrlBreak, Value{}, nil
	case *Continue:
		return ctrlContinue, Value{}, nil
	}
	return ctrlNone, Value{}, errAt(s.nodePos(), "internal: unknown statement %T", s)
}

// execWhere runs the where/elsewhere construct: the condition must be (or
// convert to) a parallel logical, and the branch bodies run under the
// narrowed activity mask. break/continue/return cannot cross a where
// boundary (a SIMD controller cannot diverge per PE).
func (in *Interp) execWhere(st *Where, sc *scope) (control, Value, error) {
	condV, err := in.eval(st.Cond, sc)
	if err != nil {
		return ctrlNone, Value{}, err
	}
	if !condV.T.Parallel {
		return ctrlNone, Value{}, errAt(st.Cond.nodePos(),
			"where condition must be parallel, got %s (use if for scalar conditions)", condV.T)
	}
	cond, err := asParallelBool(st.Cond.nodePos(), in.arr, condV)
	if err != nil {
		return ctrlNone, Value{}, err
	}
	var bodyErr error
	runBranch := func(body Stmt) func() {
		return func() {
			if bodyErr != nil || body == nil {
				return
			}
			c, _, err := in.exec(body, newScope(sc))
			if err != nil {
				bodyErr = err
				return
			}
			if c != ctrlNone {
				bodyErr = errAt(body.nodePos(), "break/continue/return cannot cross a where boundary")
			}
		}
	}
	var elseFn func()
	if st.Else != nil {
		elseFn = runBranch(st.Else)
	}
	in.arr.WhereElse(cond, runBranch(st.Then), elseFn)
	return ctrlNone, Value{}, bodyErr
}

// eval computes one expression.
func (in *Interp) eval(e Expr, sc *scope) (Value, error) {
	switch ex := e.(type) {
	case *IntLit:
		return scalarInt(ex.Val), nil
	case *Ident:
		v := sc.lookup(ex.Name)
		if v == nil {
			return Value{}, errAt(ex.Pos, "undefined variable %q", ex.Name)
		}
		return *v, nil
	case *Assign:
		return in.evalAssign(ex, sc)
	case *IncDec:
		v := sc.lookup(ex.Name)
		if v == nil {
			return Value{}, errAt(ex.Pos, "undefined variable %q", ex.Name)
		}
		return applyIncDec(ex.Op, ex.Pos, ex.Name, v)
	case *Unary:
		v, err := in.eval(ex.X, sc)
		if err != nil {
			return Value{}, err
		}
		return applyUnary(in.arr, ex.Op, ex.Pos, v)
	case *Binary:
		return in.evalBinary(ex, sc)
	case *Call:
		return in.evalCall(ex, sc)
	}
	return Value{}, errAt(e.nodePos(), "internal: unknown expression %T", e)
}

func (in *Interp) evalAssign(ex *Assign, sc *scope) (Value, error) {
	target := sc.lookup(ex.Name)
	if target == nil {
		return Value{}, errAt(ex.Pos, "undefined variable %q", ex.Name)
	}
	raw, err := in.eval(ex.Val, sc)
	if err != nil {
		return Value{}, err
	}
	return storeAssign(in.arr, ex.Pos, target, raw)
}

func (in *Interp) evalBinary(ex *Binary, sc *scope) (Value, error) {
	// Scalar && and || short-circuit, C-style.
	if ex.Op == ANDAND || ex.Op == OROR {
		return in.evalLogical(ex, sc)
	}
	l, err := in.eval(ex.L, sc)
	if err != nil {
		return Value{}, err
	}
	r, err := in.eval(ex.R, sc)
	if err != nil {
		return Value{}, err
	}
	return applyBinary(in.arr, ex.Op, ex.Pos, ex.L.nodePos(), ex.R.nodePos(), l, r)
}

func (in *Interp) evalLogical(ex *Binary, sc *scope) (Value, error) {
	l, err := in.eval(ex.L, sc)
	if err != nil {
		return Value{}, err
	}
	if !l.T.Parallel {
		lb, err := asScalarBool(ex.L.nodePos(), l)
		if err != nil {
			return Value{}, err
		}
		// A decided scalar left side short-circuits, C-style: the right
		// side is not evaluated at all (even if it would be parallel; the
		// scalar result converts wherever it is used).
		if (ex.Op == ANDAND && !lb) || (ex.Op == OROR && lb) {
			return scalarBool(lb), nil
		}
		l = scalarBool(lb)
	}
	r, err := in.eval(ex.R, sc)
	if err != nil {
		return Value{}, err
	}
	return applyLogicalCombine(in.arr, ex.Op, ex.L.nodePos(), ex.R.nodePos(), l, r)
}

func (in *Interp) evalCall(ex *Call, sc *scope) (Value, error) {
	if fn, ok := builtins[ex.Name]; ok {
		return fn(in, ex, sc)
	}
	f, ok := in.prog.Funcs[ex.Name]
	if !ok {
		return Value{}, errAt(ex.Pos, "undefined function %q", ex.Name)
	}
	if len(ex.Args) != len(f.Params) {
		return Value{}, errAt(ex.Pos, "%s expects %d arguments, got %d", ex.Name, len(f.Params), len(ex.Args))
	}
	if in.depth >= maxCallDepth {
		return Value{}, errAt(ex.Pos, "call depth exceeds %d (runaway recursion?)", maxCallDepth)
	}
	fsc := newScope(in.globals)
	for k, param := range f.Params {
		raw, err := in.eval(ex.Args[k], sc)
		if err != nil {
			return Value{}, err
		}
		v, err := convertTo(ex.Args[k].nodePos(), in.arr, raw, param.Type)
		if err != nil {
			return Value{}, err
		}
		// Value semantics: parallel arguments are copied, so callee
		// mutation (as in the paper's min(), which overwrites src) stays
		// local.
		v = copyParam(v)
		if err := fsc.declare(f.Pos, param.Name, v); err != nil {
			return Value{}, err
		}
	}
	in.depth++
	c, ret, err := in.exec(f.Body, fsc)
	in.depth--
	if err != nil {
		return Value{}, err
	}
	if c != ctrlReturn {
		if f.Ret.Base != BaseVoid {
			return Value{}, errAt(f.Pos, "%s: missing return of %s", f.Name, f.Ret)
		}
		return voidValue(), nil
	}
	if f.Ret.Base == BaseVoid {
		return voidValue(), nil
	}
	return convertTo(f.Pos, in.arr, ret, f.Ret)
}

// Call invokes a niladic PPC function by name (the host entry point).
func (in *Interp) Call(name string) (Value, error) {
	f, ok := in.prog.Funcs[name]
	if !ok {
		return Value{}, fmt.Errorf("ppclang: undefined function %q", name)
	}
	if len(f.Params) != 0 {
		return Value{}, fmt.Errorf("ppclang: %s takes %d parameters; Call supports only niladic entry points", name, len(f.Params))
	}
	in.g.reset()
	return in.evalCall(&Call{Pos: f.Pos, Name: name}, in.globals)
}

// global returns the named global, type-checked against want.
func (in *Interp) global(name string, want Type) (*Value, error) {
	v, ok := in.globals.vars[name]
	if !ok {
		return nil, fmt.Errorf("ppclang: no global %q", name)
	}
	if v.T != want {
		return nil, fmt.Errorf("ppclang: global %q is %s, not %s", name, v.T, want)
	}
	return v, nil
}

// SetInt binds a scalar int global.
func (in *Interp) SetInt(name string, val int64) error {
	v, err := in.global(name, Type{Base: BaseInt})
	if err != nil {
		return err
	}
	v.SInt = val
	return nil
}

// GetInt reads a scalar int global.
func (in *Interp) GetInt(name string) (int64, error) {
	v, err := in.global(name, Type{Base: BaseInt})
	if err != nil {
		return 0, err
	}
	return v.SInt, nil
}

// SetParallelInt binds a parallel int global from host data (row-major,
// length N*N); models the host DMA path, charging no cycles.
func (in *Interp) SetParallelInt(name string, data []ppa.Word) error {
	v, err := in.global(name, Type{Parallel: true, Base: BaseInt})
	if err != nil {
		return err
	}
	if len(data) != in.arr.N()*in.arr.N() {
		return fmt.Errorf("ppclang: %q needs %d values, got %d", name, in.arr.N()*in.arr.N(), len(data))
	}
	v.PInt = in.arr.FromSlice(data)
	return nil
}

// GetParallelInt reads a parallel int global back to the host.
func (in *Interp) GetParallelInt(name string) ([]ppa.Word, error) {
	v, err := in.global(name, Type{Parallel: true, Base: BaseInt})
	if err != nil {
		return nil, err
	}
	return v.PInt.Slice(), nil
}

// SetParallelLogical binds a parallel logical global from host data.
func (in *Interp) SetParallelLogical(name string, data []bool) error {
	v, err := in.global(name, Type{Parallel: true, Base: BaseLogical})
	if err != nil {
		return err
	}
	if len(data) != in.arr.N()*in.arr.N() {
		return fmt.Errorf("ppclang: %q needs %d values, got %d", name, in.arr.N()*in.arr.N(), len(data))
	}
	v.PBool = in.arr.FromBools(data)
	return nil
}

// GetParallelLogical reads a parallel logical global back to the host.
func (in *Interp) GetParallelLogical(name string) ([]bool, error) {
	v, err := in.global(name, Type{Parallel: true, Base: BaseLogical})
	if err != nil {
		return nil, err
	}
	return v.PBool.Slice(), nil
}
