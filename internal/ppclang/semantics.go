package ppclang

import (
	"fmt"
	"io"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// This file is the single semantic core shared by the tree-walking
// interpreter (the oracle) and the bytecode VM: every operator and builtin
// application lives here as a function over already-evaluated Values.
// Because both executors funnel through these helpers, they issue the
// exact same par.Array primitives in the exact same order — which is what
// makes the VM's ppa.Metrics byte-identical to the tree-walker's by
// construction. Positions are threaded in explicitly so error messages
// (and their source locations) match as well.

// applyUnary evaluates !x or -x on v. pos is the operator position (the
// tree-walker reports all unary errors there).
func applyUnary(arr *par.Array, op Kind, pos Pos, v Value) (Value, error) {
	switch op {
	case NOT:
		if v.T.Parallel {
			b, err := asParallelBool(pos, arr, v)
			if err != nil {
				return Value{}, err
			}
			return parallelBool(b.Not()), nil
		}
		b, err := asScalarBool(pos, v)
		if err != nil {
			return Value{}, err
		}
		return scalarBool(!b), nil
	case MINUS:
		if v.T.Parallel {
			return Value{}, errAt(pos, "unary minus on parallel values is not supported (machine words are unsigned)")
		}
		s, err := asScalarInt(pos, v)
		if err != nil {
			return Value{}, err
		}
		return scalarInt(-s), nil
	}
	return Value{}, errAt(pos, "internal: unknown unary op %v", op)
}

// applyBinary evaluates a non-short-circuit binary operator on l and r.
// posOp is the operator position, posL/posR the operand positions.
func applyBinary(arr *par.Array, op Kind, posOp, posL, posR Pos, l, r Value) (Value, error) {
	if l.T.Parallel || r.T.Parallel {
		return applyParallelBinary(arr, op, posOp, posL, posR, l, r)
	}
	return applyScalarBinary(op, posOp, posL, posR, l, r)
}

func applyScalarBinary(op Kind, posOp, posL, posR Pos, l, r Value) (Value, error) {
	// Logical == / != compare truth values.
	if (op == EQ || op == NEQ) && l.T.Base == BaseLogical && r.T.Base == BaseLogical {
		eq := l.SBool == r.SBool
		if op == NEQ {
			eq = !eq
		}
		return scalarBool(eq), nil
	}
	a, err := asScalarInt(posL, l)
	if err != nil {
		return Value{}, err
	}
	b, err := asScalarInt(posR, r)
	if err != nil {
		return Value{}, err
	}
	switch op {
	case PLUS:
		return scalarInt(a + b), nil
	case MINUS:
		return scalarInt(a - b), nil
	case STAR:
		return scalarInt(a * b), nil
	case SLASH:
		if b == 0 {
			return Value{}, errAt(posOp, "division by zero")
		}
		return scalarInt(a / b), nil
	case PERCENT:
		if b == 0 {
			return Value{}, errAt(posOp, "modulo by zero")
		}
		return scalarInt(a % b), nil
	case EQ:
		return scalarBool(a == b), nil
	case NEQ:
		return scalarBool(a != b), nil
	case LT:
		return scalarBool(a < b), nil
	case GT:
		return scalarBool(a > b), nil
	case LE:
		return scalarBool(a <= b), nil
	case GE:
		return scalarBool(a >= b), nil
	}
	return Value{}, errAt(posOp, "internal: unknown scalar op %v", op)
}

func applyParallelBinary(arr *par.Array, op Kind, posOp, posL, posR Pos, l, r Value) (Value, error) {
	// Logical equality on two logicals.
	if (op == EQ || op == NEQ) &&
		l.T.Base == BaseLogical && r.T.Base == BaseLogical {
		lb, err := asParallelBool(posL, arr, l)
		if err != nil {
			return Value{}, err
		}
		rb, err := asParallelBool(posR, arr, r)
		if err != nil {
			return Value{}, err
		}
		x := lb.Xor(rb)
		if op == EQ {
			x = x.Not()
		}
		return parallelBool(x), nil
	}
	a, err := asParallelInt(posL, arr, l)
	if err != nil {
		return Value{}, err
	}
	b, err := asParallelInt(posR, arr, r)
	if err != nil {
		return Value{}, err
	}
	switch op {
	case PLUS:
		return parallelInt(a.AddSat(b)), nil
	case MINUS:
		return parallelInt(a.SubClamp(b)), nil
	case STAR, SLASH, PERCENT:
		return Value{}, errAt(posOp, "%v is not supported on parallel values", op)
	case EQ:
		return parallelBool(a.Eq(b)), nil
	case NEQ:
		return parallelBool(a.Ne(b)), nil
	case LT:
		return parallelBool(a.Lt(b)), nil
	case LE:
		return parallelBool(a.Le(b)), nil
	case GT:
		return parallelBool(b.Lt(a)), nil
	case GE:
		return parallelBool(b.Le(a)), nil
	}
	return Value{}, errAt(posOp, "internal: unknown parallel op %v", op)
}

// applyLogicalCombine is the non-short-circuited tail of && and ||: both
// operands are evaluated; if either is parallel the result is the
// lane-wise AND/OR, otherwise the scalar one. The short-circuit decision
// on a scalar left operand happens in each executor before the right
// operand is evaluated (evalLogical in the interpreter, the opAndPre /
// opOrPre jump in the VM).
func applyLogicalCombine(arr *par.Array, op Kind, posL, posR Pos, l, r Value) (Value, error) {
	if !l.T.Parallel && !r.T.Parallel {
		lb, err := asScalarBool(posL, l)
		if err != nil {
			return Value{}, err
		}
		rb, err := asScalarBool(posR, r)
		if err != nil {
			return Value{}, err
		}
		if op == ANDAND {
			return scalarBool(lb && rb), nil
		}
		return scalarBool(lb || rb), nil
	}
	lb, err := asParallelBool(posL, arr, l)
	if err != nil {
		return Value{}, err
	}
	rb, err := asParallelBool(posR, arr, r)
	if err != nil {
		return Value{}, err
	}
	if op == ANDAND {
		return parallelBool(lb.And(rb)), nil
	}
	return parallelBool(lb.Or(rb)), nil
}

// applyIncDec evaluates name++ / name-- on the variable cell v, returning
// the old value (postfix semantics).
func applyIncDec(op Kind, pos Pos, name string, v *Value) (Value, error) {
	if v.T.Parallel || v.T.Base != BaseInt {
		return Value{}, errAt(pos, "++/-- requires a scalar int, %q is %s", name, v.T)
	}
	old := v.SInt
	if op == INC {
		v.SInt++
	} else {
		v.SInt--
	}
	return scalarInt(old), nil
}

// storeAssign implements `name = value` on the variable cell target:
// convert to the declared type, then store — masked for parallel values
// (SIMD store-enable), unconditional replacement for scalar (controller)
// variables. Returns the target's value, the expression result.
func storeAssign(arr *par.Array, pos Pos, target *Value, raw Value) (Value, error) {
	v, err := convertTo(pos, arr, raw, target.T)
	if err != nil {
		return Value{}, err
	}
	switch {
	case target.T.Parallel && target.T.Base == BaseInt:
		target.PInt.Assign(v.PInt) // masked store
	case target.T.Parallel && target.T.Base == BaseLogical:
		target.PBool.Assign(v.PBool) // masked store
	default:
		// Scalar (controller) variables ignore the activity mask.
		*target = v
	}
	return *target, nil
}

// zeroValueOn returns the zero value of t on arr (fresh storage for
// parallel types, exactly as a declaration without initializer allocates).
func zeroValueOn(arr *par.Array, t Type) Value {
	switch {
	case t.Parallel && t.Base == BaseInt:
		return parallelInt(arr.Zeros())
	case t.Parallel && t.Base == BaseLogical:
		return parallelBool(arr.False())
	case t.Base == BaseLogical:
		return scalarBool(false)
	default:
		return scalarInt(0)
	}
}

// copyParam applies value semantics to an already-converted function
// argument: parallel arguments are copied, so callee mutation (as in the
// paper's min(), which overwrites src) stays local.
func copyParam(v Value) Value {
	switch {
	case v.T.Parallel && v.T.Base == BaseInt:
		return parallelInt(v.PInt.Copy())
	case v.T.Parallel && v.T.Base == BaseLogical:
		return parallelBool(v.PBool.Copy())
	}
	return v
}

// Builtins. Each apply* function takes the already-evaluated arguments
// plus the call position (opPos) and the argument positions; the
// conversion order inside each function is the observable machine-op
// order and must not be changed independently of the oracle.

func asDirection(pos Pos, v Value) (ppa.Direction, error) {
	s, err := asScalarInt(pos, v)
	if err != nil {
		return 0, err
	}
	if s < 0 || s > 3 {
		return 0, errAt(pos, "direction must be NORTH, EAST, SOUTH or WEST (got %d)", s)
	}
	return ppa.Direction(s), nil
}

// applyShift implements shift(src, dir): nearest-neighbour data movement.
func applyShift(arr *par.Array, opPos Pos, argPos []Pos, vals []Value) (Value, error) {
	dir, err := asDirection(argPos[1], vals[1])
	if err != nil {
		return Value{}, err
	}
	if vals[0].T.Parallel && vals[0].T.Base == BaseLogical {
		return parallelBool(arr.ShiftBool(vals[0].PBool, dir)), nil
	}
	src, err := asParallelInt(argPos[0], arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	return parallelInt(arr.Shift(src, dir)), nil
}

// applyBroadcast implements broadcast(src, dir, L): segmented-bus
// delivery from the Open PEs designated by L.
func applyBroadcast(arr *par.Array, opPos Pos, argPos []Pos, vals []Value) (Value, error) {
	dir, err := asDirection(argPos[1], vals[1])
	if err != nil {
		return Value{}, err
	}
	open, err := asParallelBool(argPos[2], arr, vals[2])
	if err != nil {
		return Value{}, err
	}
	if vals[0].T.Parallel && vals[0].T.Base == BaseLogical {
		return parallelBool(arr.BroadcastBool(vals[0].PBool, dir, open)), nil
	}
	src, err := asParallelInt(argPos[0], arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	return parallelInt(arr.Broadcast(src, dir, open)), nil
}

// applyMin implements min(src, dir, L): the bit-serial cluster minimum.
func applyMin(arr *par.Array, opPos Pos, argPos []Pos, vals []Value) (Value, error) {
	src, err := asParallelInt(argPos[0], arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(argPos[1], vals[1])
	if err != nil {
		return Value{}, err
	}
	open, err := asParallelBool(argPos[2], arr, vals[2])
	if err != nil {
		return Value{}, err
	}
	return parallelInt(arr.Min(src, dir, open)), nil
}

// applyMax implements max(src, dir, L): the bit-serial cluster maximum.
func applyMax(arr *par.Array, opPos Pos, argPos []Pos, vals []Value) (Value, error) {
	src, err := asParallelInt(argPos[0], arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(argPos[1], vals[1])
	if err != nil {
		return Value{}, err
	}
	open, err := asParallelBool(argPos[2], arr, vals[2])
	if err != nil {
		return Value{}, err
	}
	return parallelInt(arr.Max(src, dir, open)), nil
}

// applySelectedMin implements selected_min(src, dir, L, sel).
func applySelectedMin(arr *par.Array, opPos Pos, argPos []Pos, vals []Value) (Value, error) {
	src, err := asParallelInt(argPos[0], arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(argPos[1], vals[1])
	if err != nil {
		return Value{}, err
	}
	open, err := asParallelBool(argPos[2], arr, vals[2])
	if err != nil {
		return Value{}, err
	}
	sel, err := asParallelBool(argPos[3], arr, vals[3])
	if err != nil {
		return Value{}, err
	}
	return parallelInt(arr.SelectedMin(src, dir, open, sel)), nil
}

// applySelectedMax implements selected_max(src, dir, L, sel).
func applySelectedMax(arr *par.Array, opPos Pos, argPos []Pos, vals []Value) (Value, error) {
	src, err := asParallelInt(argPos[0], arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(argPos[1], vals[1])
	if err != nil {
		return Value{}, err
	}
	open, err := asParallelBool(argPos[2], arr, vals[2])
	if err != nil {
		return Value{}, err
	}
	sel, err := asParallelBool(argPos[3], arr, vals[3])
	if err != nil {
		return Value{}, err
	}
	return parallelInt(arr.SelectedMax(src, dir, open, sel)), nil
}

// applyOr implements or(x, dir, L): the wired-OR over bus clusters.
func applyOr(arr *par.Array, opPos Pos, argPos []Pos, vals []Value) (Value, error) {
	x, err := asParallelBool(argPos[0], arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	dir, err := asDirection(argPos[1], vals[1])
	if err != nil {
		return Value{}, err
	}
	open, err := asParallelBool(argPos[2], arr, vals[2])
	if err != nil {
		return Value{}, err
	}
	return parallelBool(arr.Or(x, dir, open)), nil
}

// applyBit implements bit(x, j): the j-th bit plane of x.
func applyBit(arr *par.Array, opPos Pos, argPos []Pos, vals []Value) (Value, error) {
	x, err := asParallelInt(argPos[0], arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	j, err := asScalarInt(argPos[1], vals[1])
	if err != nil {
		return Value{}, err
	}
	if j < 0 || uint(j) >= arr.Machine().Bits() {
		return Value{}, errAt(opPos, "bit plane %d out of range [0,%d)", j, arr.Machine().Bits())
	}
	return parallelBool(x.BitPlane(uint(j))), nil
}

// applyAny implements any(L): the global-OR line to the controller.
func applyAny(arr *par.Array, opPos Pos, argPos []Pos, vals []Value) (Value, error) {
	b, err := asParallelBool(argPos[0], arr, vals[0])
	if err != nil {
		return Value{}, err
	}
	return scalarBool(arr.Any(b)), nil
}

// applyOpposite implements opposite(dir).
func applyOpposite(arr *par.Array, opPos Pos, argPos []Pos, vals []Value) (Value, error) {
	dir, err := asDirection(argPos[0], vals[0])
	if err != nil {
		return Value{}, err
	}
	return scalarInt(int64(dir.Opposite())), nil
}

// printValue renders one print() argument to w: scalars as numbers,
// parallel values as N x N grids (MAXINT as "inf").
func printValue(w io.Writer, arr *par.Array, v Value) error {
	n := arr.N()
	inf := arr.Machine().Inf()
	switch {
	case !v.T.Parallel:
		_, err := fmt.Fprint(w, v.String())
		return err
	case v.T.Base == BaseInt:
		fmt.Fprintln(w)
		data := v.PInt.Slice()
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if c > 0 {
					fmt.Fprint(w, " ")
				}
				if x := data[r*n+c]; x == inf {
					fmt.Fprint(w, "inf")
				} else {
					fmt.Fprintf(w, "%d", x)
				}
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		fmt.Fprintln(w)
		data := v.PBool.Slice()
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if c > 0 {
					fmt.Fprint(w, " ")
				}
				if data[r*n+c] {
					fmt.Fprint(w, "1")
				} else {
					fmt.Fprint(w, "0")
				}
			}
			fmt.Fprintln(w)
		}
		return nil
	}
}

// builtinArity maps each builtin (other than the variadic print) to its
// argument count and apply function; the compiler and the interpreter
// share this table so the pre-bound builtin indices of the bytecode and
// the interpreter's name dispatch cannot drift apart.
type builtinImpl struct {
	arity int
	apply func(arr *par.Array, opPos Pos, argPos []Pos, vals []Value) (Value, error)
}

// builtinTable's order defines the bytecode's builtin indices.
var builtinTable = []struct {
	name string
	impl builtinImpl
}{
	{"shift", builtinImpl{2, applyShift}},
	{"broadcast", builtinImpl{3, applyBroadcast}},
	{"min", builtinImpl{3, applyMin}},
	{"max", builtinImpl{3, applyMax}},
	{"selected_min", builtinImpl{4, applySelectedMin}},
	{"selected_max", builtinImpl{4, applySelectedMax}},
	{"or", builtinImpl{3, applyOr}},
	{"bit", builtinImpl{2, applyBit}},
	{"any", builtinImpl{1, applyAny}},
	{"opposite", builtinImpl{1, applyOpposite}},
}

// builtinIndex resolves a builtin name to its builtinTable index, or -1.
// print is not in the table: it is variadic and compiles to its own
// opcode sequence (interleaved evaluate-and-print, like the oracle).
func builtinIndex(name string) int {
	for i, b := range builtinTable {
		if b.name == name {
			return i
		}
	}
	return -1
}
