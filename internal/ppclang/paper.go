package ppclang

// PaperMCPSource is the paper's minimum_cost_path() listing (statements
// 1-21) transliterated into the implemented PPC subset. Differences from
// the printed listing, both documented in DESIGN.md:
//
//   - statement 5 is replaced by the corrected initialization (the listing
//     loads row d of W where the DP needs column d; the fix moves column d
//     onto row d with two broadcasts and pins SOW[d][d] to 0);
//   - the termination pseudo-condition "at least one SOW in row d has
//     changed" is spelled with the global-OR builtin any().
//
// The host binds W (parallel int, MAXINT for missing edges, zero diagonal)
// and d (scalar int), calls minimum_cost_path, and reads row d of SOW and
// PTN back. Executing this source issues exactly the same bus, wired-OR
// and global-OR transactions as the native-Go core.Solve — experiment E5
// checks both outputs and cycle counts for equality.
const PaperMCPSource = `
/* Input data, bound by the host. */
parallel int W;
int d;

/* Output data: row d of SOW holds the path costs, row d of PTN the
 * next-vertex pointers. */
parallel int SOW;
parallel int PTN;

/* Zero-initialized working variable; its row-d lanes are never written,
 * which keeps SOW[d][d] pinned at 0 through the diagonal fold. */
parallel int MIN_SOW;

void minimum_cost_path()
{
    parallel int OLD_SOW;

    /* Step 1 - initialization (statements 4-7, corrected init). */
    where (ROW == d) {
        SOW = broadcast(broadcast(W, EAST, COL == d), SOUTH, ROW == COL);
        PTN = d;
    }
    where (ROW == d && COL == d)
        SOW = 0;

    /* Step 2 - RMCP computation (statements 8-20). */
    do {
        where (ROW != d) {
            SOW = broadcast(SOW, SOUTH, ROW == d) + W;
            MIN_SOW = min(SOW, WEST, COL == (N - 1));
            PTN = selected_min(COL, WEST, COL == (N - 1), MIN_SOW == SOW);
        }
        where (ROW == d) {
            OLD_SOW = SOW;
            SOW = broadcast(MIN_SOW, SOUTH, ROW == COL);
            where (SOW != OLD_SOW)
                PTN = broadcast(PTN, SOUTH, ROW == COL);
        }
    } while (any(ROW == d && SOW != OLD_SOW));
}
`

// PaperMinSource is the paper's min() routine written as a user-defined
// PPC function (my_min), used to validate the interpreter against the
// builtin: both must return the same values at the same bus cost. Like the
// builtin (DESIGN.md deviation 3a), it omits the listing's redundant
// broadcast around or().
const PaperMinSource = `
parallel int my_min(parallel int src, int orientation, parallel logical L)
{
    int j;
    parallel logical enable = 1;

    for (j = BITS - 1; j >= 0; j--)
        where (or(!bit(src, j) && enable, orientation, L) && bit(src, j))
            enable = 0;
    where (L)
        src = broadcast(src, opposite(orientation), enable);
    return broadcast(src, orientation, L);
}
`

// PaperMinVerbatimSource is the paper's min() routine with statement 9
// exactly as printed — including the broadcast wrapped around or().
// On whole-ring clusters (the only configuration the MCP algorithm
// builds) the extra broadcast is harmless under either bus model, because
// each ring's single head receives its own cluster's OR back through the
// wrap; TestPaperMinVerbatimMatchesBuiltin checks value equality with the
// builtin and pins the extra bus cycle per bit plane. On multi-cluster
// rings the verbatim form corrupts head lanes under the wired-OR model
// (DESIGN.md deviation 3a), which is why the builtin drops it.
const PaperMinVerbatimSource = `
parallel int my_min_verbatim(parallel int src, int orientation, parallel logical L)
{
    int j;
    parallel logical enable = 1;

    for (j = BITS - 1; j >= 0; j--)
        where (broadcast(or(!bit(src, j) && enable, orientation, L), orientation, L) && bit(src, j))
            enable = 0;
    where (L)
        src = broadcast(src, opposite(orientation), enable);
    return broadcast(src, orientation, L);
}
`
