package ppclang

import (
	"strings"
	"testing"
)

func TestCompilePaperSources(t *testing.T) {
	for name, src := range map[string]string{
		"mcp": PaperMCPSource,
		"min": PaperMinSource,
	} {
		if _, err := Compile(src); err != nil {
			t.Errorf("Compile(%s): %v", name, err)
		}
	}
}

func TestCompileStructure(t *testing.T) {
	src := `
parallel int A, B = 3;
int d = 2;
int twice(int x) { return x + x; }
void main() { d = twice(d); }
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 2 {
		t.Errorf("globals = %d, want 2", len(prog.Globals))
	}
	if prog.Globals[0].Names[0] != "A" || prog.Globals[0].Names[1] != "B" {
		t.Errorf("global names: %v", prog.Globals[0].Names)
	}
	if prog.Globals[0].Inits[0] != nil || prog.Globals[0].Inits[1] == nil {
		t.Error("initializer placement wrong")
	}
	if _, ok := prog.Funcs["twice"]; !ok {
		t.Error("function twice missing")
	}
	f := prog.Funcs["twice"]
	if len(f.Params) != 1 || f.Params[0].Name != "x" || f.Params[0].Type.Parallel {
		t.Errorf("params: %+v", f.Params)
	}
	if f.Ret != (Type{Base: BaseInt}) {
		t.Errorf("return type: %v", f.Ret)
	}
}

func TestCompileVoidParamList(t *testing.T) {
	prog, err := Compile("void f(void) { }")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs["f"].Params) != 0 {
		t.Error("f(void) has parameters")
	}
}

func TestCompileStatementsParse(t *testing.T) {
	src := `
void main() {
	int i, s;
	for (i = 0; i < 10; i++) s = s + i;
	for (int j = 9; j >= 0; j--) { if (j == 5) break; else continue; }
	while (s > 0) s = s - 1;
	do s++; while (s < 3);
	;
	{ int nested; nested = 1; }
	where (ROW == COL) s = 0; elsewhere s = 1;
	return;
}
`
	if _, err := Compile(src); err != nil {
		t.Fatal(err)
	}
}

func TestCompileExpressionPrecedence(t *testing.T) {
	// 1 + 2 * 3 == 7 && !(4 < 3) must parse as ((1+(2*3)) == 7) && (!(4<3)).
	prog, err := Compile("void f() { int x; x = 1 + 2 * 3 == 7 && !(4 < 3); }")
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Funcs["f"].Body.Stmts
	asgn := body[1].(*ExprStmt).X.(*Assign)
	top, ok := asgn.Val.(*Binary)
	if !ok || top.Op != ANDAND {
		t.Fatalf("top op: %#v", asgn.Val)
	}
	left, ok := top.L.(*Binary)
	if !ok || left.Op != EQ {
		t.Fatalf("left of &&: %#v", top.L)
	}
	plus, ok := left.L.(*Binary)
	if !ok || plus.Op != PLUS {
		t.Fatalf("left of ==: %#v", left.L)
	}
	if mul, ok := plus.R.(*Binary); !ok || mul.Op != STAR {
		t.Fatalf("right of +: %#v", plus.R)
	}
}

func TestCompileAssignmentChains(t *testing.T) {
	prog, err := Compile("void f() { int a, b; a = b = 3; }")
	if err != nil {
		t.Fatal(err)
	}
	asgn := prog.Funcs["f"].Body.Stmts[1].(*ExprStmt).X.(*Assign)
	if asgn.Name != "a" {
		t.Errorf("outer assign to %q", asgn.Name)
	}
	if inner, ok := asgn.Val.(*Assign); !ok || inner.Name != "b" {
		t.Errorf("inner: %#v", asgn.Val)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"missing semi":        "int x",
		"void variable":       "void x;",
		"parallel void":       "parallel void f() {}",
		"void local":          "void f() { void v; }",
		"dup function":        "void f() {} void f() {}",
		"bad top level":       "42;",
		"unterminated block":  "void f() {",
		"void param":          "void f(void x) {}",
		"incdec non-variable": "void f() { 3++; }",
		"missing paren":       "void f() { if (1 {} }",
		"do without while":    "void f() { do {} until (1); }",
		"stray elsewhere":     "void f() { elsewhere x = 1; }",
		"expr expected":       "void f() { int x; x = ; }",
		"unclosed call":       "void f() { g(1, ; }",
	}
	for name, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Errorf("%s: Compile(%q) succeeded, want error", name, src)
		}
	}
}

func TestCompileErrorMentionsPosition(t *testing.T) {
	_, err := Compile("void f() {\n  int x\n}")
	if err == nil || !strings.Contains(err.Error(), "3:") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		{Base: BaseInt}:                     "int",
		{Base: BaseLogical}:                 "logical",
		{Base: BaseVoid}:                    "void",
		{Parallel: true, Base: BaseInt}:     "parallel int",
		{Parallel: true, Base: BaseLogical}: "parallel logical",
	}
	for ty, want := range cases {
		if ty.String() != want {
			t.Errorf("%v.String() = %q", ty, ty.String())
		}
	}
}
