package ppclang

import (
	"strings"
	"testing"

	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

func newTestInterp(t *testing.T, src string, n int, h uint) *Interp {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	in, err := NewInterp(prog, par.New(ppa.New(n, h)))
	if err != nil {
		t.Fatalf("NewInterp: %v", err)
	}
	return in
}

func callOK(t *testing.T, in *Interp, name string) Value {
	t.Helper()
	v, err := in.Call(name)
	if err != nil {
		t.Fatalf("Call(%s): %v", name, err)
	}
	return v
}

func TestScalarArithmeticAndControlFlow(t *testing.T) {
	src := `
int result;
int fib(int k) {
	if (k <= 1) return k;
	return fib(k - 1) + fib(k - 2);
}
void main() {
	int i, acc;
	acc = 0;
	for (i = 1; i <= 10; i++) {
		if (i % 2 == 0)
			continue;
		acc = acc + i;      /* 1+3+5+7+9 = 25 */
	}
	while (acc > 20) acc = acc - 7;   /* 25 -> 18 */
	do acc++; while (acc < 20);       /* -> 20 */
	result = acc * 2 - fib(7) + 100 / 4 - 13 % 5;  /* 40 - 13 + 25 - 3 = 49 */
}
`
	in := newTestInterp(t, src, 2, 8)
	callOK(t, in, "main")
	got, err := in.GetInt("result")
	if err != nil || got != 49 {
		t.Errorf("result = %d (%v), want 49", got, err)
	}
}

func TestParallelWhereSemantics(t *testing.T) {
	src := `
parallel int V;
void main() {
	where (ROW == 0)
		V = 10;
	elsewhere
		V = 20;
	where (ROW == 0 && COL == 1)
		V = V + 5;
}
`
	in := newTestInterp(t, src, 3, 8)
	callOK(t, in, "main")
	v, err := in.GetParallelInt("V")
	if err != nil {
		t.Fatal(err)
	}
	want := []ppa.Word{10, 15, 10, 20, 20, 20, 20, 20, 20}
	for i := range want {
		if v[i] != want[i] {
			t.Errorf("V[%d] = %d, want %d", i, v[i], want[i])
		}
	}
}

func TestParallelSaturatingPlus(t *testing.T) {
	src := `
parallel int V;
void main() { V = MAXINT; V = V + 1; V = V + V; }
`
	in := newTestInterp(t, src, 2, 8)
	callOK(t, in, "main")
	v, _ := in.GetParallelInt("V")
	if v[0] != 255 {
		t.Errorf("saturation failed: %d", v[0])
	}
}

func TestPredefinedConstants(t *testing.T) {
	src := `
int n2, b2, m2, no, ea, so, we;
void main() { n2 = N; b2 = BITS; m2 = MAXINT; no = NORTH; ea = EAST; so = SOUTH; we = WEST; }
`
	in := newTestInterp(t, src, 5, 9)
	callOK(t, in, "main")
	for name, want := range map[string]int64{
		"n2": 5, "b2": 9, "m2": 511, "no": 0, "ea": 1, "so": 2, "we": 3,
	} {
		if got, _ := in.GetInt(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestShiftAndBroadcastBuiltins(t *testing.T) {
	src := `
parallel int V, S, B;
void main() {
	V = COL;
	S = shift(V, EAST);
	B = broadcast(V, EAST, COL == 0);
}
`
	in := newTestInterp(t, src, 3, 8)
	callOK(t, in, "main")
	s, _ := in.GetParallelInt("S")
	b, _ := in.GetParallelInt("B")
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if s[r*3+c] != ppa.Word((c+2)%3) {
				t.Errorf("S[%d,%d] = %d", r, c, s[r*3+c])
			}
			if b[r*3+c] != 0 {
				t.Errorf("B[%d,%d] = %d, want 0 (col 0's value)", r, c, b[r*3+c])
			}
		}
	}
}

func TestMinBuiltinAndUserMinAgree(t *testing.T) {
	src := PaperMinSource + `
parallel int V, M1, M2;
void main() {
	M1 = min(V, WEST, COL == (N - 1));
	M2 = my_min(V, WEST, COL == (N - 1));
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	arr := par.New(ppa.New(4, 8))
	in, err := NewInterp(prog, arr)
	if err != nil {
		t.Fatal(err)
	}
	data := []ppa.Word{
		9, 4, 7, 5,
		255, 1, 2, 255,
		3, 3, 3, 3,
		250, 251, 252, 0,
	}
	if err := in.SetParallelInt("V", data); err != nil {
		t.Fatal(err)
	}
	before := arr.Machine().Metrics()
	if _, err := in.Call("main"); err != nil {
		t.Fatal(err)
	}
	after := arr.Machine().Metrics().Sub(before)
	m1, _ := in.GetParallelInt("M1")
	m2, _ := in.GetParallelInt("M2")
	wantMins := []ppa.Word{4, 1, 3, 0}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if m1[r*4+c] != wantMins[r] || m2[r*4+c] != wantMins[r] {
				t.Errorf("row %d col %d: builtin %d, my_min %d, want %d",
					r, c, m1[r*4+c], m2[r*4+c], wantMins[r])
			}
		}
	}
	// Both minima cost the same bus transactions: 2 * (h wired-OR + 2 bus).
	if after.WiredOrCycles != 16 || after.BusCycles != 4 {
		t.Errorf("comm cycles = %v, want 16 wired-OR + 4 bus", after)
	}
}

func TestSelectedMinOrBitAnyOpposite(t *testing.T) {
	src := `
parallel int V, SM;
parallel logical L, O;
logical a1, a2;
int op;
void main() {
	V = COL;
	SM = selected_min(COL, WEST, COL == (N - 1), ROW == COL);
	O = or(ROW == 1 && COL == 1, EAST, COL == 0);
	L = bit(V, 0);
	a1 = any(V > 900);
	a2 = any(V == 2);
	op = opposite(WEST);
}
`
	in := newTestInterp(t, src, 3, 10)
	callOK(t, in, "main")
	sm, _ := in.GetParallelInt("SM")
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if sm[r*3+c] != ppa.Word(r) {
				t.Errorf("SM[%d,%d] = %d, want %d (diagonal-selected col)", r, c, sm[r*3+c], r)
			}
		}
	}
	o, _ := in.GetParallelLogical("O")
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if o[r*3+c] != (r == 1) {
				t.Errorf("O[%d,%d] = %v", r, c, o[r*3+c])
			}
		}
	}
	l, _ := in.GetParallelLogical("L")
	// V = COL, so bit 0 is set exactly in odd columns.
	if l[0] || !l[1] || l[2] {
		t.Errorf("bit plane: %v", l[:3])
	}
	// any() results land in scalar logicals.
	if v := in.globals.lookup("a1"); v.SBool {
		t.Error("any(V > 900) = true")
	}
	if v := in.globals.lookup("a2"); !v.SBool {
		t.Error("any(V == 2) = false")
	}
	if got, _ := in.GetInt("op"); got != int64(ppa.East) {
		t.Errorf("opposite(WEST) = %d", got)
	}
}

func TestMaxAndSelectedMaxBuiltins(t *testing.T) {
	src := `
parallel int V, M, SM;
void main() {
	V = COL;
	M = max(V, WEST, COL == (N - 1));
	SM = selected_max(V, WEST, COL == (N - 1), COL < 2);
}
`
	in := newTestInterp(t, src, 4, 8)
	callOK(t, in, "main")
	m, _ := in.GetParallelInt("M")
	sm, _ := in.GetParallelInt("SM")
	for i := 0; i < 16; i++ {
		if m[i] != 3 {
			t.Errorf("max[%d] = %d, want 3", i, m[i])
		}
		if sm[i] != 1 {
			t.Errorf("selected_max[%d] = %d, want 1", i, sm[i])
		}
	}
}

func TestFunctionValueSemanticsForParallelParams(t *testing.T) {
	// The callee overwrites its parallel parameter; the caller's variable
	// must be unaffected (the paper's min() relies on this).
	src := `
parallel int V;
parallel int clobber(parallel int x) { x = 0; return x; }
void main() { V = 7; clobber(V); }
`
	in := newTestInterp(t, src, 2, 8)
	callOK(t, in, "main")
	v, _ := in.GetParallelInt("V")
	if v[0] != 7 {
		t.Errorf("caller's V clobbered: %d", v[0])
	}
}

func TestGlobalInitializersRunInOrder(t *testing.T) {
	src := `
int a = 3;
int b = a + 4;
void main() { }
`
	in := newTestInterp(t, src, 2, 8)
	if got, _ := in.GetInt("b"); got != 7 {
		t.Errorf("b = %d, want 7", got)
	}
}

func TestPrintOutput(t *testing.T) {
	src := `
parallel int V;
void main() {
	int s;
	s = 42;
	print(s, s + 1);
	V = MAXINT;
	print(V);
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	in, err := NewInterp(prog, par.New(ppa.New(2, 8)), WithOutput(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Call("main"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "42 43") || !strings.Contains(out, "inf inf") {
		t.Errorf("print output:\n%s", out)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := map[string]string{
		"undefined var":        "void main() { x = 1; }",
		"undefined func":       "void main() { nosuch(); }",
		"scalar where":         "void main() { where (1 < 2) ; }",
		"parallel if":          "void main() { if (ROW == 0) ; }",
		"parallel to scalar":   "int s; void main() { s = ROW; }",
		"div by zero":          "void main() { int x; x = 1 / 0; }",
		"mod by zero":          "void main() { int x; x = 1 % 0; }",
		"parallel star":        "parallel int v; void main() { v = ROW * COL; }",
		"parallel unary minus": "parallel int v; void main() { v = -ROW; }",
		"bad direction":        "void main() { shift(ROW, 9); }",
		"bit out of range":     "void main() { bit(ROW, 99); }",
		"arg count":            "void main() { min(ROW, WEST); }",
		"call arg count":       "int f(int x) { return x; } void main() { f(); }",
		"missing return":       "int f() { } void main() { f(); }",
		"return across where":  "void main() { where (ROW == 0) return; }",
		"break across where":   "void main() { while (1 < 2) where (ROW == 0) break; }",
		"parallel incdec":      "parallel int v; void main() { v++; }",
		"redeclare":            "void main() { int x; int x; }",
		"scalar lit too big":   "parallel int v; void main() { v = 300; }",
		"recursion limit":      "int f(int x) { return f(x); } void main() { f(1); }",
		"parallel while":       "void main() { while (ROW == 0) ; }",
	}
	for name, src := range cases {
		in := newTestInterp(t, src, 2, 8)
		if _, err := in.Call("main"); err == nil {
			t.Errorf("%s: no runtime error", name)
		}
	}
}

func TestHostBindingErrors(t *testing.T) {
	in := newTestInterp(t, "parallel int W; int d; parallel logical L; void main() { }", 2, 8)
	if err := in.SetInt("W", 3); err == nil {
		t.Error("SetInt on parallel accepted")
	}
	if err := in.SetInt("nosuch", 3); err == nil {
		t.Error("SetInt on missing accepted")
	}
	if err := in.SetParallelInt("W", make([]ppa.Word, 3)); err == nil {
		t.Error("short data accepted")
	}
	if err := in.SetParallelLogical("L", make([]bool, 1)); err == nil {
		t.Error("short logical accepted")
	}
	if err := in.SetParallelInt("d", make([]ppa.Word, 4)); err == nil {
		t.Error("SetParallelInt on scalar accepted")
	}
	if _, err := in.GetParallelInt("d"); err == nil {
		t.Error("GetParallelInt on scalar accepted")
	}
	if _, err := in.GetParallelLogical("W"); err == nil {
		t.Error("GetParallelLogical on int accepted")
	}
	if _, err := in.Call("nosuch"); err == nil {
		t.Error("Call on missing function accepted")
	}
	if _, err := in.Call("main"); err != nil {
		t.Errorf("Call(main): %v", err)
	}
	withArgs := newTestInterp(t, "void f(int x) { }", 2, 8)
	if _, err := withArgs.Call("f"); err == nil {
		t.Error("Call on function with params accepted")
	}
}

func TestParallelOperatorMatrix(t *testing.T) {
	src := `
parallel logical LOR, LAND, LNE, GE1, GT1, LEQ;
parallel int SUB;
void main() {
	LOR  = ROW == 0 || COL == 0;
	LAND = 1 && ROW == 1;            /* scalar-true left, parallel right */
	LNE  = (ROW == 0) != (COL == 0); /* parallel logical inequality */
	GE1  = ROW >= 1;
	GT1  = COL > 1;
	LEQ  = (ROW == 0) == (COL == 0);
	SUB  = ROW - COL;                /* clamped monus */
}
`
	in := newTestInterp(t, src, 3, 8)
	callOK(t, in, "main")
	lor, _ := in.GetParallelLogical("LOR")
	if !lor[0] || !lor[1] || !lor[3] || lor[4] {
		t.Errorf("LOR = %v", lor)
	}
	land, _ := in.GetParallelLogical("LAND")
	if land[0] || !land[3] {
		t.Errorf("LAND = %v", land)
	}
	lne, _ := in.GetParallelLogical("LNE")
	if lne[0] || !lne[1] || !lne[3] || lne[4] {
		t.Errorf("LNE = %v", lne)
	}
	ge, _ := in.GetParallelLogical("GE1")
	if ge[0] || !ge[3] || !ge[6] {
		t.Errorf("GE1 = %v", ge)
	}
	gt, _ := in.GetParallelLogical("GT1")
	if gt[1] || !gt[2] {
		t.Errorf("GT1 = %v", gt)
	}
	leq, _ := in.GetParallelLogical("LEQ")
	if !leq[0] || leq[1] || !leq[4] {
		t.Errorf("LEQ = %v", leq)
	}
	sub, _ := in.GetParallelInt("SUB")
	if sub[1] != 0 || sub[3] != 1 || sub[6] != 2 {
		t.Errorf("SUB = %v", sub)
	}
}

func TestScalarLogicalEquality(t *testing.T) {
	src := `
logical eq, ne;
void main() {
	eq = (1 < 2) == (3 < 4);
	ne = (1 < 2) != (3 < 4);
}
`
	in := newTestInterp(t, src, 2, 8)
	callOK(t, in, "main")
	if v := in.globals.lookup("eq"); !v.SBool {
		t.Error("logical == wrong")
	}
	if v := in.globals.lookup("ne"); v.SBool {
		t.Error("logical != wrong")
	}
}

func TestParallelOrWithParallelLeft(t *testing.T) {
	src := `
parallel logical L;
void main() { L = ROW == 0 || 0; }
`
	in := newTestInterp(t, src, 2, 8)
	callOK(t, in, "main")
	l, _ := in.GetParallelLogical("L")
	if !l[0] || l[2] {
		t.Errorf("parallel-left || = %v", l)
	}
}

func TestGetIntErrorsAndArrayAccessor(t *testing.T) {
	in := newTestInterp(t, "parallel int V; void main() { }", 2, 8)
	if _, err := in.GetInt("V"); err == nil {
		t.Error("GetInt on parallel accepted")
	}
	if _, err := in.GetInt("missing"); err == nil {
		t.Error("GetInt on missing accepted")
	}
	if in.Array() == nil || in.Array().N() != 2 {
		t.Error("Array accessor broken")
	}
}

func TestLogicalConversionsAndComparisons(t *testing.T) {
	src := `
parallel logical L1, L2, LE1;
logical s;
void main() {
	L1 = 1;
	L2 = ROW;        /* int -> logical: nonzero */
	LE1 = L1 == L2;
	s = 5;           /* scalar int -> logical */
}
`
	in := newTestInterp(t, src, 2, 8)
	callOK(t, in, "main")
	l2, _ := in.GetParallelLogical("L2")
	if l2[0] || !l2[2] {
		t.Errorf("int->logical: %v", l2)
	}
	le, _ := in.GetParallelLogical("LE1")
	if le[0] || !le[2] {
		t.Errorf("logical equality: %v", le)
	}
	if v := in.globals.lookup("s"); !v.SBool {
		t.Error("scalar int->logical failed")
	}
}

func TestShortCircuitScalarLogic(t *testing.T) {
	// 1/0 on the right of a short-circuited && must never evaluate.
	src := `
int ok;
void main() {
	if (0 != 0 && 1 / 0 == 1) ok = 1; else ok = 2;
	if (1 == 1 || 1 / 0 == 1) ok = ok + 10;
}
`
	in := newTestInterp(t, src, 2, 8)
	callOK(t, in, "main")
	if got, _ := in.GetInt("ok"); got != 12 {
		t.Errorf("ok = %d, want 12", got)
	}
}

func TestValueString(t *testing.T) {
	if scalarInt(5).String() != "5" || scalarBool(true).String() != "1" ||
		scalarBool(false).String() != "0" || voidValue().String() != "void" {
		t.Error("scalar String wrong")
	}
	arr := par.New(ppa.New(2, 8))
	if s := parallelInt(arr.Zeros()).String(); !strings.Contains(s, "parallel int") {
		t.Errorf("parallel String = %q", s)
	}
}
