// Package viz renders PPA machine configurations and grid-world solutions
// as ASCII diagrams. RenderSwitches reproduces the role of the paper's
// Figure 1 (the two bus sets and the per-PE Open/Short switch boxes);
// RenderGridPath draws robot-navigation solutions for the examples.
package viz

import (
	"fmt"
	"strings"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// RenderSwitches draws an n x n switch-box configuration for a bus
// transaction in direction dir: `[O]` marks an Open (injecting) switch
// box, `[-]` a Short (pass-through) one. The header shows the global data
// movement direction selected by the SIMD controller.
func RenderSwitches(n int, open []bool, dir ppa.Direction) string {
	if len(open) != n*n {
		panic(fmt.Sprintf("viz: open has length %d, want %d", len(open), n*n))
	}
	var sb strings.Builder
	arrow := map[ppa.Direction]string{
		ppa.North: "^", ppa.South: "v", ppa.East: ">", ppa.West: "<",
	}[dir]
	fmt.Fprintf(&sb, "PPA %dx%d  data movement: %s (%s)\n", n, n, dir, arrow)
	sb.WriteString("      ")
	for c := 0; c < n; c++ {
		fmt.Fprintf(&sb, "%3d ", c)
	}
	sb.WriteByte('\n')
	for r := 0; r < n; r++ {
		fmt.Fprintf(&sb, "row%2d ", r)
		for c := 0; c < n; c++ {
			if open[r*n+c] {
				sb.WriteString("[O] ")
			} else {
				sb.WriteString("[-] ")
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("[O] = Open switch box (injects onto the bus)   [-] = Short (passes through)\n")
	return sb.String()
}

// RenderWordGrid draws an n x n parallel variable, printing MAXINT-valued
// lanes (>= inf) as "inf".
func RenderWordGrid(n int, vals []ppa.Word, inf ppa.Word) string {
	if len(vals) != n*n {
		panic(fmt.Sprintf("viz: vals has length %d, want %d", len(vals), n*n))
	}
	width := 3
	for _, v := range vals {
		if v < inf {
			if w := len(fmt.Sprintf("%d", v)); w > width {
				width = w
			}
		}
	}
	var sb strings.Builder
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c > 0 {
				sb.WriteByte(' ')
			}
			v := vals[r*n+c]
			if v >= inf {
				fmt.Fprintf(&sb, "%*s", width, "inf")
			} else {
				fmt.Fprintf(&sb, "%*d", width, v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderGridPath draws a rows x cols grid world: 'S' start, 'G' goal,
// '#' obstacles, '*' the path cells, '.' free cells. path is a vertex
// sequence over the grid graph (vertex = r*cols + c); blocked may be nil.
func RenderGridPath(rows, cols int, path []int, blocked []bool) string {
	cell := make([]byte, rows*cols)
	for i := range cell {
		cell[i] = '.'
	}
	if blocked != nil {
		for i, b := range blocked {
			if b {
				cell[i] = '#'
			}
		}
	}
	for _, v := range path {
		if v >= 0 && v < len(cell) {
			cell[v] = '*'
		}
	}
	if len(path) > 0 {
		cell[path[0]] = 'S'
		cell[path[len(path)-1]] = 'G'
	}
	var sb strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			sb.WriteByte(cell[r*cols+c])
			if c+1 < cols {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderTree draws the shortest-path tree of a single-destination result
// as an indented forest rooted at the destination: each vertex hangs
// under its Next pointer (children sorted by index), with its distance in
// parentheses. Unreachable vertices are listed at the end.
func RenderTree(r *graph.Result) string {
	n := len(r.Dist)
	children := make([][]int, n)
	var unreachable []int
	for v := 0; v < n; v++ {
		switch {
		case v == r.Dest:
		case r.Dist[v] == graph.NoEdge:
			unreachable = append(unreachable, v)
		default:
			children[r.Next[v]] = append(children[r.Next[v]], v)
		}
	}
	var sb strings.Builder
	var walk func(v, depth int)
	walk = func(v, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		if v == r.Dest {
			fmt.Fprintf(&sb, "%d (destination)\n", v)
		} else {
			fmt.Fprintf(&sb, "%d (cost %d)\n", v, r.Dist[v])
		}
		for _, c := range children[v] {
			walk(c, depth+1)
		}
	}
	walk(r.Dest, 0)
	if len(unreachable) > 0 {
		fmt.Fprintf(&sb, "unreachable: %v\n", unreachable)
	}
	return sb.String()
}

// RenderDistances prints a single-destination result as a table of
// vertex / distance / next-hop lines.
func RenderDistances(r *graph.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "destination: %d\n", r.Dest)
	fmt.Fprintf(&sb, "%8s %10s %6s\n", "vertex", "cost", "next")
	for i := range r.Dist {
		cost := "inf"
		next := "-"
		if r.Dist[i] != graph.NoEdge {
			cost = fmt.Sprintf("%d", r.Dist[i])
			if r.Next[i] >= 0 {
				next = fmt.Sprintf("%d", r.Next[i])
			}
		}
		fmt.Fprintf(&sb, "%8d %10s %6s\n", i, cost, next)
	}
	return sb.String()
}
