package viz

import (
	"strings"
	"testing"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

func TestRenderSwitches(t *testing.T) {
	open := make([]bool, 9)
	open[4] = true // center
	out := RenderSwitches(3, open, ppa.South)
	if !strings.Contains(out, "South") || !strings.Contains(out, "[O]") {
		t.Errorf("missing elements:\n%s", out)
	}
	if strings.Count(out, "[O]") != 2 { // one in grid + one in legend
		t.Errorf("open count wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + col header + 3 rows + legend
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestRenderSwitchesPanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RenderSwitches(3, make([]bool, 4), ppa.North)
}

func TestRenderWordGrid(t *testing.T) {
	out := RenderWordGrid(2, []ppa.Word{1, 255, 12, 3}, 255)
	if !strings.Contains(out, "inf") || !strings.Contains(out, "12") {
		t.Errorf("grid:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Errorf("row count wrong:\n%s", out)
	}
}

func TestRenderGridPath(t *testing.T) {
	blocked := make([]bool, 12)
	blocked[5] = true
	out := RenderGridPath(3, 4, []int{0, 1, 2, 6, 10, 11}, blocked)
	if !strings.Contains(out, "S") || !strings.Contains(out, "G") ||
		!strings.Contains(out, "#") || !strings.Contains(out, "*") {
		t.Errorf("markers missing:\n%s", out)
	}
	// Start cell is S, not *.
	if strings.HasPrefix(out, "*") {
		t.Errorf("start not marked S:\n%s", out)
	}
}

func TestRenderGridPathEmpty(t *testing.T) {
	out := RenderGridPath(2, 2, nil, nil)
	if strings.Count(out, ".") != 4 {
		t.Errorf("empty grid:\n%s", out)
	}
}

func TestRenderTree(t *testing.T) {
	// Tree: dest 3 <- {1 <- {0}, 2}; 4 unreachable.
	r := &graph.Result{
		Dest: 3,
		Dist: []int64{4, 2, 3, 0, graph.NoEdge},
		Next: []int{1, 3, 3, -1, -1},
	}
	out := RenderTree(r)
	want := "3 (destination)\n  1 (cost 2)\n    0 (cost 4)\n  2 (cost 3)\nunreachable: [4]\n"
	if out != want {
		t.Errorf("RenderTree =\n%q\nwant\n%q", out, want)
	}
}

func TestRenderTreeTrivial(t *testing.T) {
	r := &graph.Result{Dest: 0, Dist: []int64{0}, Next: []int{-1}}
	if out := RenderTree(r); !strings.Contains(out, "0 (destination)") || strings.Contains(out, "unreachable") {
		t.Errorf("trivial tree:\n%s", out)
	}
}

func TestRenderDistances(t *testing.T) {
	r := &graph.Result{
		Dest: 1,
		Dist: []int64{5, 0, graph.NoEdge},
		Next: []int{1, -1, -1},
	}
	out := RenderDistances(r)
	if !strings.Contains(out, "destination: 1") || !strings.Contains(out, "inf") {
		t.Errorf("table:\n%s", out)
	}
	if !strings.Contains(out, "5") {
		t.Errorf("missing cost:\n%s", out)
	}
}
