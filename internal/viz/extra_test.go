package viz

import (
	"strings"
	"testing"

	"ppamcp/internal/ppa"
)

func TestRenderSwitchesAllDirections(t *testing.T) {
	open := make([]bool, 4)
	for _, c := range []struct {
		d     ppa.Direction
		arrow string
	}{
		{ppa.North, "^"}, {ppa.East, ">"}, {ppa.South, "v"}, {ppa.West, "<"},
	} {
		out := RenderSwitches(2, open, c.d)
		if !strings.Contains(out, c.d.String()) || !strings.Contains(out, "("+c.arrow+")") {
			t.Errorf("%v: header wrong:\n%s", c.d, out)
		}
	}
}

func TestRenderWordGridWideValues(t *testing.T) {
	out := RenderWordGrid(2, []ppa.Word{123456, 1, 2, 3}, 1<<40)
	if !strings.Contains(out, "123456") {
		t.Errorf("wide value missing:\n%s", out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad length did not panic")
		}
	}()
	RenderWordGrid(3, []ppa.Word{1}, 10)
}
