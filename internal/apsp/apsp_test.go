package apsp

import (
	"math/rand"
	"testing"

	"ppamcp/internal/core"
	"ppamcp/internal/graph"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

func TestMinPlusProductAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(9)
		const h = 12
		inf := ppa.Infinity(h)
		m := ppa.New(n, h)
		a := par.New(m)
		av := make([]ppa.Word, n*n)
		bv := make([]ppa.Word, n*n)
		for i := range av {
			av[i] = ppa.Word(rng.Int63n(int64(inf) + 1))
			bv[i] = ppa.Word(rng.Int63n(int64(inf) + 1))
		}
		got := minPlusProduct(a, a.FromSlice(av), a.FromSlice(bv)).Slice()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := inf
				for k := 0; k < n; k++ {
					if c := ppa.SatAdd(av[i*n+k], bv[k*n+j], h); c < want {
						want = c
					}
				}
				if got[i*n+j] != want {
					t.Fatalf("trial %d n=%d: C[%d][%d] = %d, want %d",
						trial, n, i, j, got[i*n+j], want)
				}
			}
		}
	}
}

func TestSolveMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(13)
		g := graph.GenRandom(n, 0.1+rng.Float64()*0.5, 1+int64(rng.Intn(12)), rng.Int63())
		r, err := Solve(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fw := graph.FloydWarshall(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					if r.Dist[i*n+j] != 0 {
						t.Fatalf("diag (%d,%d) = %d", i, j, r.Dist[i*n+j])
					}
					continue
				}
				if r.Dist[i*n+j] != fw[i*n+j] {
					t.Fatalf("trial %d n=%d (%d->%d): squaring %d, FW %d",
						trial, n, i, j, r.Dist[i*n+j], fw[i*n+j])
				}
			}
		}
	}
}

func TestSolveSquaringCount(t *testing.T) {
	// Chain of 9 vertices: diameter p = 8; squarings cover 2^t edges, so 3
	// productive squarings (2->4->8... D0 already covers 1 edge, after t
	// squarings 2^t) reach p=8, and one more detects the fixed point.
	g := graph.GenChain(9, 1)
	r, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Squarings != 4 {
		t.Errorf("Squarings = %d, want 4 (ceil(log2 8) + 1)", r.Squarings)
	}
	// Star: diameter 1, D0 is already the answer: 1 detecting squaring.
	s, err := Solve(graph.GenStar(6, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Squarings != 1 {
		t.Errorf("star Squarings = %d, want 1", s.Squarings)
	}
}

func TestSolveUsesOnlyShiftFabric(t *testing.T) {
	g := graph.GenRandomConnected(8, 0.3, 9, 1)
	r, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.BusCycles != 0 || r.Metrics.WiredOrCycles != 0 || r.Metrics.RouterCycles != 0 {
		t.Errorf("squaring used the bus fabric: %v", r.Metrics)
	}
	if r.Metrics.ShiftSteps == 0 || r.Metrics.GlobalOrOps != int64(r.Squarings) {
		t.Errorf("cost profile wrong: %v (squarings %d)", r.Metrics, r.Squarings)
	}
}

func TestSolveShiftModel(t *testing.T) {
	// Per product: 2(n-1) alignment + 2(n-1) rotation shifts.
	g := graph.GenChain(6, 1)
	r, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perProduct := int64(4 * (6 - 1))
	if want := perProduct * int64(r.Squarings); r.Metrics.ShiftSteps != want {
		t.Errorf("ShiftSteps = %d, want %d (%d squarings)", r.Metrics.ShiftSteps, want, r.Squarings)
	}
}

func TestSolveAgreesWithPerDestinationSolves(t *testing.T) {
	g := graph.GenRandomConnected(10, 0.25, 9, 77)
	sq, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ap, err := core.SolveAllPairs(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if i != j && sq.Dist[i*10+j] != ap.Dist[i*10+j] {
				t.Fatalf("(%d->%d): squaring %d, per-dest %d",
					i, j, sq.Dist[i*10+j], ap.Dist[i*10+j])
			}
		}
	}
}

func TestSolveErrors(t *testing.T) {
	bad := graph.New(2)
	bad.W[1] = -1
	if _, err := Solve(bad, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
	if _, err := Solve(graph.GenChain(4, 1), Options{Bits: 63}); err == nil {
		t.Error("oversized Bits accepted")
	}
	if _, err := Solve(graph.GenChain(5, 60), Options{Bits: 7}); err == nil {
		t.Error("saturating configuration accepted")
	}
}

func TestSolveWorkersDeterminism(t *testing.T) {
	g := graph.GenRandomConnected(9, 0.3, 9, 5)
	a, err := Solve(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Dist {
		if a.Dist[i] != b.Dist[i] {
			t.Fatal("worker pool changed distances")
		}
	}
	if a.Metrics != b.Metrics {
		t.Error("worker pool changed metrics")
	}
}

func TestSolveWidestMatchesHostReference(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		g := graph.GenRandom(n, 0.15+rng.Float64()*0.5, 1+int64(rng.Intn(30)), rng.Int63())
		r, err := SolveWidest(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for dest := 0; dest < n; dest++ {
			want, err := graph.BellmanFordWidest(g, dest)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if i == dest {
					if r.Dist[i*n+dest] != graph.Unbounded {
						t.Fatalf("trial %d: diagonal (%d,%d) = %d", trial, i, dest, r.Dist[i*n+dest])
					}
					continue
				}
				if r.Dist[i*n+dest] != want.Cap[i] {
					t.Fatalf("trial %d (%d->%d): squaring %d, reference %d",
						trial, i, dest, r.Dist[i*n+dest], want.Cap[i])
				}
			}
		}
	}
}

func TestSolveWidestErrors(t *testing.T) {
	bad := graph.New(2)
	bad.W[1] = -1
	if _, err := SolveWidest(bad, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
	heavy := graph.New(2)
	heavy.SetEdge(0, 1, 255)
	if _, err := SolveWidest(heavy, Options{Bits: 8}); err == nil {
		t.Error("MAXINT-valued capacity accepted")
	}
	if _, err := SolveWidest(graph.GenChain(3, 1), Options{Bits: 63}); err == nil {
		t.Error("oversized Bits accepted")
	}
}

// reachRef computes reachability by DFS.
func reachRef(g *graph.Graph) []bool {
	n := g.N
	out := make([]bool, n*n)
	for s := 0; s < n; s++ {
		stack := []int{s}
		out[s*n+s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := 0; v < n; v++ {
				if g.HasEdge(u, v) && !out[s*n+v] {
					out[s*n+v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return out
}

func TestTransitiveClosureMatchesDFS(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(11)
		g := graph.GenRandom(n, 0.05+rng.Float64()*0.4, 1+int64(rng.Intn(50)), rng.Int63())
		reach, r, err := TransitiveClosure(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := reachRef(g)
		for i := range want {
			if reach[i] != want[i] {
				t.Fatalf("trial %d index %d: PPA %v, DFS %v", trial, i, reach[i], want[i])
			}
		}
		if r.Metrics.ShiftSteps == 0 {
			t.Error("no machine work recorded")
		}
	}
}

func TestTransitiveClosureIgnoresWeights(t *testing.T) {
	// Huge weights must not affect reachability (the unit skeleton is
	// solved, so no Bits/saturation concerns arise from the original
	// weights).
	g := graph.New(3)
	g.SetEdge(0, 1, 1<<40)
	g.SetEdge(1, 2, 1<<40)
	reach, _, err := TransitiveClosure(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reach[0*3+2] || reach[2*3+0] {
		t.Errorf("reachability wrong: %v", reach)
	}
}

func TestSolveSingleVertex(t *testing.T) {
	r, err := Solve(graph.New(1), Options{})
	if err != nil || r.Dist[0] != 0 {
		t.Errorf("trivial: %v %v", r, err)
	}
}
