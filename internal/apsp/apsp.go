// Package apsp solves the all-pairs minimum cost path problem on the PPA
// with the *other* classic technique for this machine class: repeated
// squaring of the weight matrix under the (min, +) semiring, each product
// computed with Cannon's algorithm on the torus (the wrap-around links the
// PPA inherits from the Polymorphic Torus are exactly what Cannon needs).
//
// This is deliberately beyond the paper, as a measured comparison point:
// the paper's dynamic program answers one destination in Θ(p·h) bus
// cycles, so all pairs cost Θ(n·p·h); matrix squaring answers all pairs
// at once in Θ(n·log p) shift steps (with O(n^2) words of PE state per
// step instead of one row). Experiment E8 puts the two strategies side by
// side.
package apsp

import (
	"fmt"

	"ppamcp/internal/graph"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// Options tunes Solve.
type Options struct {
	// Bits is the machine word width h (0 = auto, graph.BitsNeeded).
	Bits uint
	// Workers fans the simulator's ring operations out over goroutines.
	Workers int
}

// Result is the all-pairs distance matrix plus cost accounting.
type Result struct {
	N int
	// Dist is row-major: Dist[i*N+j] is the MCP cost i -> j (graph.NoEdge
	// if unreachable). This method does not produce next-hop pointers;
	// use core.SolveAllPairs when PTN matrices are needed.
	Dist []int64
	// Squarings is the number of min-plus squarings executed, including
	// the one that detects the fixed point: ceil(log2 p) + 1 for diameter
	// p >= 2.
	Squarings int
	Metrics   ppa.Metrics
	Bits      uint
}

// Solve computes all-pairs distances by min-plus matrix squaring.
func Solve(g *graph.Graph, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	h := opt.Bits
	if h == 0 {
		h = g.BitsNeeded()
	}
	if h > ppa.MaxBits {
		return nil, fmt.Errorf("apsp: word width %d exceeds %d bits", h, ppa.MaxBits)
	}
	n := g.N
	inf := ppa.Infinity(h)
	var mopts []ppa.Option
	if opt.Workers > 1 {
		mopts = append(mopts, ppa.WithWorkers(opt.Workers))
	}
	m := ppa.New(n, h, mopts...)
	a := par.New(m)

	w := make([]ppa.Word, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch wt := g.At(i, j); {
			case i == j:
				w[i*n+j] = 0
			case wt == graph.NoEdge:
				w[i*n+j] = inf
			case n > 1 && wt > (int64(inf)-1)/int64(n-1):
				return nil, fmt.Errorf(
					"apsp: %d-bit words cannot distinguish worst-case path cost (%d * %d) from MAXINT",
					h, n-1, wt)
			default:
				w[i*n+j] = ppa.Word(wt)
			}
		}
	}
	dist := a.FromSlice(w)

	// D covers paths of <= 2^t edges after t squarings; stop when D⊗D = D.
	squarings := 0
	for {
		squarings++
		if squarings > n+2 { // log2(p)+1 <= log2(n)+1 << n+2
			return nil, fmt.Errorf("apsp: squaring did not reach a fixed point")
		}
		next := minPlusProduct(a, dist, dist)
		changed := next.Ne(dist)
		dist = next
		if a.None(changed) {
			break
		}
	}

	res := &Result{
		N:         n,
		Dist:      make([]int64, n*n),
		Squarings: squarings,
		Metrics:   m.Metrics(),
		Bits:      h,
	}
	for i, v := range dist.Slice() {
		if v >= inf {
			res.Dist[i] = graph.NoEdge
		} else {
			res.Dist[i] = int64(v)
		}
	}
	return res, nil
}

// SolveWidest computes the all-pairs widest-path (maximum-bottleneck)
// matrix by repeated squaring under the (max, min) semiring — the same
// Cannon machinery as Solve with the two lattice operations swapped.
// Cap[i*n+j] is the best bottleneck from i to j (0 if unreachable,
// graph.Unbounded on the diagonal).
func SolveWidest(g *graph.Graph, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	h := opt.Bits
	if h == 0 {
		h = 1
		for int64(1)<<h-1 <= g.MaxWeight() {
			h++
		}
	}
	if h > ppa.MaxBits {
		return nil, fmt.Errorf("apsp: word width %d exceeds %d bits", h, ppa.MaxBits)
	}
	n := g.N
	inf := ppa.Infinity(h)
	var mopts []ppa.Option
	if opt.Workers > 1 {
		mopts = append(mopts, ppa.WithWorkers(opt.Workers))
	}
	m := ppa.New(n, h, mopts...)
	a := par.New(m)

	w := make([]ppa.Word, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch wt := g.At(i, j); {
			case i == j:
				w[i*n+j] = inf // unbounded self-capacity
			case wt == graph.NoEdge:
				w[i*n+j] = 0
			case wt >= int64(inf):
				return nil, fmt.Errorf("apsp: capacity %d indistinguishable from unbounded on a %d-bit machine", wt, h)
			default:
				w[i*n+j] = ppa.Word(wt)
			}
		}
	}
	cap := a.FromSlice(w)
	squarings := 0
	for {
		squarings++
		if squarings > n+2 {
			return nil, fmt.Errorf("apsp: widest squaring did not reach a fixed point")
		}
		next := maxMinProduct(a, cap, cap)
		changed := next.Ne(cap)
		cap = next
		if a.None(changed) {
			break
		}
	}
	res := &Result{
		N:         n,
		Dist:      make([]int64, n*n),
		Squarings: squarings,
		Metrics:   m.Metrics(),
		Bits:      h,
	}
	for i, v := range cap.Slice() {
		switch {
		case i/n == i%n:
			res.Dist[i] = graph.Unbounded
		case v >= inf:
			res.Dist[i] = graph.Unbounded // off-diagonal unbounded cannot occur with finite edges
		default:
			res.Dist[i] = int64(v)
		}
	}
	return res, nil
}

// maxMinProduct is Cannon's algorithm under the (max, min) semiring:
// C[i][j] = max_k min(A[i][k], B[k][j]). Same cost as minPlusProduct.
func maxMinProduct(a *par.Array, A, B *par.Var) *par.Var {
	n := a.N()
	sa := skewRows(a, A, ppa.West)
	sb := skewCols(a, B, ppa.North)
	c := a.Zeros()
	for k := 0; k < n; k++ {
		c = c.MaxWith(sa.MinWith(sb))
		if k+1 < n {
			sa = a.Shift(sa, ppa.West)
			sb = a.Shift(sb, ppa.North)
		}
	}
	return c
}

// TransitiveClosure computes the reachability matrix of g on the PPA
// (reach[i*n+j] reports whether a directed path i -> j exists; the
// diagonal is true) by running the min-plus squaring solver on the
// unit-weight skeleton of g — the Wang & Chen problem the paper cites as
// reference [6], answered with the machinery already in this package.
func TransitiveClosure(g *graph.Graph, opt Options) ([]bool, *Result, error) {
	n := g.N
	unit := graph.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && g.HasEdge(i, j) {
				unit.SetEdge(i, j, 1)
			}
		}
	}
	r, err := Solve(unit, opt)
	if err != nil {
		return nil, nil, err
	}
	reach := make([]bool, n*n)
	for i := range reach {
		reach[i] = r.Dist[i] != graph.NoEdge
	}
	return reach, r, nil
}

// skewRows shifts row i of x by i positions in direction d (West for
// Cannon's A-alignment), using n-1 masked global shifts: at step k every
// row with index >= k takes one more unit shift, so row i accumulates
// exactly i steps. Returns a fresh variable.
func skewRows(a *par.Array, x *par.Var, d ppa.Direction) *par.Var {
	n := a.N()
	moving := x.Copy()
	for k := 1; k < n; k++ {
		shifted := a.Shift(moving, d)
		a.Where(a.Row().LtConst(ppa.Word(k)).Not(), func() {
			moving.Assign(shifted)
		})
	}
	return moving
}

// skewCols shifts column j of x by j positions in direction d (North for
// Cannon's B-alignment).
func skewCols(a *par.Array, x *par.Var, d ppa.Direction) *par.Var {
	n := a.N()
	moving := x.Copy()
	for k := 1; k < n; k++ {
		shifted := a.Shift(moving, d)
		a.Where(a.Col().LtConst(ppa.Word(k)).Not(), func() {
			moving.Assign(shifted)
		})
	}
	return moving
}

// minPlusProduct computes C[i][j] = min_k (A[i][k] + B[k][j]) with
// Cannon's algorithm: skew A by rows (West) and B by columns (North),
// then n rounds of local min-accumulate and unit shifts. Cost: 2(n-1)
// alignment shifts + 2n rotation shifts + n local add/min steps.
func minPlusProduct(a *par.Array, A, B *par.Var) *par.Var {
	n := a.N()
	sa := skewRows(a, A, ppa.West)
	sb := skewCols(a, B, ppa.North)
	c := a.Inf()
	for k := 0; k < n; k++ {
		c = c.MinWith(sa.AddSat(sb))
		if k+1 < n {
			sa = a.Shift(sa, ppa.West)
			sb = a.Shift(sb, ppa.North)
		}
	}
	return c
}
