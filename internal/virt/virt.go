// Package virt lifts the paper's one-matrix-element-per-PE assumption: a
// Machine presents an n x n *logical* PPA (the ppa.Fabric interface) while
// executing on an m x m *physical* ppa.Machine, with each physical PE
// owning a k x k block of logical PEs (k = n/m) in its local memory —
// the classic block-mapped virtualization of SIMD arrays.
//
// Every logical bus transaction decomposes into k physical passes (one
// per within-block plane), each costing one physical bus transaction plus
// O(k) local work per physical PE; a logical wired-OR additionally needs
// two one-bit physical shifts per plane to stitch clusters that span
// block boundaries. The resulting cost law — logical comm cycle ≈ k
// physical comm cycles — is the virtualization ablation measured in
// EXPERIMENTS.md.
//
// Results are bit-identical to running a real n x n machine
// (property-tested against ppa.Machine on random inputs).
package virt

import (
	"fmt"

	"ppamcp/internal/ppa"
)

// Machine is an n x n logical fabric simulated on an m x m physical PPA.
type Machine struct {
	phys *ppa.Machine
	n    int // logical side
	m    int // physical side
	k    int // block side, n/m

	// lanes[d][t*m*m+P] lists, for direction d and plane t, physical PE
	// P's k logical flat indices in flow order.
	lanes [4][][]int

	// Cached unpacking scratch for the packed (Bitset) fabric entry
	// points; the block-mapped decomposition itself works lane-at-a-time,
	// so packed arguments are unpacked once per transaction here instead
	// of allocating.
	sOpen, sDrive, sDst []bool
}

// Machine implements the logical fabric contract.
var _ ppa.Fabric = (*Machine)(nil)

// New returns an n x n logical machine with h-bit words backed by an
// m x m physical machine. n must be a positive multiple of m.
func New(n, m int, h uint, opts ...ppa.Option) (*Machine, error) {
	if m < 1 || n < m || n%m != 0 {
		return nil, fmt.Errorf("virt: logical side %d must be a positive multiple of physical side %d", n, m)
	}
	v := &Machine{phys: ppa.New(m, h, opts...), n: n, m: m, k: n / m}
	v.buildLanes()
	return v, nil
}

// buildLanes precomputes the logical lane order of every (direction,
// plane, physical PE) triple.
func (v *Machine) buildLanes() {
	n, m, k := v.n, v.m, v.k
	for d := 0; d < 4; d++ {
		dir := ppa.Direction(d)
		v.lanes[d] = make([][]int, k*m*m)
		for t := 0; t < k; t++ {
			for R := 0; R < m; R++ {
				for C := 0; C < m; C++ {
					P := R*m + C
					seq := make([]int, k)
					for j := 0; j < k; j++ {
						var r, c int
						if dir.Horizontal() {
							// Plane t fixes the within-block row; flow
							// traverses within-block columns.
							b := j
							if dir == ppa.West {
								b = k - 1 - j
							}
							r, c = R*k+t, C*k+b
						} else {
							a := j
							if dir == ppa.North {
								a = k - 1 - j
							}
							r, c = R*k+a, C*k+t
						}
						seq[j] = r*n + c
					}
					v.lanes[d][t*m*m+P] = seq
				}
			}
		}
	}
}

// N returns the logical side.
func (v *Machine) N() int { return v.n }

// PhysicalSide returns the physical side m.
func (v *Machine) PhysicalSide() int { return v.m }

// BlockSide returns k = n/m, the number of logical PEs per physical PE
// along one axis.
func (v *Machine) BlockSide() int { return v.k }

// Bits returns the word width h.
func (v *Machine) Bits() uint { return v.phys.Bits() }

// Inf returns the MAXINT sentinel.
func (v *Machine) Inf() ppa.Word { return v.phys.Inf() }

// Metrics returns the *physical* machine's accumulated cost: this is the
// whole point of the virtualization ablation.
func (v *Machine) Metrics() ppa.Metrics { return v.phys.Metrics() }

// ResetMetrics zeroes the physical counters.
func (v *Machine) ResetMetrics() { v.phys.ResetMetrics() }

// Close stops the physical machine's persistent ring workers (see
// ppa.Machine.Close); the virtual machine stays usable, serially.
func (v *Machine) Close() { v.phys.Close() }

// CountPE forwards local-operation charges to the physical machine.
func (v *Machine) CountPE(ops int64) { v.phys.CountPE(ops) }

// CountInstr forwards an instruction charge to the physical machine.
func (v *Machine) CountInstr() { v.phys.CountInstr() }

func (v *Machine) checkLen(name string, got int) {
	if got != v.n*v.n {
		panic(fmt.Sprintf("virt: %s has length %d, want %d", name, got, v.n*v.n))
	}
}

// boolScratch returns (allocating on first use) a cached n*n []bool.
func (v *Machine) boolScratch(p *[]bool) []bool {
	if *p == nil {
		*p = make([]bool, v.n*v.n)
	}
	return *p
}

// BroadcastBits is the packed-configuration Broadcast of the Fabric
// contract. Results and charged cycles are identical to Broadcast; the
// unpacking is host-side glue and costs nothing on the machine.
func (v *Machine) BroadcastBits(d ppa.Direction, open *ppa.Bitset, src, dst []ppa.Word) {
	s := v.boolScratch(&v.sOpen)
	open.ToBools(s)
	v.Broadcast(d, s, src, dst)
}

// WiredOrBits is the packed-plane WiredOr of the Fabric contract.
// dst may alias drive or open (the planes are unpacked up front).
func (v *Machine) WiredOrBits(d ppa.Direction, open, drive, dst *ppa.Bitset) {
	so, sd, sz := v.boolScratch(&v.sOpen), v.boolScratch(&v.sDrive), v.boolScratch(&v.sDst)
	open.ToBools(so)
	drive.ToBools(sd)
	v.WiredOr(d, so, sd, sz)
	dst.FromBools(sz)
}

// GlobalOrBits is the packed-predicate GlobalOr of the Fabric contract.
func (v *Machine) GlobalOrBits(pred *ppa.Bitset) bool {
	s := v.boolScratch(&v.sOpen)
	pred.ToBools(s)
	return v.GlobalOr(s)
}

// chargeLocal charges steps SIMD instructions each executed by all
// physical PEs (the per-plane local scans).
func (v *Machine) chargeLocal(steps int) {
	for i := 0; i < steps; i++ {
		v.phys.CountInstr()
		v.phys.CountPE(int64(v.m * v.m))
	}
}

// Broadcast implements the logical segmented-bus transaction. Per plane:
// one local scan finds each physical PE's last logical Open lane, one
// physical bus cycle moves those injections between blocks, and one local
// scan walks the carry through each block. Cost: k physical bus cycles.
func (v *Machine) Broadcast(d ppa.Direction, open []bool, src, dst []ppa.Word) {
	v.checkLen("open", len(open))
	v.checkLen("src", len(src))
	v.checkLen("dst", len(dst))
	mm := v.m * v.m
	pOpen := make([]bool, mm)
	pInject := make([]ppa.Word, mm)
	pRecv := make([]ppa.Word, mm)
	const floating = ppa.Word(-1)
	for t := 0; t < v.k; t++ {
		planes := v.lanes[d][t*mm : (t+1)*mm]
		for P := 0; P < mm; P++ {
			pOpen[P] = false
			for _, L := range planes[P] {
				if open[L] {
					pOpen[P] = true
					pInject[P] = src[L]
				}
			}
			pRecv[P] = floating
		}
		v.chargeLocal(v.k)
		v.phys.Broadcast(d, pOpen, pInject, pRecv)
		for P := 0; P < mm; P++ {
			carry := pRecv[P]
			for _, L := range planes[P] {
				val := src[L] // read before the (possibly aliased) write
				if carry != floating {
					dst[L] = carry
				}
				if open[L] {
					carry = val
				}
			}
		}
		v.chargeLocal(v.k)
	}
}

// WiredOr implements the logical wired-OR. Per plane: a local scan splits
// each block's drives into head/tail/internal cluster contributions, a
// one-bit physical shift hands each block's head contribution to its
// upstream neighbour, one physical wired-OR resolves the clusters that
// span block boundaries, a second shift hands the result downstream for
// the blocks' head lanes, and a local scan distributes. Cost: k physical
// wired-OR cycles + 2k one-bit physical shifts.
func (v *Machine) WiredOr(d ppa.Direction, open, drive, dst []bool) {
	v.checkLen("open", len(open))
	v.checkLen("drive", len(drive))
	v.checkLen("dst", len(dst))
	mm := v.m * v.m
	hasOpen := make([]bool, mm)
	headDrive := make([]ppa.Word, mm) // OR of drives before the first open (as 0/1 words)
	tailDrive := make([]bool, mm)     // OR of drives from the last open onward
	fullDrive := make([]bool, mm)
	shiftedHead := make([]ppa.Word, mm)
	pDrive := make([]bool, mm)
	pOr := make([]bool, mm)
	pOrW := make([]ppa.Word, mm)
	shiftedOr := make([]ppa.Word, mm)
	for t := 0; t < v.k; t++ {
		planes := v.lanes[d][t*mm : (t+1)*mm]
		for P := 0; P < mm; P++ {
			hasOpen[P], tailDrive[P], fullDrive[P] = false, false, false
			headDrive[P] = 0
			seenOpen := false
			for _, L := range planes[P] {
				if open[L] {
					seenOpen = true
					tailDrive[P] = false
				}
				if drive[L] {
					fullDrive[P] = true
					if !seenOpen {
						headDrive[P] = 1
					}
					if seenOpen {
						tailDrive[P] = true
					}
				}
			}
			hasOpen[P] = seenOpen
		}
		v.chargeLocal(v.k)
		// Hand each block's head contribution to its upstream neighbour
		// (the spanning cluster it belongs to ends there).
		v.phys.Shift(d.Opposite(), headDrive, shiftedHead)
		for P := 0; P < mm; P++ {
			own := fullDrive[P]
			if hasOpen[P] {
				own = tailDrive[P]
			}
			pDrive[P] = own || shiftedHead[P] != 0
		}
		v.chargeLocal(1)
		v.phys.WiredOr(d, hasOpen, pDrive, pOr)
		for P := 0; P < mm; P++ {
			if pOr[P] {
				pOrW[P] = 1
			} else {
				pOrW[P] = 0
			}
		}
		v.chargeLocal(1)
		// Hand each physical cluster's OR downstream by one block, so a
		// block's pre-first-open lanes can read their (upstream) cluster.
		v.phys.Shift(d, pOrW, shiftedOr)
		for P := 0; P < mm; P++ {
			seq := planes[P]
			if !hasOpen[P] {
				for _, L := range seq {
					dst[L] = pOr[P]
				}
				continue
			}
			// Prefix lanes belong to the upstream spanning cluster.
			j := 0
			for ; j < len(seq) && !open[seq[j]]; j++ {
				dst[seq[j]] = shiftedOr[P] != 0
			}
			// Internal clusters are fully local; the final cluster spans
			// into downstream blocks and reads the physical wired-OR.
			for j < len(seq) {
				start := j
				j++
				for j < len(seq) && !open[seq[j]] {
					j++
				}
				if j < len(seq) {
					or := false
					for q := start; q < j; q++ {
						or = or || drive[seq[q]]
					}
					for q := start; q < j; q++ {
						dst[seq[q]] = or
					}
				} else {
					for q := start; q < len(seq); q++ {
						dst[seq[q]] = pOr[P]
					}
				}
			}
		}
		v.chargeLocal(2 * v.k)
	}
}

// Shift implements the logical one-step shift: per plane, the lane
// leaving each block crosses on one physical shift and the rest move
// locally. Cost: k physical shift steps.
func (v *Machine) Shift(d ppa.Direction, src, dst []ppa.Word) {
	v.checkLen("src", len(src))
	v.checkLen("dst", len(dst))
	mm := v.m * v.m
	boundary := make([]ppa.Word, mm)
	incoming := make([]ppa.Word, mm)
	for t := 0; t < v.k; t++ {
		planes := v.lanes[d][t*mm : (t+1)*mm]
		for P := 0; P < mm; P++ {
			boundary[P] = src[planes[P][v.k-1]]
		}
		v.chargeLocal(1)
		v.phys.Shift(d, boundary, incoming)
		for P := 0; P < mm; P++ {
			seq := planes[P]
			for j := v.k - 1; j >= 1; j-- {
				dst[seq[j]] = src[seq[j-1]]
			}
			dst[seq[0]] = incoming[P]
		}
		v.chargeLocal(v.k)
	}
}

// GlobalOr reduces each block locally, then uses the physical global-OR
// line once.
func (v *Machine) GlobalOr(pred []bool) bool {
	v.checkLen("pred", len(pred))
	mm := v.m * v.m
	k2 := v.k * v.k
	pPred := make([]bool, mm)
	n := v.n
	for P := 0; P < mm; P++ {
		R, C := P/v.m, P%v.m
		for a := 0; a < v.k; a++ {
			for b := 0; b < v.k; b++ {
				if pred[(R*v.k+a)*n+C*v.k+b] {
					pPred[P] = true
				}
			}
		}
	}
	v.chargeLocal(k2)
	return v.phys.GlobalOr(pPred)
}
