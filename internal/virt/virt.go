// Package virt lifts the paper's one-matrix-element-per-PE assumption: a
// Machine presents an n x n *logical* PPA (the ppa.Fabric interface) while
// executing on an m x m *physical* ppa.Machine, with each physical PE
// owning a k x k block of logical PEs (k = n/m) in its local memory —
// the classic block-mapped virtualization of SIMD arrays.
//
// Every logical bus transaction decomposes into k physical passes (one
// per within-block plane), each costing one physical bus transaction plus
// O(k) local work per physical PE; a logical wired-OR additionally needs
// two one-bit physical shifts per plane to stitch clusters that span
// block boundaries. The resulting cost law — logical comm cycle ≈ k
// physical comm cycles — is the virtualization ablation measured in
// EXPERIMENTS.md.
//
// The packed entry points of the Fabric contract (BroadcastBits,
// WiredOrBits, GlobalOrBits, plus Shift) are the production engine: the
// within-block plane passes run as word-level bit scans and segment fills
// over the packed planes (see packed.go), optionally fanned over the
// physical machine's persistent ring worker pool. The []bool entry points
// below remain the lane-at-a-time reference semantics; packed and lane
// paths produce bit-identical results and byte-identical ppa.Metrics
// (property-tested in packedparity_test.go).
//
// Results are bit-identical to running a real n x n machine
// (property-tested against ppa.Machine on random inputs).
package virt

import (
	"fmt"

	"ppamcp/internal/ppa"
)

// Machine is an n x n logical fabric simulated on an m x m physical PPA.
type Machine struct {
	phys *ppa.Machine
	n    int // logical side
	m    int // physical side
	k    int // block side, n/m

	// lanes[d][t*m*m+P] lists, for direction d and plane t, physical PE
	// P's k logical flat indices in flow order. Only the lane-at-a-time
	// reference path below walks these; the packed engine derives the
	// same geometry with index arithmetic.
	lanes [4][][]int

	// Per-physical-PE staging for the packed plane passes (m*m entries
	// each). The scan kernels write the []bool / []Word forms — distinct
	// bytes and words, so pooled per-ring workers never share a written
	// location — and the serial stitch phase packs them for the physical
	// transactions.
	pOpenB             []bool     // block has an Open lane on this plane
	tailB, fullB       []bool     // wired-OR drive decomposition
	pDriveB, pOrB      []bool     // physical drive / wired-OR result
	pInject, pRecv     []ppa.Word // broadcast injection/carry values
	headW              []ppa.Word // head-cluster drive, as 0/1 words
	shiftHead, shiftOr []ppa.Word // one-bit stitch shift results
	orW                []ppa.Word // physical wired-OR result as 0/1 words
	boundary, incoming []ppa.Word // shift block-boundary staging

	// Transposed logical planes for vertical passes: a column's
	// within-block scans become contiguous-bit scans of the transposed
	// row (the same 64x64 tile transpose the plain machine uses).
	// openSnap holds the open plane tOpen was last computed from:
	// vertical passes with an unchanged switch configuration (every
	// plane of a fused reduction, the fixed row/diagonal selectors of
	// the solver loop) skip the re-transpose on a word-compare hit.
	tOpen, tDrive, tDst *ppa.Bitset
	openSnap            *ppa.Bitset

	// Staged parameters of the current packed plane pass, read by the
	// ring kernels below (possibly from pooled workers; the pool's
	// wake/done barrier orders these writes before the workers' reads).
	jt            int  // within-block plane index
	jRev          bool // decreasing-bit flow order (West/North)
	jVert         bool // vertical pass (kernels scan transposed planes)
	jSrc, jDst    []ppa.Word
	jScan         *ppa.Bitset // open plane in scan orientation
	jDrive, jWDst *ppa.Bitset // wired-OR planes in scan orientation

	// Persistent ring-kernel bodies (method values, created once so a
	// pooled dispatch never allocates a closure).
	fnBcastScan, fnBcastFill    func(int)
	fnWorScan, fnWorFill        func(int)
	fnShiftCollect, fnShiftMove func(int)

	// rowsAligned: n is a multiple of 64, so every logical row (and every
	// transposed-column row) of a packed plane starts on a word boundary
	// and pooled fill kernels for distinct rings never write the same
	// word. Packed bitset fills fall back to serial execution otherwise.
	rowsAligned bool
	// wordBlocks additionally requires 64%k == 0: blocks then nest
	// exactly in host words and the scan/fill kernels run on register
	// masks instead of per-block Bitset range calls (see packed.go).
	wordBlocks bool
}

// Machine implements the logical fabric contract.
var _ ppa.Fabric = (*Machine)(nil)

// New returns an n x n logical machine with h-bit words backed by an
// m x m physical machine. n must be a positive multiple of m.
func New(n, m int, h uint, opts ...ppa.Option) (*Machine, error) {
	if m < 1 || n < m || n%m != 0 {
		return nil, fmt.Errorf("virt: logical side %d must be a positive multiple of physical side %d", n, m)
	}
	v := &Machine{phys: ppa.New(m, h, opts...), n: n, m: m, k: n / m}
	v.buildLanes()
	mm := m * m
	v.pOpenB = make([]bool, mm)
	v.tailB = make([]bool, mm)
	v.fullB = make([]bool, mm)
	v.pDriveB = make([]bool, mm)
	v.pOrB = make([]bool, mm)
	v.pInject = make([]ppa.Word, mm)
	v.pRecv = make([]ppa.Word, mm)
	v.headW = make([]ppa.Word, mm)
	v.shiftHead = make([]ppa.Word, mm)
	v.shiftOr = make([]ppa.Word, mm)
	v.orW = make([]ppa.Word, mm)
	v.boundary = make([]ppa.Word, mm)
	v.incoming = make([]ppa.Word, mm)
	v.tOpen = ppa.NewBitset(n * n)
	v.tDrive = ppa.NewBitset(n * n)
	v.tDst = ppa.NewBitset(n * n)
	v.openSnap = ppa.NewBitset(n * n)
	v.fnBcastScan = v.bcastScanRing
	v.fnBcastFill = v.bcastFillRing
	v.fnWorScan = v.worScanRing
	v.fnWorFill = v.worFillRing
	v.fnShiftCollect = v.shiftCollectRing
	v.fnShiftMove = v.shiftMoveRing
	v.rowsAligned = n&63 == 0
	v.wordBlocks = v.rowsAligned && 64%v.k == 0
	return v, nil
}

// buildLanes precomputes the logical lane order of every (direction,
// plane, physical PE) triple.
func (v *Machine) buildLanes() {
	n, m, k := v.n, v.m, v.k
	for d := 0; d < 4; d++ {
		dir := ppa.Direction(d)
		v.lanes[d] = make([][]int, k*m*m)
		for t := 0; t < k; t++ {
			for R := 0; R < m; R++ {
				for C := 0; C < m; C++ {
					P := R*m + C
					seq := make([]int, k)
					for j := 0; j < k; j++ {
						var r, c int
						if dir.Horizontal() {
							// Plane t fixes the within-block row; flow
							// traverses within-block columns.
							b := j
							if dir == ppa.West {
								b = k - 1 - j
							}
							r, c = R*k+t, C*k+b
						} else {
							a := j
							if dir == ppa.North {
								a = k - 1 - j
							}
							r, c = R*k+a, C*k+t
						}
						seq[j] = r*n + c
					}
					v.lanes[d][t*m*m+P] = seq
				}
			}
		}
	}
}

// N returns the logical side.
func (v *Machine) N() int { return v.n }

// PhysicalSide returns the physical side m.
func (v *Machine) PhysicalSide() int { return v.m }

// BlockSide returns k = n/m, the number of logical PEs per physical PE
// along one axis.
func (v *Machine) BlockSide() int { return v.k }

// Physical returns the underlying m x m machine — the handle for fault
// injection and observer attachment in virtualization studies.
func (v *Machine) Physical() *ppa.Machine { return v.phys }

// Bits returns the word width h.
func (v *Machine) Bits() uint { return v.phys.Bits() }

// Inf returns the MAXINT sentinel.
func (v *Machine) Inf() ppa.Word { return v.phys.Inf() }

// Metrics returns the *physical* machine's accumulated cost: this is the
// whole point of the virtualization ablation.
func (v *Machine) Metrics() ppa.Metrics { return v.phys.Metrics() }

// ResetMetrics zeroes the physical counters.
func (v *Machine) ResetMetrics() { v.phys.ResetMetrics() }

// Faulty reports whether the physical machine has injected switch faults.
// The programming layer keeps its interpretive reference kernels for
// faulty fabrics (the fault model is defined by the reference ring walk).
func (v *Machine) Faulty() bool { return v.phys.Faulty() }

// Close stops the physical machine's persistent ring workers (see
// ppa.Machine.Close); the virtual machine stays usable, serially.
func (v *Machine) Close() { v.phys.Close() }

// CountPE forwards local-operation charges to the physical machine.
func (v *Machine) CountPE(ops int64) { v.phys.CountPE(ops) }

// CountInstr forwards an instruction charge to the physical machine.
func (v *Machine) CountInstr() { v.phys.CountInstr() }

func (v *Machine) checkLen(name string, got int) {
	if got != v.n*v.n {
		panic(fmt.Sprintf("virt: %s has length %d, want %d", name, got, v.n*v.n))
	}
}

func (v *Machine) checkBits(name string, b *ppa.Bitset) {
	if b.Len() != v.n*v.n {
		panic(fmt.Sprintf("virt: %s has length %d, want %d", name, b.Len(), v.n*v.n))
	}
}

// chargeLocal charges steps SIMD instructions each executed by all
// physical PEs (the per-plane local scans).
func (v *Machine) chargeLocal(steps int) {
	for i := 0; i < steps; i++ {
		v.phys.CountInstr()
		v.phys.CountPE(int64(v.m * v.m))
	}
}

// Broadcast implements the logical segmented-bus transaction,
// lane-at-a-time — the reference semantics the packed BroadcastBits
// engine is property-tested against. Per plane: one local scan finds each
// physical PE's last logical Open lane, one physical bus cycle moves
// those injections between blocks, and one local scan walks the carry
// through each block. Cost: k physical bus cycles.
func (v *Machine) Broadcast(d ppa.Direction, open []bool, src, dst []ppa.Word) {
	v.checkLen("open", len(open))
	v.checkLen("src", len(src))
	v.checkLen("dst", len(dst))
	mm := v.m * v.m
	pOpen := make([]bool, mm)
	pInject := make([]ppa.Word, mm)
	pRecv := make([]ppa.Word, mm)
	const floating = ppa.Word(-1)
	for t := 0; t < v.k; t++ {
		planes := v.lanes[d][t*mm : (t+1)*mm]
		for P := 0; P < mm; P++ {
			// pInject stays defined (zero) when the block has no Open
			// lane: a stuck-open fault makes the physical PE inject it
			// regardless of the requested configuration.
			pOpen[P] = false
			pInject[P] = 0
			for _, L := range planes[P] {
				if open[L] {
					pOpen[P] = true
					pInject[P] = src[L]
				}
			}
			pRecv[P] = floating
		}
		v.chargeLocal(v.k)
		v.phys.Broadcast(d, pOpen, pInject, pRecv)
		for P := 0; P < mm; P++ {
			carry := pRecv[P]
			for _, L := range planes[P] {
				val := src[L] // read before the (possibly aliased) write
				if carry != floating {
					dst[L] = carry
				}
				if open[L] {
					carry = val
				}
			}
		}
		v.chargeLocal(v.k)
	}
}

// WiredOr implements the logical wired-OR, lane-at-a-time — the
// reference semantics behind the packed WiredOrBits engine. Per plane: a
// local scan splits each block's drives into head/tail/internal cluster
// contributions, a one-bit physical shift hands each block's head
// contribution to its upstream neighbour, one physical wired-OR resolves
// the clusters that span block boundaries, a second shift hands the
// result downstream for the blocks' head lanes, and a local scan
// distributes. Cost: k physical wired-OR cycles + 2k one-bit physical
// shifts.
func (v *Machine) WiredOr(d ppa.Direction, open, drive, dst []bool) {
	v.checkLen("open", len(open))
	v.checkLen("drive", len(drive))
	v.checkLen("dst", len(dst))
	mm := v.m * v.m
	hasOpen := make([]bool, mm)
	headDrive := make([]ppa.Word, mm) // OR of drives before the first open (as 0/1 words)
	tailDrive := make([]bool, mm)     // OR of drives from the last open onward
	fullDrive := make([]bool, mm)
	shiftedHead := make([]ppa.Word, mm)
	pDrive := make([]bool, mm)
	pOr := make([]bool, mm)
	pOrW := make([]ppa.Word, mm)
	shiftedOr := make([]ppa.Word, mm)
	for t := 0; t < v.k; t++ {
		planes := v.lanes[d][t*mm : (t+1)*mm]
		for P := 0; P < mm; P++ {
			hasOpen[P], tailDrive[P], fullDrive[P] = false, false, false
			headDrive[P] = 0
			seenOpen := false
			for _, L := range planes[P] {
				if open[L] {
					seenOpen = true
					tailDrive[P] = false
				}
				if drive[L] {
					fullDrive[P] = true
					if !seenOpen {
						headDrive[P] = 1
					}
					if seenOpen {
						tailDrive[P] = true
					}
				}
			}
			hasOpen[P] = seenOpen
		}
		v.chargeLocal(v.k)
		// Hand each block's head contribution to its upstream neighbour
		// (the spanning cluster it belongs to ends there).
		v.phys.Shift(d.Opposite(), headDrive, shiftedHead)
		for P := 0; P < mm; P++ {
			own := fullDrive[P]
			if hasOpen[P] {
				own = tailDrive[P]
			}
			pDrive[P] = own || shiftedHead[P] != 0
		}
		v.chargeLocal(1)
		v.phys.WiredOr(d, hasOpen, pDrive, pOr)
		for P := 0; P < mm; P++ {
			if pOr[P] {
				pOrW[P] = 1
			} else {
				pOrW[P] = 0
			}
		}
		v.chargeLocal(1)
		// Hand each physical cluster's OR downstream by one block, so a
		// block's pre-first-open lanes can read their (upstream) cluster.
		v.phys.Shift(d, pOrW, shiftedOr)
		for P := 0; P < mm; P++ {
			seq := planes[P]
			if !hasOpen[P] {
				for _, L := range seq {
					dst[L] = pOr[P]
				}
				continue
			}
			// Prefix lanes belong to the upstream spanning cluster.
			j := 0
			for ; j < len(seq) && !open[seq[j]]; j++ {
				dst[seq[j]] = shiftedOr[P] != 0
			}
			// Internal clusters are fully local; the final cluster spans
			// into downstream blocks and reads the physical wired-OR.
			for j < len(seq) {
				start := j
				j++
				for j < len(seq) && !open[seq[j]] {
					j++
				}
				if j < len(seq) {
					or := false
					for q := start; q < j; q++ {
						or = or || drive[seq[q]]
					}
					for q := start; q < j; q++ {
						dst[seq[q]] = or
					}
				} else {
					for q := start; q < len(seq); q++ {
						dst[seq[q]] = pOr[P]
					}
				}
			}
		}
		v.chargeLocal(2 * v.k)
	}
}

// GlobalOr reduces each block locally, then uses the physical global-OR
// line once (lane-at-a-time reference; GlobalOrBits is the packed path).
func (v *Machine) GlobalOr(pred []bool) bool {
	v.checkLen("pred", len(pred))
	mm := v.m * v.m
	k2 := v.k * v.k
	pPred := make([]bool, mm)
	n := v.n
	for P := 0; P < mm; P++ {
		R, C := P/v.m, P%v.m
		for a := 0; a < v.k; a++ {
			for b := 0; b < v.k; b++ {
				if pred[(R*v.k+a)*n+C*v.k+b] {
					pPred[P] = true
				}
			}
		}
	}
	v.chargeLocal(k2)
	return v.phys.GlobalOr(pPred)
}
