package virt

// Register-mask variants of the packed plane-pass ring kernels, used when
// wordBlocks holds (n%64 == 0 and 64%k == 0): every scan row is then a
// whole number of host words and every k-bit block nests exactly inside
// one word, so per-block head scans and cluster fills become shift/mask
// arithmetic on a register instead of Bitset range calls. Semantics are
// identical to the generic kernels in packed.go (the packed-vs-lane
// parity sweep covers both gates).
//
// The physical index of ring i's blocks advances by a constant stride
// (+1 along a physical row, +m down a physical column), carried through
// the block loops' post statements.

import "math/bits"

// blockMask returns the k-bit all-ones mask; k == 64 wraps to ^0.
func (v *Machine) blockMask() uint64 { return uint64(1)<<uint(v.k) - 1 }

// rowWords returns the scan plane's word range parameters for ring i:
// the first word index of the scan row and the word count.
func (v *Machine) rowWords(i int) (w0, nw int) {
	return (i*v.k + v.jt) * v.n / 64, v.n / 64
}

// blockStep returns the physical flat index of ring i's first block and
// the per-block stride.
func (v *Machine) blockStep(i int) (P0, dP int) {
	if v.jVert {
		return i, v.m
	}
	return i * v.m, 1
}

// dataBase returns the []Word addressing of the current pass's ring i:
// flat index of ring position p is base + p*step.
func (v *Machine) dataBase(i int) (base, step int) {
	row := i*v.k + v.jt
	if v.jVert {
		return row, v.n
	}
	return row * v.n, 1
}

func (v *Machine) bcastScanRingFast(i int) {
	k, bm := v.k, v.blockMask()
	w0, nw := v.rowWords(i)
	sw := v.jScan.Words()
	base, step := v.dataBase(i)
	P, dP := v.blockStep(i)
	for wi := 0; wi < nw; wi++ {
		ow := sw[w0+wi]
		for s := 0; s < 64; s, P = s+k, P+dP {
			v.pRecv[P] = floating
			ob := (ow >> uint(s)) & bm
			if ob == 0 {
				// Defined even with no Open lane: a stuck-open fault
				// makes the physical PE inject this operand regardless.
				v.pOpenB[P], v.pInject[P] = false, 0
				continue
			}
			var hb int
			if v.jRev {
				hb = bits.TrailingZeros64(ob)
			} else {
				hb = 63 - bits.LeadingZeros64(ob)
			}
			v.pOpenB[P] = true
			v.pInject[P] = v.jSrc[base+(wi*64+s+hb)*step]
		}
	}
}

func (v *Machine) bcastFillRingFast(i int) {
	k, bm := v.k, v.blockMask()
	w0, nw := v.rowWords(i)
	sw := v.jScan.Words()
	base, step := v.dataBase(i)
	src, dst := v.jSrc, v.jDst
	P, dP := v.blockStep(i)
	for wi := 0; wi < nw; wi++ {
		ow := sw[w0+wi]
		for s := 0; s < 64; s, P = s+k, P+dP {
			carry := v.pRecv[P]
			off := base + (wi*64+s)*step // block's first lane
			ob := (ow >> uint(s)) & bm
			if ob == 0 {
				if carry != floating {
					for j := 0; j < k; j++ {
						dst[off+j*step] = carry
					}
				}
				continue
			}
			if !v.jRev {
				hb := 63 - bits.LeadingZeros64(ob)
				val := src[off+hb*step]
				for j := hb + 1; j < k; j++ {
					dst[off+j*step] = val
				}
				cur := hb
				for {
					nb := ob & (uint64(1)<<uint(cur) - 1)
					if nb == 0 {
						break
					}
					prev := 63 - bits.LeadingZeros64(nb)
					val = src[off+prev*step]
					for j := prev + 1; j <= cur; j++ {
						dst[off+j*step] = val
					}
					cur = prev
				}
				if carry != floating {
					for j := 0; j <= cur; j++ {
						dst[off+j*step] = carry
					}
				}
				continue
			}
			hb := bits.TrailingZeros64(ob)
			val := src[off+hb*step]
			for j := 0; j < hb; j++ {
				dst[off+j*step] = val
			}
			cur := hb
			for {
				nb := ob >> uint(cur) >> 1
				if nb == 0 {
					break
				}
				next := cur + 1 + bits.TrailingZeros64(nb)
				val = src[off+next*step]
				for j := cur; j < next; j++ {
					dst[off+j*step] = val
				}
				cur = next
			}
			if carry != floating {
				for j := cur; j < k; j++ {
					dst[off+j*step] = carry
				}
			}
		}
	}
}

func (v *Machine) worScanRingFast(i int) {
	k, bm := v.k, v.blockMask()
	w0, nw := v.rowWords(i)
	sw, dw := v.jScan.Words(), v.jDrive.Words()
	P, dP := v.blockStep(i)
	for wi := 0; wi < nw; wi++ {
		ow, drv := sw[w0+wi], dw[w0+wi]
		for s := 0; s < 64; s, P = s+k, P+dP {
			ob := (ow >> uint(s)) & bm
			db := (drv >> uint(s)) & bm
			if ob == 0 {
				f := db != 0
				v.pOpenB[P], v.fullB[P], v.tailB[P] = false, f, false
				v.headW[P] = b2w(f)
				continue
			}
			v.pOpenB[P], v.fullB[P] = true, false
			if !v.jRev {
				first := bits.TrailingZeros64(ob)
				last := 63 - bits.LeadingZeros64(ob)
				v.headW[P] = b2w(db&(uint64(1)<<uint(first)-1) != 0)
				v.tailB[P] = db>>uint(last) != 0
				continue
			}
			first := 63 - bits.LeadingZeros64(ob)
			last := bits.TrailingZeros64(ob)
			v.headW[P] = b2w(db>>uint(first)>>1 != 0)
			v.tailB[P] = db&(uint64(1)<<uint(last+1)-1) != 0
		}
	}
}

func (v *Machine) worFillRingFast(i int) {
	k, bm := v.k, v.blockMask()
	w0, nw := v.rowWords(i)
	sw, dw := v.jScan.Words(), v.jDrive.Words()
	zw := v.jWDst.Words()
	P, dP := v.blockStep(i)
	for wi := 0; wi < nw; wi++ {
		ow, drv := sw[w0+wi], dw[w0+wi]
		var out uint64
		for s := 0; s < 64; s, P = s+k, P+dP {
			ob := (ow >> uint(s)) & bm
			db := (drv >> uint(s)) & bm
			if ob == 0 {
				if v.pOrB[P] {
					out |= bm << uint(s)
				}
				continue
			}
			if !v.jRev {
				first := bits.TrailingZeros64(ob)
				if v.shiftOr[P] != 0 {
					out |= (uint64(1)<<uint(first) - 1) << uint(s)
				}
				start := first
				for {
					nb := ob >> uint(start) >> 1
					if nb == 0 {
						if v.pOrB[P] {
							out |= (bm &^ (uint64(1)<<uint(start) - 1)) << uint(s)
						}
						break
					}
					next := start + 1 + bits.TrailingZeros64(nb)
					cm := (uint64(1)<<uint(next) - 1) &^ (uint64(1)<<uint(start) - 1)
					if db&cm != 0 {
						out |= cm << uint(s)
					}
					start = next
				}
				continue
			}
			first := 63 - bits.LeadingZeros64(ob)
			if v.shiftOr[P] != 0 {
				out |= (bm &^ (uint64(1)<<uint(first+1) - 1)) << uint(s)
			}
			start := first
			for {
				nb := ob & (uint64(1)<<uint(start) - 1)
				if nb == 0 {
					if v.pOrB[P] {
						out |= (uint64(1)<<uint(start+1) - 1) << uint(s)
					}
					break
				}
				next := 63 - bits.LeadingZeros64(nb)
				cm := (uint64(1)<<uint(start+1) - 1) &^ (uint64(1)<<uint(next+1) - 1)
				if db&cm != 0 {
					out |= cm << uint(s)
				}
				start = next
			}
		}
		zw[w0+wi] = out
	}
}

// globalOrFast reduces the packed predicate to the per-physical-PE
// staging with one pass over the plane's words, skipping zero words.
func (v *Machine) globalOrFast(pred []uint64) {
	n, m, k, bm := v.n, v.m, v.k, v.blockMask()
	nw := n / 64
	for P := range v.pOpenB {
		v.pOpenB[P] = false
	}
	for r := 0; r < n; r++ {
		R := r / k
		for wi := 0; wi < nw; wi++ {
			w := pred[r*nw+wi]
			if w == 0 {
				continue
			}
			for s := 0; s < 64; s += k {
				if w>>uint(s)&bm != 0 {
					v.pOpenB[R*m+(wi*64+s)/k] = true
				}
			}
		}
	}
}
