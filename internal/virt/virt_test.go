package virt

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/ppa"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []struct{ n, m int }{{0, 1}, {4, 0}, {4, 3}, {2, 4}, {6, 4}} {
		if _, err := New(c.n, c.m, 8); err == nil {
			t.Errorf("New(%d, %d) accepted", c.n, c.m)
		}
	}
	v, err := New(12, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if v.N() != 12 || v.PhysicalSide() != 3 || v.BlockSide() != 4 ||
		v.Bits() != 9 || v.Inf() != 511 {
		t.Errorf("accessors: n=%d m=%d k=%d h=%d", v.N(), v.PhysicalSide(), v.BlockSide(), v.Bits())
	}
}

// randomConfig builds matched random inputs for an n x n array.
func randomConfig(rng *rand.Rand, n int, h uint) (open, drive []bool, src []ppa.Word) {
	open = make([]bool, n*n)
	drive = make([]bool, n*n)
	src = make([]ppa.Word, n*n)
	for i := range open {
		open[i] = rng.Intn(4) == 0
		drive[i] = rng.Intn(3) == 0
		src[i] = ppa.Word(rng.Int63n(int64(ppa.Infinity(h)) + 1))
	}
	return
}

// TestOpsMatchDirectMachine is the package's central property: every
// logical operation on the virtualized machine produces bit-identical
// results to a direct n x n ppa.Machine, for every direction, block
// factor and random configuration.
func TestOpsMatchDirectMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const h = 10
	for trial := 0; trial < 120; trial++ {
		m := 1 + rng.Intn(4)
		k := 1 + rng.Intn(4)
		n := m * k
		d := ppa.Direction(rng.Intn(4))
		open, drive, src := randomConfig(rng, n, h)

		direct := ppa.New(n, h)
		vm, err := New(n, m, h)
		if err != nil {
			t.Fatal(err)
		}

		// Broadcast (fresh dst prefilled to catch floating-lane handling).
		dstD := make([]ppa.Word, n*n)
		dstV := make([]ppa.Word, n*n)
		for i := range dstD {
			dstD[i] = ppa.Word(i % 7)
			dstV[i] = ppa.Word(i % 7)
		}
		direct.Broadcast(d, open, src, dstD)
		vm.Broadcast(d, open, src, dstV)
		if !reflect.DeepEqual(dstD, dstV) {
			t.Fatalf("trial %d (n=%d m=%d d=%v): Broadcast diverged\nopen=%v\nsrc=%v\ndirect=%v\nvirt=%v",
				trial, n, m, d, open, src, dstD, dstV)
		}

		// WiredOr.
		orD := make([]bool, n*n)
		orV := make([]bool, n*n)
		direct.WiredOr(d, open, drive, orD)
		vm.WiredOr(d, open, drive, orV)
		if !reflect.DeepEqual(orD, orV) {
			t.Fatalf("trial %d (n=%d m=%d d=%v): WiredOr diverged\nopen=%v\ndrive=%v\ndirect=%v\nvirt=%v",
				trial, n, m, d, open, drive, orD, orV)
		}

		// Shift.
		shD := make([]ppa.Word, n*n)
		shV := make([]ppa.Word, n*n)
		direct.Shift(d, src, shD)
		vm.Shift(d, src, shV)
		if !reflect.DeepEqual(shD, shV) {
			t.Fatalf("trial %d (n=%d m=%d d=%v): Shift diverged", trial, n, m, d)
		}

		// GlobalOr.
		if direct.GlobalOr(drive) != vm.GlobalOr(drive) {
			t.Fatalf("trial %d: GlobalOr diverged", trial)
		}
	}
}

func TestOpsInPlaceAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, m, h = 6, 2, 8
	for trial := 0; trial < 40; trial++ {
		d := ppa.Direction(rng.Intn(4))
		open, _, src := randomConfig(rng, n, h)

		want := make([]ppa.Word, n*n)
		copy(want, src)
		ppa.New(n, h).Broadcast(d, open, want, want)

		vm, _ := New(n, m, h)
		got := append([]ppa.Word(nil), src...)
		vm.Broadcast(d, open, got, got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d d=%v: aliased Broadcast diverged", trial, d)
		}

		wantS := append([]ppa.Word(nil), src...)
		ppa.New(n, h).Shift(d, wantS, wantS)
		gotS := append([]ppa.Word(nil), src...)
		vm.Shift(d, gotS, gotS)
		if !reflect.DeepEqual(gotS, wantS) {
			t.Fatalf("trial %d d=%v: aliased Shift diverged", trial, d)
		}
	}
}

// TestVirtualizationCostLaw pins the ablation's cost model: one logical
// broadcast costs exactly k physical bus cycles, one logical wired-OR
// k physical wired-OR cycles plus 2k shift steps, one logical shift k
// physical steps.
func TestVirtualizationCostLaw(t *testing.T) {
	for _, c := range []struct{ n, m int }{{8, 8}, {8, 4}, {8, 2}, {8, 1}, {12, 3}} {
		k := c.n / c.m
		vm, err := New(c.n, c.m, 8)
		if err != nil {
			t.Fatal(err)
		}
		size := c.n * c.n
		open := make([]bool, size)
		open[0] = true
		src := make([]ppa.Word, size)
		drive := make([]bool, size)

		vm.Broadcast(ppa.East, open, src, src)
		got := vm.Metrics()
		if got.BusCycles != int64(k) {
			t.Errorf("n=%d m=%d: Broadcast cost %d bus cycles, want k=%d", c.n, c.m, got.BusCycles, k)
		}
		vm.ResetMetrics()
		vm.WiredOr(ppa.South, open, drive, drive)
		got = vm.Metrics()
		if got.WiredOrCycles != int64(k) || got.ShiftSteps != int64(2*k) {
			t.Errorf("n=%d m=%d: WiredOr cost %d/%d, want %d wired-OR + %d shifts",
				c.n, c.m, got.WiredOrCycles, got.ShiftSteps, k, 2*k)
		}
		vm.ResetMetrics()
		vm.Shift(ppa.West, src, src)
		if got = vm.Metrics(); got.ShiftSteps != int64(k) {
			t.Errorf("n=%d m=%d: Shift cost %d steps, want k=%d", c.n, c.m, got.ShiftSteps, k)
		}
		vm.ResetMetrics()
		vm.GlobalOr(drive)
		if got = vm.Metrics(); got.GlobalOrOps != 1 {
			t.Errorf("GlobalOr ops = %d", got.GlobalOrOps)
		}
	}
}

func TestTrivialVirtualizationMatchesDirectCosts(t *testing.T) {
	// k = 1 must behave exactly like the direct machine, cycle for cycle.
	vm, _ := New(5, 5, 8)
	direct := ppa.New(5, 8)
	open := make([]bool, 25)
	open[3] = true
	src := make([]ppa.Word, 25)
	vm.Broadcast(ppa.North, open, src, src)
	direct.Broadcast(ppa.North, open, src, src)
	if vm.Metrics().BusCycles != direct.Metrics().BusCycles {
		t.Errorf("k=1 bus cycles: virt %d, direct %d",
			vm.Metrics().BusCycles, direct.Metrics().BusCycles)
	}
}

func TestLengthValidationPanics(t *testing.T) {
	vm, _ := New(4, 2, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("short slice did not panic")
		}
	}()
	vm.Broadcast(ppa.East, make([]bool, 4), make([]ppa.Word, 16), make([]ppa.Word, 16))
}
