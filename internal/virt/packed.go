package virt

// The packed virtualization engine: the Fabric's Bitset/Word entry points
// (BroadcastBits, WiredOrBits, GlobalOrBits, Shift) executed as word-level
// bit-matrix work on the packed planes directly, with no per-transaction
// unpacking and no allocation.
//
// Geometry. A logical plane is an n*n-bit row-major Bitset (or []Word).
// For a horizontal pass on within-block plane t, physical ring i (row i of
// the m x m machine) owns logical row r = i*k + t: a contiguous n-bit row
// of the plane, within which physical PE q of the ring owns the k-bit
// block [r*n + q*k, r*n + (q+1)*k). Vertical passes run through a
// once-per-transaction 64x64-tile transpose of the switch planes
// (ppa.TransposeBits), which turns logical column c = i*k + t into the
// same contiguous row shape; Word-array operands are accessed with stride
// n instead of being transposed.
//
// Cost shadowing. Each plane pass issues exactly the physical
// transactions and chargeLocal calls of the lane-at-a-time reference path
// in virt.go, in the same order, so ppa.Metrics and physical observer
// event streams are byte-identical between the two (property-tested in
// packedparity_test.go) and the EXPERIMENTS.md virtualization ablation is
// unchanged by this engine.
//
// Parallelism. The per-ring scan/fill kernels are fanned over the
// physical machine's persistent ring worker pool (ppa.Machine.RunRings)
// under the pool's usual grain policy. Scan kernels write only []bool and
// []Word cells indexed by physical PE, so they are always race-free;
// wired-OR fill kernels write the packed destination plane and are pooled
// only when n is a multiple of 64 (every logical row then owns whole
// words), falling back to serial execution otherwise.

import "ppamcp/internal/ppa"

// floating is the physical broadcast carry-in sentinel: a bus that no
// Open PE drives leaves pRecv unchanged. Machine words are at most
// MaxBits wide, so real operands never collide with it.
const floating = ppa.Word(-1)

func b2w(b bool) ppa.Word {
	if b {
		return 1
	}
	return 0
}

// rev reports decreasing-bit flow order (West, and North through the
// transposed planes).
func rev(d ppa.Direction) bool { return d == ppa.West || d == ppa.North }

// stageClear drops the staged operand references so an idle machine pins
// no caller storage.
func (v *Machine) stageClear() {
	v.jSrc, v.jDst = nil, nil
	v.jScan, v.jDrive, v.jWDst = nil, nil, nil
}

// transposedOpen returns the transpose of the open plane, recomputing it
// only when the plane's content differs from the last vertical pass
// (equal words transpose equally, so the content compare is always
// safe — even when the caller mutated or recycled the Bitset).
func (v *Machine) transposedOpen(open *ppa.Bitset) *ppa.Bitset {
	ow, sw := open.Words(), v.openSnap.Words()
	for i := range ow {
		if ow[i] != sw[i] {
			copy(sw, ow)
			ppa.TransposeBits(v.tOpen, open, v.n)
			break
		}
	}
	return v.tOpen
}

// blockP returns the physical flat index of block q on ring i for the
// current pass orientation: ring i is physical row i for horizontal
// passes and physical column i for vertical ones.
func (v *Machine) blockP(i, q int) int {
	if v.jVert {
		return q*v.m + i
	}
	return i*v.m + q
}

// dataIdx returns the []Word flat index of ring position p on the current
// pass's ring i: horizontal rings are contiguous rows, vertical rings
// walk a column with stride n. p is the bit position relative to the scan
// row's base.
func (v *Machine) dataIdx(i, p int) int {
	row := i*v.k + v.jt
	if v.jVert {
		return p*v.n + row
	}
	return row*v.n + p
}

// BroadcastBits is the packed logical segmented-bus transaction. Per
// within-block plane: a head scan per block finds the flow-last Open lane
// and its operand, one physical bus cycle moves those injections between
// blocks, and segment fills distribute each head's operand downstream.
// Results and charges are identical to Broadcast. dst may alias src; it
// must not alias the packed configuration's storage.
func (v *Machine) BroadcastBits(d ppa.Direction, open *ppa.Bitset, src, dst []ppa.Word) {
	v.checkBits("open", open)
	v.checkLen("src", len(src))
	v.checkLen("dst", len(dst))
	scan := open
	vert := !d.Horizontal()
	if vert {
		scan = v.transposedOpen(open)
	}
	v.jRev, v.jVert, v.jScan, v.jSrc, v.jDst = rev(d), vert, scan, src, dst
	ww := 2 * v.m * v.n // src+dst words touched per plane pass
	for t := 0; t < v.k; t++ {
		v.jt = t
		v.phys.RunRings(ww, v.fnBcastScan)
		v.chargeLocal(v.k)
		v.phys.Broadcast(d, v.pOpenB, v.pInject, v.pRecv)
		v.phys.RunRings(ww, v.fnBcastFill)
		v.chargeLocal(v.k)
	}
	v.stageClear()
}

// bcastScanRing stages ring i's per-block broadcast inputs: whether the
// block has an Open lane on the current plane, the operand of its
// flow-last Open lane, and a floating carry-in.
func (v *Machine) bcastScanRing(i int) {
	if v.wordBlocks {
		v.bcastScanRingFast(i)
		return
	}
	k, sb := v.k, (i*v.k+v.jt)*v.n
	for q := 0; q < v.m; q++ {
		P := v.blockP(i, q)
		lo, hi := sb+q*k, sb+(q+1)*k
		var h int
		if v.jRev {
			h = v.jScan.NextSet(lo, hi)
		} else {
			h = v.jScan.PrevSet(lo, hi)
		}
		if h >= 0 {
			v.pOpenB[P] = true
			v.pInject[P] = v.jSrc[v.dataIdx(i, h-sb)]
		} else {
			// Defined even with no Open lane: a stuck-open fault makes
			// the physical PE inject this operand regardless.
			v.pOpenB[P] = false
			v.pInject[P] = 0
		}
		v.pRecv[P] = floating
	}
}

// bcastFillRing distributes ring i's broadcast results: within each
// block, the segment downstream of each Open head receives that head's
// operand, and the lanes upstream of the first head receive the physical
// carry (unless the whole logical ring floats). Segments are filled in an
// order that reads every head's src operand before an aliased dst write
// can clobber it (see ppa.ringKernels.broadcastRing).
func (v *Machine) bcastFillRing(i int) {
	if v.wordBlocks {
		v.bcastFillRingFast(i)
		return
	}
	k, sb := v.k, (i*v.k+v.jt)*v.n
	src, dst := v.jSrc, v.jDst
	for q := 0; q < v.m; q++ {
		carry := v.pRecv[v.blockP(i, q)]
		lo, hi := q*k, (q+1)*k // ring positions
		if !v.jRev {
			hc := v.jScan.PrevSet(sb+lo, sb+hi)
			if hc < 0 {
				if carry != floating {
					for p := lo; p < hi; p++ {
						dst[v.dataIdx(i, p)] = carry
					}
				}
				continue
			}
			hc -= sb
			val := src[v.dataIdx(i, hc)]
			for p := hc + 1; p < hi; p++ {
				dst[v.dataIdx(i, p)] = val
			}
			cur := hc
			for {
				prev := v.jScan.PrevSet(sb+lo, sb+cur)
				if prev < 0 {
					break
				}
				prev -= sb
				val = src[v.dataIdx(i, prev)]
				for p := prev + 1; p <= cur; p++ {
					dst[v.dataIdx(i, p)] = val
				}
				cur = prev
			}
			if carry != floating {
				for p := lo; p <= cur; p++ {
					dst[v.dataIdx(i, p)] = carry
				}
			}
			continue
		}
		// Reverse flow: upstream is the higher bit position.
		hc := v.jScan.NextSet(sb+lo, sb+hi)
		if hc < 0 {
			if carry != floating {
				for p := lo; p < hi; p++ {
					dst[v.dataIdx(i, p)] = carry
				}
			}
			continue
		}
		hc -= sb
		val := src[v.dataIdx(i, hc)]
		for p := lo; p < hc; p++ {
			dst[v.dataIdx(i, p)] = val
		}
		cur := hc
		for {
			next := v.jScan.NextSet(sb+cur+1, sb+hi)
			if next < 0 {
				break
			}
			next -= sb
			val = src[v.dataIdx(i, next)]
			for p := cur; p < next; p++ {
				dst[v.dataIdx(i, p)] = val
			}
			cur = next
		}
		if carry != floating {
			for p := cur; p < hi; p++ {
				dst[v.dataIdx(i, p)] = carry
			}
		}
	}
}

// WiredOrBits is the packed logical wired-OR. Per within-block plane: a
// head scan per block splits its drives into head/tail/full
// contributions, a one-bit physical shift hands head contributions
// upstream, one physical wired-OR resolves the block-spanning clusters, a
// second shift hands results downstream, and masked range fills
// distribute — word-parallel throughout. Results and charges are
// identical to WiredOr. dst may alias drive or open.
func (v *Machine) WiredOrBits(d ppa.Direction, open, drive, dst *ppa.Bitset) {
	v.checkBits("open", open)
	v.checkBits("drive", drive)
	v.checkBits("dst", dst)
	sOpen, sDrive, wDst := open, drive, dst
	vert := !d.Horizontal()
	if vert {
		// South rings read top-to-bottom: through the transpose that is
		// forward flow; North maps to reverse. The destination is staged
		// transposed too (every bit is written) and flipped back once.
		sOpen = v.transposedOpen(open)
		ppa.TransposeBits(v.tDrive, drive, v.n)
		sDrive, wDst = v.tDrive, v.tDst
	}
	v.jRev, v.jVert = rev(d), vert
	v.jScan, v.jDrive, v.jWDst = sOpen, sDrive, wDst
	mm := v.m * v.m
	ww := 3 * (v.m * v.n / 64) // three packed rows per ring per plane
	for t := 0; t < v.k; t++ {
		v.jt = t
		v.phys.RunRings(ww, v.fnWorScan)
		v.chargeLocal(v.k)
		// Hand each block's head contribution to its upstream neighbour
		// (the spanning cluster it belongs to ends there).
		v.phys.Shift(d.Opposite(), v.headW, v.shiftHead)
		for P := 0; P < mm; P++ {
			own := v.fullB[P]
			if v.pOpenB[P] {
				own = v.tailB[P]
			}
			v.pDriveB[P] = own || v.shiftHead[P] != 0
		}
		v.chargeLocal(1)
		v.phys.WiredOr(d, v.pOpenB, v.pDriveB, v.pOrB)
		for P := 0; P < mm; P++ {
			v.orW[P] = b2w(v.pOrB[P])
		}
		v.chargeLocal(1)
		// Hand each physical cluster's OR downstream by one block, so a
		// block's pre-first-open lanes can read their (upstream) cluster.
		v.phys.Shift(d, v.orW, v.shiftOr)
		if v.rowsAligned {
			v.phys.RunRings(ww, v.fnWorFill)
		} else {
			// Unaligned rows can share destination words across rings;
			// run the fills serially (bypassing the pool entirely).
			for i := 0; i < v.m; i++ {
				v.worFillRing(i)
			}
		}
		v.chargeLocal(2 * v.k)
	}
	if vert {
		ppa.TransposeBits(dst, v.tDst, v.n)
	}
	v.stageClear()
}

// worScanRing stages ring i's per-block wired-OR inputs: whether the
// block has an Open lane on the current plane, and the OR of its drives
// before the first head (head), from the last head onward (tail), and
// overall (full, used only by head-less blocks).
func (v *Machine) worScanRing(i int) {
	if v.wordBlocks {
		v.worScanRingFast(i)
		return
	}
	k, sb := v.k, (i*v.k+v.jt)*v.n
	for q := 0; q < v.m; q++ {
		P := v.blockP(i, q)
		lo, hi := sb+q*k, sb+(q+1)*k
		if !v.jRev {
			first := v.jScan.NextSet(lo, hi)
			if first < 0 {
				f := v.jDrive.AnyRange(lo, hi)
				v.pOpenB[P], v.fullB[P], v.tailB[P] = false, f, false
				v.headW[P] = b2w(f)
				continue
			}
			last := v.jScan.PrevSet(lo, hi)
			v.pOpenB[P], v.fullB[P] = true, false
			v.headW[P] = b2w(v.jDrive.AnyRange(lo, first))
			v.tailB[P] = v.jDrive.AnyRange(last, hi)
			continue
		}
		// Reverse flow: the flow-first head is the highest bit.
		first := v.jScan.PrevSet(lo, hi)
		if first < 0 {
			f := v.jDrive.AnyRange(lo, hi)
			v.pOpenB[P], v.fullB[P], v.tailB[P] = false, f, false
			v.headW[P] = b2w(f)
			continue
		}
		last := v.jScan.NextSet(lo, hi)
		v.pOpenB[P], v.fullB[P] = true, false
		v.headW[P] = b2w(v.jDrive.AnyRange(first+1, hi))
		v.tailB[P] = v.jDrive.AnyRange(lo, last+1)
	}
}

// worFillRing distributes ring i's wired-OR results with masked range
// fills: head-less blocks take the physical cluster OR wholesale, lanes
// before the first head read the downstream-shifted OR of their upstream
// cluster, internal clusters reduce locally, and the final cluster (which
// spans into downstream blocks) reads the physical OR.
func (v *Machine) worFillRing(i int) {
	if v.wordBlocks {
		v.worFillRingFast(i)
		return
	}
	k, sb := v.k, (i*v.k+v.jt)*v.n
	for q := 0; q < v.m; q++ {
		P := v.blockP(i, q)
		lo, hi := sb+q*k, sb+(q+1)*k
		if !v.pOpenB[P] {
			v.jWDst.FillRange(lo, hi, v.pOrB[P])
			continue
		}
		if !v.jRev {
			first := v.jScan.NextSet(lo, hi)
			v.jWDst.FillRange(lo, first, v.shiftOr[P] != 0)
			start := first
			for {
				next := v.jScan.NextSet(start+1, hi)
				if next < 0 {
					v.jWDst.FillRange(start, hi, v.pOrB[P])
					break
				}
				v.jWDst.FillRange(start, next, v.jDrive.AnyRange(start, next))
				start = next
			}
			continue
		}
		first := v.jScan.PrevSet(lo, hi)
		v.jWDst.FillRange(first+1, hi, v.shiftOr[P] != 0)
		start := first
		for {
			next := v.jScan.PrevSet(lo, start)
			if next < 0 {
				v.jWDst.FillRange(lo, start+1, v.pOrB[P])
				break
			}
			v.jWDst.FillRange(next+1, start+1, v.jDrive.AnyRange(next+1, start+1))
			start = next
		}
	}
}

// Shift implements the logical one-step shift: per within-block plane,
// the lane leaving each block crosses on one physical shift and the rest
// move locally (block-contiguous copies on horizontal passes, stride-n
// walks on vertical ones). dst may alias src. Cost: k physical shift
// steps.
func (v *Machine) Shift(d ppa.Direction, src, dst []ppa.Word) {
	v.checkLen("src", len(src))
	v.checkLen("dst", len(dst))
	v.jRev, v.jVert, v.jSrc, v.jDst = rev(d), !d.Horizontal(), src, dst
	ww := 2 * v.m * v.n
	for t := 0; t < v.k; t++ {
		v.jt = t
		v.phys.RunRings(ww, v.fnShiftCollect)
		v.chargeLocal(1)
		v.phys.Shift(d, v.boundary, v.incoming)
		v.phys.RunRings(ww, v.fnShiftMove)
		v.chargeLocal(v.k)
	}
	v.stageClear()
}

// shiftCollectRing stages each block's flow-last lane for the physical
// boundary crossing.
func (v *Machine) shiftCollectRing(i int) {
	k := v.k
	for q := 0; q < v.m; q++ {
		p := q*k + k - 1
		if v.jRev {
			p = q * k
		}
		v.boundary[v.blockP(i, q)] = v.jSrc[v.dataIdx(i, p)]
	}
}

// shiftMoveRing moves each block's remaining lanes one step in flow
// order and writes the incoming boundary word at the block's flow-first
// lane. Move order reads every source lane before an aliased dst write.
func (v *Machine) shiftMoveRing(i int) {
	k := v.k
	src, dst := v.jSrc, v.jDst
	for q := 0; q < v.m; q++ {
		in := v.incoming[v.blockP(i, q)]
		base := q * k
		if !v.jRev {
			for j := k - 1; j >= 1; j-- {
				dst[v.dataIdx(i, base+j)] = src[v.dataIdx(i, base+j-1)]
			}
			dst[v.dataIdx(i, base)] = in
			continue
		}
		for j := 0; j < k-1; j++ {
			dst[v.dataIdx(i, base+j)] = src[v.dataIdx(i, base+j+1)]
		}
		dst[v.dataIdx(i, base+k-1)] = in
	}
}

// GlobalOrBits reduces each block with word-range scans, then uses the
// physical global-OR line once. Results and charges are identical to
// GlobalOr.
func (v *Machine) GlobalOrBits(pred *ppa.Bitset) bool {
	v.checkBits("pred", pred)
	if v.wordBlocks {
		v.globalOrFast(pred.Words())
	} else {
		m, k, n := v.m, v.k, v.n
		for P := 0; P < m*m; P++ {
			R, C := P/m, P%m
			or := false
			for a := 0; a < k && !or; a++ {
				lo := (R*k+a)*n + C*k
				or = pred.AnyRange(lo, lo+k)
			}
			v.pOpenB[P] = or
		}
	}
	v.chargeLocal(v.k * v.k)
	return v.phys.GlobalOr(v.pOpenB)
}
