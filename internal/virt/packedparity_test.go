package virt

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/ppa"
)

// packedParityCase is one cell of the sweep grid.
type packedParityCase struct {
	n, m    int
	h       uint
	workers int
}

func packedParityGrid() []packedParityCase {
	var grid []packedParityCase
	for _, nm := range []struct{ n, m int }{{4, 2}, {8, 2}, {12, 3}, {64, 8}} {
		for _, h := range []uint{4, 8, 16} {
			for _, w := range []int{1, 2, 7} {
				grid = append(grid, packedParityCase{nm.n, nm.m, h, w})
			}
		}
	}
	return grid
}

func newParityMachine(t *testing.T, c packedParityCase) *Machine {
	t.Helper()
	var opts []ppa.Option
	if c.workers > 1 {
		// Force the pooled path so the per-ring kernels actually run on
		// the persistent workers regardless of transaction size or host.
		opts = append(opts, ppa.WithWorkers(c.workers), ppa.WithForceParallel())
	}
	vm, err := New(c.n, c.m, c.h, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

// TestPackedLaneParity is the tentpole's central property: the packed
// engine (BroadcastBits/WiredOrBits/GlobalOrBits) and the lane-at-a-time
// reference path (Broadcast/WiredOr/GlobalOr) produce equal outputs AND
// byte-identical ppa.Metrics on two identically-driven machines — across
// block geometries (covering both the word-mask fast kernels and the
// generic ones), word widths, worker counts, all four directions, and
// injected physical switch faults.
func TestPackedLaneParity(t *testing.T) {
	for _, c := range packedParityGrid() {
		c := c
		t.Run(fmt.Sprintf("n=%d/m=%d/h=%d/w=%d", c.n, c.m, c.h, c.workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(c.n)*1000 + int64(c.h)*10 + int64(c.workers)))
			lane := newParityMachine(t, c)
			packed := newParityMachine(t, c)
			defer lane.Close()
			defer packed.Close()
			size := c.n * c.n
			openBits := ppa.NewBitset(size)
			driveBits := ppa.NewBitset(size)
			predBits := ppa.NewBitset(size)
			dstBits := ppa.NewBitset(size)
			dstBools := make([]bool, size)
			for trial := 0; trial < 8; trial++ {
				// Half the trials run with random physical switch faults
				// injected identically on both machines: faults apply at
				// the physical transaction level, so packed-vs-lane
				// parity must survive them.
				if trial%2 == 1 {
					pe := rng.Intn(c.m * c.m)
					kind := ppa.FaultKind(rng.Intn(2))
					lane.Physical().InjectFault(pe, kind)
					packed.Physical().InjectFault(pe, kind)
				} else {
					lane.Physical().ClearFaults()
					packed.Physical().ClearFaults()
				}
				open, drive, src := randomConfig(rng, c.n, c.h)
				openBits.FromBools(open)
				driveBits.FromBools(drive)
				for _, d := range []ppa.Direction{ppa.East, ppa.West, ppa.South, ppa.North} {
					// Broadcast: prefill both destinations so floating
					// rings (left unwritten) are compared too.
					dstL := make([]ppa.Word, size)
					dstP := make([]ppa.Word, size)
					for i := range dstL {
						dstL[i] = ppa.Word(i % 5)
						dstP[i] = ppa.Word(i % 5)
					}
					lane.Broadcast(d, open, src, dstL)
					packed.BroadcastBits(d, openBits, src, dstP)
					if !reflect.DeepEqual(dstL, dstP) {
						t.Fatalf("trial %d d=%v: Broadcast outputs diverged", trial, d)
					}

					lane.WiredOr(d, open, drive, dstBools)
					packed.WiredOrBits(d, openBits, driveBits, dstBits)
					for i := 0; i < size; i++ {
						if dstBools[i] != dstBits.Get(i) {
							t.Fatalf("trial %d d=%v: WiredOr diverged at lane %d", trial, d, i)
						}
					}
				}
				pred := make([]bool, size)
				for i := range pred {
					pred[i] = rng.Intn(20) == 0
				}
				predBits.FromBools(pred)
				if lane.GlobalOr(pred) != packed.GlobalOrBits(predBits) {
					t.Fatalf("trial %d: GlobalOr diverged", trial)
				}
				if lm, pm := lane.Metrics(), packed.Metrics(); lm != pm {
					t.Fatalf("trial %d: metrics diverged\nlane:   %+v\npacked: %+v", trial, lm, pm)
				}
			}
		})
	}
}

// TestPackedShiftMatchesDirect covers the packed Shift against a direct
// n x n machine over the sweep geometries (Shift has no []bool twin; the
// direct machine is its oracle) and pins its cost law.
func TestPackedShiftMatchesDirect(t *testing.T) {
	for _, c := range packedParityGrid() {
		c := c
		t.Run(fmt.Sprintf("n=%d/m=%d/h=%d/w=%d", c.n, c.m, c.h, c.workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(c.n) + int64(c.workers)))
			vm := newParityMachine(t, c)
			defer vm.Close()
			direct := ppa.New(c.n, c.h)
			_, _, src := randomConfig(rng, c.n, c.h)
			for _, d := range []ppa.Direction{ppa.East, ppa.West, ppa.South, ppa.North} {
				got := make([]ppa.Word, len(src))
				want := make([]ppa.Word, len(src))
				vm.ResetMetrics()
				vm.Shift(d, src, got)
				direct.Shift(d, src, want)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("d=%v: Shift diverged from direct machine", d)
				}
				if steps := vm.Metrics().ShiftSteps; steps != int64(c.n/c.m) {
					t.Fatalf("d=%v: shift cost %d steps, want k=%d", d, steps, c.n/c.m)
				}
			}
		})
	}
}

// TestPackedAliasing drives the packed entry points with aliased
// operands — the usage the programming layer relies on (reduce into the
// drive plane, broadcast in place) — against the lane path on separate
// buffers.
func TestPackedAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, nm := range []struct{ n, m int }{{8, 2}, {12, 3}, {64, 8}} {
		n, m := nm.n, nm.m
		const h = 9
		vm, err := New(n, m, h)
		if err != nil {
			t.Fatal(err)
		}
		lane, err := New(n, m, h)
		if err != nil {
			t.Fatal(err)
		}
		size := n * n
		openBits := ppa.NewBitset(size)
		driveBits := ppa.NewBitset(size)
		want := make([]bool, size)
		for trial := 0; trial < 10; trial++ {
			d := ppa.Direction(rng.Intn(4))
			open, drive, src := randomConfig(rng, n, h)
			openBits.FromBools(open)

			// dst aliases src.
			inPlace := append([]ppa.Word(nil), src...)
			vm.BroadcastBits(d, openBits, inPlace, inPlace)
			ref := append([]ppa.Word(nil), src...)
			lane.Broadcast(d, open, src, ref)
			if !reflect.DeepEqual(inPlace, ref) {
				t.Fatalf("trial %d d=%v: aliased BroadcastBits diverged", trial, d)
			}

			// dst aliases drive.
			driveBits.FromBools(drive)
			vm.WiredOrBits(d, openBits, driveBits, driveBits)
			lane.WiredOr(d, open, drive, want)
			for i := 0; i < size; i++ {
				if want[i] != driveBits.Get(i) {
					t.Fatalf("trial %d d=%v: drive-aliased WiredOrBits diverged at %d", trial, d, i)
				}
			}

			// dst aliases open. Run the lane oracle a second time too so
			// the cumulative metrics of both machines stay comparable.
			openBits.FromBools(open)
			driveBits.FromBools(drive)
			vm.WiredOrBits(d, openBits, driveBits, openBits)
			lane.WiredOr(d, open, drive, want)
			for i := 0; i < size; i++ {
				if want[i] != openBits.Get(i) {
					t.Fatalf("trial %d d=%v: open-aliased WiredOrBits diverged at %d", trial, d, i)
				}
			}

			if lm, pm := lane.Metrics(), vm.Metrics(); lm != pm {
				t.Fatalf("trial %d: metrics diverged under aliasing", trial)
			}
		}
	}
}
