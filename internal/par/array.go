// Package par is the data-parallel programming layer of the PPA: the
// semantics of Polymorphic Parallel C (PPC) exposed as a Go API.
//
// An Array wraps a ppa.Machine and maintains the SIMD activity mask
// manipulated by the where/elsewhere construct. Parallel variables (Var for
// h-bit words, Bool for logicals) are allocated from the Array; pure
// elementwise operations compute on all PEs (SIMD lockstep), while mutating
// operations store only where the activity mask is set — exactly the
// store-enable semantics of a SIMD controller.
//
// Communication primitives mirror PPC's: Shift, Broadcast, the wired-OR
// reduction Or, the bit-serial Min and SelectedMin of the paper, and the
// global-OR line Any used for loop termination.
package par

import (
	"fmt"

	"ppamcp/internal/ppa"
)

// Array is a PPA programming context: a communication fabric plus the
// activity-mask stack. It is not safe for concurrent use.
type Array struct {
	m    ppa.Fabric
	mask []bool
}

// New returns a context on fabric m with all PEs active. The fabric is
// usually a *ppa.Machine; pass a *virt.Machine to run the same program
// block-mapped onto a smaller physical array.
func New(m ppa.Fabric) *Array {
	mask := make([]bool, m.N()*m.N())
	for i := range mask {
		mask[i] = true
	}
	return &Array{m: m, mask: mask}
}

// Machine returns the underlying communication fabric.
func (a *Array) Machine() ppa.Fabric { return a.m }

// N returns the array side.
func (a *Array) N() int { return a.m.N() }

// size returns the PE count.
func (a *Array) size() int { n := a.m.N(); return n * n }

// Where runs body with the activity mask narrowed to the PEs where c holds
// (intersected with the current mask), restoring the mask afterwards. It
// is PPC's `where (c) { ... }`.
func (a *Array) Where(c *Bool, body func()) {
	a.WhereElse(c, body, nil)
}

// WhereElse is PPC's `where (c) { then } elsewhere { els }`: then runs with
// the mask narrowed to c, els with the mask narrowed to !c. Either may be
// nil.
func (a *Array) WhereElse(c *Bool, then, els func()) {
	a.check(c.a)
	saved := a.mask
	if then != nil {
		narrowed := make([]bool, len(saved))
		for i := range narrowed {
			narrowed[i] = saved[i] && c.v[i]
		}
		a.mask = narrowed
		then()
	}
	if els != nil {
		narrowed := make([]bool, len(saved))
		for i := range narrowed {
			narrowed[i] = saved[i] && !c.v[i]
		}
		a.mask = narrowed
		els()
	}
	a.mask = saved
}

// Active reports whether PE i is enabled under the current mask.
func (a *Array) Active(i int) bool { return a.mask[i] }

// ActiveCount returns the number of enabled PEs.
func (a *Array) ActiveCount() int {
	n := 0
	for _, b := range a.mask {
		if b {
			n++
		}
	}
	return n
}

// check panics if a parallel value from a different context is mixed in;
// this is always a programming error.
func (a *Array) check(other *Array) {
	if a != other {
		panic("par: mixing parallel values from different Arrays")
	}
}

// instr charges one SIMD instruction executed in lockstep by all PEs.
func (a *Array) instr() {
	a.m.CountInstr()
	a.m.CountPE(int64(a.size()))
}

// Row returns the parallel variable holding each PE's row coordinate
// (PPC's ROW). The values are materialized by the controller at program
// load; no machine cycles are charged.
func (a *Array) Row() *Var {
	v := a.newVar()
	n := a.N()
	for i := range v.v {
		v.v[i] = ppa.Word(i / n)
	}
	return v
}

// Col returns the parallel variable holding each PE's column coordinate
// (PPC's COL).
func (a *Array) Col() *Var {
	v := a.newVar()
	n := a.N()
	for i := range v.v {
		v.v[i] = ppa.Word(i % n)
	}
	return v
}

func (a *Array) newVar() *Var {
	return &Var{a: a, v: make([]ppa.Word, a.size())}
}

func (a *Array) newBool() *Bool {
	return &Bool{a: a, v: make([]bool, a.size())}
}

// Zeros allocates a parallel word variable initialized to 0 on all PEs.
func (a *Array) Zeros() *Var { return a.newVar() }

// Lit allocates a parallel word variable holding the scalar x on all PEs
// (a controller-broadcast immediate; one instruction).
func (a *Array) Lit(x ppa.Word) *Var {
	ppa.CheckWord(x, a.m.Bits())
	v := a.newVar()
	for i := range v.v {
		v.v[i] = x
	}
	a.instr()
	return v
}

// Inf allocates a parallel variable holding MAXINT on all PEs.
func (a *Array) Inf() *Var { return a.Lit(a.m.Inf()) }

// FromSlice loads host data (row-major, length N*N) into a new parallel
// variable, ignoring the activity mask: this models the host<->array DMA
// path, not a SIMD instruction.
func (a *Array) FromSlice(data []ppa.Word) *Var {
	if len(data) != a.size() {
		panic(fmt.Sprintf("par: FromSlice length %d, want %d", len(data), a.size()))
	}
	h := a.m.Bits()
	v := a.newVar()
	for i, w := range data {
		ppa.CheckWord(w, h)
		v.v[i] = w
	}
	return v
}

// FromBools loads host booleans into a new parallel logical, ignoring the
// mask (DMA path).
func (a *Array) FromBools(data []bool) *Bool {
	if len(data) != a.size() {
		panic(fmt.Sprintf("par: FromBools length %d, want %d", len(data), a.size()))
	}
	b := a.newBool()
	copy(b.v, data)
	return b
}

// False allocates a parallel logical initialized to false.
func (a *Array) False() *Bool { return a.newBool() }

// True allocates a parallel logical initialized to true (one instruction).
func (a *Array) True() *Bool {
	b := a.newBool()
	for i := range b.v {
		b.v[i] = true
	}
	a.instr()
	return b
}
