// Package par is the data-parallel programming layer of the PPA: the
// semantics of Polymorphic Parallel C (PPC) exposed as a Go API.
//
// An Array wraps a ppa.Machine and maintains the SIMD activity mask
// manipulated by the where/elsewhere construct. Parallel variables (Var for
// h-bit words, Bool for logicals) are allocated from the Array; pure
// elementwise operations compute on all PEs (SIMD lockstep), while mutating
// operations store only where the activity mask is set — exactly the
// store-enable semantics of a SIMD controller.
//
// Parallel logicals and the activity mask itself are stored bit-packed
// (ppa.Bitset, 64 lanes per host word), so every parallel logical
// instruction and every masked store runs as a word-op loop on the host.
// The packing is pure representation: results, metrics and tie-breaking
// are bit-identical to the unpacked reference semantics (property-tested
// in packedref_test.go).
//
// Communication primitives mirror PPC's: Shift, Broadcast, the wired-OR
// reduction Or, the bit-serial Min and SelectedMin of the paper, and the
// global-OR line Any used for loop termination.
package par

import (
	"fmt"

	"ppamcp/internal/ppa"
)

// Array is a PPA programming context: a communication fabric plus the
// activity-mask stack. It is not safe for concurrent use.
type Array struct {
	m    ppa.Fabric
	mask *ppa.Bitset

	// Free-lists recycle variable storage. Temporaries in the hot loops
	// (the h-plane walk of Min/Max, where-mask narrowing, broadcast
	// staging) release their storage back here instead of garbage; the
	// pools only grow to the program's peak live-variable count.
	freeBools []*Bool
	freeVars  []*Var
	freeBits  []*ppa.Bitset
	freeWords [][]ppa.Word

	// fused selects the bit-sliced fast path for the bus reductions (see
	// fused.go); planeBuf is its reusable plane arena (h packed planes).
	fused    bool
	planeBuf []uint64
}

// New returns a context on fabric m with all PEs active. The fabric is
// usually a *ppa.Machine; pass a *virt.Machine to run the same program
// block-mapped onto a smaller physical array.
func New(m ppa.Fabric) *Array {
	mask := ppa.NewBitset(m.N() * m.N())
	mask.Fill(true)
	return &Array{m: m, mask: mask}
}

// Machine returns the underlying communication fabric.
func (a *Array) Machine() ppa.Fabric { return a.m }

// N returns the array side.
func (a *Array) N() int { return a.m.N() }

// size returns the PE count.
func (a *Array) size() int { n := a.m.N(); return n * n }

// Where runs body with the activity mask narrowed to the PEs where c holds
// (intersected with the current mask), restoring the mask afterwards. It
// is PPC's `where (c) { ... }`.
func (a *Array) Where(c *Bool, body func()) {
	a.WhereElse(c, body, nil)
}

// WhereElse is PPC's `where (c) { then } elsewhere { els }`: then runs with
// the mask narrowed to c, els with the mask narrowed to !c. Either may be
// nil.
func (a *Array) WhereElse(c *Bool, then, els func()) {
	a.check(c.a)
	saved := a.mask
	if then != nil {
		narrowed := a.getBits()
		narrowed.And(saved, c.v)
		a.mask = narrowed
		then()
		a.mask = saved
		a.putBits(narrowed)
	}
	if els != nil {
		narrowed := a.getBits()
		narrowed.AndNot(saved, c.v)
		a.mask = narrowed
		els()
		a.mask = saved
		a.putBits(narrowed)
	}
}

// Active reports whether PE i is enabled under the current mask.
func (a *Array) Active(i int) bool { return a.mask.Get(i) }

// ActiveCount returns the number of enabled PEs.
func (a *Array) ActiveCount() int { return a.mask.Count() }

// check panics if a parallel value from a different context is mixed in;
// this is always a programming error.
func (a *Array) check(other *Array) {
	if a != other {
		panic("par: mixing parallel values from different Arrays")
	}
}

// instr charges one SIMD instruction executed in lockstep by all PEs.
func (a *Array) instr() {
	a.m.CountInstr()
	a.m.CountPE(int64(a.size()))
}

// getBits returns a (possibly dirty) n*n bitset from the scratch pool.
func (a *Array) getBits() *ppa.Bitset {
	if k := len(a.freeBits); k > 0 {
		b := a.freeBits[k-1]
		a.freeBits = a.freeBits[:k-1]
		return b
	}
	return ppa.NewBitset(a.size())
}

// putBits returns a bitset to the scratch pool.
func (a *Array) putBits(b *ppa.Bitset) { a.freeBits = append(a.freeBits, b) }

// getWords returns a (possibly dirty) n*n word slice from the scratch pool.
func (a *Array) getWords() []ppa.Word {
	if k := len(a.freeWords); k > 0 {
		w := a.freeWords[k-1]
		a.freeWords = a.freeWords[:k-1]
		return w
	}
	return make([]ppa.Word, a.size())
}

// putWords returns a word slice to the scratch pool.
func (a *Array) putWords(w []ppa.Word) { a.freeWords = append(a.freeWords, w) }

// Row returns the parallel variable holding each PE's row coordinate
// (PPC's ROW). The values are materialized by the controller at program
// load; no machine cycles are charged.
func (a *Array) Row() *Var {
	v := a.newVar()
	n := a.N()
	for i := range v.v {
		v.v[i] = ppa.Word(i / n)
	}
	return v
}

// Col returns the parallel variable holding each PE's column coordinate
// (PPC's COL).
func (a *Array) Col() *Var {
	v := a.newVar()
	n := a.N()
	for i := range v.v {
		v.v[i] = ppa.Word(i % n)
	}
	return v
}

func (a *Array) newVar() *Var {
	if k := len(a.freeVars); k > 0 {
		x := a.freeVars[k-1]
		a.freeVars = a.freeVars[:k-1]
		x.released = false
		for i := range x.v {
			x.v[i] = 0
		}
		return x
	}
	return &Var{a: a, v: make([]ppa.Word, a.size())}
}

func (a *Array) newBool() *Bool {
	if k := len(a.freeBools); k > 0 {
		x := a.freeBools[k-1]
		a.freeBools = a.freeBools[:k-1]
		x.released = false
		x.v.Fill(false)
		return x
	}
	return &Bool{a: a, v: ppa.NewBitset(a.size())}
}

// Zeros allocates a parallel word variable initialized to 0 on all PEs.
func (a *Array) Zeros() *Var { return a.newVar() }

// Lit allocates a parallel word variable holding the scalar x on all PEs
// (a controller-broadcast immediate; one instruction).
func (a *Array) Lit(x ppa.Word) *Var {
	ppa.CheckWord(x, a.m.Bits())
	v := a.newVar()
	for i := range v.v {
		v.v[i] = x
	}
	a.instr()
	return v
}

// Inf allocates a parallel variable holding MAXINT on all PEs.
func (a *Array) Inf() *Var { return a.Lit(a.m.Inf()) }

// FromSlice loads host data (row-major, length N*N) into a new parallel
// variable, ignoring the activity mask: this models the host<->array DMA
// path, not a SIMD instruction.
func (a *Array) FromSlice(data []ppa.Word) *Var {
	if len(data) != a.size() {
		panic(fmt.Sprintf("par: FromSlice length %d, want %d", len(data), a.size()))
	}
	h := a.m.Bits()
	v := a.newVar()
	for i, w := range data {
		ppa.CheckWord(w, h)
		v.v[i] = w
	}
	return v
}

// FromBools loads host booleans into a new parallel logical, ignoring the
// mask (DMA path).
func (a *Array) FromBools(data []bool) *Bool {
	if len(data) != a.size() {
		panic(fmt.Sprintf("par: FromBools length %d, want %d", len(data), a.size()))
	}
	b := a.newBool()
	b.v.FromBools(data)
	return b
}

// False allocates a parallel logical initialized to false.
func (a *Array) False() *Bool { return a.newBool() }

// True allocates a parallel logical initialized to true (one instruction).
func (a *Array) True() *Bool {
	b := a.newBool()
	b.v.Fill(true)
	a.instr()
	return b
}
