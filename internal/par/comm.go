package par

import (
	"math/bits"

	"ppamcp/internal/ppa"
)

// Broadcast is PPC's broadcast(src, dir, L): the parallel logical L
// partitions each ring of the array into clusters (true = Open switch box);
// every PE receives the src value of its cluster's head — the nearest Open
// PE strictly upstream in direction dir. Lanes on a floating ring (no Open
// PE) receive 0 in the fresh result.
//
// The result is a pure expression value; combine with Assign under a mask
// to reproduce PPC's `X = broadcast(...)`.
func (a *Array) Broadcast(src *Var, dir ppa.Direction, open *Bool) *Var {
	a.check(src.a)
	a.check(open.a)
	dst := a.newVar()
	a.m.BroadcastBits(dir, open.v, src.v, dst.v)
	return dst
}

// BroadcastInto performs the same bus transaction but delivers into an
// existing variable, so floating lanes keep their previous contents and
// the store respects the activity mask.
func (a *Array) BroadcastInto(dst, src *Var, dir ppa.Direction, open *Bool) {
	a.check(dst.a)
	a.check(src.a)
	a.check(open.a)
	tmp := a.getWords()
	copy(tmp, dst.v)
	a.m.BroadcastBits(dir, open.v, src.v, tmp)
	assignWordsMasked(dst.v, tmp, a.mask)
	a.putWords(tmp)
}

// BroadcastBool broadcasts a parallel logical over the segmented bus
// (one single-bit bus transaction, charged as a bus cycle).
func (a *Array) BroadcastBool(src *Bool, dir ppa.Direction, open *Bool) *Bool {
	a.check(src.a)
	a.check(open.a)
	in := a.getWords()
	out := a.getWords()
	for i := range in {
		in[i] = 0
	}
	for wi, w := range src.v.Words() {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			in[base+bits.TrailingZeros64(w)] = 1
		}
	}
	a.m.BroadcastBits(dir, open.v, in, out)
	dst := a.newBool()
	for i, w := range out {
		if w != 0 {
			dst.v.Set(i)
		}
	}
	a.putWords(in)
	a.putWords(out)
	return dst
}

// Or is PPC's or(x, dir, L): the wired-OR of x over each cluster defined
// by L, available at every PE of the cluster after one wired-OR bus cycle.
func (a *Array) Or(x *Bool, dir ppa.Direction, open *Bool) *Bool {
	a.check(x.a)
	a.check(open.a)
	dst := a.newBool()
	a.m.WiredOrBits(dir, open.v, x.v, dst.v)
	return dst
}

// Shift is PPC's shift(src, dir): every PE passes its value to its nearest
// neighbour in direction dir (torus wrap) and receives from the opposite
// side.
func (a *Array) Shift(src *Var, dir ppa.Direction) *Var {
	a.check(src.a)
	dst := a.newVar()
	a.m.Shift(dir, src.v, dst.v)
	return dst
}

// ShiftBool shifts a parallel logical one step in direction dir.
func (a *Array) ShiftBool(src *Bool, dir ppa.Direction) *Bool {
	a.check(src.a)
	in := a.getWords()
	out := a.getWords()
	for i := range in {
		in[i] = 0
	}
	for wi, w := range src.v.Words() {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			in[base+bits.TrailingZeros64(w)] = 1
		}
	}
	a.m.Shift(dir, in, out)
	dst := a.newBool()
	for i, w := range out {
		if w != 0 {
			dst.v.Set(i)
		}
	}
	a.putWords(in)
	a.putWords(out)
	return dst
}

// Any evaluates the global-OR line: true if b holds at any PE, regardless
// of the activity mask. PPC loop conditions such as the paper's
// `while (at least one SOW in row d has changed)` compile to Any of an
// explicit parallel predicate.
func (a *Array) Any(b *Bool) bool {
	a.check(b.a)
	return a.m.GlobalOrBits(b.v)
}

// None is the negation of Any.
func (a *Array) None(b *Bool) bool { return !a.Any(b) }
