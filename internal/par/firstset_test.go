package par

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/ppa"
)

// firstSetRef computes the expected FirstSet lanes by explicit cluster
// walking (flow order from each head to the next, wrapping).
func firstSetRef(n int, d ppa.Direction, open, x []bool) []bool {
	out := make([]bool, n*n)
	// ring geometry mirrors the machine's.
	pos := func(ring, k int) int {
		switch d {
		case ppa.East:
			return ring*n + k
		case ppa.West:
			return ring*n + n - 1 - k
		case ppa.South:
			return k*n + ring
		default: // North
			return (n-1-k)*n + ring
		}
	}
	for ring := 0; ring < n; ring++ {
		var heads []int
		for k := 0; k < n; k++ {
			if open[pos(ring, k)] {
				heads = append(heads, k)
			}
		}
		if len(heads) == 0 {
			continue
		}
		for hi, h := range heads {
			next := heads[(hi+1)%len(heads)]
			segLen := ((next-h)%n + n) % n
			if segLen == 0 {
				segLen = n
			}
			for t := 0; t < segLen; t++ {
				p := pos(ring, (h+t)%n)
				if x[p] {
					out[p] = true
					break
				}
			}
		}
	}
	return out
}

func TestFirstSetSimple(t *testing.T) {
	a := ctx(4, 8)
	// Row 0, flow East, head at col 0: drivers at cols 1 and 3 -> first is 1.
	x := a.FromBools([]bool{
		false, true, false, true,
		false, false, false, false,
		true, false, true, false, // row 2: head at 0 drives -> head first
		false, false, false, false,
	})
	heads := a.Col().EqConst(0)
	got := a.FirstSet(x, ppa.East, heads)
	want := []bool{
		false, true, false, false,
		false, false, false, false,
		true, false, false, false,
		false, false, false, false,
	}
	if !reflect.DeepEqual(got.Slice(), want) {
		t.Errorf("FirstSet = %v, want %v", got.Slice(), want)
	}
}

func TestFirstSetMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(8)
		d := ppa.Direction(rng.Intn(4))
		a := ctx(n, 8)
		openData := make([]bool, n*n)
		xData := make([]bool, n*n)
		for ring := 0; ring < n; ring++ {
			pos := rng.Intn(n)
			if d.Horizontal() {
				openData[ring*n+pos] = true
			} else {
				openData[pos*n+ring] = true
			}
		}
		for i := range openData {
			if rng.Intn(4) == 0 {
				openData[i] = true
			}
			xData[i] = rng.Intn(3) == 0
		}
		got := a.FirstSet(a.FromBools(xData), d, a.FromBools(openData))
		want := firstSetRef(n, d, openData, xData)
		if !reflect.DeepEqual(got.Slice(), want) {
			t.Fatalf("trial %d n=%d d=%v:\nopen=%v\nx=%v\ngot =%v\nwant=%v",
				trial, n, d, openData, xData, got.Slice(), want)
		}
	}
}

func TestFirstSetCost(t *testing.T) {
	a := ctx(4, 8)
	before := a.Machine().Metrics()
	a.FirstSet(a.False(), ppa.East, a.Col().EqConst(0))
	d := a.Machine().Metrics().Sub(before)
	if d.BusCycles != 1 || d.WiredOrCycles != 0 {
		t.Errorf("FirstSet cost = %v, want exactly 1 bus cycle", d)
	}
}

func TestFirstSetAtMostOnePerCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		a := ctx(n, 8)
		xData := make([]bool, n*n)
		for i := range xData {
			xData[i] = rng.Intn(2) == 0
		}
		// Whole-row clusters.
		got := a.FirstSet(a.FromBools(xData), ppa.East, a.Col().EqConst(0))
		for r := 0; r < n; r++ {
			count, any := 0, false
			for c := 0; c < n; c++ {
				if got.At(r, c) {
					count++
				}
				any = any || xData[r*n+c]
			}
			if count > 1 {
				t.Fatalf("trial %d row %d: %d firsts", trial, r, count)
			}
			if any && count != 1 {
				t.Fatalf("trial %d row %d: drivers exist but no first marked", trial, r)
			}
		}
	}
}
