package par

import (
	"math/rand"
	"testing"

	"ppamcp/internal/ppa"
	"ppamcp/internal/virt"
)

// randOpenPlane builds a switch plane stressing every cluster topology the
// reductions must handle: whole-ring clusters (the paper's MCP case, one
// Open PE per ring), multi-cluster rings (several heads), and floating
// rings (no head at all).
func randOpenPlane(rng *rand.Rand, n int) []bool {
	open := make([]bool, n*n)
	for r := 0; r < n; r++ {
		switch rng.Intn(3) {
		case 0: // single head: a whole-ring cluster
			open[r*n+rng.Intn(n)] = true
		case 1: // multi-cluster ring
			for c := 0; c < n; c++ {
				open[r*n+c] = rng.Intn(4) == 0
			}
		default: // floating ring (left all-Short)
		}
	}
	// The row pattern doubles as a column pattern for vertical
	// orientations; lane-wise it covers the same topologies.
	return open
}

func randWords(rng *rand.Rand, n int, h uint) []ppa.Word {
	flat := make([]ppa.Word, n*n)
	for i := range flat {
		flat[i] = ppa.Word(rng.Int63n(int64(ppa.Infinity(h)) + 1))
	}
	return flat
}

// runReduction executes one of the four bus reductions on a, loading fresh
// operands so both the fused and the reference array see the identical
// charged instruction sequence.
func runReduction(a *Array, op int, flat []ppa.Word, openB, selB []bool, d ppa.Direction) []ppa.Word {
	src := a.FromSlice(flat)
	open := a.FromBools(openB)
	var out *Var
	switch op {
	case 0:
		out = a.Min(src, d, open)
	case 1:
		out = a.Max(src, d, open)
	case 2:
		sel := a.FromBools(selB)
		out = a.SelectedMin(src, d, open, sel)
		sel.Release()
	default:
		sel := a.FromBools(selB)
		out = a.SelectedMax(src, d, open, sel)
		sel.Release()
	}
	res := append([]ppa.Word(nil), out.Slice()...)
	out.Release()
	open.Release()
	src.Release()
	return res
}

// TestFusedMatchesReference is the fused-vs-reference property sweep the
// fast path is gated on: across array sides, word widths, worker counts
// (the forced-parallel pool path included), random operand planes, random
// selections and random orientations, the fused bit-sliced kernels must
// produce the same outputs as the interpretive reference path *and* charge
// the same cost-model counters, for all four reductions.
func TestFusedMatchesReference(t *testing.T) {
	ops := []string{"Min", "Max", "SelectedMin", "SelectedMax"}
	for _, n := range []int{4, 8, 32, 64} {
		for _, h := range []uint{4, 8, 16, 32} {
			for _, workers := range []int{1, 2, 4, 7} {
				if testing.Short() && n > 8 && workers > 2 {
					continue
				}
				rng := rand.New(rand.NewSource(int64(10000*n) + int64(100*h) + int64(workers)))
				var opts []ppa.Option
				if workers > 1 {
					opts = append(opts, ppa.WithWorkers(workers), ppa.WithForceParallel())
				}
				mF := ppa.New(n, h, opts...)
				mR := ppa.New(n, h)
				aF := New(mF)
				aF.SetFused(true)
				aR := New(mR)
				for round := 0; round < 2; round++ {
					flat := randWords(rng, n, h)
					openB := randOpenPlane(rng, n)
					selB := make([]bool, n*n)
					for i := range selB {
						selB[i] = rng.Intn(2) == 0
					}
					d := ppa.Direction(rng.Intn(4))
					for op := range ops {
						got := runReduction(aF, op, flat, openB, selB, d)
						want := runReduction(aR, op, flat, openB, selB, d)
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("n=%d h=%d workers=%d round=%d %s dir=%v lane %d: fused=%d reference=%d",
									n, h, workers, round, ops[op], d, i, got[i], want[i])
							}
						}
					}
				}
				if mF.Metrics() != mR.Metrics() {
					t.Fatalf("n=%d h=%d workers=%d: counters diverge:\nfused     %+v\nreference %+v",
						n, h, workers, mF.Metrics(), mR.Metrics())
				}
				mF.Close()
			}
		}
	}
}

// TestSelectedReductionsNeverMutateSelection pins the lazy-copy contract:
// SelectedMin and SelectedMax must never write through the caller's
// selection mask, on both the fused and the reference path.
func TestSelectedReductionsNeverMutateSelection(t *testing.T) {
	const n, h = 8, 8
	rng := rand.New(rand.NewSource(99))
	for _, fused := range []bool{false, true} {
		a := New(ppa.New(n, h))
		a.SetFused(fused)
		flat := randWords(rng, n, h)
		openB := randOpenPlane(rng, n)
		selB := make([]bool, n*n)
		for i := range selB {
			selB[i] = rng.Intn(2) == 0
		}
		src := a.FromSlice(flat)
		open := a.FromBools(openB)
		sel := a.FromBools(selB)
		a.SelectedMin(src, ppa.East, open, sel).Release()
		a.SelectedMax(src, ppa.West, open, sel).Release()
		a.SelectedMinViaSwitches(src, ppa.East, open, sel).Release()
		got := sel.Slice()
		for i := range selB {
			if got[i] != selB[i] {
				t.Fatalf("fused=%v: selection lane %d mutated: now %v, was %v", fused, i, got[i], selB[i])
			}
		}
	}
}

// TestFusedFallsBackToReference checks the gating: the fused kernels must
// not engage on a faulty machine (the fault model is defined by the
// reference ring walk) or when disabled, and must engage on healthy
// plain and virtualized fabrics alike.
func TestFusedFallsBackToReference(t *testing.T) {
	a := New(ppa.New(4, 8))
	if a.Fused() {
		t.Fatal("fused should be off by default")
	}
	if a.fusedOn() != nil {
		t.Fatal("fusedOn should be nil with fused disabled")
	}
	a.SetFused(true)
	if a.fusedOn() == nil {
		t.Fatal("fusedOn should engage on a plain healthy machine")
	}

	mf := ppa.New(4, 8)
	mf.InjectFault(5, ppa.StuckShort)
	af := New(mf)
	af.SetFused(true)
	if af.fusedOn() != nil {
		t.Fatal("fusedOn must be nil on a faulty machine")
	}
	mf.ClearFaults()
	if af.fusedOn() == nil {
		t.Fatal("fusedOn should re-engage after ClearFaults")
	}

	vm, err := virt.New(8, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	av := New(vm)
	av.SetFused(true)
	if av.fusedOn() == nil {
		t.Fatal("fusedOn should engage on a healthy virtualized fabric")
	}
	vm.Physical().InjectFault(5, ppa.StuckShort)
	if av.fusedOn() != nil {
		t.Fatal("fusedOn must be nil on a virtualized fabric with physical faults")
	}
	vm.Physical().ClearFaults()
	if av.fusedOn() == nil {
		t.Fatal("fusedOn should re-engage after clearing physical faults")
	}

	// And the faulty-machine fallback must still compute correct results
	// through the public entry points.
	mf.InjectFault(9, ppa.StuckOpen)
	rng := rand.New(rand.NewSource(7))
	flat := randWords(rng, 4, 8)
	openB := randOpenPlane(rng, 4)
	selB := make([]bool, 16)
	for i := range selB {
		selB[i] = rng.Intn(2) == 0
	}
	ar := New(ppa.New(4, 8))
	arM := ar.Machine().(*ppa.Machine)
	arM.InjectFault(9, ppa.StuckOpen)
	for op := 0; op < 4; op++ {
		got := runReduction(af, op, flat, openB, selB, ppa.East)
		want := runReduction(ar, op, flat, openB, selB, ppa.East)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("faulty fallback op=%d lane %d: %d vs %d", op, i, got[i], want[i])
			}
		}
	}
}
