package par

import (
	"fmt"

	"ppamcp/internal/ppa"
)

// Var is a parallel h-bit word variable: one copy per PE, row-major.
type Var struct {
	a *Array
	v []ppa.Word
}

// Array returns the context the variable belongs to.
func (x *Var) Array() *Array { return x.a }

// Slice copies the variable out to the host (DMA path; no cycles charged).
func (x *Var) Slice() []ppa.Word {
	return append([]ppa.Word(nil), x.v...)
}

// At returns the value held by PE (row, col) (host read-back).
func (x *Var) At(row, col int) ppa.Word {
	return x.v[row*x.a.N()+col]
}

// Copy returns a fresh parallel variable with the same contents
// (one register-move instruction on all PEs).
func (x *Var) Copy() *Var {
	y := x.a.newVar()
	copy(y.v, x.v)
	x.a.instr()
	return y
}

// Assign stores u into x where the activity mask is set (x = u).
func (x *Var) Assign(u *Var) {
	x.a.check(u.a)
	for i := range x.v {
		if x.a.mask[i] {
			x.v[i] = u.v[i]
		}
	}
	x.a.instr()
}

// AssignConst stores the scalar w into x where the mask is set.
func (x *Var) AssignConst(w ppa.Word) {
	ppa.CheckWord(w, x.a.m.Bits())
	for i := range x.v {
		if x.a.mask[i] {
			x.v[i] = w
		}
	}
	x.a.instr()
}

// binary applies op lanewise producing a fresh variable (pure expression:
// computed on all PEs, stored to a temporary).
func (x *Var) binary(u *Var, op func(a, b ppa.Word) ppa.Word) *Var {
	x.a.check(u.a)
	y := x.a.newVar()
	for i := range y.v {
		y.v[i] = op(x.v[i], u.v[i])
	}
	x.a.instr()
	return y
}

// AddSat returns x + u with saturation at MAXINT (the PPA's path-cost
// addition).
func (x *Var) AddSat(u *Var) *Var {
	h := x.a.m.Bits()
	return x.binary(u, func(a, b ppa.Word) ppa.Word { return ppa.SatAdd(a, b, h) })
}

// AddSatConst returns x + w with saturation.
func (x *Var) AddSatConst(w ppa.Word) *Var {
	h := x.a.m.Bits()
	ppa.CheckWord(w, h)
	y := x.a.newVar()
	for i := range y.v {
		y.v[i] = ppa.SatAdd(x.v[i], w, h)
	}
	x.a.instr()
	return y
}

// SubClamp returns x - u clamped below at 0 (monus); MAXINT minus anything
// finite stays MAXINT.
func (x *Var) SubClamp(u *Var) *Var {
	inf := x.a.m.Inf()
	return x.binary(u, func(a, b ppa.Word) ppa.Word {
		if a == inf {
			return inf
		}
		if b >= a {
			return 0
		}
		return a - b
	})
}

// MinWith returns the lanewise minimum of x and u (a local two-operand
// min, not the bus reduction).
func (x *Var) MinWith(u *Var) *Var {
	return x.binary(u, func(a, b ppa.Word) ppa.Word {
		if a < b {
			return a
		}
		return b
	})
}

// MaxWith returns the lanewise maximum of x and u.
func (x *Var) MaxWith(u *Var) *Var {
	return x.binary(u, func(a, b ppa.Word) ppa.Word {
		if a > b {
			return a
		}
		return b
	})
}

// compare builds a Bool from a lanewise predicate.
func (x *Var) compare(u *Var, pred func(a, b ppa.Word) bool) *Bool {
	x.a.check(u.a)
	b := x.a.newBool()
	for i := range b.v {
		b.v[i] = pred(x.v[i], u.v[i])
	}
	x.a.instr()
	return b
}

// Eq returns the parallel logical x == u.
func (x *Var) Eq(u *Var) *Bool { return x.compare(u, func(a, b ppa.Word) bool { return a == b }) }

// Ne returns x != u.
func (x *Var) Ne(u *Var) *Bool { return x.compare(u, func(a, b ppa.Word) bool { return a != b }) }

// Lt returns x < u.
func (x *Var) Lt(u *Var) *Bool { return x.compare(u, func(a, b ppa.Word) bool { return a < b }) }

// Le returns x <= u.
func (x *Var) Le(u *Var) *Bool { return x.compare(u, func(a, b ppa.Word) bool { return a <= b }) }

// compareConst builds a Bool from a lanewise predicate against a scalar.
func (x *Var) compareConst(w ppa.Word, pred func(a, b ppa.Word) bool) *Bool {
	b := x.a.newBool()
	for i := range b.v {
		b.v[i] = pred(x.v[i], w)
	}
	x.a.instr()
	return b
}

// EqConst returns x == w for scalar w.
func (x *Var) EqConst(w ppa.Word) *Bool {
	return x.compareConst(w, func(a, b ppa.Word) bool { return a == b })
}

// NeConst returns x != w.
func (x *Var) NeConst(w ppa.Word) *Bool {
	return x.compareConst(w, func(a, b ppa.Word) bool { return a != b })
}

// LtConst returns x < w.
func (x *Var) LtConst(w ppa.Word) *Bool {
	return x.compareConst(w, func(a, b ppa.Word) bool { return a < b })
}

// BitPlane returns the parallel logical holding bit j of x (PPC's
// bit(x, j)).
func (x *Var) BitPlane(j uint) *Bool {
	if j >= x.a.m.Bits() {
		panic(fmt.Sprintf("par: bit plane %d out of range for %d-bit machine", j, x.a.m.Bits()))
	}
	b := x.a.newBool()
	for i := range b.v {
		b.v[i] = ppa.Bit(x.v[i], j)
	}
	x.a.instr()
	return b
}

// Bool is a parallel logical variable: one bit per PE.
type Bool struct {
	a *Array
	v []bool
}

// Array returns the context the logical belongs to.
func (x *Bool) Array() *Array { return x.a }

// Slice copies the logical out to the host.
func (x *Bool) Slice() []bool { return append([]bool(nil), x.v...) }

// At returns the value held by PE (row, col).
func (x *Bool) At(row, col int) bool { return x.v[row*x.a.N()+col] }

// Copy returns a fresh logical with the same contents.
func (x *Bool) Copy() *Bool {
	y := x.a.newBool()
	copy(y.v, x.v)
	x.a.instr()
	return y
}

// Assign stores u into x where the mask is set.
func (x *Bool) Assign(u *Bool) {
	x.a.check(u.a)
	for i := range x.v {
		if x.a.mask[i] {
			x.v[i] = u.v[i]
		}
	}
	x.a.instr()
}

// AssignConst stores the scalar b into x where the mask is set.
func (x *Bool) AssignConst(b bool) {
	for i := range x.v {
		if x.a.mask[i] {
			x.v[i] = b
		}
	}
	x.a.instr()
}

// And returns x && u.
func (x *Bool) And(u *Bool) *Bool {
	x.a.check(u.a)
	y := x.a.newBool()
	for i := range y.v {
		y.v[i] = x.v[i] && u.v[i]
	}
	x.a.instr()
	return y
}

// Or returns x || u.
func (x *Bool) Or(u *Bool) *Bool {
	x.a.check(u.a)
	y := x.a.newBool()
	for i := range y.v {
		y.v[i] = x.v[i] || u.v[i]
	}
	x.a.instr()
	return y
}

// Not returns !x.
func (x *Bool) Not() *Bool {
	y := x.a.newBool()
	for i := range y.v {
		y.v[i] = !x.v[i]
	}
	x.a.instr()
	return y
}

// Xor returns x != u lanewise.
func (x *Bool) Xor(u *Bool) *Bool {
	x.a.check(u.a)
	y := x.a.newBool()
	for i := range y.v {
		y.v[i] = x.v[i] != u.v[i]
	}
	x.a.instr()
	return y
}

// ToVar converts the logical to a word variable holding 0 or 1.
func (x *Bool) ToVar() *Var {
	y := x.a.newVar()
	for i := range y.v {
		if x.v[i] {
			y.v[i] = 1
		}
	}
	x.a.instr()
	return y
}

// Count returns the number of true lanes (host-side read-back, used by
// instrumentation and tests; charges nothing).
func (x *Bool) Count() int {
	n := 0
	for _, b := range x.v {
		if b {
			n++
		}
	}
	return n
}
