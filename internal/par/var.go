package par

import (
	"fmt"
	"math/bits"

	"ppamcp/internal/ppa"
)

// Var is a parallel h-bit word variable: one copy per PE, row-major.
type Var struct {
	a        *Array
	v        []ppa.Word
	released bool
}

// Array returns the context the variable belongs to.
func (x *Var) Array() *Array { return x.a }

// Release returns the variable's storage to its Array's scratch pool.
// The variable must not be used afterwards. Purely a host-side
// optimization for temporaries in hot loops; it charges nothing and does
// not exist on the machine. Releasing twice panics.
func (x *Var) Release() {
	if x.released {
		panic("par: Var released twice")
	}
	x.released = true
	x.a.freeVars = append(x.a.freeVars, x)
}

// Slice copies the variable out to the host (DMA path; no cycles charged).
func (x *Var) Slice() []ppa.Word {
	return append([]ppa.Word(nil), x.v...)
}

// Words exposes the variable's machine storage (row-major, length N*N)
// without copying. Read-only for callers: it is the hook fused host
// drivers (core's batched sweep) use to consume a resident plane — the
// weight matrix, the coordinate masks — without a DMA round trip. Writing
// through it would bypass the activity mask and the instruction counters.
func (x *Var) Words() []ppa.Word { return x.v }

// Load overwrites the variable with host data (row-major, length N*N),
// ignoring the activity mask: the host->array DMA path, the in-place
// counterpart of Array.FromSlice. It allocates nothing, which is what lets
// a pooled core.Session accept a new weight matrix without rebuilding its
// fabric.
func (x *Var) Load(data []ppa.Word) {
	if len(data) != len(x.v) {
		panic(fmt.Sprintf("par: Load length %d, want %d", len(data), len(x.v)))
	}
	h := x.a.m.Bits()
	for i, w := range data {
		ppa.CheckWord(w, h)
		x.v[i] = w
	}
}

// LoadSparse patches the variable at the given flat (row-major) indices
// with the corresponding values, ignoring the activity mask — the sparse
// host->array DMA path. Where Load re-streams the whole plane, LoadSparse
// moves exactly len(idx) words: a k-edge weight update costs O(k) DMA
// instead of O(N²). Like Load it allocates nothing and charges nothing
// (DMA is off the cost model); idx and vals must have equal length and
// every index must be in [0, N*N).
func (x *Var) LoadSparse(idx []int, vals []ppa.Word) {
	if len(idx) != len(vals) {
		panic(fmt.Sprintf("par: LoadSparse %d indices, %d values", len(idx), len(vals)))
	}
	h := x.a.m.Bits()
	for k, i := range idx {
		if i < 0 || i >= len(x.v) {
			panic(fmt.Sprintf("par: LoadSparse index %d out of range [0,%d)", i, len(x.v)))
		}
		ppa.CheckWord(vals[k], h)
		x.v[i] = vals[k]
	}
}

// LoadRow overwrites one row of the variable with host data (length N),
// ignoring the activity mask: the striped DMA path warm re-solves use to
// seed row d of a solution plane without touching the rest.
func (x *Var) LoadRow(row int, data []ppa.Word) {
	n := x.a.N()
	if row < 0 || row >= n {
		panic(fmt.Sprintf("par: LoadRow row %d out of range [0,%d)", row, n))
	}
	if len(data) != n {
		panic(fmt.Sprintf("par: LoadRow length %d, want %d", len(data), n))
	}
	h := x.a.m.Bits()
	for j, w := range data {
		ppa.CheckWord(w, h)
		x.v[row*n+j] = w
	}
}

// At returns the value held by PE (row, col) (host read-back).
func (x *Var) At(row, col int) ppa.Word {
	return x.v[row*x.a.N()+col]
}

// Copy returns a fresh parallel variable with the same contents
// (one register-move instruction on all PEs).
func (x *Var) Copy() *Var {
	y := x.a.newVar()
	copy(y.v, x.v)
	x.a.instr()
	return y
}

// assignWordsMasked stores src into dst on the lanes where mask is set:
// whole 64-lane blocks move with copy, partial blocks walk their set bits.
func assignWordsMasked(dst, src []ppa.Word, mask *ppa.Bitset) {
	for wi, w := range mask.Words() {
		if w == 0 {
			continue
		}
		base := wi << 6
		if w == ^uint64(0) {
			copy(dst[base:base+64], src[base:base+64])
			continue
		}
		for ; w != 0; w &= w - 1 {
			i := base + bits.TrailingZeros64(w)
			dst[i] = src[i]
		}
	}
}

// assignConstMasked stores the scalar c into dst where mask is set.
func assignConstMasked(dst []ppa.Word, c ppa.Word, mask *ppa.Bitset) {
	for wi, w := range mask.Words() {
		if w == 0 {
			continue
		}
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			dst[base+bits.TrailingZeros64(w)] = c
		}
	}
}

// Assign stores u into x where the activity mask is set (x = u).
func (x *Var) Assign(u *Var) {
	x.a.check(u.a)
	assignWordsMasked(x.v, u.v, x.a.mask)
	x.a.instr()
}

// AssignConst stores the scalar w into x where the mask is set.
func (x *Var) AssignConst(w ppa.Word) {
	ppa.CheckWord(w, x.a.m.Bits())
	assignConstMasked(x.v, w, x.a.mask)
	x.a.instr()
}

// binary applies op lanewise producing a fresh variable (pure expression:
// computed on all PEs, stored to a temporary).
func (x *Var) binary(u *Var, op func(a, b ppa.Word) ppa.Word) *Var {
	x.a.check(u.a)
	y := x.a.newVar()
	for i := range y.v {
		y.v[i] = op(x.v[i], u.v[i])
	}
	x.a.instr()
	return y
}

// AddSat returns x + u with saturation at MAXINT (the PPA's path-cost
// addition). Open-coded rather than routed through binary: it is the
// arithmetic workhorse of the DP inner loop and the per-lane indirect
// call showed up in Solve profiles.
func (x *Var) AddSat(u *Var) *Var {
	x.a.check(u.a)
	inf := x.a.m.Inf()
	y := x.a.newVar()
	for i, a := range x.v {
		s := a + u.v[i] // lanes are in [0, inf], so no int64 overflow
		if s > inf {
			s = inf
		}
		y.v[i] = s
	}
	x.a.instr()
	return y
}

// AddSatConst returns x + w with saturation.
func (x *Var) AddSatConst(w ppa.Word) *Var {
	h := x.a.m.Bits()
	ppa.CheckWord(w, h)
	y := x.a.newVar()
	for i := range y.v {
		y.v[i] = ppa.SatAdd(x.v[i], w, h)
	}
	x.a.instr()
	return y
}

// SubClamp returns x - u clamped below at 0 (monus); MAXINT minus anything
// finite stays MAXINT.
func (x *Var) SubClamp(u *Var) *Var {
	inf := x.a.m.Inf()
	return x.binary(u, func(a, b ppa.Word) ppa.Word {
		if a == inf {
			return inf
		}
		if b >= a {
			return 0
		}
		return a - b
	})
}

// MinWith returns the lanewise minimum of x and u (a local two-operand
// min, not the bus reduction).
func (x *Var) MinWith(u *Var) *Var {
	return x.binary(u, func(a, b ppa.Word) ppa.Word {
		if a < b {
			return a
		}
		return b
	})
}

// MaxWith returns the lanewise maximum of x and u.
func (x *Var) MaxWith(u *Var) *Var {
	return x.binary(u, func(a, b ppa.Word) ppa.Word {
		if a > b {
			return a
		}
		return b
	})
}

// Comparison op codes for compare; the switch sits outside the lane loop
// so each comparison runs as a direct branch-predictable loop instead of
// an indirect predicate call per lane (this showed up in Solve profiles).
const (
	cmpEq = iota
	cmpNe
	cmpLt
	cmpLe
)

// compare builds a Bool from a lanewise comparison, accumulating 64 lanes
// into each packed word.
func (x *Var) compare(u *Var, op int) *Bool {
	x.a.check(u.a)
	b := x.a.newBool()
	words := b.v.Words()
	n := len(x.v)
	for wi := range words {
		base := wi << 6
		lim := n - base
		if lim > 64 {
			lim = 64
		}
		xs, us := x.v[base:base+lim], u.v[base:base+lim]
		var w uint64
		switch op {
		case cmpEq:
			for k, xv := range xs {
				if xv == us[k] {
					w |= 1 << uint(k)
				}
			}
		case cmpNe:
			for k, xv := range xs {
				if xv != us[k] {
					w |= 1 << uint(k)
				}
			}
		case cmpLt:
			for k, xv := range xs {
				if xv < us[k] {
					w |= 1 << uint(k)
				}
			}
		default:
			for k, xv := range xs {
				if xv <= us[k] {
					w |= 1 << uint(k)
				}
			}
		}
		words[wi] = w
	}
	x.a.instr()
	return b
}

// Eq returns the parallel logical x == u.
func (x *Var) Eq(u *Var) *Bool { return x.compare(u, cmpEq) }

// Ne returns x != u.
func (x *Var) Ne(u *Var) *Bool { return x.compare(u, cmpNe) }

// Lt returns x < u.
func (x *Var) Lt(u *Var) *Bool { return x.compare(u, cmpLt) }

// Le returns x <= u.
func (x *Var) Le(u *Var) *Bool { return x.compare(u, cmpLe) }

// compareConst builds a Bool from a lanewise predicate against a scalar.
func (x *Var) compareConst(w ppa.Word, pred func(a, b ppa.Word) bool) *Bool {
	b := x.a.newBool()
	words := b.v.Words()
	n := len(x.v)
	for wi := range words {
		base := wi << 6
		lim := n - base
		if lim > 64 {
			lim = 64
		}
		var acc uint64
		for k := 0; k < lim; k++ {
			if pred(x.v[base+k], w) {
				acc |= 1 << uint(k)
			}
		}
		words[wi] = acc
	}
	x.a.instr()
	return b
}

// EqConst returns x == w for scalar w.
func (x *Var) EqConst(w ppa.Word) *Bool {
	return x.compareConst(w, func(a, b ppa.Word) bool { return a == b })
}

// NeConst returns x != w.
func (x *Var) NeConst(w ppa.Word) *Bool {
	return x.compareConst(w, func(a, b ppa.Word) bool { return a != b })
}

// LtConst returns x < w.
func (x *Var) LtConst(w ppa.Word) *Bool {
	return x.compareConst(w, func(a, b ppa.Word) bool { return a < b })
}

// BitPlane returns the parallel logical holding bit j of x (PPC's
// bit(x, j)), packed 64 lanes per word with a branch-free gather.
func (x *Var) BitPlane(j uint) *Bool {
	if j >= x.a.m.Bits() {
		panic(fmt.Sprintf("par: bit plane %d out of range for %d-bit machine", j, x.a.m.Bits()))
	}
	b := x.a.newBool()
	words := b.v.Words()
	n := len(x.v)
	for wi := range words {
		base := wi << 6
		lim := n - base
		if lim > 64 {
			lim = 64
		}
		var w uint64
		for k := 0; k < lim; k++ {
			w |= uint64(x.v[base+k]>>j&1) << uint(k)
		}
		words[wi] = w
	}
	x.a.instr()
	return b
}

// Bool is a parallel logical variable: one bit per PE, packed 64 lanes
// per host word (ppa.Bitset).
type Bool struct {
	a        *Array
	v        *ppa.Bitset
	released bool
}

// Array returns the context the logical belongs to.
func (x *Bool) Array() *Array { return x.a }

// Release returns the logical's storage to its Array's scratch pool.
// The logical must not be used afterwards. Host-side only; charges
// nothing. Releasing twice panics.
func (x *Bool) Release() {
	if x.released {
		panic("par: Bool released twice")
	}
	x.released = true
	x.a.freeBools = append(x.a.freeBools, x)
}

// Slice copies the logical out to the host.
func (x *Bool) Slice() []bool { return x.v.Bools() }

// Bits exposes the logical's packed lane storage without copying.
// Read-only for callers, like Var.Words: fused host drivers pass a
// resident switch plane straight to the fabric (ppa.Machine.WiredOrBits,
// ChargeBroadcast) without rebuilding it bit by bit.
func (x *Bool) Bits() *ppa.Bitset { return x.v }

// At returns the value held by PE (row, col).
func (x *Bool) At(row, col int) bool { return x.v.Get(row*x.a.N() + col) }

// Copy returns a fresh logical with the same contents.
func (x *Bool) Copy() *Bool {
	y := x.a.newBool()
	y.v.CopyFrom(x.v)
	x.a.instr()
	return y
}

// Assign stores u into x where the mask is set.
func (x *Bool) Assign(u *Bool) {
	x.a.check(u.a)
	xw, uw, mw := x.v.Words(), u.v.Words(), x.a.mask.Words()
	for i, m := range mw {
		xw[i] = xw[i]&^m | uw[i]&m
	}
	x.a.instr()
}

// AssignConst stores the scalar b into x where the mask is set.
func (x *Bool) AssignConst(b bool) {
	xw, mw := x.v.Words(), x.a.mask.Words()
	if b {
		for i, m := range mw {
			xw[i] |= m
		}
	} else {
		for i, m := range mw {
			xw[i] &^= m
		}
	}
	x.a.instr()
}

// And returns x && u.
func (x *Bool) And(u *Bool) *Bool {
	x.a.check(u.a)
	y := x.a.newBool()
	y.v.And(x.v, u.v)
	x.a.instr()
	return y
}

// Or returns x || u.
func (x *Bool) Or(u *Bool) *Bool {
	x.a.check(u.a)
	y := x.a.newBool()
	y.v.Or(x.v, u.v)
	x.a.instr()
	return y
}

// Not returns !x.
func (x *Bool) Not() *Bool {
	y := x.a.newBool()
	y.v.Not(x.v)
	x.a.instr()
	return y
}

// Xor returns x != u lanewise.
func (x *Bool) Xor(u *Bool) *Bool {
	x.a.check(u.a)
	y := x.a.newBool()
	y.v.Xor(x.v, u.v)
	x.a.instr()
	return y
}

// ToVar converts the logical to a word variable holding 0 or 1.
func (x *Bool) ToVar() *Var {
	y := x.a.newVar()
	for wi, w := range x.v.Words() {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			y.v[base+bits.TrailingZeros64(w)] = 1
		}
	}
	x.a.instr()
	return y
}

// Count returns the number of true lanes (host-side read-back, used by
// instrumentation and tests; charges nothing).
func (x *Bool) Count() int { return x.v.Count() }
