package par

import (
	"math/rand"
	"testing"

	"ppamcp/internal/ppa"
)

// This file pins the packed parallel-variable layer (bit-packed logicals,
// packed activity mask, free-list pooling) against a plain per-lane
// reference model: an unpacked []bool / []Word shadow of every live value
// and of the where-mask stack, updated by the textbook lane loops. A
// randomized program — nested where blocks, masked stores, logical and
// arithmetic expressions, bus reductions, interleaved Release calls that
// force pool reuse — must leave the packed and reference states bit-
// identical after every step, with faults injected and worker pools on.

// refCtx is the unpacked shadow interpreter.
type refCtx struct {
	n    int
	mask []bool
	m    *ppa.Machine // mirror fabric: same side, faults; []bool entry points
}

func (r *refCtx) assignWords(dst, src []ppa.Word) {
	for i := range dst {
		if r.mask[i] {
			dst[i] = src[i]
		}
	}
}

func (r *refCtx) assignBools(dst, src []bool) {
	for i := range dst {
		if r.mask[i] {
			dst[i] = src[i]
		}
	}
}

// slot pairs a live packed value with its reference shadow.
type boolSlot struct {
	b   *Bool
	ref []bool
}

type varSlot struct {
	v   *Var
	ref []ppa.Word
}

func checkBool(t *testing.T, step int, b *Bool, ref []bool) {
	t.Helper()
	got := b.Slice()
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("step %d: packed Bool lane %d = %v, reference %v", step, i, got[i], ref[i])
		}
	}
}

func checkVar(t *testing.T, step int, v *Var, ref []ppa.Word) {
	t.Helper()
	got := v.Slice()
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("step %d: packed Var lane %d = %d, reference %d", step, i, got[i], ref[i])
		}
	}
}

func TestPackedParMatchesReferenceLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	sides := []int{1, 2, 3, 5, 8, 13, 16, 64}
	for trial := 0; trial < 40; trial++ {
		n := sides[rng.Intn(len(sides))]
		size := n * n
		h := uint(4 + rng.Intn(6))
		inf := ppa.Infinity(h)
		workers := 1 + rng.Intn(4)
		m := ppa.New(n, h, ppa.WithWorkers(workers))
		ref := &refCtx{n: n, mask: make([]bool, size), m: ppa.New(n, h)}
		for i := range ref.mask {
			ref.mask[i] = true
		}
		if n > 2 && rng.Intn(2) == 0 {
			for f := 1 + rng.Intn(3); f > 0; f-- {
				pe, kind := rng.Intn(size), ppa.FaultKind(rng.Intn(2))
				m.InjectFault(pe, kind)
				ref.m.InjectFault(pe, kind)
			}
		}
		a := New(m)

		randWords := func() []ppa.Word {
			w := make([]ppa.Word, size)
			for i := range w {
				w[i] = ppa.Word(rng.Int63n(int64(inf) + 1))
			}
			return w
		}
		randRefBools := func(p float64) []bool {
			b := make([]bool, size)
			for i := range b {
				b[i] = rng.Float64() < p
			}
			return b
		}

		bools := make([]boolSlot, 4)
		vars := make([]varSlot, 4)
		for i := range bools {
			rb := randRefBools(0.4)
			bools[i] = boolSlot{a.FromBools(rb), rb}
		}
		for i := range vars {
			rw := randWords()
			vars[i] = varSlot{a.FromSlice(rw), append([]ppa.Word(nil), rw...)}
		}

		// replace retires a slot's packed value through the pool so later
		// allocations must reuse (and correctly clear) recycled storage.
		replaceBool := func(k int, b *Bool, refv []bool) {
			bools[k].b.Release()
			bools[k] = boolSlot{b, refv}
		}
		replaceVar := func(k int, v *Var, refv []ppa.Word) {
			vars[k].v.Release()
			vars[k] = varSlot{v, refv}
		}

		var step func(depth int, budget *int)
		step = func(depth int, budget *int) {
			for *budget > 0 {
				*budget--
				x := &bools[rng.Intn(len(bools))]
				y := &bools[rng.Intn(len(bools))]
				u := &vars[rng.Intn(len(vars))]
				w := &vars[rng.Intn(len(vars))]
				k := rng.Intn(len(bools))
				kv := rng.Intn(len(vars))
				switch op := rng.Intn(14); op {
				case 0: // logical expressions
					refv := make([]bool, size)
					var got *Bool
					switch rng.Intn(4) {
					case 0:
						got = x.b.And(y.b)
						for i := range refv {
							refv[i] = x.ref[i] && y.ref[i]
						}
					case 1:
						got = x.b.Or(y.b)
						for i := range refv {
							refv[i] = x.ref[i] || y.ref[i]
						}
					case 2:
						got = x.b.Xor(y.b)
						for i := range refv {
							refv[i] = x.ref[i] != y.ref[i]
						}
					default:
						got = x.b.Not()
						for i := range refv {
							refv[i] = !x.ref[i]
						}
					}
					checkBool(t, *budget, got, refv)
					replaceBool(k, got, refv)
				case 1: // masked Bool assign
					x.b.Assign(y.b)
					ref.assignBools(x.ref, y.ref)
					checkBool(t, *budget, x.b, x.ref)
				case 2: // masked Bool constant store
					c := rng.Intn(2) == 0
					x.b.AssignConst(c)
					for i := range x.ref {
						if ref.mask[i] {
							x.ref[i] = c
						}
					}
					checkBool(t, *budget, x.b, x.ref)
				case 3: // masked Var assign / constant store
					if rng.Intn(2) == 0 {
						u.v.Assign(w.v)
						ref.assignWords(u.ref, w.ref)
					} else {
						c := ppa.Word(rng.Int63n(int64(inf) + 1))
						u.v.AssignConst(c)
						for i := range u.ref {
							if ref.mask[i] {
								u.ref[i] = c
							}
						}
					}
					checkVar(t, *budget, u.v, u.ref)
				case 4: // comparisons
					refv := make([]bool, size)
					var got *Bool
					switch rng.Intn(3) {
					case 0:
						got = u.v.Eq(w.v)
						for i := range refv {
							refv[i] = u.ref[i] == w.ref[i]
						}
					case 1:
						got = u.v.Lt(w.v)
						for i := range refv {
							refv[i] = u.ref[i] < w.ref[i]
						}
					default:
						c := ppa.Word(rng.Int63n(int64(inf) + 1))
						got = u.v.LtConst(c)
						for i := range refv {
							refv[i] = u.ref[i] < c
						}
					}
					checkBool(t, *budget, got, refv)
					replaceBool(k, got, refv)
				case 5: // bit plane
					j := uint(rng.Intn(int(h)))
					got := u.v.BitPlane(j)
					refv := make([]bool, size)
					for i := range refv {
						refv[i] = u.ref[i]>>j&1 == 1
					}
					checkBool(t, *budget, got, refv)
					replaceBool(k, got, refv)
				case 6: // ToVar
					got := x.b.ToVar()
					refv := make([]ppa.Word, size)
					for i := range refv {
						if x.ref[i] {
							refv[i] = 1
						}
					}
					checkVar(t, *budget, got, refv)
					replaceVar(kv, got, refv)
				case 7: // arithmetic expression
					got := u.v.AddSat(w.v)
					refv := make([]ppa.Word, size)
					for i := range refv {
						refv[i] = ppa.SatAdd(u.ref[i], w.ref[i], h)
					}
					checkVar(t, *budget, got, refv)
					replaceVar(kv, got, refv)
				case 8: // wired-OR bus reduction
					d := ppa.Direction(rng.Intn(4))
					got := a.Or(x.b, d, y.b)
					refv := make([]bool, size)
					ref.m.WiredOr(d, y.ref, x.ref, refv)
					checkBool(t, *budget, got, refv)
					replaceBool(k, got, refv)
				case 9: // segmented word broadcast
					d := ppa.Direction(rng.Intn(4))
					got := a.Broadcast(u.v, d, x.b)
					refv := make([]ppa.Word, size)
					ref.m.Broadcast(d, x.ref, u.ref, refv)
					checkVar(t, *budget, got, refv)
					replaceVar(kv, got, refv)
				case 10: // masked BroadcastInto
					d := ppa.Direction(rng.Intn(4))
					a.BroadcastInto(u.v, w.v, d, x.b)
					tmp := append([]ppa.Word(nil), u.ref...)
					ref.m.Broadcast(d, x.ref, w.ref, tmp)
					ref.assignWords(u.ref, tmp)
					checkVar(t, *budget, u.v, u.ref)
				case 11: // global-OR line
					want := false
					for _, p := range x.ref {
						want = want || p
					}
					if got := a.Any(x.b); got != want {
						t.Fatalf("step %d: Any = %v, reference %v", *budget, got, want)
					}
				case 12: // nested where / elsewhere
					if depth >= 3 {
						continue
					}
					saved := append([]bool(nil), ref.mask...)
					// Private copy of the condition: inner ops may release
					// and recycle the slot's Bool, but a live where
					// condition must stay untouched for the elsewhere arm.
					cb := x.b.Copy()
					cond := append([]bool(nil), x.ref...)
					inner := rng.Intn(3) + 1
					a.WhereElse(cb, func() {
						for i := range ref.mask {
							ref.mask[i] = saved[i] && cond[i]
						}
						step(depth+1, &inner)
					}, func() {
						for i := range ref.mask {
							ref.mask[i] = saved[i] && !cond[i]
						}
						inner2 := rng.Intn(3) + 1
						step(depth+1, &inner2)
					})
					cb.Release()
					copy(ref.mask, saved)
				default: // pool churn: release and reallocate in place
					rw := randWords()
					replaceVar(kv, a.FromSlice(rw), append([]ppa.Word(nil), rw...))
					rb := randRefBools(0.3)
					replaceBool(k, a.FromBools(rb), rb)
				}
			}
		}
		budget := 60
		step(0, &budget)

		for i := range bools {
			checkBool(t, -1, bools[i].b, bools[i].ref)
		}
		for i := range vars {
			checkVar(t, -1, vars[i].v, vars[i].ref)
		}
	}
}

// TestReleaseTwicePanics pins the pool's double-free guard.
func TestReleaseTwicePanics(t *testing.T) {
	a := New(ppa.New(4, 8))
	b := a.False()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	b.Release()
}

// TestPoolReuseIsClean pins that recycled storage comes back zeroed: a
// released all-ones logical and a released saturated variable must not
// leak into the next allocation.
func TestPoolReuseIsClean(t *testing.T) {
	a := New(ppa.New(4, 8))
	b := a.True()
	v := a.Inf()
	b.Release()
	v.Release()
	nb := a.False()
	nv := a.Zeros()
	for i := 0; i < 16; i++ {
		if nb.At(i/4, i%4) {
			t.Fatalf("recycled Bool lane %d not cleared", i)
		}
		if nv.At(i/4, i%4) != 0 {
			t.Fatalf("recycled Var lane %d not cleared", i)
		}
	}
}
