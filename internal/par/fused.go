package par

import "ppamcp/internal/ppa"

// This file is the fused bit-sliced fast path for the bit-serial
// reductions Min/SelectedMin/Max/SelectedMax.
//
// The interpretive path walks each of the h bit planes through six
// parallel instructions (BitPlane gather → Not → And(enable) → wired-OR →
// And → masked withdraw), each a full traversal of a freshly allocated
// temporary. The fused path first transposes src once into h packed bit
// planes (64x64 bit-matrix tiles, one memory traversal for all planes)
// and then runs each plane as two short word loops around the same
// WiredOrBits fabric transaction.
//
// The fusion is host-side only: it issues exactly the transactions the
// reference path issues, in the same order, against the same fabric — so
// fault semantics, observer event streams and every Metrics counter
// (including Instructions and PEOps, which are charged explicitly to
// mirror the reference pipeline) are identical. That holds for the plain
// machine and for virtualized fabrics alike (virt's packed engine
// likewise shadows its lane path one-for-one). fused_test.go and the core
// fused-parity tests pin this with property tests; the interpretive path
// remains the oracle and is the only path under injected faults and for
// the switch-only OR model.

// fusedOn returns the fabric the fused kernels may run on, or nil when
// the interpretive reference path must be used: fused disabled, a foreign
// fabric that cannot report fault state, or injected switch faults (the
// fault model is defined by the reference ring walk). Both the plain
// machine and virtualized fabrics qualify.
func (a *Array) fusedOn() ppa.Fabric {
	if !a.fused {
		return nil
	}
	f, ok := a.m.(interface{ Faulty() bool })
	if !ok || f.Faulty() {
		return nil
	}
	return a.m
}

// SetFused enables (or disables) the fused bit-sliced reduction kernels.
// Results and cost-model counters are identical either way; this selects
// host execution strategy only. Off by default so the plain Array stays
// the reference semantics; core.Session turns it on.
func (a *Array) SetFused(on bool) { a.fused = on }

// Fused reports whether the fused kernels are enabled.
func (a *Array) Fused() bool { return a.fused }

// SlicePlanes transposes the h bit planes of src into packed row-major
// planes: plane j occupies planes[j*wpp : (j+1)*wpp] with 64 lanes per
// word, the same lane order as a ppa.Bitset; wpp is the word count per
// plane, (len(src)+63)/64. Exported for fused host drivers outside the
// package (core's batched sweep slices constant coordinate planes once
// and caches them across a whole sweep).
func SlicePlanes(planes []uint64, src []ppa.Word, h, wpp int) {
	slicePlanes(planes, src, h, wpp)
}

// slicePlanes transposes the h bit planes of src into packed row-major
// planes: plane j occupies planes[j*wpp : (j+1)*wpp], 64 lanes per word,
// same lane order as a Bitset. One traversal of src covers all planes.
func slicePlanes(planes []uint64, src []ppa.Word, h, wpp int) {
	var tile [64]uint64
	for b := 0; b < wpp; b++ {
		base := b << 6
		lim := len(src) - base
		if lim > 64 {
			lim = 64
		}
		for k := 0; k < lim; k++ {
			tile[k] = uint64(src[base+k])
		}
		for k := lim; k < 64; k++ {
			tile[k] = 0
		}
		ppa.Transpose64(&tile)
		for j := 0; j < h; j++ {
			planes[j*wpp+b] = tile[j]
		}
	}
}

// fusedReduce is the bit-sliced minimum (min=true) or maximum over bus
// clusters. sel == nil means all PEs compete (Min/Max); otherwise only
// the PEs where sel holds (SelectedMin/SelectedMax), and sel itself is
// never written. The instruction charges shadow the reference pipeline
// one-for-one; see the file comment.
func (a *Array) fusedReduce(m ppa.Fabric, src *Var, orientation ppa.Direction, open, sel *Bool, min bool) *Var {
	h := int(a.m.Bits())
	size := a.size()
	wpp := (size + 63) >> 6
	if cap(a.planeBuf) < h*wpp {
		a.planeBuf = make([]uint64, h*wpp)
	}
	planes := a.planeBuf[:h*wpp]
	slicePlanes(planes, src.v, h, wpp)
	for j := 0; j < h; j++ {
		a.instr() // the reference path's per-plane BitPlane gather
	}
	var enable *Bool
	if sel == nil {
		enable = a.True()
	} else {
		enable = sel.Copy()
	}
	drive := a.getBits()
	ew, dw, mw := enable.v.Words(), drive.Words(), a.mask.Words()
	for j := h - 1; j >= 0; j-- {
		pw := planes[j*wpp : (j+1)*wpp]
		// Competitors drive their losing bit value onto the cluster wire
		// (a 0 for minimum, a 1 for maximum)...
		if min {
			for k, e := range ew {
				dw[k] = ^pw[k] & e
			}
		} else {
			for k, e := range ew {
				dw[k] = pw[k] & e
			}
		}
		a.instr()
		a.instr() // Not + And(enable)
		m.WiredOrBits(orientation, open.v, drive, drive)
		// ...and every competitor on a cluster where that value was seen
		// withdraws if it holds the other one (masked store).
		if min {
			for k, d := range dw {
				ew[k] &^= mw[k] & d & pw[k]
			}
		} else {
			for k, d := range dw {
				ew[k] &^= mw[k] & d &^ pw[k]
			}
		}
		a.instr()
		a.instr() // And + masked withdraw
	}
	a.putBits(drive)
	// Statements 11-13, verbatim from the reference path: survivors send
	// their value upstream to the cluster heads, the heads spread it.
	result := src.Copy()
	a.Where(open, func() {
		a.BroadcastInto(result, src, orientation.Opposite(), enable)
	})
	enable.Release()
	out := a.Broadcast(result, orientation, open)
	result.Release()
	return out
}
