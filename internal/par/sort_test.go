package par

import (
	"math/rand"
	"sort"
	"testing"

	"ppamcp/internal/ppa"
)

func TestRankRowsSimple(t *testing.T) {
	a := ctx(4, 8)
	src := a.FromSlice([]ppa.Word{
		30, 10, 40, 20,
		5, 5, 5, 5, // all ties: ranks follow column order
		9, 8, 7, 6,
		0, 255, 0, 255, // pairwise ties
	})
	got := a.RankRows(src).Slice()
	want := []ppa.Word{
		2, 0, 3, 1,
		0, 1, 2, 3,
		3, 2, 1, 0,
		0, 2, 1, 3,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rank[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRankRowsIsPermutationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(9)
		a := ctx(n, 10)
		flat := make([]ppa.Word, n*n)
		for i := range flat {
			flat[i] = ppa.Word(rng.Intn(16)) // many ties
		}
		ranks := a.RankRows(a.FromSlice(flat)).Slice()
		for r := 0; r < n; r++ {
			seen := make([]bool, n)
			for c := 0; c < n; c++ {
				rk := int(ranks[r*n+c])
				if rk < 0 || rk >= n || seen[rk] {
					t.Fatalf("trial %d row %d: ranks %v are not a permutation", trial, r, ranks[r*n:r*n+n])
				}
				seen[rk] = true
			}
		}
	}
}

func TestSortRowsMatchesHostSort(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(9)
		h := uint(5 + rng.Intn(7))
		a := ctx(n, h)
		flat := make([]ppa.Word, n*n)
		for i := range flat {
			flat[i] = ppa.Word(rng.Int63n(int64(ppa.Infinity(h)) + 1))
		}
		got := a.SortRows(a.FromSlice(flat)).Slice()
		for r := 0; r < n; r++ {
			want := append([]ppa.Word(nil), flat[r*n:r*n+n]...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for c := 0; c < n; c++ {
				if got[r*n+c] != want[c] {
					t.Fatalf("trial %d row %d: sorted %v, want %v", trial, r,
						got[r*n:r*n+n], want)
				}
			}
		}
	}
}

func TestSortRowsCost(t *testing.T) {
	const n = 6
	a := ctx(n, 8)
	src := a.Zeros()
	before := a.Machine().Metrics()
	a.SortRows(src)
	d := a.Machine().Metrics().Sub(before)
	if d.BusCycles != 2*n {
		t.Errorf("SortRows bus cycles = %d, want %d", d.BusCycles, 2*n)
	}
	if d.WiredOrCycles != 0 || d.ShiftSteps != 0 {
		t.Errorf("SortRows used foreign fabric: %v", d)
	}
}
