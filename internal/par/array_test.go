package par

import (
	"reflect"
	"testing"

	"ppamcp/internal/ppa"
)

func ctx(n int, h uint) *Array { return New(ppa.New(n, h)) }

func TestRowColCoordinates(t *testing.T) {
	a := ctx(4, 8)
	row, col := a.Row(), a.Col()
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if row.At(r, c) != ppa.Word(r) || col.At(r, c) != ppa.Word(c) {
				t.Errorf("coords at (%d,%d) = (%d,%d)", r, c, row.At(r, c), col.At(r, c))
			}
		}
	}
}

func TestLitInfZerosTrueFalse(t *testing.T) {
	a := ctx(3, 8)
	if got := a.Lit(42).At(1, 2); got != 42 {
		t.Errorf("Lit = %d", got)
	}
	if got := a.Inf().At(0, 0); got != 255 {
		t.Errorf("Inf = %d", got)
	}
	if got := a.Zeros().At(2, 2); got != 0 {
		t.Errorf("Zeros = %d", got)
	}
	if !a.True().At(1, 1) || a.False().At(1, 1) {
		t.Error("True/False wrong")
	}
}

func TestLitRejectsUnrepresentable(t *testing.T) {
	a := ctx(3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Lit(16) on 4-bit machine did not panic")
		}
	}()
	a.Lit(16)
}

func TestFromSliceRoundTrip(t *testing.T) {
	a := ctx(2, 8)
	in := []ppa.Word{1, 2, 3, 4}
	v := a.FromSlice(in)
	if got := v.Slice(); !reflect.DeepEqual(got, in) {
		t.Errorf("round trip = %v", got)
	}
	// Slice must be a copy.
	v.Slice()[0] = 99
	if v.At(0, 0) != 1 {
		t.Error("Slice aliases internal storage")
	}
	bs := a.FromBools([]bool{true, false, false, true})
	if !bs.At(0, 0) || bs.At(0, 1) || bs.Count() != 2 {
		t.Error("FromBools wrong")
	}
}

func TestFromSliceLengthPanics(t *testing.T) {
	a := ctx(2, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("short FromSlice did not panic")
		}
	}()
	a.FromSlice([]ppa.Word{1})
}

func TestWhereMasksStores(t *testing.T) {
	a := ctx(4, 8)
	v := a.Zeros()
	diag := a.Row().Eq(a.Col())
	a.Where(diag, func() {
		v.AssignConst(7)
	})
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := ppa.Word(0)
			if r == c {
				want = 7
			}
			if v.At(r, c) != want {
				t.Errorf("v[%d,%d] = %d, want %d", r, c, v.At(r, c), want)
			}
		}
	}
}

func TestWhereElse(t *testing.T) {
	a := ctx(3, 8)
	v := a.Zeros()
	topRow := a.Row().EqConst(0)
	a.WhereElse(topRow,
		func() { v.AssignConst(1) },
		func() { v.AssignConst(2) })
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := ppa.Word(2)
			if r == 0 {
				want = 1
			}
			if v.At(r, c) != want {
				t.Errorf("v[%d,%d] = %d, want %d", r, c, v.At(r, c), want)
			}
		}
	}
}

func TestWhereNesting(t *testing.T) {
	a := ctx(4, 8)
	v := a.Zeros()
	a.Where(a.Row().LtConst(2), func() {
		a.Where(a.Col().LtConst(2), func() {
			v.AssignConst(9) // only the 2x2 top-left block
		})
	})
	count := 0
	for _, w := range v.Slice() {
		if w == 9 {
			count++
		}
	}
	if count != 4 {
		t.Errorf("nested where wrote %d lanes, want 4", count)
	}
	// Mask restored after Where.
	if a.ActiveCount() != 16 {
		t.Errorf("mask not restored: %d active", a.ActiveCount())
	}
}

func TestWhereRestoresMaskOnEmptySelection(t *testing.T) {
	a := ctx(2, 8)
	v := a.Zeros()
	a.Where(a.False(), func() { v.AssignConst(5) })
	for _, w := range v.Slice() {
		if w != 0 {
			t.Fatal("store under empty mask leaked")
		}
	}
}

func TestMixingContextsPanics(t *testing.T) {
	a, b := ctx(2, 8), ctx(2, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-context op did not panic")
		}
	}()
	a.Zeros().Assign(b.Zeros())
}

func TestArithmetic(t *testing.T) {
	a := ctx(2, 8)
	x := a.FromSlice([]ppa.Word{1, 2, 254, 255})
	y := a.FromSlice([]ppa.Word{1, 3, 10, 1})
	sum := x.AddSat(y)
	if got, want := sum.Slice(), []ppa.Word{2, 5, 255, 255}; !reflect.DeepEqual(got, want) {
		t.Errorf("AddSat = %v, want %v", got, want)
	}
	if got := x.AddSatConst(250).Slice(); !reflect.DeepEqual(got, []ppa.Word{251, 252, 255, 255}) {
		t.Errorf("AddSatConst = %v", got)
	}
	if got := x.MinWith(y).Slice(); !reflect.DeepEqual(got, []ppa.Word{1, 2, 10, 1}) {
		t.Errorf("MinWith = %v", got)
	}
	if got := x.MaxWith(y).Slice(); !reflect.DeepEqual(got, []ppa.Word{1, 3, 254, 255}) {
		t.Errorf("MaxWith = %v", got)
	}
	diff := x.SubClamp(y)
	if got, want := diff.Slice(), []ppa.Word{0, 0, 244, 255}; !reflect.DeepEqual(got, want) {
		t.Errorf("SubClamp = %v, want %v", got, want)
	}
}

func TestComparisons(t *testing.T) {
	a := ctx(2, 8)
	x := a.FromSlice([]ppa.Word{1, 5, 5, 9})
	y := a.FromSlice([]ppa.Word{2, 5, 4, 9})
	if got := x.Eq(y).Slice(); !reflect.DeepEqual(got, []bool{false, true, false, true}) {
		t.Errorf("Eq = %v", got)
	}
	if got := x.Ne(y).Slice(); !reflect.DeepEqual(got, []bool{true, false, true, false}) {
		t.Errorf("Ne = %v", got)
	}
	if got := x.Lt(y).Slice(); !reflect.DeepEqual(got, []bool{true, false, false, false}) {
		t.Errorf("Lt = %v", got)
	}
	if got := x.Le(y).Slice(); !reflect.DeepEqual(got, []bool{true, true, false, true}) {
		t.Errorf("Le = %v", got)
	}
	if got := x.EqConst(5).Slice(); !reflect.DeepEqual(got, []bool{false, true, true, false}) {
		t.Errorf("EqConst = %v", got)
	}
	if got := x.NeConst(5).Slice(); !reflect.DeepEqual(got, []bool{true, false, false, true}) {
		t.Errorf("NeConst = %v", got)
	}
	if got := x.LtConst(5).Slice(); !reflect.DeepEqual(got, []bool{true, false, false, false}) {
		t.Errorf("LtConst = %v", got)
	}
}

func TestBoolOps(t *testing.T) {
	a := ctx(2, 8)
	x := a.FromBools([]bool{true, true, false, false})
	y := a.FromBools([]bool{true, false, true, false})
	if got := x.And(y).Slice(); !reflect.DeepEqual(got, []bool{true, false, false, false}) {
		t.Errorf("And = %v", got)
	}
	if got := x.Or(y).Slice(); !reflect.DeepEqual(got, []bool{true, true, true, false}) {
		t.Errorf("Or = %v", got)
	}
	if got := x.Not().Slice(); !reflect.DeepEqual(got, []bool{false, false, true, true}) {
		t.Errorf("Not = %v", got)
	}
	if got := x.Xor(y).Slice(); !reflect.DeepEqual(got, []bool{false, true, true, false}) {
		t.Errorf("Xor = %v", got)
	}
	if got := x.ToVar().Slice(); !reflect.DeepEqual(got, []ppa.Word{1, 1, 0, 0}) {
		t.Errorf("ToVar = %v", got)
	}
}

func TestBitPlane(t *testing.T) {
	a := ctx(2, 4)
	x := a.FromSlice([]ppa.Word{0b0000, 0b0101, 0b1010, 0b1111})
	if got := x.BitPlane(0).Slice(); !reflect.DeepEqual(got, []bool{false, true, false, true}) {
		t.Errorf("bit 0 = %v", got)
	}
	if got := x.BitPlane(3).Slice(); !reflect.DeepEqual(got, []bool{false, false, true, true}) {
		t.Errorf("bit 3 = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BitPlane(4) on 4-bit machine did not panic")
		}
	}()
	x.BitPlane(4)
}

func TestCopyIndependence(t *testing.T) {
	a := ctx(2, 8)
	x := a.FromSlice([]ppa.Word{1, 2, 3, 4})
	y := x.Copy()
	y.AssignConst(0)
	if !reflect.DeepEqual(x.Slice(), []ppa.Word{1, 2, 3, 4}) {
		t.Error("Copy shares storage")
	}
	b := a.FromBools([]bool{true, false, true, false})
	c := b.Copy()
	c.AssignConst(false)
	if b.Count() != 2 {
		t.Error("Bool Copy shares storage")
	}
}

func TestAssignRespectsMaskForBool(t *testing.T) {
	a := ctx(2, 8)
	b := a.False()
	a.Where(a.Col().EqConst(0), func() {
		b.AssignConst(true)
	})
	if got := b.Slice(); !reflect.DeepEqual(got, []bool{true, false, true, false}) {
		t.Errorf("masked bool assign = %v", got)
	}
	src := a.True()
	a.Where(a.Row().EqConst(0), func() {
		b.Assign(src)
	})
	if got := b.Slice(); !reflect.DeepEqual(got, []bool{true, true, true, false}) {
		t.Errorf("masked bool Assign = %v", got)
	}
}

func TestActiveAccessors(t *testing.T) {
	a := ctx(2, 8)
	if a.ActiveCount() != 4 || !a.Active(0) {
		t.Error("initial mask not all-active")
	}
	a.Where(a.Row().EqConst(0), func() {
		if a.ActiveCount() != 2 || !a.Active(0) || a.Active(2) {
			t.Error("narrowed mask wrong")
		}
	})
	if a.Machine() == nil || a.N() != 2 {
		t.Error("accessors broken")
	}
}
