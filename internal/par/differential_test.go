package par

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/ppa"
	"ppamcp/internal/virt"
)

// opScript is a randomly generated straight-line program over the par
// API. Running the same script on different fabrics (serial machine,
// worker-pool machine, block-mapped virtual machine) must produce
// identical variable contents — a differential fuzz harness tying the
// three fabric implementations together through the full programming
// layer.
type opScript struct {
	seed  int64
	n     int
	h     uint
	steps int
}

// run executes the script on fabric m and returns the final contents of
// its two working variables.
func (s opScript) run(m ppa.Fabric) ([]ppa.Word, []bool) {
	rng := rand.New(rand.NewSource(s.seed))
	a := New(m)
	size := s.n * s.n
	initial := make([]ppa.Word, size)
	for i := range initial {
		initial[i] = ppa.Word(rng.Int63n(int64(ppa.Infinity(s.h)) + 1))
	}
	v := a.FromSlice(initial)
	maskData := make([]bool, size)
	for i := range maskData {
		maskData[i] = rng.Intn(2) == 0
	}
	b := a.FromBools(maskData)

	randDir := func() ppa.Direction { return ppa.Direction(rng.Intn(4)) }
	// Heads: one guaranteed per ring of a chosen direction, plus noise.
	randHeads := func(d ppa.Direction) *Bool {
		heads := make([]bool, size)
		for ring := 0; ring < s.n; ring++ {
			k := rng.Intn(s.n)
			if d.Horizontal() {
				heads[ring*s.n+k] = true
			} else {
				heads[k*s.n+ring] = true
			}
		}
		for i := range heads {
			if rng.Intn(6) == 0 {
				heads[i] = true
			}
		}
		return a.FromBools(heads)
	}

	for step := 0; step < s.steps; step++ {
		switch rng.Intn(10) {
		case 0:
			v = a.Shift(v, randDir())
		case 1:
			d := randDir()
			v = a.Broadcast(v, d, randHeads(d))
		case 2:
			d := randDir()
			b = a.Or(b, d, randHeads(d))
		case 3:
			d := randDir()
			v = a.Min(v, d, randHeads(d))
		case 4:
			d := randDir()
			v = a.Max(v, d, randHeads(d))
		case 5:
			d := randDir()
			v = a.SelectedMin(v, d, randHeads(d), b)
		case 6:
			w := ppa.Word(rng.Int63n(int64(ppa.Infinity(s.h)) + 1))
			a.Where(b, func() {
				v.AssignConst(w)
			})
		case 7:
			v = v.AddSatConst(ppa.Word(rng.Intn(4)))
		case 8:
			b = v.BitPlane(uint(rng.Intn(int(s.h))))
		case 9:
			d := randDir()
			b = a.FirstSet(b, d, randHeads(d))
		}
	}
	return v.Slice(), b.Slice()
}

func TestDifferentialFabrics(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		// Sides with several block factors available.
		n := []int{4, 6, 8, 12}[rng.Intn(4)]
		script := opScript{
			seed:  rng.Int63(),
			n:     n,
			h:     uint(5 + rng.Intn(6)),
			steps: 4 + rng.Intn(10),
		}
		refV, refB := script.run(ppa.New(n, script.h))

		workersV, workersB := script.run(ppa.New(n, script.h, ppa.WithWorkers(4)))
		if !reflect.DeepEqual(refV, workersV) || !reflect.DeepEqual(refB, workersB) {
			t.Fatalf("trial %d: worker-pool fabric diverged (script %+v)", trial, script)
		}

		for phys := 1; phys <= n; phys++ {
			if n%phys != 0 || phys == n {
				continue
			}
			vm, err := virt.New(n, phys, script.h)
			if err != nil {
				t.Fatal(err)
			}
			gotV, gotB := script.run(vm)
			if !reflect.DeepEqual(refV, gotV) || !reflect.DeepEqual(refB, gotB) {
				t.Fatalf("trial %d: virtual fabric (phys=%d) diverged (script %+v)",
					trial, phys, script)
			}
		}
	}
}
