package par

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/ppa"
)

func TestBroadcastExpression(t *testing.T) {
	a := ctx(4, 8)
	// Row 1 is Open; broadcasting South sends row 1 down every column.
	src := a.Zeros()
	a.Where(a.Row().EqConst(1), func() {
		// Store column-dependent data in row 1.
		src.Assign(a.Col().AddSatConst(10))
	})
	got := a.Broadcast(src, ppa.South, a.Row().EqConst(1))
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if got.At(r, c) != ppa.Word(10+c) {
				t.Errorf("bcast[%d,%d] = %d, want %d", r, c, got.At(r, c), 10+c)
			}
		}
	}
}

func TestBroadcastIntoKeepsFloatingLanesAndMask(t *testing.T) {
	a := ctx(3, 8)
	dst := a.Lit(5)
	src := a.Lit(9)
	// No Open PEs at all: the bus floats everywhere; dst unchanged.
	a.BroadcastInto(dst, src, ppa.East, a.False())
	for _, w := range dst.Slice() {
		if w != 5 {
			t.Fatalf("floating BroadcastInto changed dst: %v", dst.Slice())
		}
	}
	// Open col 0, but mask limits stores to row 0.
	a.Where(a.Row().EqConst(0), func() {
		a.BroadcastInto(dst, src, ppa.East, a.Col().EqConst(0))
	})
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := ppa.Word(5)
			if r == 0 {
				want = 9
			}
			if dst.At(r, c) != want {
				t.Errorf("dst[%d,%d] = %d, want %d", r, c, dst.At(r, c), want)
			}
		}
	}
}

func TestBroadcastBool(t *testing.T) {
	a := ctx(3, 8)
	src := a.False()
	a.Where(a.Col().EqConst(0).And(a.Row().EqConst(1)), func() {
		src.AssignConst(true)
	})
	got := a.BroadcastBool(src, ppa.East, a.Col().EqConst(0))
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if got.At(r, c) != (r == 1) {
				t.Errorf("bcastBool[%d,%d] = %v", r, c, got.At(r, c))
			}
		}
	}
}

func TestOrWiredReduction(t *testing.T) {
	a := ctx(4, 8)
	drive := a.False()
	a.Where(a.Row().EqConst(2).And(a.Col().EqConst(3)), func() {
		drive.AssignConst(true)
	})
	// Whole-row clusters headed at col 0, direction East.
	got := a.Or(drive, ppa.East, a.Col().EqConst(0))
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if got.At(r, c) != (r == 2) {
				t.Errorf("or[%d,%d] = %v", r, c, got.At(r, c))
			}
		}
	}
}

func TestShiftVarAndBool(t *testing.T) {
	a := ctx(3, 8)
	v := a.Col()
	e := a.Shift(v, ppa.East)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := ppa.Word((c + 2) % 3)
			if e.At(r, c) != want {
				t.Errorf("shift[%d,%d] = %d, want %d", r, c, e.At(r, c), want)
			}
		}
	}
	b := a.Col().EqConst(0)
	s := a.ShiftBool(b, ppa.East)
	for r := 0; r < 3; r++ {
		if !s.At(r, 1) || s.At(r, 0) || s.At(r, 2) {
			t.Errorf("shiftBool row %d wrong: %v %v %v", r, s.At(r, 0), s.At(r, 1), s.At(r, 2))
		}
	}
}

func TestAnyNone(t *testing.T) {
	a := ctx(3, 8)
	b := a.False()
	if a.Any(b) || !a.None(b) {
		t.Error("Any(all-false) wrong")
	}
	a.Where(a.Row().EqConst(2), func() { b.AssignConst(true) })
	if !a.Any(b) || a.None(b) {
		t.Error("Any(some-true) wrong")
	}
}

func TestMinWholeRow(t *testing.T) {
	a := ctx(4, 8)
	rows := [][]ppa.Word{
		{7, 3, 9, 5},
		{255, 255, 255, 255},
		{0, 1, 2, 3},
		{200, 100, 100, 201},
	}
	flat := make([]ppa.Word, 0, 16)
	for _, r := range rows {
		flat = append(flat, r...)
	}
	src := a.FromSlice(flat)
	// The MCP configuration: whole-row clusters, head at col n-1, flow West.
	got := a.Min(src, ppa.West, a.Col().EqConst(3))
	wantMin := []ppa.Word{3, 255, 0, 100}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if got.At(r, c) != wantMin[r] {
				t.Errorf("min[%d,%d] = %d, want %d", r, c, got.At(r, c), wantMin[r])
			}
		}
	}
}

func TestMinPerColumn(t *testing.T) {
	a := ctx(3, 6)
	src := a.FromSlice([]ppa.Word{
		5, 1, 60,
		2, 9, 63,
		7, 4, 61,
	})
	got := a.Min(src, ppa.South, a.Row().EqConst(0))
	want := []ppa.Word{2, 1, 60}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if got.At(r, c) != want[c] {
				t.Errorf("colmin[%d,%d] = %d, want %d", r, c, got.At(r, c), want[c])
			}
		}
	}
}

func TestMinCycleCost(t *testing.T) {
	// The paper's Θ(h) claim, exactly: h wired-OR cycles and h+2 bus
	// cycles per Min, independent of n.
	for _, n := range []int{2, 8, 16} {
		for _, h := range []uint{4, 8, 13} {
			a := ctx(n, h)
			src := a.Zeros()
			head := a.Col().EqConst(ppa.Word(n - 1))
			before := a.Machine().Metrics()
			a.Min(src, ppa.West, head)
			d := a.Machine().Metrics().Sub(before)
			wiredOr, bus := MinCost(h)
			if d.WiredOrCycles != wiredOr || d.BusCycles != bus {
				t.Errorf("n=%d h=%d: wiredOR=%d bus=%d, want %d and %d",
					n, h, d.WiredOrCycles, d.BusCycles, wiredOr, bus)
			}
		}
	}
}

func TestMinMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(9)
		h := uint(4 + rng.Intn(10))
		a := ctx(n, h)
		flat := make([]ppa.Word, n*n)
		for i := range flat {
			flat[i] = ppa.Word(rng.Int63n(int64(ppa.Infinity(h)) + 1))
		}
		src := a.FromSlice(flat)
		got := a.Min(src, ppa.West, a.Col().EqConst(ppa.Word(n-1)))
		for r := 0; r < n; r++ {
			want := flat[r*n]
			for c := 1; c < n; c++ {
				if flat[r*n+c] < want {
					want = flat[r*n+c]
				}
			}
			for c := 0; c < n; c++ {
				if got.At(r, c) != want {
					t.Fatalf("trial %d n=%d h=%d row %d: min = %d, want %d (row %v)",
						trial, n, h, r, got.At(r, c), want, flat[r*n:r*n+n])
				}
			}
		}
	}
}

func TestSelectedMin(t *testing.T) {
	a := ctx(4, 8)
	src := a.Col() // minimize the column index
	sel := a.FromBools([]bool{
		false, true, false, true, // row 0: cols 1,3 selected -> 1
		false, false, false, true, // row 1: col 3 -> 3
		true, true, true, true, // row 2: all -> 0
		false, false, true, false, // row 3: col 2 -> 2
	})
	got := a.SelectedMin(src, ppa.West, a.Col().EqConst(3), sel)
	want := []ppa.Word{1, 3, 0, 2}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if got.At(r, c) != want[r] {
				t.Errorf("selmin[%d,%d] = %d, want %d", r, c, got.At(r, c), want[r])
			}
		}
	}
}

func TestSelectedMinEmptySelectionFloats(t *testing.T) {
	a := ctx(3, 8)
	src := a.FromSlice([]ppa.Word{
		11, 12, 13,
		21, 22, 23,
		31, 32, 33,
	})
	sel := a.False()
	// Rows with empty selection return the head's original value.
	got := a.SelectedMin(src, ppa.West, a.Col().EqConst(2), sel)
	want := []ppa.Word{13, 23, 33}
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			if got.At(r, c) != want[r] {
				t.Errorf("empty-sel[%d,%d] = %d, want %d", r, c, got.At(r, c), want[r])
			}
		}
	}
}

func TestSelectedMinDoesNotClobberSelection(t *testing.T) {
	a := ctx(2, 8)
	src := a.Col()
	sel := a.True()
	a.SelectedMin(src, ppa.West, a.Col().EqConst(1), sel)
	if sel.Count() != 4 {
		t.Error("SelectedMin mutated caller's selection variable")
	}
}

// TestMinMultiClusterHeadArtifact pins down the hardware-faithful artifact
// documented on Min: with several clusters per ring, a cluster whose unique
// minimum is its own head fetches its result from the neighbouring
// cluster's minima during the reverse broadcast (statement 12 of the
// paper's listing). The MCP algorithm never builds such configurations.
func TestMinMultiClusterHeadArtifact(t *testing.T) {
	a := ctx(4, 8)
	// One row ring, two clusters: heads at cols 0 and 2 (flow East).
	// Cluster A = {0,1} values {1, 9}; its minimum (1) sits at head 0.
	// Cluster B = {2,3} values {9, 5}; its minimum (5) sits at col 3.
	src := a.FromSlice([]ppa.Word{
		1, 9, 9, 5,
		0, 0, 0, 0,
		0, 0, 0, 0,
		0, 0, 0, 0,
	})
	heads := a.Col().EqConst(0).Or(a.Col().EqConst(2))
	got := a.Min(src, ppa.East, heads)
	// Cluster B behaves: min 5 everywhere in {2,3}.
	if got.At(0, 2) != 5 || got.At(0, 3) != 5 {
		t.Errorf("cluster B min = %d,%d, want 5,5", got.At(0, 2), got.At(0, 3))
	}
	// Cluster A exhibits the artifact: head 0's reverse broadcast fetches
	// cluster B's surviving minimum (5) instead of its own 1, because no
	// other PE of cluster A is still enabled to feed it.
	if got.At(0, 0) != 5 || got.At(0, 1) != 5 {
		t.Errorf("artifact changed: cluster A = %d,%d (expected the documented 5,5)",
			got.At(0, 0), got.At(0, 1))
	}
}

func TestMinCostHelper(t *testing.T) {
	w, b := MinCost(16)
	if w != 16 || b != 2 {
		t.Errorf("MinCost(16) = %d,%d, want 16,2", w, b)
	}
}

func BenchmarkMinRow(b *testing.B) {
	a := ctx(64, 16)
	rng := rand.New(rand.NewSource(1))
	flat := make([]ppa.Word, 64*64)
	for i := range flat {
		flat[i] = ppa.Word(rng.Intn(1 << 16))
	}
	src := a.FromSlice(flat)
	head := a.Col().EqConst(63)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Min(src, ppa.West, head)
	}
}

func wordsEqual(t *testing.T, got, want []ppa.Word) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}
