package par

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/ppa"
)

// TestOrViaSwitchesMatchesWiredOr: on every configuration in which each
// ring has at least one cluster head — the only configurations the
// paper's algorithms build — the switch-only OR equals the wired-OR.
func TestOrViaSwitchesMatchesWiredOr(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(8)
		d := ppa.Direction(rng.Intn(4))
		a := ctx(n, 8)
		openData := make([]bool, n*n)
		driveData := make([]bool, n*n)
		// Guarantee one head per ring of the chosen direction.
		for ring := 0; ring < n; ring++ {
			pos := rng.Intn(n)
			if d.Horizontal() {
				openData[ring*n+pos] = true
			} else {
				openData[pos*n+ring] = true
			}
		}
		for i := range openData {
			if rng.Intn(5) == 0 {
				openData[i] = true
			}
			driveData[i] = rng.Intn(3) == 0
		}
		open := a.FromBools(openData)
		drive := a.FromBools(driveData)
		wired := a.Or(drive, d, open)
		switched := a.OrViaSwitches(drive, d, open)
		if !reflect.DeepEqual(wired.Slice(), switched.Slice()) {
			t.Fatalf("trial %d n=%d d=%v:\nopen=%v\ndrive=%v\nwired=%v\nswitched=%v",
				trial, n, d, openData, driveData, wired.Slice(), switched.Slice())
		}
	}
}

// TestOrViaSwitchesHeadlessDivergence documents the one configuration the
// switch-only model cannot express: a ring with no head.
func TestOrViaSwitchesHeadlessDivergence(t *testing.T) {
	a := ctx(3, 8)
	drive := a.FromBools([]bool{
		true, false, false,
		false, false, false,
		false, false, false,
	})
	noHeads := a.False()
	wired := a.Or(drive, ppa.East, noHeads)
	if !wired.At(0, 0) || !wired.At(0, 2) {
		t.Fatal("wired-OR on a headless ring should OR the whole ring")
	}
	switched := a.OrViaSwitches(drive, ppa.East, noHeads)
	for c := 0; c < 3; c++ {
		if switched.At(0, c) {
			t.Errorf("headless switch-OR lane (0,%d) = true (documented to be all-false)", c)
		}
	}
}

func TestOrViaSwitchesCost(t *testing.T) {
	a := ctx(4, 8)
	before := a.Machine().Metrics()
	a.OrViaSwitches(a.False(), ppa.West, a.Col().EqConst(3))
	d := a.Machine().Metrics().Sub(before)
	if d.BusCycles != 2 || d.WiredOrCycles != 0 {
		t.Errorf("cost = %d bus, %d wired-OR; want 2 and 0", d.BusCycles, d.WiredOrCycles)
	}
}

// TestMinViaSwitchesMatchesMin: the two bus models compute identical
// minima on whole-ring clusters.
func TestMinViaSwitchesMatchesMin(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(8)
		h := uint(4 + rng.Intn(8))
		a := ctx(n, h)
		flat := make([]ppa.Word, n*n)
		for i := range flat {
			flat[i] = ppa.Word(rng.Int63n(int64(ppa.Infinity(h)) + 1))
		}
		src := a.FromSlice(flat)
		head := a.Col().EqConst(ppa.Word(n - 1))
		wired := a.Min(src, ppa.West, head)
		switched := a.MinViaSwitches(src, ppa.West, head)
		if !reflect.DeepEqual(wired.Slice(), switched.Slice()) {
			t.Fatalf("trial %d: minima diverge\nwired=%v\nswitched=%v",
				trial, wired.Slice(), switched.Slice())
		}
	}
}

func TestMinViaSwitchesCost(t *testing.T) {
	for _, h := range []uint{4, 8, 16} {
		a := ctx(6, h)
		src := a.Zeros()
		head := a.Col().EqConst(5)
		before := a.Machine().Metrics()
		a.MinViaSwitches(src, ppa.West, head)
		d := a.Machine().Metrics().Sub(before)
		wantWOR, wantBus := MinSwitchCost(h)
		if d.WiredOrCycles != wantWOR || d.BusCycles != wantBus {
			t.Errorf("h=%d: cost %d wired-OR / %d bus, want %d / %d",
				h, d.WiredOrCycles, d.BusCycles, wantWOR, wantBus)
		}
	}
}

func TestSelectedMinViaSwitches(t *testing.T) {
	a := ctx(4, 8)
	sel := a.FromBools([]bool{
		false, true, false, true,
		true, true, true, true,
		false, false, false, false,
		true, false, false, false,
	})
	head := a.Col().EqConst(3)
	wired := a.SelectedMin(a.Col(), ppa.West, head, sel)
	switched := a.SelectedMinViaSwitches(a.Col(), ppa.West, head, sel)
	if !reflect.DeepEqual(wired.Slice(), switched.Slice()) {
		t.Errorf("selected minima diverge:\nwired=%v\nswitched=%v",
			wired.Slice(), switched.Slice())
	}
	if sel.Count() != 7 {
		t.Error("selection clobbered")
	}
}
