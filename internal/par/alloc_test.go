package par

import (
	"testing"

	"ppamcp/internal/ppa"
	"ppamcp/internal/virt"
)

// TestMinSteadyStateAllocs pins the pooling of the bit-serial minimum's
// h-plane loop: with warm pools, one Min issues h wired-OR cycles and two
// broadcasts without allocating at all — no per-plane temporaries (bit
// plane, drive, cluster OR, withdraw condition), no staging variables, and
// no per-transaction closures in the machine's ring dispatcher (job
// parameters travel through the staged-job fields of the persistent worker
// pool instead). The sweep covers the reference and fused kernels on both
// the serial and the forced-parallel pooled path; the tiny headroom only
// absorbs runtime noise, so a lost Release or a reintroduced dispatch
// closure trips it immediately.
func TestMinSteadyStateAllocs(t *testing.T) {
	const maxAllocs = 2
	for _, fused := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			var opts []ppa.Option
			if workers > 1 {
				opts = append(opts, ppa.WithWorkers(workers), ppa.WithForceParallel())
			}
			m := ppa.New(64, 10, opts...)
			a := New(m)
			a.SetFused(fused)
			src := a.Row()
			head := a.Col().EqConst(63)
			a.Min(src, ppa.West, head).Release() // warm-up fills the pools
			allocs := testing.AllocsPerRun(5, func() {
				a.Min(src, ppa.West, head).Release()
			})
			if allocs > maxAllocs {
				t.Errorf("fused=%v workers=%d: steady-state Min allocates %.0f objects, want <= %d",
					fused, workers, allocs, maxAllocs)
			}
			m.Close()
		}
	}
}

// TestVirtMinSteadyStateAllocs extends the zero-alloc pin to block-mapped
// execution: the packed virtualization engine stages every plane pass in
// scratch owned by the virt.Machine (sized at construction), so a warm
// Min on a virtualized fabric — fused or reference, serial or pooled —
// allocates nothing per transaction either.
func TestVirtMinSteadyStateAllocs(t *testing.T) {
	const maxAllocs = 2
	for _, fused := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			var opts []ppa.Option
			if workers > 1 {
				opts = append(opts, ppa.WithWorkers(workers), ppa.WithForceParallel())
			}
			vm, err := virt.New(64, 8, 10, opts...)
			if err != nil {
				t.Fatal(err)
			}
			a := New(vm)
			a.SetFused(fused)
			src := a.Row()
			head := a.Col().EqConst(63)
			a.Min(src, ppa.West, head).Release() // warm-up fills the pools
			allocs := testing.AllocsPerRun(5, func() {
				a.Min(src, ppa.West, head).Release()
			})
			if allocs > maxAllocs {
				t.Errorf("fused=%v workers=%d: steady-state virtualized Min allocates %.0f objects, want <= %d",
					fused, workers, allocs, maxAllocs)
			}
			vm.Close()
		}
	}
}
