package par

import (
	"testing"

	"ppamcp/internal/ppa"
)

// TestMinSteadyStateAllocs pins the pooling of the bit-serial minimum's
// h-plane loop: with warm pools, one Min issues h wired-OR cycles and two
// broadcasts without allocating any of its per-plane temporaries (bit
// plane, drive, cluster OR, withdraw condition) or its staging variable.
// What remains is one escaping closure per bus transaction in the
// machine's ring dispatcher (h + 2 = 12 here); the bound adds headroom
// on top of that but stays a fraction of one pooled temporary per plane,
// so any lost Release in the loop trips it.
func TestMinSteadyStateAllocs(t *testing.T) {
	m := ppa.New(64, 10)
	a := New(m)
	src := a.Row()
	head := a.Col().EqConst(63)
	a.Min(src, ppa.West, head).Release() // warm-up fills the pools
	allocs := testing.AllocsPerRun(5, func() {
		a.Min(src, ppa.West, head).Release()
	})
	const maxAllocs = 20
	if allocs > maxAllocs {
		t.Fatalf("steady-state Min allocates %.0f objects, want <= %d", allocs, maxAllocs)
	}
}
