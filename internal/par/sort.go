package par

import "ppamcp/internal/ppa"

// RankRows computes, for every PE, the rank of its src value within its
// row (0 = smallest), breaking ties by column index — the classic
// enumeration primitive of bus-based arrays. Implementation: n pivot
// broadcasts (one per column, each a whole-row cut-ring transaction) with
// a local compare-and-count per pivot. Cost: n bus cycles + O(n) local
// instructions; needs h >= log2(n) bits, which every MCP-capable
// configuration already has.
func (a *Array) RankRows(src *Var) *Var {
	a.check(src.a)
	n := a.N()
	col := a.Col()
	rank := a.Zeros()
	for k := 0; k < n; k++ {
		pivotOpen := col.EqConst(ppa.Word(k))
		pivot := a.Broadcast(src, ppa.East, pivotOpen)
		// The pivot (column k's value) ranks before this PE's value if it
		// is smaller, or equal but from a smaller column.
		le := col.LtConst(ppa.Word(k + 1))
		kBeforeMe := le.Not() // k < COL
		smaller := pivot.Lt(src)
		equal := pivot.Eq(src)
		tie := equal.And(kBeforeMe)
		before := smaller.Or(tie)
		a.Where(before, func() {
			bumped := rank.AddSatConst(1)
			rank.Assign(bumped)
			bumped.Release()
		})
		before.Release()
		tie.Release()
		equal.Release()
		smaller.Release()
		kBeforeMe.Release()
		le.Release()
		pivot.Release()
		pivotOpen.Release()
	}
	col.Release()
	return rank
}

// SortRows returns a variable in which every row holds its src values in
// ascending order (stable in the original column order for ties). It
// ranks the row and then routes each value to the column equal to its
// rank with one broadcast per rank. Cost: 2n bus cycles total.
func (a *Array) SortRows(src *Var) *Var {
	a.check(src.a)
	n := a.N()
	col := a.Col()
	rank := a.RankRows(src)
	out := a.Zeros()
	for k := 0; k < n; k++ {
		atRank := rank.EqConst(ppa.Word(k))
		fromRank := a.Broadcast(src, ppa.East, atRank)
		atCol := col.EqConst(ppa.Word(k))
		a.Where(atCol, func() {
			out.Assign(fromRank)
		})
		atCol.Release()
		fromRank.Release()
		atRank.Release()
	}
	rank.Release()
	col.Release()
	return out
}
