package par

import "ppamcp/internal/ppa"

// RankRows computes, for every PE, the rank of its src value within its
// row (0 = smallest), breaking ties by column index — the classic
// enumeration primitive of bus-based arrays. Implementation: n pivot
// broadcasts (one per column, each a whole-row cut-ring transaction) with
// a local compare-and-count per pivot. Cost: n bus cycles + O(n) local
// instructions; needs h >= log2(n) bits, which every MCP-capable
// configuration already has.
func (a *Array) RankRows(src *Var) *Var {
	a.check(src.a)
	n := a.N()
	col := a.Col()
	rank := a.Zeros()
	for k := 0; k < n; k++ {
		pivotOpen := col.EqConst(ppa.Word(k))
		pivot := a.Broadcast(src, ppa.East, pivotOpen)
		// The pivot (column k's value) ranks before this PE's value if it
		// is smaller, or equal but from a smaller column.
		kBeforeMe := col.LtConst(ppa.Word(k + 1)).Not() // k < COL
		before := pivot.Lt(src).Or(pivot.Eq(src).And(kBeforeMe))
		a.Where(before, func() {
			rank.Assign(rank.AddSatConst(1))
		})
	}
	return rank
}

// SortRows returns a variable in which every row holds its src values in
// ascending order (stable in the original column order for ties). It
// ranks the row and then routes each value to the column equal to its
// rank with one broadcast per rank. Cost: 2n bus cycles total.
func (a *Array) SortRows(src *Var) *Var {
	a.check(src.a)
	n := a.N()
	col := a.Col()
	rank := a.RankRows(src)
	out := a.Zeros()
	for k := 0; k < n; k++ {
		fromRank := a.Broadcast(src, ppa.East, rank.EqConst(ppa.Word(k)))
		a.Where(col.EqConst(ppa.Word(k)), func() {
			out.Assign(fromRank)
		})
	}
	return out
}
