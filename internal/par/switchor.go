package par

import "ppamcp/internal/ppa"

// OrViaSwitches computes the same cluster OR as Or (PPC's or(x, dir, L))
// WITHOUT assuming a wired-OR bus mode: it uses only plain segmented
// broadcasts and switch reconfiguration, the weaker hardware reading.
//
// Cycle 1: every driving PE and every cluster head opens its switch;
// drivers inject 1, non-driving heads inject 0. Under the cut-ring rule
// each head then receives the injection of the nearest open PE upstream —
// exactly the OR of the *upstream* cluster (a driver if there is one, the
// previous head's 0 otherwise). Cycle 2 redistributes: heads hold the
// collected bit and a broadcast in the *opposite* direction delivers each
// cluster its own OR (every member's nearest upstream head in reverse
// flow is the next head downstream, the collector of its cluster).
//
// Requires at least one head per ring: on a headless ring the collected
// bits have nowhere to live and the result is all-false there, whereas
// the wired-OR Or returns the whole-ring OR (the paper's algorithms
// always configure heads). Cost: 2 bus cycles (vs 1 wired-OR cycle).
//
// Under this bus model the paper's min() listing is exact as printed:
// its statement-9 `broadcast(or(...))` is cycle 2. See DESIGN.md,
// deviation 3a.
func (a *Array) OrViaSwitches(x *Bool, dir ppa.Direction, open *Bool) *Bool {
	a.check(x.a)
	a.check(open.a)
	inject := x.ToVar()
	cuts := open.Or(x)
	collected := a.Broadcast(inject, dir, cuts)
	hold := a.Zeros()
	a.Where(open, func() {
		hold.Assign(collected)
	})
	distributed := a.Broadcast(hold, dir.Opposite(), open)
	out := distributed.NeConst(0)
	distributed.Release()
	hold.Release()
	collected.Release()
	cuts.Release()
	inject.Release()
	return out
}

// MinViaSwitches is Min implemented on the switch-only bus model: each
// bit plane costs 2 broadcasts instead of 1 wired-OR cycle, for a total
// of 2h+2 bus cycles — still Θ(h), which is why the paper's complexity
// result does not depend on which bus model the hardware provides
// (ablation E7).
func (a *Array) MinViaSwitches(src *Var, orientation ppa.Direction, open *Bool) *Var {
	return a.minimumOn(src, orientation, open, a.True(), true, (*Array).OrViaSwitches)
}

// SelectedMinViaSwitches is SelectedMin on the switch-only bus model.
// Never fused: the switch-only OR is itself built from broadcasts.
func (a *Array) SelectedMinViaSwitches(src *Var, orientation ppa.Direction, open, sel *Bool) *Var {
	a.check(sel.a)
	return a.minimumOn(src, orientation, open, sel, false, (*Array).OrViaSwitches)
}

// MinSwitchCost returns the bus transactions of one MinViaSwitches on an
// h-bit machine: 2h+2 broadcasts, no wired-OR cycles.
func MinSwitchCost(h uint) (wiredOr, busCycles int64) {
	return 0, 2*int64(h) + 2
}

// FirstSet marks, within each bus cluster defined by open, the first PE
// in flow order at which x is true (all other lanes come back false) —
// the classic O(1) "leftmost one" primitive of reconfigurable-mesh
// algorithms. A PE is its cluster's first driver exactly when it drives
// and no driver lies between its cluster head and itself, which one
// switch-configured broadcast decides: drivers and heads open their
// switches, drivers inject 1, heads inject 0, and a driver that receives
// 0 from upstream is first. A driving head is always its cluster's first
// driver (what it receives comes from the upstream cluster, so it is
// excused from the upstream-silence test). Cost: 1 bus cycle.
//
// Like OrViaSwitches, it requires at least one head per ring (the heads
// provide the 0 floor; on a headless ring a lone driver sees its own
// wrapped 1 and is suppressed).
func (a *Array) FirstSet(x *Bool, dir ppa.Direction, open *Bool) *Bool {
	a.check(x.a)
	a.check(open.a)
	inject := x.ToVar()
	cuts := open.Or(x)
	upstream := a.Broadcast(inject, dir, cuts)
	silent := upstream.EqConst(0)
	excused := open.Or(silent)
	out := x.And(excused)
	excused.Release()
	silent.Release()
	upstream.Release()
	cuts.Release()
	inject.Release()
	return out
}
