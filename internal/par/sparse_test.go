package par

import (
	"testing"

	"ppamcp/internal/ppa"
)

func TestLoadSparse(t *testing.T) {
	a := ctx(4, 8)
	x := a.Zeros()
	before := a.Machine().Metrics()
	x.LoadSparse([]int{1, 7, 14}, []ppa.Word{10, 20, 30})
	if after := a.Machine().Metrics(); after != before {
		t.Errorf("LoadSparse charged machine cycles: %+v -> %+v", before, after)
	}
	want := map[int]ppa.Word{1: 10, 7: 20, 14: 30}
	for i := 0; i < 16; i++ {
		if got := x.At(i/4, i%4); got != want[i] {
			t.Errorf("lane %d = %d, want %d", i, got, want[i])
		}
	}
	// Duplicate index: last write wins, like sequential stores.
	x.LoadSparse([]int{5, 5}, []ppa.Word{1, 2})
	if got := x.At(1, 1); got != 2 {
		t.Errorf("duplicate index lane = %d, want 2", got)
	}
}

func TestLoadSparsePanics(t *testing.T) {
	a := ctx(3, 8)
	x := a.Zeros()
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("length mismatch", func() {
		x.LoadSparse([]int{0, 1}, []ppa.Word{1})
	})
	expectPanic("index out of range", func() {
		x.LoadSparse([]int{9}, []ppa.Word{1})
	})
	expectPanic("word too wide", func() {
		x.LoadSparse([]int{0}, []ppa.Word{1 << 9})
	})
}

func TestLoadRow(t *testing.T) {
	a := ctx(3, 8)
	x := a.Zeros()
	before := a.Machine().Metrics()
	x.LoadRow(1, []ppa.Word{4, 5, 6})
	if after := a.Machine().Metrics(); after != before {
		t.Errorf("LoadRow charged machine cycles: %+v -> %+v", before, after)
	}
	for j := 0; j < 3; j++ {
		if got := x.At(1, j); got != ppa.Word(4+j) {
			t.Errorf("(1,%d) = %d", j, got)
		}
		if x.At(0, j) != 0 || x.At(2, j) != 0 {
			t.Errorf("LoadRow touched a foreign row at column %d", j)
		}
	}
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("row out of range", func() { x.LoadRow(3, []ppa.Word{1, 2, 3}) })
	expectPanic("bad length", func() { x.LoadRow(0, []ppa.Word{1}) })
	expectPanic("word too wide", func() { x.LoadRow(0, []ppa.Word{0, 1 << 9, 0}) })
}
