package par_test

import (
	"testing"

	"ppamcp/internal/core"
	"ppamcp/internal/graph"
)

// TestSolveWorkerAllocParity pins the fix for the workers>1 allocation
// regression: fanning a solve out over the persistent ring worker pool
// must not allocate per transaction (the old dispatcher heap-allocated one
// closure per ring chunk per bus transaction, ~17x the serial alloc
// count on the benchmark graph). Allocations with workers=4 must stay
// within 2x of workers=1.
func TestSolveWorkerAllocParity(t *testing.T) {
	g := graph.GenRandomConnected(64, 0.3, 9, 5)
	measure := func(workers int) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := core.Solve(g, 1, core.Options{Workers: workers}); err != nil {
				t.Fatal(err)
			}
		})
	}
	serial := measure(1)
	pooled := measure(4)
	if pooled > 2*serial {
		t.Fatalf("Solve allocations: workers=4 %.0f vs workers=1 %.0f (>2x)", pooled, serial)
	}
}
