package par

import (
	"math/rand"
	"testing"

	"ppamcp/internal/ppa"
)

func TestMaxWholeRow(t *testing.T) {
	a := ctx(4, 8)
	src := a.FromSlice([]ppa.Word{
		7, 3, 9, 5,
		0, 0, 0, 0,
		255, 1, 2, 3,
		200, 100, 100, 201,
	})
	got := a.Max(src, ppa.West, a.Col().EqConst(3))
	want := []ppa.Word{9, 0, 255, 201}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if got.At(r, c) != want[r] {
				t.Errorf("max[%d,%d] = %d, want %d", r, c, got.At(r, c), want[r])
			}
		}
	}
}

func TestMaxMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(9)
		h := uint(4 + rng.Intn(10))
		a := ctx(n, h)
		flat := make([]ppa.Word, n*n)
		for i := range flat {
			flat[i] = ppa.Word(rng.Int63n(int64(ppa.Infinity(h)) + 1))
		}
		src := a.FromSlice(flat)
		got := a.Max(src, ppa.East, a.Col().EqConst(0))
		for r := 0; r < n; r++ {
			want := flat[r*n]
			for c := 1; c < n; c++ {
				if flat[r*n+c] > want {
					want = flat[r*n+c]
				}
			}
			for c := 0; c < n; c++ {
				if got.At(r, c) != want {
					t.Fatalf("trial %d row %d: max = %d, want %d (row %v)",
						trial, r, got.At(r, c), want, flat[r*n:r*n+n])
				}
			}
		}
	}
}

func TestMaxCycleCostMatchesMin(t *testing.T) {
	a := ctx(8, 12)
	src := a.Zeros()
	head := a.Col().EqConst(7)
	before := a.Machine().Metrics()
	a.Max(src, ppa.West, head)
	d := a.Machine().Metrics().Sub(before)
	wiredOr, bus := MinCost(12)
	if d.WiredOrCycles != wiredOr || d.BusCycles != bus {
		t.Errorf("Max cost %d wired-OR / %d bus, want %d / %d",
			d.WiredOrCycles, d.BusCycles, wiredOr, bus)
	}
}

func TestSelectedMax(t *testing.T) {
	a := ctx(3, 8)
	src := a.FromSlice([]ppa.Word{
		5, 90, 9,
		1, 2, 3,
		8, 8, 8,
	})
	sel := a.FromBools([]bool{
		true, false, true, // max over {5, 9} = 9
		true, true, false, // max over {1, 2} = 2
		false, false, false, // empty: floats, src returned
	})
	got := a.SelectedMax(src, ppa.West, a.Col().EqConst(2), sel)
	if got.At(0, 0) != 9 || got.At(1, 1) != 2 {
		t.Errorf("selected max wrong: %d %d", got.At(0, 0), got.At(1, 1))
	}
	for c := 0; c < 3; c++ {
		if got.At(2, c) != 8 {
			t.Errorf("empty-sel row: %d", got.At(2, c))
		}
	}
	if sel.Count() != 4 {
		t.Error("SelectedMax mutated caller's selection")
	}
}

// TestMinMaxDuality: Max(x) == inf - Min(inf - x) lanewise, a relation
// that must hold for any data because the two scans are exact duals.
func TestMinMaxDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n, h = 5, 9
	inf := ppa.Infinity(h)
	flat := make([]ppa.Word, n*n)
	for i := range flat {
		flat[i] = ppa.Word(rng.Int63n(int64(inf) + 1))
	}
	a := ctx(n, h)
	src := a.FromSlice(flat)
	head := a.Col().EqConst(n - 1)
	maxed := a.Max(src, ppa.West, head)

	b := ctx(n, h)
	compl := make([]ppa.Word, n*n)
	for i, w := range flat {
		compl[i] = inf - w
	}
	mined := b.Min(b.FromSlice(compl), ppa.West, b.Col().EqConst(n-1))
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if maxed.At(r, c) != inf-mined.At(r, c) {
				t.Fatalf("duality broken at (%d,%d): max %d, inf-min %d",
					r, c, maxed.At(r, c), inf-mined.At(r, c))
			}
		}
	}
}
