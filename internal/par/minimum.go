package par

import "ppamcp/internal/ppa"

// Min is PPC's min(src, orientation, L): within each bus cluster defined
// by L it computes the minimum of src over all PEs of the cluster and
// delivers it to every PE of the cluster.
//
// The implementation follows the paper's listing: the values are examined
// bit-serially from the most significant plane down; at each plane, a
// wired-OR over the cluster discovers whether any still-enabled PE holds a
// 0, in which case every enabled PE holding a 1 withdraws. After h planes
// exactly the minima remain enabled; their value is sent to the cluster
// head with a reverse broadcast (statements 11-12) and re-broadcast to the
// whole cluster (statement 13).
//
// One deviation from the listing: statement 9 wraps the wired-OR in a
// second broadcast. Under the wired-OR bus model the OR is already
// delivered to every cluster member, and re-broadcasting it actively
// corrupts head lanes on rings that host several clusters, so the
// redundant transaction is dropped (see DESIGN.md).
//
// Hardware-faithful caveat that remains: statement 12's reverse broadcast
// segments the bus by `enable` alone, so when a ring hosts *multiple*
// clusters and a cluster's unique minimum sits exactly at its head, the
// head fetches a value from the neighbouring cluster. The MCP algorithm
// always uses whole-ring clusters (one Open PE per ring), where this
// cannot occur; TestMinMultiClusterHeadArtifact documents the behaviour.
//
// Cost: h wired-OR cycles + 2 word broadcasts, i.e. Θ(h) bus
// transactions — the paper's central complexity claim, measured by
// experiment E1.
func (a *Array) Min(src *Var, orientation ppa.Direction, open *Bool) *Var {
	if m := a.fusedOn(); m != nil {
		return a.fusedReduce(m, src, orientation, open, nil, true)
	}
	return a.minimumOn(src, orientation, open, a.True(), true, (*Array).Or)
}

// SelectedMin is PPC's selected_min(src, orientation, L, sel): identical to
// Min except that only the PEs where sel holds compete; clusters whose
// selected subset is empty float and return the head's original src value.
// The MCP algorithm uses it with src = COL to extract the (smallest) column
// index among the PEs that achieved the row minimum. sel itself is never
// written (a private enable set is copied off it).
func (a *Array) SelectedMin(src *Var, orientation ppa.Direction, open, sel *Bool) *Var {
	a.check(sel.a)
	if m := a.fusedOn(); m != nil {
		return a.fusedReduce(m, src, orientation, open, sel, true)
	}
	return a.minimumOn(src, orientation, open, sel, false, (*Array).Or)
}

// minimumOn is the bit-serial minimum parameterized by the cluster-OR
// primitive: (*Array).Or on the wired-OR bus model, (*Array).OrViaSwitches
// on the switch-only model. sel is the selection mask; owned says whether
// the callee may mutate it directly (Min hands over a fresh all-true set).
// When it may not, a private copy is taken lazily at the first withdrawal,
// so the caller's selection is never written.
func (a *Array) minimumOn(src *Var, orientation ppa.Direction, open, sel *Bool, owned bool,
	orFn func(*Array, *Bool, ppa.Direction, *Bool) *Bool) *Var {
	a.check(src.a)
	a.check(open.a)
	h := a.m.Bits()
	enable := sel
	for j := int(h) - 1; j >= 0; j-- {
		bit := src.BitPlane(uint(j))
		nb := bit.Not()
		drive := nb.And(enable)
		seenZero := orFn(a, drive, orientation, open)
		// where (seenZero && bit) enable = 0
		cond := seenZero.And(bit)
		if !owned {
			enable = sel.Copy()
			owned = true
		}
		a.Where(cond, func() {
			enable.AssignConst(false)
		})
		cond.Release()
		seenZero.Release()
		drive.Release()
		nb.Release()
		bit.Release()
	}
	// Statements 11-12: send a surviving minimum to the cluster heads.
	// On a cluster whose enabled subset is empty the bus floats and the
	// head keeps its original src value.
	result := src.Copy()
	a.Where(open, func() {
		a.BroadcastInto(result, src, orientation.Opposite(), enable)
	})
	if owned {
		enable.Release()
	}
	// Statement 13: spread the head's value over the cluster.
	out := a.Broadcast(result, orientation, open)
	result.Release()
	return out
}

// Max is the dual of Min: within each bus cluster defined by open it
// computes the maximum of src and delivers it to every PE of the cluster,
// with the same bit-serial structure (a wired-OR per plane discovers
// whether any still-enabled PE holds a 1; if so, enabled PEs holding a 0
// withdraw). Not used by the paper's MCP, but part of the machine's
// natural primitive set — same Θ(h) cost.
func (a *Array) Max(src *Var, orientation ppa.Direction, open *Bool) *Var {
	if m := a.fusedOn(); m != nil {
		return a.fusedReduce(m, src, orientation, open, nil, false)
	}
	return a.maximum(src, orientation, open, a.True(), true)
}

// SelectedMax is Max restricted to the PEs where sel holds; like
// SelectedMin it never writes sel.
func (a *Array) SelectedMax(src *Var, orientation ppa.Direction, open, sel *Bool) *Var {
	a.check(sel.a)
	if m := a.fusedOn(); m != nil {
		return a.fusedReduce(m, src, orientation, open, sel, false)
	}
	return a.maximum(src, orientation, open, sel, false)
}

// maximum mirrors minimumOn (including the lazy selection copy) with the
// bit roles flipped; only the wired-OR bus model is implemented for Max.
func (a *Array) maximum(src *Var, orientation ppa.Direction, open, sel *Bool, owned bool) *Var {
	a.check(src.a)
	a.check(open.a)
	h := a.m.Bits()
	enable := sel
	for j := int(h) - 1; j >= 0; j-- {
		bit := src.BitPlane(uint(j))
		drive := bit.And(enable)
		seenOne := a.Or(drive, orientation, open)
		// where (seenOne && !bit) enable = 0
		nb := bit.Not()
		cond := seenOne.And(nb)
		if !owned {
			enable = sel.Copy()
			owned = true
		}
		a.Where(cond, func() {
			enable.AssignConst(false)
		})
		cond.Release()
		nb.Release()
		seenOne.Release()
		drive.Release()
		bit.Release()
	}
	result := src.Copy()
	a.Where(open, func() {
		a.BroadcastInto(result, src, orientation.Opposite(), enable)
	})
	if owned {
		enable.Release()
	}
	out := a.Broadcast(result, orientation, open)
	result.Release()
	return out
}

// MinCost returns the exact number of bus transactions one Min/SelectedMin
// issues on an h-bit machine: h wired-OR cycles plus 2 broadcasts. Used by
// the analytical cost model in the benchmarks.
func MinCost(h uint) (wiredOr, busCycles int64) {
	return int64(h), 2
}
