// Package mesh implements the baseline the PPA paper implicitly argues
// against: the same n x n SIMD processor array *without* reconfigurable
// buses. Every data movement is a nearest-neighbour shift on the torus, so
// a row/column broadcast costs n-1 shift steps and a row minimum costs n-1
// shift-and-compare steps, turning the paper's Θ(p·h)-cycle MCP into a
// Θ(p·n)-step one. Experiments E3/E4 quantify the gap.
//
// The mesh keeps the SIMD controller's global-OR termination line (as the
// CM-class machines did); only the inter-PE fabric is restricted.
package mesh

import (
	"fmt"

	"ppamcp/internal/graph"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// Options tunes SolveMCP.
type Options struct {
	// Bits is the machine word width h (0 = auto, graph.BitsNeeded).
	Bits uint
	// Workers fans ring operations out over goroutines (identical results).
	Workers int
	// MaxIterations bounds the DP loop (0 = n+1).
	MaxIterations int
}

// Result is the mesh solution plus its cycle accounting (dominated by
// ShiftSteps).
type Result struct {
	graph.Result
	Metrics ppa.Metrics
	Bits    uint
}

// rowBroadcast delivers src's row `srcRow` to every row using n-1 South
// shifts: after k shifts row (srcRow+k) mod n holds the data and captures
// it under a mask.
func rowBroadcast(a *par.Array, src *par.Var, srcRow int) *par.Var {
	n := a.N()
	row := a.Row()
	dst := src.Copy()
	moving := src.Copy()
	for k := 1; k < n; k++ {
		moving = a.Shift(moving, ppa.South)
		target := row.EqConst(ppa.Word((srcRow + k) % n))
		a.Where(target, func() {
			dst.Assign(moving)
		})
	}
	return dst
}

// diagBroadcast delivers the diagonal element of each column to every PE
// of the column: PE (i, j) receives src[j][j]. It shifts a copy South n-1
// times; the value that started at (j, j) reaches ((j+k) mod n, j) after k
// steps and is captured there. The capture masks depend only on PE
// coordinates, so the controller precomputes them at program load (like
// ROW and COL); no machine cycles are charged for them.
func diagBroadcast(a *par.Array, src *par.Var) *par.Var {
	n := a.N()
	dst := src.Copy() // diagonal PEs already hold their value
	moving := src.Copy()
	for k := 1; k < n; k++ {
		moving = a.Shift(moving, ppa.South)
		target := make([]bool, n*n)
		for c := 0; c < n; c++ {
			target[((c+k)%n)*n+c] = true
		}
		a.Where(a.FromBools(target), func() {
			dst.Assign(moving)
		})
	}
	return dst
}

// rowMinArg computes, for every PE, the minimum of src over its row and
// the smallest column index attaining it, by rotating (value, index) pairs
// n-1 steps West with a lexicographic running minimum.
func rowMinArg(a *par.Array, src *par.Var) (minVal, argCol *par.Var) {
	n := a.N()
	minVal = src.Copy()
	argCol = a.Col().Copy()
	movingVal := src.Copy()
	movingIdx := a.Col().Copy()
	for k := 1; k < n; k++ {
		movingVal = a.Shift(movingVal, ppa.West)
		movingIdx = a.Shift(movingIdx, ppa.West)
		better := movingVal.Lt(minVal).
			Or(movingVal.Eq(minVal).And(movingIdx.Lt(argCol)))
		a.Where(better, func() {
			minVal.Assign(movingVal)
			argCol.Assign(movingIdx)
		})
	}
	return minVal, argCol
}

// SolveMCP runs the PPA paper's dynamic program on the plain mesh.
// Results (Dist, Next, Iterations) are identical to core.Solve and
// graph.BellmanFord; only the cost profile differs.
func SolveMCP(g *graph.Graph, dest int, opt Options) (*Result, error) {
	if dest < 0 || dest >= g.N {
		return nil, fmt.Errorf("mesh: destination %d out of range [0,%d)", dest, g.N)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	h := opt.Bits
	if h == 0 {
		h = g.BitsNeeded()
	}
	if h > ppa.MaxBits {
		return nil, fmt.Errorf("mesh: word width %d exceeds %d bits", h, ppa.MaxBits)
	}
	n := g.N
	inf := ppa.Infinity(h)
	if int64(n-1) > int64(inf) {
		return nil, fmt.Errorf("mesh: %d-bit words cannot hold vertex indices up to %d", h, n-1)
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = n + 1
	}

	var mopts []ppa.Option
	if opt.Workers > 1 {
		mopts = append(mopts, ppa.WithWorkers(opt.Workers))
	}
	m := ppa.New(n, h, mopts...)
	a := par.New(m)

	w, err := loadWeights(g, h)
	if err != nil {
		return nil, err
	}

	row, col := a.Row(), a.Col()
	rowIsD := row.EqConst(ppa.Word(dest))
	notD := rowIsD.Not()

	W := a.FromSlice(w)
	SOW := a.Zeros()
	PTN := a.Zeros()
	MinSOW := a.Zeros()
	OldSOW := a.Zeros()

	// Initialization: move column d of W onto row d with shifts.
	// Step A: rotate column d horizontally to every column (n-1 East
	// shifts): PE (j, c) <- w_jd. Step B: diagonal-to-column broadcast.
	acrossRows := W.Copy()
	movingW := W.Copy()
	for k := 1; k < n; k++ {
		movingW = a.Shift(movingW, ppa.East)
		source := col.EqConst(ppa.Word((dest + k) % n))
		a.Where(source, func() {
			acrossRows.Assign(movingW)
		})
	}
	// acrossRows now holds w_jd at (j, (d+k)%n)... every PE of row j needs
	// w_jd: after k East shifts, column (d+k)%n holds w_jd; the masked
	// captures above already materialized exactly that. (j, c) = w_jd for
	// all c. Now fold onto row d via the diagonal.
	ontoRowD := diagBroadcast(a, acrossRows)
	a.Where(rowIsD, func() {
		SOW.Assign(ontoRowD)
		PTN.AssignConst(ppa.Word(dest))
	})
	a.Where(rowIsD.And(col.EqConst(ppa.Word(dest))), func() {
		SOW.AssignConst(0)
	})

	iterations := 0
	for {
		iterations++
		if iterations > maxIter {
			return nil, fmt.Errorf("mesh: DP did not converge within %d rounds", maxIter)
		}

		cand := rowBroadcast(a, SOW, dest).AddSat(W)
		a.Where(notD, func() {
			SOW.Assign(cand)
		})

		rowMin, argMin := rowMinArg(a, SOW)
		a.Where(notD, func() {
			MinSOW.Assign(rowMin)
			PTN.Assign(argMin)
		})

		newRow := diagBroadcast(a, MinSOW)
		newPTN := diagBroadcast(a, PTN)
		a.Where(rowIsD, func() {
			OldSOW.Assign(SOW)
			SOW.Assign(newRow)
			a.Where(SOW.Ne(OldSOW), func() {
				PTN.Assign(newPTN)
			})
		})

		if a.None(rowIsD.And(SOW.Ne(OldSOW))) {
			break
		}
	}

	res := &Result{
		Result: graph.Result{
			Dest:       dest,
			Dist:       make([]int64, n),
			Next:       make([]int, n),
			Iterations: iterations,
		},
		Metrics: m.Metrics(),
		Bits:    h,
	}
	for i := 0; i < n; i++ {
		sow := SOW.At(dest, i)
		switch {
		case i == dest:
			res.Dist[i] = 0
			res.Next[i] = -1
		case sow == inf:
			res.Dist[i] = graph.NoEdge
			res.Next[i] = -1
		default:
			res.Dist[i] = int64(sow)
			res.Next[i] = int(PTN.At(dest, i))
		}
	}
	if res.Metrics.BusCycles != 0 || res.Metrics.WiredOrCycles != 0 {
		return nil, fmt.Errorf("mesh: internal error: used reconfigurable buses (%v)", res.Metrics)
	}
	return res, nil
}

// loadWeights mirrors core's conversion: NoEdge -> MAXINT, zero diagonal,
// saturation guard.
func loadWeights(g *graph.Graph, h uint) ([]ppa.Word, error) {
	n := g.N
	inf := ppa.Infinity(h)
	w := make([]ppa.Word, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch wt := g.At(i, j); {
			case i == j:
				w[i*n+j] = 0
			case wt == graph.NoEdge:
				w[i*n+j] = inf
			case n > 1 && wt > (int64(inf)-1)/int64(n-1):
				return nil, fmt.Errorf(
					"mesh: %d-bit words cannot distinguish worst-case path cost (%d * %d) from MAXINT",
					h, n-1, wt)
			default:
				w[i*n+j] = ppa.Word(wt)
			}
		}
	}
	return w, nil
}

// PredictedShiftSteps is the analytical shift count for one SolveMCP run:
// the initialization moves 2(n-1) steps and each DP round costs
// (n-1) row-broadcast + 2(n-1) min/argmin rotation + 2(n-1) diagonal
// broadcast steps.
func PredictedShiftSteps(n, iters int) int64 {
	perIter := int64(n-1) * 5
	return int64(iters)*perIter + int64(n-1)*2
}
