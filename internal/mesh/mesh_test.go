package mesh

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/core"
	"ppamcp/internal/graph"
)

func TestSolveMCPChain(t *testing.T) {
	g := graph.GenChain(5, 3)
	r, err := SolveMCP(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{12, 9, 6, 3, 0}; !reflect.DeepEqual(r.Dist, want) {
		t.Errorf("Dist = %v, want %v", r.Dist, want)
	}
	if want := []int{1, 2, 3, 4, -1}; !reflect.DeepEqual(r.Next, want) {
		t.Errorf("Next = %v, want %v", r.Next, want)
	}
	if err := graph.CheckResult(g, &r.Result); err != nil {
		t.Error(err)
	}
}

// TestSolveMCPMatchesPPAExactly: the mesh runs the same DP, so Dist, Next
// and Iterations must agree with core.Solve element for element.
func TestSolveMCPMatchesPPAExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		g := graph.GenRandom(n, 0.2+rng.Float64()*0.5, 1+int64(rng.Intn(15)), rng.Int63())
		dest := rng.Intn(n)
		ppaRes, err := core.Solve(g, dest, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		meshRes, err := SolveMCP(g, dest, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ppaRes.Dist, meshRes.Dist) ||
			!reflect.DeepEqual(ppaRes.Next, meshRes.Next) ||
			ppaRes.Iterations != meshRes.Iterations {
			t.Fatalf("trial %d: mesh diverged from PPA\nppa:  %v %v (%d iters)\nmesh: %v %v (%d iters)",
				trial, ppaRes.Dist, ppaRes.Next, ppaRes.Iterations,
				meshRes.Dist, meshRes.Next, meshRes.Iterations)
		}
	}
}

func TestSolveMCPUsesOnlyShifts(t *testing.T) {
	g := graph.GenRandomConnected(8, 0.3, 9, 2)
	r, err := SolveMCP(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics.BusCycles != 0 || r.Metrics.WiredOrCycles != 0 || r.Metrics.RouterCycles != 0 {
		t.Errorf("mesh used non-shift fabric: %v", r.Metrics)
	}
	if r.Metrics.ShiftSteps == 0 {
		t.Error("no shifts counted")
	}
}

func TestSolveMCPShiftCountMatchesModel(t *testing.T) {
	for _, n := range []int{3, 6, 11} {
		g := graph.GenRandomConnected(n, 0.4, 7, int64(n))
		r, err := SolveMCP(g, n/2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := PredictedShiftSteps(n, r.Iterations)
		if r.Metrics.ShiftSteps != want {
			t.Errorf("n=%d: ShiftSteps = %d, model %d (iters=%d)",
				n, r.Metrics.ShiftSteps, want, r.Iterations)
		}
	}
}

func TestSolveMCPSingleVertex(t *testing.T) {
	r, err := SolveMCP(graph.New(1), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist[0] != 0 || r.Next[0] != -1 {
		t.Errorf("trivial: %+v", r)
	}
}

func TestSolveMCPUnreachable(t *testing.T) {
	g := graph.GenChain(4, 1)
	r, err := SolveMCP(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist[3] != graph.NoEdge || r.Next[3] != -1 {
		t.Errorf("unreachable handling: %v %v", r.Dist, r.Next)
	}
}

func TestSolveMCPErrors(t *testing.T) {
	g := graph.GenChain(4, 1)
	if _, err := SolveMCP(g, 9, Options{}); err == nil {
		t.Error("bad dest accepted")
	}
	if _, err := SolveMCP(g, -1, Options{}); err == nil {
		t.Error("negative dest accepted")
	}
	if _, err := SolveMCP(g, 0, Options{Bits: 63}); err == nil {
		t.Error("oversized Bits accepted")
	}
	if _, err := SolveMCP(graph.GenChain(10, 1), 0, Options{Bits: 3}); err == nil {
		t.Error("3-bit machine accepted 10 vertices")
	}
	if _, err := SolveMCP(graph.GenChain(5, 60), 4, Options{Bits: 7}); err == nil {
		t.Error("saturating configuration accepted")
	}
	if _, err := SolveMCP(g, 3, Options{MaxIterations: 1}); err == nil {
		t.Error("MaxIterations guard did not trip")
	}
	bad := graph.New(2)
	bad.W[1] = -1
	if _, err := SolveMCP(bad, 0, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestSolveMCPWorkersDeterminism(t *testing.T) {
	g := graph.GenRandomConnected(9, 0.3, 9, 7)
	base, err := SolveMCP(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par4, err := SolveMCP(g, 2, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Dist, par4.Dist) || base.Metrics != par4.Metrics {
		t.Error("worker pool changed results")
	}
}
