package router

import (
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over backend names with virtual nodes.
// Construction is a pure function of the member set — order of the input
// slice is ignored and no randomness is involved — so every router
// restart (and every router replica) derives the same placement for the
// same fleet. Keys are the 64-bit graph fingerprints the server tier
// micro-batches on (graph.Fingerprint): identical graphs therefore land
// on the backend already holding a warm session and populated batch
// cache for them.
//
// The virtual nodes buy two properties: load spreads ~uniformly even
// with few members, and a membership change only moves the keys owned
// by the departed (or arrived) member — everything else stays put, which
// is what keeps the fleet's warm sessions valuable through a rolling
// restart.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash, ties broken by member name
}

type ringPoint struct {
	hash   uint64
	member string
}

// fnv64a is FNV-1a over a string, passed through a 64-bit finalizer.
// Raw FNV disperses poorly over the near-identical short strings vnode
// labels are made of (same host, same "#i" tail): point positions clump
// and one member can own most of the keyspace. The multiply-xorshift
// finalizer (Murmur3's fmix64) spreads every input bit across the word,
// which is what makes the arc lengths — and therefore the load shares —
// come out near-uniform.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// NewRing builds a ring with vnodes virtual nodes per member (minimum 1;
// 64 is a good default). Duplicate members collapse to one.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	seen := make(map[string]bool, len(members))
	ms := make([]string, 0, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			ms = append(ms, m)
		}
	}
	sort.Strings(ms)
	r := &Ring{members: ms, points: make([]ringPoint, 0, len(ms)*vnodes)}
	for _, m := range ms {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{fnv64a(m + "#" + strconv.Itoa(i)), m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the member set the ring was built from (sorted).
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Lookup returns the member owning key: the first virtual node clockwise
// from the key's position. ok is false on an empty ring.
func (r *Ring) Lookup(key uint64) (member string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].member, true
}

// Sequence returns up to max distinct members in clockwise ring order
// starting at key's owner — the deterministic failover order: the owner
// first, then the members whose vnodes follow it. max <= 0 returns all
// members.
func (r *Ring) Sequence(key uint64, max int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if max <= 0 || max > len(r.members) {
		max = len(r.members)
	}
	out := make([]string, 0, max)
	seen := make(map[string]bool, max)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
