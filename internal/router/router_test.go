package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppamcp/internal/graph"
	"ppamcp/internal/serve"
)

// stubBackend is a fake ppaserved: it answers /healthz from a flag and
// counts /v1/solve hits, optionally failing or stalling them.
type stubBackend struct {
	ts       *httptest.Server
	solves   atomic.Int64
	draining atomic.Bool
	fail     atomic.Bool   // answer 500 on solve
	hold     chan struct{} // when non-nil, solve blocks until closed
}

func newStubBackend(t *testing.T, hold bool) *stubBackend {
	t.Helper()
	b := &stubBackend{}
	if hold {
		b.hold = make(chan struct{})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		hs := serve.HealthStatus{Status: "ok"}
		code := http.StatusOK
		if b.draining.Load() {
			hs.Status, hs.Draining = "draining", true
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(hs)
	})
	mux.HandleFunc("/v1/solve", func(w http.ResponseWriter, r *http.Request) {
		b.solves.Add(1)
		if b.hold != nil {
			<-b.hold
		}
		if b.fail.Load() {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"n":4,"bits":8,"results":[{"dest":0,"dist":[0,-1,-1,-1],"next":[-1,-1,-1,-1],"iterations":1}]}`)
	})
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

// newTestRouter builds a router over the given backend URLs with a long
// health interval so only explicit CheckNow calls change membership.
func newTestRouter(t *testing.T, cfg Config, urls ...string) *Router {
	t.Helper()
	cfg.Backends = urls
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = time.Hour
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
	})
	return rt
}

func solveBody(t *testing.T, g *graph.Graph, dests ...int) []byte {
	t.Helper()
	raw, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(serve.SolveRequest{Graph: raw, Dests: dests})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postRouter(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestRouterSingleFlightOneUpstreamCall: K concurrent identical misses
// reach the backend exactly once; one response is the miss, the rest are
// collapsed; a later identical request is a cache hit with no further
// upstream call.
func TestRouterSingleFlightOneUpstreamCall(t *testing.T) {
	b := newStubBackend(t, true)
	rt := newTestRouter(t, Config{}, b.ts.URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	g := graph.GenChain(4, 3)
	body := solveBody(t, g, 0)
	const K = 8
	var wg sync.WaitGroup
	var miss, collapsed, other atomic.Int64
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postRouter(t, front, body)
			if resp.StatusCode != http.StatusOK {
				other.Add(1)
				return
			}
			switch resp.Header.Get("X-Ppa-Cache") {
			case "miss":
				miss.Add(1)
			case "collapsed":
				collapsed.Add(1)
			default:
				other.Add(1)
			}
		}()
	}
	// Wait for the leader to reach the backend and the followers to pile
	// onto the flight, then release the backend.
	deadline := time.Now().Add(5 * time.Second)
	for rt.flights.Collapsed() < K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("followers never collapsed: %d", rt.flights.Collapsed())
		}
		time.Sleep(time.Millisecond)
	}
	close(b.hold)
	wg.Wait()

	if got := b.solves.Load(); got != 1 {
		t.Fatalf("backend saw %d solve calls for %d concurrent identical requests, want 1", got, K)
	}
	if miss.Load() != 1 || collapsed.Load() != K-1 || other.Load() != 0 {
		t.Errorf("miss=%d collapsed=%d other=%d, want 1/%d/0", miss.Load(), collapsed.Load(), other.Load(), K-1)
	}

	resp, _ := postRouter(t, front, body)
	if src := resp.Header.Get("X-Ppa-Cache"); src != "hit" {
		t.Errorf("repeat request source = %q, want hit", src)
	}
	if got := b.solves.Load(); got != 1 {
		t.Errorf("cache hit still called the backend (%d calls)", got)
	}
}

// TestRouterHealthEvictionAndReadmission: a draining backend is evicted
// on the next sweep (single strike), traffic shifts entirely to the
// survivor, and one healthy probe re-admits — with placement restored
// deterministically.
func TestRouterHealthEvictionAndReadmission(t *testing.T) {
	b1 := newStubBackend(t, false)
	b2 := newStubBackend(t, false)
	rt := newTestRouter(t, Config{}, b1.ts.URL, b2.ts.URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	ctx := context.Background()
	rt.CheckNow(ctx)
	for _, bh := range rt.Fleet() {
		if !bh.Healthy {
			t.Fatalf("%s unhealthy at start", bh.URL)
		}
	}

	b2.draining.Store(true)
	rt.CheckNow(ctx)
	var evicted bool
	for _, bh := range rt.Fleet() {
		if bh.URL == strings.TrimRight(b2.ts.URL, "/") && !bh.Healthy {
			evicted = true
		}
	}
	if !evicted {
		t.Fatal("draining backend not evicted after one sweep")
	}

	// All traffic lands on the survivor now, whatever the fingerprint.
	before := b1.solves.Load()
	for seed := int64(0); seed < 6; seed++ {
		g := graph.GenRandomConnected(6, 0.5, 9, seed)
		resp, data := postRouter(t, front, solveBody(t, g, 0))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve after eviction = %d: %s", resp.StatusCode, data)
		}
	}
	if b1.solves.Load()-before != 6 {
		t.Errorf("survivor saw %d solves, want 6", b1.solves.Load()-before)
	}

	b2.draining.Store(false)
	rt.CheckNow(ctx)
	for _, bh := range rt.Fleet() {
		if !bh.Healthy {
			t.Errorf("%s not re-admitted after recovery", bh.URL)
		}
	}
}

// TestRouterFailoverOnKilledBackend: with one of two backends killed
// outright (connection refused), every request still answers 200 within
// the retry budget, the dead backend is passively evicted, and the
// router /healthz stays green.
func TestRouterFailoverOnKilledBackend(t *testing.T) {
	b1 := newStubBackend(t, false)
	b2 := newStubBackend(t, false)
	rt := newTestRouter(t, Config{EvictAfter: 2}, b1.ts.URL, b2.ts.URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	b2.ts.CloseClientConnections()
	b2.ts.Close()

	for seed := int64(0); seed < 10; seed++ {
		g := graph.GenRandomConnected(6, 0.5, 9, seed)
		resp, data := postRouter(t, front, solveBody(t, g, 0))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d (%s) — request lost past the retry budget", seed, resp.StatusCode, data)
		}
	}

	// Passive transport failures must have evicted the corpse.
	var dead bool
	for _, bh := range rt.Fleet() {
		if bh.URL == strings.TrimRight(b2.ts.URL, "/") {
			dead = !bh.Healthy
		}
	}
	if !dead {
		t.Error("killed backend still marked healthy after transport failures")
	}

	resp, err := front.Client().Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var rh RouterHealth
	if err := json.NewDecoder(resp.Body).Decode(&rh); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rh.HealthyBackends != 1 {
		t.Errorf("router health = %d %+v, want 200 with 1 healthy backend", resp.StatusCode, rh)
	}
}

// TestRouterRetryableStatuses: 500 fails over to the next ring member;
// 429 passes through with Retry-After instead of being retried.
func TestRouterRetryableStatuses(t *testing.T) {
	b1 := newStubBackend(t, false)
	b2 := newStubBackend(t, false)
	rt := newTestRouter(t, Config{}, b1.ts.URL, b2.ts.URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Make every solve on b1 fail with 500: any request whose primary is
	// b1 must be answered by b2, and vice-versa nothing changes.
	b1.fail.Store(true)
	for seed := int64(0); seed < 8; seed++ {
		g := graph.GenRandomConnected(6, 0.5, 9, seed)
		resp, data := postRouter(t, front, solveBody(t, g, 0))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d (%s); 500 should fail over", seed, resp.StatusCode, data)
		}
	}
	b1.fail.Store(false)

	// A 429 with Retry-After is backpressure for the client: passed
	// through verbatim, never retried elsewhere.
	shed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer shed.Close()
	rt2 := newTestRouter(t, Config{}, shed.URL)
	front2 := httptest.NewServer(rt2.Handler())
	defer front2.Close()
	g := graph.GenChain(4, 3)
	resp, _ := postRouter(t, front2, solveBody(t, g, 0))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429 passed through", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want 7 passed through", ra)
	}
}

// TestRouterValidation: malformed requests die at the front door with
// 400 and never reach a backend.
func TestRouterValidation(t *testing.T) {
	b := newStubBackend(t, false)
	rt := newTestRouter(t, Config{MaxVertices: 64}, b.ts.URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "{", 400},
		{"no dests", `{"graph":{"n":2,"edges":[[0,1,3]]}}`, 400},
		{"dest out of range", `{"graph":{"n":2,"edges":[[0,1,3]]},"dests":[5]}`, 400},
		{"oversized", `{"graph":{"n":4096,"edges":[]},"dests":[0]}`, 400},
		{"both graph and gen", `{"graph":{"n":2,"edges":[]},"gen":{"gen":"chain"},"dests":[0]}`, 400},
	}
	for _, c := range cases {
		resp, data := postRouter(t, front, []byte(c.body))
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d (%s), want %d", c.name, resp.StatusCode, data, c.want)
		}
	}
	if got := b.solves.Load(); got != 0 {
		t.Errorf("invalid requests reached the backend %d times", got)
	}

	resp, err := front.Client().Get(front.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve = %d, want 405", resp.StatusCode)
	}
}

// startServeBackend boots a real in-process ppaserved over httptest.
func startServeBackend(t *testing.T, cfg serve.Config) (*httptest.Server, *serve.Server) {
	t.Helper()
	svc := serve.New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return ts, svc
}

// TestRouterE2EMultiBackend is the fleet end-to-end: 3 real ppaserved
// backends behind the router, concurrent clients over a mixed workload.
// Every response is Bellman-Ford-verified, every graph's traffic sticks
// to one backend (warm-session affinity), repeats hit the front-door
// cache, and /metrics reports membership and the hit ratio.
func TestRouterE2EMultiBackend(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		ts, _ := startServeBackend(t, serve.Config{Workers: 2, MaxVertices: 64})
		urls = append(urls, ts.URL)
	}
	rt := newTestRouter(t, Config{}, urls...)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const nGraphs = 6
	graphs := make([]*graph.Graph, nGraphs)
	for i := range graphs {
		graphs[i] = graph.GenRandomConnected(16, 0.4, 9, int64(i))
	}

	var mu sync.Mutex
	backendByGraph := make(map[int]map[string]bool)
	hits := 0

	const clients = 8
	const perClient = 12
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				gi := (c + r) % nGraphs
				dest := (c*7 + r) % 4 // small dest space so repeats occur
				resp, data := postRouter(t, front, solveBody(t, graphs[gi], dest))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d req %d: status %d (%s)", c, r, resp.StatusCode, data)
					return
				}
				var sr serve.SolveResponse
				if err := json.Unmarshal(data, &sr); err != nil {
					t.Errorf("client %d req %d: %v", c, r, err)
					return
				}
				if err := verifyAgainstReference(graphs[gi], &sr, dest); err != nil {
					t.Errorf("client %d req %d: %v", c, r, err)
					return
				}
				mu.Lock()
				if resp.Header.Get("X-Ppa-Cache") == "hit" {
					hits++
				}
				if b := resp.Header.Get("X-Ppa-Backend"); b != "" {
					if backendByGraph[gi] == nil {
						backendByGraph[gi] = make(map[string]bool)
					}
					backendByGraph[gi][b] = true
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Affinity: each graph's upstream traffic went to exactly one backend.
	for gi, set := range backendByGraph {
		if len(set) != 1 {
			t.Errorf("graph %d was served by %d backends %v; affinity broken", gi, len(set), set)
		}
	}
	if hits == 0 {
		t.Error("no front-door cache hits across a repeating workload")
	}

	resp, err := front.Client().Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(data)
	for _, want := range []string{
		"pparouter_ring_size 3",
		"pparouter_ring_members 3",
		"pparouter_cache_hit_ratio",
		"pparouter_cache_hits_total",
		"pparouter_backend_requests_total",
		"pparouter_singleflight_collapsed_total",
		`pparouter_requests_total{path="/v1/solve",code="200"}`,
		"# TYPE pparouter_backend_queue_depth gauge",
		"pparouter_backend_queue_depth{backend=",
		"# TYPE pparouter_backend_pool_idle gauge",
		"# TYPE pparouter_backend_inflight_batches gauge",
		"pparouter_backend_inflight_batches{backend=",
		"# TYPE pparouter_backend_sessions gauge",
		"pparouter_backend_sessions{backend=",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRouterKillBackendMidRun: with real backends and a client stream,
// killing one backend mid-run loses nothing — every request answers 200
// (failover inside the retry budget) and verifies against the
// reference.
func TestRouterKillBackendMidRun(t *testing.T) {
	ts1, _ := startServeBackend(t, serve.Config{Workers: 2, MaxVertices: 64})
	victim, _ := startServeBackend(t, serve.Config{Workers: 2, MaxVertices: 64})
	rt := newTestRouter(t, Config{EvictAfter: 1}, ts1.URL, victim.URL)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const nGraphs = 8
	graphs := make([]*graph.Graph, nGraphs)
	for i := range graphs {
		graphs[i] = graph.GenRandomConnected(12, 0.4, 9, int64(100+i))
	}

	const clients = 4
	const perClient = 20
	killAt := int64(clients * perClient / 4)
	var sent atomic.Int64
	var killOnce sync.Once
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				if sent.Add(1) == killAt {
					killOnce.Do(func() {
						victim.CloseClientConnections()
						victim.Close()
					})
				}
				gi := (c*perClient + r) % nGraphs
				dest := r % graphs[gi].N
				resp, data := postRouter(t, front, solveBody(t, graphs[gi], dest))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d req %d: status %d (%s) — lost a request", c, r, resp.StatusCode, data)
					return
				}
				var sr serve.SolveResponse
				if err := json.Unmarshal(data, &sr); err != nil {
					t.Errorf("client %d req %d: %v", c, r, err)
					return
				}
				if err := verifyAgainstReference(graphs[gi], &sr, dest); err != nil {
					t.Errorf("client %d req %d: %v", c, r, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// verifyAgainstReference checks one response's single result against
// Bellman-Ford plus the next-hop certificate.
func verifyAgainstReference(g *graph.Graph, sr *serve.SolveResponse, dest int) error {
	if len(sr.Results) != 1 {
		return fmt.Errorf("%d results, want 1", len(sr.Results))
	}
	dr := sr.Results[0]
	if dr.Dest != dest {
		return fmt.Errorf("result for dest %d, want %d", dr.Dest, dest)
	}
	want, err := graph.BellmanFord(g, dest)
	if err != nil {
		return err
	}
	res := graph.Result{Dest: dest, Dist: make([]int64, g.N), Next: dr.Next, Iterations: dr.Iterations}
	for i, d := range dr.Dist {
		if d < 0 {
			res.Dist[i] = graph.NoEdge
		} else {
			res.Dist[i] = d
		}
	}
	if !graph.SameDistances(&res, want) {
		return fmt.Errorf("dest %d: distances diverge from Bellman-Ford", dest)
	}
	return graph.CheckResult(g, &res)
}
