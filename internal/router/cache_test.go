package router

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheLRUEntryBound: the entry bound evicts cold entries in LRU
// order, and Get promotes.
func TestCacheLRUEntryBound(t *testing.T) {
	c := NewCache(3, 0)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k0 so k1 is the coldest.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k3", []byte{3})
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 survived; LRU order not honored")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want 3 entries, 1 eviction", st)
	}
}

// TestCacheByteBound: the byte bound evicts until the footprint fits,
// and an entry larger than the whole bound is refused outright.
func TestCacheByteBound(t *testing.T) {
	perEntry := int64(1000 + 2 + entryOverhead) // body + key + overhead
	c := NewCache(0, 3*perEntry)
	body := make([]byte, 1000)
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("b%d", i), body)
	}
	st := c.Stats()
	if st.Entries != 3 {
		t.Errorf("entries = %d, want 3 (byte bound)", st.Entries)
	}
	if st.Bytes > 3*perEntry {
		t.Errorf("bytes = %d exceeds bound %d", st.Bytes, 3*perEntry)
	}
	if _, ok := c.Get("b0"); ok {
		t.Error("oldest entry survived the byte bound")
	}

	c.Put("huge", make([]byte, 4*perEntry))
	if _, ok := c.Get("huge"); ok {
		t.Error("an entry larger than the byte bound was stored")
	}
	if got := c.Stats().Entries; got != 3 {
		t.Errorf("oversized Put disturbed the cache: %d entries", got)
	}
}

// TestSingleFlightCollapse: K concurrent callers for one key produce
// exactly one fn invocation; followers share the leader's result and
// are counted.
func TestSingleFlightCollapse(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	release := make(chan struct{})
	const K = 8

	var wg sync.WaitGroup
	results := make([]*upstream, K)
	shared := make([]bool, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, sh, err := g.Do(context.Background(), "key", func() *upstream {
				calls.Add(1)
				<-release // hold the flight open until all followers joined
				return &upstream{status: 200, body: []byte("body")}
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			results[i], shared[i] = res, sh
		}(i)
	}
	// Let the followers pile onto the open flight, then land it.
	for g.Collapsed() < K-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times for %d concurrent callers, want 1", got, K)
	}
	leaders := 0
	for i := range results {
		if results[i] == nil || string(results[i].body) != "body" {
			t.Fatalf("caller %d got %+v", i, results[i])
		}
		if !shared[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want 1", leaders)
	}
	if got := g.Collapsed(); got != K-1 {
		t.Errorf("collapsed = %d, want %d", got, K-1)
	}

	// The flight landed: a later caller starts a fresh one (failures are
	// not cached).
	_, sh, _ := g.Do(context.Background(), "key", func() *upstream {
		calls.Add(1)
		return &upstream{status: 200}
	})
	if sh || calls.Load() != 2 {
		t.Errorf("flight entry leaked: shared=%v calls=%d", sh, calls.Load())
	}
}

// TestSingleFlightFollowerDeadline: a follower whose context expires
// while waiting returns the context error without cancelling the
// leader.
func TestSingleFlightFollowerDeadline(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	leaderDone := make(chan *upstream, 1)
	go func() {
		res, _, _ := g.Do(context.Background(), "k", func() *upstream {
			<-release
			return &upstream{status: 200}
		})
		leaderDone <- res
	}()
	for g.inFlight("k") == nil {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, sh, err := g.Do(ctx, "k", func() *upstream { return nil })
	if !sh || err == nil {
		t.Fatalf("follower: shared=%v err=%v, want shared deadline error", sh, err)
	}

	close(release)
	if res := <-leaderDone; res == nil || res.status != 200 {
		t.Fatalf("leader was disturbed by follower deadline: %+v", res)
	}
}
