// Package router is the fleet front door: a consistent-hash routing
// tier that spreads solve traffic across N ppaserved backends while
// keeping it graph-affine, plus a front-door result cache.
//
// The server tier's economics (internal/serve) are all about reuse: a
// warm session answers in under a millisecond while a cold build plus
// first solve costs several times that, and micro-batching coalesces
// concurrent requests for the same graph into one checkout. Those wins
// only survive scale-out if identical graphs keep landing on the same
// process. The router therefore places each request by the same
// graph.Fingerprint the backends batch on, on a consistent-hash ring
// with virtual nodes: placement is deterministic across restarts, and a
// membership change only moves the keys of the member that changed.
//
// Above placement sits a front-door LRU result cache keyed by the exact
// solve identity (SHA-256 graph digest + destinations + word width).
// Results are pure functions of that identity, so the cache can never
// serve a stale answer — capacity is the only policy. Concurrent misses
// for the same identity collapse into one upstream call (single
// flight).
//
// Around both sits the fleet envelope: active health checks against the
// backends' /healthz (evicting on failure or a draining signal,
// re-admitting on recovery, deterministically rebalancing the ring on
// every membership change), bounded retry/failover along the ring
// order for transport failures and 5xx, pass-through of 429/Retry-After
// and deadlines, and a hand-rendered Prometheus /metrics surface.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ppamcp/internal/serve"
)

// Config tunes the router; zero values select the documented defaults.
type Config struct {
	// Backends lists the ppaserved base URLs fronted by this router
	// (e.g. "http://10.0.0.1:8080"). At least one is required.
	Backends []string
	// VNodes is the virtual node count per backend on the hash ring
	// (default 64).
	VNodes int
	// HealthInterval is the active health-check period (default 2s);
	// HealthTimeout bounds each probe (default 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// EvictAfter is the consecutive probe failures that evict a backend
	// from the ring (default 2). A backend reporting draining is evicted
	// immediately; one healthy probe re-admits.
	EvictAfter int
	// RetryBudget is the number of additional backends tried (in ring
	// order) after the primary fails with a transport error or a
	// retryable 5xx (default 2). 429 and 504 are never retried — they
	// pass through with their headers.
	RetryBudget int
	// CacheEntries / CacheBytes bound the front-door result cache
	// (defaults 4096 entries, 64 MiB). CacheEntries < 0 disables it.
	CacheEntries int
	CacheBytes   int64
	// IdentEntries bounds the request-bytes -> graph-identity memo
	// (default 1024).
	IdentEntries int
	// MaxVertices and MaxBodyBytes mirror the backend admission bounds
	// (defaults 512 and 8 MiB) so oversized requests die at the front
	// door instead of fanning out.
	MaxVertices  int
	MaxBodyBytes int64
	// MaxResponseBytes bounds a buffered upstream response body
	// (default 32 MiB).
	MaxResponseBytes int64
	// DefaultTimeout and MaxTimeout bound the per-request deadline the
	// router enforces around the whole forwarding attempt chain
	// (defaults 30s and 2m, matching the backends).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Client overrides the upstream HTTP client (tests); nil builds one
	// with per-backend connection pooling.
	Client *http.Client
}

func (c *Config) fillDefaults() {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 2
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	} else if c.RetryBudget == 0 {
		c.RetryBudget = 2
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.IdentEntries <= 0 {
		c.IdentEntries = 1024
	}
	if c.MaxVertices <= 0 {
		c.MaxVertices = 512
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxResponseBytes <= 0 {
		c.MaxResponseBytes = 32 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
}

// backendState is the router's live view of one fleet member. Guarded
// by Router.mu.
type backendState struct {
	url     string
	healthy bool
	fails   int // consecutive failed probes
	last    serve.HealthStatus
	lastErr string
}

// Router is the routing tier. Create with New, mount Handler, stop with
// Shutdown.
type Router struct {
	cfg     Config
	client  *http.Client
	metrics *Metrics
	cache   *Cache // nil when disabled
	idents  *identCache
	flights *flightGroup
	mux     *http.ServeMux

	mu       sync.Mutex
	backends map[string]*backendState
	ring     *Ring // rebuilt on every membership change; healthy members only

	down    atomic.Bool
	stop    chan struct{}
	monitor sync.WaitGroup
}

// New builds the router and starts its health monitor.
func New(cfg Config) (*Router, error) {
	cfg.fillDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: need at least one backend")
	}
	rt := &Router{
		cfg:      cfg,
		client:   cfg.Client,
		metrics:  NewMetrics(),
		idents:   newIdentCache(cfg.IdentEntries),
		flights:  newFlightGroup(),
		backends: make(map[string]*backendState),
		stop:     make(chan struct{}),
	}
	if cfg.CacheEntries > 0 {
		rt.cache = NewCache(cfg.CacheEntries, cfg.CacheBytes)
	}
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	for _, b := range cfg.Backends {
		u := strings.TrimRight(strings.TrimSpace(b), "/")
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if _, dup := rt.backends[u]; dup {
			continue
		}
		// Optimistic start: everything is in the ring until a probe says
		// otherwise; the monitor's first sweep runs immediately.
		rt.backends[u] = &backendState{url: u, healthy: true}
	}
	if len(rt.backends) == 0 {
		return nil, errors.New("router: backend list is empty after normalization")
	}
	rt.rebuildRingLocked()

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/v1/solve", rt.handleSolve)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)

	rt.monitor.Add(1)
	go rt.monitorLoop()
	return rt, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Metrics returns the router's aggregate counters (shared, live).
func (rt *Router) Metrics() *Metrics { return rt.metrics }

// CacheStats returns the front-door cache snapshot (zero when disabled)
// and the single-flight collapse count.
func (rt *Router) CacheStats() (CacheStats, int64) {
	var cs CacheStats
	if rt.cache != nil {
		cs = rt.cache.Stats()
	}
	return cs, rt.flights.Collapsed()
}

// Shutdown stops the health monitor and flips the surface to 503.
// In-flight forwards complete under their own deadlines; callers stop
// the http.Server around the handler to drain them.
func (rt *Router) Shutdown(ctx context.Context) error {
	if rt.down.CompareAndSwap(false, true) {
		close(rt.stop)
	}
	done := make(chan struct{})
	go func() {
		rt.monitor.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// rebuildRingLocked rebuilds the ring from the healthy member set; when
// everything is evicted it falls back to all members — trying a backend
// the prober dislikes beats refusing every request outright.
func (rt *Router) rebuildRingLocked() {
	healthy := make([]string, 0, len(rt.backends))
	all := make([]string, 0, len(rt.backends))
	for u, b := range rt.backends {
		all = append(all, u)
		if b.healthy {
			healthy = append(healthy, u)
		}
	}
	if len(healthy) == 0 {
		healthy = all
	}
	rt.ring = NewRing(healthy, rt.cfg.VNodes)
}

// Fleet returns the router's current view of every configured backend,
// sorted by URL.
func (rt *Router) Fleet() []BackendHealth {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]BackendHealth, 0, len(rt.backends))
	for _, b := range rt.backends {
		out = append(out, BackendHealth{URL: b.url, Healthy: b.healthy, Last: b.last})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// monitorLoop sweeps /healthz on every backend each HealthInterval,
// starting immediately.
func (rt *Router) monitorLoop() {
	defer rt.monitor.Done()
	rt.CheckNow(context.Background())
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.CheckNow(context.Background())
		}
	}
}

// CheckNow probes every backend's /healthz once, applying eviction and
// re-admission, and rebalances the ring if membership changed. Exported
// so tests and operators (via the daemon) can force a sweep.
func (rt *Router) CheckNow(ctx context.Context) {
	rt.mu.Lock()
	urls := make([]string, 0, len(rt.backends))
	for u := range rt.backends {
		urls = append(urls, u)
	}
	rt.mu.Unlock()
	sort.Strings(urls)

	changed := false
	for _, u := range urls {
		hs, code, err := rt.probe(ctx, u)
		rt.mu.Lock()
		b := rt.backends[u]
		if b == nil { // membership is static today, but stay defensive
			rt.mu.Unlock()
			continue
		}
		was := b.healthy
		switch {
		case err != nil:
			b.fails++
			b.lastErr = err.Error()
			if b.fails >= rt.cfg.EvictAfter {
				b.healthy = false
			}
		case code != http.StatusOK || hs.Draining:
			// A draining (or otherwise refusing) backend asked to be
			// drained: evict immediately, don't wait out the failure
			// budget.
			b.fails = rt.cfg.EvictAfter
			b.healthy = false
			b.last = hs
			b.lastErr = fmt.Sprintf("healthz status %d", code)
		default:
			b.fails = 0
			b.healthy = true
			b.last = hs
			b.lastErr = ""
		}
		if b.healthy != was {
			changed = true
		}
		rt.mu.Unlock()
	}
	if changed {
		rt.mu.Lock()
		rt.rebuildRingLocked()
		rt.mu.Unlock()
	}
}

// probe fetches one backend's /healthz. A non-JSON 200 body (an older
// backend) still counts as healthy with zeroed gauges.
func (rt *Router) probe(ctx context.Context, backend string) (serve.HealthStatus, int, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+"/healthz", nil)
	if err != nil {
		return serve.HealthStatus{}, 0, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return serve.HealthStatus{}, 0, err
	}
	defer resp.Body.Close()
	var hs serve.HealthStatus
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if jsonErr := json.Unmarshal(data, &hs); jsonErr != nil && resp.StatusCode != http.StatusOK {
		hs.Draining = true
	}
	return hs, resp.StatusCode, nil
}

// markBackendFailed records a passive failure signal (a transport error
// during forwarding): eviction converges faster than the next sweep.
func (rt *Router) markBackendFailed(backend string, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b := rt.backends[backend]
	if b == nil {
		return
	}
	b.fails++
	b.lastErr = err.Error()
	if b.healthy && b.fails >= rt.cfg.EvictAfter {
		b.healthy = false
		rt.rebuildRingLocked()
	}
}

// sequence returns the ring-ordered failover chain for key: the owner
// plus up to RetryBudget successors.
func (rt *Router) sequence(key uint64) []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring.Sequence(key, rt.cfg.RetryBudget+1)
}

// retryable reports whether an upstream answer may be retried on the
// next ring member: transport failures and 5xx from a dying or
// overloaded process (502/503) or an isolated solver panic (500).
// Solves are pure, so re-execution elsewhere is always safe; the budget
// bounds the blast radius of a deterministic failure. 429 carries
// backpressure the client must see, and 504 means the deadline is
// already spent — neither is retried.
func retryable(u *upstream) bool {
	if u.err != nil && u.status == 0 {
		return true
	}
	switch u.status {
	case http.StatusInternalServerError, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// forward sends body along the failover chain for fp and returns the
// first non-retryable answer (or the last error).
func (rt *Router) forward(ctx context.Context, body []byte, fp uint64) *upstream {
	seq := rt.sequence(fp)
	if len(seq) == 0 {
		return &upstream{status: 0, err: errors.New("router: no backends in ring")}
	}
	var last *upstream
	for i, backend := range seq {
		if err := ctx.Err(); err != nil {
			return &upstream{status: http.StatusGatewayTimeout, err: err}
		}
		u := rt.sendOne(ctx, backend, body)
		rt.metrics.RecordBackend(backend, u.status, u.latency, i > 0)
		if u.err != nil && u.status == 0 {
			rt.markBackendFailed(backend, u.err)
		}
		if retryable(u) && i < len(seq)-1 {
			last = u
			continue
		}
		return u
	}
	return last
}

// sendOne performs one upstream exchange.
func (rt *Router) sendOne(ctx context.Context, backend string, body []byte) *upstream {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, backend+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return &upstream{backend: backend, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := rt.client.Do(req)
	lat := time.Since(t0)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return &upstream{backend: backend, status: http.StatusGatewayTimeout, err: ctxErr, latency: lat}
		}
		return &upstream{backend: backend, err: err, latency: lat}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxResponseBytes))
	lat = time.Since(t0)
	if err != nil {
		return &upstream{backend: backend, err: err, latency: lat}
	}
	return &upstream{
		backend:    backend,
		status:     resp.StatusCode,
		body:       data,
		retryAfter: resp.Header.Get("Retry-After"),
		latency:    lat,
	}
}

// handleSolve is POST /v1/solve: resolve identity, try the cache,
// single-flight the miss, forward with failover, pass the answer
// through.
func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	code := rt.solve(w, r)
	rt.metrics.RecordRequest("/v1/solve", code)
}

func (rt *Router) solve(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return rt.writeError(w, http.StatusMethodNotAllowed, "POST only")
	}
	if rt.down.Load() {
		return rt.writeError(w, http.StatusServiceUnavailable, "shutting down")
	}
	r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		return rt.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	var req serve.SolveRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		return rt.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if len(req.Dests) == 0 {
		return rt.writeError(w, http.StatusBadRequest, "dests must name at least one destination")
	}
	id, err := rt.idents.resolve(&req, rt.cfg.MaxVertices)
	if err != nil {
		return rt.writeError(w, http.StatusBadRequest, "%v", err)
	}
	for _, d := range req.Dests {
		if d < 0 || d >= id.n {
			return rt.writeError(w, http.StatusBadRequest, "dest %d out of range [0,%d)", d, id.n)
		}
	}

	timeout := rt.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > rt.cfg.MaxTimeout {
		timeout = rt.cfg.MaxTimeout
	}
	// Small grace beyond the backend's own deadline so its 504 (and
	// Retry-After semantics) reach the client instead of the router
	// cutting the connection first.
	ctx, cancel := context.WithTimeout(r.Context(), timeout+250*time.Millisecond)
	defer cancel()

	key := resultKey(id, req.Dests)
	if rt.cache != nil {
		if body, ok := rt.cache.Get(key); ok {
			rt.metrics.RecordCacheServed()
			return writeBody(w, http.StatusOK, body, "hit", "")
		}
	}

	res, shared, err := rt.flights.Do(ctx, key, func() *upstream {
		return rt.forward(ctx, raw, id.fp)
	})
	if err != nil { // follower deadline while waiting on the leader
		rt.metrics.RecordDeadline()
		return rt.writeError(w, http.StatusGatewayTimeout, "%v", err)
	}
	if res.err != nil && res.status == 0 {
		return rt.writeError(w, http.StatusBadGateway, "no backend answered: %v", res.err)
	}
	if res.status == http.StatusGatewayTimeout || (res.err != nil && errors.Is(res.err, context.DeadlineExceeded)) {
		rt.metrics.RecordDeadline()
	}
	src := "miss"
	if shared {
		rt.metrics.RecordCacheServed()
		src = "collapsed"
	} else if res.status == http.StatusOK && rt.cache != nil {
		rt.cache.Put(key, res.body)
	}
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	if res.status == 0 { // transport-level failure with no later success
		return rt.writeError(w, http.StatusBadGateway, "no backend answered: %v", res.err)
	}
	return writeBody(w, res.status, res.body, src, res.backend)
}

// RouterHealth is the body of the router's own GET /healthz.
type RouterHealth struct {
	Status          string `json:"status"`
	HealthyBackends int    `json:"healthy_backends"`
	Backends        int    `json:"backends"`
	Draining        bool   `json:"draining"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fleet := rt.Fleet()
	h := RouterHealth{Status: "ok", Backends: len(fleet)}
	for _, b := range fleet {
		if b.Healthy {
			h.HealthyBackends++
		}
	}
	code := http.StatusOK
	switch {
	case rt.down.Load():
		h.Status, h.Draining = "draining", true
		code = http.StatusServiceUnavailable
	case h.HealthyBackends == 0:
		h.Status = "no healthy backends"
		code = http.StatusServiceUnavailable
	}
	rt.metrics.RecordRequest("/healthz", code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(h)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt.metrics.RecordRequest("/metrics", http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	cs, collapsed := rt.CacheStats()
	rt.metrics.WritePrometheus(w, rt.Fleet(), cs, collapsed)
}

// writeBody relays an upstream (or cached) response body verbatim,
// annotating where it came from: X-Ppa-Cache is hit/miss/collapsed and
// X-Ppa-Backend names the serving backend (empty for cache hits).
func writeBody(w http.ResponseWriter, status int, body []byte, cacheSrc, backend string) int {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Ppa-Cache", cacheSrc)
	if backend != "" {
		w.Header().Set("X-Ppa-Backend", backend)
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
	return status
}

func (rt *Router) writeError(w http.ResponseWriter, status int, format string, args ...any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Error: fmt.Sprintf(format, args...)})
	return status
}
