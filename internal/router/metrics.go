package router

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ppamcp/internal/serve"
)

// Metrics aggregates the router's observable behaviour in the style of
// internal/serve/metrics.go: hand-rendered Prometheus text, no
// dependencies. All methods are safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	requests map[string]map[int]int64 // path -> status -> count

	backends map[string]*backendCounters // url -> upstream exchange counters

	cacheServed int64 // requests answered from the front-door cache
	failovers   int64 // upstream attempts beyond a request's first backend
	deadline    int64 // requests that died on their deadline inside the router
}

type backendCounters struct {
	requests map[int]int64 // status (0 = transport failure) -> count
	latSum   float64
	latCount int64
}

// NewMetrics returns an empty aggregate.
func NewMetrics() *Metrics {
	return &Metrics{
		requests: make(map[string]map[int]int64),
		backends: make(map[string]*backendCounters),
	}
}

// RecordRequest counts one client-facing HTTP request by path and status.
func (m *Metrics) RecordRequest(path string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[path]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[path] = byCode
	}
	byCode[status]++
}

// RecordBackend counts one upstream exchange with backend: the status it
// answered (0 for a transport failure), how long it took, and whether it
// was a failover attempt (not the request's ring-primary try).
func (m *Metrics) RecordBackend(backend string, status int, d time.Duration, failover bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	bc := m.backends[backend]
	if bc == nil {
		bc = &backendCounters{requests: make(map[int]int64)}
		m.backends[backend] = bc
	}
	bc.requests[status]++
	bc.latSum += d.Seconds()
	bc.latCount++
	if failover {
		m.failovers++
	}
}

// RecordCacheServed counts one request answered without an upstream call.
func (m *Metrics) RecordCacheServed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cacheServed++
}

// RecordDeadline counts one request abandoned at its deadline.
func (m *Metrics) RecordDeadline() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deadline++
}

// BackendHealth is the point-in-time view of one fleet member folded
// into the render (membership, health, last reported load).
type BackendHealth struct {
	URL     string
	Healthy bool
	Last    serve.HealthStatus
}

// WritePrometheus renders the aggregate plus the point-in-time gauges
// the router passes in: fleet membership/health and cache occupancy.
func (m *Metrics) WritePrometheus(w io.Writer, fleet []BackendHealth, cache CacheStats, collapsed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP pparouter_requests_total HTTP requests by path and status.\n")
	fmt.Fprintf(w, "# TYPE pparouter_requests_total counter\n")
	paths := make([]string, 0, len(m.requests))
	for p := range m.requests {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		codes := make([]int, 0, len(m.requests[p]))
		for c := range m.requests[p] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "pparouter_requests_total{path=%q,code=\"%d\"} %d\n", p, c, m.requests[p][c])
		}
	}

	fmt.Fprintf(w, "# HELP pparouter_backend_requests_total Upstream exchanges by backend and status (code 0 = transport failure).\n")
	fmt.Fprintf(w, "# TYPE pparouter_backend_requests_total counter\n")
	urls := make([]string, 0, len(m.backends))
	for u := range m.backends {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		bc := m.backends[u]
		codes := make([]int, 0, len(bc.requests))
		for c := range bc.requests {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "pparouter_backend_requests_total{backend=%q,code=\"%d\"} %d\n", u, c, bc.requests[c])
		}
	}
	fmt.Fprintf(w, "# HELP pparouter_backend_latency_seconds Upstream exchange latency by backend.\n")
	for _, u := range urls {
		bc := m.backends[u]
		fmt.Fprintf(w, "pparouter_backend_latency_seconds_sum{backend=%q} %g\n", u, bc.latSum)
		fmt.Fprintf(w, "pparouter_backend_latency_seconds_count{backend=%q} %d\n", u, bc.latCount)
	}

	fmt.Fprintf(w, "# HELP pparouter_ring_backend_healthy Ring membership: 1 healthy, 0 evicted.\n")
	fmt.Fprintf(w, "# TYPE pparouter_ring_backend_healthy gauge\n")
	healthy := 0
	for _, b := range fleet {
		v := 0
		if b.Healthy {
			v = 1
			healthy++
		}
		fmt.Fprintf(w, "pparouter_ring_backend_healthy{backend=%q} %d\n", b.URL, v)
	}
	fmt.Fprintf(w, "pparouter_ring_size %d\n", healthy)
	fmt.Fprintf(w, "pparouter_ring_members %d\n", len(fleet))

	// Load gauges relayed from each backend's /healthz body: the fleet's
	// queue depths and pool occupancy in one scrape, per backend.
	fmt.Fprintf(w, "# HELP pparouter_backend_queue_depth Admission queue depth last reported by the backend's /healthz.\n")
	fmt.Fprintf(w, "# TYPE pparouter_backend_queue_depth gauge\n")
	for _, b := range fleet {
		fmt.Fprintf(w, "pparouter_backend_queue_depth{backend=%q} %d\n", b.URL, b.Last.QueueDepth)
	}
	fmt.Fprintf(w, "# HELP pparouter_backend_pool_idle Warm sessions parked in the backend's pool, per its /healthz.\n")
	fmt.Fprintf(w, "# TYPE pparouter_backend_pool_idle gauge\n")
	for _, b := range fleet {
		fmt.Fprintf(w, "pparouter_backend_pool_idle{backend=%q} %d\n", b.URL, b.Last.PoolIdle)
	}
	fmt.Fprintf(w, "# HELP pparouter_backend_inflight_batches Batches being solved right now, per the backend's /healthz.\n")
	fmt.Fprintf(w, "# TYPE pparouter_backend_inflight_batches gauge\n")
	for _, b := range fleet {
		fmt.Fprintf(w, "pparouter_backend_inflight_batches{backend=%q} %d\n", b.URL, b.Last.InflightBatches)
	}
	fmt.Fprintf(w, "# HELP pparouter_backend_sessions Live dynamic-graph sessions, per the backend's /healthz.\n")
	fmt.Fprintf(w, "# TYPE pparouter_backend_sessions gauge\n")
	for _, b := range fleet {
		fmt.Fprintf(w, "pparouter_backend_sessions{backend=%q} %d\n", b.URL, b.Last.Sessions)
	}

	fmt.Fprintf(w, "# HELP pparouter_cache Front-door result cache (LRU keyed by graph digest + dests + width).\n")
	fmt.Fprintf(w, "pparouter_cache_hits_total %d\n", cache.Hits)
	fmt.Fprintf(w, "pparouter_cache_misses_total %d\n", cache.Misses)
	fmt.Fprintf(w, "pparouter_cache_evictions_total %d\n", cache.Evictions)
	fmt.Fprintf(w, "pparouter_cache_entries %d\n", cache.Entries)
	fmt.Fprintf(w, "pparouter_cache_bytes %d\n", cache.Bytes)
	ratio := 0.0
	if total := cache.Hits + cache.Misses; total > 0 {
		ratio = float64(cache.Hits) / float64(total)
	}
	fmt.Fprintf(w, "pparouter_cache_hit_ratio %g\n", ratio)
	fmt.Fprintf(w, "pparouter_singleflight_collapsed_total %d\n", collapsed)

	fmt.Fprintf(w, "pparouter_cache_served_total %d\n", m.cacheServed)
	fmt.Fprintf(w, "pparouter_failovers_total %d\n", m.failovers)
	fmt.Fprintf(w, "pparouter_deadline_exceeded_total %d\n", m.deadline)
}
