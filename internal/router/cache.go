package router

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// Cache is the bounded front-door result cache: an LRU over rendered
// 200-response bodies keyed by the exact solve identity (graph digest +
// destinations + word width — see identity.go). Because a solve result
// is a pure function of that identity, a cached body can never be stale;
// the only cache policy is capacity. Bounded by entry count and by
// total byte footprint, whichever bites first.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	byKey      map[string]*list.Element
	bytes      int64

	hits, misses, evictions int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// entryOverhead approximates the bookkeeping cost of one entry (list
// element, map slot, headers) for the byte bound.
const entryOverhead = 96

// NewCache returns an LRU holding at most maxEntries entries and
// maxBytes of body+key bytes (either <= 0 disables that bound; both
// disabled means an unbounded cache, so don't).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		byKey:      make(map[string]*list.Element),
	}
}

// Get returns the cached body for key, promoting it to most recently
// used. The returned slice is shared — callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).body, true
	}
	c.misses++
	return nil, false
}

// Put stores body under key and evicts from the cold end until both
// bounds hold again. Bodies that alone exceed the byte bound are not
// stored (they would evict everything for one entry).
func (c *Cache) Put(key string, body []byte) {
	cost := int64(len(body) + len(key) + entryOverhead)
	if c.maxBytes > 0 && cost > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		// Identical identity means identical result; keep the old body.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.byKey[key] = el
	c.bytes += cost
	for (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		c.ll.Remove(tail)
		delete(c.byKey, ent.key)
		c.bytes -= int64(len(ent.body) + len(ent.key) + entryOverhead)
		c.evictions++
	}
}

// CacheStats is a consistent snapshot for /metrics.
type CacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
	Bytes                   int64
}

// Stats returns a consistent snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: c.ll.Len(), Bytes: c.bytes,
	}
}

// upstream is one forwarded exchange as seen by the response writer:
// the backend's verbatim body and status plus the headers the router
// passes through.
type upstream struct {
	status     int // 0 = transport failure (err set)
	body       []byte
	backend    string
	retryAfter string // backend's Retry-After header, passed through on 429/503
	latency    time.Duration
	err        error
}

// flightGroup collapses concurrent identical cache misses into one
// upstream call (single flight): the first caller for a key becomes the
// leader and forwards; followers block until the leader finishes and
// share its response. Entries are removed when the flight lands, so a
// failed flight is retried by the next request rather than caching the
// failure.
type flightGroup struct {
	mu        sync.Mutex
	flights   map[string]*flight
	collapsed int64 // followers served without an upstream call
}

type flight struct {
	done chan struct{}
	res  *upstream
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// Do runs fn once per key among concurrent callers. shared reports
// whether this caller was a follower. A follower whose ctx expires
// while waiting returns ctx.Err() without cancelling the leader.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() *upstream) (res *upstream, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		g.collapsed++
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.res, true, nil
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.res = fn()
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.res, false, nil
}

// inFlight returns the open flight for key, if any (test hook).
func (g *flightGroup) inFlight(key string) *flight {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.flights[key]
}

// Collapsed returns the number of followers served by a leader's flight.
func (g *flightGroup) Collapsed() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.collapsed
}
