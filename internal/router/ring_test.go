package router

import (
	"fmt"
	"math/rand"
	"testing"
)

func ringMembers(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("http://backend-%d:8080", i)
	}
	return ms
}

// TestRingDeterminism pins the property warm-session affinity depends
// on: the ring is a pure function of the member set, so the same key
// maps to the same backend across router restarts and across replicas,
// regardless of configuration order.
func TestRingDeterminism(t *testing.T) {
	members := ringMembers(5)
	shuffled := append([]string(nil), members...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	a := NewRing(members, 64)
	b := NewRing(shuffled, 64) // a "restart" with reordered config
	for i := 0; i < 10000; i++ {
		key := rand.New(rand.NewSource(int64(i))).Uint64()
		ma, _ := a.Lookup(key)
		mb, _ := b.Lookup(key)
		if ma != mb {
			t.Fatalf("key %#x: %s vs %s across restarts", key, ma, mb)
		}
	}
}

// TestRingDistribution sanity-checks that virtual nodes spread load:
// with 4 members and 64 vnodes no member should own a wildly
// disproportionate share of uniformly random keys.
func TestRingDistribution(t *testing.T) {
	members := ringMembers(4)
	r := NewRing(members, 64)
	counts := make(map[string]int)
	rng := rand.New(rand.NewSource(7))
	const keys = 40000
	for i := 0; i < keys; i++ {
		m, ok := r.Lookup(rng.Uint64())
		if !ok {
			t.Fatal("lookup failed on a populated ring")
		}
		counts[m]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.15 || share > 0.35 {
			t.Errorf("%s owns %.1f%% of keys; vnode spread is broken", m, 100*share)
		}
	}
}

// TestRingRebalanceBounds pins the consistent-hashing contract: removing
// one member moves ONLY the keys that member owned — every other key
// keeps its backend (and its warm sessions) through the membership
// change. Adding the member back restores the original placement
// exactly.
func TestRingRebalanceBounds(t *testing.T) {
	members := ringMembers(5)
	full := NewRing(members, 64)
	evicted := members[2]
	reduced := NewRing(append(append([]string(nil), members[:2]...), members[3:]...), 64)

	rng := rand.New(rand.NewSource(3))
	moved, owned := 0, 0
	for i := 0; i < 20000; i++ {
		key := rng.Uint64()
		before, _ := full.Lookup(key)
		after, _ := reduced.Lookup(key)
		if before == evicted {
			owned++
			if after == evicted {
				t.Fatalf("key %#x still maps to the evicted member", key)
			}
			continue
		}
		if before != after {
			moved++
			t.Errorf("key %#x moved %s -> %s though its owner stayed in the ring", key, before, after)
			if moved > 5 {
				t.FailNow()
			}
		}
	}
	if owned == 0 {
		t.Fatal("the evicted member owned no keys; test is vacuous")
	}

	// Re-admission restores the exact original placement (determinism
	// again, from the other side).
	restored := NewRing(members, 64)
	for i := 0; i < 5000; i++ {
		key := rng.Uint64()
		a, _ := full.Lookup(key)
		b, _ := restored.Lookup(key)
		if a != b {
			t.Fatalf("key %#x: placement not restored after re-admission", key)
		}
	}
}

// TestRingSequence pins the failover order: it starts at the key's
// owner, lists distinct members, and never exceeds the member count.
func TestRingSequence(t *testing.T) {
	members := ringMembers(4)
	r := NewRing(members, 64)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		key := rng.Uint64()
		owner, _ := r.Lookup(key)
		seq := r.Sequence(key, 3)
		if len(seq) != 3 {
			t.Fatalf("sequence length %d, want 3", len(seq))
		}
		if seq[0] != owner {
			t.Fatalf("sequence starts at %s, owner is %s", seq[0], owner)
		}
		seen := make(map[string]bool)
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("duplicate member %s in failover sequence", m)
			}
			seen[m] = true
		}
	}
	if got := r.Sequence(42, 0); len(got) != len(members) {
		t.Errorf("max<=0 sequence = %d members, want all %d", len(got), len(members))
	}
	empty := NewRing(nil, 8)
	if _, ok := empty.Lookup(1); ok {
		t.Error("empty ring claims an owner")
	}
	if got := empty.Sequence(1, 2); got != nil {
		t.Errorf("empty ring sequence = %v", got)
	}
}
