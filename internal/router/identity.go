package router

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"sync"

	"ppamcp/internal/graph"
	"ppamcp/internal/serve"
)

// identity is everything the router derives from a request's graph:
// where it goes and what names its results.
//
// Two different hashes on purpose:
//
//   - fp (graph.Fingerprint, 64-bit FNV) places the request on the ring.
//     A collision here costs nothing but a misplaced warm-session
//     affinity — the backend still answers correctly — so the cheap hash
//     the server tier already batches on is the right key.
//   - digest (SHA-256 over n, h and the dense weight matrix) keys the
//     front-door result cache. A collision there would serve one graph's
//     answer for another, so the cache uses a hash for which collisions
//     are cryptographically unreachable instead of merely unlikely.
type identity struct {
	n      int
	h      uint
	fp     uint64
	digest [sha256.Size]byte
}

// graphDigest is the collision-proof solve identity of (g, h).
func graphDigest(g *graph.Graph, h uint) [sha256.Size]byte {
	hash := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.N))
	hash.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(h))
	hash.Write(buf[:])
	for _, w := range g.W {
		binary.LittleEndian.PutUint64(buf[:], uint64(w))
		hash.Write(buf[:])
	}
	var out [sha256.Size]byte
	hash.Sum(out[:0])
	return out
}

// identCache memoizes request bytes -> identity so the router
// materializes each distinct graph spec once, not once per request:
// building an n-vertex graph is O(n^2) work, and a production mix
// repeats the same few graphs with varying destination lists. Keyed by
// the verbatim graph/gen JSON plus the requested bits — two spellings of
// the same graph miss the memo but still converge on the same digest, so
// correctness never depends on the memo hitting.
type identCache struct {
	mu         sync.Mutex
	maxEntries int
	ll         *list.List
	byKey      map[string]*list.Element
}

type identEntry struct {
	key string
	id  identity
}

func newIdentCache(maxEntries int) *identCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &identCache{
		maxEntries: maxEntries,
		ll:         list.New(),
		byKey:      make(map[string]*list.Element),
	}
}

// identKey is the memo key for a request: the raw graph or gen bytes
// plus the requested width.
func identKey(req *serve.SolveRequest) string {
	return string(req.Graph) + "\x00" + string(req.Gen) + "\x00" + strconv.FormatUint(uint64(req.Bits), 10)
}

// resolve returns the identity for req, building the graph only on memo
// miss. maxN bounds the accepted graph exactly as the backends do, so
// oversized requests die here with a 400 instead of fanning out.
func (c *identCache) resolve(req *serve.SolveRequest, maxN int) (identity, error) {
	key := identKey(req)
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		id := el.Value.(*identEntry).id
		c.mu.Unlock()
		return id, nil
	}
	c.mu.Unlock()

	g, err := req.BuildGraph(maxN)
	if err != nil {
		return identity{}, err
	}
	if err := g.Validate(); err != nil {
		return identity{}, err
	}
	h, err := serve.PickBits(g, req.Bits)
	if err != nil {
		return identity{}, err
	}
	id := identity{n: g.N, h: h, fp: graph.Fingerprint(g, h), digest: graphDigest(g, h)}

	c.mu.Lock()
	if _, ok := c.byKey[key]; !ok {
		c.byKey[key] = c.ll.PushFront(&identEntry{key: key, id: id})
		for c.ll.Len() > c.maxEntries {
			tail := c.ll.Back()
			c.ll.Remove(tail)
			delete(c.byKey, tail.Value.(*identEntry).key)
		}
	}
	c.mu.Unlock()
	return id, nil
}

// resultKey names a solve result in the front-door cache: the exact
// graph digest, the resolved word width, and the destination list in
// request order. Everything else in the request (timeout, spelling of
// the graph) cannot change the result.
func resultKey(id identity, dests []int) string {
	buf := make([]byte, 0, 2*sha256.Size+8+len(dests)*4)
	buf = append(buf, hex.EncodeToString(id.digest[:])...)
	buf = append(buf, '|')
	buf = strconv.AppendUint(buf, uint64(id.h), 10)
	for _, d := range dests {
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(d), 10)
	}
	return string(buf)
}
