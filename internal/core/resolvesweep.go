package core

import (
	"context"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// This file is the incremental all-pairs driver: ResolveSweep is to
// Resolve what SolveSweep is to Solve. After a Session.Update batch, one
// warm fabric streams re-solved rows for a whole destination list, each
// destination seeded from its retained solution (resolve.go) instead of
// the cold 1-edge init — and destinations the delta provably cannot have
// touched skip the DP entirely.
//
// The skip-converged check (warmAffected) is what makes a k-edge delta
// cost O(k) per untouched destination instead of a detection round on the
// fabric. It replays the change-log suffix since the destination's
// snapshot against the snapshot itself:
//
//   - an increase on edge (u, v) can only matter if a recorded path
//     traverses it, i.e. next[u] == v with u reachable — exactly the
//     condition under which applyIncreases would invalidate a subtree;
//   - a decrease on edge (u, v) can only matter if it relaxes against the
//     snapshot, i.e. sat(w'_uv + dist[v]) < dist[u] — or ties it
//     (== with u reachable), which cannot change distances but can add a
//     tight edge and thereby change the canonical next pointers.
//
// If no logged entry fires, the old distance vector is still feasible for
// the current weights (w'_ij + dist[j] >= dist[i] on every edge: untouched
// edges held at snapshot time, touched edges are certified entry by
// entry), so it is still THE distance vector; and since no tight edge
// appeared and every vanished tight edge (u, v) was non-canonical
// (next[u] != v, and next[u] itself stays tight one hop level down), the
// hop-level BFS of canonicalNext and every smallest-tight-successor choice
// are unchanged too. The retained row is therefore bit-identical to what
// the DP would converge to, and is emitted as-is with zero Iterations and
// zero Metrics — no fabric transaction happens in either lane, so
// fast/general parity is preserved trivially. Entries with u == dest are
// ignored: row dest of the DP is pinned (dist[dest] = 0), so the
// destination's own outgoing edges never enter its solution.
//
// Everything else keeps the established contract: Dist/Next bit-identical
// to a cold SolveSweep, first-sweep-after-Reload byte-identical including
// Metrics (every destination takes the same cold dispatch SolveSweep
// uses, and retaining costs no machine transactions), and faulty/
// PaperInit fabrics never warm-start (retainable), so they fall back to
// cold sweeps every time.

// ResolveSweep re-solves every destination in dests, in order, on the
// session's current graph, calling yield with each destination's Result
// as it completes — the incremental all-pairs driver. Destinations must
// be distinct and in range (*DestError otherwise, before anything runs).
//
// Per destination the dispatch is Resolve's: warm-start from the retained
// solution when one is usable, cold solve (retained for next time)
// otherwise — so Dist and Next are always identical to a from-scratch
// Reload + SolveSweep, and on a session with no retained state (first
// sweep, after Reload, faulty or PaperInit fabrics) Metrics and
// Iterations are byte-identical to SolveSweep's too. Beyond Resolve,
// a destination the update delta provably did not affect skips the DP:
// its row is emitted from the retained solution with Iterations == 0 and
// zero Metrics (see the file comment for the certificate).
//
// Error discipline matches SolveSweep: first failed solve or first
// non-nil yield error stops the sweep, earlier yields remain valid.
func (s *Session) ResolveSweep(ctx context.Context, dests []int, yield func(*Result) error) error {
	if err := s.checkDests(dests); err != nil {
		return err
	}
	for _, d := range dests {
		r, err := s.resolveOne(ctx, d, true)
		if err != nil {
			return err
		}
		if err := yield(r); err != nil {
			return err
		}
	}
	return nil
}

// warmAffected reports whether the change-log suffix since w's snapshot
// could have changed destination dest's solution (distances or canonical
// next pointers). False is a certificate that the retained row is still
// exact; true is conservative — the DP runs and settles it.
func (s *Session) warmAffected(dest int, w *warmDest) bool {
	if w.ver == s.version {
		return false
	}
	n := s.m.N()
	inf := ppa.Infinity(s.m.Bits())
	W := s.W.Words()
	for _, e := range s.incLog {
		if e.ver <= w.ver || int(e.u) == dest {
			continue
		}
		u := int(e.u)
		if e.inc {
			// An increase breaks exactly the recorded paths through (u, v);
			// a vanished non-canonical tight edge cannot move next (file
			// comment). Same condition applyIncreases invalidates on.
			if w.next[u] == e.v && w.sow[u] != inf {
				return true
			}
			continue
		}
		// A decrease matters iff it relaxes against the snapshot — or ties
		// it on a reachable vertex, which adds a tight edge the canonical
		// next reconstruction could prefer. Current weight, not the logged
		// one: later entries on the same edge are certified by their own
		// log entries, and only the net weight is live.
		cand := W[u*n+int(e.v)] + w.sow[e.v] // lanes in [0, inf]: no overflow
		if cand > inf {
			cand = inf
		}
		if cand < w.sow[u] || (cand == w.sow[u] && w.sow[u] != inf) {
			return true
		}
	}
	return false
}

// emitRetained builds a Result straight from the retained solution — the
// skip-converged fast-out. Zero Iterations and zero Metrics: no DP ran,
// no fabric transaction was issued, in either execution lane. The
// snapshot version is refreshed (the certificate just proved the row
// current) so later sweeps only replay newer log entries.
func (s *Session) emitRetained(dest int, w *warmDest) *Result {
	n := s.m.N()
	h := s.m.Bits()
	inf := ppa.Infinity(h)
	res := &Result{
		Result: graph.Result{
			Dest: dest,
			Dist: make([]int64, n),
			Next: make([]int, n),
		},
		Bits: h,
	}
	for i := 0; i < n; i++ {
		switch {
		case i == dest:
			res.Dist[i] = 0
			res.Next[i] = -1
		case w.sow[i] == inf:
			res.Dist[i] = graph.NoEdge
			res.Next[i] = -1
		default:
			res.Dist[i] = int64(w.sow[i])
			res.Next[i] = int(w.next[i])
		}
	}
	w.ver = s.version
	s.pruneLog()
	return res
}
