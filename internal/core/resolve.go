package core

import (
	"context"
	"fmt"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// This file is the DP half of the incremental re-solve path. Resolve is
// Solve for dynamic graphs: the first call per destination is exactly a
// cold solve (same instruction sequence, same Metrics), but the solution
// is retained, and later calls warm-start the DP from it instead of from
// the 1-edge seeds.
//
// Why warm-starting is sound: the DP round operator
// T(x)_i = min_j sat(w_ij + x_j) (the self term w_ii = 0 makes rounds
// monotone non-increasing) drives ANY pointwise upper bound of the true
// distances down to them within n-1 rounds. Old distances stay upper
// bounds across weight decreases (the recorded paths only get cheaper),
// so decrease-only deltas re-seed directly; a weight increase on edge
// (u, v) can break exactly the recorded paths that traverse it, so the
// seed entries of u's subtree in the retained shortest-path tree are
// invalidated back to MAXINT (update.go logs increases for this). The
// surviving entries quote paths that avoid every increased edge, hence
// remain valid upper bounds.
//
// The converged distances equal the from-scratch ones exactly. The next
// pointers need one more step: the cold DP's PTN is the smallest column j
// with a tight edge (w_ij + dist_j = dist_i) whose own minimal optimal
// path uses one edge less (PTN is written only on the round where SOW
// last strictly improves, and the attaining set at that round is exactly
// those j). A warm trajectory takes different rounds, so after
// convergence Resolve reconstructs that canonical choice on the host —
// a BFS from the destination over reversed tight edges assigns the
// edge-count levels, then each vertex picks its smallest tight successor
// one level down — making warm results bit-identical to cold ones, not
// just cost-equal.
//
// Like the batched sweep, the warm path has a fused fast lane
// (resolveFast): rounds are computed as O(n²) host word scans while every
// fabric transaction of the reference sequence is shadow-charged
// (ChargeBroadcast / ChargeWiredOr with the same switch planes, a real
// GlobalOrBits on the maintained predicate plane) and every SIMD
// instruction counted, so Metrics, Iterations and the observer event
// stream are byte-identical to the general warm path (resolveGeneral,
// which runs the real machine program and serves virtualized, reference,
// and switch-only fabrics).

// resolveState is the warm-path scratch, allocated on first Resolve and
// reused for every re-solve thereafter (steady state allocates only the
// yielded Result).
type resolveState struct {
	sow   []ppa.Word // working distances: seed in, converged out
	rmin  []ppa.Word // per-row candidate minima (fast path)
	rarg  []int32    // per-row first arg-min (fast path)
	next  []int32    // canonical next pointers out
	hops  []int32    // tight-edge BFS levels
	q     []int32    // BFS queue
	head  []int32    // shortest-path-tree children lists (invalidation)
	sib   []int32
	stack []int32
}

func (s *Session) resolveScratch() *resolveState {
	if s.rs != nil {
		return s.rs
	}
	n := s.m.N()
	s.rs = &resolveState{
		sow:   make([]ppa.Word, n),
		rmin:  make([]ppa.Word, n),
		rarg:  make([]int32, n),
		next:  make([]int32, n),
		hops:  make([]int32, n),
		q:     make([]int32, 0, n),
		head:  make([]int32, n),
		sib:   make([]int32, n),
		stack: make([]int32, 0, n),
	}
	return s.rs
}

// Resolve solves for dest on the session's current graph, warm-starting
// from the previous Resolve of the same destination when one is retained
// and still valid. Dist and Next are identical to a from-scratch
// Reload+Solve in every case; on the first call per destination (or after
// Reload, or when invalidated) the Metrics and Iterations are also
// byte-identical to Solve's, while a warm re-solve legitimately reports
// fewer iterations — that is the win (see DESIGN §12).
//
// Sessions on faulty fabrics and PaperInit sessions never warm-start:
// their solves are not fixpoints of the healthy DP operator, so a
// previous solution is not a safe seed. They run the cold path every
// time.
func (s *Session) Resolve(ctx context.Context, dest int) (*Result, error) {
	n := s.m.N()
	if dest < 0 || dest >= n {
		return nil, fmt.Errorf("core: destination %d out of range [0,%d)", dest, n)
	}
	return s.resolveOne(ctx, dest, false)
}

// resolveOne is the shared per-destination dispatch of Resolve and
// ResolveSweep: warm re-solve when a usable snapshot exists, cold solve
// (retained for next time) otherwise. allowSkip enables ResolveSweep's
// skip-converged fast-out (resolvesweep.go); Resolve keeps it off so its
// per-call contract — the DP runs and Iterations >= 1 — is unchanged.
func (s *Session) resolveOne(ctx context.Context, dest int, allowSkip bool) (*Result, error) {
	if w := s.warmUsable(dest); w != nil {
		if allowSkip && !s.warmAffected(dest, w) {
			return s.emitRetained(dest, w), nil
		}
		return s.resolveWarm(ctx, dest, w)
	}
	var r *Result
	var err error
	if pm := s.sweepMachine(); pm != nil {
		r, err = s.solveSweepFast(ctx, pm, dest)
	} else {
		r, err = s.SolveContext(ctx, dest)
	}
	if err != nil {
		return nil, err
	}
	if s.retainable() {
		s.retain(dest, r)
	}
	return r, nil
}

// retainable reports whether solutions may be retained and reused as warm
// seeds on this session.
func (s *Session) retainable() bool {
	if s.opt.PaperInit {
		return false
	}
	if f, ok := s.m.(interface{ Faulty() bool }); ok && f.Faulty() {
		return false
	}
	return true
}

// warmUsable returns the retained solution Resolve may warm-start from,
// or nil when the cold path must run.
func (s *Session) warmUsable(dest int) *warmDest {
	if s.warm == nil || !s.retainable() {
		return nil
	}
	w := s.warm[dest]
	if w == nil || w.ver < s.logFloor {
		return nil
	}
	return w
}

// resolveWarm is the warm re-solve: seed from the snapshot, invalidate
// what the logged increases may have broken, iterate to convergence,
// reconstruct the canonical next pointers, refresh the snapshot.
func (s *Session) resolveWarm(ctx context.Context, dest int, w *warmDest) (*Result, error) {
	n := s.m.N()
	h := s.m.Bits()
	inf := ppa.Infinity(h)
	maxIter := s.opt.MaxIterations
	if maxIter <= 0 {
		maxIter = n + 1
	}
	rs := s.resolveScratch()
	copy(rs.sow, w.sow)
	s.applyIncreases(w, rs, inf)

	startMetrics := s.m.Metrics()
	var iterations int
	var err error
	if pm := s.sweepMachine(); pm != nil {
		iterations, err = s.resolveFast(ctx, pm, dest, rs, maxIter)
	} else {
		iterations, err = s.resolveGeneral(ctx, dest, rs, maxIter)
	}
	if err != nil {
		return nil, err
	}
	s.canonicalNext(dest, rs, inf)

	res := &Result{
		Result: graph.Result{
			Dest:       dest,
			Dist:       make([]int64, n),
			Next:       make([]int, n),
			Iterations: iterations,
		},
		Metrics: s.m.Metrics().Sub(startMetrics),
		Bits:    h,
	}
	for i := 0; i < n; i++ {
		switch {
		case i == dest:
			res.Dist[i] = 0
			res.Next[i] = -1
		case rs.sow[i] == inf:
			res.Dist[i] = graph.NoEdge
			res.Next[i] = -1
		default:
			res.Dist[i] = int64(rs.sow[i])
			res.Next[i] = int(rs.next[i])
		}
	}
	copy(w.sow, rs.sow)
	w.sow[dest] = 0
	copy(w.next, rs.next)
	w.ver = s.version
	s.pruneLog()
	return res, nil
}

// applyIncreases raises to MAXINT every seed entry whose recorded path may
// traverse an edge that increased since the snapshot: for each logged
// increase (u, v) newer than the snapshot (decrease entries in the change
// log are skipped — they cannot break an upper bound) with next[u] == v,
// the whole
// subtree of u in the retained shortest-path tree (every vertex whose
// recorded path passes through u). Conservative — a survivor's recorded
// path avoids all increased edges, so its cost is unchanged and the seed
// stays an upper bound.
func (s *Session) applyIncreases(w *warmDest, rs *resolveState, inf ppa.Word) {
	applicable := false
	for _, e := range s.incLog {
		if e.ver > w.ver && e.inc {
			applicable = true
			break
		}
	}
	if !applicable {
		return
	}
	n := s.m.N()
	head, sib := rs.head, rs.sib
	for i := range head {
		head[i] = -1
	}
	for i := 0; i < n; i++ {
		if p := w.next[i]; p >= 0 {
			sib[i] = head[p]
			head[p] = int32(i)
		}
	}
	stack := rs.stack[:0]
	for _, e := range s.incLog {
		if e.ver <= w.ver || !e.inc {
			continue
		}
		u := int(e.u)
		if w.next[u] != e.v || rs.sow[u] == inf {
			continue
		}
		// Iterative subtree walk; an entry already at MAXINT was either
		// invalidated by an earlier increase or unreachable — both final.
		stack = append(stack, int32(u))
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if rs.sow[x] == inf {
				continue
			}
			rs.sow[x] = inf
			for c := head[x]; c >= 0; c = sib[c] {
				stack = append(stack, c)
			}
		}
	}
	rs.stack = stack[:0]
}

// resolveGeneral runs the warm DP as the real machine program — the path
// for virtualized fabrics, reference kernels and the switch-only bus
// model. Init is two instructions (ROW==d, its negation) plus the
// row-d seed DMA; the loop is SolveContext's own (runDP).
func (s *Session) resolveGeneral(ctx context.Context, dest int, rs *resolveState, maxIter int) (int, error) {
	a := s.a
	n := s.m.N()
	rowIsD := s.row.EqConst(ppa.Word(dest))
	notD := rowIsD.Not()
	SOW := a.Zeros()
	PTN := a.Zeros()
	MinSOW := a.Zeros() // zero row d keeps SOW[d][d] pinned to 0, as in Solve
	OldSOW := a.Zeros()
	SOW.LoadRow(dest, rs.sow)
	// PTN's DP output is superseded by the canonical host reconstruction
	// (see the file comment), so its zero seed is fine: the loop only ever
	// writes it.
	iterations, loopErr := s.runDP(ctx, maxIter, rowIsD, notD, SOW, PTN, MinSOW, OldSOW)
	if loopErr == nil {
		for i := 0; i < n; i++ {
			rs.sow[i] = SOW.At(dest, i)
		}
	}
	OldSOW.Release()
	MinSOW.Release()
	PTN.Release()
	SOW.Release()
	notD.Release()
	rowIsD.Release()
	if loopErr != nil {
		return 0, loopErr
	}
	return iterations, nil
}

// resolveFast is the fused warm loop: rounds as host word scans over the
// candidate vectors, every fabric transaction of resolveGeneral's
// sequence shadow-charged in order with the same switch planes (the
// attaining-lane sets the walks would leave in `enable` are rebuilt so
// observer Opens counts match), and the statement-20 predicate resolved
// by a real global-OR. Metrics/Iterations/event-stream parity with
// resolveGeneral is pinned by TestResolveFastGeneralParity.
func (s *Session) resolveFast(ctx context.Context, pm *ppa.Machine, dest int, rs *resolveState, maxIter int) (int, error) {
	n := s.m.N()
	h := pm.Bits()
	hh := int(h)
	size := int64(n) * int64(n)
	inf := ppa.Infinity(h)
	w := s.sweep()
	W := s.W.Words()
	diagBits := s.diag.Bits()
	headBits := s.rowHead.Bits()
	charge := func(k int) {
		for i := 0; i < k; i++ {
			pm.CountInstr()
			pm.CountPE(size)
		}
	}

	// Warm init, shadowing resolveGeneral: selector retarget charged as
	// the EqConst it replaces, the Not, and the uncharged row-d seed DMA.
	w.retarget(dest, n)
	charge(1) // rowIsD = ROW.EqConst(d)
	charge(1) // notD = rowIsD.Not()
	copy(w.sowd, rs.sow)
	w.pred.Fill(false)

	iterations := 0
	var loopErr error
	for {
		if err := ctx.Err(); err != nil {
			loopErr = err
			break
		}
		iterations++
		if iterations > maxIter {
			loopErr = fmt.Errorf("core: DP did not converge within %d rounds", maxIter)
			break
		}

		// Statement 10: candidate plane, then each row's minimum and first
		// arg-min in one scan — the values both bus walks would extract.
		sweepCand(w.cand, w.sowd, W, dest, n, inf)
		pm.ChargeBroadcast(ppa.South, w.rowBits)
		charge(2) // cand = down.AddSat(W); SOW.Assign (where !=d)
		for i := 0; i < n; i++ {
			row := w.cand[i*n : i*n+n]
			mv, ma := row[0], 0
			for j := 1; j < n; j++ {
				if row[j] < mv {
					mv, ma = row[j], j
				}
			}
			rs.rmin[i], rs.rarg[i] = mv, int32(ma)
		}

		// Statement 11: Min(SOW, WEST, COL==n-1), charge-only walk.
		charge(hh) // per-plane gathers
		charge(1)  // enable = True()
		for j := 0; j < hh; j++ {
			charge(2) // Not + And(enable)
			pm.ChargeWiredOr(ppa.West, headBits)
			charge(2) // And + masked withdraw
		}
		charge(1) // result = src.Copy()
		// After the walk, enable holds every lane attaining its row
		// minimum — rebuilt so the broadcast event's Opens count matches.
		w.enable.Fill(false)
		for i := 0; i < n; i++ {
			row := w.cand[i*n : i*n+n]
			mv := rs.rmin[i]
			for j, v := range row {
				if v == mv {
					w.enable.Set(i*n + j)
				}
			}
		}
		pm.ChargeBroadcast(ppa.East, w.enable) // survivors send upstream
		pm.ChargeBroadcast(ppa.West, headBits) // heads spread the minima
		charge(1)                              // MinSOW.Assign (where !=d)
		charge(1)                              // sel = rowMin.Eq(SOW)

		// Statement 12: SelectedMin(COL, WEST, COL==n-1, sel).
		charge(hh) // gathers
		charge(1)  // enable = sel.Copy()
		for j := 0; j < hh; j++ {
			charge(2)
			pm.ChargeWiredOr(ppa.West, headBits)
			charge(2)
		}
		charge(1) // result = src.Copy()
		// The column walk leaves exactly the first attaining lane per row.
		w.enable.Fill(false)
		for i := 0; i < n; i++ {
			w.enable.Set(i*n + int(rs.rarg[i]))
		}
		pm.ChargeBroadcast(ppa.East, w.enable)
		pm.ChargeBroadcast(ppa.West, headBits)
		charge(1) // PTN.Assign (where !=d)

		// Statements 14-19: fold into row d via the diagonal.
		pm.ChargeBroadcast(ppa.South, diagBits) // newRow
		pm.ChargeBroadcast(ppa.South, diagBits) // newPTN
		charge(4)                               // OldSOW.Assign; SOW.Assign; changed = Ne; PTN.Assign
		w.pred.FillRange(dest*n, dest*n+n, false)
		for j := 0; j < n; j++ {
			nv := rs.rmin[j]
			if j == dest {
				nv = 0 // MinSOW[d][d] stays pinned to 0
			}
			if nv != w.sowd[j] {
				w.pred.Set(dest*n + j)
				w.sowd[j] = nv
			}
		}

		// Statement 20: while at least one SOW in row d has changed.
		charge(2) // ne = SOW.Ne(OldSOW); pred = rowIsD.And(ne)
		if !pm.GlobalOrBits(w.pred) {
			break
		}
	}
	if loopErr != nil {
		return 0, loopErr
	}
	copy(rs.sow, w.sowd)
	return iterations, nil
}

// canonicalNext rebuilds, from converged distances, the next pointers the
// cold DP reports: BFS from dest over reversed tight edges assigns each
// reachable vertex the minimum edge count among its optimal paths, then
// each vertex takes the smallest tight successor one level down (the
// attaining set of the round where cold SOW last strictly improved).
func (s *Session) canonicalNext(dest int, rs *resolveState, inf ppa.Word) {
	n := s.m.N()
	W := s.W.Words()
	hops := rs.hops
	for i := range hops {
		hops[i] = -1
	}
	hops[dest] = 0
	q := append(rs.q[:0], int32(dest))
	for qh := 0; qh < len(q); qh++ {
		j := int(q[qh])
		dj := rs.sow[j]
		for i := 0; i < n; i++ {
			if hops[i] >= 0 || i == j {
				continue
			}
			di := rs.sow[i]
			if di == inf {
				continue
			}
			// Words are at most Infinity(h) <= 2^62-1: no int64 overflow.
			if wij := W[i*n+j]; wij != inf && di == wij+dj {
				hops[i] = hops[j] + 1
				q = append(q, int32(i))
			}
		}
	}
	rs.q = q[:0]
	for i := 0; i < n; i++ {
		if i == dest || rs.sow[i] == inf {
			rs.next[i] = -1
			continue
		}
		di := rs.sow[i]
		target := hops[i] - 1
		rs.next[i] = -1 // a tight successor always exists; belt and braces
		for j := 0; j < n; j++ {
			if j == i || hops[j] != target {
				continue
			}
			if wij := W[i*n+j]; wij != inf && di == wij+rs.sow[j] {
				rs.next[i] = int32(j)
				break
			}
		}
	}
}
