package core

import (
	"reflect"
	"testing"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// TestSessionMatchesOneShotSolves: a session reused across destinations
// produces exactly what fresh per-destination solves produce, including
// per-solve metric deltas.
func TestSessionMatchesOneShotSolves(t *testing.T) {
	g := graph.GenRandomConnected(10, 0.3, 9, 61)
	s, err := NewSession(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for dest := 0; dest < g.N; dest++ {
		fromSession, err := s.Solve(dest)
		if err != nil {
			t.Fatal(err)
		}
		oneShot := mustSolve(t, g, dest, Options{Bits: fromSession.Bits})
		if !reflect.DeepEqual(fromSession.Dist, oneShot.Dist) ||
			!reflect.DeepEqual(fromSession.Next, oneShot.Next) ||
			fromSession.Iterations != oneShot.Iterations {
			t.Fatalf("dest %d: session solve diverged", dest)
		}
		// Comm-cycle deltas are identical (instruction counts differ by
		// the amortized setup).
		sm, om := fromSession.Metrics, oneShot.Metrics
		if sm.BusCycles != om.BusCycles || sm.WiredOrCycles != om.WiredOrCycles ||
			sm.GlobalOrOps != om.GlobalOrOps {
			t.Fatalf("dest %d: comm metrics differ: session %v vs one-shot %v", dest, sm, om)
		}
	}
	// The session fabric accumulated all solves.
	if s.Fabric().Metrics().BusCycles == 0 {
		t.Error("session fabric recorded nothing")
	}
}

func TestSessionSolveValidation(t *testing.T) {
	g := graph.GenChain(4, 1)
	s, err := NewSession(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(-1); err == nil {
		t.Error("negative dest accepted")
	}
	if _, err := s.Solve(4); err == nil {
		t.Error("out-of-range dest accepted")
	}
}

func TestNewSessionValidation(t *testing.T) {
	bad := graph.New(2)
	bad.W[1] = -1
	if _, err := NewSession(bad, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
	if _, err := NewSession(graph.GenChain(4, 1), Options{Bits: 63}); err == nil {
		t.Error("oversized Bits accepted")
	}
	if _, err := NewSession(graph.GenChain(10, 1), Options{Bits: 3}); err == nil {
		t.Error("3-bit machine accepted for 10 vertices")
	}
	if _, err := NewSession(graph.GenChain(6, 1), Options{PhysicalSide: 4}); err == nil {
		t.Error("non-divisor physical side accepted")
	}
	if _, err := NewSessionOn(ppa.New(5, 8), graph.GenChain(4, 1), Options{}); err == nil {
		t.Error("fabric size mismatch accepted")
	}
	if _, err := NewSessionOn(ppa.New(4, 8), bad.Clone(), Options{}); err == nil {
		t.Error("invalid graph accepted by NewSessionOn")
	}
}

// TestSessionWithFaultInjectionBetweenSolves: the Fabric accessor lets a
// caller damage the machine mid-session; subsequent solves feel it.
func TestSessionWithFaultInjectionBetweenSolves(t *testing.T) {
	g := graph.GenRandomConnected(6, 0.35, 9, 13)
	s, err := NewSession(g, Options{MaxIterations: 18})
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := s.Solve(2)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := s.Fabric().(*ppa.Machine)
	if !ok {
		t.Fatal("expected a direct machine")
	}
	m.InjectFault(7, ppa.StuckOpen)
	damaged, err := s.Solve(2)
	if err == nil && reflect.DeepEqual(damaged.Dist, healthy.Dist) {
		// The fault may be non-load-bearing; at minimum the run completed.
		t.Log("fault at PE 7 was not load-bearing for dest 2")
	}
	m.ClearFaults()
	recovered, err := s.Solve(2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recovered.Dist, healthy.Dist) {
		t.Error("clearing faults did not restore correct behaviour")
	}
}
