package core

import (
	"fmt"

	"ppamcp/internal/graph"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// SolveWidest runs the widest-path (maximum-bottleneck) dynamic program
// on the PPA — the (max, min) semiring dual of the paper's MCP, and a
// demonstration that the machine's primitive set (broadcast, bit-serial
// Max/SelectedMin, global-OR) covers the whole path-problem family:
//
//	CAP[i] = max over paths i->dest of (min edge weight on the path)
//
// The structure mirrors Solve statement for statement: broadcast row d
// down the columns, combine with W by lanewise *minimum* (the bottleneck
// of extending a path by one edge), reduce each row with the bit-serial
// *maximum*, pick the smallest achieving column for the pointer, fold
// through the diagonal, stop when the global-OR sees no change. Results
// match graph.BellmanFordWidest element for element.
//
// On the machine, MAXINT plays "unbounded" (the destination's own
// capacity) and 0 plays "no path"; finite edge capacities must therefore
// be < MAXINT, and like all the DP's on this machine it assumes
// capacities >= 1.
func SolveWidest(g *graph.Graph, dest int, opt Options) (*graph.WidestResult, ppa.Metrics, error) {
	if dest < 0 || dest >= g.N {
		return nil, ppa.Metrics{}, fmt.Errorf("core: destination %d out of range [0,%d)", dest, g.N)
	}
	if err := g.Validate(); err != nil {
		return nil, ppa.Metrics{}, err
	}
	h := opt.Bits
	if h == 0 {
		// Capacities never exceed the largest edge weight; indices must
		// also fit.
		h = 1
		for int64(1)<<h-1 <= g.MaxWeight() || int64(1)<<h-1 <= int64(g.N-1) {
			h++
		}
	}
	if h > ppa.MaxBits {
		return nil, ppa.Metrics{}, fmt.Errorf("core: word width %d exceeds %d bits", h, ppa.MaxBits)
	}
	n := g.N
	inf := ppa.Infinity(h)
	if int64(n-1) > int64(inf) {
		return nil, ppa.Metrics{}, fmt.Errorf("core: %d-bit words cannot hold vertex indices up to %d", h, n-1)
	}
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = n + 1
	}

	var mopts []ppa.Option
	if opt.Workers > 1 {
		mopts = append(mopts, ppa.WithWorkers(opt.Workers))
	}
	m := ppa.New(n, h, mopts...)
	a := par.New(m)

	// Load: missing edges carry no capacity (0); the diagonal carries
	// unbounded capacity (MAXINT) so the j == i term of the row maximum
	// reproduces the previous round's value, keeping the DP monotone.
	w := make([]ppa.Word, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch wt := g.At(i, j); {
			case i == j:
				w[i*n+j] = inf
			case wt == graph.NoEdge:
				w[i*n+j] = 0
			case wt >= int64(inf):
				return nil, ppa.Metrics{}, fmt.Errorf(
					"core: capacity %d indistinguishable from unbounded on a %d-bit machine; raise Options.Bits", wt, h)
			default:
				w[i*n+j] = ppa.Word(wt)
			}
		}
	}

	row, col := a.Row(), a.Col()
	rowIsD := row.EqConst(ppa.Word(dest))
	colIsD := col.EqConst(ppa.Word(dest))
	diag := row.Eq(col)
	rowHead := col.EqConst(ppa.Word(n - 1))
	notD := rowIsD.Not()

	W := a.FromSlice(w)
	CAP := a.Zeros()
	PTN := a.Zeros()
	// MaxCAP's row-d lanes are never written (the updates are masked to
	// ROW != d), so initializing it to MAXINT keeps CAP[d][d] pinned at
	// "unbounded" through the diagonal fold — the dual of MCP's
	// zero-initialized MIN_SOW.
	MaxCAP := a.Inf()
	OldCAP := a.Zeros()

	// Init: CAP[d][j] = w_jd (capacity of the 1-edge path), CAP[d][d] =
	// unbounded. Same corrected column-to-row move as Solve.
	acrossRows := a.Broadcast(W, ppa.East, colIsD)
	ontoRowD := a.Broadcast(acrossRows, ppa.South, diag)
	a.Where(rowIsD, func() {
		CAP.Assign(ontoRowD)
		PTN.AssignConst(ppa.Word(dest))
	})
	a.Where(rowIsD.And(colIsD), func() {
		CAP.AssignConst(inf)
	})

	iterations := 0
	for {
		iterations++
		if iterations > maxIter {
			return nil, ppa.Metrics{}, fmt.Errorf("core: widest-path DP did not converge within %d rounds", maxIter)
		}

		// (i, j) <- min(w_ij, CAP[j][d]): the bottleneck of the extended
		// path.
		cand := a.Broadcast(CAP, ppa.South, rowIsD).MinWith(W)
		a.Where(notD, func() {
			CAP.Assign(cand)
		})

		rowMax := a.Max(CAP, ppa.West, rowHead)
		a.Where(notD, func() {
			MaxCAP.Assign(rowMax)
		})

		sel := rowMax.Eq(CAP)
		argMax := a.SelectedMin(col, ppa.West, rowHead, sel)
		a.Where(notD, func() {
			PTN.Assign(argMax)
		})

		newRow := a.Broadcast(MaxCAP, ppa.South, diag)
		newPTN := a.Broadcast(PTN, ppa.South, diag)
		a.Where(rowIsD, func() {
			OldCAP.Assign(CAP)
			CAP.Assign(newRow)
			a.Where(CAP.Ne(OldCAP), func() {
				PTN.Assign(newPTN)
			})
		})

		if a.None(rowIsD.And(CAP.Ne(OldCAP))) {
			break
		}
	}

	res := &graph.WidestResult{
		Dest:       dest,
		Cap:        make([]int64, n),
		Next:       make([]int, n),
		Iterations: iterations,
	}
	for i := 0; i < n; i++ {
		c := CAP.At(dest, i)
		switch {
		case i == dest:
			res.Cap[i] = graph.Unbounded
			res.Next[i] = -1
		case c == 0:
			res.Cap[i] = 0
			res.Next[i] = -1
		default:
			res.Cap[i] = int64(c)
			res.Next[i] = int(PTN.At(dest, i))
		}
	}
	return res, m.Metrics(), nil
}
