// Package core implements the paper's contribution: the parallel Minimum
// Cost Path algorithm on the Polymorphic Processor Array (Baglietto,
// Maresca, Migliardi — IPPS 1998).
//
// The n-vertex problem maps onto an n x n PPA with PE (i, j) holding the
// weight w_ij of the edge i -> j. Each DP round broadcasts the current
// SOW row down the columns, adds W, takes the bit-serial minimum along
// each row, extracts the arg-min column index with selected_min, and
// writes the new SOW/PTN back to row d via the diagonal. The loop stops
// when the global-OR line reports that no SOW entry of row d changed —
// after p productive rounds plus one detecting round, where p is the
// maximum MCP length to the destination.
//
// Total cost: Θ(p·h) wired-OR cycles plus Θ(p) word broadcasts on an
// h-bit machine — the complexity the paper establishes and experiments
// E1/E2 measure.
package core

import (
	"context"
	"fmt"

	"ppamcp/internal/graph"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
	"ppamcp/internal/virt"
)

// Options tunes Solve.
type Options struct {
	// Bits is the machine word width h. Zero selects the smallest width
	// that can represent every finite path cost (graph.BitsNeeded).
	Bits uint
	// Workers is the simulator's goroutine fan-out for independent bus
	// rings (results are identical for any value; see ppa.WithWorkers).
	Workers int
	// PaperInit reproduces the paper's statement 5 verbatim
	// (`where (ROW == d) SOW = W`), which loads the d-th *row* of W where
	// the DP needs the d-th *column*. It is only correct on symmetric
	// graphs; the default initialization performs the corrected
	// column-to-row move (two extra bus cycles). See DESIGN.md, deviation 2.
	PaperInit bool
	// MaxIterations bounds the DP loop; zero means n+1 (the loop provably
	// terminates within p+1 <= n rounds on non-negative weights, so
	// hitting the bound reports an internal error).
	MaxIterations int
	// SwitchOnlyBus computes the bit-serial minima with plain segmented
	// broadcasts only (par.MinViaSwitches) instead of the wired-OR bus
	// mode — the weaker hardware reading of the paper's or(), under which
	// the printed min() listing is exact (DESIGN.md deviation 3a). Each
	// min costs 2h+2 bus cycles instead of h wired-OR + 2 bus cycles;
	// results are identical (ablation E7).
	SwitchOnlyBus bool
	// PhysicalSide, when nonzero and smaller than n, runs the algorithm
	// block-mapped on a PhysicalSide x PhysicalSide machine (virt.Machine),
	// lifting the paper's one-element-per-PE assumption. n must be a
	// multiple of PhysicalSide. Results are identical; communication
	// cycles scale by k = n/PhysicalSide (the virtualization ablation).
	PhysicalSide int
	// ReferenceKernels forces the interpretive bit-serial reduction path
	// even where the fused bit-sliced kernels apply (they are on by
	// default; results and cost-model counters are identical either way —
	// this is a debugging/ablation knob, see par.Array.SetFused).
	ReferenceKernels bool
}

// Result is the outcome of a PPA MCP computation: the host-side solution
// plus the abstract machine cost of producing it.
type Result struct {
	graph.Result
	// Metrics is the simulator's cycle accounting for this solve,
	// including the corrected initialization (Session setup — coordinate
	// masks and weight loading, which cost no communication — is
	// amortized and excluded).
	Metrics ppa.Metrics
	// Bits is the word width h the machine ran with.
	Bits uint
}

// Solve runs the PPA MCP algorithm for destination dest on g.
func Solve(g *graph.Graph, dest int, opt Options) (*Result, error) {
	if dest < 0 || dest >= g.N {
		return nil, fmt.Errorf("core: destination %d out of range [0,%d)", dest, g.N)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	h := opt.Bits
	if h == 0 {
		h = g.BitsNeeded()
	}
	if h > ppa.MaxBits {
		return nil, fmt.Errorf("core: word width %d exceeds %d bits", h, ppa.MaxBits)
	}
	n := g.N
	if int64(n-1) > int64(ppa.Infinity(h)) {
		return nil, fmt.Errorf("core: %d-bit words cannot hold vertex indices up to %d", h, n-1)
	}

	var mopts []ppa.Option
	if opt.Workers > 1 {
		mopts = append(mopts, ppa.WithWorkers(opt.Workers))
	}
	var m ppa.Fabric
	if opt.PhysicalSide > 0 && opt.PhysicalSide < n {
		vm, err := virt.New(n, opt.PhysicalSide, h, mopts...)
		if err != nil {
			return nil, err
		}
		m = vm
	} else {
		m = ppa.New(n, h, mopts...)
	}
	r, err := SolveOn(m, g, dest, opt)
	// One-shot solve on an internally built machine: stop any ring
	// workers now rather than leaving them to the finalizer.
	if c, ok := m.(interface{ Close() }); ok {
		c.Close()
	}
	return r, err
}

// SolveOn runs the algorithm on a caller-supplied fabric — the entry
// point for fault-injection studies (build a ppa.Machine, InjectFault,
// then SolveOn) and for custom fabrics. The fabric's side must equal the
// vertex count and its word width must fit the problem; Options.Bits,
// Workers and PhysicalSide are ignored here (they describe fabric
// construction, which the caller has already done).
func SolveOn(m ppa.Fabric, g *graph.Graph, dest int, opt Options) (*Result, error) {
	s, err := NewSessionOn(m, g, opt)
	if err != nil {
		return nil, err
	}
	return s.Solve(dest)
}

// Session amortizes machine construction, weight loading and the
// coordinate masks across many solves on the same graph — the
// routing-table pattern, where one destination is solved per vertex. A
// Session is not safe for concurrent use (it owns one simulated machine);
// SolveAllPairs gives each worker goroutine its own.
type Session struct {
	g   *graph.Graph
	m   ppa.Fabric
	a   *par.Array
	opt Options

	row, col *par.Var
	diag     *par.Bool
	rowHead  *par.Bool
	W        *par.Var

	// wbuf is the reusable host staging buffer for Reload: converting a
	// new weight matrix to machine words must not allocate once the
	// session is warm (the session-pool hot path of internal/serve).
	wbuf []ppa.Word

	// sw is the batched-sweep scratch (sweep.go), allocated on first
	// SolveSweep and reused for every destination thereafter. It holds no
	// graph data, so Reload does not invalidate it.
	sw *sweepState

	// Incremental re-solve state (update.go / resolve.go): version counts
	// effective Update batches, warm retains per-destination solutions for
	// Resolve to warm-start from, incLog records the weight increases that
	// can invalidate them (entries older than logFloor have been
	// truncated, so snapshots from before logFloor are unusable). ownG
	// marks s.g as session-owned — Update clones the caller's graph before
	// the first mutation. rs is the warm-path scratch; upIdx/upVals stage
	// the sparse weight DMA.
	version  uint64
	logFloor uint64
	incLog   []incEntry
	warm     map[int]*warmDest
	ownG     bool
	rs       *resolveState
	upIdx    []int
	upVals   []ppa.Word

	// destSeen is the reusable duplicate-destination bitmap of
	// checkDests (sweep.go) — sweep validation must not allocate on the
	// steady-state path.
	destSeen []uint64
}

// NewSession builds a session with a fresh machine (Options as in Solve).
func NewSession(g *graph.Graph, opt Options) (*Session, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	h := opt.Bits
	if h == 0 {
		h = g.BitsNeeded()
	}
	if h > ppa.MaxBits {
		return nil, fmt.Errorf("core: word width %d exceeds %d bits", h, ppa.MaxBits)
	}
	n := g.N
	if int64(n-1) > int64(ppa.Infinity(h)) {
		return nil, fmt.Errorf("core: %d-bit words cannot hold vertex indices up to %d", h, n-1)
	}
	var mopts []ppa.Option
	if opt.Workers > 1 {
		mopts = append(mopts, ppa.WithWorkers(opt.Workers))
	}
	var m ppa.Fabric
	if opt.PhysicalSide > 0 && opt.PhysicalSide < n {
		vm, err := virt.New(n, opt.PhysicalSide, h, mopts...)
		if err != nil {
			return nil, err
		}
		m = vm
	} else {
		m = ppa.New(n, h, mopts...)
	}
	return NewSessionOn(m, g, opt)
}

// NewSessionOn builds a session on a caller-supplied fabric.
func NewSessionOn(m ppa.Fabric, g *graph.Graph, opt Options) (*Session, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.N
	if m.N() != n {
		return nil, fmt.Errorf("core: fabric side %d != vertex count %d", m.N(), n)
	}
	h := m.Bits()
	if int64(n-1) > int64(ppa.Infinity(h)) {
		return nil, fmt.Errorf("core: %d-bit words cannot hold vertex indices up to %d", h, n-1)
	}
	w, err := loadWeights(g, h)
	if err != nil {
		return nil, err
	}
	a := par.New(m)
	if !opt.ReferenceKernels {
		a.SetFused(true)
	}
	s := &Session{
		g: g, m: m, a: a, opt: opt,
		row: a.Row(), col: a.Col(),
	}
	s.diag = s.row.Eq(s.col)
	s.rowHead = s.col.EqConst(ppa.Word(n - 1)) // min() clusters: whole rows
	s.W = a.FromSlice(w)
	return s, nil
}

// Fabric returns the session's machine (for metrics inspection or fault
// injection between solves).
func (s *Session) Fabric() ppa.Fabric { return s.m }

// Close releases resources tied to the session's fabric — today the
// machine's persistent ring workers (see ppa.Machine.Close). Optional:
// an abandoned session's workers are reclaimed by a finalizer; Close
// makes the shutdown deterministic (tests, session pools).
func (s *Session) Close() {
	if c, ok := s.m.(interface{ Close() }); ok {
		c.Close()
	}
}

// N returns the vertex count (= array side) the session was built for.
func (s *Session) N() int { return s.m.N() }

// Bits returns the machine word width h the session runs with.
func (s *Session) Bits() uint { return s.m.Bits() }

// Options returns the options the session was built with. Callers that
// recycle sessions (internal/serve's pool) key interchangeability on the
// fabric-relevant fields — two sessions are substitutes only when N, Bits
// and these options agree.
func (s *Session) Options() Options { return s.opt }

// Reload replaces the session's graph with a new one of the same vertex
// count, reusing the fabric, the coordinate masks and the weight plane's
// storage — no re-allocation. This is what makes pooling sessions across
// requests profitable: the expensive setup (machine construction, masks)
// survives, only the weight DMA is repeated. The new graph must fit the
// session's word width h; on error the session keeps its old graph.
func (s *Session) Reload(g *graph.Graph) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if g.N != s.m.N() {
		return fmt.Errorf("core: Reload vertex count %d != session size %d", g.N, s.m.N())
	}
	if s.wbuf == nil {
		s.wbuf = make([]ppa.Word, g.N*g.N)
	}
	if err := loadWeightsInto(s.wbuf, g, s.m.Bits()); err != nil {
		return err
	}
	s.W.Load(s.wbuf)
	s.g = g
	s.ownG = false
	s.invalidateWarm()
	return nil
}

// Solve runs the DP for one destination. Result.Metrics covers only this
// solve (the fabric's counters keep accumulating across the session).
func (s *Session) Solve(dest int) (*Result, error) {
	return s.SolveContext(context.Background(), dest)
}

// SolveContext is Solve with cooperative cancellation: the context is
// checked between DP iterations, so a caller whose deadline has passed (or
// whose client hung up) releases the session after at most one round
// instead of pinning it for the rest of the computation. On cancellation
// all machine temporaries are returned to the session's pools and the
// context's error is returned.
func (s *Session) SolveContext(ctx context.Context, dest int) (*Result, error) {
	g, a, opt := s.g, s.a, s.opt
	if dest < 0 || dest >= g.N {
		return nil, fmt.Errorf("core: destination %d out of range [0,%d)", dest, g.N)
	}
	n := g.N
	m := s.m
	h := m.Bits()
	inf := ppa.Infinity(h)
	maxIter := opt.MaxIterations
	if maxIter <= 0 {
		maxIter = n + 1
	}
	startMetrics := m.Metrics()

	rowIsD := s.row.EqConst(ppa.Word(dest))
	colIsD := s.col.EqConst(ppa.Word(dest))
	diag := s.diag
	notD := rowIsD.Not()

	W := s.W
	SOW := a.Zeros()
	PTN := a.Zeros()
	MinSOW := a.Zeros() // zero-initialized global: keeps SOW[d][d] pinned to 0
	OldSOW := a.Zeros()

	// Step 1 — initialization (statements 4-7). The DP needs
	// SOW[d][j] = w_jd (cost of the 1-edge path j -> d), i.e. column d of
	// W moved onto row d.
	if opt.PaperInit {
		a.Where(rowIsD, func() {
			SOW.Assign(W)
			PTN.AssignConst(ppa.Word(dest))
		})
	} else {
		acrossRows := a.Broadcast(W, ppa.East, colIsD)       // (j, c) <- w_jd
		ontoRowD := a.Broadcast(acrossRows, ppa.South, diag) // (r, j) <- w_jd
		a.Where(rowIsD, func() {
			SOW.Assign(ontoRowD)
			PTN.AssignConst(ppa.Word(dest))
		})
		ontoRowD.Release()
		acrossRows.Release()
	}
	// SOW[d][d] = 0: the empty path from d to itself (w_dd is 0 on the
	// machine copy of W, so the paper's init gives the same).
	atDD := rowIsD.And(colIsD)
	a.Where(atDD, func() {
		SOW.AssignConst(0)
	})
	atDD.Release()

	// Step 2 — RMCP computation (statements 8-20), shared with the warm
	// re-solve path.
	iterations, loopErr := s.runDP(ctx, maxIter, rowIsD, notD, SOW, PTN, MinSOW, OldSOW)

	var res *Result
	if loopErr == nil {
		res = &Result{
			Result: graph.Result{
				Dest:       dest,
				Dist:       make([]int64, n),
				Next:       make([]int, n),
				Iterations: iterations,
			},
			Metrics: m.Metrics().Sub(startMetrics),
			Bits:    h,
		}
		for i := 0; i < n; i++ {
			sow := SOW.At(dest, i)
			switch {
			case i == dest:
				res.Dist[i] = 0
				res.Next[i] = -1
			case sow == inf:
				res.Dist[i] = graph.NoEdge
				res.Next[i] = -1
			default:
				res.Dist[i] = int64(sow)
				res.Next[i] = int(PTN.At(dest, i))
			}
		}
	}
	OldSOW.Release()
	MinSOW.Release()
	PTN.Release()
	SOW.Release()
	notD.Release()
	colIsD.Release()
	rowIsD.Release()
	if loopErr != nil {
		return nil, loopErr
	}
	return res, nil
}

// runDP runs the RMCP iteration (statements 8-20) to convergence on
// already-initialized solution planes — the loop shared by the cold solve
// (SolveContext) and the warm re-solve (Session.Resolve), which differ
// only in how SOW and PTN are seeded. Early exits (cancellation,
// non-convergence) return with the error set and all loop temporaries
// released — a cancelled request must not leak pool storage when its
// session is reused; the caller still owns the planes it passed in.
func (s *Session) runDP(ctx context.Context, maxIter int, rowIsD, notD *par.Bool, SOW, PTN, MinSOW, OldSOW *par.Var) (int, error) {
	a, opt := s.a, s.opt
	col, diag, rowHead, W := s.col, s.diag, s.rowHead, s.W
	iterations := 0
	var loopErr error
	for {
		if err := ctx.Err(); err != nil {
			loopErr = err
			break
		}
		iterations++
		if iterations > maxIter {
			loopErr = fmt.Errorf("core: DP did not converge within %d rounds", maxIter)
			break
		}

		// Statement 10: SOW = broadcast(SOW, SOUTH, ROW == d) + W,
		// assigned where ROW != d. PE (i, j) now holds SOW[j->d] + w_ij.
		down := a.Broadcast(SOW, ppa.South, rowIsD)
		cand := down.AddSat(W)
		down.Release()
		a.Where(notD, func() {
			SOW.Assign(cand)
		})
		cand.Release()

		// Statement 11: MIN_SOW = min(SOW, WEST, COL == n-1).
		var rowMin *par.Var
		if opt.SwitchOnlyBus {
			rowMin = a.MinViaSwitches(SOW, ppa.West, rowHead)
		} else {
			rowMin = a.Min(SOW, ppa.West, rowHead)
		}
		a.Where(notD, func() {
			MinSOW.Assign(rowMin)
		})
		// Statement 12: PTN = selected_min(COL, WEST, COL == n-1,
		// MIN_SOW == SOW): the smallest column index attaining the minimum.
		sel := rowMin.Eq(SOW)
		rowMin.Release()
		var argMin *par.Var
		if opt.SwitchOnlyBus {
			argMin = a.SelectedMinViaSwitches(col, ppa.West, rowHead, sel)
		} else {
			argMin = a.SelectedMin(col, ppa.West, rowHead, sel)
		}
		sel.Release()
		a.Where(notD, func() {
			PTN.Assign(argMin)
		})
		argMin.Release()

		// Statements 14-19: fold the per-row results back into row d via
		// the diagonal and update PTN only where the cost improved.
		newRow := a.Broadcast(MinSOW, ppa.South, diag)
		newPTN := a.Broadcast(PTN, ppa.South, diag)
		a.Where(rowIsD, func() {
			OldSOW.Assign(SOW)
			SOW.Assign(newRow)
			changed := SOW.Ne(OldSOW)
			a.Where(changed, func() {
				PTN.Assign(newPTN)
			})
			changed.Release()
		})
		newPTN.Release()
		newRow.Release()

		// Statement 20: while at least one SOW in row d has changed.
		ne := SOW.Ne(OldSOW)
		pred := rowIsD.And(ne)
		done := a.None(pred)
		pred.Release()
		ne.Release()
		if done {
			break
		}
	}
	return iterations, loopErr
}

// loadWeights converts the host matrix to machine words: NoEdge becomes
// the h-bit MAXINT, the diagonal becomes 0 (the standard DP convention —
// see DESIGN.md), and any finite weight or worst-case path cost that
// collides with MAXINT is an error.
func loadWeights(g *graph.Graph, h uint) ([]ppa.Word, error) {
	w := make([]ppa.Word, g.N*g.N)
	if err := loadWeightsInto(w, g, h); err != nil {
		return nil, err
	}
	return w, nil
}

// loadWeightsInto is loadWeights writing into caller-owned storage (the
// allocation-free Reload path). len(dst) must be g.N*g.N.
func loadWeightsInto(dst []ppa.Word, g *graph.Graph, h uint) error {
	n := g.N
	inf := ppa.Infinity(h)
	w := dst
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch wt := g.At(i, j); {
			case i == j:
				w[i*n+j] = 0
			case wt == graph.NoEdge:
				w[i*n+j] = inf
			case n > 1 && wt > (int64(inf)-1)/int64(n-1):
				// Overflow-safe form of (n-1)*wt >= inf: a worst-case
				// simple path could saturate and masquerade as "no path".
				return fmt.Errorf(
					"core: %d-bit words cannot distinguish worst-case path cost (%d * %d) from MAXINT; raise Options.Bits",
					h, n-1, wt)
			default:
				w[i*n+j] = ppa.Word(wt)
			}
		}
	}
	return nil
}

// PredictedCost returns the analytical cycle model of one Solve run for an
// n-vertex graph on an h-bit machine converging after iters rounds:
// experiments compare it against measured metrics to certify the Θ(p·h)
// complexity claim.
func PredictedCost(n int, h uint, iters int, paperInit bool) ppa.Metrics {
	return PredictedCostModel(h, iters, paperInit, false)
}

// PredictedCostModel extends PredictedCost with the bus-model choice:
// switchOnly selects the plain-broadcast minima (2h+2 bus cycles each).
func PredictedCostModel(h uint, iters int, paperInit, switchOnly bool) ppa.Metrics {
	wiredOrPerMin, busPerMin := par.MinCost(h)
	if switchOnly {
		wiredOrPerMin, busPerMin = par.MinSwitchCost(h)
	}
	perIter := ppa.Metrics{
		// stmt 10 broadcast + stmt 11 min + stmt 12 selected_min +
		// stmts 16/18 two diagonal broadcasts.
		BusCycles:     1 + 2*busPerMin + 2,
		WiredOrCycles: 2 * wiredOrPerMin,
		GlobalOrOps:   1,
	}
	total := ppa.Metrics{}
	for k := 0; k < iters; k++ {
		total = total.Add(perIter)
	}
	if !paperInit {
		total.BusCycles += 2 // corrected initialization's transpose move
	}
	return total
}
