package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// TestFaultInjectionStudy sweeps a stuck switch box over every PE of the
// array (both polarities) and runs the MCP on the damaged machine. The
// safety property: no silently-wrong answer survives — every run either
//
//  1. still produces the correct result (the fault was not load-bearing:
//     e.g. stuck-open at a position that was Open anyway), or
//  2. fails to converge (returns an error), or
//  3. produces a corrupted result that graph.CheckResult REJECTS.
//
// The test also records that a healthy machine never trips any of those,
// and that a meaningful fraction of faults do corrupt (the fault model is
// not a no-op).
func TestFaultInjectionStudy(t *testing.T) {
	const n = 6
	g := graph.GenRandomConnected(n, 0.35, 9, 13)
	dest := 2
	truth, err := graph.BellmanFord(g, dest)
	if err != nil {
		t.Fatal(err)
	}
	h := g.BitsNeeded()

	healthy, corruptedCaught, stillCorrect, diverged := 0, 0, 0, 0
	for pe := 0; pe < n*n; pe++ {
		for _, kind := range []ppa.FaultKind{ppa.StuckShort, ppa.StuckOpen} {
			m := ppa.New(n, h)
			m.InjectFault(pe, kind)
			// A damaged controller loop may never see "no change": cap it.
			res, err := SolveOn(m, g, dest, Options{MaxIterations: 3 * n})
			switch {
			case err != nil:
				diverged++
			case reflect.DeepEqual(res.Dist, truth.Dist):
				stillCorrect++
			default:
				// Wrong distances MUST be rejected by the certifier.
				if cerr := graph.CheckResult(g, &res.Result); cerr == nil {
					t.Fatalf("fault %v at PE %d produced wrong distances that passed verification:\ngot  %v\ntrue %v",
						kind, pe, res.Dist, truth.Dist)
				}
				corruptedCaught++
			}
		}
	}
	// Sanity on the study itself.
	m := ppa.New(n, h)
	res, err := SolveOn(m, g, dest, Options{})
	if err != nil || !reflect.DeepEqual(res.Dist, truth.Dist) {
		t.Fatalf("healthy machine wrong: %v %v", res, err)
	}
	healthy++
	if corruptedCaught+diverged == 0 {
		t.Error("no fault ever disturbed the computation; the fault model is a no-op")
	}
	if stillCorrect == 0 {
		t.Error("every fault corrupted; expected some non-load-bearing positions")
	}
	t.Logf("fault sweep over %d injections: %d still correct, %d corrupted (all caught), %d diverged",
		2*n*n, stillCorrect, corruptedCaught, diverged)
}

// TestSolveOnValidation covers the fabric-mismatch errors.
func TestSolveOnValidation(t *testing.T) {
	g := graph.GenChain(4, 1)
	if _, err := SolveOn(ppa.New(5, 8), g, 0, Options{}); err == nil {
		t.Error("fabric/graph size mismatch accepted")
	}
	if _, err := SolveOn(ppa.New(4, 2), graph.GenChain(4, 1), 0, Options{}); err == nil {
		t.Error("2-bit fabric accepted for 4 vertices (indices need 2 bits, costs need more)")
	}
	if _, err := SolveOn(ppa.New(4, 8), g, 9, Options{}); err == nil {
		t.Error("bad dest accepted")
	}
	bad := graph.New(4)
	bad.W[1] = -1
	if _, err := SolveOn(ppa.New(4, 8), bad, 0, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
}

// TestObserverInstructionPattern pins the exact bus-transaction sequence
// of one DP round, as seen by a machine observer: stmt-10 broadcast, two
// bit-serial minima, two diagonal broadcasts, one global-OR.
func TestObserverInstructionPattern(t *testing.T) {
	g := graph.GenStar(5, 2) // converges in exactly 1 round
	h := g.BitsNeeded()
	m := ppa.New(5, h)
	var ops []ppa.OpKind
	m.SetObserver(func(e ppa.Event) { ops = append(ops, e.Op) })
	if _, err := SolveOn(m, g, 0, Options{}); err != nil {
		t.Fatal(err)
	}
	var want []ppa.OpKind
	// Corrected init: two broadcasts.
	want = append(want, ppa.OpBroadcast, ppa.OpBroadcast)
	// One round: stmt-10 broadcast; min = h wired-OR + 2 broadcasts;
	// selected_min likewise; two diagonal broadcasts; global-OR.
	want = append(want, ppa.OpBroadcast)
	for r := 0; r < 2; r++ {
		for j := uint(0); j < h; j++ {
			want = append(want, ppa.OpWiredOr)
		}
		want = append(want, ppa.OpBroadcast, ppa.OpBroadcast)
	}
	want = append(want, ppa.OpBroadcast, ppa.OpBroadcast, ppa.OpGlobalOr)
	if !reflect.DeepEqual(ops, want) {
		t.Errorf("op sequence:\ngot  %v\nwant %v", ops, want)
	}
}

// TestFaultSweepRandomGraphs broadens the study across random workloads
// with random fault sites.
func TestFaultSweepRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(8)
		g := graph.GenRandom(n, 0.4, 9, rng.Int63())
		dest := rng.Intn(n)
		truth, err := graph.BellmanFord(g, dest)
		if err != nil {
			t.Fatal(err)
		}
		m := ppa.New(n, g.BitsNeeded())
		m.InjectFault(rng.Intn(n*n), ppa.FaultKind(rng.Intn(2)))
		res, err := SolveOn(m, g, dest, Options{MaxIterations: 3 * n})
		if err != nil {
			continue // divergence is an acceptable fault outcome
		}
		if reflect.DeepEqual(res.Dist, truth.Dist) {
			continue
		}
		if cerr := graph.CheckResult(g, &res.Result); cerr == nil {
			t.Fatalf("trial %d: corrupted result passed verification", trial)
		}
	}
}
