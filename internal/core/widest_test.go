package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/graph"
)

func TestSolveWidestChain(t *testing.T) {
	g := graph.New(4)
	g.SetEdge(0, 1, 3)
	g.SetEdge(1, 2, 7)
	g.SetEdge(2, 3, 5)
	r, metrics, err := SolveWidest(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{3, 5, 5, graph.Unbounded}; !reflect.DeepEqual(r.Cap, want) {
		t.Errorf("Cap = %v, want %v", r.Cap, want)
	}
	if r.Next[0] != 1 || r.Next[3] != -1 {
		t.Errorf("Next = %v", r.Next)
	}
	if metrics.CommCycles() == 0 {
		t.Error("no machine cost recorded")
	}
	if err := graph.CheckWidestResult(g, r); err != nil {
		t.Error(err)
	}
}

// TestSolveWidestMatchesReferenceExactly: Cap, Next AND Iterations agree
// with the host-side synchronous DP on random graphs.
func TestSolveWidestMatchesReferenceExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(12)
		g := graph.GenRandom(n, 0.15+rng.Float64()*0.5, 1+int64(rng.Intn(25)), rng.Int63())
		dest := rng.Intn(n)
		want, err := graph.BellmanFordWidest(g, dest)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := SolveWidest(g, dest, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Cap, want.Cap) ||
			!reflect.DeepEqual(got.Next, want.Next) ||
			got.Iterations != want.Iterations {
			t.Fatalf("trial %d (n=%d dest=%d): widest diverged\nppa:  %v %v (%d)\nhost: %v %v (%d)",
				trial, n, dest, got.Cap, got.Next, got.Iterations,
				want.Cap, want.Next, want.Iterations)
		}
		if err := graph.CheckWidestResult(g, got); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSolveWidestPrefersWiderDetour(t *testing.T) {
	g := graph.New(3)
	g.SetEdge(0, 2, 2)
	g.SetEdge(0, 1, 9)
	g.SetEdge(1, 2, 8)
	r, _, err := SolveWidest(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap[0] != 8 || r.Next[0] != 1 {
		t.Errorf("Cap[0]=%d Next[0]=%d, want 8 via 1", r.Cap[0], r.Next[0])
	}
}

func TestSolveWidestUnreachableAndSingle(t *testing.T) {
	g := graph.GenChain(4, 5)
	r, _, err := SolveWidest(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap[2] != 0 || r.Next[2] != -1 {
		t.Errorf("unreachable: %v %v", r.Cap, r.Next)
	}
	one, _, err := SolveWidest(graph.New(1), 0, Options{})
	if err != nil || one.Cap[0] != graph.Unbounded {
		t.Errorf("single vertex: %v %v", one, err)
	}
}

func TestSolveWidestErrors(t *testing.T) {
	g := graph.GenChain(4, 1)
	if _, _, err := SolveWidest(g, 9, Options{}); err == nil {
		t.Error("bad dest accepted")
	}
	if _, _, err := SolveWidest(g, 0, Options{Bits: 63}); err == nil {
		t.Error("oversized Bits accepted")
	}
	// Capacity equal to MAXINT would be indistinguishable from unbounded.
	heavy := graph.New(2)
	heavy.SetEdge(0, 1, 255)
	if _, _, err := SolveWidest(heavy, 1, Options{Bits: 8}); err == nil {
		t.Error("MAXINT-valued capacity accepted")
	}
	if _, _, err := SolveWidest(graph.GenChain(10, 1), 0, Options{Bits: 3}); err == nil {
		t.Error("3-bit machine accepted 10 vertices")
	}
	bad := graph.New(2)
	bad.W[1] = -1
	if _, _, err := SolveWidest(bad, 0, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
	if _, _, err := SolveWidest(g, 3, Options{MaxIterations: 1}); err == nil {
		t.Error("MaxIterations guard did not trip")
	}
}

func TestSolveWidestAutoBits(t *testing.T) {
	g := graph.GenRandomConnected(9, 0.3, 100, 4)
	r, _, err := SolveWidest(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := graph.BellmanFordWidest(g, 3)
	if !reflect.DeepEqual(r.Cap, want.Cap) {
		t.Error("auto-bits widest solve diverged")
	}
}
