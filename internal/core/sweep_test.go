package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// sweepAll collects SolveSweep results for every destination of s's graph.
func sweepAll(t *testing.T, s *Session) []*Result {
	t.Helper()
	n := s.N()
	dests := make([]int, n)
	for d := range dests {
		dests[d] = d
	}
	out := make([]*Result, 0, n)
	err := s.SolveSweep(context.Background(), dests, func(r *Result) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("SolveSweep: %v", err)
	}
	return out
}

// TestSolveSweepParity pins the sweep contract: for every destination,
// SolveSweep yields Dist, Next, Iterations, Bits *and every cycle counter*
// byte-identical to a sequential Session.Solve loop — across graph
// families, word widths, worker counts, both bus models, both kernel
// strategies, the paper's verbatim init and block-mapped (virtualized)
// fabrics. This is the same parity discipline the fused kernels and the
// packed virtualization engine shipped under.
func TestSolveSweepParity(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random-9":    graph.GenRandomConnected(9, 0.4, 30, 1),
		"random-16":   graph.GenRandomConnected(16, 0.3, 100, 2),
		"chain-12":    graph.GenChain(12, 3),
		"complete-10": graph.GenComplete(10, 50, 3),
		"sparse-20":   graph.GenRandom(20, 0.08, 25, 4), // may be disconnected
	}
	options := map[string]Options{
		"default":      {},
		"workers":      {Workers: 4},
		"wide-words":   {Bits: 24},
		"paper-init":   {PaperInit: true},
		"switch-only":  {SwitchOnlyBus: true},
		"reference":    {ReferenceKernels: true},
		"virtualized":  {PhysicalSide: 4},
		"virt-workers": {PhysicalSide: 2, Workers: 3},
	}
	for gname, g := range graphs {
		for oname, opt := range options {
			if opt.PhysicalSide > 0 && g.N%opt.PhysicalSide != 0 {
				continue
			}
			sw, err := NewSession(g, opt)
			if err != nil {
				t.Fatalf("%s/%s: sweep session: %v", gname, oname, err)
			}
			sq, err := NewSession(g, opt)
			if err != nil {
				t.Fatalf("%s/%s: sequential session: %v", gname, oname, err)
			}
			swept := sweepAll(t, sw)
			if len(swept) != g.N {
				t.Fatalf("%s/%s: sweep yielded %d results, want %d", gname, oname, len(swept), g.N)
			}
			for d := 0; d < g.N; d++ {
				seq, err := sq.Solve(d)
				if err != nil {
					t.Fatalf("%s/%s: sequential dest %d: %v", gname, oname, d, err)
				}
				if !reflect.DeepEqual(swept[d], seq) {
					t.Errorf("%s/%s dest %d: sweep and sequential solves diverge:\nsweep      %+v\nsequential %+v",
						gname, oname, d, swept[d], seq)
				}
			}
			sw.Close()
			sq.Close()
		}
	}
}

// TestSolveSweepFaultParity covers damaged fabrics: with switch faults
// injected the sweep must run the reference instruction sequence and stay
// byte-identical to sequential solves on an identically damaged machine —
// including corrupted outputs (a silent fault corrupts both the same way).
func TestSolveSweepFaultParity(t *testing.T) {
	g := graph.GenRandomConnected(8, 0.4, 20, 6)
	h := g.BitsNeeded()
	for _, kind := range []ppa.FaultKind{ppa.StuckShort, ppa.StuckOpen} {
		for _, pe := range []int{0, 13, 37, 63} {
			mSweep := ppa.New(g.N, h)
			mSweep.InjectFault(pe, kind)
			mSeq := ppa.New(g.N, h)
			mSeq.InjectFault(pe, kind)
			sw, err := NewSessionOn(mSweep, g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sq, err := NewSessionOn(mSeq, g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			n := g.N
			dests := make([]int, n)
			for d := range dests {
				dests[d] = d
			}
			swept := make([]*Result, 0, n)
			sweepErr := sw.SolveSweep(context.Background(), dests, func(r *Result) error {
				swept = append(swept, r)
				return nil
			})
			for d := 0; d < n; d++ {
				seq, seqErr := sq.Solve(d)
				if seqErr != nil {
					// The damaged DP diverged: the sweep must have failed at
					// the same destination with the same error.
					if sweepErr == nil || len(swept) != d || sweepErr.Error() != seqErr.Error() {
						t.Fatalf("fault %v@%d dest %d: sequential error %v, sweep yielded %d results with error %v",
							kind, pe, d, seqErr, len(swept), sweepErr)
					}
					break
				}
				if d >= len(swept) {
					t.Fatalf("fault %v@%d: sweep stopped after %d results (%v), sequential succeeded at dest %d",
						kind, pe, len(swept), sweepErr, d)
				}
				if !reflect.DeepEqual(swept[d], seq) {
					t.Errorf("fault %v@%d dest %d: sweep and sequential solves diverge", kind, pe, d)
				}
			}
			sw.Close()
			sq.Close()
		}
	}
}

// TestSolveSweepEventStreamParity pins the strongest form of the shadow
// discipline: the machine's observer must see the *same transaction
// stream* — op kinds, directions and Open counts, in order — from a sweep
// as from the equivalent sequential loop. This is what makes the
// shadow-charged broadcasts indistinguishable from executed ones.
func TestSolveSweepEventStreamParity(t *testing.T) {
	g := graph.GenRandomConnected(8, 0.4, 20, 9)
	h := g.BitsNeeded()
	record := func(m *ppa.Machine) *[]ppa.Event {
		var evs []ppa.Event
		m.SetObserver(func(e ppa.Event) { evs = append(evs, e) })
		return &evs
	}
	mSweep := ppa.New(g.N, h)
	sweepEvs := record(mSweep)
	sw, err := NewSessionOn(mSweep, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	mSeq := ppa.New(g.N, h)
	seqEvs := record(mSeq)
	sq, err := NewSessionOn(mSeq, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sq.Close()

	sweepAll(t, sw)
	for d := 0; d < g.N; d++ {
		if _, err := sq.Solve(d); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(*sweepEvs, *seqEvs) {
		t.Fatalf("sweep and sequential event streams diverge: %d vs %d events",
			len(*sweepEvs), len(*seqEvs))
	}
}

// TestSolveSweepReload covers the pooled-serving pattern: the same warm
// session sweeps one graph, Reloads another, and sweeps again — the second
// sweep must match fresh sequential solves of the second graph exactly.
func TestSolveSweepReload(t *testing.T) {
	g1 := graph.GenRandomConnected(12, 0.4, 9, 11)
	g2 := graph.GenRandomConnected(12, 0.3, 9, 12)
	s, err := NewSession(g1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sweepAll(t, s)
	if err := s.Reload(g2); err != nil {
		t.Fatal(err)
	}
	swept := sweepAll(t, s)
	fresh, err := NewSession(g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	for d := 0; d < g2.N; d++ {
		seq, err := fresh.Solve(d)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(swept[d], seq) {
			t.Errorf("dest %d: post-Reload sweep diverges from fresh sequential solve", d)
		}
	}
}

// TestSolveSweepMixedWithSolve interleaves sweep and single solves on one
// session: the sweep's incremental selector-plane retargeting must not
// leave state behind that corrupts either style of follow-up call.
func TestSolveSweepMixedWithSolve(t *testing.T) {
	g := graph.GenRandomConnected(10, 0.4, 15, 13)
	s, err := NewSession(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ref, err := NewSession(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want := make([]*Result, g.N)
	for d := 0; d < g.N; d++ {
		if want[d], err = ref.Solve(d); err != nil {
			t.Fatal(err)
		}
	}
	if got, err := s.Solve(3); err != nil || !reflect.DeepEqual(got, want[3]) {
		t.Fatalf("pre-sweep Solve(3) diverges (err %v)", err)
	}
	swept := sweepAll(t, s)
	for d := range swept {
		if !reflect.DeepEqual(swept[d], want[d]) {
			t.Errorf("sweep dest %d diverges after a plain Solve", d)
		}
	}
	if got, err := s.Solve(7); err != nil || !reflect.DeepEqual(got, want[7]) {
		t.Fatalf("post-sweep Solve(7) diverges (err %v)", err)
	}
	// Re-sweeping the same single destination twice exercises the retarget
	// no-op branch (a duplicate inside one sweep is rejected instead — see
	// TestSweepDestValidation).
	for i := 0; i < 2; i++ {
		err = s.SolveSweep(context.Background(), []int{5}, func(r *Result) error {
			if !reflect.DeepEqual(r, want[5]) {
				t.Errorf("repeated-destination sweep diverges")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSolveSweepYieldStop: a non-nil yield error stops the sweep
// immediately and is returned unwrapped.
func TestSolveSweepYieldStop(t *testing.T) {
	g := graph.GenRandomConnected(8, 0.4, 9, 14)
	s, err := NewSession(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stop := errors.New("stop")
	seen := 0
	err = s.SolveSweep(context.Background(), []int{0, 1, 2, 3}, func(*Result) error {
		seen++
		if seen == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("yield error not propagated: %v", err)
	}
	if seen != 2 {
		t.Fatalf("sweep continued after yield error: %d yields", seen)
	}
}

// TestSolveSweepErrors: destination validation and cancellation match
// SolveContext behavior.
func TestSolveSweepErrors(t *testing.T) {
	g := graph.GenRandomConnected(8, 0.4, 9, 15)
	s, err := NewSession(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.SolveSweep(context.Background(), []int{0, 99}, func(*Result) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range destination: got %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = s.SolveSweep(ctx, []int{0}, func(*Result) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep: got %v", err)
	}
	// The session survives both failures.
	if _, err := s.Solve(1); err != nil {
		t.Fatalf("session unusable after sweep errors: %v", err)
	}
}

// TestSolveSweepSteadyStateAllocs pins the sweep's allocation contract:
// once the session and the sweep scratch are warm, a full n-destination
// sweep allocates O(1) objects per destination — the yielded Result and
// its two output slices, nothing per iteration or per plane.
func TestSolveSweepSteadyStateAllocs(t *testing.T) {
	g := graph.GenRandomConnected(64, 0.3, 9, 5)
	s, err := NewSession(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := g.N
	dests := make([]int, n)
	for d := range dests {
		dests[d] = d
	}
	run := func() {
		if err := s.SolveSweep(context.Background(), dests, func(*Result) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up: allocates the sweep scratch
	allocs := testing.AllocsPerRun(3, run)
	perDest := allocs / float64(n)
	const maxPerDest = 8
	if perDest > maxPerDest {
		t.Fatalf("steady-state sweep allocates %.1f objects/destination (%.0f total), want <= %d",
			perDest, allocs, maxPerDest)
	}
}
