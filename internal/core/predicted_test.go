package core

import (
	"testing"

	"ppamcp/internal/graph"
)

func TestPredictedCostDelegatesToModel(t *testing.T) {
	for _, h := range []uint{4, 16, 32} {
		for _, iters := range []int{1, 5, 31} {
			for _, paperInit := range []bool{false, true} {
				a := PredictedCost(99, h, iters, paperInit) // n is unused by the model
				b := PredictedCostModel(h, iters, paperInit, false)
				if a != b {
					t.Errorf("h=%d iters=%d: PredictedCost %v != model %v", h, iters, a, b)
				}
			}
		}
	}
}

func TestPredictedCostModelSwitchOnly(t *testing.T) {
	// Switch-only: zero wired-OR; bus per iteration = two minima at 2h+2
	// each plus the statement-10 broadcast and two diagonal broadcasts.
	m := PredictedCostModel(8, 3, false, true)
	if m.WiredOrCycles != 0 {
		t.Errorf("switch-only model has wired-OR cycles: %v", m)
	}
	wantBus := int64(3)*(2*(2*8+2)+3) + 2
	if m.BusCycles != wantBus {
		t.Errorf("bus = %d, want %d", m.BusCycles, wantBus)
	}
	if m.GlobalOrOps != 3 {
		t.Errorf("globalOR = %d, want 3", m.GlobalOrOps)
	}
}

// TestPredictedCostModelMatchesMeasuredSwitchOnly closes the loop between
// the analytical model and the simulator for the switch-only bus.
func TestPredictedCostModelMatchesMeasuredSwitchOnly(t *testing.T) {
	g := graph.GenDiameter(12, 5)
	r := mustSolve(t, g, 0, Options{Bits: 10, SwitchOnlyBus: true})
	want := PredictedCostModel(10, r.Iterations, false, true)
	got := r.Metrics
	if got.BusCycles != want.BusCycles || got.WiredOrCycles != want.WiredOrCycles ||
		got.GlobalOrOps != want.GlobalOrOps {
		t.Errorf("measured %v, model %v", got, want)
	}
}
