package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"ppamcp/internal/graph"
)

// checkAgainstBF verifies a session solve against Bellman-Ford.
func checkAgainstBF(t *testing.T, s *Session, g *graph.Graph, dest int) {
	t.Helper()
	got, err := s.Solve(dest)
	if err != nil {
		t.Fatalf("Solve(%d): %v", dest, err)
	}
	want, err := graph.BellmanFord(g, dest)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.SameDistances(&got.Result, want) {
		t.Fatalf("dest %d: distances diverge from Bellman-Ford", dest)
	}
	if err := graph.CheckResult(g, &got.Result); err != nil {
		t.Fatalf("dest %d: %v", dest, err)
	}
}

func TestSessionReload(t *testing.T) {
	const n = 12
	g1 := graph.GenRandomConnected(n, 0.3, 9, 1)
	g2 := graph.GenRandomConnected(n, 0.5, 9, 2)
	g3 := graph.GenChain(n, 3)

	// Fix h wide enough for all three graphs so the pool-key contract
	// (same n, same h) holds.
	s, err := NewSession(g1, Options{Bits: 12})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstBF(t, s, g1, 0)
	for _, g := range []*graph.Graph{g2, g3, g1} {
		if err := s.Reload(g); err != nil {
			t.Fatal(err)
		}
		for _, dest := range []int{0, n / 2, n - 1} {
			checkAgainstBF(t, s, g, dest)
		}
	}
}

func TestSessionReloadErrors(t *testing.T) {
	g := graph.GenChain(8, 3)
	s, err := NewSession(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(graph.GenChain(9, 3)); err == nil {
		t.Error("Reload accepted a graph of a different size")
	}
	// Weights too large for the session's word width.
	big := graph.GenChain(8, 1)
	big.SetEdge(0, 1, 1<<20)
	if err := s.Reload(big); err == nil {
		t.Error("Reload accepted weights exceeding the session word width")
	}
	// A failed Reload must leave the old graph solvable.
	checkAgainstBF(t, s, g, 7)

	bad := graph.GenChain(8, 3)
	bad.W[5] = -4 // bypass SetEdge's panic to exercise Validate
	if err := s.Reload(bad); err == nil {
		t.Error("Reload accepted a negative weight")
	}
}

// TestReloadSteadyStateAllocs pins the allocation-free Reload contract:
// once the session's staging buffer exists, swapping in a new same-size
// graph must not allocate at all, and a Reload+Solve cycle must stay
// within the same budget as a plain warm Solve (alloc_test.go).
func TestReloadSteadyStateAllocs(t *testing.T) {
	const n = 64
	g1 := graph.GenRandomConnected(n, 0.3, 9, 5)
	g2 := graph.GenRandomConnected(n, 0.3, 9, 6)
	s, err := NewSession(g1, Options{Bits: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Reload(g2); err != nil { // allocates wbuf once
		t.Fatal(err)
	}
	gs := [2]*graph.Graph{g1, g2}
	i := 0
	reloadOnly := testing.AllocsPerRun(5, func() {
		i++
		if err := s.Reload(gs[i%2]); err != nil {
			t.Fatal(err)
		}
	})
	if reloadOnly > 0 {
		t.Errorf("warm Reload allocates %.0f objects, want 0", reloadOnly)
	}
	cycle := testing.AllocsPerRun(3, func() {
		i++
		if err := s.Reload(gs[i%2]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Solve(1); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 400 // same budget as TestSolveSteadyStateAllocs
	if cycle > maxAllocs {
		t.Errorf("steady-state Reload+Solve allocates %.0f objects, want <= %d", cycle, maxAllocs)
	}
}

func TestSolveContextCancellation(t *testing.T) {
	g := graph.GenChain(16, 3) // p = 15 rounds: plenty of cancellation points
	s, err := NewSession(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SolveContext(ctx, 15); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
	// The aborted solve must have returned its temporaries: the session
	// stays usable and a subsequent solve is still correct.
	checkAgainstBF(t, s, g, 15)

	// Deadline form.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()
	if _, err := s.SolveContext(expired, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SolveContext past deadline: err = %v, want context.DeadlineExceeded", err)
	}
	checkAgainstBF(t, s, g, 0)
}

// TestSolveContextCancelReleasesStorage runs many cancelled solves and
// checks the pool does not grow without bound: an aborted solve must not
// leak its planes (each leak would force fresh allocations next solve).
func TestSolveContextCancelReleasesStorage(t *testing.T) {
	g := graph.GenChain(32, 3)
	s, err := NewSession(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(31); err != nil { // warm the pools
		t.Fatal(err)
	}
	baseline := testing.AllocsPerRun(3, func() {
		if _, err := s.Solve(31); err != nil {
			t.Fatal(err)
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cancelled := testing.AllocsPerRun(5, func() {
		if _, err := s.SolveContext(ctx, 31); err == nil {
			t.Fatal("cancelled solve succeeded")
		}
	})
	if cancelled > 8 {
		t.Errorf("cancelled solve allocates %.0f objects, want a handful", cancelled)
	}
	after := testing.AllocsPerRun(3, func() {
		if _, err := s.Solve(31); err != nil {
			t.Fatal(err)
		}
	})
	// A leaked plane would force the pool to re-allocate it every solve;
	// allow only noise over the measured warm baseline.
	if after > baseline+16 {
		t.Errorf("solve after cancelled solves allocates %.0f objects, baseline %.0f (leaked temporaries?)", after, baseline)
	}
}
