package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// genUpdates builds one randomized batch for an update stream and keeps
// weights small enough for every test width. mode selects the delta
// class: "decrease" (including edge inserts), "increase" (including edge
// removals), or "mixed".
func genUpdates(rng *rand.Rand, g *graph.Graph, mode string, k int) []graph.WeightUpdate {
	n := g.N
	ups := make([]graph.WeightUpdate, 0, k)
	cur := func(u, v int) int64 {
		c := g.At(u, v)
		for i := len(ups) - 1; i >= 0; i-- {
			if ups[i].U == u && ups[i].V == v {
				return ups[i].W
			}
		}
		return c
	}
	for tries := 0; len(ups) < k && tries < 64*k; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		c := cur(u, v)
		var w int64
		switch mode {
		case "decrease":
			if c == graph.NoEdge {
				w = int64(1 + rng.Intn(9))
			} else if c > 0 {
				w = rng.Int63n(c)
			} else {
				continue
			}
		case "increase":
			if c == graph.NoEdge {
				continue
			}
			if c > 40 || rng.Intn(4) == 0 {
				w = graph.NoEdge
			} else {
				w = c + 1 + rng.Int63n(5)
			}
		default:
			if rng.Intn(3) == 0 {
				w = graph.NoEdge
			} else {
				w = rng.Int63n(10)
			}
		}
		ups = append(ups, graph.WeightUpdate{U: u, V: v, W: w})
	}
	return ups
}

// checkResolved compares an incremental Resolve against a from-scratch
// solve of the mirror graph and the Bellman-Ford reference: distances AND
// next pointers must be identical, and the result must self-certify.
func checkResolved(t *testing.T, r *Result, mirror *graph.Graph, dest int, opt Options) *Result {
	t.Helper()
	cold, err := Solve(mirror, dest, opt)
	if err != nil {
		t.Fatalf("from-scratch solve dest %d: %v", dest, err)
	}
	if !reflect.DeepEqual(r.Dist, cold.Dist) {
		t.Fatalf("dest %d: incremental distances diverge from from-scratch\n inc: %v\ncold: %v",
			dest, r.Dist, cold.Dist)
	}
	if !reflect.DeepEqual(r.Next, cold.Next) {
		t.Fatalf("dest %d: incremental next pointers diverge from from-scratch\n inc: %v\ncold: %v",
			dest, r.Next, cold.Next)
	}
	bf, err := graph.BellmanFord(mirror, dest)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.SameDistances(&r.Result, bf) {
		t.Fatalf("dest %d: distances diverge from Bellman-Ford", dest)
	}
	if err := graph.CheckResult(mirror, &r.Result); err != nil {
		t.Fatalf("dest %d: %v", dest, err)
	}
	return cold
}

// TestUpdateResolveDifferential replays randomized update streams of each
// delta class on every fabric flavor and checks each incremental
// Update+Resolve against a from-scratch solve of an independently
// maintained mirror graph (Graph.Apply — the two update paths must agree
// too).
func TestUpdateResolveDifferential(t *testing.T) {
	const n = 12
	configs := []struct {
		name string
		opt  Options
	}{
		{"direct", Options{Bits: 12}},
		{"reference", Options{Bits: 12, ReferenceKernels: true}},
		{"switch-only", Options{Bits: 12, SwitchOnlyBus: true}},
		{"virt-m6", Options{Bits: 12, PhysicalSide: 6}},
	}
	for _, cfg := range configs {
		for _, mode := range []string{"decrease", "increase", "mixed"} {
			t.Run(cfg.name+"/"+mode, func(t *testing.T) {
				g0 := graph.GenRandomConnected(n, 0.35, 9, 7)
				s, err := NewSession(g0, cfg.opt)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				mirror := g0.Clone()
				rng := rand.New(rand.NewSource(42))
				ctx := context.Background()
				for step := 0; step < 6; step++ {
					batch := genUpdates(rng, mirror, mode, 1+rng.Intn(4))
					if err := s.Update(batch); err != nil {
						t.Fatalf("step %d: Update: %v", step, err)
					}
					if err := mirror.Apply(batch); err != nil {
						t.Fatalf("step %d: Apply: %v", step, err)
					}
					for _, dest := range []int{0, n / 2, n - 1} {
						r, err := s.Resolve(ctx, dest)
						if err != nil {
							t.Fatalf("step %d dest %d: Resolve: %v", step, dest, err)
						}
						checkResolved(t, r, mirror, dest, cfg.opt)
					}
				}
			})
		}
	}
}

// TestResolveColdClassParity pins the cold-class contract: the first
// Resolve of a destination (and the first after Reload) is byte-identical
// to Solve — same Dist, Next, Iterations AND Metrics.
func TestResolveColdClassParity(t *testing.T) {
	g := graph.GenRandomConnected(10, 0.4, 9, 3)
	g2 := graph.GenRandomConnected(10, 0.3, 9, 4)
	for _, opt := range []Options{{Bits: 12}, {Bits: 12, ReferenceKernels: true}} {
		s, err := NewSession(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewSession(g, opt)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for dest := 0; dest < g.N; dest += 3 {
			got, err := s.Resolve(ctx, dest)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Solve(dest)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("ref=%v dest %d: cold-class Resolve differs from Solve:\ngot  %+v\nwant %+v",
					opt.ReferenceKernels, dest, got, want)
			}
		}
		// Reload must demote every retained solution back to cold class.
		if err := s.Reload(g2); err != nil {
			t.Fatal(err)
		}
		if err := ref.Reload(g2); err != nil {
			t.Fatal(err)
		}
		got, err := s.Resolve(ctx, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Solve(0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("post-Reload Resolve not cold-class:\ngot  %+v\nwant %+v", got, want)
		}
		s.Close()
		ref.Close()
	}
}

// TestResolveFastGeneralParity pins the warm fast path against the warm
// general (machine-program) path: identical update streams on a fused and
// a reference-kernel session must yield byte-identical Iterations and
// Metrics for every Resolve, and byte-identical observer event streams
// overall — the shadow-charge discipline of DESIGN §12.
func TestResolveFastGeneralParity(t *testing.T) {
	const n = 10
	g0 := graph.GenRandomConnected(n, 0.4, 9, 17)
	h := uint(12)
	record := func(m *ppa.Machine) *[]ppa.Event {
		var evs []ppa.Event
		m.SetObserver(func(e ppa.Event) { evs = append(evs, e) })
		return &evs
	}
	mFast := ppa.New(n, h)
	fastEvs := record(mFast)
	fast, err := NewSessionOn(mFast, g0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	mGen := ppa.New(n, h)
	genEvs := record(mGen)
	gen, err := NewSessionOn(mGen, g0, Options{ReferenceKernels: true})
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Close()

	rng := rand.New(rand.NewSource(5))
	mirror := g0.Clone()
	ctx := context.Background()
	for step := 0; step < 5; step++ {
		batch := genUpdates(rng, mirror, "mixed", 1+rng.Intn(3))
		if err := fast.Update(batch); err != nil {
			t.Fatal(err)
		}
		if err := gen.Update(batch); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Apply(batch); err != nil {
			t.Fatal(err)
		}
		for _, dest := range []int{1, n - 2} {
			rf, err := fast.Resolve(ctx, dest)
			if err != nil {
				t.Fatal(err)
			}
			rg, err := gen.Resolve(ctx, dest)
			if err != nil {
				t.Fatal(err)
			}
			if rf.Iterations != rg.Iterations {
				t.Fatalf("step %d dest %d: iterations %d (fast) vs %d (general)",
					step, dest, rf.Iterations, rg.Iterations)
			}
			if rf.Metrics != rg.Metrics {
				t.Fatalf("step %d dest %d: metrics diverge\nfast:    %+v\ngeneral: %+v",
					step, dest, rf.Metrics, rg.Metrics)
			}
			if !reflect.DeepEqual(rf.Dist, rg.Dist) || !reflect.DeepEqual(rf.Next, rg.Next) {
				t.Fatalf("step %d dest %d: results diverge", step, dest)
			}
		}
	}
	if !reflect.DeepEqual(*fastEvs, *genEvs) {
		la, lb := *fastEvs, *genEvs
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				t.Fatalf("event streams diverge at %d: %+v (fast) vs %+v (general); lengths %d vs %d",
					i, la[i], lb[i], len(la), len(lb))
			}
		}
		t.Fatalf("event streams diverge: %d (fast) vs %d (general) events", len(la), len(lb))
	}
}

// TestResolveWarmIterations demonstrates the warm-start win on a graph
// where the cold DP needs many rounds: a 64-chain converges in ~n rounds
// cold, while re-solving after a small local decrease takes a handful.
func TestResolveWarmIterations(t *testing.T) {
	const n = 64
	g := graph.GenChain(n, 3)
	s, err := NewSession(g, Options{Bits: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	dest := n - 1
	cold, err := s.Resolve(ctx, dest)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Iterations < n-2 {
		t.Fatalf("chain cold solve took %d iterations, expected ~%d", cold.Iterations, n)
	}
	if err := s.Update([]graph.WeightUpdate{{U: 1, V: 2, W: 1}}); err != nil {
		t.Fatal(err)
	}
	warm, err := s.Resolve(ctx, dest)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > 4 {
		t.Errorf("warm re-solve took %d iterations, want <= 4 (cold: %d)",
			warm.Iterations, cold.Iterations)
	}
	mirror := g.Clone()
	mirror.W[1*n+2] = 1
	checkResolved(t, warm, mirror, dest, Options{Bits: 16})
}

// TestUpdateAtomicAndOwnership: a rejected batch changes nothing, an
// accepted one never mutates the caller's graph, and the width rule
// matches Reload's.
func TestUpdateAtomicAndOwnership(t *testing.T) {
	g := graph.GenRandomConnected(8, 0.4, 9, 1)
	orig := g.Clone()
	s, err := NewSession(g, Options{Bits: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Resolve(ctx, 0); err != nil {
		t.Fatal(err)
	}

	// Out-of-range endpoint after a valid update: atomic reject.
	err = s.Update([]graph.WeightUpdate{{U: 0, V: 1, W: 2}, {U: 0, V: 99, W: 2}})
	if err == nil {
		t.Fatal("expected range error")
	}
	// Width overflow: (n-1)*w must stay below MAXINT(8) = 255.
	err = s.Update([]graph.WeightUpdate{{U: 0, V: 1, W: 40}})
	if err == nil {
		t.Fatal("expected width error")
	}
	r, err := s.Resolve(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkResolved(t, r, orig, 0, Options{Bits: 8})

	// An applied update leaves the caller's graph untouched.
	if err := s.Update([]graph.WeightUpdate{{U: 0, V: 1, W: 3}}); err != nil {
		t.Fatal(err)
	}
	for i := range g.W {
		if g.W[i] != orig.W[i] {
			t.Fatalf("caller graph mutated at word %d", i)
		}
	}
	if s.Graph() == g {
		t.Fatal("session should own a clone after Update")
	}
	if got := s.Graph().At(0, 1); got != 3 {
		t.Fatalf("session graph At(0,1) = %d, want 3", got)
	}
}

// TestUpdateResolveSteadyStateAllocs pins the warm loop's allocation
// budget: a k=4 Update plus a warm Resolve allocates only the yielded
// Result (struct + Dist + Next), and a decrease-only Update alone
// allocates nothing.
func TestUpdateResolveSteadyStateAllocs(t *testing.T) {
	g := graph.GenRandomConnected(64, 0.3, 9, 5)
	s, err := NewSession(g, Options{Bits: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	// Four existing edges to toggle; toggling up exercises the increase
	// log + subtree invalidation, toggling down the decrease seeding.
	type edge struct{ u, v int }
	var edges []edge
	for i := 0; i < g.N && len(edges) < 4; i++ {
		for j := 0; j < g.N && len(edges) < 4; j++ {
			if i != j && g.HasEdge(i, j) {
				edges = append(edges, edge{i, j})
			}
		}
	}
	ups := make([]graph.WeightUpdate, len(edges))
	tick := 0
	cycle := func() {
		tick++
		for i, e := range edges {
			ups[i] = graph.WeightUpdate{U: e.u, V: e.v, W: int64(2 + (tick+i)%2)}
		}
		if err := s.Update(ups); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Resolve(ctx, 7); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(5, cycle); avg > 4 {
		t.Errorf("warm Update(k=4)+Resolve allocates %.1f/op, want <= 4 (the Result)", avg)
	}

	// Decrease-only Update alone: zero allocations.
	w := int64(40)
	dec := func() {
		w--
		for i, e := range edges {
			ups[i] = graph.WeightUpdate{U: e.u, V: e.v, W: w + int64(i)}
		}
		if err := s.Update(ups); err != nil {
			t.Fatal(err)
		}
	}
	dec() // establish the high weights' first step
	if avg := testing.AllocsPerRun(5, dec); avg > 0 {
		t.Errorf("decrease-only Update allocates %.1f/op, want 0", avg)
	}
}

// TestResolvePaperInitNeverWarm: PaperInit solves are not fixpoints of
// the corrected DP, so Resolve must run the cold path every time (equal
// Metrics on repeat calls, never the warm discount).
func TestResolvePaperInitNeverWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if rng.Float64() < 0.5 {
				w := 1 + rng.Int63n(9)
				g.SetEdge(i, j, w)
				g.SetEdge(j, i, w)
			}
		}
	}
	s, err := NewSession(g, Options{Bits: 10, PaperInit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	r1, err := s.Resolve(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Resolve(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("PaperInit Resolve should repeat the cold solve byte-identically")
	}
}

// FuzzUpdateResolve replays an arbitrary byte string as an update stream:
// batches of (u, v, w) edits followed by a Resolve, each checked against
// a from-scratch solve of the mirror graph — with the full
// Metrics/Iterations check on the cold-class calls.
func FuzzUpdateResolve(f *testing.F) {
	f.Add([]byte{5, 3, 40, 0, 1, 2, 3, 2, 1, 4, 5, 0, 2, 11, 1})
	f.Add([]byte{3, 9, 20, 1, 0, 10, 0, 1, 0, 10, 2, 2, 1, 5, 1, 0, 2, 9, 0})
	f.Add([]byte{7, 1, 55, 2, 3, 4, 5, 6, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 7 {
			t.Skip()
		}
		n := 3 + int(data[0]%6)
		seed := int64(data[1])
		density := 0.2 + float64(data[2]%60)/100
		g := graph.GenRandom(n, density, 9, seed)
		opt := Options{Bits: 12}
		s, err := NewSession(g, opt)
		if err != nil {
			t.Skip()
		}
		defer s.Close()
		mirror := g.Clone()
		coldSeen := make(map[int]bool)
		ctx := context.Background()
		i := 3
		for i+3 < len(data) {
			k := 1 + int(data[i]%3)
			i++
			var batch []graph.WeightUpdate
			for b := 0; b < k && i+2 < len(data); b++ {
				u := int(data[i]) % n
				v := int(data[i+1]) % n
				var wt int64
				if wb := data[i+2] % 12; wb >= 10 {
					wt = graph.NoEdge
				} else {
					wt = int64(wb)
				}
				i += 3
				batch = append(batch, graph.WeightUpdate{U: u, V: v, W: wt})
			}
			if err := s.Update(batch); err != nil {
				t.Fatalf("Update: %v", err)
			}
			if err := mirror.Apply(batch); err != nil {
				t.Fatalf("Apply: %v", err)
			}
			if i >= len(data) {
				break
			}
			dest := int(data[i]) % n
			i++
			r, err := s.Resolve(ctx, dest)
			if err != nil {
				t.Fatalf("Resolve(%d): %v", dest, err)
			}
			cold := checkResolved(t, r, mirror, dest, opt)
			if !coldSeen[dest] {
				// First Resolve per destination is the from-scratch
				// equivalence class: cost accounting must match too.
				if r.Iterations != cold.Iterations {
					t.Fatalf("cold-class dest %d: iterations %d vs %d", dest, r.Iterations, cold.Iterations)
				}
				if r.Metrics != cold.Metrics {
					t.Fatalf("cold-class dest %d: metrics diverge\ninc:  %+v\ncold: %+v",
						dest, r.Metrics, cold.Metrics)
				}
				coldSeen[dest] = true
			}
		}
	})
}
