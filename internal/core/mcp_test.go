package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/graph"
)

func mustSolve(t *testing.T, g *graph.Graph, dest int, opt Options) *Result {
	t.Helper()
	r, err := Solve(g, dest, opt)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return r
}

func agreeWithBellmanFord(t *testing.T, g *graph.Graph, dest int, r *Result) {
	t.Helper()
	bf, err := graph.BellmanFord(g, dest)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Dist, bf.Dist) {
		t.Errorf("Dist = %v, BF = %v", r.Dist, bf.Dist)
	}
	if !reflect.DeepEqual(r.Next, bf.Next) {
		t.Errorf("Next = %v, BF = %v", r.Next, bf.Next)
	}
	if r.Iterations != bf.Iterations {
		t.Errorf("Iterations = %d, BF = %d", r.Iterations, bf.Iterations)
	}
	if err := graph.CheckResult(g, &r.Result); err != nil {
		t.Errorf("CheckResult: %v", err)
	}
}

func TestSolveChain(t *testing.T) {
	g := graph.GenChain(6, 2)
	r := mustSolve(t, g, 5, Options{})
	if want := []int64{10, 8, 6, 4, 2, 0}; !reflect.DeepEqual(r.Dist, want) {
		t.Errorf("Dist = %v, want %v", r.Dist, want)
	}
	if want := []int{1, 2, 3, 4, 5, -1}; !reflect.DeepEqual(r.Next, want) {
		t.Errorf("Next = %v, want %v", r.Next, want)
	}
	if r.Iterations != 5 { // p = 5: 4 productive rounds + 1 detecting
		t.Errorf("Iterations = %d, want 5", r.Iterations)
	}
	agreeWithBellmanFord(t, g, 5, r)
}

func TestSolveStarConvergesInOneRound(t *testing.T) {
	g := graph.GenStar(7, 3)
	r := mustSolve(t, g, 0, Options{})
	if r.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", r.Iterations)
	}
	agreeWithBellmanFord(t, g, 0, r)
}

func TestSolveUnreachable(t *testing.T) {
	g := graph.GenChain(4, 1)
	r := mustSolve(t, g, 0, Options{}) // nothing reaches vertex 0
	if r.Dist[1] != graph.NoEdge || r.Next[1] != -1 {
		t.Errorf("unreachable: Dist[1]=%d Next[1]=%d", r.Dist[1], r.Next[1])
	}
	agreeWithBellmanFord(t, g, 0, r)
}

func TestSolveSingleVertex(t *testing.T) {
	r := mustSolve(t, graph.New(1), 0, Options{})
	if r.Dist[0] != 0 || r.Next[0] != -1 || r.Iterations != 1 {
		t.Errorf("trivial: %+v", r)
	}
}

func TestSolveDestinationVariants(t *testing.T) {
	g := graph.GenRandomConnected(9, 0.3, 7, 17)
	for dest := 0; dest < g.N; dest++ {
		r := mustSolve(t, g, dest, Options{})
		agreeWithBellmanFord(t, g, dest, r)
	}
}

func TestSolveRandomMatchesBellmanFordExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(14)
		g := graph.GenRandom(n, 0.15+rng.Float64()*0.6, 1+int64(rng.Intn(20)), rng.Int63())
		dest := rng.Intn(n)
		r := mustSolve(t, g, dest, Options{})
		agreeWithBellmanFord(t, g, dest, r)
	}
}

func TestSolveGridWorkload(t *testing.T) {
	g, _ := graph.GenGrid(graph.GridSpec{Rows: 5, Cols: 5, MaxW: 4, Obstacle: 0.15, Seed: 3})
	r := mustSolve(t, g, g.N-1, Options{})
	agreeWithBellmanFord(t, g, g.N-1, r)
}

func TestSolveDiameterIterations(t *testing.T) {
	// Iterations must equal p exactly: p-1 productive + 1 detecting round.
	for _, p := range []int{1, 2, 5, 9} {
		g := graph.GenDiameter(10, p)
		r := mustSolve(t, g, 0, Options{})
		if r.Iterations != p {
			t.Errorf("p=%d: Iterations = %d", p, r.Iterations)
		}
	}
}

func TestSolveMetricsMatchPredictedCost(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		g := graph.GenRandom(n, 0.4, 9, rng.Int63())
		dest := rng.Intn(n)
		for _, paperInit := range []bool{false, true} {
			if paperInit && !g.Symmetric() {
				continue
			}
			r := mustSolve(t, g, dest, Options{PaperInit: paperInit})
			want := PredictedCost(n, r.Bits, r.Iterations, paperInit)
			got := r.Metrics
			if got.BusCycles != want.BusCycles ||
				got.WiredOrCycles != want.WiredOrCycles ||
				got.GlobalOrOps != want.GlobalOrOps {
				t.Errorf("trial %d (paperInit=%v): comm metrics %v, predicted %v",
					trial, paperInit, got, want)
			}
			if got.ShiftSteps != 0 || got.RouterCycles != 0 {
				t.Errorf("trial %d: PPA solve used shifts/router: %v", trial, got)
			}
		}
	}
}

func TestSolveCostScalesLinearlyInH(t *testing.T) {
	// E1's shape at the Solve level: doubling h doubles the wired-OR count
	// and leaves the per-iteration broadcast count unchanged.
	g := graph.GenChain(8, 1)
	r16 := mustSolve(t, g, 7, Options{Bits: 16})
	r32 := mustSolve(t, g, 7, Options{Bits: 32})
	if r16.Iterations != r32.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", r16.Iterations, r32.Iterations)
	}
	if r32.Metrics.WiredOrCycles != 2*r16.Metrics.WiredOrCycles {
		t.Errorf("wired-OR cycles: h=32 %d, h=16 %d (want exactly 2x)",
			r32.Metrics.WiredOrCycles, r16.Metrics.WiredOrCycles)
	}
	if r32.Metrics.BusCycles != r16.Metrics.BusCycles {
		t.Errorf("bus cycles differ across h: %d vs %d",
			r32.Metrics.BusCycles, r16.Metrics.BusCycles)
	}
}

func TestPaperInitCorrectOnSymmetricGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(8)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					w := 1 + rng.Int63n(9)
					g.SetEdge(i, j, w)
					g.SetEdge(j, i, w)
				}
			}
		}
		dest := rng.Intn(n)
		r := mustSolve(t, g, dest, Options{PaperInit: true})
		agreeWithBellmanFord(t, g, dest, r)
	}
}

// TestPaperInitErratumOnDirectedGraph demonstrates deviation 2 of
// DESIGN.md: statement 5 as printed loads row d of W where the DP needs
// column d, which fabricates a path on asymmetric inputs.
func TestPaperInitErratumOnDirectedGraph(t *testing.T) {
	g := graph.New(2)
	g.SetEdge(1, 0, 1) // only edge: 1 -> 0; vertex 0 cannot reach dest 1
	wrong := mustSolve(t, g, 1, Options{PaperInit: true})
	if wrong.Dist[0] != 1 {
		t.Errorf("expected the documented erratum (fabricated dist 1), got %d", wrong.Dist[0])
	}
	right := mustSolve(t, g, 1, Options{})
	if right.Dist[0] != graph.NoEdge {
		t.Errorf("corrected init: Dist[0] = %d, want unreachable", right.Dist[0])
	}
}

func TestSolveWorkersDeterminism(t *testing.T) {
	g := graph.GenRandomConnected(12, 0.25, 9, 5)
	base := mustSolve(t, g, 4, Options{})
	for _, workers := range []int{2, 4, 8} {
		r := mustSolve(t, g, 4, Options{Workers: workers})
		if !reflect.DeepEqual(r.Dist, base.Dist) || !reflect.DeepEqual(r.Next, base.Next) ||
			r.Metrics != base.Metrics {
			t.Errorf("workers=%d diverged from serial run", workers)
		}
	}
}

func TestSolveErrors(t *testing.T) {
	g := graph.GenChain(4, 1)
	if _, err := Solve(g, -1, Options{}); err == nil {
		t.Error("negative dest accepted")
	}
	if _, err := Solve(g, 4, Options{}); err == nil {
		t.Error("out-of-range dest accepted")
	}
	if _, err := Solve(g, 0, Options{Bits: 63}); err == nil {
		t.Error("oversized Bits accepted")
	}
	// Too few bits to hold vertex indices.
	big := graph.GenChain(10, 1)
	if _, err := Solve(big, 0, Options{Bits: 3}); err == nil {
		t.Error("3-bit machine accepted a 10-vertex problem")
	}
	// Too few bits to keep worst-case path costs below MAXINT.
	heavy := graph.GenChain(5, 60)
	if _, err := Solve(heavy, 4, Options{Bits: 7}); err == nil {
		t.Error("saturating configuration accepted")
	}
	bad := graph.New(2)
	bad.W[1] = -5
	if _, err := Solve(bad, 0, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
}

func TestSolveAutoBitsMatchesExplicit(t *testing.T) {
	g := graph.GenRandomConnected(7, 0.4, 11, 23)
	auto := mustSolve(t, g, 2, Options{})
	explicit := mustSolve(t, g, 2, Options{Bits: auto.Bits})
	if !reflect.DeepEqual(auto.Dist, explicit.Dist) || auto.Metrics != explicit.Metrics {
		t.Error("auto bits differs from explicit same-width run")
	}
	if auto.Bits != g.BitsNeeded() {
		t.Errorf("auto bits = %d, BitsNeeded = %d", auto.Bits, g.BitsNeeded())
	}
}

func TestSolveMaxIterationsGuard(t *testing.T) {
	g := graph.GenChain(8, 1)
	if _, err := Solve(g, 7, Options{MaxIterations: 2}); err == nil {
		t.Error("MaxIterations guard did not trip")
	}
}

func TestSolveEqualCostTieBreaksToSmallestIndex(t *testing.T) {
	// Vertex 0 reaches dest 3 at equal cost via 1 and 2 in the same round;
	// selected_min(COL, ...) must pick 1.
	g := graph.New(4)
	g.SetEdge(0, 2, 5)
	g.SetEdge(0, 1, 5)
	g.SetEdge(1, 3, 5)
	g.SetEdge(2, 3, 5)
	r := mustSolve(t, g, 3, Options{})
	if r.Dist[0] != 10 || r.Next[0] != 1 {
		t.Errorf("Dist[0]=%d Next[0]=%d, want 10 via 1", r.Dist[0], r.Next[0])
	}
}
