package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/graph"
)

// TestVirtualSolveMatchesDirect: block-mapped execution changes nothing
// about the answers — Dist, Next and Iterations are identical for every
// block factor.
func TestVirtualSolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 12; trial++ {
		n := []int{4, 6, 8, 12}[rng.Intn(4)]
		g := graph.GenRandom(n, 0.2+rng.Float64()*0.5, 1+int64(rng.Intn(12)), rng.Int63())
		dest := rng.Intn(n)
		direct := mustSolve(t, g, dest, Options{})
		for phys := 1; phys <= n; phys++ {
			if n%phys != 0 {
				continue
			}
			v := mustSolve(t, g, dest, Options{PhysicalSide: phys, Bits: direct.Bits})
			if !reflect.DeepEqual(direct.Dist, v.Dist) ||
				!reflect.DeepEqual(direct.Next, v.Next) ||
				direct.Iterations != v.Iterations {
				t.Fatalf("trial %d n=%d phys=%d: virtual solve diverged", trial, n, phys)
			}
		}
	}
}

// TestVirtualSolveCostScalesWithK: the virtualization ablation — the
// physical bus-cycle count scales by exactly k = n/m relative to the
// direct run (wired-OR likewise; the extra 2k shifts per logical wired-OR
// show up in ShiftSteps).
func TestVirtualSolveCostScalesWithK(t *testing.T) {
	g := graph.GenRandomConnected(16, 0.3, 9, 4)
	direct := mustSolve(t, g, 3, Options{})
	for _, phys := range []int{8, 4, 2} {
		k := 16 / phys
		v := mustSolve(t, g, 3, Options{PhysicalSide: phys, Bits: direct.Bits})
		if v.Metrics.BusCycles != int64(k)*direct.Metrics.BusCycles {
			t.Errorf("phys=%d: bus cycles %d, want %d x %d",
				phys, v.Metrics.BusCycles, k, direct.Metrics.BusCycles)
		}
		if v.Metrics.WiredOrCycles != int64(k)*direct.Metrics.WiredOrCycles {
			t.Errorf("phys=%d: wired-OR cycles %d, want %d x %d",
				phys, v.Metrics.WiredOrCycles, k, direct.Metrics.WiredOrCycles)
		}
		if v.Metrics.ShiftSteps != 2*v.Metrics.WiredOrCycles {
			t.Errorf("phys=%d: shift steps %d, want 2 x wired-OR %d",
				phys, v.Metrics.ShiftSteps, v.Metrics.WiredOrCycles)
		}
	}
}

func TestVirtualSolveRejectsBadSide(t *testing.T) {
	g := graph.GenChain(6, 1)
	if _, err := Solve(g, 5, Options{PhysicalSide: 4}); err == nil {
		t.Error("non-divisor physical side accepted")
	}
}

func TestVirtualSolveFullSideIsDirect(t *testing.T) {
	g := graph.GenChain(5, 2)
	direct := mustSolve(t, g, 4, Options{})
	same := mustSolve(t, g, 4, Options{PhysicalSide: 5})
	if direct.Metrics != same.Metrics {
		t.Errorf("PhysicalSide == n changed metrics: %v vs %v", direct.Metrics, same.Metrics)
	}
	bigger := mustSolve(t, g, 4, Options{PhysicalSide: 9})
	if direct.Metrics != bigger.Metrics {
		t.Error("PhysicalSide > n should fall back to direct execution")
	}
}
