package core

import (
	"testing"

	"ppamcp/internal/graph"
)

// TestSolveSteadyStateAllocs is the allocation-regression guard for the
// free-list pooling introduced with the packed lane engine: once a
// Session's pools are warm, a Solve must not allocate per-plane or
// per-iteration temporaries — only the Result itself and a handful of
// fixed-size host buffers. The bound has headroom over the measured
// steady state (~160 allocs at n=64) but sits far below the unpooled
// implementation (~1450), so a leak of even one temporary per DP
// iteration trips it.
func TestSolveSteadyStateAllocs(t *testing.T) {
	g := graph.GenRandomConnected(64, 0.3, 9, 5)
	s, err := NewSession(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: first solve grows the pools to the peak live-variable count.
	if _, err := s.Solve(1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := s.Solve(1); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 400
	if allocs > maxAllocs {
		t.Fatalf("steady-state Session.Solve allocates %.0f objects, want <= %d", allocs, maxAllocs)
	}
}

// TestVirtualSolveSteadyStateAllocs pins the same property for
// block-mapped execution: the packed virtualization engine keeps all
// plane-pass staging in machine-owned scratch, so a warm virtualized
// Solve allocates in the same band as the direct machine — far below the
// per-lane unpack scratch it replaced (which added ~1000 allocations per
// solve at n=64 on m=8).
func TestVirtualSolveSteadyStateAllocs(t *testing.T) {
	g := graph.GenRandomConnected(64, 0.3, 9, 5)
	s, err := NewSession(g, Options{PhysicalSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := s.Solve(1); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 400
	if allocs > maxAllocs {
		t.Fatalf("steady-state virtualized Session.Solve allocates %.0f objects, want <= %d", allocs, maxAllocs)
	}
}
