package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// AllPairs solves the all-pairs minimum cost path problem by running the
// single-destination algorithm once per destination — the usage pattern
// the dynamic-programming formulation was designed for on the Connection
// Machine and the GCN (building complete routing tables).
type AllPairs struct {
	N int
	// Dist is row-major: Dist[i*N+j] is the MCP cost from i to j
	// (graph.NoEdge if unreachable).
	Dist []int64
	// Next is row-major: Next[i*N+j] is the vertex after i on an MCP to j
	// (-1 on the diagonal and for unreachable pairs).
	Next []int
	// Metrics is the summed machine cost over all n solves.
	Metrics ppa.Metrics
	// Iterations is the summed DP round count.
	Iterations int
}

// SolveAllPairs runs the DP for every destination and assembles the full
// distance and next-hop matrices. Destinations are split into contiguous
// shards over min(GOMAXPROCS, n) workers; each worker drives its shard
// through one warm session's SolveSweep (one machine, one weight DMA, the
// selector planes retargeted incrementally per destination) and closes
// the session when its shard is done. Results are deterministic for any
// worker count: each destination's solve is self-contained, the
// aggregation order is fixed, and on failure the reported error is the
// one at the smallest failing destination index — every shard stops at
// its own first error, so the shard containing the globally smallest
// failing index always reaches and records it.
func SolveAllPairs(g *graph.Graph, opt Options) (*AllPairs, error) {
	n := g.N
	ap := &AllPairs{
		N:    n,
		Dist: make([]int64, n*n),
		Next: make([]int, n*n),
	}
	results := make([]*Result, n)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			session, err := NewSession(g, opt)
			if err != nil {
				errs[lo] = err
				return
			}
			defer session.Close()
			dests := make([]int, hi-lo)
			for i := range dests {
				dests[i] = lo + i
			}
			err = session.SolveSweep(context.Background(), dests, func(r *Result) error {
				results[r.Dest] = r
				return nil
			})
			if err != nil {
				// The sweep stopped at its shard's first failing
				// destination: the one after the last yielded result.
				first := lo
				for first < hi-1 && results[first] != nil {
					first++
				}
				errs[first] = err
			}
		}(lo, hi)
	}
	wg.Wait()

	for dest := 0; dest < n; dest++ {
		if errs[dest] != nil {
			return nil, fmt.Errorf("core: all-pairs destination %d: %w", dest, errs[dest])
		}
		r := results[dest]
		for i := 0; i < n; i++ {
			ap.Dist[i*n+dest] = r.Dist[i]
			ap.Next[i*n+dest] = r.Next[i]
		}
		ap.Metrics = ap.Metrics.Add(r.Metrics)
		ap.Iterations += r.Iterations
	}
	return ap, nil
}

// Path reconstructs the vertex sequence of an MCP from i to j (both
// inclusive); ok is false when j is unreachable from i.
func (ap *AllPairs) Path(i, j int) (path []int, ok bool) {
	if i < 0 || i >= ap.N || j < 0 || j >= ap.N {
		return nil, false
	}
	if i == j {
		return []int{i}, true
	}
	if ap.Dist[i*ap.N+j] == graph.NoEdge {
		return nil, false
	}
	path = []int{i}
	v := i
	for steps := 0; v != j; steps++ {
		if steps > ap.N {
			return nil, false
		}
		v = ap.Next[v*ap.N+j]
		if v < 0 || v >= ap.N {
			return nil, false
		}
		path = append(path, v)
	}
	return path, true
}

// SourceResult is the outcome of SolveFromSource: minimum cost paths from
// one source vertex to every other vertex.
type SourceResult struct {
	Source int
	// Dist[j] is the MCP cost from Source to j.
	Dist []int64
	// Prev[j] is the vertex *preceding* j on an MCP from Source (-1 for
	// the source itself and unreachable vertices). Follow Prev backwards
	// to reconstruct paths, or use PathTo.
	Prev []int
	// Iterations and Metrics mirror Result's accounting.
	Iterations int
	Metrics    ppa.Metrics
	Bits       uint
}

// SolveFromSource computes single-SOURCE minimum cost paths on the PPA by
// the standard reversal: paths from s to j in g are paths from j to s in
// the transpose of g, so one single-destination solve on the transposed
// weight matrix (a relabelling of which PE holds which w_ij — free at
// load time) yields all of them. The paper only states the
// single-destination variant; this adapter is part of the library surface
// because routing-style applications need both orientations.
func SolveFromSource(g *graph.Graph, source int, opt Options) (*SourceResult, error) {
	r, err := Solve(g.Transpose(), source, opt)
	if err != nil {
		return nil, err
	}
	return &SourceResult{
		Source:     source,
		Dist:       r.Dist,
		Prev:       r.Next, // next hop toward s in the transpose = predecessor in g
		Iterations: r.Iterations,
		Metrics:    r.Metrics,
		Bits:       r.Bits,
	}, nil
}

// PathTo reconstructs the vertex sequence of an MCP from the source to j.
func (s *SourceResult) PathTo(j int) (path []int, ok bool) {
	if j < 0 || j >= len(s.Dist) {
		return nil, false
	}
	if j == s.Source {
		return []int{j}, true
	}
	if s.Dist[j] == graph.NoEdge {
		return nil, false
	}
	rev := []int{j}
	v := j
	for steps := 0; v != s.Source; steps++ {
		if steps > len(s.Dist) {
			return nil, false
		}
		v = s.Prev[v]
		if v < 0 || v >= len(s.Dist) {
			return nil, false
		}
		rev = append(rev, v)
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, true
}
