package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ppamcp/internal/graph"
)

// TestSwitchOnlyBusMatchesWiredOr: the two bus models are an
// implementation detail — Dist, Next and Iterations are identical.
func TestSwitchOnlyBusMatchesWiredOr(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(11)
		g := graph.GenRandom(n, 0.2+rng.Float64()*0.5, 1+int64(rng.Intn(12)), rng.Int63())
		dest := rng.Intn(n)
		wired := mustSolve(t, g, dest, Options{})
		switched := mustSolve(t, g, dest, Options{SwitchOnlyBus: true, Bits: wired.Bits})
		if !reflect.DeepEqual(wired.Dist, switched.Dist) ||
			!reflect.DeepEqual(wired.Next, switched.Next) ||
			wired.Iterations != switched.Iterations {
			t.Fatalf("trial %d: bus models diverged", trial)
		}
	}
}

// TestSwitchOnlyBusCostModel: no wired-OR cycles at all; bus cycles match
// the 2h+2-per-min analytical model.
func TestSwitchOnlyBusCostModel(t *testing.T) {
	for _, h := range []uint{8, 16} {
		g := graph.GenRandomConnected(10, 0.3, 9, int64(h))
		r := mustSolve(t, g, 4, Options{SwitchOnlyBus: true, Bits: h})
		if r.Metrics.WiredOrCycles != 0 {
			t.Errorf("h=%d: switch-only run used %d wired-OR cycles", h, r.Metrics.WiredOrCycles)
		}
		want := PredictedCostModel(h, r.Iterations, false, true)
		if r.Metrics.BusCycles != want.BusCycles || r.Metrics.GlobalOrOps != want.GlobalOrOps {
			t.Errorf("h=%d: bus=%d globalOR=%d, model %d/%d",
				h, r.Metrics.BusCycles, r.Metrics.GlobalOrOps, want.BusCycles, want.GlobalOrOps)
		}
	}
}

// TestBusModelsBothThetaPH: both models scale linearly in h — the paper's
// complexity result does not depend on the wired-OR assumption.
func TestBusModelsBothThetaPH(t *testing.T) {
	g := graph.GenChain(8, 1)
	for _, switchOnly := range []bool{false, true} {
		r16 := mustSolve(t, g, 7, Options{Bits: 16, SwitchOnlyBus: switchOnly})
		r32 := mustSolve(t, g, 7, Options{Bits: 32, SwitchOnlyBus: switchOnly})
		var c16, c32 int64
		if switchOnly {
			c16, c32 = r16.Metrics.BusCycles, r32.Metrics.BusCycles
		} else {
			c16, c32 = r16.Metrics.WiredOrCycles, r32.Metrics.WiredOrCycles
		}
		// The h-dependent term must exactly double with h.
		perIter16 := c16 / int64(r16.Iterations)
		perIter32 := c32 / int64(r32.Iterations)
		growth := perIter32 - perIter16
		if switchOnly {
			// per-iter bus: 2*(2h+2)+5 -> growth 4*16 = 64.
			if growth != 64 {
				t.Errorf("switch-only growth = %d, want 64", growth)
			}
		} else if growth != 32 { // per-iter wired-OR: 2h -> growth 2*16.
			t.Errorf("wired-OR growth = %d, want 32", growth)
		}
	}
}
