package core

import (
	"fmt"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// This file is the ingest half of the incremental re-solve path (the DP
// half lives in resolve.go): Session.Update patches a dynamic graph's
// weight changes into the resident weight plane word by word, and keeps
// the bookkeeping Resolve needs to decide how much of a previous solution
// survives.
//
// The bookkeeping is a version counter plus an append-only log of every
// effective machine-word weight change. Only the increases can invalidate
// a retained solution — old distances remain upper bounds across
// decreases, and Bellman-Ford-style relaxation converges from any upper
// bound — but the decreases are logged too (flagged inc=false) so
// ResolveSweep's skip-converged check can prove a destination untouched
// by the whole delta without running its DP (resolvesweep.go). A warm
// snapshot taken at version v is revalidated against the log suffix
// (entries newer than v); Reload truncates the log wholesale by raising
// logFloor, which marks every snapshot stale in O(1) without touching
// the retained storage (it is reused by the next warm solve of that
// destination).

// incEntry records one applied machine-word weight change. inc marks an
// increase — the only kind that can invalidate a retained solution (edge
// removal is an increase to MAXINT; inserting an edge is a decrease from
// it); decreases ride along for the skip-converged check.
type incEntry struct {
	ver  uint64
	u, v int32
	inc  bool
}

// warmDest is the retained solution for one destination: machine-word
// distances (sow[dest] = 0, MAXINT for unreachable), the canonical next
// pointers (-1 for dest and unreachable vertices), and the update version
// the snapshot reflects.
type warmDest struct {
	ver  uint64
	sow  []ppa.Word
	next []int32
}

// maxIncLog bounds the change log. A session whose warm snapshots are
// never refreshed would otherwise grow the log without bound on an
// update-heavy stream; past the cap the log is truncated and every
// snapshot marked stale (the next Resolve per destination is a cold
// solve), trading one re-solve for O(1) memory.
func (s *Session) maxIncLog() int { return 1024 + 4*s.m.N() }

// invalidateWarm marks every retained solution stale and empties the
// change log — the O(1) full invalidation Reload uses (snapshot storage
// is kept for reuse; staleness is decided by comparing versions).
func (s *Session) invalidateWarm() {
	s.version++
	s.logFloor = s.version
	s.incLog = s.incLog[:0]
}

// Update applies a batch of weight updates to the session's graph and
// patches only the touched words of the resident weight plane — O(k)
// sparse DMA for k edges instead of Reload's O(n²) re-stream. The batch
// is atomic: every update is validated (endpoint range and the same
// word-width rule Reload enforces) before anything is applied, and on
// error neither the graph nor the machine changed. Updates may repeat an
// edge (last write wins); no-op updates cost nothing.
//
// The caller's graph is never mutated: the first effective Update clones
// it and the session mutates its own copy from then on (Graph returns the
// current one). Like every Session method, Update is not safe for
// concurrent use.
func (s *Session) Update(updates []graph.WeightUpdate) error {
	n := s.m.N()
	h := s.m.Bits()
	inf := ppa.Infinity(h)
	for _, u := range updates {
		if err := u.Validate(n); err != nil {
			return err
		}
		if u.W != graph.NoEdge && u.U != u.V && n > 1 && u.W > (int64(inf)-1)/int64(n-1) {
			// Same overflow guard as loadWeightsInto: a worst-case simple
			// path could saturate and masquerade as "no path".
			return fmt.Errorf(
				"core: %d-bit words cannot distinguish worst-case path cost (%d * %d) from MAXINT; raise Options.Bits",
				h, n-1, u.W)
		}
	}
	if len(updates) == 0 {
		return nil
	}
	if !s.ownG {
		s.g = s.g.Clone()
		s.ownG = true
	}
	s.upIdx = s.upIdx[:0]
	s.upVals = s.upVals[:0]
	words := s.W.Words()
	bumped := false
	for _, u := range updates {
		s.g.W[u.U*n+u.V] = u.W
		if u.U == u.V {
			// The machine diagonal is pinned to 0 by the DP convention
			// (loadWeightsInto); self-loop weights never reach the plane.
			continue
		}
		i := u.U*n + u.V
		nw := inf
		if u.W != graph.NoEdge {
			nw = ppa.Word(u.W)
		}
		// The current word is the resident one unless an earlier update in
		// this batch already staged the same edge.
		ow := words[i]
		for k := len(s.upIdx) - 1; k >= 0; k-- {
			if s.upIdx[k] == i {
				ow = s.upVals[k]
				break
			}
		}
		if nw == ow {
			continue
		}
		if !bumped {
			s.version++
			bumped = true
		}
		s.incLog = append(s.incLog, incEntry{ver: s.version, u: int32(u.U), v: int32(u.V), inc: nw > ow})
		s.upIdx = append(s.upIdx, i)
		s.upVals = append(s.upVals, nw)
		if s.wbuf != nil {
			s.wbuf[i] = nw
		}
	}
	if len(s.upIdx) > 0 {
		s.W.LoadSparse(s.upIdx, s.upVals)
	}
	if len(s.incLog) > s.maxIncLog() {
		s.invalidateWarm()
	}
	return nil
}

// Graph returns the session's current graph: the caller-supplied one
// until the first Update, the session-owned mutated copy afterwards.
func (s *Session) Graph() *graph.Graph { return s.g }

// retain snapshots a finished solve so the next Resolve of the same
// destination can warm-start from it. Storage is reused across snapshots.
func (s *Session) retain(dest int, r *Result) {
	n := s.m.N()
	inf := ppa.Infinity(s.m.Bits())
	if s.warm == nil {
		s.warm = make(map[int]*warmDest)
	}
	w := s.warm[dest]
	if w == nil {
		w = &warmDest{
			sow:  make([]ppa.Word, n),
			next: make([]int32, n),
		}
		s.warm[dest] = w
	}
	for i := 0; i < n; i++ {
		switch {
		case i == dest:
			w.sow[i] = 0
		case r.Dist[i] == graph.NoEdge:
			w.sow[i] = inf
		default:
			w.sow[i] = ppa.Word(r.Dist[i])
		}
		w.next[i] = int32(r.Next[i])
	}
	w.ver = s.version
	s.pruneLog()
}

// pruneLog drops change-log entries no live snapshot can still need:
// the log is append-ordered by version, so everything at or below the
// minimum snapshot version is a dead prefix.
func (s *Session) pruneLog() {
	if len(s.incLog) == 0 {
		return
	}
	minVer := s.version
	for _, w := range s.warm {
		if w.ver >= s.logFloor && w.ver < minVer {
			minVer = w.ver
		}
	}
	k := 0
	for k < len(s.incLog) && s.incLog[k].ver <= minVer {
		k++
	}
	if k > 0 {
		s.incLog = s.incLog[:copy(s.incLog, s.incLog[k:])]
	}
}
