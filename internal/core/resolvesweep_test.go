package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// resolveSweepAll collects ResolveSweep results for every destination.
func resolveSweepAll(t *testing.T, s *Session) []*Result {
	t.Helper()
	n := s.N()
	dests := make([]int, n)
	for d := range dests {
		dests[d] = d
	}
	out := make([]*Result, 0, n)
	err := s.ResolveSweep(context.Background(), dests, func(r *Result) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("ResolveSweep: %v", err)
	}
	return out
}

// TestSweepDestValidation pins the typed destination validation both sweep
// entry points share: out-of-range and duplicate destinations are rejected
// with a *DestError before any solve runs or any row is yielded.
func TestSweepDestValidation(t *testing.T) {
	g := graph.GenRandomConnected(8, 0.4, 9, 21)
	s, err := NewSession(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sweeps := map[string]func([]int, func(*Result) error) error{
		"SolveSweep": func(d []int, y func(*Result) error) error {
			return s.SolveSweep(context.Background(), d, y)
		},
		"ResolveSweep": func(d []int, y func(*Result) error) error {
			return s.ResolveSweep(context.Background(), d, y)
		},
	}
	cases := []struct {
		name  string
		dests []int
		want  DestError
	}{
		{"negative", []int{0, -1}, DestError{Dest: -1, Index: 1, N: 8}},
		{"too-large", []int{3, 8}, DestError{Dest: 8, Index: 1, N: 8}},
		{"duplicate", []int{0, 5, 3, 5}, DestError{Dest: 5, Index: 3, N: 8, Dup: true}},
		{"adjacent-dup", []int{2, 2}, DestError{Dest: 2, Index: 1, N: 8, Dup: true}},
	}
	for sname, sweep := range sweeps {
		for _, tc := range cases {
			yields := 0
			err := sweep(tc.dests, func(*Result) error { yields++; return nil })
			var de *DestError
			if !errors.As(err, &de) {
				t.Fatalf("%s/%s: got %v, want *DestError", sname, tc.name, err)
			}
			if *de != tc.want {
				t.Errorf("%s/%s: got %+v, want %+v", sname, tc.name, *de, tc.want)
			}
			if yields != 0 {
				t.Errorf("%s/%s: %d rows yielded before validation error", sname, tc.name, yields)
			}
			if tc.want.Dup == strings.Contains(err.Error(), "out of range") {
				t.Errorf("%s/%s: error text %q does not match its kind", sname, tc.name, err)
			}
		}
		// The session survives rejected sweeps.
		if _, err := s.Solve(1); err != nil {
			t.Fatalf("%s: session unusable after validation errors: %v", sname, err)
		}
	}
}

// TestResolveSweepColdParity pins the cold-class contract: on a session
// with no retained state — first sweep, and first sweep after Reload —
// ResolveSweep is byte-identical to SolveSweep for every destination:
// Dist, Next, Iterations, Bits AND Metrics.
func TestResolveSweepColdParity(t *testing.T) {
	g1 := graph.GenRandomConnected(12, 0.4, 9, 22)
	g2 := graph.GenRandomConnected(12, 0.3, 9, 23)
	options := map[string]Options{
		"default":     {},
		"reference":   {ReferenceKernels: true},
		"switch-only": {SwitchOnlyBus: true},
		"virtualized": {PhysicalSide: 6},
		"paper-init":  {PaperInit: true},
	}
	for oname, opt := range options {
		rs, err := NewSession(g1, opt)
		if err != nil {
			t.Fatalf("%s: %v", oname, err)
		}
		ss, err := NewSession(g1, opt)
		if err != nil {
			t.Fatalf("%s: %v", oname, err)
		}
		check := func(phase string) {
			got := resolveSweepAll(t, rs)
			want := sweepAll(t, ss)
			for d := range want {
				if !reflect.DeepEqual(got[d], want[d]) {
					t.Errorf("%s/%s dest %d: cold ResolveSweep differs from SolveSweep:\ngot  %+v\nwant %+v",
						oname, phase, d, got[d], want[d])
				}
			}
		}
		check("fresh")
		if err := rs.Reload(g2); err != nil {
			t.Fatal(err)
		}
		if err := ss.Reload(g2); err != nil {
			t.Fatal(err)
		}
		check("post-reload")
		rs.Close()
		ss.Close()
	}
}

// TestResolveSweepDifferential is the warm differential suite: randomized
// update streams of every delta class (including edge deletions, W =
// NoEdge) on every fabric flavor, each generation's ResolveSweep checked
// destination by destination against a from-scratch solve of the mirror
// graph and the Bellman-Ford reference.
func TestResolveSweepDifferential(t *testing.T) {
	const n = 12
	configs := []struct {
		name string
		opt  Options
	}{
		{"direct", Options{Bits: 12}},
		{"reference", Options{Bits: 12, ReferenceKernels: true}},
		{"switch-only", Options{Bits: 12, SwitchOnlyBus: true}},
		{"virt-m6", Options{Bits: 12, PhysicalSide: 6}},
	}
	dests := make([]int, n)
	for d := range dests {
		dests[d] = d
	}
	for _, cfg := range configs {
		for _, mode := range []string{"decrease", "increase", "mixed"} {
			t.Run(cfg.name+"/"+mode, func(t *testing.T) {
				g0 := graph.GenRandomConnected(n, 0.35, 9, 8)
				s, err := NewSession(g0, cfg.opt)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				mirror := g0.Clone()
				rng := rand.New(rand.NewSource(43))
				ctx := context.Background()
				for step := 0; step < 5; step++ {
					batch := genUpdates(rng, mirror, mode, 1+rng.Intn(4))
					if err := s.Update(batch); err != nil {
						t.Fatalf("step %d: Update: %v", step, err)
					}
					if err := mirror.Apply(batch); err != nil {
						t.Fatalf("step %d: Apply: %v", step, err)
					}
					rows := 0
					err := s.ResolveSweep(ctx, dests, func(r *Result) error {
						if r.Dest != dests[rows] {
							t.Fatalf("step %d: row %d has dest %d", step, rows, r.Dest)
						}
						rows++
						checkResolved(t, r, mirror, r.Dest, cfg.opt)
						return nil
					})
					if err != nil {
						t.Fatalf("step %d: ResolveSweep: %v", step, err)
					}
					if rows != n {
						t.Fatalf("step %d: %d rows, want %d", step, rows, n)
					}
				}
			})
		}
	}
}

// TestResolveSweepFastGeneralParity pins the two warm execution lanes
// against each other across whole sweeps: identical update streams on a
// fused and a reference-kernel session must yield byte-identical
// Iterations and Metrics for every row — including the skipped ones,
// which issue no fabric transaction in either lane — and byte-identical
// observer event streams overall.
func TestResolveSweepFastGeneralParity(t *testing.T) {
	const n = 10
	g0 := graph.GenRandomConnected(n, 0.4, 9, 19)
	h := uint(12)
	record := func(m *ppa.Machine) *[]ppa.Event {
		var evs []ppa.Event
		m.SetObserver(func(e ppa.Event) { evs = append(evs, e) })
		return &evs
	}
	mFast := ppa.New(n, h)
	fastEvs := record(mFast)
	fast, err := NewSessionOn(mFast, g0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	mGen := ppa.New(n, h)
	genEvs := record(mGen)
	gen, err := NewSessionOn(mGen, g0, Options{ReferenceKernels: true})
	if err != nil {
		t.Fatal(err)
	}
	defer gen.Close()

	rng := rand.New(rand.NewSource(6))
	mirror := g0.Clone()
	ctx := context.Background()
	dests := make([]int, n)
	for d := range dests {
		dests[d] = d
	}
	for step := 0; step < 5; step++ {
		batch := genUpdates(rng, mirror, "mixed", 1+rng.Intn(3))
		if err := fast.Update(batch); err != nil {
			t.Fatal(err)
		}
		if err := gen.Update(batch); err != nil {
			t.Fatal(err)
		}
		if err := mirror.Apply(batch); err != nil {
			t.Fatal(err)
		}
		var rf, rg []*Result
		if err := fast.ResolveSweep(ctx, dests, func(r *Result) error { rf = append(rf, r); return nil }); err != nil {
			t.Fatal(err)
		}
		if err := gen.ResolveSweep(ctx, dests, func(r *Result) error { rg = append(rg, r); return nil }); err != nil {
			t.Fatal(err)
		}
		for d := range dests {
			if rf[d].Iterations != rg[d].Iterations {
				t.Fatalf("step %d dest %d: iterations %d (fast) vs %d (general)",
					step, d, rf[d].Iterations, rg[d].Iterations)
			}
			if rf[d].Metrics != rg[d].Metrics {
				t.Fatalf("step %d dest %d: metrics diverge\nfast:    %+v\ngeneral: %+v",
					step, d, rf[d].Metrics, rg[d].Metrics)
			}
			if !reflect.DeepEqual(rf[d].Dist, rg[d].Dist) || !reflect.DeepEqual(rf[d].Next, rg[d].Next) {
				t.Fatalf("step %d dest %d: results diverge", step, d)
			}
		}
	}
	if !reflect.DeepEqual(*fastEvs, *genEvs) {
		la, lb := *fastEvs, *genEvs
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				t.Fatalf("event streams diverge at %d: %+v (fast) vs %+v (general); lengths %d vs %d",
					i, la[i], lb[i], len(la), len(lb))
			}
		}
		t.Fatalf("event streams diverge: %d (fast) vs %d (general) events", len(la), len(lb))
	}
}

// TestResolveSweepSkipConverged pins the skip-converged fast-out. On a
// forward chain a local edit can only reach the destinations downstream of
// it: upstream destinations must be emitted straight from the retained
// rows (zero Iterations, zero Metrics), downstream ones must re-run the
// DP — and an update-free sweep must skip every destination.
func TestResolveSweepSkipConverged(t *testing.T) {
	const n = 16
	g := graph.GenChain(n, 3)
	s, err := NewSession(g, Options{Bits: 12})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resolveSweepAll(t, s) // cold sweep retains every destination

	// No updates: every row of the second sweep is a skip.
	for d, r := range resolveSweepAll(t, s) {
		if r.Iterations != 0 || r.Metrics != (ppa.Metrics{}) {
			t.Fatalf("update-free sweep dest %d: Iterations=%d Metrics=%+v, want zero",
				d, r.Iterations, r.Metrics)
		}
	}

	// Edge (7, 8) feeds only destinations >= 8; vertices 0..7 reach them
	// through it, so those rows must re-solve while destinations <= 7
	// (whose solutions never see the edge) skip.
	if err := s.Update([]graph.WeightUpdate{{U: 7, V: 8, W: 9}}); err != nil {
		t.Fatal(err)
	}
	mirror := g.Clone()
	mirror.W[7*n+8] = 9
	for d, r := range resolveSweepAll(t, s) {
		skipped := r.Iterations == 0
		if skipped != (d <= 7) {
			t.Errorf("dest %d: skipped=%v, want %v", d, skipped, d <= 7)
		}
		if skipped && r.Metrics != (ppa.Metrics{}) {
			t.Errorf("dest %d: skipped row charged metrics %+v", d, r.Metrics)
		}
		checkResolved(t, r, mirror, d, Options{Bits: 12})
	}
}

// TestResolveSweepNeverWarm: faulty fabrics and PaperInit sessions never
// retain or warm-start — every ResolveSweep repeats the cold sweep
// byte-identically, Metrics included.
func TestResolveSweepNeverWarm(t *testing.T) {
	g := graph.GenRandomConnected(8, 0.4, 9, 24)
	h := g.BitsNeeded()

	m := ppa.New(g.N, h)
	m.InjectFault(13, ppa.StuckShort)
	faulty, err := NewSessionOn(m, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()
	paper, err := NewSession(g, Options{PaperInit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer paper.Close()

	for name, s := range map[string]*Session{"faulty": faulty, "paper-init": paper} {
		first := resolveSweepAll(t, s)
		second := resolveSweepAll(t, s)
		for d := range first {
			if !reflect.DeepEqual(first[d], second[d]) {
				t.Errorf("%s dest %d: repeat ResolveSweep not byte-identical to the first (should stay cold)", name, d)
			}
			if second[d].Iterations == 0 {
				t.Errorf("%s dest %d: skip fired on a non-retaining session", name, d)
			}
		}
	}
}

// TestResolveSweepSteadyStateAllocs pins the incremental sweep's
// allocation contract: once warm, Update(k) plus a full n-destination
// ResolveSweep allocates only the yielded Results (struct + Dist + Next
// per destination).
func TestResolveSweepSteadyStateAllocs(t *testing.T) {
	g := graph.GenRandomConnected(64, 0.3, 9, 5)
	s, err := NewSession(g, Options{Bits: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	n := g.N
	dests := make([]int, n)
	for d := range dests {
		dests[d] = d
	}
	type edge struct{ u, v int }
	var edges []edge
	for i := 0; i < n && len(edges) < 4; i++ {
		for j := 0; j < n && len(edges) < 4; j++ {
			if i != j && g.HasEdge(i, j) {
				edges = append(edges, edge{i, j})
			}
		}
	}
	ups := make([]graph.WeightUpdate, len(edges))
	tick := 0
	cycle := func() {
		tick++
		for i, e := range edges {
			ups[i] = graph.WeightUpdate{U: e.u, V: e.v, W: int64(2 + (tick+i)%2)}
		}
		if err := s.Update(ups); err != nil {
			t.Fatal(err)
		}
		if err := s.ResolveSweep(ctx, dests, func(*Result) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(5, cycle)
	perDest := allocs / float64(n)
	const maxPerDest = 4
	if perDest > maxPerDest {
		t.Errorf("warm Update(k=4)+ResolveSweep allocates %.2f objects/destination (%.0f total), want <= %d",
			perDest, allocs, maxPerDest)
	}
}

// FuzzResolveSweep replays an arbitrary byte string as an update stream on
// a live session, each batch followed by a ResolveSweep over a
// mask-selected destination subset — every row checked against a
// from-scratch solve of the mirror graph and the Bellman-Ford reference.
func FuzzResolveSweep(f *testing.F) {
	f.Add([]byte{5, 3, 40, 0xff, 1, 0, 1, 2, 3, 2, 1, 4, 0x0b})
	f.Add([]byte{3, 9, 20, 0x05, 2, 0, 1, 0, 1, 2, 11, 0xff, 1, 1, 0, 10, 0x03})
	f.Add([]byte{7, 1, 55, 0x81, 2, 3, 4, 5, 6, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			t.Skip()
		}
		n := 3 + int(data[0]%6)
		seed := int64(data[1])
		density := 0.2 + float64(data[2]%60)/100
		g := graph.GenRandom(n, density, 9, seed)
		opt := Options{Bits: 12}
		s, err := NewSession(g, opt)
		if err != nil {
			t.Skip()
		}
		defer s.Close()
		mirror := g.Clone()
		ctx := context.Background()
		i := 3
		for i+4 < len(data) {
			mask := data[i]
			k := 1 + int(data[i+1]%3)
			i += 2
			var batch []graph.WeightUpdate
			for b := 0; b < k && i+2 < len(data); b++ {
				u := int(data[i]) % n
				v := int(data[i+1]) % n
				var wt int64
				if wb := data[i+2] % 12; wb >= 10 {
					wt = graph.NoEdge
				} else {
					wt = int64(wb)
				}
				i += 3
				batch = append(batch, graph.WeightUpdate{U: u, V: v, W: wt})
			}
			if err := s.Update(batch); err != nil {
				t.Fatalf("Update: %v", err)
			}
			if err := mirror.Apply(batch); err != nil {
				t.Fatalf("Apply: %v", err)
			}
			// The mask byte selects a distinct destination subset (n <= 8).
			var dests []int
			for d := 0; d < n; d++ {
				if mask&(1<<uint(d)) != 0 {
					dests = append(dests, d)
				}
			}
			if len(dests) == 0 {
				dests = []int{int(mask) % n}
			}
			rows := 0
			err := s.ResolveSweep(ctx, dests, func(r *Result) error {
				if r.Dest != dests[rows] {
					t.Fatalf("row %d: dest %d, want %d", rows, r.Dest, dests[rows])
				}
				rows++
				checkResolved(t, r, mirror, r.Dest, opt)
				return nil
			})
			if err != nil {
				t.Fatalf("ResolveSweep: %v", err)
			}
			if rows != len(dests) {
				t.Fatalf("%d rows, want %d", rows, len(dests))
			}
		}
	})
}
