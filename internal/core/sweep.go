package core

import (
	"context"
	"fmt"

	"ppamcp/internal/graph"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
)

// This file is the batched multi-destination sweep driver: one warm
// session streams the single-destination DP for a whole list of
// destinations, paying the weight DMA and the session setup once.
//
// The fast path (solveSweepFast) is a fused host execution of exactly the
// instruction sequence SolveContext issues, under the same shadow-charge
// discipline as par's fused reductions (par/fused.go): every wired-OR and
// global-OR is a real fabric transaction, every broadcast whose data
// movement the host has computed algebraically is charged through
// ppa.Machine.ChargeBroadcast with the same switch configuration, and
// every SIMD instruction of the reference pipeline is counted. Metrics,
// observer event streams, iteration counts and outputs are byte-identical
// to a sequential Session.Solve loop by construction (pinned by the
// sweep parity tests).
//
// What makes the sweep cheap is liveness: between iterations the DP's
// only live machine state is row d of SOW and PTN. Every broadcast the
// loop issues reads either row d (open = ROW==d) or the diagonal (which
// reflects row d's update one statement later), and every store to rows
// != d is overwritten before it is next read. The fast path therefore
// keeps the DP state as three n-vectors (sowd, ptnd and the candidate
// row minima), re-materializing the full n x n candidate plane only as
// packed bit planes for the wired-OR minimum walks — one fused pass that
// replaces the broadcast + saturating add + masked store + plane-slicing
// traversals of the general path. The per-destination re-initialization
// is an incremental plane edit: the ROW==d / COL==d selector planes are
// retargeted with two stripe edits (FillRange / FillStride) instead of
// full EqConst rebuilds, charged as the EqConst instructions they shadow.

// sweepState is the per-session scratch of the fast path, allocated on
// first use and reused across every destination of every sweep — the
// steady-state sweep performs O(1) allocations per destination (the
// Result it yields).
type sweepState struct {
	dest             int // current selector-plane target (-1 = none yet)
	rowBits, colBits *ppa.Bitset
	enable, drive    *ppa.Bitset
	pred             *ppa.Bitset
	planes           []uint64 // h candidate bit planes, packed lane order
	colPlanes        []uint64 // cached bit planes of the COL coordinate
	cand             []ppa.Word
	sowd, ptnd       []ppa.Word
	wpp              int // words per plane
}

// retarget repoints the cached ROW==d / COL==d selector planes at a new
// destination with two stripe edits each — the host-side move the fast
// paths charge as the EqConst rebuilds it replaces.
func (w *sweepState) retarget(dest, n int) {
	if w.dest == dest {
		return
	}
	if w.dest >= 0 {
		w.rowBits.FillRange(w.dest*n, w.dest*n+n, false)
		w.colBits.FillStride(w.dest, n, n, false)
	}
	w.rowBits.FillRange(dest*n, dest*n+n, true)
	w.colBits.FillStride(dest, n, n, true)
	w.dest = dest
}

func (s *Session) sweep() *sweepState {
	if s.sw != nil {
		return s.sw
	}
	n := s.m.N()
	size := n * n
	h := int(s.m.Bits())
	wpp := (size + 63) >> 6
	w := &sweepState{
		dest:      -1,
		rowBits:   ppa.NewBitset(size),
		colBits:   ppa.NewBitset(size),
		enable:    ppa.NewBitset(size),
		drive:     ppa.NewBitset(size),
		pred:      ppa.NewBitset(size),
		planes:    make([]uint64, h*wpp),
		colPlanes: make([]uint64, h*wpp),
		cand:      make([]ppa.Word, size),
		sowd:      make([]ppa.Word, n),
		ptnd:      make([]ppa.Word, n),
		wpp:       wpp,
	}
	// COL is constant for the session: slice its planes once instead of
	// once per SelectedMin (the single hottest traversal of the general
	// path's profile).
	par.SlicePlanes(w.colPlanes, s.col.Words(), h, wpp)
	s.sw = w
	return w
}

// DestError is the typed validation error SolveSweep and ResolveSweep
// report for a bad destination list: an entry out of range, or one that
// repeats an earlier entry (a sweep solves each destination exactly once;
// silently coalescing duplicates would desynchronize the caller's
// dests[i] <-> yield pairing, so they are rejected instead).
type DestError struct {
	Dest  int  // offending destination value
	Index int  // its position in the dests slice
	N     int  // the fabric side (valid destinations are [0, N))
	Dup   bool // true when the destination repeats an earlier entry
}

func (e *DestError) Error() string {
	if e.Dup {
		return fmt.Sprintf("core: duplicate destination %d at dests[%d]", e.Dest, e.Index)
	}
	return fmt.Sprintf("core: destination %d at dests[%d] out of range [0,%d)", e.Dest, e.Index, e.N)
}

// checkDests validates a sweep's destination list upfront — range and
// distinctness — so a bad list fails atomically, before any solve runs or
// any row is yielded. The duplicate bitmap is session-owned and reused.
func (s *Session) checkDests(dests []int) error {
	n := s.m.N()
	if s.destSeen == nil {
		s.destSeen = make([]uint64, (n+63)>>6)
	}
	seen := s.destSeen
	for i := range seen {
		seen[i] = 0
	}
	for i, d := range dests {
		if d < 0 || d >= n {
			return &DestError{Dest: d, Index: i, N: n}
		}
		if seen[d>>6]&(1<<(uint(d)&63)) != 0 {
			return &DestError{Dest: d, Index: i, N: n, Dup: true}
		}
		seen[d>>6] |= 1 << (uint(d) & 63)
	}
	return nil
}

// SolveSweep runs the DP for each destination in dests, in order, on the
// session's warm fabric, calling yield with each destination's Result as
// it completes — the batched all-pairs driver. Destinations must be
// distinct and in range (*DestError otherwise, before anything runs).
// Results, Iterations and Metrics of every yielded Result are identical
// to what a sequential Session.Solve loop would produce. The sweep stops
// at the first error: a failed solve (the error is returned; earlier
// yields remain valid) or a non-nil error from yield (returned unwrapped,
// so callers can use a sentinel to stop early). The context is checked
// between DP iterations, as in SolveContext.
//
// Each yielded Result is freshly allocated and remains valid after the
// sweep. A Session is still not safe for concurrent use; SolveAllPairs
// shards destinations across per-worker sessions.
func (s *Session) SolveSweep(ctx context.Context, dests []int, yield func(*Result) error) error {
	if err := s.checkDests(dests); err != nil {
		return err
	}
	for _, d := range dests {
		var r *Result
		var err error
		if pm := s.sweepMachine(); pm != nil {
			r, err = s.solveSweepFast(ctx, pm, d)
		} else {
			// General path: virtualized fabrics, injected faults, the
			// switch-only bus model, reference kernels and the paper's
			// verbatim init all run the reference instruction sequence —
			// trivially parity-exact.
			r, err = s.SolveContext(ctx, d)
		}
		if err != nil {
			return err
		}
		if err := yield(r); err != nil {
			return err
		}
	}
	return nil
}

// sweepMachine returns the plain machine the fused sweep path may drive,
// or nil when the reference sequence must run. Re-checked per destination
// so a fault injected mid-sweep (e.g. from a yield callback) demotes the
// remainder of the sweep to the reference path, mirroring fusedOn.
func (s *Session) sweepMachine() *ppa.Machine {
	if s.opt.SwitchOnlyBus || s.opt.ReferenceKernels || s.opt.PaperInit || !s.a.Fused() {
		return nil
	}
	pm, ok := s.m.(*ppa.Machine)
	if !ok || pm.Faulty() {
		return nil
	}
	return pm
}

// sweepCand computes the statement-10 candidate plane
// cand(i, j) = sat(SOW[d][j] + w_ij) for i != d, with row d holding
// SOW[d] itself (the masked store skips it) — the fused equivalent of
// broadcast-South + AddSat + Assign-where-not-d.
func sweepCand(dst, sowd, w []ppa.Word, d, n int, inf ppa.Word) {
	for i := 0; i < n; i++ {
		row := dst[i*n : i*n+n]
		if i == d {
			copy(row, sowd)
			continue
		}
		wrow := w[i*n : i*n+n]
		for j, wv := range wrow {
			sv := sowd[j] + wv // lanes are in [0, inf]: no overflow
			if sv > inf {
				sv = inf
			}
			row[j] = sv
		}
	}
}

// solveSweepFast is one destination of the fused sweep (see the file
// comment for the discipline and the liveness argument).
func (s *Session) solveSweepFast(ctx context.Context, pm *ppa.Machine, dest int) (*Result, error) {
	g := s.g
	n := g.N
	if dest < 0 || dest >= n {
		return nil, fmt.Errorf("core: destination %d out of range [0,%d)", dest, n)
	}
	h := pm.Bits()
	hh := int(h)
	size := int64(n) * int64(n)
	inf := ppa.Infinity(h)
	maxIter := s.opt.MaxIterations
	if maxIter <= 0 {
		maxIter = n + 1
	}
	w := s.sweep()
	W := s.W.Words()
	diagBits := s.diag.Bits()
	headBits := s.rowHead.Bits()
	// charge mirrors par.Array.instr k times: one controller instruction,
	// executed by all n*n PEs.
	charge := func(k int) {
		for i := 0; i < k; i++ {
			pm.CountInstr()
			pm.CountPE(size)
		}
	}
	startMetrics := pm.Metrics()

	// Per-solve init, shadowing SolveContext statements 4-7. The selector
	// planes are retargeted with stripe edits; the charges are those of
	// the EqConst rebuilds they replace.
	w.retarget(dest, n)
	charge(2) // rowIsD = ROW.EqConst(d); colIsD = COL.EqConst(d)
	charge(1) // notD = rowIsD.Not()
	// Corrected init: column d of W moved onto row d (two bus cycles),
	// SOW[d][d] pinned to 0, PTN row d seeded with d.
	for j := 0; j < n; j++ {
		w.sowd[j] = W[j*n+dest]
		w.ptnd[j] = ppa.Word(dest)
	}
	w.sowd[dest] = 0
	pm.ChargeBroadcast(ppa.East, w.colBits) // acrossRows: (j, c) <- w_jd
	pm.ChargeBroadcast(ppa.South, diagBits) // ontoRowD: (r, j) <- w_jd
	charge(2)                               // SOW.Assign; PTN.AssignConst (where ROW==d)
	charge(1)                               // atDD = rowIsD.And(colIsD)
	charge(1)                               // SOW.AssignConst(0) (where atDD)
	w.pred.Fill(false)

	ew, dw := w.enable.Words(), w.drive.Words()
	iterations := 0
	var loopErr error
	for {
		if err := ctx.Err(); err != nil {
			loopErr = err
			break
		}
		iterations++
		if iterations > maxIter {
			loopErr = fmt.Errorf("core: DP did not converge within %d rounds", maxIter)
			break
		}

		// Statement 10, fused: candidate plane sliced straight into bit
		// planes for the minimum walk.
		sweepCand(w.cand, w.sowd, W, dest, n, inf)
		par.SlicePlanes(w.planes, w.cand, hh, w.wpp)
		pm.ChargeBroadcast(ppa.South, w.rowBits) // down = broadcast(SOW, SOUTH, ROW==d)
		charge(2)                                // cand = down.AddSat(W); SOW.Assign (where !=d)

		// Statement 11: Min(SOW, WEST, COL==n-1) — the fused walk of
		// par.fusedReduce with the gathers pre-done by SlicePlanes.
		charge(hh) // per-plane BitPlane gathers
		w.enable.Fill(true)
		charge(1) // enable = True()
		for j := hh - 1; j >= 0; j-- {
			pw := w.planes[j*w.wpp : (j+1)*w.wpp]
			for k, e := range ew {
				dw[k] = ^pw[k] & e
			}
			charge(2) // Not + And(enable)
			pm.WiredOrBits(ppa.West, headBits, w.drive, w.drive)
			for k, dv := range dw {
				ew[k] &^= dv & pw[k]
			}
			charge(2) // And + masked withdraw
		}
		charge(1)                              // result = src.Copy()
		pm.ChargeBroadcast(ppa.East, w.enable) // survivors send upstream
		pm.ChargeBroadcast(ppa.West, headBits) // heads spread the minima
		charge(1)                              // MinSOW.Assign (where !=d)
		charge(1)                              // sel = rowMin.Eq(SOW)

		// Statement 12: SelectedMin(COL, WEST, COL==n-1, sel). The
		// survivors of the minimum walk are exactly sel, so the walk
		// continues in place over the cached column planes.
		charge(hh) // gathers
		charge(1)  // enable = sel.Copy()
		for j := hh - 1; j >= 0; j-- {
			pw := w.colPlanes[j*w.wpp : (j+1)*w.wpp]
			for k, e := range ew {
				dw[k] = ^pw[k] & e
			}
			charge(2)
			pm.WiredOrBits(ppa.West, headBits, w.drive, w.drive)
			for k, dv := range dw {
				ew[k] &^= dv & pw[k]
			}
			charge(2)
		}
		charge(1)                              // result = src.Copy()
		pm.ChargeBroadcast(ppa.East, w.enable) // single survivor per row
		pm.ChargeBroadcast(ppa.West, headBits)
		charge(1) // PTN.Assign (where !=d)

		// Statements 14-19: fold the per-row minima back into row d via
		// the diagonal; update PTN where the cost improved. After both
		// walks each row's enable holds exactly the first lane attaining
		// the row minimum: its column is the SelectedMin result and its
		// candidate value the Min result.
		pm.ChargeBroadcast(ppa.South, diagBits) // newRow
		pm.ChargeBroadcast(ppa.South, diagBits) // newPTN
		charge(4)                               // OldSOW.Assign; SOW.Assign; changed = Ne; PTN.Assign
		w.pred.FillRange(dest*n, dest*n+n, false)
		for j := 0; j < n; j++ {
			jf := w.enable.NextSet(j*n, j*n+n)
			nv := w.cand[jf]
			if j == dest {
				nv = 0 // MinSOW[d][d] stays pinned to 0
			}
			if nv != w.sowd[j] {
				w.pred.Set(dest*n + j)
				w.ptnd[j] = ppa.Word(jf - j*n)
				w.sowd[j] = nv
			}
		}

		// Statement 20: while at least one SOW in row d has changed.
		charge(2) // ne = SOW.Ne(OldSOW); pred = rowIsD.And(ne)
		if !pm.GlobalOrBits(w.pred) {
			break
		}
	}
	if loopErr != nil {
		return nil, loopErr
	}

	res := &Result{
		Result: graph.Result{
			Dest:       dest,
			Dist:       make([]int64, n),
			Next:       make([]int, n),
			Iterations: iterations,
		},
		Metrics: pm.Metrics().Sub(startMetrics),
		Bits:    h,
	}
	for i := 0; i < n; i++ {
		sow := w.sowd[i]
		switch {
		case i == dest:
			res.Dist[i] = 0
			res.Next[i] = -1
		case sow == inf:
			res.Dist[i] = graph.NoEdge
			res.Next[i] = -1
		default:
			res.Dist[i] = int64(sow)
			res.Next[i] = int(w.ptnd[i])
		}
	}
	return res, nil
}
