package core

import (
	"reflect"
	"testing"

	"ppamcp/internal/graph"
)

// TestFusedSolveParity pins the contract the default (fused bit-sliced)
// kernels are shipped under: for whole solves, every output *and* every
// cycle counter is identical to the interpretive reference path, across
// graph families, sizes and both initialization variants — so the paper's
// experiment tables are byte-identical regardless of host kernel strategy.
func TestFusedSolveParity(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random-16":   graph.GenRandomConnected(16, 0.4, 30, 1),
		"random-33":   graph.GenRandomConnected(33, 0.2, 100, 2),
		"chain-20":    graph.GenChain(20, 3),
		"diameter-24": graph.GenDiameter(24, 11),
		"complete-12": graph.GenComplete(12, 50, 3),
	}
	for name, g := range graphs {
		for _, workers := range []int{1, 4} {
			fused, err := Solve(g, 1, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d fused: %v", name, workers, err)
			}
			ref, err := Solve(g, 1, Options{Workers: workers, ReferenceKernels: true})
			if err != nil {
				t.Fatalf("%s workers=%d reference: %v", name, workers, err)
			}
			if !reflect.DeepEqual(fused, ref) {
				t.Errorf("%s workers=%d: fused and reference solves diverge:\nfused     %+v\nreference %+v",
					name, workers, fused, ref)
			}
		}
	}
}
