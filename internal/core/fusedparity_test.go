package core

import (
	"reflect"
	"testing"

	"ppamcp/internal/graph"
)

// TestFusedSolveParity pins the contract the default (fused bit-sliced)
// kernels are shipped under: for whole solves, every output *and* every
// cycle counter is identical to the interpretive reference path, across
// graph families, sizes and both initialization variants — so the paper's
// experiment tables are byte-identical regardless of host kernel strategy.
func TestFusedSolveParity(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random-16":   graph.GenRandomConnected(16, 0.4, 30, 1),
		"random-33":   graph.GenRandomConnected(33, 0.2, 100, 2),
		"chain-20":    graph.GenChain(20, 3),
		"diameter-24": graph.GenDiameter(24, 11),
		"complete-12": graph.GenComplete(12, 50, 3),
	}
	for name, g := range graphs {
		for _, workers := range []int{1, 4} {
			fused, err := Solve(g, 1, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d fused: %v", name, workers, err)
			}
			ref, err := Solve(g, 1, Options{Workers: workers, ReferenceKernels: true})
			if err != nil {
				t.Fatalf("%s workers=%d reference: %v", name, workers, err)
			}
			if !reflect.DeepEqual(fused, ref) {
				t.Errorf("%s workers=%d: fused and reference solves diverge:\nfused     %+v\nreference %+v",
					name, workers, fused, ref)
			}
		}
	}
}

// TestFusedVirtualSolveParity extends the fused-kernel contract to
// block-mapped execution: with the fused gate now open on healthy
// virtualized fabrics, whole solves on a virt machine must stay
// byte-identical — outputs and every cycle counter — to the interpretive
// reference path, and their answers identical to the direct machine's.
func TestFusedVirtualSolveParity(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"random-16": graph.GenRandomConnected(16, 0.4, 30, 1),
		"chain-12":  graph.GenChain(12, 3),
		"random-64": graph.GenRandomConnected(64, 0.1, 40, 7),
	}
	for name, g := range graphs {
		for _, phys := range []int{2, 4, 8} {
			if g.N%phys != 0 {
				continue
			}
			for _, workers := range []int{1, 4} {
				opt := Options{Workers: workers, PhysicalSide: phys}
				fused, err := Solve(g, 1, opt)
				if err != nil {
					t.Fatalf("%s phys=%d workers=%d fused: %v", name, phys, workers, err)
				}
				opt.ReferenceKernels = true
				ref, err := Solve(g, 1, opt)
				if err != nil {
					t.Fatalf("%s phys=%d workers=%d reference: %v", name, phys, workers, err)
				}
				if !reflect.DeepEqual(fused, ref) {
					t.Errorf("%s phys=%d workers=%d: fused and reference virtualized solves diverge:\nfused     %+v\nreference %+v",
						name, phys, workers, fused, ref)
				}
				direct, err := Solve(g, 1, Options{Workers: workers, Bits: fused.Bits})
				if err != nil {
					t.Fatalf("%s workers=%d direct: %v", name, workers, err)
				}
				if !reflect.DeepEqual(fused.Result, direct.Result) {
					t.Errorf("%s phys=%d workers=%d: virtualized answers diverge from direct machine",
						name, phys, workers)
				}
			}
		}
	}
}
