package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"ppamcp/internal/graph"
)

func TestSolveAllPairsMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rng.Intn(8)
		g := graph.GenRandom(n, 0.3, 9, rng.Int63())
		ap, err := SolveAllPairs(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fw := graph.FloydWarshall(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if ap.Dist[i*n+j] != fw[i*n+j] {
					t.Fatalf("trial %d (%d->%d): AP %d, FW %d",
						trial, i, j, ap.Dist[i*n+j], fw[i*n+j])
				}
			}
		}
	}
}

func TestAllPairsPathReconstruction(t *testing.T) {
	g := graph.GenRandomConnected(8, 0.3, 9, 12)
	ap, err := SolveAllPairs(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			path, ok := ap.Path(i, j)
			if !ok {
				t.Fatalf("path %d->%d missing in connected graph", i, j)
			}
			cost, err := graph.PathCost(g, path)
			if i == j {
				if cost != 0 || len(path) != 1 {
					t.Fatalf("self path wrong: %v", path)
				}
				continue
			}
			if err != nil || cost != ap.Dist[i*8+j] {
				t.Fatalf("path %d->%d: cost %d err %v, want %d", i, j, cost, err, ap.Dist[i*8+j])
			}
		}
	}
	if _, ok := ap.Path(-1, 3); ok {
		t.Error("out-of-range Path accepted")
	}
	if ap.Metrics.CommCycles() == 0 || ap.Iterations == 0 {
		t.Error("no cost accumulated")
	}
}

func TestAllPairsUnreachablePath(t *testing.T) {
	g := graph.GenChain(4, 1)
	ap, err := SolveAllPairs(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ap.Path(3, 0); ok {
		t.Error("backwards path exists on a chain")
	}
	if path, ok := ap.Path(0, 3); !ok || len(path) != 4 {
		t.Errorf("forward chain path: %v %v", path, ok)
	}
}

func TestAllPairsPropagatesErrors(t *testing.T) {
	bad := graph.New(2)
	bad.W[1] = -1
	if _, err := SolveAllPairs(bad, Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
}

// TestAllPairsFirstErrorByIndex pins the deterministic error contract:
// when solves fail, SolveAllPairs reports the error of the smallest
// failing destination index — for any worker count — not whichever shard
// happened to fail first in wall-clock order.
func TestAllPairsFirstErrorByIndex(t *testing.T) {
	g := graph.GenDiameter(16, 7) // long diameter: many dests need >1 round
	opt := Options{MaxIterations: 1}
	// Reference: the smallest destination whose sequential solve fails
	// under the same iteration cap.
	want := -1
	for d := 0; d < g.N && want < 0; d++ {
		if _, err := Solve(g, d, opt); err != nil {
			want = d
		}
	}
	if want < 0 {
		t.Fatal("test graph converges in one round for every destination")
	}
	for _, procs := range []int{1, 2, 5, 16} {
		prev := runtime.GOMAXPROCS(procs)
		_, err := SolveAllPairs(g, opt)
		runtime.GOMAXPROCS(prev)
		if err == nil {
			t.Fatalf("procs=%d: capped all-pairs solve succeeded", procs)
		}
		wantPrefix := fmt.Sprintf("core: all-pairs destination %d:", want)
		if !strings.HasPrefix(err.Error(), wantPrefix) {
			t.Errorf("procs=%d: error %q, want prefix %q", procs, err, wantPrefix)
		}
	}
}

// TestAllPairsClosesSessions is the session-leak regression test: every
// worker session (and its persistent ring-pool goroutines) must be closed
// when SolveAllPairs returns, on success and on failure alike.
func TestAllPairsClosesSessions(t *testing.T) {
	g := graph.GenRandomConnected(12, 0.3, 9, 21)
	runtime.GC()
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		if _, err := SolveAllPairs(g, Options{Workers: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := SolveAllPairs(g, Options{Workers: 4, MaxIterations: 1}); err == nil {
		t.Fatal("capped all-pairs solve succeeded")
	}
	// Ring-pool workers exit on Close asynchronously; give the scheduler a
	// moment before declaring a leak.
	var after int
	for wait := 0; wait < 100; wait++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked across SolveAllPairs: %d before, %d after", before, after)
}

func TestSolveFromSourceMatchesReversedBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(10)
		g := graph.GenRandom(n, 0.35, 9, rng.Int63())
		src := rng.Intn(n)
		res, err := SolveFromSource(g, src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Reference: Bellman-Ford on the transpose gives dist from src.
		bf, err := graph.BellmanFord(g.Transpose(), src)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < n; j++ {
			if res.Dist[j] != bf.Dist[j] {
				t.Fatalf("trial %d vertex %d: %d vs %d", trial, j, res.Dist[j], bf.Dist[j])
			}
			path, ok := res.PathTo(j)
			if res.Dist[j] == graph.NoEdge {
				if ok {
					t.Fatalf("trial %d: path to unreachable %d", trial, j)
				}
				continue
			}
			if !ok {
				t.Fatalf("trial %d: no path to reachable %d", trial, j)
			}
			if path[0] != src || path[len(path)-1] != j {
				t.Fatalf("trial %d: path endpoints %v", trial, path)
			}
			cost, err := graph.PathCost(g, path)
			if err != nil || cost != res.Dist[j] {
				t.Fatalf("trial %d: witness path to %d costs %d (%v), want %d",
					trial, j, cost, err, res.Dist[j])
			}
		}
	}
}

func TestSolveFromSourceErrors(t *testing.T) {
	g := graph.GenChain(3, 1)
	if _, err := SolveFromSource(g, 5, Options{}); err == nil {
		t.Error("bad source accepted")
	}
	r, err := SolveFromSource(g, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.PathTo(-2); ok {
		t.Error("out-of-range PathTo accepted")
	}
}
