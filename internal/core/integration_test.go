package core

import (
	"reflect"
	"testing"

	"ppamcp/internal/graph"
)

// TestOptionMatrix runs the same problem through the cross product of
// solver options — workers x bus model x physical side — and requires
// identical Dist/Next/Iterations everywhere. This is the glue test that
// keeps every variant semantically interchangeable.
func TestOptionMatrix(t *testing.T) {
	g := graph.GenRandomConnected(12, 0.3, 9, 33)
	const dest = 5
	base := mustSolve(t, g, dest, Options{})
	for _, workers := range []int{1, 4} {
		for _, switchOnly := range []bool{false, true} {
			for _, phys := range []int{0, 6, 3} {
				opt := Options{
					Bits:          base.Bits,
					Workers:       workers,
					SwitchOnlyBus: switchOnly,
					PhysicalSide:  phys,
				}
				r := mustSolve(t, g, dest, opt)
				if !reflect.DeepEqual(r.Dist, base.Dist) ||
					!reflect.DeepEqual(r.Next, base.Next) ||
					r.Iterations != base.Iterations {
					t.Fatalf("option combination %+v diverged", opt)
				}
			}
		}
	}
}

// TestSolveLargeArray is the scale smoke test: a 128-vertex problem on a
// 16384-PE simulated machine, still exact against Bellman-Ford.
func TestSolveLargeArray(t *testing.T) {
	if testing.Short() {
		t.Skip("large-array stress test skipped with -short")
	}
	const n = 128
	g := graph.GenRandomConnected(n, 0.05, 9, 128)
	r := mustSolve(t, g, 17, Options{Workers: 4})
	bf, err := graph.BellmanFord(g, 17)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Dist, bf.Dist) || !reflect.DeepEqual(r.Next, bf.Next) {
		t.Fatal("large-array solve diverged from Bellman-Ford")
	}
	if err := graph.CheckResult(g, &r.Result); err != nil {
		t.Fatal(err)
	}
}

// TestSolveWidestAndMCPShareIterationStructure: both DPs converge in the
// same kind of round count (max path length of their respective optima),
// measured rather than assumed.
func TestSolveWidestAndMCPShareIterationStructure(t *testing.T) {
	g := graph.GenChain(9, 3) // both problems need the full diameter
	mcp := mustSolve(t, g, 8, Options{})
	widest, _, err := SolveWidest(g, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mcp.Iterations != widest.Iterations {
		t.Errorf("chain iterations: MCP %d, widest %d (both should equal the diameter)",
			mcp.Iterations, widest.Iterations)
	}
}
