package ppa

import "fmt"

// FaultKind classifies an injected switch-box fault.
type FaultKind uint8

const (
	// StuckShort forces a PE's switch box to the Short (pass-through)
	// configuration regardless of the program: the PE can no longer
	// inject onto its buses or head a cluster.
	StuckShort FaultKind = iota
	// StuckOpen forces the Open configuration: the PE always cuts its
	// rings and injects, fragmenting every bus that crosses it.
	StuckOpen
)

func (k FaultKind) String() string {
	if k == StuckShort {
		return "stuck-short"
	}
	return "stuck-open"
}

// InjectFault forces the switch box of PE pe (flat row-major index) to a
// fixed configuration for all subsequent Broadcast and WiredOr
// transactions. Shift and GlobalOr use separate fabric and are
// unaffected. Fault injection exists to study how silent hardware defects
// corrupt algorithm output — and to demonstrate that the independent
// optimality checker (graph.CheckResult) catches every corruption; see
// the fault-injection tests and EXPERIMENTS.md.
func (m *Machine) InjectFault(pe int, kind FaultKind) {
	if pe < 0 || pe >= m.Size() {
		panic(fmt.Sprintf("ppa: fault PE %d out of range [0,%d)", pe, m.Size()))
	}
	if m.faults == nil {
		m.faults = make(map[int]FaultKind)
	}
	m.faults[pe] = kind
}

// ClearFaults removes all injected faults.
func (m *Machine) ClearFaults() { m.faults = nil }

// Faulty reports whether any fault is currently injected.
func (m *Machine) Faulty() bool { return len(m.faults) > 0 }

// effectiveOpenBits applies the injected faults to a requested switch
// configuration, returning the configuration the damaged hardware
// actually realizes (the input is never modified; the result is a cached
// scratch Bitset valid until the next transaction).
func (m *Machine) effectiveOpenBits(open *Bitset) *Bitset {
	if len(m.faults) == 0 {
		return open
	}
	eff := m.scratch(&m.faultBits)
	eff.CopyFrom(open)
	for pe, kind := range m.faults {
		eff.SetTo(pe, kind == StuckOpen)
	}
	return eff
}

// OpKind classifies a fabric transaction for observers.
type OpKind uint8

// Fabric transaction kinds.
const (
	OpBroadcast OpKind = iota
	OpWiredOr
	OpShift
	OpGlobalOr
)

func (k OpKind) String() string {
	switch k {
	case OpBroadcast:
		return "broadcast"
	case OpWiredOr:
		return "wired-or"
	case OpShift:
		return "shift"
	case OpGlobalOr:
		return "global-or"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Event describes one fabric transaction, delivered to the observer as it
// is issued.
type Event struct {
	Op OpKind
	// Dir is the data-movement direction (meaningless for global-OR).
	Dir Direction
	// Opens is the number of Open switch boxes in the (post-fault)
	// configuration (0 for shift/global-OR).
	Opens int
}

// SetObserver installs fn to be called synchronously for every fabric
// transaction (nil to remove). Observers see the machine as the SIMD
// controller issues instructions — the hook behind trace tooling and the
// instruction-pattern tests.
func (m *Machine) SetObserver(fn func(Event)) { m.observer = fn }

func (m *Machine) observe(op OpKind, d Direction, opens int) {
	if m.observer != nil {
		m.observer(Event{Op: op, Dir: d, Opens: opens})
	}
}

// observeOpens delivers an event for a switch-configured transaction.
// The O(n²) Open-count (a word popcount over the packed configuration)
// and the Event build are skipped entirely unless an observer is
// attached.
func (m *Machine) observeOpens(op OpKind, d Direction, open *Bitset) {
	if m.observer != nil {
		m.observer(Event{Op: op, Dir: d, Opens: open.Count()})
	}
}
