package ppa

import (
	"fmt"
	"sync"
)

// Machine is an n x n Polymorphic Processor Array. It owns no PE state:
// parallel variables live in the layers above (package par) as flat
// row-major slices of length n*n, and the Machine provides the
// communication fabric that moves them around, charging every transaction
// to its Metrics.
//
// A Machine is not safe for concurrent use by multiple goroutines; it *may*
// internally fan independent ring operations out over a worker pool (see
// WithWorkers), which never changes results.
type Machine struct {
	n       int
	h       uint
	workers int
	metrics Metrics

	faults   map[int]FaultKind
	observer func(Event)

	wg sync.WaitGroup
}

// Option configures a Machine.
type Option func(*Machine)

// WithWorkers sets the number of goroutines used to execute independent
// ring operations. The default (1) runs everything on the calling
// goroutine. Results are identical for any worker count.
func WithWorkers(w int) Option {
	return func(m *Machine) {
		if w < 1 {
			w = 1
		}
		m.workers = w
	}
}

// New returns an n x n machine with h-bit words. It panics if n < 1 or h
// is outside [1, MaxBits]; these are static configuration errors.
func New(n int, h uint, opts ...Option) *Machine {
	if n < 1 {
		panic(fmt.Sprintf("ppa: machine side %d < 1", n))
	}
	if h == 0 || h > MaxBits {
		panic(fmt.Sprintf("ppa: word width %d out of range [1,%d]", h, MaxBits))
	}
	m := &Machine{n: n, h: h, workers: 1}
	for _, o := range opts {
		o(m)
	}
	return m
}

// N returns the side of the array; the machine has N*N PEs.
func (m *Machine) N() int { return m.n }

// Size returns the total number of PEs, N*N.
func (m *Machine) Size() int { return m.n * m.n }

// Bits returns the word width h.
func (m *Machine) Bits() uint { return m.h }

// Inf returns this machine's MAXINT sentinel, Infinity(Bits()).
func (m *Machine) Inf() Word { return Infinity(m.h) }

// Index maps (row, col) to the flat row-major PE index.
func (m *Machine) Index(row, col int) int { return row*m.n + col }

// RowCol maps a flat PE index back to (row, col).
func (m *Machine) RowCol(i int) (row, col int) { return i / m.n, i % m.n }

// Metrics returns the costs accumulated so far.
func (m *Machine) Metrics() Metrics { return m.metrics }

// ResetMetrics zeroes the accumulated costs.
func (m *Machine) ResetMetrics() { m.metrics = Metrics{} }

// CountPE charges ops local ALU operations (summed over active PEs).
// It is exported for the programming layers above the raw fabric.
func (m *Machine) CountPE(ops int64) { m.metrics.PEOps += ops }

// CountInstr charges one SIMD instruction issued by the controller.
func (m *Machine) CountInstr() { m.metrics.Instructions++ }

// ring describes the geometry of one bus ring in flow order: the PE at
// flow position k has flat index base + k*stride (indices are exact; no
// modular arithmetic is applied because 0 <= k < n).
type ring struct {
	base, stride int
}

// ringFor returns ring geometry for the i-th ring (0 <= i < n) carrying
// data in direction d. East/West rings are rows; North/South rings are
// columns. Flow order follows the data movement direction.
func (m *Machine) ringFor(d Direction, i int) ring {
	switch d {
	case East:
		return ring{base: i * m.n, stride: 1}
	case West:
		return ring{base: i*m.n + m.n - 1, stride: -1}
	case South:
		return ring{base: i, stride: m.n}
	case North:
		return ring{base: i + (m.n-1)*m.n, stride: -m.n}
	}
	panic(fmt.Sprintf("ppa: invalid direction %d", d))
}

// runRings invokes fn(i) for every ring index i, possibly in parallel.
func (m *Machine) runRings(fn func(i int)) {
	if m.workers <= 1 || m.n == 1 {
		for i := 0; i < m.n; i++ {
			fn(i)
		}
		return
	}
	w := m.workers
	if w > m.n {
		w = m.n
	}
	chunk := (m.n + w - 1) / w
	for g := 0; g < w; g++ {
		lo, hi := g*chunk, (g+1)*chunk
		if hi > m.n {
			hi = m.n
		}
		if lo >= hi {
			break
		}
		m.wg.Add(1)
		go func(lo, hi int) {
			defer m.wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	m.wg.Wait()
}

func (m *Machine) checkLen(name string, got int) {
	if got != m.n*m.n {
		panic(fmt.Sprintf("ppa: %s has length %d, want %d", name, got, m.n*m.n))
	}
}

// Broadcast performs one segmented-bus transaction in direction d.
// PEs with open[i] == true cut the ring and inject src[i] downstream;
// every PE receives into dst the operand of the nearest Open PE strictly
// upstream of it (wrapping). On a ring with no Open PE the bus floats and
// dst is left unchanged there. dst may alias src. Cost: one bus cycle.
func (m *Machine) Broadcast(d Direction, open []bool, src, dst []Word) {
	m.checkLen("open", len(open))
	m.checkLen("src", len(src))
	m.checkLen("dst", len(dst))
	open = m.effectiveOpen(open)
	m.observe(OpBroadcast, d, countOpens(open))
	m.metrics.BusCycles++
	m.runRings(func(i int) {
		rg := m.ringFor(d, i)
		n := m.n
		last := -1
		for k := 0; k < n; k++ {
			if open[rg.base+k*rg.stride] {
				last = k
			}
		}
		if last == -1 {
			return // floating bus
		}
		lastVal := src[rg.base+last*rg.stride]
		for t := 1; t <= n; t++ {
			k := last + t
			if k >= n {
				k -= n
			}
			p := rg.base + k*rg.stride
			v := src[p] // read before the (possibly aliased) write
			dst[p] = lastVal
			if open[p] {
				lastVal = v
			}
		}
	})
}

// WiredOr performs one 1-bit wired-OR bus transaction in direction d.
// Open PEs segment each ring into clusters (a cluster is an Open head plus
// the downstream Short PEs up to, but excluding, the next Open PE,
// wrapping). Every PE drives drive[i] onto its cluster's wire and reads
// back the OR over the whole cluster into dst. A ring with no Open PE is a
// single closed cluster spanning all n PEs. dst may alias drive.
// Cost: one wired-OR cycle.
func (m *Machine) WiredOr(d Direction, open, drive, dst []bool) {
	m.checkLen("open", len(open))
	m.checkLen("drive", len(drive))
	m.checkLen("dst", len(dst))
	open = m.effectiveOpen(open)
	m.observe(OpWiredOr, d, countOpens(open))
	m.metrics.WiredOrCycles++
	m.runRings(func(i int) {
		rg := m.ringFor(d, i)
		n := m.n
		first := -1
		for k := 0; k < n; k++ {
			if open[rg.base+k*rg.stride] {
				first = k
				break
			}
		}
		if first == -1 {
			or := false
			for k := 0; k < n; k++ {
				or = or || drive[rg.base+k*rg.stride]
			}
			for k := 0; k < n; k++ {
				dst[rg.base+k*rg.stride] = or
			}
			return
		}
		// Walk clusters starting at the first head.
		start := first
		for covered := 0; covered < n; {
			// Segment: head at start, extends until next open (exclusive).
			segLen := 1
			for segLen < n {
				k := start + segLen
				if k >= n {
					k -= n
				}
				if open[rg.base+k*rg.stride] {
					break
				}
				segLen++
			}
			or := false
			for t := 0; t < segLen; t++ {
				k := start + t
				if k >= n {
					k -= n
				}
				or = or || drive[rg.base+k*rg.stride]
			}
			for t := 0; t < segLen; t++ {
				k := start + t
				if k >= n {
					k -= n
				}
				dst[rg.base+k*rg.stride] = or
			}
			covered += segLen
			start += segLen
			if start >= n {
				start -= n
			}
		}
	})
}

// Shift moves every word one PE in direction d with torus wrap:
// dst[p] = src[neighbour of p on the side opposite d]. dst may alias src.
// Cost: one shift step.
func (m *Machine) Shift(d Direction, src, dst []Word) {
	m.checkLen("src", len(src))
	m.checkLen("dst", len(dst))
	m.observe(OpShift, d, 0)
	m.metrics.ShiftSteps++
	m.runRings(func(i int) {
		rg := m.ringFor(d, i)
		n := m.n
		tmp := src[rg.base+(n-1)*rg.stride]
		for k := n - 1; k >= 1; k-- {
			dst[rg.base+k*rg.stride] = src[rg.base+(k-1)*rg.stride]
		}
		dst[rg.base] = tmp
	})
}

// GlobalOr evaluates the global-OR line: it reports whether pred is true
// at any PE. Cost: one global-OR operation.
func (m *Machine) GlobalOr(pred []bool) bool {
	m.checkLen("pred", len(pred))
	m.observe(OpGlobalOr, North, 0)
	m.metrics.GlobalOrOps++
	for _, p := range pred {
		if p {
			return true
		}
	}
	return false
}
