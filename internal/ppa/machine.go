package ppa

import (
	"fmt"
)

// Machine is an n x n Polymorphic Processor Array. It owns no PE state:
// parallel variables live in the layers above (package par) as flat
// row-major slices of length n*n, and the Machine provides the
// communication fabric that moves them around, charging every transaction
// to its Metrics.
//
// Boolean lane sets (switch configurations, wired-OR planes, predicates)
// travel as packed Bitsets — 64 lanes per machine word — so one bus
// transaction costs O(n²/64) host word operations on its logical parts.
// The []bool entry points remain as conversion shims over the same packed
// kernels.
//
// A Machine is not safe for concurrent use by multiple goroutines; it *may*
// internally fan independent ring operations out over a persistent worker
// pool (see WithWorkers), which never changes results. The pool's
// goroutines are reclaimed by Close, or by a finalizer when the machine is
// dropped without it.
type Machine struct {
	n       int
	h       uint
	workers int
	metrics Metrics

	faults   map[int]FaultKind
	observer func(Event)

	// rings precomputes the geometry of every (direction, ring) pair —
	// it depends only on n, so the per-transaction inner loops never
	// re-derive it.
	rings [4][]ring
	// ringAlign is the smallest ring-count granule at which consecutive
	// horizontal rings start on a 64-bit word boundary of a packed lane
	// set (64/gcd(n,64)); parallel workers split packed ring walks only
	// at such boundaries so they never write the same word.
	ringAlign int

	// rk holds the ring kernel bodies and the persistent worker pool.
	// It deliberately does not point back at the Machine (see pool.go).
	rk *ringKernels
	// spawnWorkers is min(workers, n) — the fan-out a parallel dispatch
	// would use; forcePar makes every transaction take the pooled path.
	spawnWorkers int
	forcePar     bool

	// Cached scratch for the packed kernels (lazily allocated, reused
	// across transactions; a Machine is single-transaction at a time).
	packOpen, packDrive, packDst *Bitset // []bool-API conversions
	faultBits                    *Bitset // post-fault switch configuration
	tOpen, tDrive, tDst          *Bitset // transposed planes for N/S wired-OR
	bcastT                       *Bitset // transposed open for N/S broadcasts
}

// Option configures a Machine.
type Option func(*Machine)

// WithWorkers sets the number of persistent pool goroutines available to
// execute independent ring operations. The default (1) runs everything on
// the calling goroutine; with w > 1 a transaction is fanned out when the
// host has spare cores and the transaction is large enough to amortize
// the pool barrier. Results are identical for any worker count.
func WithWorkers(w int) Option {
	return func(m *Machine) {
		if w < 1 {
			w = 1
		}
		m.workers = w
	}
}

// WithForceParallel makes every ring transaction take the pooled parallel
// path regardless of transaction size or host core count. Results are
// unchanged; this is a correctness hook so tests (and the race detector)
// can exercise the worker pool on any machine shape and any host.
func WithForceParallel() Option {
	return func(m *Machine) { m.forcePar = true }
}

// New returns an n x n machine with h-bit words. It panics if n < 1 or h
// is outside [1, MaxBits]; these are static configuration errors.
func New(n int, h uint, opts ...Option) *Machine {
	if n < 1 {
		panic(fmt.Sprintf("ppa: machine side %d < 1", n))
	}
	if h == 0 || h > MaxBits {
		panic(fmt.Sprintf("ppa: word width %d out of range [1,%d]", h, MaxBits))
	}
	m := &Machine{n: n, h: h, workers: 1}
	for d := range m.rings {
		m.rings[d] = make([]ring, n)
		for i := 0; i < n; i++ {
			m.rings[d][i] = ringGeometry(Direction(d), i, n)
		}
	}
	m.ringAlign = 64 / gcd(n, 64)
	for _, o := range opts {
		o(m)
	}
	m.spawnWorkers = m.workers
	if m.spawnWorkers > n {
		m.spawnWorkers = n
	}
	m.rk = &ringKernels{n: n, rings: m.rings}
	if m.spawnWorkers > 1 {
		m.rk.chunks1 = ringChunks(n, m.spawnWorkers, 1)
		m.rk.chunksA = ringChunks(n, m.spawnWorkers, m.ringAlign)
	}
	return m
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// N returns the side of the array; the machine has N*N PEs.
func (m *Machine) N() int { return m.n }

// Size returns the total number of PEs, N*N.
func (m *Machine) Size() int { return m.n * m.n }

// Bits returns the word width h.
func (m *Machine) Bits() uint { return m.h }

// Inf returns this machine's MAXINT sentinel, Infinity(Bits()).
func (m *Machine) Inf() Word { return Infinity(m.h) }

// Index maps (row, col) to the flat row-major PE index.
func (m *Machine) Index(row, col int) int { return row*m.n + col }

// RowCol maps a flat PE index back to (row, col).
func (m *Machine) RowCol(i int) (row, col int) { return i / m.n, i % m.n }

// Metrics returns the costs accumulated so far.
func (m *Machine) Metrics() Metrics { return m.metrics }

// ResetMetrics zeroes the accumulated costs.
func (m *Machine) ResetMetrics() { m.metrics = Metrics{} }

// CountPE charges ops local ALU operations (summed over active PEs).
// It is exported for the programming layers above the raw fabric.
func (m *Machine) CountPE(ops int64) { m.metrics.PEOps += ops }

// CountInstr charges one SIMD instruction issued by the controller.
func (m *Machine) CountInstr() { m.metrics.Instructions++ }

// ring describes the geometry of one bus ring in flow order: the PE at
// flow position k has flat index base + k*stride (indices are exact; no
// modular arithmetic is applied because 0 <= k < n).
type ring struct {
	base, stride int
}

// ringGeometry derives the i-th ring of direction d on an n-sided array.
// East/West rings are rows; North/South rings are columns. Flow order
// follows the data movement direction.
func ringGeometry(d Direction, i, n int) ring {
	switch d {
	case East:
		return ring{base: i * n, stride: 1}
	case West:
		return ring{base: i*n + n - 1, stride: -1}
	case South:
		return ring{base: i, stride: n}
	case North:
		return ring{base: i + (n-1)*n, stride: -n}
	}
	panic(fmt.Sprintf("ppa: invalid direction %d", d))
}

// ringFor returns the precomputed geometry of the i-th ring (0 <= i < n)
// carrying data in direction d.
func (m *Machine) ringFor(d Direction, i int) ring {
	return m.rings[d][i]
}

// scratch returns (allocating on first use) a cached n*n-lane Bitset.
func (m *Machine) scratch(p **Bitset) *Bitset {
	if *p == nil {
		*p = NewBitset(m.n * m.n)
	}
	return *p
}

func (m *Machine) checkLen(name string, got int) {
	if got != m.n*m.n {
		panic(fmt.Sprintf("ppa: %s has length %d, want %d", name, got, m.n*m.n))
	}
}

func (m *Machine) checkBits(name string, b *Bitset) {
	if b.Len() != m.n*m.n {
		panic(fmt.Sprintf("ppa: %s has length %d, want %d", name, b.Len(), m.n*m.n))
	}
}

// Broadcast performs one segmented-bus transaction in direction d.
// PEs with open[i] == true cut the ring and inject src[i] downstream;
// every PE receives into dst the operand of the nearest Open PE strictly
// upstream of it (wrapping). On a ring with no Open PE the bus floats and
// dst is left unchanged there. dst may alias src. Cost: one bus cycle.
func (m *Machine) Broadcast(d Direction, open []bool, src, dst []Word) {
	m.checkLen("open", len(open))
	b := m.scratch(&m.packOpen)
	b.FromBools(open)
	m.BroadcastBits(d, b, src, dst)
}

// BroadcastBits is Broadcast with the switch configuration as a packed
// Bitset — the allocation-free fast path the programming layers use.
// dst must not alias the packed configuration's storage.
func (m *Machine) BroadcastBits(d Direction, open *Bitset, src, dst []Word) {
	m.checkBits("open", open)
	m.checkLen("src", len(src))
	m.checkLen("dst", len(dst))
	open = m.effectiveOpenBits(open)
	m.observeOpens(OpBroadcast, d, open)
	m.metrics.BusCycles++
	rk := m.rk
	rk.kind, rk.dir = jobBroadcast, d
	rk.open, rk.src, rk.dst = open, src, dst
	if !d.Horizontal() {
		// Stage a transposed switch plane so each column's head scans are
		// contiguous-bit scans (see ringKernels.broadcastRing).
		t := m.scratch(&m.bcastT)
		TransposeBits(t, open, m.n)
		rk.topen = t
	}
	m.dispatch(false, m.n*m.n)
}

// ChargeBroadcast charges one segmented-bus broadcast transaction without
// moving any data: the metrics accounting, the fault application and the
// observer event are exactly those of BroadcastBits with configuration
// open. It exists for host-side fused drivers (core's batched sweep
// kernel) that compute a broadcast's effect algebraically but must keep
// the machine's cost counters and event stream identical to the reference
// instruction sequence — the same shadow-charge discipline as package
// par's fused reductions.
func (m *Machine) ChargeBroadcast(d Direction, open *Bitset) {
	m.checkBits("open", open)
	open = m.effectiveOpenBits(open)
	m.observeOpens(OpBroadcast, d, open)
	m.metrics.BusCycles++
}

// ChargeWiredOr is ChargeBroadcast's wired-OR counterpart: it charges one
// wired-OR bus cycle and emits the observer event of a WiredOrBits with
// configuration open, without resolving any clusters. Host drivers that
// compute a reduction's outcome algebraically (core's warm re-solve) use
// it to keep the cost counters and event stream identical to the
// reference instruction sequence.
func (m *Machine) ChargeWiredOr(d Direction, open *Bitset) {
	m.checkBits("open", open)
	open = m.effectiveOpenBits(open)
	m.observeOpens(OpWiredOr, d, open)
	m.metrics.WiredOrCycles++
}

// WiredOr performs one 1-bit wired-OR bus transaction in direction d.
// Open PEs segment each ring into clusters (a cluster is an Open head plus
// the downstream Short PEs up to, but excluding, the next Open PE,
// wrapping). Every PE drives drive[i] onto its cluster's wire and reads
// back the OR over the whole cluster into dst. A ring with no Open PE is a
// single closed cluster spanning all n PEs. dst may alias drive.
// Cost: one wired-OR cycle.
func (m *Machine) WiredOr(d Direction, open, drive, dst []bool) {
	m.checkLen("open", len(open))
	m.checkLen("drive", len(drive))
	m.checkLen("dst", len(dst))
	bo := m.scratch(&m.packOpen)
	bo.FromBools(open)
	bd := m.scratch(&m.packDrive)
	bd.FromBools(drive)
	bz := m.scratch(&m.packDst)
	m.WiredOrBits(d, bo, bd, bz)
	bz.ToBools(dst)
}

// WiredOrBits is WiredOr on packed lane sets — the fast path. Horizontal
// (stride-1) rings reduce in place with word OR and trailing-zero scans;
// vertical rings run the same kernel through a cached bit-matrix
// transpose. dst may alias drive; it must not alias open.
func (m *Machine) WiredOrBits(d Direction, open, drive, dst *Bitset) {
	m.checkBits("open", open)
	m.checkBits("drive", drive)
	m.checkBits("dst", dst)
	open = m.effectiveOpenBits(open)
	m.observeOpens(OpWiredOr, d, open)
	m.metrics.WiredOrCycles++
	if d.Horizontal() {
		m.wiredOrRows(open, drive, dst, d == West)
		return
	}
	// South rings read top-to-bottom: in the transposed matrix that is
	// the East kernel; North maps to West.
	to, td, tz := m.scratch(&m.tOpen), m.scratch(&m.tDrive), m.scratch(&m.tDst)
	TransposeBits(to, open, m.n)
	TransposeBits(td, drive, m.n)
	m.wiredOrRows(to, td, tz, d == North)
	TransposeBits(dst, tz, m.n)
}

// wiredOrRows resolves every row ring of a packed wired-OR plane (see
// ringKernels.wiredOrRow for the per-ring kernel).
func (m *Machine) wiredOrRows(open, drive, dst *Bitset, rev bool) {
	rk := m.rk
	rk.kind, rk.rev = jobWiredOr, rev
	rk.wOpen, rk.wDrv, rk.wDst = open, drive, dst
	// Three packed planes are touched, ~size/64 words each.
	m.dispatch(true, 3*(m.n*m.n/64+1))
}

// Shift moves every word one PE in direction d with torus wrap:
// dst[p] = src[neighbour of p on the side opposite d]. dst may alias src.
// Cost: one shift step.
func (m *Machine) Shift(d Direction, src, dst []Word) {
	m.checkLen("src", len(src))
	m.checkLen("dst", len(dst))
	m.observe(OpShift, d, 0)
	m.metrics.ShiftSteps++
	rk := m.rk
	rk.kind, rk.dir = jobShift, d
	rk.src, rk.dst = src, dst
	m.dispatch(false, m.n*m.n)
}

// GlobalOr evaluates the global-OR line: it reports whether pred is true
// at any PE. Cost: one global-OR operation.
func (m *Machine) GlobalOr(pred []bool) bool {
	m.checkLen("pred", len(pred))
	m.observe(OpGlobalOr, North, 0)
	m.metrics.GlobalOrOps++
	for _, p := range pred {
		if p {
			return true
		}
	}
	return false
}

// GlobalOrBits is GlobalOr on a packed predicate.
func (m *Machine) GlobalOrBits(pred *Bitset) bool {
	m.checkBits("pred", pred)
	m.observe(OpGlobalOr, North, 0)
	m.metrics.GlobalOrOps++
	return pred.Any()
}
