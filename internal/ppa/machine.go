package ppa

import (
	"fmt"
	"sync"
)

// Machine is an n x n Polymorphic Processor Array. It owns no PE state:
// parallel variables live in the layers above (package par) as flat
// row-major slices of length n*n, and the Machine provides the
// communication fabric that moves them around, charging every transaction
// to its Metrics.
//
// Boolean lane sets (switch configurations, wired-OR planes, predicates)
// travel as packed Bitsets — 64 lanes per machine word — so one bus
// transaction costs O(n²/64) host word operations on its logical parts.
// The []bool entry points remain as conversion shims over the same packed
// kernels.
//
// A Machine is not safe for concurrent use by multiple goroutines; it *may*
// internally fan independent ring operations out over a worker pool (see
// WithWorkers), which never changes results.
type Machine struct {
	n       int
	h       uint
	workers int
	metrics Metrics

	faults   map[int]FaultKind
	observer func(Event)

	wg sync.WaitGroup

	// rings precomputes the geometry of every (direction, ring) pair —
	// it depends only on n, so the per-transaction inner loops never
	// re-derive it.
	rings [4][]ring
	// ringAlign is the smallest ring-count granule at which consecutive
	// horizontal rings start on a 64-bit word boundary of a packed lane
	// set (64/gcd(n,64)); parallel workers split packed ring walks only
	// at such boundaries so they never write the same word.
	ringAlign int

	// Cached scratch for the packed kernels (lazily allocated, reused
	// across transactions; a Machine is single-transaction at a time).
	packOpen, packDrive, packDst *Bitset // []bool-API conversions
	faultBits                    *Bitset // post-fault switch configuration
	tOpen, tDrive, tDst          *Bitset // transposed planes for N/S wired-OR
}

// Option configures a Machine.
type Option func(*Machine)

// WithWorkers sets the number of goroutines used to execute independent
// ring operations. The default (1) runs everything on the calling
// goroutine. Results are identical for any worker count.
func WithWorkers(w int) Option {
	return func(m *Machine) {
		if w < 1 {
			w = 1
		}
		m.workers = w
	}
}

// New returns an n x n machine with h-bit words. It panics if n < 1 or h
// is outside [1, MaxBits]; these are static configuration errors.
func New(n int, h uint, opts ...Option) *Machine {
	if n < 1 {
		panic(fmt.Sprintf("ppa: machine side %d < 1", n))
	}
	if h == 0 || h > MaxBits {
		panic(fmt.Sprintf("ppa: word width %d out of range [1,%d]", h, MaxBits))
	}
	m := &Machine{n: n, h: h, workers: 1}
	for d := range m.rings {
		m.rings[d] = make([]ring, n)
		for i := 0; i < n; i++ {
			m.rings[d][i] = ringGeometry(Direction(d), i, n)
		}
	}
	m.ringAlign = 64 / gcd(n, 64)
	for _, o := range opts {
		o(m)
	}
	return m
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// N returns the side of the array; the machine has N*N PEs.
func (m *Machine) N() int { return m.n }

// Size returns the total number of PEs, N*N.
func (m *Machine) Size() int { return m.n * m.n }

// Bits returns the word width h.
func (m *Machine) Bits() uint { return m.h }

// Inf returns this machine's MAXINT sentinel, Infinity(Bits()).
func (m *Machine) Inf() Word { return Infinity(m.h) }

// Index maps (row, col) to the flat row-major PE index.
func (m *Machine) Index(row, col int) int { return row*m.n + col }

// RowCol maps a flat PE index back to (row, col).
func (m *Machine) RowCol(i int) (row, col int) { return i / m.n, i % m.n }

// Metrics returns the costs accumulated so far.
func (m *Machine) Metrics() Metrics { return m.metrics }

// ResetMetrics zeroes the accumulated costs.
func (m *Machine) ResetMetrics() { m.metrics = Metrics{} }

// CountPE charges ops local ALU operations (summed over active PEs).
// It is exported for the programming layers above the raw fabric.
func (m *Machine) CountPE(ops int64) { m.metrics.PEOps += ops }

// CountInstr charges one SIMD instruction issued by the controller.
func (m *Machine) CountInstr() { m.metrics.Instructions++ }

// ring describes the geometry of one bus ring in flow order: the PE at
// flow position k has flat index base + k*stride (indices are exact; no
// modular arithmetic is applied because 0 <= k < n).
type ring struct {
	base, stride int
}

// ringGeometry derives the i-th ring of direction d on an n-sided array.
// East/West rings are rows; North/South rings are columns. Flow order
// follows the data movement direction.
func ringGeometry(d Direction, i, n int) ring {
	switch d {
	case East:
		return ring{base: i * n, stride: 1}
	case West:
		return ring{base: i*n + n - 1, stride: -1}
	case South:
		return ring{base: i, stride: n}
	case North:
		return ring{base: i + (n-1)*n, stride: -n}
	}
	panic(fmt.Sprintf("ppa: invalid direction %d", d))
}

// ringFor returns the precomputed geometry of the i-th ring (0 <= i < n)
// carrying data in direction d.
func (m *Machine) ringFor(d Direction, i int) ring {
	return m.rings[d][i]
}

// scratch returns (allocating on first use) a cached n*n-lane Bitset.
func (m *Machine) scratch(p **Bitset) *Bitset {
	if *p == nil {
		*p = NewBitset(m.n * m.n)
	}
	return *p
}

// runRings invokes fn(i) for every ring index i, possibly in parallel.
func (m *Machine) runRings(fn func(i int)) { m.runRingsAligned(1, fn) }

// runRingsAligned is runRings with worker-chunk boundaries restricted to
// multiples of align (used when rings write a shared packed word unless
// split on word boundaries).
func (m *Machine) runRingsAligned(align int, fn func(i int)) {
	if m.workers <= 1 || m.n == 1 {
		for i := 0; i < m.n; i++ {
			fn(i)
		}
		return
	}
	w := m.workers
	if w > m.n {
		w = m.n
	}
	chunk := (m.n + w - 1) / w
	if align > 1 {
		chunk = (chunk + align - 1) / align * align
	}
	for g := 0; g*chunk < m.n; g++ {
		lo, hi := g*chunk, (g+1)*chunk
		if hi > m.n {
			hi = m.n
		}
		m.wg.Add(1)
		go func(lo, hi int) {
			defer m.wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	m.wg.Wait()
}

func (m *Machine) checkLen(name string, got int) {
	if got != m.n*m.n {
		panic(fmt.Sprintf("ppa: %s has length %d, want %d", name, got, m.n*m.n))
	}
}

func (m *Machine) checkBits(name string, b *Bitset) {
	if b.Len() != m.n*m.n {
		panic(fmt.Sprintf("ppa: %s has length %d, want %d", name, b.Len(), m.n*m.n))
	}
}

// Broadcast performs one segmented-bus transaction in direction d.
// PEs with open[i] == true cut the ring and inject src[i] downstream;
// every PE receives into dst the operand of the nearest Open PE strictly
// upstream of it (wrapping). On a ring with no Open PE the bus floats and
// dst is left unchanged there. dst may alias src. Cost: one bus cycle.
func (m *Machine) Broadcast(d Direction, open []bool, src, dst []Word) {
	m.checkLen("open", len(open))
	b := m.scratch(&m.packOpen)
	b.FromBools(open)
	m.BroadcastBits(d, b, src, dst)
}

// BroadcastBits is Broadcast with the switch configuration as a packed
// Bitset — the allocation-free fast path the programming layers use.
// dst must not alias the packed configuration's storage.
func (m *Machine) BroadcastBits(d Direction, open *Bitset, src, dst []Word) {
	m.checkBits("open", open)
	m.checkLen("src", len(src))
	m.checkLen("dst", len(dst))
	open = m.effectiveOpenBits(open)
	m.observeOpens(OpBroadcast, d, open)
	m.metrics.BusCycles++
	m.runRings(func(i int) {
		rg := m.rings[d][i]
		n := m.n
		// Find the last Open PE in flow order; for the stride-1
		// horizontal rings this is a single word scan of the bitset.
		last := -1
		switch d {
		case East:
			if p := open.PrevSet(rg.base, rg.base+n); p >= 0 {
				last = p - rg.base
			}
		case West:
			if p := open.NextSet(rg.base-n+1, rg.base+1); p >= 0 {
				last = rg.base - p
			}
		default:
			for k := 0; k < n; k++ {
				if open.Get(rg.base + k*rg.stride) {
					last = k
				}
			}
		}
		if last == -1 {
			return // floating bus
		}
		lastVal := src[rg.base+last*rg.stride]
		for t := 1; t <= n; t++ {
			k := last + t
			if k >= n {
				k -= n
			}
			p := rg.base + k*rg.stride
			v := src[p] // read before the (possibly aliased) write
			dst[p] = lastVal
			if open.Get(p) {
				lastVal = v
			}
		}
	})
}

// WiredOr performs one 1-bit wired-OR bus transaction in direction d.
// Open PEs segment each ring into clusters (a cluster is an Open head plus
// the downstream Short PEs up to, but excluding, the next Open PE,
// wrapping). Every PE drives drive[i] onto its cluster's wire and reads
// back the OR over the whole cluster into dst. A ring with no Open PE is a
// single closed cluster spanning all n PEs. dst may alias drive.
// Cost: one wired-OR cycle.
func (m *Machine) WiredOr(d Direction, open, drive, dst []bool) {
	m.checkLen("open", len(open))
	m.checkLen("drive", len(drive))
	m.checkLen("dst", len(dst))
	bo := m.scratch(&m.packOpen)
	bo.FromBools(open)
	bd := m.scratch(&m.packDrive)
	bd.FromBools(drive)
	bz := m.scratch(&m.packDst)
	m.WiredOrBits(d, bo, bd, bz)
	bz.ToBools(dst)
}

// WiredOrBits is WiredOr on packed lane sets — the fast path. Horizontal
// (stride-1) rings reduce in place with word OR and trailing-zero scans;
// vertical rings run the same kernel through a cached bit-matrix
// transpose. dst may alias drive; it must not alias open.
func (m *Machine) WiredOrBits(d Direction, open, drive, dst *Bitset) {
	m.checkBits("open", open)
	m.checkBits("drive", drive)
	m.checkBits("dst", dst)
	open = m.effectiveOpenBits(open)
	m.observeOpens(OpWiredOr, d, open)
	m.metrics.WiredOrCycles++
	if d.Horizontal() {
		m.wiredOrRows(open, drive, dst, d == West)
		return
	}
	// South rings read top-to-bottom: in the transposed matrix that is
	// the East kernel; North maps to West.
	to, td, tz := m.scratch(&m.tOpen), m.scratch(&m.tDrive), m.scratch(&m.tDst)
	TransposeBits(to, open, m.n)
	TransposeBits(td, drive, m.n)
	m.wiredOrRows(to, td, tz, d == North)
	TransposeBits(dst, tz, m.n)
}

// wiredOrRows resolves every row ring of a packed wired-OR plane. Each
// ring occupies the contiguous bit range [i*n, (i+1)*n); rev selects
// decreasing-bit flow order (West). Cluster heads are found with bit
// scans and each cluster's OR/fill is a masked word-range operation.
func (m *Machine) wiredOrRows(open, drive, dst *Bitset, rev bool) {
	n := m.n
	m.runRingsAligned(m.ringAlign, func(i int) {
		base := i * n
		end := base + n
		if rev {
			first := open.PrevSet(base, end)
			if first < 0 {
				dst.FillRange(base, end, drive.AnyRange(base, end))
				return
			}
			start := first
			for {
				next := open.PrevSet(base, start)
				if next < 0 {
					// Final cluster wraps: [base, start] then the lanes
					// above the flow-first head.
					or := drive.AnyRange(base, start+1) || drive.AnyRange(first+1, end)
					dst.FillRange(base, start+1, or)
					dst.FillRange(first+1, end, or)
					return
				}
				or := drive.AnyRange(next+1, start+1)
				dst.FillRange(next+1, start+1, or)
				start = next
			}
		}
		first := open.NextSet(base, end)
		if first < 0 {
			dst.FillRange(base, end, drive.AnyRange(base, end))
			return
		}
		start := first
		for {
			next := open.NextSet(start+1, end)
			if next < 0 {
				// Final cluster wraps: [start, end) then [base, first).
				or := drive.AnyRange(start, end) || drive.AnyRange(base, first)
				dst.FillRange(start, end, or)
				dst.FillRange(base, first, or)
				return
			}
			or := drive.AnyRange(start, next)
			dst.FillRange(start, next, or)
			start = next
		}
	})
}

// Shift moves every word one PE in direction d with torus wrap:
// dst[p] = src[neighbour of p on the side opposite d]. dst may alias src.
// Cost: one shift step.
func (m *Machine) Shift(d Direction, src, dst []Word) {
	m.checkLen("src", len(src))
	m.checkLen("dst", len(dst))
	m.observe(OpShift, d, 0)
	m.metrics.ShiftSteps++
	m.runRings(func(i int) {
		rg := m.rings[d][i]
		n := m.n
		tmp := src[rg.base+(n-1)*rg.stride]
		for k := n - 1; k >= 1; k-- {
			dst[rg.base+k*rg.stride] = src[rg.base+(k-1)*rg.stride]
		}
		dst[rg.base] = tmp
	})
}

// GlobalOr evaluates the global-OR line: it reports whether pred is true
// at any PE. Cost: one global-OR operation.
func (m *Machine) GlobalOr(pred []bool) bool {
	m.checkLen("pred", len(pred))
	m.observe(OpGlobalOr, North, 0)
	m.metrics.GlobalOrOps++
	for _, p := range pred {
		if p {
			return true
		}
	}
	return false
}

// GlobalOrBits is GlobalOr on a packed predicate.
func (m *Machine) GlobalOrBits(pred *Bitset) bool {
	m.checkBits("pred", pred)
	m.observe(OpGlobalOr, North, 0)
	m.metrics.GlobalOrOps++
	return pred.Any()
}
