package ppa

// Fabric is the communication-fabric contract the programming layers
// build on: an n x n array addressed in row-major order with segmented
// broadcast buses, a wired-OR bus mode, nearest-neighbour shifts and a
// global-OR line, all charged to a Metrics accumulator.
//
// Machine implements it directly; virt.Machine implements it by
// simulating a large logical array on a smaller physical Machine
// (block mapping), which is how the paper's one-element-per-PE assumption
// is lifted without changing any algorithm code.
type Fabric interface {
	// N is the (logical) array side; arrays passed to the ops have N*N
	// elements.
	N() int
	// Bits is the word width h.
	Bits() uint
	// Inf is the MAXINT sentinel, 2^h - 1.
	Inf() Word
	// Broadcast performs one segmented-bus transaction (see
	// Machine.Broadcast for the exact cut-ring semantics).
	Broadcast(d Direction, open []bool, src, dst []Word)
	// WiredOr performs one 1-bit wired-OR bus transaction.
	WiredOr(d Direction, open, drive, dst []bool)
	// Shift moves every word one PE in direction d with wrap-around.
	Shift(d Direction, src, dst []Word)
	// GlobalOr reports whether pred holds anywhere.
	GlobalOr(pred []bool) bool
	// BroadcastBits, WiredOrBits and GlobalOrBits are the same three
	// transactions with the boolean lane sets packed 64-per-word (see
	// Bitset) — the allocation-free representation the programming
	// layers keep all parallel logicals in. Identical results and
	// identical charges to their []bool counterparts.
	BroadcastBits(d Direction, open *Bitset, src, dst []Word)
	WiredOrBits(d Direction, open, drive, dst *Bitset)
	GlobalOrBits(pred *Bitset) bool
	// CountPE charges local ALU operations; CountInstr one SIMD
	// instruction.
	CountPE(ops int64)
	CountInstr()
	// Metrics returns the accumulated cost; ResetMetrics zeroes it.
	Metrics() Metrics
	ResetMetrics()
}

// Machine satisfies Fabric.
var _ Fabric = (*Machine)(nil)
