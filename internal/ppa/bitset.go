package ppa

import (
	"fmt"
	"math/bits"
)

// Bitset is a packed array of boolean lanes: lane i lives in bit i&63 of
// word i>>6, 64 lanes per machine word. It is the storage behind every
// parallel logical value and switch configuration in the simulator, so
// that one SIMD logical instruction over n*n lanes costs n*n/64 host word
// operations instead of n*n byte operations.
//
// Invariant: the tail bits of the last word (lanes >= Len) are always
// zero; every mutating method maintains it.
type Bitset struct {
	n int
	w []uint64
}

// NewBitset returns an all-false set of n lanes.
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic(fmt.Sprintf("ppa: negative bitset size %d", n))
	}
	return &Bitset{n: n, w: make([]uint64, (n+63)>>6)}
}

// NewBitsetFromBools packs host booleans into a fresh Bitset.
func NewBitsetFromBools(data []bool) *Bitset {
	b := NewBitset(len(data))
	b.FromBools(data)
	return b
}

// Len returns the number of lanes.
func (b *Bitset) Len() int { return b.n }

// Words exposes the packed storage (64 lanes per word, lane 0 in bit 0 of
// word 0). The caller must keep the tail-bits-zero invariant.
func (b *Bitset) Words() []uint64 { return b.w }

// tailMask returns the valid-bit mask of the last storage word, or an
// all-ones mask when the lane count is a multiple of 64.
func (b *Bitset) tailMask() uint64 {
	if r := uint(b.n) & 63; r != 0 {
		return 1<<r - 1
	}
	return ^uint64(0)
}

// Get returns lane i.
func (b *Bitset) Get(i int) bool { return b.w[i>>6]>>(uint(i)&63)&1 == 1 }

// Set makes lane i true.
func (b *Bitset) Set(i int) { b.w[i>>6] |= 1 << (uint(i) & 63) }

// Unset makes lane i false.
func (b *Bitset) Unset(i int) { b.w[i>>6] &^= 1 << (uint(i) & 63) }

// SetTo stores v into lane i.
func (b *Bitset) SetTo(i int, v bool) {
	if v {
		b.Set(i)
	} else {
		b.Unset(i)
	}
}

// Fill stores v into every lane.
func (b *Bitset) Fill(v bool) {
	if len(b.w) == 0 {
		return
	}
	var x uint64
	if v {
		x = ^uint64(0)
	}
	for i := range b.w {
		b.w[i] = x
	}
	b.w[len(b.w)-1] &= b.tailMask()
}

// CopyFrom copies x into b (same lane count required).
func (b *Bitset) CopyFrom(x *Bitset) {
	b.checkSame(x)
	copy(b.w, x.w)
}

func (b *Bitset) checkSame(others ...*Bitset) {
	for _, o := range others {
		if o.n != b.n {
			panic(fmt.Sprintf("ppa: bitset size mismatch %d vs %d", b.n, o.n))
		}
	}
}

// And stores x AND y into b (lengths must match; b may alias either).
func (b *Bitset) And(x, y *Bitset) {
	b.checkSame(x, y)
	for i := range b.w {
		b.w[i] = x.w[i] & y.w[i]
	}
}

// AndNot stores x AND NOT y into b.
func (b *Bitset) AndNot(x, y *Bitset) {
	b.checkSame(x, y)
	for i := range b.w {
		b.w[i] = x.w[i] &^ y.w[i]
	}
}

// Or stores x OR y into b.
func (b *Bitset) Or(x, y *Bitset) {
	b.checkSame(x, y)
	for i := range b.w {
		b.w[i] = x.w[i] | y.w[i]
	}
}

// Xor stores x XOR y into b.
func (b *Bitset) Xor(x, y *Bitset) {
	b.checkSame(x, y)
	for i := range b.w {
		b.w[i] = x.w[i] ^ y.w[i]
	}
}

// Not stores NOT x into b.
func (b *Bitset) Not(x *Bitset) {
	b.checkSame(x)
	if len(b.w) == 0 {
		return
	}
	for i := range b.w {
		b.w[i] = ^x.w[i]
	}
	b.w[len(b.w)-1] &= b.tailMask()
}

// Count returns the number of true lanes.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.w {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any lane is true.
func (b *Bitset) Any() bool {
	for _, w := range b.w {
		if w != 0 {
			return true
		}
	}
	return false
}

// AnyRange reports whether any lane in [lo, hi) is true.
func (b *Bitset) AnyRange(lo, hi int) bool {
	if lo >= hi {
		return false
	}
	wl, wh := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	if wl == wh {
		return b.w[wl]&loMask&hiMask != 0
	}
	if b.w[wl]&loMask != 0 {
		return true
	}
	for i := wl + 1; i < wh; i++ {
		if b.w[i] != 0 {
			return true
		}
	}
	return b.w[wh]&hiMask != 0
}

// FillRange stores v into every lane in [lo, hi).
func (b *Bitset) FillRange(lo, hi int, v bool) {
	if lo >= hi {
		return
	}
	wl, wh := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - uint(hi-1)&63)
	if wl == wh {
		if v {
			b.w[wl] |= loMask & hiMask
		} else {
			b.w[wl] &^= loMask & hiMask
		}
		return
	}
	if v {
		b.w[wl] |= loMask
		for i := wl + 1; i < wh; i++ {
			b.w[i] = ^uint64(0)
		}
		b.w[wh] |= hiMask
	} else {
		b.w[wl] &^= loMask
		for i := wl + 1; i < wh; i++ {
			b.w[i] = 0
		}
		b.w[wh] &^= hiMask
	}
}

// FillStride stores v into the count lanes start, start+stride,
// start+2*stride, ... — the column-stripe edit of a row-major plane
// (stride n selects one column of an n-sided array). stride must be
// positive and every touched lane must be in range.
func (b *Bitset) FillStride(start, stride, count int, v bool) {
	if stride <= 0 {
		panic(fmt.Sprintf("ppa: FillStride stride %d <= 0", stride))
	}
	if count <= 0 {
		return
	}
	last := start + (count-1)*stride
	if start < 0 || last >= b.n {
		panic(fmt.Sprintf("ppa: FillStride lanes [%d,%d] out of range [0,%d)", start, last, b.n))
	}
	if v {
		for i, k := start, 0; k < count; i, k = i+stride, k+1 {
			b.w[i>>6] |= 1 << (uint(i) & 63)
		}
	} else {
		for i, k := start, 0; k < count; i, k = i+stride, k+1 {
			b.w[i>>6] &^= 1 << (uint(i) & 63)
		}
	}
}

// NextSet returns the first true lane in [from, to), or -1 (the
// trailing-zero scan of the packed representation).
func (b *Bitset) NextSet(from, to int) int {
	if from < 0 {
		from = 0
	}
	if to > b.n {
		to = b.n
	}
	if from >= to {
		return -1
	}
	wi := from >> 6
	w := b.w[wi] >> (uint(from) & 63)
	if w != 0 {
		i := from + bits.TrailingZeros64(w)
		if i < to {
			return i
		}
		return -1
	}
	for wi++; wi<<6 < to; wi++ {
		if b.w[wi] != 0 {
			i := wi<<6 + bits.TrailingZeros64(b.w[wi])
			if i < to {
				return i
			}
			return -1
		}
	}
	return -1
}

// PrevSet returns the last true lane in [from, to), or -1.
func (b *Bitset) PrevSet(from, to int) int {
	if from < 0 {
		from = 0
	}
	if to > b.n {
		to = b.n
	}
	if from >= to {
		return -1
	}
	hi := to - 1
	wi := hi >> 6
	w := b.w[wi] << (63 - uint(hi)&63)
	if w != 0 {
		i := hi - bits.LeadingZeros64(w)
		if i >= from {
			return i
		}
		return -1
	}
	for wi--; wi >= 0 && (wi+1)<<6 > from; wi-- {
		if b.w[wi] != 0 {
			i := wi<<6 + 63 - bits.LeadingZeros64(b.w[wi])
			if i >= from {
				return i
			}
			return -1
		}
	}
	return -1
}

// FromBools packs host booleans (length must equal Len).
func (b *Bitset) FromBools(data []bool) {
	if len(data) != b.n {
		panic(fmt.Sprintf("ppa: FromBools length %d, want %d", len(data), b.n))
	}
	for wi := range b.w {
		base := wi << 6
		lim := b.n - base
		if lim > 64 {
			lim = 64
		}
		var w uint64
		for k := 0; k < lim; k++ {
			var bit uint64
			if data[base+k] {
				bit = 1
			}
			w |= bit << uint(k)
		}
		b.w[wi] = w
	}
}

// ToBools unpacks into dst (length must equal Len).
func (b *Bitset) ToBools(dst []bool) {
	if len(dst) != b.n {
		panic(fmt.Sprintf("ppa: ToBools length %d, want %d", len(dst), b.n))
	}
	for i := range dst {
		dst[i] = false
	}
	for wi, w := range b.w {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			dst[base+bits.TrailingZeros64(w)] = true
		}
	}
}

// Bools returns a freshly allocated unpacked copy.
func (b *Bitset) Bools() []bool {
	dst := make([]bool, b.n)
	b.ToBools(dst)
	return dst
}

// TransposeBits writes the transpose of src — read as an n x n row-major
// bit matrix — into dst (both must have n*n lanes; dst must not alias
// src). When n is a multiple of 64 it runs on 64x64 tiles with the
// classic word-recursive block-swap transpose, costing O(n²/64) word
// operations; otherwise it scatters the set bits individually.
func TransposeBits(dst, src *Bitset, n int) {
	if src.n != n*n || dst.n != n*n {
		panic(fmt.Sprintf("ppa: transpose of %d/%d lanes, want %d", src.n, dst.n, n*n))
	}
	if n&63 == 0 {
		stride := n >> 6 // words per matrix row
		var tile [64]uint64
		for ti := 0; ti < stride; ti++ {
			for tj := 0; tj < stride; tj++ {
				for k := 0; k < 64; k++ {
					tile[k] = src.w[(ti<<6+k)*stride+tj]
				}
				Transpose64(&tile)
				for k := 0; k < 64; k++ {
					dst.w[(tj<<6+k)*stride+ti] = tile[k]
				}
			}
		}
		return
	}
	dst.Fill(false)
	for wi, w := range src.w {
		base := wi << 6
		for ; w != 0; w &= w - 1 {
			b := base + bits.TrailingZeros64(w)
			dst.Set(b%n*n + b/n)
		}
	}
}

// Transpose64 transposes a 64x64 bit matrix in place (row k = a[k], column
// j = bit j) by recursive block swapping.
func Transpose64(a *[64]uint64) {
	for j := uint(32); j != 0; j >>= 1 {
		m := ^uint64(0) / (1<<j + 1) // low j bits of every 2j-bit block
		for k := 0; k < 64; k = (k + int(j) + 1) &^ int(j) {
			t := ((a[k] >> j) ^ a[k+int(j)]) & m
			a[k] ^= t << j
			a[k+int(j)] ^= t
		}
	}
}
