package ppa

import (
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// randPlan builds one random transaction's inputs: a switch plane with a
// mix of empty, single-head and multi-head rings, and word data.
func randPlan(rng *rand.Rand, n int, h uint) (open *Bitset, src, dst []Word) {
	size := n * n
	open = NewBitset(size)
	for i := 0; i < size; i++ {
		if rng.Intn(4) == 0 {
			open.Set(i)
		}
	}
	src = make([]Word, size)
	dst = make([]Word, size)
	for i := range src {
		src[i] = Word(rng.Int63n(int64(Infinity(h)) + 1))
		dst[i] = Word(rng.Int63n(int64(Infinity(h)) + 1))
	}
	return open, src, dst
}

// TestPooledKernelsMatchSerial drives every ring kernel through the
// persistent worker pool (WithForceParallel, so the pooled path runs even
// on a single-core host) and checks outputs and metrics against a serial
// machine, across sides that stress the word-alignment partitioning
// (odd n, n < 64, n a multiple of 64) and worker counts that do not
// divide n.
func TestPooledKernelsMatchSerial(t *testing.T) {
	const h = 8
	for _, n := range []int{1, 2, 3, 5, 8, 13, 16, 64} {
		for _, workers := range []int{2, 4, 7} {
			rng := rand.New(rand.NewSource(int64(1000*n + workers)))
			ms := New(n, h)
			mp := New(n, h, WithWorkers(workers), WithForceParallel())
			defer mp.Close()
			for round := 0; round < 8; round++ {
				d := Direction(rng.Intn(4))
				open, src, dst := randPlan(rng, n, h)
				dst2 := append([]Word(nil), dst...)
				switch rng.Intn(3) {
				case 0:
					ms.BroadcastBits(d, open, src, dst)
					mp.BroadcastBits(d, open, src, dst2)
				case 1:
					drive := NewBitset(n * n)
					for i := 0; i < n*n; i++ {
						if rng.Intn(3) == 0 {
							drive.Set(i)
						}
					}
					drive2 := NewBitset(n * n)
					drive2.CopyFrom(drive)
					// dst aliases drive, as the fused reduction uses it.
					ms.WiredOrBits(d, open, drive, drive)
					mp.WiredOrBits(d, open, drive2, drive2)
					for i := 0; i < n*n; i++ {
						if drive.Get(i) != drive2.Get(i) {
							t.Fatalf("n=%d workers=%d round=%d dir=%v: wired-OR lane %d: serial=%v pooled=%v",
								n, workers, round, d, i, drive.Get(i), drive2.Get(i))
						}
					}
					continue
				default:
					ms.Shift(d, src, dst)
					mp.Shift(d, src, dst2)
				}
				for i := range dst {
					if dst[i] != dst2[i] {
						t.Fatalf("n=%d workers=%d round=%d dir=%v: lane %d: serial=%d pooled=%d",
							n, workers, round, d, i, dst[i], dst2[i])
					}
				}
			}
			if ms.Metrics() != mp.Metrics() {
				t.Fatalf("n=%d workers=%d: metrics diverge: serial=%+v pooled=%+v",
					n, workers, ms.Metrics(), mp.Metrics())
			}
		}
	}
}

// TestPooledKernelsMatchSerialWithFaults repeats the equivalence check
// with stuck switch faults injected identically on both machines — the
// fault override must compose with the pooled dispatch.
func TestPooledKernelsMatchSerialWithFaults(t *testing.T) {
	const n, h = 13, 6
	rng := rand.New(rand.NewSource(7))
	ms := New(n, h)
	mp := New(n, h, WithWorkers(3), WithForceParallel())
	defer mp.Close()
	for _, kind := range []FaultKind{StuckShort, StuckOpen} {
		pe := rng.Intn(n * n)
		ms.InjectFault(pe, kind)
		mp.InjectFault(pe, kind)
	}
	for round := 0; round < 16; round++ {
		d := Direction(rng.Intn(4))
		open, src, dst := randPlan(rng, n, h)
		dst2 := append([]Word(nil), dst...)
		ms.BroadcastBits(d, open, src, dst)
		mp.BroadcastBits(d, open, src, dst2)
		for i := range dst {
			if dst[i] != dst2[i] {
				t.Fatalf("faulty round=%d dir=%v lane %d: serial=%d pooled=%d", round, d, i, dst[i], dst2[i])
			}
		}
	}
}

// TestMachineCloseSerialFallback checks Close is idempotent and that a
// closed machine keeps producing correct results on the serial path.
func TestMachineCloseSerialFallback(t *testing.T) {
	const n, h = 8, 8
	rng := rand.New(rand.NewSource(3))
	ms := New(n, h)
	mp := New(n, h, WithWorkers(4), WithForceParallel())
	open, src, dst := randPlan(rng, n, h)
	dst2 := append([]Word(nil), dst...)
	mp.BroadcastBits(East, open, src, dst2) // spawn the pool
	mp.Close()
	mp.Close() // idempotent
	ms.BroadcastBits(East, open, src, dst)
	copy(dst2, dst)
	ms.BroadcastBits(South, open, src, dst)
	mp.BroadcastBits(South, open, src, dst2)
	for i := range dst {
		if dst[i] != dst2[i] {
			t.Fatalf("post-Close lane %d: serial=%d closed-pooled=%d", i, dst[i], dst2[i])
		}
	}
}

// settleGoroutines waits for the goroutine count to stop changing (pool
// workers from earlier tests exit asynchronously after Close).
func settleGoroutines() int {
	prev, stable := runtime.NumGoroutine(), 0
	for i := 0; i < 500 && stable < 5; i++ {
		time.Sleep(2 * time.Millisecond)
		if n := runtime.NumGoroutine(); n == prev {
			stable++
		} else {
			prev, stable = n, 0
		}
	}
	return prev
}

// TestMachineCloseStopsWorkers pins deterministic goroutine shutdown:
// after Close, the pool goroutines exit.
func TestMachineCloseStopsWorkers(t *testing.T) {
	base := settleGoroutines()
	m := New(16, 8, WithWorkers(4), WithForceParallel())
	open := NewBitset(16 * 16)
	open.Fill(true)
	src := make([]Word, 16*16)
	m.BroadcastBits(East, open, src, src)
	if n := runtime.NumGoroutine(); n <= base {
		t.Fatalf("expected pool goroutines after a forced-parallel transaction (%d vs base %d)", n, base)
	}
	m.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("pool goroutines did not exit: %d now vs %d at start", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
