package ppa

import (
	"math/rand"
	"testing"
)

// This file pins the packed (Bitset) bus kernels against the original
// per-lane reference implementation: the exact loops the simulator
// shipped with before lanes were bit-packed, kept here as the executable
// specification. Randomized configurations — all directions, degenerate
// and dense switch patterns, injected faults, worker pools — must agree
// bit for bit.

// refBroadcast is the reference cut-ring broadcast (per-lane walk).
func refBroadcast(n int, d Direction, open []bool, src, dst []Word) {
	for i := 0; i < n; i++ {
		rg := ringGeometry(d, i, n)
		last := -1
		for k := 0; k < n; k++ {
			if open[rg.base+k*rg.stride] {
				last = k
			}
		}
		if last == -1 {
			continue
		}
		lastVal := src[rg.base+last*rg.stride]
		for t := 1; t <= n; t++ {
			k := last + t
			if k >= n {
				k -= n
			}
			p := rg.base + k*rg.stride
			v := src[p]
			dst[p] = lastVal
			if open[p] {
				lastVal = v
			}
		}
	}
}

// refWiredOr is the reference cluster-walk wired-OR (per-lane walk).
func refWiredOr(n int, d Direction, open, drive, dst []bool) {
	for i := 0; i < n; i++ {
		rg := ringGeometry(d, i, n)
		first := -1
		for k := 0; k < n; k++ {
			if open[rg.base+k*rg.stride] {
				first = k
				break
			}
		}
		if first == -1 {
			or := false
			for k := 0; k < n; k++ {
				or = or || drive[rg.base+k*rg.stride]
			}
			for k := 0; k < n; k++ {
				dst[rg.base+k*rg.stride] = or
			}
			continue
		}
		start := first
		for covered := 0; covered < n; {
			segLen := 1
			for segLen < n {
				k := start + segLen
				if k >= n {
					k -= n
				}
				if open[rg.base+k*rg.stride] {
					break
				}
				segLen++
			}
			or := false
			for t := 0; t < segLen; t++ {
				k := start + t
				if k >= n {
					k -= n
				}
				or = or || drive[rg.base+k*rg.stride]
			}
			for t := 0; t < segLen; t++ {
				k := start + t
				if k >= n {
					k -= n
				}
				dst[rg.base+k*rg.stride] = or
			}
			covered += segLen
			start += segLen
			if start >= n {
				start -= n
			}
		}
	}
}

// applyFaults mirrors effectiveOpenBits for the reference path.
func applyFaults(open []bool, faults map[int]FaultKind) []bool {
	eff := append([]bool(nil), open...)
	for pe, kind := range faults {
		eff[pe] = kind == StuckOpen
	}
	return eff
}

func TestPackedBusMatchesReferenceLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sides := []int{1, 2, 3, 5, 8, 13, 16, 31, 64, 65}
	for trial := 0; trial < 300; trial++ {
		n := sides[rng.Intn(len(sides))]
		size := n * n
		h := uint(4 + rng.Intn(8))
		workers := 1
		if rng.Intn(2) == 0 {
			workers = 1 + rng.Intn(4)
		}
		m := New(n, h, WithWorkers(workers))

		faults := map[int]FaultKind{}
		for f := rng.Intn(4); f > 0 && n > 1; f-- {
			pe := rng.Intn(size)
			kind := FaultKind(rng.Intn(2))
			faults[pe] = kind
			m.InjectFault(pe, kind)
		}

		// Switch density sweeps from empty through sparse to dense.
		density := []float64{0, 0.05, 0.3, 0.9, 1}[rng.Intn(5)]
		open := randBools(rng, size, density)
		d := Direction(rng.Intn(4))

		src := make([]Word, size)
		for i := range src {
			src[i] = Word(rng.Int63n(int64(Infinity(h)) + 1))
		}
		gotW := append([]Word(nil), src...) // floating lanes keep src
		m.Broadcast(d, open, src, gotW)
		wantW := append([]Word(nil), src...)
		refBroadcast(n, d, applyFaults(open, faults), src, wantW)
		for i := range wantW {
			if gotW[i] != wantW[i] {
				t.Fatalf("trial %d (n=%d d=%v workers=%d faults=%v): Broadcast lane %d = %d, reference %d",
					trial, n, d, workers, faults, i, gotW[i], wantW[i])
			}
		}

		drive := randBools(rng, size, 0.3)
		gotB := make([]bool, size)
		m.WiredOr(d, open, drive, gotB)
		wantB := make([]bool, size)
		refWiredOr(n, d, applyFaults(open, faults), drive, wantB)
		for i := range wantB {
			if gotB[i] != wantB[i] {
				t.Fatalf("trial %d (n=%d d=%v workers=%d faults=%v): WiredOr lane %d = %v, reference %v",
					trial, n, d, workers, faults, i, gotB[i], wantB[i])
			}
		}

		pred := randBools(rng, size, 0.02)
		want := false
		for _, p := range pred {
			want = want || p
		}
		if got := m.GlobalOrBits(NewBitsetFromBools(pred)); got != want {
			t.Fatalf("trial %d: GlobalOrBits = %v, reference %v", trial, got, want)
		}
	}
}

// TestPackedBitsEntryPointsMatchBoolAPI checks that the packed entry
// points and their []bool shims see the same transaction (same results,
// same charges).
func TestPackedBitsEntryPointsMatchBoolAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		size := n * n
		open := randBools(rng, size, 0.25)
		drive := randBools(rng, size, 0.3)
		d := Direction(rng.Intn(4))

		m1 := New(n, 8)
		m2 := New(n, 8)
		dst1 := make([]bool, size)
		m1.WiredOr(d, open, drive, dst1)
		dst2 := NewBitset(size)
		m2.WiredOrBits(d, NewBitsetFromBools(open), NewBitsetFromBools(drive), dst2)
		for i := 0; i < size; i++ {
			if dst1[i] != dst2.Get(i) {
				t.Fatalf("trial %d: WiredOr/WiredOrBits diverge at lane %d", trial, i)
			}
		}
		if m1.Metrics() != m2.Metrics() {
			t.Fatalf("trial %d: metrics diverge: %+v vs %+v", trial, m1.Metrics(), m2.Metrics())
		}

		src := make([]Word, size)
		for i := range src {
			src[i] = Word(rng.Int63n(256))
		}
		w1 := append([]Word(nil), src...)
		m1.Broadcast(d, open, src, w1)
		w2 := append([]Word(nil), src...)
		m2.BroadcastBits(d, NewBitsetFromBools(open), src, w2)
		for i := 0; i < size; i++ {
			if w1[i] != w2[i] {
				t.Fatalf("trial %d: Broadcast/BroadcastBits diverge at lane %d", trial, i)
			}
		}
	}
}

// TestObserverSkippedWhenAbsent pins the observer tax fix: with no
// observer attached, transactions must not scan the configuration; with
// one attached, Opens must be the post-fault Open count.
func TestObserverOpensCount(t *testing.T) {
	m := New(4, 8)
	open := make([]bool, 16)
	open[3], open[7] = true, true
	var events []Event
	m.SetObserver(func(e Event) { events = append(events, e) })
	m.InjectFault(5, StuckOpen)
	m.WiredOr(East, open, make([]bool, 16), make([]bool, 16))
	if len(events) != 1 || events[0].Opens != 3 {
		t.Fatalf("observer saw %+v, want one event with Opens=3 (2 requested + 1 stuck-open)", events)
	}
}
