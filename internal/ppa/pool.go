package ppa

import (
	"runtime"
	"sync"
)

// parallelGrainWords is the minimum number of host words a single worker
// should have to process before a transaction is worth fanning out; below
// that the wake/join barrier costs more than the ring walks it splits.
const parallelGrainWords = 1024

// jobKind selects the per-ring kernel a dispatched transaction runs.
type jobKind uint8

const (
	jobBroadcast jobKind = iota
	jobWiredOr
	jobShift
	jobExtern
)

// ringKernels owns the per-ring kernel bodies and the persistent worker
// pool that fans them out. It is allocated separately from its Machine and
// never points back at it: pool goroutines park on the ringKernels alone,
// so an abandoned Machine stays collectable and its finalizer can still
// run to stop the workers.
//
// Kernel parameters travel through the job fields, set by the dispatching
// goroutine before workers are woken (the wake/done channel operations
// order those writes before the workers' reads). One heap-allocated
// closure per ring chunk per bus transaction was the bulk of the
// workers>1 allocation regression this replaces.
type ringKernels struct {
	n     int
	rings [4][]ring // shares the Machine's backing arrays (geometry only)

	// Current job.
	kind   jobKind
	dir    Direction
	open   *Bitset     // broadcast switch configuration
	topen  *Bitset     // transposed open (vertical broadcasts; column c = row c)
	src    []Word      // broadcast/shift source
	dst    []Word      // broadcast/shift destination
	wOpen  *Bitset     // wired-OR cluster heads (row layout)
	wDrv   *Bitset     // wired-OR drive plane (row layout)
	wDst   *Bitset     // wired-OR result plane (row layout)
	rev    bool        // wired-OR decreasing-bit flow order (West/North)
	extern func(i int) // caller-supplied per-ring body (RunRings)

	// Persistent workers, spawned lazily at the first parallel dispatch.
	// chunks1/chunksA are the precomputed ring partitions at alignment 1
	// and at ringAlign (packed wired-OR walks may only split on packed
	// word boundaries); bounds points at whichever the current job uses.
	bounds  [][2]int
	chunks1 [][2]int
	chunksA [][2]int
	wake    []chan struct{}
	done    chan struct{}
	started bool
	closed  bool

	closeOnce sync.Once
}

// ringChunks partitions n rings over at most w workers, rounding the
// chunk size up to a multiple of align.
func ringChunks(n, w, align int) [][2]int {
	chunk := (n + w - 1) / w
	if align > 1 {
		chunk = (chunk + align - 1) / align * align
	}
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// parallelOK reports whether the current transaction, touching roughly
// workWords host words, should be fanned out over the worker pool. The
// default policy requires real host parallelism and enough work per
// worker to amortize the barrier; WithForceParallel overrides it so the
// pooled path can be exercised on any host.
func (m *Machine) parallelOK(workWords int) bool {
	if m.workers <= 1 || m.n <= 1 || m.rk.closed {
		return false
	}
	if m.forcePar {
		return true
	}
	return runtime.GOMAXPROCS(0) > 1 && workWords >= m.spawnWorkers*parallelGrainWords
}

// ensureWorkers spawns the persistent ring workers on first parallel use
// and registers the finalizer that stops them if the Machine is dropped
// without Close.
func (m *Machine) ensureWorkers() {
	rk := m.rk
	if rk.started {
		return
	}
	rk.started = true
	w := len(rk.chunks1)
	if len(rk.chunksA) > w {
		w = len(rk.chunksA)
	}
	rk.wake = make([]chan struct{}, w)
	rk.done = make(chan struct{}, w)
	for i := range rk.wake {
		rk.wake[i] = make(chan struct{}, 1)
		go rk.worker(i)
	}
	runtime.SetFinalizer(m, (*Machine).Close)
}

// Close stops the machine's persistent ring workers; it is idempotent and
// a no-op when none were ever started. It must not run concurrently with
// a bus transaction. After Close the machine keeps working, falling back
// to serial ring execution. Abandoned machines are closed by a finalizer,
// so Close exists for deterministic goroutine shutdown (tests, servers).
func (m *Machine) Close() {
	rk := m.rk
	rk.closeOnce.Do(func() {
		rk.closed = true
		for _, ch := range rk.wake {
			close(ch)
		}
	})
	runtime.SetFinalizer(m, nil)
}

// dispatch runs the job staged in m.rk over all n rings — through the
// worker pool when the policy allows, serially otherwise — then drops the
// job's object references so an idle pool pins nothing.
func (m *Machine) dispatch(aligned bool, workWords int) {
	rk := m.rk
	if m.parallelOK(workWords) {
		m.ensureWorkers()
		b := rk.chunks1
		if aligned {
			b = rk.chunksA
		}
		rk.bounds = b
		for w := range b {
			rk.wake[w] <- struct{}{}
		}
		for range b {
			<-rk.done
		}
	} else {
		for i := 0; i < rk.n; i++ {
			rk.runRing(i)
		}
	}
	rk.open, rk.topen, rk.src, rk.dst = nil, nil, nil, nil
	rk.wOpen, rk.wDrv, rk.wDst = nil, nil, nil
	rk.extern = nil
}

// RunRings runs fn(i) for every ring index i in [0, N) — through the
// machine's persistent worker pool when the transaction-size policy
// allows, serially on the calling goroutine otherwise. workWords is the
// caller's estimate of the host words the whole pass touches, fed to the
// same grain policy as native transactions; fn must be safe for
// concurrent calls with distinct i and must not issue machine
// transactions. This is how the virtualization layer fans its
// within-block plane passes over the same long-lived workers as plain
// bus transactions (see internal/virt).
func (m *Machine) RunRings(workWords int, fn func(i int)) {
	rk := m.rk
	rk.kind = jobExtern
	rk.extern = fn
	m.dispatch(false, workWords)
}

// worker is the body of one persistent pool goroutine: park on the wake
// channel, run the assigned ring range of the staged job, signal done.
// Closing the wake channel (Machine.Close or the finalizer) ends it.
func (rk *ringKernels) worker(w int) {
	for range rk.wake[w] {
		b := rk.bounds[w]
		for i := b[0]; i < b[1]; i++ {
			rk.runRing(i)
		}
		rk.done <- struct{}{}
	}
}

// runRing executes the staged job on ring i.
func (rk *ringKernels) runRing(i int) {
	switch rk.kind {
	case jobBroadcast:
		rk.broadcastRing(i)
	case jobWiredOr:
		rk.wiredOrRow(i)
	case jobExtern:
		rk.extern(i)
	default:
		rk.shiftRing(i)
	}
}

// broadcastRing resolves one segmented-bus ring: every PE receives the
// operand of the nearest Open PE strictly upstream in flow order
// (wrapping); a ring with no Open PE floats and is left unchanged.
//
// Instead of walking the ring PE by PE, the kernel scans the Open heads
// with bit scans and fills whole segments between heads. For horizontal
// rings the heads are scanned in the open plane itself; for vertical
// rings the dispatcher stages a transposed copy (rk.topen) so column c's
// heads are the contiguous bit range of its row c. Scans and fills work
// in ring-position space: position p is lane base + p*step of the data
// slices and bit sbase + p of the scan plane. Segments are filled in an
// order that reads every head's src operand before an aliased dst write
// can clobber it.
func (rk *ringKernels) broadcastRing(i int) {
	n := rk.n
	src, dst := rk.src, rk.dst
	var scan *Bitset
	var base, step int
	switch rk.dir {
	case East, West:
		scan, base, step = rk.open, i*n, 1
	default:
		scan, base, step = rk.topen, i, n
	}
	sbase := i * n
	send := sbase + n
	if rk.dir == East || rk.dir == South {
		// Forward flow: increasing position, upstream = lower.
		hi := scan.PrevSet(sbase, send)
		if hi < 0 {
			return // floating bus
		}
		lo := scan.NextSet(sbase, send) - sbase
		hi -= sbase
		wrapVal := src[base+hi*step]
		// Interior segments (o_j, o_{j+1}] <- src[o_j], in decreasing
		// order so src[o_j] is read before segment j-1's fill writes it.
		cur := hi
		for {
			prev := scan.PrevSet(sbase, sbase+cur)
			if prev < 0 {
				break
			}
			prev -= sbase
			v := src[base+prev*step]
			for p := prev + 1; p <= cur; p++ {
				dst[base+p*step] = v
			}
			cur = prev
		}
		// Wrap segment: positions past the flow-last head and up to (and
		// including) the flow-first head receive the flow-last operand.
		for p := hi + 1; p < n; p++ {
			dst[base+p*step] = wrapVal
		}
		for p := 0; p <= lo; p++ {
			dst[base+p*step] = wrapVal
		}
		return
	}
	// Reverse flow (West/North): decreasing position, upstream = higher.
	lo := scan.NextSet(sbase, send)
	if lo < 0 {
		return
	}
	lo -= sbase
	hi := scan.PrevSet(sbase, send) - sbase
	wrapVal := src[base+lo*step]
	// Interior segments [o_j, o_{j+1}) <- src[o_{j+1}], in increasing
	// order (each fill stops short of the head it reads).
	cur := lo
	for {
		next := scan.NextSet(sbase+cur+1, send)
		if next < 0 {
			break
		}
		next -= sbase
		v := src[base+next*step]
		for p := cur; p < next; p++ {
			dst[base+p*step] = v
		}
		cur = next
	}
	for p := hi; p < n; p++ {
		dst[base+p*step] = wrapVal
	}
	for p := 0; p < lo; p++ {
		dst[base+p*step] = wrapVal
	}
}

// wiredOrRow resolves one row ring of a packed wired-OR plane. The ring
// occupies the contiguous bit range [i*n, (i+1)*n); rev selects
// decreasing-bit flow order (West). Cluster heads are found with bit
// scans and each cluster's OR/fill is a masked word-range operation.
func (rk *ringKernels) wiredOrRow(i int) {
	n := rk.n
	open, drive, dst := rk.wOpen, rk.wDrv, rk.wDst
	base := i * n
	end := base + n
	if rk.rev {
		first := open.PrevSet(base, end)
		if first < 0 {
			dst.FillRange(base, end, drive.AnyRange(base, end))
			return
		}
		start := first
		for {
			next := open.PrevSet(base, start)
			if next < 0 {
				// Final cluster wraps: [base, start] then the lanes
				// above the flow-first head.
				or := drive.AnyRange(base, start+1) || drive.AnyRange(first+1, end)
				dst.FillRange(base, start+1, or)
				dst.FillRange(first+1, end, or)
				return
			}
			or := drive.AnyRange(next+1, start+1)
			dst.FillRange(next+1, start+1, or)
			start = next
		}
	}
	first := open.NextSet(base, end)
	if first < 0 {
		dst.FillRange(base, end, drive.AnyRange(base, end))
		return
	}
	start := first
	for {
		next := open.NextSet(start+1, end)
		if next < 0 {
			// Final cluster wraps: [start, end) then [base, first).
			or := drive.AnyRange(start, end) || drive.AnyRange(base, first)
			dst.FillRange(start, end, or)
			dst.FillRange(base, first, or)
			return
		}
		or := drive.AnyRange(start, next)
		dst.FillRange(start, next, or)
		start = next
	}
}

// shiftRing moves one ring's words one PE in flow direction with wrap.
func (rk *ringKernels) shiftRing(i int) {
	rg := rk.rings[rk.dir][i]
	n := rk.n
	src, dst := rk.src, rk.dst
	tmp := src[rg.base+(n-1)*rg.stride]
	for k := n - 1; k >= 1; k-- {
		dst[rg.base+k*rg.stride] = src[rg.base+(k-1)*rg.stride]
	}
	dst[rg.base] = tmp
}
