package ppa

import (
	"testing"
	"testing/quick"
)

func TestInfinity(t *testing.T) {
	cases := []struct {
		h    uint
		want Word
	}{
		{1, 1}, {2, 3}, {4, 15}, {8, 255}, {16, 65535}, {62, 1<<62 - 1},
	}
	for _, c := range cases {
		if got := Infinity(c.h); got != c.want {
			t.Errorf("Infinity(%d) = %d, want %d", c.h, got, c.want)
		}
	}
}

func TestInfinityPanicsOutOfRange(t *testing.T) {
	for _, h := range []uint{0, 63, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Infinity(%d) did not panic", h)
				}
			}()
			Infinity(h)
		}()
	}
}

func TestSatAdd(t *testing.T) {
	const h = 8
	inf := Infinity(h)
	cases := []struct {
		a, b, want Word
	}{
		{0, 0, 0},
		{1, 2, 3},
		{100, 100, 200},
		{200, 100, inf}, // overflow saturates
		{inf, 0, inf},   // infinity is absorbing
		{0, inf, inf},
		{inf, inf, inf},
		{254, 0, 254},
		{254, 1, inf}, // 255 == inf itself
	}
	for _, c := range cases {
		if got := SatAdd(c.a, c.b, h); got != c.want {
			t.Errorf("SatAdd(%d, %d, %d) = %d, want %d", c.a, c.b, h, got, c.want)
		}
	}
}

func TestSatAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SatAdd(-1, 0) did not panic")
		}
	}()
	SatAdd(-1, 0, 8)
}

func TestSatAddProperties(t *testing.T) {
	const h = 16
	inf := Infinity(h)
	f := func(a, b uint16) bool {
		x, y := Word(a)%inf, Word(b)%inf
		got := SatAdd(x, y, h)
		// Commutative, bounded, exact when no saturation.
		if got != SatAdd(y, x, h) || got > inf {
			return false
		}
		if x+y < inf && got != x+y {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBit(t *testing.T) {
	w := Word(0b1011001)
	want := []bool{true, false, false, true, true, false, true, false}
	for i, wbit := range want {
		if got := Bit(w, uint(i)); got != wbit {
			t.Errorf("Bit(%b, %d) = %v, want %v", w, i, got, wbit)
		}
	}
}

func TestCheckWord(t *testing.T) {
	CheckWord(0, 4)
	CheckWord(15, 4)
	for _, w := range []Word{-1, 16, 1 << 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CheckWord(%d, 4) did not panic", w)
				}
			}()
			CheckWord(w, 4)
		}()
	}
}

func TestDirectionOpposite(t *testing.T) {
	for _, d := range []Direction{North, East, South, West} {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not involutive for %v", d)
		}
		if d.Opposite() == d {
			t.Errorf("Opposite(%v) == %v", d, d)
		}
	}
	if North.Opposite() != South || East.Opposite() != West {
		t.Error("wrong opposite pairing")
	}
}

func TestDirectionHorizontal(t *testing.T) {
	if !East.Horizontal() || !West.Horizontal() || North.Horizontal() || South.Horizontal() {
		t.Error("Horizontal misclassifies directions")
	}
}

func TestParseDirection(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Direction
	}{{"north", North}, {"E", East}, {"South", South}, {"w", West}} {
		got, err := ParseDirection(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseDirection(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseDirection("up"); err == nil {
		t.Error("ParseDirection(up) succeeded, want error")
	}
}

func TestDirectionString(t *testing.T) {
	if North.String() != "North" || Direction(9).String() == "" {
		t.Error("Direction.String broken")
	}
}
