package ppa

import "testing"

func TestInjectFaultValidation(t *testing.T) {
	m := New(3, 8)
	if m.Faulty() {
		t.Error("fresh machine reports faults")
	}
	m.InjectFault(4, StuckOpen)
	if !m.Faulty() {
		t.Error("injected fault not reported")
	}
	m.ClearFaults()
	if m.Faulty() {
		t.Error("ClearFaults did not clear")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range fault did not panic")
		}
	}()
	m.InjectFault(9, StuckShort)
}

func TestFaultKindString(t *testing.T) {
	if StuckShort.String() != "stuck-short" || StuckOpen.String() != "stuck-open" {
		t.Error("FaultKind strings wrong")
	}
}

func TestStuckOpenFragmentsBus(t *testing.T) {
	const n = 4
	m := New(n, 8)
	src := make([]Word, n*n)
	open := make([]bool, n*n)
	dst := make([]Word, n*n)
	// Healthy: single head at (0,0) broadcasting East fills row 0 with 9.
	open[0] = true
	src[0] = 9
	src[m.Index(0, 2)] = 5
	m.Broadcast(East, open, src, dst)
	for c := 0; c < n; c++ {
		if dst[m.Index(0, c)] != 9 {
			t.Fatalf("healthy broadcast wrong at col %d", c)
		}
	}
	// Stuck-open at (0,2): it now injects its own value 5 into cols 3..0.
	m.InjectFault(m.Index(0, 2), StuckOpen)
	m.Broadcast(East, open, src, dst)
	want := []Word{5, 9, 9, 5}
	for c := 0; c < n; c++ {
		if dst[m.Index(0, c)] != want[c] {
			t.Errorf("faulty broadcast col %d = %d, want %d", c, dst[m.Index(0, c)], want[c])
		}
	}
}

func TestStuckShortSilencesHead(t *testing.T) {
	const n = 3
	m := New(n, 8)
	src := make([]Word, n*n)
	open := make([]bool, n*n)
	dst := []Word{7, 7, 7, 7, 7, 7, 7, 7, 7}
	open[0] = true
	src[0] = 9
	m.InjectFault(0, StuckShort)
	m.Broadcast(East, open, src, dst)
	// The only head is stuck short: row 0 floats and dst stays 7.
	for c := 0; c < n; c++ {
		if dst[m.Index(0, c)] != 7 {
			t.Errorf("col %d = %d, want untouched 7", c, dst[m.Index(0, c)])
		}
	}
}

func TestFaultsAffectWiredOrSegmentation(t *testing.T) {
	const n = 4
	m := New(n, 8)
	open := make([]bool, n*n)
	drive := make([]bool, n*n)
	dst := make([]bool, n*n)
	open[0] = true  // row 0 whole-ring cluster headed at col 0
	drive[3] = true // driver at col 3
	m.InjectFault(2, StuckOpen)
	m.WiredOr(East, open, drive, dst)
	// The stuck-open at col 2 splits the ring: cluster {0,1} has no driver,
	// cluster {2,3} has one.
	want := []bool{false, false, true, true}
	for c := 0; c < n; c++ {
		if dst[c] != want[c] {
			t.Errorf("col %d = %v, want %v", c, dst[c], want[c])
		}
	}
}

func TestFaultsDoNotMutateCallerConfig(t *testing.T) {
	m := New(2, 8)
	open := []bool{false, false, false, false}
	m.InjectFault(1, StuckOpen)
	m.Broadcast(East, open, make([]Word, 4), make([]Word, 4))
	if open[1] {
		t.Error("caller's open slice was mutated by fault application")
	}
}

func TestObserverSeesTransactions(t *testing.T) {
	m := New(3, 8)
	var events []Event
	m.SetObserver(func(e Event) { events = append(events, e) })
	open := make([]bool, 9)
	open[4] = true
	src := make([]Word, 9)
	b := make([]bool, 9)
	m.Broadcast(South, open, src, src)
	m.WiredOr(East, open, b, b)
	m.Shift(West, src, src)
	m.GlobalOr(b)
	if len(events) != 4 {
		t.Fatalf("observed %d events, want 4", len(events))
	}
	if events[0].Op != OpBroadcast || events[0].Dir != South || events[0].Opens != 1 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Op != OpWiredOr || events[2].Op != OpShift || events[3].Op != OpGlobalOr {
		t.Errorf("event kinds: %+v", events)
	}
	m.SetObserver(nil)
	m.Shift(West, src, src)
	if len(events) != 4 {
		t.Error("removed observer still fired")
	}
}

func TestObserverSeesPostFaultOpens(t *testing.T) {
	m := New(2, 8)
	var opens int
	m.SetObserver(func(e Event) { opens = e.Opens })
	m.InjectFault(0, StuckOpen)
	m.InjectFault(1, StuckOpen)
	m.Broadcast(East, make([]bool, 4), make([]Word, 4), make([]Word, 4))
	if opens != 2 {
		t.Errorf("observer saw %d opens, want the 2 stuck-open faults", opens)
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpBroadcast: "broadcast", OpWiredOr: "wired-or",
		OpShift: "shift", OpGlobalOr: "global-or", OpKind(9): "OpKind(9)",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// TestObserverEventCountsMatchMetrics ties the two instrumentation layers
// together: the number of events an observer sees per kind must equal the
// metric deltas.
func TestObserverEventCountsMatchMetrics(t *testing.T) {
	m := New(4, 8)
	counts := map[OpKind]int64{}
	m.SetObserver(func(e Event) { counts[e.Op]++ })
	open := make([]bool, 16)
	open[5] = true
	src := make([]Word, 16)
	b := make([]bool, 16)
	for i := 0; i < 3; i++ {
		m.Broadcast(East, open, src, src)
	}
	for i := 0; i < 5; i++ {
		m.WiredOr(South, open, b, b)
	}
	m.Shift(West, src, src)
	m.GlobalOr(b)
	m.GlobalOr(b)
	got := m.Metrics()
	if counts[OpBroadcast] != got.BusCycles ||
		counts[OpWiredOr] != got.WiredOrCycles ||
		counts[OpShift] != got.ShiftSteps ||
		counts[OpGlobalOr] != got.GlobalOrOps {
		t.Errorf("observer counts %v disagree with metrics %v", counts, got)
	}
}
