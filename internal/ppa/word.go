// Package ppa simulates the Polymorphic Processor Array (PPA), the
// massively parallel SIMD architecture of Maresca, Li and Baglietto: an
// n x n torus of processing elements (PEs) whose row and column buses can
// be dynamically segmented by per-PE switch boxes.
//
// The package models the machine at the level the IPPS'98 MCP paper relies
// on: unit-cost segmented-bus transactions (broadcast and wired-OR), unit
// nearest-neighbour shifts, and a global-OR line to the SIMD controller.
// Every operation is charged to a Metrics struct so algorithms built on top
// can be compared in abstract machine cycles rather than host wall time.
//
// Bus semantics ("cut ring"): each row and each column is a ring
// (the PPA descends from the Polymorphic Torus). A PE whose switch box is
// Open cuts the ring between its read port and its drive port and injects
// its operand downstream; a PE whose switch box is Short passes the signal
// through. A PE therefore receives the operand of the nearest Open PE
// strictly upstream of it, wrapping around the ring.
package ppa

import "fmt"

// Word is the value manipulated by a PE. The architecture is bit-serial
// at heart: a machine is configured with a word width h (Bits), values are
// unsigned integers in [0, 2^h-1], and 2^h-1 doubles as the MAXINT
// (infinity) sentinel of the paper.
type Word int64

// MaxBits is the widest word a Machine supports. One bit of the underlying
// int64 is kept in reserve so that intermediate sums cannot overflow before
// saturation is applied.
const MaxBits = 62

// Infinity returns the MAXINT sentinel for an h-bit machine: the all-ones
// word 2^h - 1. It is absorbing under SatAdd and loses every minimum
// except against itself.
func Infinity(h uint) Word {
	if h == 0 || h > MaxBits {
		panic(fmt.Sprintf("ppa: word width %d out of range [1,%d]", h, MaxBits))
	}
	return Word(1)<<h - 1
}

// SatAdd adds two h-bit words, saturating at Infinity(h). Negative
// operands are rejected: the PPA MCP algorithm is defined on non-negative
// edge weights.
func SatAdd(a, b Word, h uint) Word {
	if a < 0 || b < 0 {
		panic(fmt.Sprintf("ppa: SatAdd of negative word (%d, %d)", a, b))
	}
	inf := Infinity(h)
	if a >= inf || b >= inf || a+b >= inf {
		return inf
	}
	return a + b
}

// Bit reports the i-th bit plane of w, as the paper's bit(x, i) primitive.
func Bit(w Word, i uint) bool { return w>>i&1 == 1 }

// CheckWord panics unless w is representable on an h-bit machine.
func CheckWord(w Word, h uint) {
	if w < 0 || w > Infinity(h) {
		panic(fmt.Sprintf("ppa: word %d not representable in %d bits", w, h))
	}
}
