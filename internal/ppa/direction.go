package ppa

import "fmt"

// Direction is the global data-movement direction selected by the SIMD
// controller. At any given time every PE moves data the same way; only the
// per-PE switch configuration (Open/Short) is data dependent.
type Direction uint8

const (
	North Direction = iota // toward decreasing row index
	East                   // toward increasing column index
	South                  // toward increasing row index
	West                   // toward decreasing column index
)

// Opposite returns the direction opposite to d, as the paper's
// opposite(x) helper.
func (d Direction) Opposite() Direction {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	panic(fmt.Sprintf("ppa: invalid direction %d", d))
}

// Horizontal reports whether data moves along rows (East or West).
func (d Direction) Horizontal() bool { return d == East || d == West }

func (d Direction) String() string {
	switch d {
	case North:
		return "North"
	case East:
		return "East"
	case South:
		return "South"
	case West:
		return "West"
	}
	return fmt.Sprintf("Direction(%d)", uint8(d))
}

// ParseDirection converts a case-insensitive name ("north", "E", ...) to a
// Direction.
func ParseDirection(s string) (Direction, error) {
	switch s {
	case "north", "North", "NORTH", "n", "N":
		return North, nil
	case "east", "East", "EAST", "e", "E":
		return East, nil
	case "south", "South", "SOUTH", "s", "S":
		return South, nil
	case "west", "West", "WEST", "w", "W":
		return West, nil
	}
	return 0, fmt.Errorf("ppa: unknown direction %q", s)
}
