package ppa

import "fmt"

// This file contains a second, lower-level implementation of the bus
// semantics: the *port-level* model, which simulates what Figure 1b of
// the paper actually draws. Every PE has an upstream-facing port and a
// downstream-facing port on each bus; consecutive PEs' ports are joined
// by wires; a Short switch box connects a PE's two ports electrically,
// an Open one disconnects them, drives the downstream port and reads the
// upstream port. Signals resolve per electrical net (connected component
// of ports).
//
// Its purpose is verification: the behavioral cut-ring model in
// machine.go is what the algorithms run on, and the port-level model is
// the independent ground truth it is property-tested against
// (TestPortLevelEquivalence). The two agree exactly for Broadcast on
// every configuration. For WiredOr they agree on every lane except the
// Open PEs of rings that host two or more clusters: electrically, an
// Open PE's read port hangs on the *upstream* cluster's wire, while the
// behavioral model idealizes a local pickup of the PE's own cluster OR.
// The paper's algorithms only ever build whole-ring clusters (at most
// one Open PE per ring), where the wrap makes the two identical — the
// equivalence test pins down both the agreement and the exact divergence
// set.

// netsFor computes, for one ring in flow order, the electrical net id of
// each PE's upstream-facing port (net ids are the flow position of the
// net's driving Open PE; -1 everywhere when the ring has no Open PE and
// is a single undriven loop). It also returns the list of Open positions.
func netsFor(n int, open func(k int) bool) (upNet []int, heads []int) {
	upNet = make([]int, n)
	for k := 0; k < n; k++ {
		if open(k) {
			heads = append(heads, k)
		}
	}
	if len(heads) == 0 {
		for k := range upNet {
			upNet[k] = -1
		}
		return upNet, nil
	}
	// The net driven by head h spans the wire from h's downstream port
	// to the next head's upstream port: upstream ports of positions
	// h+1 ... nextHead (inclusive, wrapping).
	for hi, h := range heads {
		next := heads[(hi+1)%len(heads)]
		span := ((next-h)%n + n) % n
		if span == 0 {
			span = n
		}
		for t := 1; t <= span; t++ {
			upNet[(h+t)%n] = h
		}
	}
	return upNet, heads
}

// PortLevelBroadcast computes one Broadcast transaction with the
// port-level model. Lanes whose upstream port hangs on an undriven net
// keep their dst value. dst must not alias src.
func PortLevelBroadcast(n int, d Direction, open []bool, src, dst []Word) {
	checkPortArgs(n, len(open), len(src), len(dst))
	forEachRing(n, d, func(pos func(k int) int) {
		upNet, _ := netsFor(n, func(k int) bool { return open[pos(k)] })
		for k := 0; k < n; k++ {
			if h := upNet[k]; h >= 0 {
				dst[pos(k)] = src[pos(h)]
			}
		}
	})
}

// PortLevelWiredOr computes one WiredOr transaction with the port-level
// model: every PE drives its bit onto the net(s) its ports belong to (a
// Short PE's two ports are one net; an Open PE drives only its
// downstream port) and reads back the net on its upstream port. On a
// headless ring the single loop net carries the OR of all drives.
// dst must not alias drive.
func PortLevelWiredOr(n int, d Direction, open, drive, dst []bool) {
	checkPortArgs(n, len(open), len(drive), len(dst))
	forEachRing(n, d, func(pos func(k int) int) {
		upNet, heads := netsFor(n, func(k int) bool { return open[pos(k)] })
		if heads == nil {
			or := false
			for k := 0; k < n; k++ {
				or = or || drive[pos(k)]
			}
			for k := 0; k < n; k++ {
				dst[pos(k)] = or
			}
			return
		}
		// OR per net: the head drives its own net through its downstream
		// port; every Short PE on the net drives it too.
		netOr := make(map[int]bool, len(heads))
		for _, h := range heads {
			netOr[h] = drive[pos(h)]
		}
		for k := 0; k < n; k++ {
			if !open[pos(k)] && drive[pos(k)] {
				netOr[upNet[k]] = true
			}
		}
		for k := 0; k < n; k++ {
			dst[pos(k)] = netOr[upNet[k]]
		}
	})
}

// forEachRing iterates the n rings of direction d, handing the callback a
// flow-order position mapping.
func forEachRing(n int, d Direction, fn func(pos func(k int) int)) {
	for ring := 0; ring < n; ring++ {
		r := ring
		var pos func(k int) int
		switch d {
		case East:
			pos = func(k int) int { return r*n + k }
		case West:
			pos = func(k int) int { return r*n + n - 1 - k }
		case South:
			pos = func(k int) int { return k*n + r }
		case North:
			pos = func(k int) int { return (n-1-k)*n + r }
		default:
			panic(fmt.Sprintf("ppa: invalid direction %d", d))
		}
		fn(pos)
	}
}

func checkPortArgs(n int, lens ...int) {
	for _, l := range lens {
		if l != n*n {
			panic(fmt.Sprintf("ppa: port-level slice length %d, want %d", l, n*n))
		}
	}
}
