package ppa

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestPortLevelBroadcastEquivalence: the behavioral cut-ring Broadcast
// and the electrical port-level model agree on EVERY configuration.
func TestPortLevelBroadcastEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		d := Direction(rng.Intn(4))
		m := New(n, 10)
		open := make([]bool, n*n)
		src := make([]Word, n*n)
		behavioral := make([]Word, n*n)
		portLevel := make([]Word, n*n)
		for i := range open {
			open[i] = rng.Intn(3) == 0
			src[i] = Word(rng.Intn(1 << 10))
			behavioral[i] = Word(rng.Intn(1 << 10))
			portLevel[i] = behavioral[i]
		}
		m.Broadcast(d, open, src, behavioral)
		PortLevelBroadcast(n, d, open, src, portLevel)
		if !reflect.DeepEqual(behavioral, portLevel) {
			t.Fatalf("trial %d n=%d d=%v: models diverged\nopen=%v\nsrc=%v\nbehav=%v\nport =%v",
				trial, n, d, open, src, behavioral, portLevel)
		}
	}
}

// TestPortLevelWiredOrEquivalence: the models agree on every lane except
// the Open PEs of rings hosting two or more clusters — the exact
// divergence set documented in the package comment. Single-head rings
// (the only configuration the paper's algorithms build) agree everywhere.
func TestPortLevelWiredOrEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		d := Direction(rng.Intn(4))
		m := New(n, 8)
		open := make([]bool, n*n)
		drive := make([]bool, n*n)
		behavioral := make([]bool, n*n)
		portLevel := make([]bool, n*n)
		for i := range open {
			open[i] = rng.Intn(3) == 0
			drive[i] = rng.Intn(2) == 0
		}
		m.WiredOr(d, open, drive, behavioral)
		PortLevelWiredOr(n, d, open, drive, portLevel)

		// Count heads per ring to classify lanes.
		headsInRing := make([]int, n)
		for ring := 0; ring < n; ring++ {
			for k := 0; k < n; k++ {
				var p int
				if d.Horizontal() {
					p = ring*n + k
				} else {
					p = k*n + ring
				}
				if open[p] {
					headsInRing[ring]++
				}
			}
		}
		ringOf := func(p int) int {
			if d.Horizontal() {
				return p / n
			}
			return p % n
		}
		for p := 0; p < n*n; p++ {
			mayDiverge := open[p] && headsInRing[ringOf(p)] >= 2
			if behavioral[p] != portLevel[p] && !mayDiverge {
				t.Fatalf("trial %d n=%d d=%v: divergence outside the documented set at lane %d\nopen=%v\ndrive=%v\nbehav=%v\nport =%v",
					trial, n, d, p, open, drive, behavioral, portLevel)
			}
		}
	}
}

// TestPortLevelWiredOrSingleHeadExact: with at most one head per ring
// (the MCP configurations) the two models are identical everywhere.
func TestPortLevelWiredOrSingleHeadExact(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		d := Direction(rng.Intn(4))
		m := New(n, 8)
		open := make([]bool, n*n)
		drive := make([]bool, n*n)
		for ring := 0; ring < n; ring++ {
			if rng.Intn(4) != 0 { // some rings stay headless
				k := rng.Intn(n)
				if d.Horizontal() {
					open[ring*n+k] = true
				} else {
					open[k*n+ring] = true
				}
			}
		}
		for i := range drive {
			drive[i] = rng.Intn(2) == 0
		}
		behavioral := make([]bool, n*n)
		portLevel := make([]bool, n*n)
		m.WiredOr(d, open, drive, behavioral)
		PortLevelWiredOr(n, d, open, drive, portLevel)
		if !reflect.DeepEqual(behavioral, portLevel) {
			t.Fatalf("trial %d: single-head configs diverged", trial)
		}
	}
}

// TestPortLevelWiredOrDivergenceExists pins that the documented
// divergence is real, not vacuous: a two-cluster ring where the clusters
// carry different ORs.
func TestPortLevelWiredOrDivergenceExists(t *testing.T) {
	const n = 4
	m := New(n, 8)
	open := make([]bool, n*n)
	drive := make([]bool, n*n)
	// Row 0, flow East: heads at 0 and 2; only cluster {2,3} drives.
	open[0], open[2] = true, true
	drive[3] = true
	behavioral := make([]bool, n*n)
	portLevel := make([]bool, n*n)
	m.WiredOr(East, open, drive, behavioral)
	PortLevelWiredOr(n, East, open, drive, portLevel)
	// Behavioral: head 0 reads its own (silent) cluster -> false.
	// Port-level: head 0's read port hangs on cluster {2,3}'s wire -> true.
	if behavioral[0] != false || portLevel[0] != true {
		t.Errorf("head 0: behavioral %v (want false), port-level %v (want true)",
			behavioral[0], portLevel[0])
	}
	// Non-head lanes agree.
	for _, p := range []int{1, 3} {
		if behavioral[p] != portLevel[p] {
			t.Errorf("lane %d diverged unexpectedly", p)
		}
	}
}

func TestPortLevelPanicsOnBadLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PortLevelBroadcast(3, East, make([]bool, 4), make([]Word, 9), make([]Word, 9))
}
