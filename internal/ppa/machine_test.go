package ppa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func words(vs ...int64) []Word {
	ws := make([]Word, len(vs))
	for i, v := range vs {
		ws[i] = Word(v)
	}
	return ws
}

func TestNewValidation(t *testing.T) {
	for _, c := range []struct {
		n int
		h uint
	}{{0, 8}, {-1, 8}, {4, 0}, {4, 63}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", c.n, c.h)
				}
			}()
			New(c.n, c.h)
		}()
	}
	m := New(5, 10)
	if m.N() != 5 || m.Size() != 25 || m.Bits() != 10 || m.Inf() != 1023 {
		t.Errorf("accessors wrong: n=%d size=%d h=%d inf=%d", m.N(), m.Size(), m.Bits(), m.Inf())
	}
}

func TestIndexRoundTrip(t *testing.T) {
	m := New(7, 8)
	for r := 0; r < 7; r++ {
		for c := 0; c < 7; c++ {
			i := m.Index(r, c)
			gr, gc := m.RowCol(i)
			if gr != r || gc != c {
				t.Fatalf("RowCol(Index(%d,%d)) = (%d,%d)", r, c, gr, gc)
			}
		}
	}
}

// TestBroadcastSingleOpenReachesAll: one Open PE per ring must deliver its
// value to every PE of the ring (torus cut-ring semantics) — this is the
// property statement 10 of the paper's algorithm depends on.
func TestBroadcastSingleOpenReachesAll(t *testing.T) {
	const n = 4
	m := New(n, 8)
	src := make([]Word, n*n)
	open := make([]bool, n*n)
	dst := make([]Word, n*n)
	// Open the PEs of row 1; broadcast South along columns.
	for c := 0; c < n; c++ {
		open[m.Index(1, c)] = true
		src[m.Index(1, c)] = Word(10 + c)
	}
	m.Broadcast(South, open, src, dst)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if got, want := dst[m.Index(r, c)], Word(10+c); got != want {
				t.Errorf("dst[%d,%d] = %d, want %d", r, c, got, want)
			}
		}
	}
	if m.Metrics().BusCycles != 1 {
		t.Errorf("BusCycles = %d, want 1", m.Metrics().BusCycles)
	}
}

// TestBroadcastSegmentation: two Open PEs split a ring into two clusters;
// each PE must see the nearest Open strictly upstream.
func TestBroadcastSegmentation(t *testing.T) {
	const n = 6
	m := New(n, 8)
	src := make([]Word, n*n)
	open := make([]bool, n*n)
	dst := make([]Word, n*n)
	// Row 0, direction East. Opens at cols 1 and 4 with values 11 and 44.
	open[m.Index(0, 1)] = true
	src[m.Index(0, 1)] = 11
	open[m.Index(0, 4)] = true
	src[m.Index(0, 4)] = 44
	m.Broadcast(East, open, src, dst)
	// Cols 2,3,4 read 11 (col 4 is Open: its read port hangs on the
	// upstream cluster's wire). Cols 5,0,1 read 44 (wrap).
	want := map[int]Word{2: 11, 3: 11, 4: 11, 5: 44, 0: 44, 1: 44}
	for c, w := range want {
		if got := dst[m.Index(0, c)]; got != w {
			t.Errorf("col %d: got %d, want %d", c, got, w)
		}
	}
}

func TestBroadcastFloatingRingLeavesDstUnchanged(t *testing.T) {
	const n = 3
	m := New(n, 8)
	src := make([]Word, n*n)
	open := make([]bool, n*n)
	dst := words(1, 2, 3, 4, 5, 6, 7, 8, 9)
	// Only row 0 has an open switch; rows 1 and 2 float on East broadcast.
	open[m.Index(0, 0)] = true
	src[m.Index(0, 0)] = 99
	m.Broadcast(East, open, src, dst)
	for c := 0; c < n; c++ {
		if dst[m.Index(0, c)] != 99 {
			t.Errorf("row 0 col %d = %d, want 99", c, dst[m.Index(0, c)])
		}
	}
	for r := 1; r < n; r++ {
		for c := 0; c < n; c++ {
			if got, orig := dst[m.Index(r, c)], Word(r*n+c+1); got != orig {
				t.Errorf("floating ring row %d modified: col %d = %d, want %d", r, c, got, orig)
			}
		}
	}
}

func TestBroadcastAllDirections(t *testing.T) {
	const n = 5
	for _, d := range []Direction{North, East, South, West} {
		m := New(n, 16)
		src := make([]Word, n*n)
		open := make([]bool, n*n)
		dst := make([]Word, n*n)
		// Open the main diagonal; every ring then has exactly one head.
		for i := 0; i < n; i++ {
			open[m.Index(i, i)] = true
			src[m.Index(i, i)] = Word(100 + i)
		}
		m.Broadcast(d, open, src, dst)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				want := Word(100 + r) // rows: head at (r,r)
				if !d.Horizontal() {
					want = Word(100 + c) // columns: head at (c,c)
				}
				if got := dst[m.Index(r, c)]; got != want {
					t.Errorf("%v: dst[%d,%d] = %d, want %d", d, r, c, got, want)
				}
			}
		}
	}
}

func TestBroadcastInPlaceAliasing(t *testing.T) {
	const n = 4
	m := New(n, 8)
	v := make([]Word, n*n)
	open := make([]bool, n*n)
	for c := 0; c < n; c++ {
		open[m.Index(2, c)] = true
		v[m.Index(2, c)] = Word(20 + c)
	}
	m.Broadcast(South, open, v, v) // dst aliases src
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if got, want := v[m.Index(r, c)], Word(20+c); got != want {
				t.Errorf("aliased dst[%d,%d] = %d, want %d", r, c, got, want)
			}
		}
	}
}

// broadcastRef is an obviously-correct reference: for each PE walk
// upstream until an Open PE is found.
func broadcastRef(m *Machine, d Direction, open []bool, src, dst []Word) {
	n := m.N()
	out := append([]Word(nil), dst...)
	for i := 0; i < n; i++ {
		rg := m.ringFor(d, i)
		for k := 0; k < n; k++ {
			for back := 1; back <= n; back++ {
				j := ((k-back)%n + n) % n
				if open[rg.base+j*rg.stride] {
					out[rg.base+k*rg.stride] = src[rg.base+j*rg.stride]
					break
				}
			}
		}
	}
	copy(dst, out)
}

func TestBroadcastAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		m := New(n, 12)
		src := make([]Word, n*n)
		open := make([]bool, n*n)
		got := make([]Word, n*n)
		want := make([]Word, n*n)
		for i := range src {
			src[i] = Word(rng.Intn(1 << 12))
			open[i] = rng.Intn(3) == 0
			got[i] = Word(rng.Intn(1 << 12))
			want[i] = got[i]
		}
		d := Direction(rng.Intn(4))
		m.Broadcast(d, open, src, got)
		broadcastRef(m, d, open, src, want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d n=%d d=%v:\nopen=%v\nsrc=%v\ngot=%v\nwant=%v", trial, n, d, open, src, got, want)
		}
	}
}

// wiredOrRef is a reference implementation over explicit cluster sets.
func wiredOrRef(m *Machine, d Direction, open, drive, dst []bool) {
	n := m.N()
	for i := 0; i < n; i++ {
		rg := m.ringFor(d, i)
		heads := []int{}
		for k := 0; k < n; k++ {
			if open[rg.base+k*rg.stride] {
				heads = append(heads, k)
			}
		}
		if len(heads) == 0 {
			or := false
			for k := 0; k < n; k++ {
				or = or || drive[rg.base+k*rg.stride]
			}
			for k := 0; k < n; k++ {
				dst[rg.base+k*rg.stride] = or
			}
			continue
		}
		for hi, h := range heads {
			next := heads[(hi+1)%len(heads)]
			segLen := ((next-h)%n + n) % n
			if segLen == 0 {
				segLen = n
			}
			or := false
			for t := 0; t < segLen; t++ {
				or = or || drive[rg.base+((h+t)%n)*rg.stride]
			}
			for t := 0; t < segLen; t++ {
				dst[rg.base+((h+t)%n)*rg.stride] = or
			}
		}
	}
}

func TestWiredOrAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(8)
		m := New(n, 8)
		open := make([]bool, n*n)
		drive := make([]bool, n*n)
		got := make([]bool, n*n)
		want := make([]bool, n*n)
		for i := range open {
			open[i] = rng.Intn(4) == 0
			drive[i] = rng.Intn(3) == 0
		}
		d := Direction(rng.Intn(4))
		m.WiredOr(d, open, drive, got)
		wiredOrRef(m, d, open, drive, want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d n=%d d=%v:\nopen=%v\ndrive=%v\ngot=%v\nwant=%v", trial, n, d, open, drive, got, want)
		}
	}
}

func TestWiredOrSingleCluster(t *testing.T) {
	const n = 4
	m := New(n, 8)
	open := make([]bool, n*n)
	drive := make([]bool, n*n)
	dst := make([]bool, n*n)
	// Head at col n-1 of every row (the min() configuration), direction West.
	for r := 0; r < n; r++ {
		open[m.Index(r, n-1)] = true
	}
	drive[m.Index(2, 0)] = true // one driver in row 2
	m.WiredOr(West, open, drive, dst)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			want := r == 2
			if dst[m.Index(r, c)] != want {
				t.Errorf("dst[%d,%d] = %v, want %v", r, c, dst[m.Index(r, c)], want)
			}
		}
	}
	if m.Metrics().WiredOrCycles != 1 {
		t.Errorf("WiredOrCycles = %d, want 1", m.Metrics().WiredOrCycles)
	}
}

func TestShift(t *testing.T) {
	const n = 3
	m := New(n, 8)
	src := words(
		1, 2, 3,
		4, 5, 6,
		7, 8, 9)
	dst := make([]Word, n*n)
	m.Shift(East, src, dst)
	want := words(
		3, 1, 2,
		6, 4, 5,
		9, 7, 8)
	if !reflect.DeepEqual(dst, want) {
		t.Errorf("Shift East = %v, want %v", dst, want)
	}
	m.Shift(South, src, dst)
	want = words(
		7, 8, 9,
		1, 2, 3,
		4, 5, 6)
	if !reflect.DeepEqual(dst, want) {
		t.Errorf("Shift South = %v, want %v", dst, want)
	}
	if m.Metrics().ShiftSteps != 2 {
		t.Errorf("ShiftSteps = %d, want 2", m.Metrics().ShiftSteps)
	}
}

func TestShiftRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		m := New(n, 16)
		src := make([]Word, n*n)
		for i := range src {
			src[i] = Word(rng.Intn(1 << 16))
		}
		v := append([]Word(nil), src...)
		// A shift followed by its opposite is the identity.
		for _, d := range []Direction{North, East, South, West} {
			m.Shift(d, v, v)
			m.Shift(d.Opposite(), v, v)
		}
		// n shifts in the same direction wrap to the identity.
		for k := 0; k < n; k++ {
			m.Shift(West, v, v)
		}
		return reflect.DeepEqual(v, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGlobalOr(t *testing.T) {
	const n = 4
	m := New(n, 8)
	pred := make([]bool, n*n)
	if m.GlobalOr(pred) {
		t.Error("GlobalOr of all-false = true")
	}
	pred[7] = true
	if !m.GlobalOr(pred) {
		t.Error("GlobalOr with one true = false")
	}
	if m.Metrics().GlobalOrOps != 2 {
		t.Errorf("GlobalOrOps = %d, want 2", m.Metrics().GlobalOrOps)
	}
}

// TestWorkersDeterminism: any worker count must produce bit-identical
// results to the serial machine.
func TestWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(16)
		src := make([]Word, n*n)
		open := make([]bool, n*n)
		drive := make([]bool, n*n)
		for i := range src {
			src[i] = Word(rng.Intn(256))
			open[i] = rng.Intn(4) == 0
			drive[i] = rng.Intn(2) == 0
		}
		d := Direction(rng.Intn(4))

		run := func(workers int) ([]Word, []bool, Metrics) {
			m := New(n, 8, WithWorkers(workers))
			w := make([]Word, n*n)
			b := make([]bool, n*n)
			m.Broadcast(d, open, src, w)
			m.WiredOr(d, open, drive, b)
			m.Shift(d, w, w)
			return w, b, m.Metrics()
		}
		w1, b1, m1 := run(1)
		for _, workers := range []int{2, 4, 9} {
			wk, bk, mk := run(workers)
			if !reflect.DeepEqual(w1, wk) || !reflect.DeepEqual(b1, bk) || m1 != mk {
				t.Fatalf("workers=%d diverged from serial (n=%d, d=%v)", workers, n, d)
			}
		}
	}
}

func TestLengthValidationPanics(t *testing.T) {
	m := New(4, 8)
	short := make([]Word, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("Broadcast with short slice did not panic")
		}
	}()
	m.Broadcast(East, make([]bool, 16), short, make([]Word, 16))
}

func TestMetricsAccounting(t *testing.T) {
	m := New(4, 8)
	src := make([]Word, 16)
	open := make([]bool, 16)
	open[0] = true
	b := make([]bool, 16)
	m.Broadcast(East, open, src, src)
	m.WiredOr(East, open, b, b)
	m.Shift(North, src, src)
	m.GlobalOr(b)
	m.CountPE(16)
	m.CountInstr()
	got := m.Metrics()
	want := Metrics{BusCycles: 1, WiredOrCycles: 1, ShiftSteps: 1, GlobalOrOps: 1, PEOps: 16, Instructions: 1}
	if got != want {
		t.Errorf("metrics = %+v, want %+v", got, want)
	}
	if got.CommCycles() != 4 {
		t.Errorf("CommCycles = %d, want 4", got.CommCycles())
	}
	m.ResetMetrics()
	if m.Metrics() != (Metrics{}) {
		t.Error("ResetMetrics did not zero metrics")
	}
}

func TestMetricsAddSubString(t *testing.T) {
	a := Metrics{BusCycles: 1, WiredOrCycles: 2, ShiftSteps: 3, RouterCycles: 4, GlobalOrOps: 5, PEOps: 6, Instructions: 7}
	b := Metrics{BusCycles: 10, WiredOrCycles: 20, ShiftSteps: 30, RouterCycles: 40, GlobalOrOps: 50, PEOps: 60, Instructions: 70}
	sum := a.Add(b)
	if sum.Sub(b) != a || sum.Sub(a) != b {
		t.Error("Add/Sub not inverse")
	}
	if sum.CommCycles() != 11+22+33+44+55 {
		t.Errorf("CommCycles = %d", sum.CommCycles())
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

// TestChargeBroadcastMatchesBroadcastBits pins the shadow-charge contract
// of ChargeBroadcast: metrics deltas and observer events identical to a
// real BroadcastBits with the same configuration, on healthy and faulty
// machines alike — only the data movement is absent.
func TestChargeBroadcastMatchesBroadcastBits(t *testing.T) {
	const n = 6
	open := NewBitset(n * n)
	open.FillRange(2*n, 2*n+n, true)
	for _, faulty := range []bool{false, true} {
		real := New(n, 4)
		shadow := New(n, 4)
		if faulty {
			real.InjectFault(3, StuckOpen)
			shadow.InjectFault(3, StuckOpen)
		}
		var realEvs, shadowEvs []Event
		real.SetObserver(func(e Event) { realEvs = append(realEvs, e) })
		shadow.SetObserver(func(e Event) { shadowEvs = append(shadowEvs, e) })
		src := make([]Word, n*n)
		dst := make([]Word, n*n)
		for _, d := range []Direction{East, West, North, South} {
			real.BroadcastBits(d, open, src, dst)
			shadow.ChargeBroadcast(d, open)
		}
		if real.Metrics() != shadow.Metrics() {
			t.Fatalf("faulty=%v: metrics diverge: real %v, shadow %v",
				faulty, real.Metrics(), shadow.Metrics())
		}
		if len(realEvs) != len(shadowEvs) {
			t.Fatalf("faulty=%v: event counts diverge", faulty)
		}
		for i := range realEvs {
			if realEvs[i] != shadowEvs[i] {
				t.Fatalf("faulty=%v event %d: real %+v, shadow %+v",
					faulty, i, realEvs[i], shadowEvs[i])
			}
		}
	}
}

// TestChargeWiredOrMatchesWiredOrBits pins the same shadow-charge
// contract for the wired-OR counterpart used by core's warm re-solve.
func TestChargeWiredOrMatchesWiredOrBits(t *testing.T) {
	const n = 6
	open := NewBitset(n * n)
	for i := 0; i < n; i++ {
		open.Set(i*n + (n - 1))
	}
	for _, faulty := range []bool{false, true} {
		real := New(n, 4)
		shadow := New(n, 4)
		if faulty {
			real.InjectFault(3, StuckOpen)
			shadow.InjectFault(3, StuckOpen)
		}
		var realEvs, shadowEvs []Event
		real.SetObserver(func(e Event) { realEvs = append(realEvs, e) })
		shadow.SetObserver(func(e Event) { shadowEvs = append(shadowEvs, e) })
		drive := NewBitset(n * n)
		dst := NewBitset(n * n)
		for _, d := range []Direction{East, West, North, South} {
			real.WiredOrBits(d, open, drive, dst)
			shadow.ChargeWiredOr(d, open)
		}
		if real.Metrics() != shadow.Metrics() {
			t.Fatalf("faulty=%v: metrics diverge: real %v, shadow %v",
				faulty, real.Metrics(), shadow.Metrics())
		}
		if len(realEvs) != len(shadowEvs) {
			t.Fatalf("faulty=%v: event counts diverge", faulty)
		}
		for i := range realEvs {
			if realEvs[i] != shadowEvs[i] {
				t.Fatalf("faulty=%v event %d: real %+v, shadow %+v",
					faulty, i, realEvs[i], shadowEvs[i])
			}
		}
	}
}
