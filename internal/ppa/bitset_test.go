package ppa

import (
	"math/rand"
	"testing"
)

func randBools(rng *rand.Rand, n int, p float64) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = rng.Float64() < p
	}
	return b
}

func TestBitsetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 5, 63, 64, 65, 100, 128, 4096} {
		data := randBools(rng, n, 0.4)
		b := NewBitsetFromBools(data)
		if b.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, b.Len())
		}
		got := b.Bools()
		for i := range data {
			if got[i] != data[i] || b.Get(i) != data[i] {
				t.Fatalf("n=%d lane %d: got %v want %v", n, i, got[i], data[i])
			}
		}
		// Tail invariant.
		if n&63 != 0 && len(b.Words()) > 0 {
			if b.Words()[len(b.Words())-1]&^b.tailMask() != 0 {
				t.Fatalf("n=%d: tail bits set", n)
			}
		}
	}
}

func TestBitsetKernelsMatchLaneLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		xb, yb := randBools(rng, n, 0.5), randBools(rng, n, 0.5)
		x, y := NewBitsetFromBools(xb), NewBitsetFromBools(yb)
		dst := NewBitset(n)

		check := func(name string, want func(a, b bool) bool) {
			got := dst.Bools()
			for i := 0; i < n; i++ {
				if got[i] != want(xb[i], yb[i]) {
					t.Fatalf("n=%d %s lane %d: got %v", n, name, i, got[i])
				}
			}
		}
		dst.And(x, y)
		check("and", func(a, b bool) bool { return a && b })
		dst.AndNot(x, y)
		check("andnot", func(a, b bool) bool { return a && !b })
		dst.Or(x, y)
		check("or", func(a, b bool) bool { return a || b })
		dst.Xor(x, y)
		check("xor", func(a, b bool) bool { return a != b })
		dst.Not(x)
		check("not", func(a, b bool) bool { return !a })

		count := 0
		for _, v := range xb {
			if v {
				count++
			}
		}
		if x.Count() != count {
			t.Fatalf("n=%d: Count=%d want %d", n, x.Count(), count)
		}
		if x.Any() != (count > 0) {
			t.Fatalf("n=%d: Any=%v", n, x.Any())
		}
	}
}

func TestBitsetRangeOpsMatchLaneLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(180)
		data := randBools(rng, n, 0.15)
		b := NewBitsetFromBools(data)
		lo := rng.Intn(n + 1)
		hi := lo + rng.Intn(n+1-lo)

		wantAny := false
		for i := lo; i < hi; i++ {
			wantAny = wantAny || data[i]
		}
		if b.AnyRange(lo, hi) != wantAny {
			t.Fatalf("n=%d [%d,%d): AnyRange=%v want %v", n, lo, hi, b.AnyRange(lo, hi), wantAny)
		}

		wantNext, wantPrev := -1, -1
		for i := lo; i < hi; i++ {
			if data[i] {
				if wantNext == -1 {
					wantNext = i
				}
				wantPrev = i
			}
		}
		if got := b.NextSet(lo, hi); got != wantNext {
			t.Fatalf("n=%d [%d,%d): NextSet=%d want %d", n, lo, hi, got, wantNext)
		}
		if got := b.PrevSet(lo, hi); got != wantPrev {
			t.Fatalf("n=%d [%d,%d): PrevSet=%d want %d", n, lo, hi, got, wantPrev)
		}

		v := rng.Intn(2) == 0
		b.FillRange(lo, hi, v)
		got := b.Bools()
		for i := 0; i < n; i++ {
			want := data[i]
			if i >= lo && i < hi {
				want = v
			}
			if got[i] != want {
				t.Fatalf("n=%d FillRange[%d,%d)=%v lane %d: got %v want %v", n, lo, hi, v, i, got[i], want)
			}
		}
	}
}

func TestTransposeBitsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 7, 8, 16, 33, 64, 65, 128} {
		data := randBools(rng, n*n, 0.3)
		src := NewBitsetFromBools(data)
		dst := NewBitset(n * n)
		// Dirty dst to check the full overwrite.
		dst.Fill(true)
		TransposeBits(dst, src, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if dst.Get(c*n+r) != data[r*n+c] {
					t.Fatalf("n=%d: transpose bit (%d,%d) wrong", n, r, c)
				}
			}
		}
	}
}

func TestBitsetFillStrideMatchesLaneLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(200)
		data := randBools(rng, n, 0.3)
		b := NewBitsetFromBools(data)
		start := rng.Intn(n)
		stride := 1 + rng.Intn(n)
		count := rng.Intn((n-start-1)/stride + 2) // may be 0
		v := rng.Intn(2) == 0

		b.FillStride(start, stride, count, v)
		for i, k := start, 0; k < count; i, k = i+stride, k+1 {
			data[i] = v
		}
		got := b.Bools()
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("n=%d start=%d stride=%d count=%d v=%v lane %d: got %v",
					n, start, stride, count, v, i, got[i])
			}
		}
	}
	b := NewBitset(64)
	for _, bad := range []func(){
		func() { b.FillStride(0, 0, 2, true) },
		func() { b.FillStride(60, 8, 2, true) },
		func() { b.FillStride(-1, 1, 1, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range FillStride did not panic")
				}
			}()
			bad()
		}()
	}
}
