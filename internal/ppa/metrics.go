package ppa

import "fmt"

// Metrics accumulates the abstract cost of a simulated computation. The
// unit-cost assumptions mirror the hardware argument of Maresca/Li/Baglietto
// (ICPP'89): a segmented-bus transaction completes in one machine cycle
// regardless of how many Short switch boxes it traverses.
//
// The same struct shape is reused by the comparator architectures
// (hypercube, GCN, plain mesh) so that experiment tables can be assembled
// uniformly; fields that do not apply to an architecture stay zero.
type Metrics struct {
	// BusCycles counts word-wide segmented-bus broadcasts (PPA, GCN).
	BusCycles int64
	// WiredOrCycles counts one-bit wired-OR bus transactions (PPA, GCN);
	// the bit-serial min issues one per bit plane.
	WiredOrCycles int64
	// ShiftSteps counts nearest-neighbour word moves (PPA shift, and the
	// only communication available to the plain mesh).
	ShiftSteps int64
	// RouterCycles counts hypercube dimension-exchange word moves.
	RouterCycles int64
	// GlobalOrOps counts uses of the global-OR line into the controller
	// (loop-termination tests).
	GlobalOrOps int64
	// PEOps counts local ALU operations summed over *active* PEs.
	PEOps int64
	// Instructions counts SIMD instructions issued by the controller.
	Instructions int64
}

// CommCycles is the architecture's dominant communication cost: every
// bus, wired-OR, shift, router and global-OR transaction. It is the column
// compared across architectures in experiment E3.
func (m Metrics) CommCycles() int64 {
	return m.BusCycles + m.WiredOrCycles + m.ShiftSteps + m.RouterCycles + m.GlobalOrOps
}

// Add returns the field-wise sum of m and o.
func (m Metrics) Add(o Metrics) Metrics {
	return Metrics{
		BusCycles:     m.BusCycles + o.BusCycles,
		WiredOrCycles: m.WiredOrCycles + o.WiredOrCycles,
		ShiftSteps:    m.ShiftSteps + o.ShiftSteps,
		RouterCycles:  m.RouterCycles + o.RouterCycles,
		GlobalOrOps:   m.GlobalOrOps + o.GlobalOrOps,
		PEOps:         m.PEOps + o.PEOps,
		Instructions:  m.Instructions + o.Instructions,
	}
}

// Sub returns the field-wise difference m - o, useful for measuring the
// cost of a region of a computation.
func (m Metrics) Sub(o Metrics) Metrics {
	return Metrics{
		BusCycles:     m.BusCycles - o.BusCycles,
		WiredOrCycles: m.WiredOrCycles - o.WiredOrCycles,
		ShiftSteps:    m.ShiftSteps - o.ShiftSteps,
		RouterCycles:  m.RouterCycles - o.RouterCycles,
		GlobalOrOps:   m.GlobalOrOps - o.GlobalOrOps,
		PEOps:         m.PEOps - o.PEOps,
		Instructions:  m.Instructions - o.Instructions,
	}
}

func (m Metrics) String() string {
	return fmt.Sprintf("bus=%d wiredOR=%d shift=%d router=%d globalOR=%d peOps=%d instr=%d (comm=%d)",
		m.BusCycles, m.WiredOrCycles, m.ShiftSteps, m.RouterCycles, m.GlobalOrOps, m.PEOps, m.Instructions, m.CommCycles())
}
