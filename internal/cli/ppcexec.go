package cli

import (
	"flag"
	"io"

	"ppamcp/internal/ppclang"
)

// PPCExec is the executor-selection configuration shared by the tools
// that run PPC programs (cmd/ppcrun, cmd/mcprun). Programs run on the
// bytecode VM by default; -reference falls back to the tree-walking
// interpreter, the retained semantic oracle.
type PPCExec struct {
	Reference bool
	Fuel      int64
}

// Register installs the PPC executor flags on fs.
func (p *PPCExec) Register(fs *flag.FlagSet) {
	fs.BoolVar(&p.Reference, "reference", false, "run PPC on the tree-walking reference interpreter instead of the bytecode VM")
	fs.Int64Var(&p.Fuel, "fuel", 0, "PPC statement budget per entry-point call (0 = unlimited)")
}

// Options translates the flags into executor options, directing program
// output to out.
func (p *PPCExec) Options(out io.Writer) []ppclang.Option {
	opts := []ppclang.Option{ppclang.WithOutput(out), ppclang.WithReference(p.Reference)}
	if p.Fuel > 0 {
		opts = append(opts, ppclang.WithFuel(p.Fuel))
	}
	return opts
}
