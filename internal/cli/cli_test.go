package cli

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func parse(t *testing.T, args ...string) *Workload {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var w Workload
	w.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &w
}

func TestBuildGenerators(t *testing.T) {
	cases := []struct {
		args      []string
		wantN     int
		wantEdges int // -1 = don't check
	}{
		{[]string{"-gen", "chain", "-n", "5", "-maxw", "2"}, 5, 4},
		{[]string{"-gen", "ring", "-n", "4"}, 4, 4},
		{[]string{"-gen", "star", "-n", "6"}, 6, 5},
		{[]string{"-gen", "complete", "-n", "4"}, 4, 12},
		{[]string{"-gen", "random", "-n", "7", "-density", "0.5", "-seed", "3"}, 7, -1},
		{[]string{"-gen", "connected", "-n", "7"}, 7, -1},
		{[]string{"-gen", "diameter", "-n", "8", "-p", "3"}, 8, -1},
		{[]string{"-gen", "diameter", "-n", "8"}, 8, -1}, // default p = n-1
		{[]string{"-gen", "grid", "-rows", "3", "-cols", "4"}, 12, -1},
		{[]string{"-gen", "grid"}, 16, -1}, // default 4x4
		{[]string{"-gen", "smallworld", "-n", "12"}, 12, -1},
		{[]string{"-gen", "smallworld", "-n", "4"}, 4, -1}, // k falls back to 1
		{[]string{"-gen", "scalefree", "-n", "10"}, 10, -1},
		{[]string{"-gen", "scalefree", "-n", "2"}, 2, -1}, // m falls back to 1
	}
	for _, c := range cases {
		g, err := parse(t, c.args...).Build()
		if err != nil {
			t.Errorf("%v: %v", c.args, err)
			continue
		}
		if g.N != c.wantN {
			t.Errorf("%v: n = %d, want %d", c.args, g.N, c.wantN)
		}
		if c.wantEdges >= 0 && g.Edges() != c.wantEdges {
			t.Errorf("%v: edges = %d, want %d", c.args, g.Edges(), c.wantEdges)
		}
	}
}

func TestBuildUnknownGenerator(t *testing.T) {
	if _, err := parse(t, "-gen", "hypergraph").Build(); err == nil {
		t.Error("unknown generator accepted")
	}
}

func TestBuildFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("n 3\ne 0 1 5\ne 1 2 7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := parse(t, "-graph", path).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.At(0, 1) != 5 || g.At(1, 2) != 7 {
		t.Errorf("loaded graph wrong: %v", g)
	}
}

func TestBuildFromMissingFile(t *testing.T) {
	if _, err := parse(t, "-graph", "/nonexistent/g.txt").Build(); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildFromMalformedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(path, []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parse(t, "-graph", path).Build(); err == nil {
		t.Error("malformed file accepted")
	}
}

// TestBuildBadParameters covers the Build error paths: invalid generator
// parameters must come back as errors, not generator panics (these reach
// long-running servers via JSON specs, where a panic would be an outage).
func TestBuildBadParameters(t *testing.T) {
	cases := []struct {
		name string
		w    Workload
	}{
		{"zero n", Workload{Gen: "random", N: 0, Density: 0.3, MaxW: 9}},
		{"negative n", Workload{Gen: "chain", N: -4, MaxW: 9}},
		{"huge n", Workload{Gen: "random", N: 1 << 20, Density: 0.1, MaxW: 9}},
		{"density above 1", Workload{Gen: "random", N: 8, Density: 1.5, MaxW: 9}},
		{"negative density", Workload{Gen: "random", N: 8, Density: -0.1, MaxW: 9}},
		{"zero maxw", Workload{Gen: "chain", N: 8, MaxW: 0}},
		{"diameter p too large", Workload{Gen: "diameter", N: 8, MaxW: 9, P: 8}},
		{"diameter n=1", Workload{Gen: "diameter", N: 1, MaxW: 9}},
		{"negative grid dims", Workload{Gen: "grid", Rows: -2, Cols: 3, N: 8, MaxW: 9}},
		{"huge grid", Workload{Gen: "grid", Rows: 5000, Cols: 5000, N: 8, MaxW: 9}},
		{"unknown generator", Workload{Gen: "hypergraph", N: 8, MaxW: 9}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: Build panicked: %v", c.name, r)
				}
			}()
			if _, err := c.w.Build(); err == nil {
				t.Errorf("%s: Build accepted %+v", c.name, c.w)
			}
		}()
	}
}

func TestBuildEmptyGenDefaultsToRandom(t *testing.T) {
	w := Default()
	w.Gen = ""
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 8 {
		t.Errorf("n = %d, want the default 8", g.N)
	}
}

// TestWorkloadJSONSpec checks the wire-spec reading of Workload: fields
// unmarshal over Default() so omitted ones keep flag defaults, and File
// is not settable remotely.
func TestWorkloadJSONSpec(t *testing.T) {
	w := Default()
	if err := json.Unmarshal([]byte(`{"gen":"chain","n":5,"maxw":2,"file":"/etc/passwd"}`), &w); err != nil {
		t.Fatal(err)
	}
	if w.File != "" {
		t.Fatalf("File = %q set via JSON; must be unreachable from the wire", w.File)
	}
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 5 || g.Edges() != 4 {
		t.Errorf("chain spec built %v", g)
	}
	// Omitted fields keep defaults.
	w2 := Default()
	if err := json.Unmarshal([]byte(`{"gen":"connected"}`), &w2); err != nil {
		t.Fatal(err)
	}
	if w2.N != 8 || w2.MaxW != 9 || w2.Density != 0.3 {
		t.Errorf("defaults lost: %+v", w2)
	}
}
