// Package cli holds the workload-selection flags shared by the command
// line tools (cmd/mcprun, cmd/ppcrun, cmd/ppaload): every tool accepts
// either a graph file or a named generator with its parameters. The same
// struct doubles as the JSON generator spec the solver service accepts
// (internal/serve), which is why every generator field carries a json tag
// — and why File deliberately does not: a remote request must never be
// able to read files off the server.
package cli

import (
	"flag"
	"fmt"
	"os"

	"ppamcp/internal/graph"
)

// Workload is the parsed graph-selection configuration.
type Workload struct {
	File    string  `json:"-"`
	Gen     string  `json:"gen,omitempty"`
	N       int     `json:"n,omitempty"`
	Density float64 `json:"density,omitempty"`
	MaxW    int64   `json:"maxw,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
	P       int     `json:"p,omitempty"`
	Rows    int     `json:"rows,omitempty"`
	Cols    int     `json:"cols,omitempty"`
}

// Register installs the workload flags on fs.
func (w *Workload) Register(fs *flag.FlagSet) {
	fs.StringVar(&w.File, "graph", "", "graph file (format: 'n <count>' header, 'e <from> <to> <w>' lines)")
	fs.StringVar(&w.Gen, "gen", "random", "generator when no -graph file: random|connected|chain|ring|star|diameter|grid|complete|smallworld|scalefree")
	fs.IntVar(&w.N, "n", 8, "vertex count for generators")
	fs.Float64Var(&w.Density, "density", 0.3, "edge density for random generators")
	fs.Int64Var(&w.MaxW, "maxw", 9, "maximum edge weight for generators")
	fs.Int64Var(&w.Seed, "seed", 1, "generator seed")
	fs.IntVar(&w.P, "p", 0, "exact MCP diameter for -gen diameter (default n-1)")
	fs.IntVar(&w.Rows, "rows", 0, "grid rows for -gen grid (default sqrt-ish of n)")
	fs.IntVar(&w.Cols, "cols", 0, "grid cols for -gen grid")
}

// Default returns the generator defaults the flags advertise. It is the
// base a JSON generator spec is unmarshalled over, so an omitted field
// means "the default", exactly as an omitted flag does.
func Default() Workload {
	return Workload{Gen: "random", N: 8, Density: 0.3, MaxW: 9, Seed: 1}
}

// Build loads or generates the graph. Parameters are validated here —
// not left to the generators' panics — so every caller (one-shot CLI or
// long-running server) gets a clean error for bad input.
func (w *Workload) Build() (*graph.Graph, error) {
	if w.File != "" {
		f, err := os.Open(w.File)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Parse(f)
	}
	if w.N < 1 {
		return nil, fmt.Errorf("vertex count %d < 1", w.N)
	}
	if w.N > graph.MaxParseVertices {
		return nil, fmt.Errorf("vertex count %d exceeds %d", w.N, graph.MaxParseVertices)
	}
	if w.Density < 0 || w.Density > 1 {
		return nil, fmt.Errorf("density %v outside [0,1]", w.Density)
	}
	if w.MaxW < 1 {
		return nil, fmt.Errorf("maximum weight %d < 1", w.MaxW)
	}
	gen := w.Gen
	if gen == "" {
		gen = "random"
	}
	switch gen {
	case "random":
		return graph.GenRandom(w.N, w.Density, w.MaxW, w.Seed), nil
	case "connected":
		return graph.GenRandomConnected(w.N, w.Density, w.MaxW, w.Seed), nil
	case "chain":
		return graph.GenChain(w.N, w.MaxW), nil
	case "ring":
		return graph.GenRing(w.N, w.MaxW), nil
	case "star":
		return graph.GenStar(w.N, w.MaxW), nil
	case "complete":
		return graph.GenComplete(w.N, w.MaxW, w.Seed), nil
	case "diameter":
		p := w.P
		if p <= 0 {
			p = w.N - 1
		}
		if w.N < 2 || p > w.N-1 {
			return nil, fmt.Errorf("diameter p=%d needs 1 <= p <= n-1 (n=%d)", p, w.N)
		}
		return graph.GenDiameter(w.N, p), nil
	case "smallworld":
		k := 2
		if 2*k >= w.N {
			k = 1
		}
		return graph.GenSmallWorld(w.N, k, 0.2, w.MaxW, w.Seed), nil
	case "scalefree":
		m := 2
		if w.N <= m {
			m = 1
		}
		return graph.GenScaleFree(w.N, m, w.MaxW, w.Seed), nil
	case "grid":
		rows, cols := w.Rows, w.Cols
		if rows < 0 || cols < 0 {
			return nil, fmt.Errorf("grid dims %dx%d must be non-negative", rows, cols)
		}
		if rows == 0 {
			rows = 4
		}
		if cols == 0 {
			cols = rows
		}
		if rows*cols > graph.MaxParseVertices {
			return nil, fmt.Errorf("grid %dx%d exceeds %d vertices", rows, cols, graph.MaxParseVertices)
		}
		g, _ := graph.GenGrid(graph.GridSpec{Rows: rows, Cols: cols, MaxW: w.MaxW, Seed: w.Seed})
		return g, nil
	}
	return nil, fmt.Errorf("unknown generator %q", gen)
}
