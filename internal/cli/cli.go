// Package cli holds the workload-selection flags shared by the command
// line tools (cmd/mcprun, cmd/ppcrun): every tool accepts either a graph
// file or a named generator with its parameters.
package cli

import (
	"flag"
	"fmt"
	"os"

	"ppamcp/internal/graph"
)

// Workload is the parsed graph-selection configuration.
type Workload struct {
	File    string
	Gen     string
	N       int
	Density float64
	MaxW    int64
	Seed    int64
	P       int
	Rows    int
	Cols    int
}

// Register installs the workload flags on fs.
func (w *Workload) Register(fs *flag.FlagSet) {
	fs.StringVar(&w.File, "graph", "", "graph file (format: 'n <count>' header, 'e <from> <to> <w>' lines)")
	fs.StringVar(&w.Gen, "gen", "random", "generator when no -graph file: random|connected|chain|ring|star|diameter|grid|complete|smallworld|scalefree")
	fs.IntVar(&w.N, "n", 8, "vertex count for generators")
	fs.Float64Var(&w.Density, "density", 0.3, "edge density for random generators")
	fs.Int64Var(&w.MaxW, "maxw", 9, "maximum edge weight for generators")
	fs.Int64Var(&w.Seed, "seed", 1, "generator seed")
	fs.IntVar(&w.P, "p", 0, "exact MCP diameter for -gen diameter (default n-1)")
	fs.IntVar(&w.Rows, "rows", 0, "grid rows for -gen grid (default sqrt-ish of n)")
	fs.IntVar(&w.Cols, "cols", 0, "grid cols for -gen grid")
}

// Build loads or generates the graph.
func (w *Workload) Build() (*graph.Graph, error) {
	if w.File != "" {
		f, err := os.Open(w.File)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.Parse(f)
	}
	switch w.Gen {
	case "random":
		return graph.GenRandom(w.N, w.Density, w.MaxW, w.Seed), nil
	case "connected":
		return graph.GenRandomConnected(w.N, w.Density, w.MaxW, w.Seed), nil
	case "chain":
		return graph.GenChain(w.N, w.MaxW), nil
	case "ring":
		return graph.GenRing(w.N, w.MaxW), nil
	case "star":
		return graph.GenStar(w.N, w.MaxW), nil
	case "complete":
		return graph.GenComplete(w.N, w.MaxW, w.Seed), nil
	case "diameter":
		p := w.P
		if p <= 0 {
			p = w.N - 1
		}
		return graph.GenDiameter(w.N, p), nil
	case "smallworld":
		k := 2
		if 2*k >= w.N {
			k = 1
		}
		return graph.GenSmallWorld(w.N, k, 0.2, w.MaxW, w.Seed), nil
	case "scalefree":
		m := 2
		if w.N <= m {
			m = 1
		}
		return graph.GenScaleFree(w.N, m, w.MaxW, w.Seed), nil
	case "grid":
		rows, cols := w.Rows, w.Cols
		if rows <= 0 {
			rows = 4
		}
		if cols <= 0 {
			cols = rows
		}
		g, _ := graph.GenGrid(graph.GridSpec{Rows: rows, Cols: cols, MaxW: w.MaxW, Seed: w.Seed})
		return g, nil
	}
	return nil, fmt.Errorf("unknown generator %q", w.Gen)
}
