package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableFormat(t *testing.T) {
	tb := Table{
		ID:     "T0",
		Title:  "demo",
		Claim:  "c",
		Header: []string{"a", "bb"},
		Notes:  []string{"a note"},
	}
	tb.AddRow(1, "xyz")
	out := tb.Format()
	for _, want := range []string{"T0 — demo", "claim: c", "a", "bb", "xyz", "note: a note", "--"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{ID: "T1", Title: "demo", Claim: "c", Header: []string{"a", "b"}, Notes: []string{"nb"}}
	tb.AddRow(1, 2)
	out := tb.Markdown()
	for _, want := range []string{"## T1 — demo", "**Claim:** c", "| a | b |", "|---|---|", "| 1 | 2 |", "*nb*"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func parseCell(t *testing.T, s string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number", s)
	}
	return v
}

// TestE1Shape asserts the reproduced claim, not just that code runs: the
// min cost is flat in n and exactly h+2 in comm cycles.
func TestE1Shape(t *testing.T) {
	tb := RunE1()
	if len(tb.Rows) != len(E1Widths)*len(E1Sides) {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		h := parseCell(t, row[0])
		comm := parseCell(t, row[4])
		if comm != h+2 {
			t.Errorf("h=%s n=%s: comm %d != h+2", row[0], row[1], comm)
		}
	}
}

// TestE2Shape: comm cycles are exactly linear in p at fixed h and match
// the analytic model.
func TestE2Shape(t *testing.T) {
	tb := RunE2()
	for _, row := range tb.Rows {
		p := parseCell(t, row[1])
		iters := parseCell(t, row[3])
		comm := parseCell(t, row[6])
		model := parseCell(t, row[7])
		if iters != p {
			t.Errorf("p=%d: iterations %d", p, iters)
		}
		_ = iters
		if comm != model { // model = 2ph (wired-OR) + 7p+2 (bus) + p (global-OR)
			t.Errorf("p=%d: comm %d, model %d", p, comm, model)
		}
	}
}

// TestE3Shape: mesh shifts grow superlinearly with n while PPA comm grows
// only with p*h; the largest-n row must show mesh >> PPA.
func TestE3Shape(t *testing.T) {
	tb := RunE3()
	if len(tb.Rows) != len(E3Sides) {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	last := tb.Rows[len(tb.Rows)-1]
	h := parseCell(t, last[1])
	ppaComm := parseCell(t, last[3])
	gcnComm := parseCell(t, last[4])
	cubeWord := parseCell(t, last[5])
	cubeBit := parseCell(t, last[6])
	meshShifts := parseCell(t, last[7])
	if meshShifts <= ppaComm {
		t.Errorf("mesh (%d) did not lose to PPA (%d) at n=%s", meshShifts, ppaComm, last[0])
	}
	// Parity: GCN within a small constant factor of PPA.
	if gcnComm > ppaComm || ppaComm > 2*gcnComm {
		t.Errorf("PPA %d vs GCN %d outside the expected parity band", ppaComm, gcnComm)
	}
	// The bit-serial hypercube column is exactly h x the word-wide one.
	if cubeBit != h*cubeWord {
		t.Errorf("bit-serial cube %d != h(%d) x word cube %d", cubeBit, h, cubeWord)
	}
}

// TestE4Shape: the broadcast speedup is exactly n-1.
func TestE4Shape(t *testing.T) {
	tb := RunE4()
	for _, row := range tb.Rows {
		n := parseCell(t, row[0])
		bus := parseCell(t, row[1])
		shifts := parseCell(t, row[2])
		if bus != 1 || shifts != n-1 {
			t.Errorf("n=%d: bus %d shifts %d", n, bus, shifts)
		}
	}
}

// TestE5Shape: every workload reports equal outputs and equal cycles.
func TestE5Shape(t *testing.T) {
	tb := RunE5()
	if len(tb.Rows) != len(E5Cases) {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[5] != "true" || row[6] != "true" {
			t.Errorf("workload %s: outputs equal %s, cycles equal %s", row[0], row[5], row[6])
		}
	}
}

// TestE6Shape: the virtualization ablation — comm/k is constant across
// physical sizes, i.e. cost scales by exactly k.
func TestE6Shape(t *testing.T) {
	tb := RunE6()
	if len(tb.Rows) != len(E6PhysicalSides) {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	ref := parseCell(t, tb.Rows[0][7]) // (bus+wOR)/k at m = n (k = 1)
	for _, row := range tb.Rows {
		iters := parseCell(t, row[2])
		if iters != parseCell(t, tb.Rows[0][2]) {
			t.Errorf("m=%s: iterations changed to %d", row[0], iters)
		}
		if perK := parseCell(t, row[7]); perK != ref {
			t.Errorf("m=%s: (bus+wOR)/k = %d, want constant %d", row[0], perK, ref)
		}
		// Stitch shifts are exactly 2x the wired-OR count when virtualized.
		k := parseCell(t, row[1])
		if k > 1 && parseCell(t, row[5]) != 2*parseCell(t, row[4]) {
			t.Errorf("m=%s: stitch shifts %s != 2 x wired-OR %s", row[0], row[5], row[4])
		}
	}
}

// TestE7Shape: identical answers under both bus models; the switch-only
// comm count exceeds the wired one and both are finite/positive.
func TestE7Shape(t *testing.T) {
	tb := RunE7()
	if len(tb.Rows) != len(E7Widths) {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		wired := parseCell(t, row[4])
		switched := parseCell(t, row[6])
		if switched <= wired {
			t.Errorf("h=%s: switch-only comm %d not above wired %d", row[0], switched, wired)
		}
		if switched > 3*wired {
			t.Errorf("h=%s: switch-only comm %d more than 3x wired %d", row[0], switched, wired)
		}
	}
}

// TestE8Shape: both all-pairs strategies agree on every distance, and the
// squaring shift count matches its 4(n-1)*squarings model.
func TestE8Shape(t *testing.T) {
	tb := RunE8()
	if len(tb.Rows) != len(E8Sides) {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[6] != "true" {
			t.Errorf("n=%s: distances diverged", row[0])
		}
		n := parseCell(t, row[0])
		shifts := parseCell(t, row[4])
		squarings := parseCell(t, row[5])
		if shifts != 4*(n-1)*squarings {
			t.Errorf("n=%d: shifts %d, model %d", n, shifts, 4*(n-1)*squarings)
		}
	}
}

// TestE9Shape: the missed-corruption column is zero and the fault model
// is not a no-op.
func TestE9Shape(t *testing.T) {
	tb := RunE9()
	if len(tb.Rows) != 2 {
		t.Fatalf("row count %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		injections := parseCell(t, row[1])
		still := parseCell(t, row[2])
		caught := parseCell(t, row[3])
		missed := parseCell(t, row[4])
		diverged := parseCell(t, row[5])
		if missed != 0 {
			t.Errorf("%s: %d corrupted outputs escaped the certifier", row[0], missed)
		}
		if still+caught+missed+diverged != injections {
			t.Errorf("%s: outcome counts do not sum to %d", row[0], injections)
		}
		if caught+diverged == 0 {
			t.Errorf("%s: no fault disturbed the computation", row[0])
		}
	}
}

func TestRunAll(t *testing.T) {
	tables := RunAll()
	if len(tables) != 9 {
		t.Fatalf("got %d tables", len(tables))
	}
	ids := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}
	for i, tb := range tables {
		if tb.ID != ids[i] {
			t.Errorf("table %d is %s", i, tb.ID)
		}
		if len(tb.Rows) == 0 || tb.Format() == "" {
			t.Errorf("table %s empty", tb.ID)
		}
	}
}

func TestMeasureBroadcast(t *testing.T) {
	bus, shifts := MeasureBroadcast(10)
	if bus != 1 || shifts != 9 {
		t.Errorf("MeasureBroadcast(10) = %d, %d", bus, shifts)
	}
}
