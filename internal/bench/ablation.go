package bench

import (
	"fmt"

	"ppamcp/internal/apsp"
	"ppamcp/internal/core"
	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// E6PhysicalSides is the physical-array sweep of the virtualization
// ablation (logical side fixed at E6N).
var (
	E6N             = 32
	E6PhysicalSides = []int{32, 16, 8, 4, 2}
)

// RunE6 is the virtualization ablation (our extension beyond the paper):
// the same 32-vertex problem solved on progressively smaller physical
// arrays with k x k logical PEs per physical PE. Answers are identical;
// every class of communication cycle scales by exactly k.
func RunE6() Table {
	t := Table{
		ID:     "E6",
		Title:  "virtualization ablation: logical 32x32 on an m x m physical array",
		Claim:  "extension: block mapping lifts the paper's one-element-per-PE assumption at cost factor k = n/m",
		Header: []string{"phys m", "k", "iters", "bus", "wired-OR", "stitch shifts", "comm total", "(bus+wOR)/k"},
	}
	g := graph.GenRandomConnected(E6N, 0.3, 9, seed)
	base, err := core.Solve(g, 1, core.Options{})
	if err != nil {
		panic(fmt.Sprintf("bench E6: %v", err))
	}
	for _, m := range E6PhysicalSides {
		r, err := core.Solve(g, 1, core.Options{PhysicalSide: m, Bits: base.Bits})
		if err != nil {
			panic(fmt.Sprintf("bench E6 (m=%d): %v", m, err))
		}
		k := int64(E6N / m)
		t.AddRow(m, k, r.Iterations, r.Metrics.BusCycles, r.Metrics.WiredOrCycles,
			r.Metrics.ShiftSteps, r.Metrics.CommCycles(),
			(r.Metrics.BusCycles+r.Metrics.WiredOrCycles)/k)
	}
	t.Notes = append(t.Notes,
		"answers identical at every m (tested); bus and wired-OR cycles scale by exactly k",
		"((bus+wOR)/k is constant); the stitch column is 2 one-bit physical shifts per logical",
		"wired-OR, needed to resolve clusters that span block boundaries")
	return t
}

// E7Widths is the word-width sweep of the bus-model ablation.
var E7Widths = []uint{8, 16, 32}

// RunE7 is the bus-model ablation (DESIGN.md deviation 3a): the same MCP
// solved with the wired-OR bus mode versus with plain segmented broadcasts
// only (the weaker hardware reading, under which the paper's min() listing
// is exact as printed). Both are Θ(p·h); the switch-only model pays ~2x.
func RunE7() Table {
	t := Table{
		ID:    "E7",
		Title: "bus-model ablation: wired-OR vs switch-only or()",
		Claim: "deviation 3a: the Θ(p·h) result holds under either reading of the or() primitive",
		Header: []string{"h", "iters", "wired: wOR", "wired: bus", "wired comm",
			"switch: bus", "switch comm", "ratio"},
	}
	g := graph.GenRandomConnected(24, 0.3, 9, seed)
	for _, h := range E7Widths {
		wired, err := core.Solve(g, 5, core.Options{Bits: h})
		if err != nil {
			panic(fmt.Sprintf("bench E7 wired: %v", err))
		}
		switched, err := core.Solve(g, 5, core.Options{Bits: h, SwitchOnlyBus: true})
		if err != nil {
			panic(fmt.Sprintf("bench E7 switched: %v", err))
		}
		ratio := float64(switched.Metrics.CommCycles()) / float64(wired.Metrics.CommCycles())
		t.AddRow(h, wired.Iterations,
			wired.Metrics.WiredOrCycles, wired.Metrics.BusCycles, wired.Metrics.CommCycles(),
			switched.Metrics.BusCycles, switched.Metrics.CommCycles(),
			fmt.Sprintf("%.2f", ratio))
	}
	t.Notes = append(t.Notes,
		"identical Dist/Next/Iterations under both models (tested);",
		"per min: h wired-OR + 2 bus (wired) vs 2h+2 bus (switch-only)")
	return t
}

// E8Sides is the n sweep of the all-pairs strategy comparison.
var E8Sides = []int{4, 8, 16, 32}

// RunE8 compares the two all-pairs strategies on the same machine
// (extension beyond the paper): n runs of the paper's single-destination
// DP (bus fabric, Θ(n·p·h)) versus min-plus matrix squaring with Cannon
// products (shift fabric, Θ(n·log p)).
func RunE8() Table {
	t := Table{
		ID:    "E8",
		Title: "all-pairs strategies: n x single-destination DP vs min-plus squaring",
		Claim: "extension: the paper's DP is one point in the machine's design space; Cannon squaring trades bus cycles for shifts",
		Header: []string{"n", "h", "DP comm (bus+wOR+gOR)", "DP rounds",
			"squaring shifts", "squarings", "distances equal"},
	}
	for _, n := range E8Sides {
		g := graph.GenRandomConnected(n, 0.3, 9, seed+int64(2*n))
		ap, err := core.SolveAllPairs(g, core.Options{})
		if err != nil {
			panic(fmt.Sprintf("bench E8 dp: %v", err))
		}
		sq, err := apsp.Solve(g, apsp.Options{})
		if err != nil {
			panic(fmt.Sprintf("bench E8 squaring: %v", err))
		}
		equal := true
		for i := 0; i < n*n; i++ {
			if i/n != i%n && ap.Dist[i] != sq.Dist[i] {
				equal = false
			}
		}
		t.AddRow(n, sq.Bits, ap.Metrics.CommCycles(), ap.Iterations,
			sq.Metrics.ShiftSteps, sq.Squarings, equal)
	}
	t.Notes = append(t.Notes,
		"units differ (bus transactions vs word shifts); squaring produces no PTN matrix;",
		"the DP column grows with n*p*h, the squaring column with n*log p")
	return t
}

// E9N is the machine side of the fault-injection sweep.
var E9N = 8

// RunE9 is the fault-injection study as a table: one stuck switch box
// swept over every PE of an E9N x E9N machine, in both polarities, with
// the MCP solved on each damaged machine. Outcomes are classified as
// still-correct (the fault was not load-bearing), corrupted (wrong
// output — every one must be caught by the independent certifier) or
// diverged (the DP failed to converge and reported an error).
func RunE9() Table {
	t := Table{
		ID:     "E9",
		Title:  "fault injection: one stuck switch box, swept over every PE",
		Claim:  "extension: every output corruption a stuck switch can cause is rejected by the optimality certifier",
		Header: []string{"fault kind", "injections", "still correct", "corrupted (caught)", "corrupted (missed)", "diverged"},
	}
	g := graph.GenRandomConnected(E9N, 0.35, 9, seed)
	dest := 2
	truth, err := graph.BellmanFord(g, dest)
	if err != nil {
		panic(fmt.Sprintf("bench E9: %v", err))
	}
	h := g.BitsNeeded()
	for _, kind := range []ppa.FaultKind{ppa.StuckShort, ppa.StuckOpen} {
		stillCorrect, caught, missed, diverged := 0, 0, 0, 0
		for pe := 0; pe < E9N*E9N; pe++ {
			m := ppa.New(E9N, h)
			m.InjectFault(pe, kind)
			res, err := core.SolveOn(m, g, dest, core.Options{MaxIterations: 3 * E9N})
			switch {
			case err != nil:
				diverged++
			case sameDist(res.Dist, truth.Dist):
				stillCorrect++
			case graph.CheckResult(g, &res.Result) != nil:
				caught++
			default:
				missed++
			}
		}
		t.AddRow(kind, E9N*E9N, stillCorrect, caught, missed, diverged)
	}
	t.Notes = append(t.Notes,
		"the 'corrupted (missed)' column must be zero: single-destination distances are",
		"uniquely determined by the optimality conditions the certifier checks")
	return t
}

func sameDist(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
