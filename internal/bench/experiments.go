package bench

import (
	"fmt"
	"math/rand"
	"sync"

	"ppamcp/internal/core"
	"ppamcp/internal/gcn"
	"ppamcp/internal/graph"
	"ppamcp/internal/hypercube"
	"ppamcp/internal/mesh"
	"ppamcp/internal/par"
	"ppamcp/internal/ppa"
	"ppamcp/internal/ppclang"
)

// seed fixes every experiment's workload; the tables are deterministic.
const seed = 19980330 // IPPS'98, Orlando

// paperProg parses the paper's PPC listing once.
var paperProg = sync.OnceValues(func() (*ppclang.Program, error) {
	return ppclang.Compile(ppclang.PaperMCPSource)
})

// E1Widths and E1Sides are the sweep of experiment E1.
var (
	E1Widths = []uint{4, 8, 16, 24, 32, 48}
	E1Sides  = []int{8, 32, 128}
)

// MeasureMin runs one bit-serial row minimum on an n x n, h-bit PPA over
// random data and returns the communication cost.
func MeasureMin(n int, h uint, rngSeed int64) ppa.Metrics {
	m := ppa.New(n, h)
	a := par.New(m)
	rng := rand.New(rand.NewSource(rngSeed))
	data := make([]ppa.Word, n*n)
	for i := range data {
		data[i] = ppa.Word(rng.Int63n(int64(ppa.Infinity(h)) + 1))
	}
	src := a.FromSlice(data)
	head := a.Col().EqConst(ppa.Word(n - 1))
	before := m.Metrics()
	a.Min(src, ppa.West, head)
	return m.Metrics().Sub(before)
}

// RunE1 measures the bit-serial min: Θ(h) bus transactions, independent
// of the array side n.
func RunE1() Table {
	t := Table{
		ID:     "E1",
		Title:  "bit-serial min()/selected_min() cost",
		Claim:  "§3: the minimum of h-bit values on a bus cluster costs O(h) cycles, independent of cluster size",
		Header: []string{"h (bits)", "n", "wired-OR cycles", "bus cycles", "comm total", "model h+2"},
	}
	for _, h := range E1Widths {
		for _, n := range E1Sides {
			m := MeasureMin(n, h, seed)
			t.AddRow(h, n, m.WiredOrCycles, m.BusCycles, m.CommCycles(), int64(h)+2)
		}
	}
	t.Notes = append(t.Notes,
		"comm total must be flat in n and equal to the h+2 model in every row")
	return t
}

// E2Diameters is the p sweep of experiment E2 (n is fixed at E2N).
var (
	E2N         = 32
	E2Diameters = []int{1, 2, 4, 8, 16, 31}
	E2Widths    = []uint{8, 16, 32}
)

// RunE2 measures full MCP cost against the path-length bound p and the
// word width h: Θ(p·h).
func RunE2() Table {
	t := Table{
		ID:     "E2",
		Title:  "MCP total cost vs diameter p and word width h",
		Claim:  "§3/§4: the MCP runs p DP rounds of Θ(h) cycles each — total Θ(p·h)",
		Header: []string{"n", "p", "h", "iterations", "wired-OR", "bus", "comm total", "model 2ph+8p+2"},
	}
	for _, p := range E2Diameters {
		g := graph.GenDiameter(E2N, p)
		for _, h := range E2Widths {
			r, err := core.Solve(g, 0, core.Options{Bits: h})
			if err != nil {
				panic(fmt.Sprintf("bench E2: %v", err))
			}
			model := int64(p)*(2*int64(h)+8) + 2
			t.AddRow(E2N, p, h, r.Iterations, r.Metrics.WiredOrCycles,
				r.Metrics.BusCycles, r.Metrics.CommCycles(), model)
		}
	}
	t.Notes = append(t.Notes,
		"iterations = p exactly (p-1 productive rounds + 1 detection round)",
		"per round: 2h wired-OR + 7 bus + 1 global-OR; init adds 2 bus",
		"model column 2ph+8p+2 counts all three communication kinds")
	return t
}

// E3Sides is the n sweep of experiment E3.
var E3Sides = []int{4, 8, 16, 32, 64}

// RunE3 compares the four architectures (and sequential Bellman-Ford) on
// the same random workloads.
func RunE3() Table {
	t := Table{
		ID:    "E3",
		Title: "architecture comparison on random graphs",
		Claim: "§1/§4: PPA delivers the same computational complexity as the CM hypercube and the GCN; reconfigurable buses beat the plain mesh",
		Header: []string{"n", "h", "iters", "PPA comm", "GCN comm", "cube router", "cube bit-serial",
			"mesh shifts", "BF relaxations"},
	}
	for _, n := range E3Sides {
		g := graph.GenRandomConnected(n, 0.3, 9, seed+int64(n))
		dest := n / 2
		pparRes, err := core.Solve(g, dest, core.Options{})
		if err != nil {
			panic(fmt.Sprintf("bench E3 ppa: %v", err))
		}
		h := pparRes.Bits
		gcnRes, err := gcn.SolveMCP(g, dest, gcn.Options{Bits: h})
		if err != nil {
			panic(fmt.Sprintf("bench E3 gcn: %v", err))
		}
		cubeRes, err := hypercube.SolveMCP(g, dest, hypercube.Options{Bits: h})
		if err != nil {
			panic(fmt.Sprintf("bench E3 cube: %v", err))
		}
		cubeBit, err := hypercube.SolveMCP(g, dest, hypercube.Options{Bits: h, BitSerialRouter: true})
		if err != nil {
			panic(fmt.Sprintf("bench E3 cube bit-serial: %v", err))
		}
		meshRes, err := mesh.SolveMCP(g, dest, mesh.Options{Bits: h})
		if err != nil {
			panic(fmt.Sprintf("bench E3 mesh: %v", err))
		}
		bf, err := graph.BellmanFord(g, dest)
		if err != nil {
			panic(fmt.Sprintf("bench E3 bf: %v", err))
		}
		t.AddRow(n, h, pparRes.Iterations,
			pparRes.Metrics.CommCycles(), gcnRes.Metrics.CommCycles(),
			cubeRes.Metrics.RouterCycles, cubeBit.Metrics.RouterCycles,
			meshRes.Metrics.ShiftSteps, bf.Relaxations)
	}
	t.Notes = append(t.Notes,
		"units differ by column (bit-wide bus cycles vs word-wide router cycles vs word shifts);",
		"'cube bit-serial' charges h cycles per word exchange (CM-1's links) for a like-for-like",
		"bit-cycle comparison with the PPA. the paper's parity claim is about growth: PPA/GCN grow",
		"with p*h, the hypercube with p*h*log n bit-serial (p*log n word-wide), the mesh with p*n")
	return t
}

// E4Sides is the n sweep of experiment E4.
var E4Sides = []int{4, 8, 16, 32, 64, 128, 256}

// RunE4 measures a single one-to-all row broadcast: one bus cycle on the
// PPA regardless of n, n-1 shift steps on the plain mesh.
func RunE4() Table {
	t := Table{
		ID:     "E4",
		Title:  "broadcast micro-benchmark: reconfigurable bus vs shifts",
		Claim:  "§1: the segmented bus short-circuits intermediate nodes, so distance no longer costs cycles",
		Header: []string{"n", "PPA bus cycles", "mesh shift steps", "speedup"},
	}
	for _, n := range E4Sides {
		ppaCycles, meshSteps := MeasureBroadcast(n)
		t.AddRow(n, ppaCycles, meshSteps, fmt.Sprintf("%dx", meshSteps/ppaCycles))
	}
	return t
}

// MeasureBroadcast performs one row-0-to-all-rows broadcast on both
// fabrics and returns (PPA bus cycles, mesh shift steps).
func MeasureBroadcast(n int) (int64, int64) {
	// PPA: one segmented-bus transaction.
	m := ppa.New(n, 8)
	a := par.New(m)
	v := a.Zeros()
	a.Broadcast(v, ppa.South, a.Row().EqConst(0))
	ppaCycles := m.Metrics().BusCycles

	// Mesh: n-1 shifts with per-row capture.
	m2 := ppa.New(n, 8)
	a2 := par.New(m2)
	src := a2.Zeros()
	moving := src.Copy()
	dst := src.Copy()
	row := a2.Row()
	for k := 1; k < n; k++ {
		moving = a2.Shift(moving, ppa.South)
		target := row.EqConst(ppa.Word(k))
		a2.Where(target, func() {
			dst.Assign(moving)
		})
	}
	return ppaCycles, m2.Metrics().ShiftSteps
}

// E5Cases are the workloads of experiment E5.
var E5Cases = []struct {
	Name string
	N    int
	Gen  func(n int) *graph.Graph
}{
	{"chain", 8, func(n int) *graph.Graph { return graph.GenChain(n, 2) }},
	{"star", 9, func(n int) *graph.Graph { return graph.GenStar(n, 3) }},
	{"random", 10, func(n int) *graph.Graph { return graph.GenRandomConnected(n, 0.3, 9, seed) }},
	{"sparse", 12, func(n int) *graph.Graph { return graph.GenRandom(n, 0.15, 9, seed+1) }},
}

// RunE5 validates the PPC-language implementation against the native
// solver: identical SOW/PTN and identical bus traffic.
func RunE5() Table {
	t := Table{
		ID:     "E5",
		Title:  "PPC-language program vs native Go implementation",
		Claim:  "§1/§2: the algorithm was implemented in Polymorphic Parallel C and validated through simulation",
		Header: []string{"workload", "n", "iters", "native comm", "PPC comm", "outputs equal", "cycles equal"},
	}
	for _, c := range E5Cases {
		g := c.Gen(c.N)
		dest := c.N - 1
		native, err := core.Solve(g, dest, core.Options{})
		if err != nil {
			panic(fmt.Sprintf("bench E5 native: %v", err))
		}
		ppcRes, ppcMetrics, err := RunPaperPPC(g, dest, native.Bits)
		if err != nil {
			panic(fmt.Sprintf("bench E5 ppc: %v", err))
		}
		outEqual := true
		for i := 0; i < c.N; i++ {
			if native.Dist[i] != ppcRes.Dist[i] || native.Next[i] != ppcRes.Next[i] {
				outEqual = false
			}
		}
		cycEqual := native.Metrics.BusCycles == ppcMetrics.BusCycles &&
			native.Metrics.WiredOrCycles == ppcMetrics.WiredOrCycles &&
			native.Metrics.GlobalOrOps == ppcMetrics.GlobalOrOps
		t.AddRow(c.Name, c.N, native.Iterations,
			native.Metrics.CommCycles(), ppcMetrics.CommCycles(),
			outEqual, cycEqual)
	}
	return t
}

// RunPaperPPC executes the paper's PPC program for g/dest on an h-bit
// machine and returns the decoded result and machine metrics. By default
// the program runs compiled on the bytecode VM; pass
// ppclang.WithReference(true) to run the tree-walking oracle instead
// (both produce identical metrics by construction).
func RunPaperPPC(g *graph.Graph, dest int, h uint, opts ...ppclang.Option) (*graph.Result, ppa.Metrics, error) {
	// Parse once: reusing the *Program across calls keeps the bytecode
	// cache warm (ppclang caches compiled code per Program identity).
	prog, err := paperProg()
	if err != nil {
		return nil, ppa.Metrics{}, err
	}
	n := g.N
	m := ppa.New(n, h)
	arr := par.New(m)
	in, err := ppclang.NewExecutor(prog, arr, opts...)
	if err != nil {
		return nil, ppa.Metrics{}, err
	}
	inf := m.Inf()
	w := make([]ppa.Word, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch wt := g.At(i, j); {
			case i == j:
				w[i*n+j] = 0
			case wt == graph.NoEdge:
				w[i*n+j] = inf
			default:
				w[i*n+j] = ppa.Word(wt)
			}
		}
	}
	if err := in.SetParallelInt("W", w); err != nil {
		return nil, ppa.Metrics{}, err
	}
	if err := in.SetInt("d", int64(dest)); err != nil {
		return nil, ppa.Metrics{}, err
	}
	if _, err := in.Call("minimum_cost_path"); err != nil {
		return nil, ppa.Metrics{}, err
	}
	sow, err := in.GetParallelInt("SOW")
	if err != nil {
		return nil, ppa.Metrics{}, err
	}
	ptn, err := in.GetParallelInt("PTN")
	if err != nil {
		return nil, ppa.Metrics{}, err
	}
	res := &graph.Result{Dest: dest, Dist: make([]int64, n), Next: make([]int, n)}
	for i := 0; i < n; i++ {
		s := sow[dest*n+i]
		switch {
		case i == dest:
			res.Dist[i] = 0
			res.Next[i] = -1
		case s == inf:
			res.Dist[i] = graph.NoEdge
			res.Next[i] = -1
		default:
			res.Dist[i] = int64(s)
			res.Next[i] = int(ptn[dest*n+i])
		}
	}
	return res, m.Metrics(), nil
}

// RunAll executes every experiment in order (the paper-claim experiments
// E1-E5 plus the E6 virtualization ablation).
func RunAll() []Table {
	return []Table{RunE1(), RunE2(), RunE3(), RunE4(), RunE5(), RunE6(), RunE7(), RunE8(), RunE9()}
}
