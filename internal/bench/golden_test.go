package bench

import (
	"os"
	"strings"
	"testing"
)

// TestGoldenTables pins the exact output of every experiment table
// against testdata/benchtab.golden. All workloads are seeded and the
// simulators are deterministic, so any diff means the cycle accounting
// (or a workload) changed — which must be a conscious decision:
// regenerate with
//
//	go run ./cmd/benchtab > internal/bench/testdata/benchtab.golden
//
// and update EXPERIMENTS.md to match.
func TestGoldenTables(t *testing.T) {
	want, err := os.ReadFile("testdata/benchtab.golden")
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	var sb strings.Builder
	for _, tb := range RunAll() {
		sb.WriteString(tb.Format())
		sb.WriteByte('\n')
	}
	got := sb.String()
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("experiment tables drifted from golden at line %d:\n got: %q\nwant: %q\n(see comment for regeneration)", i+1, g, w)
		}
	}
	t.Fatal("experiment tables drifted from golden (length mismatch)")
}
