// Package bench is the experiment harness of the reproduction: one
// deterministic runner per experiment in DESIGN.md's index (E1-E5), each
// returning a formatted Table. cmd/benchtab prints them; the root
// bench_test.go wraps the same workloads in testing.B benchmarks; and
// EXPERIMENTS.md records their output next to the paper's claims.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's result: a titled grid of stringified cells.
type Table struct {
	ID     string
	Title  string
	Claim  string // the paper statement the experiment reproduces
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Format renders the table as aligned monospace text.
func (t Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavoured markdown section, the
// format EXPERIMENTS.md embeds (benchtab -format markdown).
func (t Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "**Claim:** %s\n\n", t.Claim)
	}
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	return sb.String()
}
