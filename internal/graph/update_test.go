package graph

import "testing"

func TestWeightUpdateValidate(t *testing.T) {
	cases := []struct {
		u  WeightUpdate
		ok bool
	}{
		{WeightUpdate{U: 0, V: 1, W: 5}, true},
		{WeightUpdate{U: 3, V: 0, W: 0}, true},
		{WeightUpdate{U: 1, V: 2, W: NoEdge}, true},
		{WeightUpdate{U: -1, V: 0, W: 1}, false},
		{WeightUpdate{U: 4, V: 0, W: 1}, false},
		{WeightUpdate{U: 0, V: -1, W: 1}, false},
		{WeightUpdate{U: 0, V: 4, W: 1}, false},
		{WeightUpdate{U: 0, V: 1, W: -7}, false},
	}
	for _, c := range cases {
		err := c.u.Validate(4)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.u, err, c.ok)
		}
	}
	if !(WeightUpdate{W: NoEdge}).Removes() {
		t.Error("W=NoEdge should report Removes")
	}
	if (WeightUpdate{W: 3}).Removes() {
		t.Error("finite weight should not report Removes")
	}
}

func TestGraphApply(t *testing.T) {
	g := GenChain(4, 3)
	if err := g.Apply([]WeightUpdate{
		{U: 0, V: 2, W: 7},      // insert
		{U: 0, V: 1, W: NoEdge}, // remove
		{U: 2, V: 3, W: 1},      // change
		{U: 2, V: 3, W: 2},      // last write wins
	}); err != nil {
		t.Fatal(err)
	}
	if got := g.At(0, 2); got != 7 {
		t.Errorf("At(0,2) = %d, want 7", got)
	}
	if g.HasEdge(0, 1) {
		t.Error("edge 0->1 should be removed")
	}
	if got := g.At(2, 3); got != 2 {
		t.Errorf("At(2,3) = %d, want 2", got)
	}
}

func TestGraphApplyAtomic(t *testing.T) {
	g := GenChain(4, 3)
	before := g.Clone()
	err := g.Apply([]WeightUpdate{
		{U: 0, V: 1, W: 9},  // valid...
		{U: 0, V: 99, W: 1}, // ...but the batch has a bad one
	})
	if err == nil {
		t.Fatal("expected validation error")
	}
	for i := range g.W {
		if g.W[i] != before.W[i] {
			t.Fatalf("graph mutated by rejected batch at word %d", i)
		}
	}
}
