package graph

import "fmt"

// PathCost returns the total weight of the vertex sequence path in g, or
// an error if any consecutive pair is not an edge.
func PathCost(g *Graph, path []int) (int64, error) {
	if len(path) == 0 {
		return 0, fmt.Errorf("graph: empty path")
	}
	var cost int64
	for k := 0; k+1 < len(path); k++ {
		u, v := path[k], path[k+1]
		if u < 0 || u >= g.N || v < 0 || v >= g.N {
			return 0, fmt.Errorf("graph: path vertex out of range at position %d", k)
		}
		w := g.At(u, v)
		if w == NoEdge {
			return 0, fmt.Errorf("graph: path uses missing edge %d->%d", u, v)
		}
		cost += w
	}
	return cost, nil
}

// CheckResult verifies that r is a correct and optimal single-destination
// MCP solution for g:
//
//  1. consistency — every finite Dist[i] is witnessed by the path obtained
//     by following Next from i, whose cost equals Dist[i];
//  2. optimality — no edge can relax any distance
//     (Dist[i] <= w(i,j) + Dist[j] for every edge i->j);
//  3. unreachability — Dist[i] == NoEdge implies no edge from i reaches a
//     vertex with finite distance.
//
// This certifies optimality without trusting any solver: conditions 1+2
// are the classic shortest-path LP complementary-slackness pair.
func CheckResult(g *Graph, r *Result) error {
	n := g.N
	if len(r.Dist) != n || len(r.Next) != n {
		return fmt.Errorf("graph: result size mismatch")
	}
	if r.Dest < 0 || r.Dest >= n {
		return fmt.Errorf("graph: bad destination %d", r.Dest)
	}
	if r.Dist[r.Dest] != 0 {
		return fmt.Errorf("graph: Dist[dest] = %d, want 0", r.Dist[r.Dest])
	}
	for i := 0; i < n; i++ {
		if i == r.Dest {
			continue
		}
		switch {
		case r.Dist[i] == NoEdge:
			if r.Next[i] != -1 {
				return fmt.Errorf("graph: vertex %d unreachable but Next = %d", i, r.Next[i])
			}
		default:
			path, ok := r.PathFrom(i)
			if !ok {
				return fmt.Errorf("graph: vertex %d has Dist %d but Next chain does not reach dest", i, r.Dist[i])
			}
			cost, err := PathCost(g, path)
			if err != nil {
				return fmt.Errorf("graph: vertex %d: %v", i, err)
			}
			if cost != r.Dist[i] {
				return fmt.Errorf("graph: vertex %d: witness path costs %d, Dist says %d", i, cost, r.Dist[i])
			}
		}
		for j := 0; j < n; j++ {
			if cand := addNoEdge(g.At(i, j), r.Dist[j]); cand < r.Dist[i] {
				return fmt.Errorf("graph: edge %d->%d relaxes Dist[%d] from %d to %d (not optimal)",
					i, j, i, r.Dist[i], cand)
			}
		}
	}
	return nil
}

// SameDistances reports whether two results agree on every distance.
func SameDistances(a, b *Result) bool {
	if len(a.Dist) != len(b.Dist) || a.Dest != b.Dest {
		return false
	}
	for i := range a.Dist {
		if a.Dist[i] != b.Dist[i] {
			return false
		}
	}
	return true
}
