package graph

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func graphsEqual(a, b *Graph) bool {
	if a.N != b.N {
		return false
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			return false
		}
	}
	return true
}

// TestJSONRoundTripAgainstText is the property test for the wire codec:
// for random graphs, JSON marshal -> unmarshal and text Format -> Parse
// must both reproduce the graph exactly, so the two formats are
// interchangeable descriptions of the same object.
func TestJSONRoundTripAgainstText(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		g := GenRandom(n, rng.Float64(), 1+rng.Int63n(50), rng.Int63())
		// Sprinkle in the edge cases the generator avoids: zero-weight
		// edges and self-loops.
		if n > 1 {
			g.SetEdge(rng.Intn(n), rng.Intn(n), 0)
		}
		g.SetEdge(rng.Intn(n), rng.Intn(n), 7)

		data, err := json.Marshal(g)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		var fromJSON Graph
		if err := json.Unmarshal(data, &fromJSON); err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		if !graphsEqual(g, &fromJSON) {
			t.Fatalf("trial %d: JSON round trip diverged", trial)
		}

		var buf bytes.Buffer
		if err := g.Format(&buf); err != nil {
			t.Fatal(err)
		}
		fromText, err := Parse(&buf)
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		if !graphsEqual(&fromJSON, fromText) {
			t.Fatalf("trial %d: JSON and text decodings disagree", trial)
		}
	}
}

func TestJSONMarshalShape(t *testing.T) {
	g := New(3)
	g.SetEdge(0, 1, 5)
	g.SetEdge(2, 0, 0)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"n":3,"edges":[[0,1,5],[2,0,0]]}`
	if string(data) != want {
		t.Errorf("marshal = %s, want %s", data, want)
	}
	// Edgeless graph keeps an explicit empty list, not null.
	data, err = json.Marshal(New(1))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"n":1,"edges":[]}` {
		t.Errorf("edgeless marshal = %s", data)
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"negative weight", `{"n":2,"edges":[[0,1,-3]]}`, "negative weight"},
		{"from out of range", `{"n":2,"edges":[[2,1,3]]}`, "out of range"},
		{"to out of range", `{"n":2,"edges":[[0,5,3]]}`, "out of range"},
		{"negative vertex", `{"n":2,"edges":[[-1,0,3]]}`, "out of range"},
		{"zero n", `{"n":0,"edges":[]}`, "n = 0 < 1"},
		{"missing n", `{"edges":[[0,0,1]]}`, "n = 0 < 1"},
		{"huge n", `{"n":99999999,"edges":[]}`, "MaxParseVertices"},
		{"bad arity", `{"n":2,"edges":[[0,1]]}`, "want [from, to, weight]"},
		{"not json", `{{`, "invalid character"},
	}
	for _, c := range cases {
		var g Graph
		err := json.Unmarshal([]byte(c.in), &g)
		if err == nil {
			t.Errorf("%s: accepted %s", c.name, c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.wantErr)
		}
	}
}

func TestJSONUnmarshalLastEdgeWins(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"n":2,"edges":[[0,1,5],[0,1,9]]}`), &g); err != nil {
		t.Fatal(err)
	}
	if g.At(0, 1) != 9 {
		t.Errorf("duplicate edge: At(0,1) = %d, want 9 (last wins, as in the text format)", g.At(0, 1))
	}
}
