// Package graph provides the problem substrate for the MCP reproduction:
// dense weighted directed graphs in the matrix representation the paper
// assumes (W[i][j] = weight of the edge from vertex i to vertex j, MAXINT
// when absent), deterministic workload generators, and the sequential
// reference algorithms (Bellman-Ford, Dijkstra, Floyd-Warshall) every
// parallel backend is validated against.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
)

// NoEdge is the host-side "no edge" sentinel. Machine backends map it to
// their own MAXINT (all-ones h-bit word) when the graph is loaded.
const NoEdge = int64(math.MaxInt64)

// MaxParseVertices bounds the vertex count Parse accepts: the dense
// matrix representation allocates n^2 cells, so an untrusted header must
// not be able to demand an absurd allocation.
const MaxParseVertices = 8192

// Graph is a dense weighted directed graph over vertices 0..N-1.
// W is row-major: W[i*N+j] is the weight of edge i -> j, or NoEdge.
// Weights must be non-negative (the PPA MCP algorithm, like any
// shortest-path DP with this termination rule, assumes no negative edges).
type Graph struct {
	N int
	W []int64
}

// New returns an n-vertex graph with no edges.
func New(n int) *Graph {
	if n < 1 {
		panic(fmt.Sprintf("graph: n = %d < 1", n))
	}
	w := make([]int64, n*n)
	for i := range w {
		w[i] = NoEdge
	}
	return &Graph{N: n, W: w}
}

// At returns the weight of edge i -> j (NoEdge if absent).
func (g *Graph) At(i, j int) int64 { return g.W[i*g.N+j] }

// SetEdge sets the weight of edge i -> j. It panics on a negative weight;
// use RemoveEdge (or SetEdge with NoEdge) to delete.
func (g *Graph) SetEdge(i, j int, w int64) {
	if w < 0 {
		panic(fmt.Sprintf("graph: negative weight %d on edge %d->%d", w, i, j))
	}
	g.W[i*g.N+j] = w
}

// RemoveEdge deletes edge i -> j.
func (g *Graph) RemoveEdge(i, j int) { g.W[i*g.N+j] = NoEdge }

// HasEdge reports whether edge i -> j exists.
func (g *Graph) HasEdge(i, j int) bool { return g.W[i*g.N+j] != NoEdge }

// Edges returns the number of present edges.
func (g *Graph) Edges() int {
	n := 0
	for _, w := range g.W {
		if w != NoEdge {
			n++
		}
	}
	return n
}

// MaxWeight returns the largest finite edge weight (0 for an edgeless
// graph).
func (g *Graph) MaxWeight() int64 {
	var max int64
	for _, w := range g.W {
		if w != NoEdge && w > max {
			max = w
		}
	}
	return max
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	return &Graph{N: g.N, W: append([]int64(nil), g.W...)}
}

// Transpose returns the graph with every edge reversed.
func (g *Graph) Transpose() *Graph {
	t := New(g.N)
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			t.W[j*g.N+i] = g.W[i*g.N+j]
		}
	}
	return t
}

// Symmetric reports whether W equals its transpose (i.e. the graph is
// effectively undirected).
func (g *Graph) Symmetric() bool {
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			if g.W[i*g.N+j] != g.W[j*g.N+i] {
				return false
			}
		}
	}
	return true
}

// Validate checks structural invariants: no negative weights.
func (g *Graph) Validate() error {
	if len(g.W) != g.N*g.N {
		return fmt.Errorf("graph: matrix length %d, want %d", len(g.W), g.N*g.N)
	}
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			if w := g.W[i*g.N+j]; w != NoEdge && w < 0 {
				return fmt.Errorf("graph: negative weight %d on edge %d->%d", w, i, j)
			}
		}
	}
	return nil
}

// BitsNeeded returns the smallest machine word width h such that every
// finite path cost representable in the DP fits: the machine MAXINT
// (2^h-1) must strictly exceed any finite shortest-path cost, which is
// bounded by (n-1) * maxWeight.
func (g *Graph) BitsNeeded() uint {
	bound := int64(g.N-1)*g.MaxWeight() + 1
	h := uint(1)
	for int64(1)<<h-1 <= bound {
		h++
	}
	return h
}

// Format writes the graph in a simple line-oriented text format:
//
//	n <vertices>
//	e <from> <to> <weight>   (one line per edge)
func (g *Graph) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.N); err != nil {
		return err
	}
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			if wt := g.At(i, j); wt != NoEdge {
				if _, err := fmt.Fprintf(bw, "e %d %d %d\n", i, j, wt); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Parse reads the Format representation.
func Parse(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	var g *Graph
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(text, "n "):
			var n int
			if _, err := fmt.Sscanf(text, "n %d", &n); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			if n < 1 {
				return nil, fmt.Errorf("graph: line %d: n = %d < 1", line, n)
			}
			if n > MaxParseVertices {
				return nil, fmt.Errorf("graph: line %d: n = %d exceeds MaxParseVertices (%d)", line, n, MaxParseVertices)
			}
			g = New(n)
		case strings.HasPrefix(text, "e "):
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before n header", line)
			}
			var i, j int
			var wt int64
			if _, err := fmt.Sscanf(text, "e %d %d %d", &i, &j, &wt); err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", line, err)
			}
			if i < 0 || i >= g.N || j < 0 || j >= g.N {
				return nil, fmt.Errorf("graph: line %d: vertex out of range", line)
			}
			if wt < 0 {
				return nil, fmt.Errorf("graph: line %d: negative weight %d", line, wt)
			}
			g.SetEdge(i, j, wt)
		default:
			return nil, fmt.Errorf("graph: line %d: unrecognized %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing n header")
	}
	return g, nil
}

func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph(n=%d, edges=%d)", g.N, g.Edges())
	return sb.String()
}
