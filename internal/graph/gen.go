package graph

import (
	"fmt"
	"math/rand"
)

// GenRandom returns an n-vertex directed graph in which each ordered pair
// (i, j), i != j, carries an edge with probability density and a weight
// uniform in [1, maxW]. Deterministic in seed.
func GenRandom(n int, density float64, maxW int64, seed int64) *Graph {
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("graph: density %v outside [0,1]", density))
	}
	if maxW < 1 {
		panic(fmt.Sprintf("graph: maxW %d < 1", maxW))
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				g.SetEdge(i, j, 1+rng.Int63n(maxW))
			}
		}
	}
	return g
}

// GenRandomConnected is GenRandom plus a random Hamiltonian cycle of
// weight-maxW edges, guaranteeing every vertex can reach every other (so
// no distance is infinite). Deterministic in seed.
func GenRandomConnected(n int, density float64, maxW int64, seed int64) *Graph {
	g := GenRandom(n, density, maxW, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	perm := rng.Perm(n)
	for k := 0; k < n; k++ {
		u, v := perm[k], perm[(k+1)%n]
		if !g.HasEdge(u, v) {
			g.SetEdge(u, v, maxW)
		}
	}
	return g
}

// GenComplete returns the complete directed graph with weights uniform in
// [1, maxW].
func GenComplete(n int, maxW int64, seed int64) *Graph {
	return GenRandom(n, 1.0, maxW, seed)
}

// GenChain returns the directed path 0 -> 1 -> ... -> n-1 with unit-ish
// weight w on every edge. The MCP from vertex 0 to destination n-1 has
// exactly n-1 edges: the worst-case iteration count of the DP.
func GenChain(n int, w int64) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.SetEdge(i, i+1, w)
	}
	return g
}

// GenDiameter returns an n-vertex graph whose maximum MCP length to
// destination 0 is exactly p edges (1 <= p <= n-1): vertices p, p-1, ..., 1
// form a unit-weight chain into 0, and every remaining vertex has a direct
// unit-weight edge to 0. It is the E2 workload: the DP on it runs exactly
// p productive iterations.
func GenDiameter(n, p int) *Graph {
	if p < 1 || p > n-1 {
		panic(fmt.Sprintf("graph: diameter p=%d outside [1,%d]", p, n-1))
	}
	g := New(n)
	for v := p; v >= 1; v-- {
		g.SetEdge(v, v-1, 1)
	}
	for v := p + 1; v < n; v++ {
		g.SetEdge(v, 0, 1)
	}
	return g
}

// GenRing returns the directed cycle 0 -> 1 -> ... -> n-1 -> 0 with weight
// w on every edge.
func GenRing(n int, w int64) *Graph {
	g := GenChain(n, w)
	if n > 1 {
		g.SetEdge(n-1, 0, w)
	}
	return g
}

// GenStar returns a graph in which every vertex has a direct edge of
// weight w to the hub (vertex 0). All MCPs to the hub are single edges.
func GenStar(n int, w int64) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.SetEdge(v, 0, w)
	}
	return g
}

// GridSpec describes a 4-connected grid world for GenGrid.
type GridSpec struct {
	Rows, Cols int
	// MaxW is the maximum traversal cost of a cell (weights are uniform in
	// [1, MaxW]).
	MaxW int64
	// Obstacle is the probability that a cell is impassable (no edges in
	// or out). The destination and start corners are never blocked.
	Obstacle float64
	Seed     int64
}

// GenGrid builds the robot-navigation workload: vertex r*Cols+c is the
// cell (r, c); moving into a cell costs that cell's weight; obstacles have
// no edges. Undirected in structure (edges both ways, possibly different
// costs). Returns the graph and the obstacle mask.
func GenGrid(spec GridSpec) (*Graph, []bool) {
	if spec.Rows < 1 || spec.Cols < 1 {
		panic("graph: empty grid")
	}
	if spec.MaxW < 1 {
		spec.MaxW = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := spec.Rows * spec.Cols
	cost := make([]int64, n)
	blocked := make([]bool, n)
	for i := range cost {
		cost[i] = 1 + rng.Int63n(spec.MaxW)
		blocked[i] = rng.Float64() < spec.Obstacle
	}
	blocked[0] = false
	blocked[n-1] = false
	g := New(n)
	at := func(r, c int) int { return r*spec.Cols + c }
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			u := at(r, c)
			if blocked[u] {
				continue
			}
			for _, d := range [][2]int{{0, 1}, {1, 0}, {0, -1}, {-1, 0}} {
				nr, nc := r+d[0], c+d[1]
				if nr < 0 || nr >= spec.Rows || nc < 0 || nc >= spec.Cols {
					continue
				}
				v := at(nr, nc)
				if !blocked[v] {
					g.SetEdge(u, v, cost[v])
				}
			}
		}
	}
	return g, blocked
}

// GenLayeredDAG returns a DAG of `layers` layers with `width` vertices per
// layer plus a single sink (the destination, vertex n-1). Every vertex in
// layer k has edges to a random non-empty subset of layer k+1 (the last
// layer connects to the sink), with weights uniform in [1, maxW]. All MCPs
// to the sink have exactly layers edges... from layer 0. Deterministic in
// seed.
func GenLayeredDAG(layers, width int, maxW int64, seed int64) *Graph {
	if layers < 1 || width < 1 {
		panic("graph: GenLayeredDAG needs layers >= 1 and width >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	n := layers*width + 1
	sink := n - 1
	g := New(n)
	vertex := func(layer, i int) int { return layer*width + i }
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			u := vertex(l, i)
			if l == layers-1 {
				g.SetEdge(u, sink, 1+rng.Int63n(maxW))
				continue
			}
			connected := false
			for j := 0; j < width; j++ {
				if rng.Float64() < 0.5 {
					g.SetEdge(u, vertex(l+1, j), 1+rng.Int63n(maxW))
					connected = true
				}
			}
			if !connected {
				g.SetEdge(u, vertex(l+1, rng.Intn(width)), 1+rng.Int63n(maxW))
			}
		}
	}
	return g
}
