package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParse asserts the graph reader never panics, and that everything it
// accepts survives a Format/Parse round trip unchanged.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"n 3\ne 0 1 5\ne 1 2 7\n",
		"n 1\n",
		"# comment\n\nn 2\ne 0 1 3\n",
		"e 0 1 2\n",
		"n 0\n",
		"n 2\ne 0 5 1\n",
		"n -1\n",
		"n 2\ne 0 1 -2\n",
		"garbage",
		"n 2\ne 0 1 9223372036854775807\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := g.Format(&buf); err != nil {
			t.Fatalf("Format failed on parsed graph: %v", err)
		}
		back, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.N != g.N || !reflect.DeepEqual(back.W, g.W) {
			t.Fatal("round trip changed the graph")
		}
	})
}
