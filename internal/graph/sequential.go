package graph

import (
	"container/heap"
	"fmt"
)

// Result is the output of a single-destination MCP computation: for every
// vertex i, Dist[i] is the cost of a minimum cost path from i to Dest
// (NoEdge if unreachable) and Next[i] is the vertex following i on such a
// path (-1 for Dest itself and for unreachable vertices). It is the
// host-side mirror of the paper's SOW and PTN rows.
type Result struct {
	Dest int
	Dist []int64
	Next []int
	// Iterations is the number of DP rounds executed (Bellman-Ford and the
	// parallel backends; 0 for Dijkstra/Floyd-Warshall). With the paper's
	// do-while termination rule it equals the maximum MCP length p for
	// p >= 1 (p-1 productive rounds plus the round that detects no change).
	Iterations int
	// Relaxations counts sequential edge relaxations (work, for the
	// sequential-vs-parallel comparison).
	Relaxations int64
}

// PathFrom follows Next from v to Dest, returning the vertex sequence
// (inclusive of both endpoints). ok is false if v cannot reach Dest.
func (r *Result) PathFrom(v int) (path []int, ok bool) {
	if v < 0 || v >= len(r.Dist) {
		return nil, false
	}
	if v == r.Dest {
		return []int{v}, true
	}
	if r.Dist[v] == NoEdge {
		return nil, false
	}
	path = []int{v}
	for steps := 0; v != r.Dest; steps++ {
		if steps > len(r.Dist) {
			return nil, false // malformed Next would cycle forever
		}
		v = r.Next[v]
		if v < 0 || v >= len(r.Dist) {
			return nil, false
		}
		path = append(path, v)
	}
	return path, true
}

// addNoEdge adds two costs, treating NoEdge as +infinity.
func addNoEdge(a, b int64) int64 {
	if a == NoEdge || b == NoEdge {
		return NoEdge
	}
	return a + b
}

// BellmanFord computes single-destination MCP with the synchronous
// (Jacobi) dynamic program the paper parallelizes: round k extends every
// candidate path by one edge, and the loop stops when a round changes
// nothing. Ties select the smallest next-vertex index and a round that
// does not improve a vertex leaves its Next pointer untouched — exactly
// the PTN update rule of the paper, so Dist *and* Next match the PPA
// backend element for element.
func BellmanFord(g *Graph, dest int) (*Result, error) {
	if dest < 0 || dest >= g.N {
		return nil, fmt.Errorf("graph: destination %d out of range [0,%d)", dest, g.N)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.N
	r := &Result{Dest: dest, Dist: make([]int64, n), Next: make([]int, n)}
	for i := 0; i < n; i++ {
		r.Dist[i] = g.At(i, dest) // 1-edge paths (statements 4-7)
		if r.Dist[i] != NoEdge {
			r.Next[i] = dest
		} else {
			r.Next[i] = -1
		}
	}
	r.Dist[dest] = 0
	r.Next[dest] = -1

	newDist := make([]int64, n)
	for {
		r.Iterations++
		changed := false
		copy(newDist, r.Dist)
		for i := 0; i < n; i++ {
			if i == dest {
				continue
			}
			best, arg := r.Dist[i], -1
			for j := 0; j < n; j++ {
				cand := addNoEdge(g.At(i, j), r.Dist[j])
				r.Relaxations++
				if cand < best {
					best, arg = cand, j
				}
			}
			if arg >= 0 {
				newDist[i] = best
				r.Next[i] = arg
				changed = true
			}
		}
		copy(r.Dist, newDist)
		if !changed {
			break
		}
		if r.Iterations > n+1 {
			return nil, fmt.Errorf("graph: Bellman-Ford did not converge in %d rounds (negative cycle?)", n+1)
		}
	}
	return r, nil
}

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	v    int
	dist int64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// Dijkstra computes single-destination MCP by running Dijkstra's algorithm
// over reversed edges from dest. It is the fast sequential baseline
// (O(n^2 log n) on the dense matrix); Next tie-breaking may differ from
// BellmanFord, but distances are always identical.
func Dijkstra(g *Graph, dest int) (*Result, error) {
	if dest < 0 || dest >= g.N {
		return nil, fmt.Errorf("graph: destination %d out of range [0,%d)", dest, g.N)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.N
	r := &Result{Dest: dest, Dist: make([]int64, n), Next: make([]int, n)}
	for i := range r.Dist {
		r.Dist[i] = NoEdge
		r.Next[i] = -1
	}
	r.Dist[dest] = 0
	done := make([]bool, n)
	q := &pq{{dest, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		// Relax reversed edges: predecessors i with edge i -> it.v.
		for i := 0; i < n; i++ {
			w := g.At(i, it.v)
			if w == NoEdge || done[i] {
				continue
			}
			r.Relaxations++
			if cand := addNoEdge(w, it.dist); cand < r.Dist[i] {
				r.Dist[i] = cand
				r.Next[i] = it.v
				heap.Push(q, pqItem{i, cand})
			}
		}
	}
	return r, nil
}

// FloydWarshall returns the full all-pairs distance matrix (row-major:
// dist[i*n+j] is the MCP cost from i to j, NoEdge if unreachable). Used to
// cross-validate the single-destination backends.
func FloydWarshall(g *Graph) []int64 {
	n := g.N
	dist := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				dist[i*n+j] = 0
			default:
				dist[i*n+j] = g.At(i, j)
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := dist[i*n+k]
			if dik == NoEdge {
				continue
			}
			for j := 0; j < n; j++ {
				if cand := addNoEdge(dik, dist[k*n+j]); cand < dist[i*n+j] {
					dist[i*n+j] = cand
				}
			}
		}
	}
	return dist
}

// MaxPathLength returns p, the maximum number of edges on any minimum cost
// path to dest over all vertices that can reach it, computed by a BFS-like
// DP on the optimal-subpath graph. This is the p of the paper's O(p·h)
// bound. Vertices with several optimal paths count the shortest edge
// count among them.
func MaxPathLength(g *Graph, dest int) (int, error) {
	bf, err := BellmanFord(g, dest)
	if err != nil {
		return 0, err
	}
	n := g.N
	// hops[i] = minimum edge count over optimal paths from i to dest.
	hops := make([]int, n)
	for i := range hops {
		hops[i] = -1
	}
	hops[dest] = 0
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if i == dest || bf.Dist[i] == NoEdge {
				continue
			}
			for j := 0; j < n; j++ {
				if hops[j] < 0 || g.At(i, j) == NoEdge {
					continue
				}
				if addNoEdge(g.At(i, j), bf.Dist[j]) == bf.Dist[i] {
					if cand := hops[j] + 1; hops[i] < 0 || cand < hops[i] {
						hops[i] = cand
						changed = true
					}
				}
			}
		}
	}
	p := 0
	for _, h := range hops {
		if h > p {
			p = h
		}
	}
	return p, nil
}
