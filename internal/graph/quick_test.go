package graph

import (
	"reflect"
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the graph substrate's core
// invariants.

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64, nRaw uint8, density uint8) bool {
		n := 1 + int(nRaw%12)
		g := GenRandom(n, float64(density%100)/100, 9, seed)
		return reflect.DeepEqual(g.Transpose().Transpose().W, g.W)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickTransposeReversesDistances(t *testing.T) {
	// dist_g(i -> d) == dist_{g^T}(d -> i)'s column: BellmanFord on the
	// transpose from d gives the same vector.
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := 2 + int(nRaw%10)
		d := int(dRaw) % n
		g := GenRandom(n, 0.35, 9, seed)
		fwd, err := BellmanFord(g, d)
		if err != nil {
			return false
		}
		// In g^T, dist(i -> d) becomes the single-source distances FROM d,
		// which equals single-destination distances TO d in (g^T)^T = g.
		// Check via Floyd-Warshall on the transpose: row d there equals
		// column d in g, i.e. fwd.Dist.
		fw := FloydWarshall(g.Transpose())
		for i := 0; i < n; i++ {
			if fw[d*n+i] != fwd.Dist[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickBellmanFordAlwaysCertifiable(t *testing.T) {
	f := func(seed int64, nRaw, dRaw, wRaw uint8) bool {
		n := 1 + int(nRaw%12)
		d := int(dRaw) % n
		maxW := 1 + int64(wRaw%30)
		g := GenRandom(n, 0.3, maxW, seed)
		r, err := BellmanFord(g, d)
		if err != nil {
			return false
		}
		return CheckResult(g, r) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickWidestAlwaysCertifiable(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := 1 + int(nRaw%12)
		d := int(dRaw) % n
		g := GenRandom(n, 0.3, 20, seed)
		r, err := BellmanFordWidest(g, d)
		if err != nil {
			return false
		}
		return CheckWidestResult(g, r) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickDiameterGeneratorExact(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := 2 + int(nRaw%14)
		p := 1 + int(pRaw)%(n-1)
		g := GenDiameter(n, p)
		got, err := MaxPathLength(g, 0)
		return err == nil && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxWeightNonNegativeAndTight(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%10)
		g := GenRandom(n, 0.5, 17, seed)
		max := g.MaxWeight()
		if max < 0 || max > 17 {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if w := g.At(i, j); w != NoEdge && w > max {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
