package graph

import "fmt"

// WeightUpdate is one dynamic-graph edit: set the weight of edge U -> V to
// W, or delete the edge when W is NoEdge. It is the vocabulary shared by
// the incremental solver (core.Session.Update), the streaming update
// sessions of internal/serve, and the differential tests — "a weight
// changed" travels through every layer as this triple.
type WeightUpdate struct {
	U int   `json:"u"`
	V int   `json:"v"`
	W int64 `json:"w"`
}

// Validate checks the update against an n-vertex graph: endpoints in
// range, weight non-negative or the NoEdge sentinel.
func (u WeightUpdate) Validate(n int) error {
	if u.U < 0 || u.U >= n {
		return fmt.Errorf("graph: update source %d out of range [0,%d)", u.U, n)
	}
	if u.V < 0 || u.V >= n {
		return fmt.Errorf("graph: update target %d out of range [0,%d)", u.V, n)
	}
	if u.W != NoEdge && u.W < 0 {
		return fmt.Errorf("graph: negative weight %d on update %d->%d", u.W, u.U, u.V)
	}
	return nil
}

// Removes reports whether the update deletes its edge.
func (u WeightUpdate) Removes() bool { return u.W == NoEdge }

// Apply applies the updates in order. The batch is atomic: every update is
// validated first, and on error the graph is unchanged. Updates may repeat
// an edge; the last write wins.
func (g *Graph) Apply(updates []WeightUpdate) error {
	for _, u := range updates {
		if err := u.Validate(g.N); err != nil {
			return err
		}
	}
	for _, u := range updates {
		g.W[u.U*g.N+u.V] = u.W
	}
	return nil
}
