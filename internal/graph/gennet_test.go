package graph

import (
	"reflect"
	"testing"
)

func TestGenSmallWorldStructure(t *testing.T) {
	g := GenSmallWorld(20, 2, 0.1, 9, 7)
	if !g.Symmetric() {
		t.Error("small world not symmetric")
	}
	// With beta = 0 the ring lattice is exact: every vertex has degree 2k.
	lattice := GenSmallWorld(12, 2, 0, 5, 1)
	for u := 0; u < 12; u++ {
		deg := 0
		for v := 0; v < 12; v++ {
			if lattice.HasEdge(u, v) {
				deg++
			}
		}
		if deg != 4 {
			t.Errorf("lattice degree(%d) = %d, want 4", u, deg)
		}
	}
	// Connected: everything reaches vertex 0.
	bf, err := BellmanFord(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range bf.Dist {
		if d == NoEdge {
			t.Errorf("small-world vertex %d unreachable", i)
		}
	}
}

func TestGenSmallWorldDeterministic(t *testing.T) {
	a := GenSmallWorld(15, 2, 0.3, 9, 4)
	b := GenSmallWorld(15, 2, 0.3, 9, 4)
	if !reflect.DeepEqual(a.W, b.W) {
		t.Error("not deterministic in seed")
	}
	c := GenSmallWorld(15, 2, 0.3, 9, 5)
	if reflect.DeepEqual(a.W, c.W) {
		t.Error("different seeds identical")
	}
}

func TestGenSmallWorldPanics(t *testing.T) {
	for _, f := range []func(){
		func() { GenSmallWorld(2, 1, 0.1, 5, 1) },
		func() { GenSmallWorld(6, 3, 0.1, 5, 1) },
		func() { GenSmallWorld(6, 0, 0.1, 5, 1) },
		func() { GenSmallWorld(6, 2, 1.5, 5, 1) },
		func() { GenSmallWorld(6, 2, 0.1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad small-world args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestGenScaleFreeStructure(t *testing.T) {
	const n, m = 30, 2
	g := GenScaleFree(n, m, 9, 11)
	if !g.Symmetric() {
		t.Error("scale free not symmetric")
	}
	// Every late vertex attached at least m edges; the hubs exist.
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg := 0
		for v := 0; v < n; v++ {
			if g.HasEdge(u, v) {
				deg++
			}
		}
		if u > m && deg < m {
			t.Errorf("vertex %d degree %d < m", u, deg)
		}
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	// Preferential attachment concentrates degree: the biggest hub should
	// clearly exceed the minimum attachment degree.
	if maxDeg < 2*m {
		t.Errorf("max degree %d suspiciously flat", maxDeg)
	}
	// Connected by construction.
	bf, err := BellmanFord(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range bf.Dist {
		if d == NoEdge {
			t.Errorf("scale-free vertex %d unreachable", i)
		}
	}
}

func TestGenScaleFreeDeterministicAndPanics(t *testing.T) {
	a := GenScaleFree(20, 2, 9, 3)
	b := GenScaleFree(20, 2, 9, 3)
	if !reflect.DeepEqual(a.W, b.W) {
		t.Error("not deterministic in seed")
	}
	for _, f := range []func(){
		func() { GenScaleFree(3, 3, 5, 1) },
		func() { GenScaleFree(5, 0, 5, 1) },
		func() { GenScaleFree(5, 2, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad scale-free args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestNetworkGeneratorsSolveCorrectly(t *testing.T) {
	for name, g := range map[string]*Graph{
		"smallworld": GenSmallWorld(14, 2, 0.2, 9, 9),
		"scalefree":  GenScaleFree(14, 2, 9, 9),
	} {
		bf, err := BellmanFord(g, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := CheckResult(g, bf); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
