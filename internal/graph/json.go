package graph

import (
	"encoding/json"
	"fmt"
)

// graphJSON is the wire shape of a Graph: the vertex count plus a sparse
// edge list of [from, to, weight] triples. It is the JSON twin of the
// line-oriented text format (Format/Parse) and is what the solver service
// (internal/serve) accepts and the load generator emits.
// Edges is [][]int64 rather than [][3]int64 so that a wrong-arity triple
// is rejected (a fixed-size array would silently zero-fill it).
type graphJSON struct {
	N     int       `json:"n"`
	Edges [][]int64 `json:"edges"`
}

// MarshalJSON encodes the graph as {"n": <count>, "edges": [[i,j,w], ...]}
// with edges in row-major order; absent edges (NoEdge) are omitted.
func (g *Graph) MarshalJSON() ([]byte, error) {
	wire := graphJSON{N: g.N, Edges: make([][]int64, 0, g.Edges())}
	for i := 0; i < g.N; i++ {
		for j := 0; j < g.N; j++ {
			if wt := g.At(i, j); wt != NoEdge {
				wire.Edges = append(wire.Edges, []int64{int64(i), int64(j), wt})
			}
		}
	}
	return json.Marshal(wire)
}

// UnmarshalJSON decodes the MarshalJSON representation, applying the same
// admission checks as the text Parse: the vertex count must lie in
// [1, MaxParseVertices] (the dense matrix allocates n^2 cells, so an
// untrusted request must not be able to demand an absurd allocation),
// vertices must be in range, and weights must be non-negative. As in the
// text format, a repeated edge keeps the last weight.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var wire graphJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return fmt.Errorf("graph: %v", err)
	}
	if wire.N < 1 {
		return fmt.Errorf("graph: n = %d < 1", wire.N)
	}
	if wire.N > MaxParseVertices {
		return fmt.Errorf("graph: n = %d exceeds MaxParseVertices (%d)", wire.N, MaxParseVertices)
	}
	n := wire.N
	w := make([]int64, n*n)
	for i := range w {
		w[i] = NoEdge
	}
	for k, e := range wire.Edges {
		if len(e) != 3 {
			return fmt.Errorf("graph: edge %d: want [from, to, weight], got %d elements", k, len(e))
		}
		i, j, wt := e[0], e[1], e[2]
		if i < 0 || i >= int64(n) || j < 0 || j >= int64(n) {
			return fmt.Errorf("graph: edge %d: vertex out of range", k)
		}
		if wt < 0 {
			return fmt.Errorf("graph: edge %d: negative weight %d", k, wt)
		}
		w[i*int64(n)+j] = wt
	}
	g.N = n
	g.W = w
	return nil
}
