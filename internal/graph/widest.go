package graph

import "fmt"

// This file provides the host-side reference for the widest-path
// (maximum-bottleneck) problem, the (max, min) semiring dual of minimum
// cost paths: the capacity of a path is its smallest edge weight, and
// Cap[i] is the largest capacity over all paths from i to the
// destination. It mirrors BellmanFord's structure (synchronous rounds,
// strict-improvement pointer updates, smallest-index tie-breaks) so the
// PPA widest-path solver can be compared element for element.

// WidestResult is the outcome of a single-destination widest-path
// computation. Cap[dest] is Unbounded (the empty path has no bottleneck);
// unreachable vertices have capacity 0.
type WidestResult struct {
	Dest int
	Cap  []int64
	Next []int
	// Iterations counts DP rounds (as in Result).
	Iterations int
}

// Unbounded is the host-side "infinite capacity" sentinel (the
// destination's own capacity).
const Unbounded = int64(-1)

// minCap combines an edge weight with a downstream capacity: the
// bottleneck of taking the edge then the path.
func minCap(edge int64, cap int64) int64 {
	if edge == NoEdge {
		return 0 // missing edge carries no capacity
	}
	if cap == Unbounded {
		return edge
	}
	if edge < cap {
		return edge
	}
	return cap
}

// BellmanFordWidest computes single-destination widest paths with the
// synchronous dynamic program (round k admits paths of <= k+1 edges).
func BellmanFordWidest(g *Graph, dest int) (*WidestResult, error) {
	if dest < 0 || dest >= g.N {
		return nil, fmt.Errorf("graph: destination %d out of range [0,%d)", dest, g.N)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.N
	r := &WidestResult{Dest: dest, Cap: make([]int64, n), Next: make([]int, n)}
	for i := 0; i < n; i++ {
		r.Cap[i] = minCap(g.At(i, dest), Unbounded)
		if r.Cap[i] > 0 {
			r.Next[i] = dest
		} else {
			r.Next[i] = -1
		}
	}
	r.Cap[dest] = Unbounded
	r.Next[dest] = -1

	newCap := make([]int64, n)
	for {
		r.Iterations++
		changed := false
		copy(newCap, r.Cap)
		for i := 0; i < n; i++ {
			if i == dest {
				continue
			}
			best, arg := r.Cap[i], -1
			for j := 0; j < n; j++ {
				if cand := minCap(g.At(i, j), r.Cap[j]); cand > best {
					best, arg = cand, j
				}
			}
			if arg >= 0 {
				newCap[i] = best
				r.Next[i] = arg
				changed = true
			}
		}
		copy(r.Cap, newCap)
		if !changed {
			break
		}
		if r.Iterations > n+1 {
			return nil, fmt.Errorf("graph: widest-path DP did not converge in %d rounds", n+1)
		}
	}
	return r, nil
}

// CheckWidestResult certifies a widest-path solution without trusting the
// solver: every finite capacity is witnessed by the Next chain (whose
// bottleneck equals the claimed capacity), and no single edge can improve
// any capacity (Cap[i] >= min(w(i,j), Cap[j]) for every edge).
func CheckWidestResult(g *Graph, r *WidestResult) error {
	n := g.N
	if len(r.Cap) != n || len(r.Next) != n {
		return fmt.Errorf("graph: widest result size mismatch")
	}
	if r.Dest < 0 || r.Dest >= n {
		return fmt.Errorf("graph: bad destination %d", r.Dest)
	}
	if r.Cap[r.Dest] != Unbounded {
		return fmt.Errorf("graph: Cap[dest] = %d, want Unbounded", r.Cap[r.Dest])
	}
	for i := 0; i < n; i++ {
		if i == r.Dest {
			continue
		}
		switch {
		case r.Cap[i] == 0:
			if r.Next[i] != -1 {
				return fmt.Errorf("graph: vertex %d has no path but Next = %d", i, r.Next[i])
			}
		case r.Cap[i] < 0:
			return fmt.Errorf("graph: vertex %d has invalid capacity %d", i, r.Cap[i])
		default:
			// Walk the witness path, tracking its bottleneck.
			bottleneck := Unbounded
			v := i
			for steps := 0; v != r.Dest; steps++ {
				if steps > n {
					return fmt.Errorf("graph: vertex %d: Next chain cycles", i)
				}
				nxt := r.Next[v]
				if nxt < 0 || nxt >= n || g.At(v, nxt) == NoEdge {
					return fmt.Errorf("graph: vertex %d: broken witness at %d -> %d", i, v, nxt)
				}
				bottleneck = minCap(g.At(v, nxt), bottleneck)
				v = nxt
			}
			if bottleneck != r.Cap[i] {
				return fmt.Errorf("graph: vertex %d: witness bottleneck %d, Cap says %d", i, bottleneck, r.Cap[i])
			}
		}
		for j := 0; j < n; j++ {
			if cand := minCap(g.At(i, j), r.Cap[j]); cand > r.Cap[i] {
				return fmt.Errorf("graph: edge %d->%d improves Cap[%d] from %d to %d (not optimal)",
					i, j, i, r.Cap[i], cand)
			}
		}
	}
	return nil
}
