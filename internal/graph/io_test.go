package graph

import (
	"errors"
	"testing"
)

// failingWriter errors after a byte budget, to drive Format's error paths.
type failingWriter struct{ budget int }

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.budget <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > w.budget {
		n := w.budget
		w.budget = 0
		return n, errors.New("disk full")
	}
	w.budget -= len(p)
	return len(p), nil
}

func TestFormatPropagatesWriteErrors(t *testing.T) {
	g := GenComplete(16, 9, 1) // enough output to overflow small budgets
	for _, budget := range []int{0, 3, 40} {
		if err := g.Format(&failingWriter{budget: budget}); err == nil {
			t.Errorf("budget %d: Format succeeded on a failing writer", budget)
		}
	}
}
