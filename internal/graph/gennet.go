package graph

import (
	"fmt"
	"math/rand"
)

// GenSmallWorld returns a Watts-Strogatz small-world network: a ring
// lattice in which every vertex connects to its k nearest neighbours on
// each side, with each lattice edge rewired to a random endpoint with
// probability beta. Edges are symmetric with weights uniform in
// [1, maxW]; the routing-table workloads of the netroute example are of
// this shape. Deterministic in seed.
func GenSmallWorld(n, k int, beta float64, maxW int64, seed int64) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: small world needs n >= 3, got %d", n))
	}
	if k < 1 || 2*k >= n {
		panic(fmt.Sprintf("graph: small world needs 1 <= k < n/2, got k=%d n=%d", k, n))
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("graph: rewire probability %v outside [0,1]", beta))
	}
	if maxW < 1 {
		panic(fmt.Sprintf("graph: maxW %d < 1", maxW))
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	addBoth := func(u, v int) {
		w := 1 + rng.Int63n(maxW)
		g.SetEdge(u, v, w)
		g.SetEdge(v, u, w)
	}
	for u := 0; u < n; u++ {
		for d := 1; d <= k; d++ {
			v := (u + d) % n
			if rng.Float64() < beta {
				// Rewire to a random non-self, non-duplicate endpoint.
				for tries := 0; tries < 4*n; tries++ {
					cand := rng.Intn(n)
					if cand != u && !g.HasEdge(u, cand) {
						v = cand
						break
					}
				}
			}
			if !g.HasEdge(u, v) {
				addBoth(u, v)
			}
		}
	}
	return g
}

// GenScaleFree returns a Barabási-Albert preferential-attachment network:
// vertices join one at a time, each attaching m symmetric edges to
// existing vertices with probability proportional to their current
// degree. Weights are uniform in [1, maxW]. Deterministic in seed.
func GenScaleFree(n, m int, maxW int64, seed int64) *Graph {
	if m < 1 || n < m+1 {
		panic(fmt.Sprintf("graph: scale free needs 1 <= m < n, got m=%d n=%d", m, n))
	}
	if maxW < 1 {
		panic(fmt.Sprintf("graph: maxW %d < 1", maxW))
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	// endpoints lists every edge endpoint once per incidence: sampling a
	// uniform element is preferential attachment.
	endpoints := make([]int, 0, 2*m*n)
	addBoth := func(u, v int) {
		w := 1 + rng.Int63n(maxW)
		g.SetEdge(u, v, w)
		g.SetEdge(v, u, w)
		endpoints = append(endpoints, u, v)
	}
	// Seed clique over the first m+1 vertices.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			addBoth(u, v)
		}
	}
	for u := m + 1; u < n; u++ {
		attached := 0
		for tries := 0; attached < m && tries < 100*m; tries++ {
			v := endpoints[rng.Intn(len(endpoints))]
			if v != u && !g.HasEdge(u, v) {
				addBoth(u, v)
				attached++
			}
		}
		// Degenerate fallback (tiny graphs): attach to the lowest-index
		// vertices not yet connected.
		for v := 0; attached < m && v < n; v++ {
			if v != u && !g.HasEdge(u, v) {
				addBoth(u, v)
				attached++
			}
		}
	}
	return g
}
