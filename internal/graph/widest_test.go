package graph

import (
	"math/rand"
	"testing"
)

func TestBellmanFordWidestChain(t *testing.T) {
	// 0 -3-> 1 -7-> 2 -5-> 3: bottleneck from 0 is 3, from 1 is 5.
	g := New(4)
	g.SetEdge(0, 1, 3)
	g.SetEdge(1, 2, 7)
	g.SetEdge(2, 3, 5)
	r, err := BellmanFordWidest(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap[0] != 3 || r.Cap[1] != 5 || r.Cap[2] != 5 || r.Cap[3] != Unbounded {
		t.Errorf("Cap = %v", r.Cap)
	}
	if r.Next[0] != 1 || r.Next[3] != -1 {
		t.Errorf("Next = %v", r.Next)
	}
	if err := CheckWidestResult(g, r); err != nil {
		t.Error(err)
	}
}

func TestBellmanFordWidestPrefersWiderDetour(t *testing.T) {
	// Direct 0->2 capacity 2; detour 0->1->2 capacity min(9, 8) = 8.
	g := New(3)
	g.SetEdge(0, 2, 2)
	g.SetEdge(0, 1, 9)
	g.SetEdge(1, 2, 8)
	r, err := BellmanFordWidest(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap[0] != 8 || r.Next[0] != 1 {
		t.Errorf("Cap[0]=%d Next[0]=%d, want 8 via 1", r.Cap[0], r.Next[0])
	}
	if err := CheckWidestResult(g, r); err != nil {
		t.Error(err)
	}
}

func TestBellmanFordWidestUnreachable(t *testing.T) {
	g := GenChain(4, 5)
	r, err := BellmanFordWidest(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cap[1] != 0 || r.Next[1] != -1 {
		t.Errorf("unreachable: %v %v", r.Cap, r.Next)
	}
	if err := CheckWidestResult(g, r); err != nil {
		t.Error(err)
	}
}

func TestBellmanFordWidestErrors(t *testing.T) {
	if _, err := BellmanFordWidest(New(3), 4); err == nil {
		t.Error("bad dest accepted")
	}
	bad := New(2)
	bad.W[1] = -1
	if _, err := BellmanFordWidest(bad, 0); err == nil {
		t.Error("invalid graph accepted")
	}
}

// widestFloyd is an independent all-pairs reference (Floyd-Warshall under
// the (max, min) semiring).
func widestFloyd(g *Graph) []int64 {
	n := g.N
	cap := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j:
				cap[i*n+j] = Unbounded
			case g.At(i, j) != NoEdge:
				cap[i*n+j] = g.At(i, j)
			}
		}
	}
	min2 := func(a, b int64) int64 {
		if a == Unbounded {
			return b
		}
		if b == Unbounded {
			return a
		}
		if a < b {
			return a
		}
		return b
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				through := min2(cap[i*n+k], cap[k*n+j])
				cap[i*n+j] = max2Finite(cap[i*n+j], through)
			}
		}
	}
	return cap
}

func max2Finite(a, b int64) int64 {
	if a == Unbounded || b == Unbounded {
		return Unbounded
	}
	if a > b {
		return a
	}
	return b
}

func TestBellmanFordWidestAgainstFloyd(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(10)
		g := GenRandom(n, 0.2+rng.Float64()*0.5, 1+int64(rng.Intn(30)), rng.Int63())
		fw := widestFloyd(g)
		dest := rng.Intn(n)
		r, err := BellmanFordWidest(g, dest)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if i == dest {
				continue
			}
			if r.Cap[i] != fw[i*n+dest] {
				t.Fatalf("trial %d (%d->%d): BF %d, Floyd %d", trial, i, dest, r.Cap[i], fw[i*n+dest])
			}
		}
		if err := CheckWidestResult(g, r); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCheckWidestResultCatchesLies(t *testing.T) {
	g := New(3)
	g.SetEdge(0, 1, 4)
	g.SetEdge(1, 2, 6)
	r, _ := BellmanFordWidest(g, 2)

	tamper := func(f func(x *WidestResult)) *WidestResult {
		cp := &WidestResult{Dest: r.Dest,
			Cap:  append([]int64(nil), r.Cap...),
			Next: append([]int(nil), r.Next...)}
		f(cp)
		return cp
	}
	if err := CheckWidestResult(g, tamper(func(x *WidestResult) { x.Cap[0] = 9 })); err == nil {
		t.Error("inflated capacity accepted")
	}
	if err := CheckWidestResult(g, tamper(func(x *WidestResult) { x.Cap[0] = 1 })); err == nil {
		t.Error("deflated capacity accepted")
	}
	if err := CheckWidestResult(g, tamper(func(x *WidestResult) { x.Next[0] = 0 })); err == nil {
		t.Error("cyclic Next accepted")
	}
	if err := CheckWidestResult(g, tamper(func(x *WidestResult) { x.Cap[2] = 5 })); err == nil {
		t.Error("finite dest capacity accepted")
	}
	if err := CheckWidestResult(g, tamper(func(x *WidestResult) { x.Cap[0] = -7 })); err == nil {
		t.Error("negative capacity accepted")
	}
	if err := CheckWidestResult(g, &WidestResult{Dest: 9, Cap: r.Cap, Next: r.Next}); err == nil {
		t.Error("bad dest accepted")
	}
	if err := CheckWidestResult(g, &WidestResult{Dest: 2, Cap: r.Cap[:1], Next: r.Next}); err == nil {
		t.Error("short result accepted")
	}
}
