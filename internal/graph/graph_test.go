package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestNewAndAccessors(t *testing.T) {
	g := New(3)
	if g.Edges() != 0 || g.HasEdge(0, 1) {
		t.Error("new graph not empty")
	}
	g.SetEdge(0, 1, 5)
	g.SetEdge(1, 2, 7)
	if g.At(0, 1) != 5 || g.At(1, 2) != 7 || g.At(2, 0) != NoEdge {
		t.Error("At/SetEdge wrong")
	}
	if g.Edges() != 2 || g.MaxWeight() != 7 {
		t.Errorf("Edges=%d MaxWeight=%d", g.Edges(), g.MaxWeight())
	}
	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) || g.Edges() != 1 {
		t.Error("RemoveEdge failed")
	}
}

func TestNewPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestSetEdgeRejectsNegative(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	g.SetEdge(0, 1, -3)
}

func TestCloneIndependence(t *testing.T) {
	g := New(2)
	g.SetEdge(0, 1, 1)
	c := g.Clone()
	c.SetEdge(1, 0, 9)
	if g.HasEdge(1, 0) {
		t.Error("Clone shares storage")
	}
}

func TestTransposeAndSymmetric(t *testing.T) {
	g := New(3)
	g.SetEdge(0, 1, 4)
	g.SetEdge(2, 1, 6)
	tr := g.Transpose()
	if tr.At(1, 0) != 4 || tr.At(1, 2) != 6 || tr.At(0, 1) != NoEdge {
		t.Error("Transpose wrong")
	}
	if g.Symmetric() {
		t.Error("asymmetric graph reported symmetric")
	}
	g.SetEdge(1, 0, 4)
	g.SetEdge(1, 2, 6)
	if !g.Symmetric() {
		t.Error("symmetric graph reported asymmetric")
	}
	if !reflect.DeepEqual(g.Transpose().W, g.W) {
		t.Error("transpose of symmetric differs")
	}
}

func TestValidate(t *testing.T) {
	g := New(2)
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
	g.W[1] = -1 // bypass SetEdge guard
	if err := g.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	g2 := &Graph{N: 2, W: make([]int64, 3)}
	if err := g2.Validate(); err == nil {
		t.Error("bad matrix length accepted")
	}
}

func TestBitsNeeded(t *testing.T) {
	g := New(4)
	g.SetEdge(0, 1, 10)
	// Bound = 3*10+1 = 31; need 2^h-1 > 31 -> h = 6.
	if got := g.BitsNeeded(); got != 6 {
		t.Errorf("BitsNeeded = %d, want 6", got)
	}
	// A single-vertex graph still needs one bit.
	if got := New(1).BitsNeeded(); got < 1 {
		t.Errorf("BitsNeeded on trivial graph = %d", got)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	g := GenRandom(7, 0.4, 9, 11)
	var buf bytes.Buffer
	if err := g.Format(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || !reflect.DeepEqual(back.W, g.W) {
		t.Error("round trip differs")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                  // missing header
		"e 0 1 2\n",         // edge before header
		"n 0\n",             // bad n
		"n 2\ne 0 5 1\n",    // vertex out of range
		"n 2\ne 0 1 -2\n",   // negative weight
		"n 2\nbogus line\n", // unrecognized
		"n x\n",             // malformed n
		"n 2\ne 0 one 2\n",  // malformed edge
		"n 1000000000\n",    // absurd allocation request
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestParseSkipsCommentsAndBlank(t *testing.T) {
	in := "# comment\n\nn 2\n# another\ne 0 1 3\n"
	g, err := Parse(strings.NewReader(in))
	if err != nil || g.At(0, 1) != 3 {
		t.Fatalf("Parse with comments: %v, %v", g, err)
	}
}

func TestString(t *testing.T) {
	g := GenChain(4, 1)
	if got := g.String(); got != "graph(n=4, edges=3)" {
		t.Errorf("String = %q", got)
	}
}

func TestGenRandomDeterministicAndBounded(t *testing.T) {
	a := GenRandom(10, 0.5, 20, 3)
	b := GenRandom(10, 0.5, 20, 3)
	if !reflect.DeepEqual(a.W, b.W) {
		t.Error("GenRandom not deterministic in seed")
	}
	c := GenRandom(10, 0.5, 20, 4)
	if reflect.DeepEqual(a.W, c.W) {
		t.Error("different seeds gave identical graphs")
	}
	for i := 0; i < 10; i++ {
		if a.HasEdge(i, i) {
			t.Error("self loop generated")
		}
		for j := 0; j < 10; j++ {
			if w := a.At(i, j); w != NoEdge && (w < 1 || w > 20) {
				t.Errorf("weight %d outside [1,20]", w)
			}
		}
	}
}

func TestGenRandomPanics(t *testing.T) {
	for _, f := range []func(){
		func() { GenRandom(3, -0.1, 5, 1) },
		func() { GenRandom(3, 1.5, 5, 1) },
		func() { GenRandom(3, 0.5, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad GenRandom args did not panic")
				}
			}()
			f()
		}()
	}
}

func TestGenRandomConnectedReachability(t *testing.T) {
	g := GenRandomConnected(12, 0.05, 9, 5)
	bf, err := BellmanFord(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range bf.Dist {
		if d == NoEdge {
			t.Errorf("vertex %d unreachable in connected graph", i)
		}
	}
}

func TestGenChain(t *testing.T) {
	g := GenChain(5, 2)
	if g.Edges() != 4 || g.At(0, 1) != 2 || g.At(3, 4) != 2 || g.HasEdge(4, 0) {
		t.Error("GenChain wrong")
	}
}

func TestGenDiameter(t *testing.T) {
	for _, p := range []int{1, 3, 7} {
		g := GenDiameter(8, p)
		got, err := MaxPathLength(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Errorf("GenDiameter(8, %d): MaxPathLength = %d", p, got)
		}
		bf, _ := BellmanFord(g, 0)
		for i := 1; i < 8; i++ {
			if bf.Dist[i] == NoEdge {
				t.Errorf("GenDiameter(8, %d): vertex %d unreachable", p, i)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("GenDiameter(4, 4) did not panic")
		}
	}()
	GenDiameter(4, 4)
}

func TestGenRingStarComplete(t *testing.T) {
	r := GenRing(4, 3)
	if r.Edges() != 4 || r.At(3, 0) != 3 {
		t.Error("GenRing wrong")
	}
	s := GenStar(5, 2)
	if s.Edges() != 4 {
		t.Error("GenStar wrong")
	}
	for v := 1; v < 5; v++ {
		if s.At(v, 0) != 2 {
			t.Errorf("star edge %d->0 = %d", v, s.At(v, 0))
		}
	}
	k := GenComplete(4, 5, 1)
	if k.Edges() != 12 {
		t.Errorf("complete graph has %d edges, want 12", k.Edges())
	}
}

func TestGenGrid(t *testing.T) {
	g, blocked := GenGrid(GridSpec{Rows: 4, Cols: 5, MaxW: 3, Obstacle: 0.2, Seed: 9})
	if g.N != 20 || blocked[0] || blocked[19] {
		t.Fatal("grid shape or corner blocking wrong")
	}
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if !g.HasEdge(u, v) {
				continue
			}
			if blocked[u] || blocked[v] {
				t.Errorf("edge %d->%d touches an obstacle", u, v)
			}
			ur, uc, vr, vc := u/5, u%5, v/5, v%5
			manhattan := abs(ur-vr) + abs(uc-vc)
			if manhattan != 1 {
				t.Errorf("edge %d->%d is not a grid neighbour", u, v)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestGenLayeredDAG(t *testing.T) {
	g := GenLayeredDAG(4, 3, 5, 2)
	if g.N != 13 {
		t.Fatalf("n = %d, want 13", g.N)
	}
	sink := 12
	bf, err := BellmanFord(g, sink)
	if err != nil {
		t.Fatal(err)
	}
	// Every layer-0 vertex reaches the sink.
	for i := 0; i < 3; i++ {
		if bf.Dist[i] == NoEdge {
			t.Errorf("layer-0 vertex %d unreachable", i)
		}
	}
	// DAG property: no edge goes backwards or within a layer.
	for u := 0; u < 12; u++ {
		for v := 0; v < 13; v++ {
			if g.HasEdge(u, v) && v != sink && v/3 != u/3+1 {
				t.Errorf("edge %d->%d violates layering", u, v)
			}
		}
	}
}
