package graph

import "testing"

// TestFingerprintIdentity pins the properties the serving stack leans
// on: determinism across calls (the router must re-derive the server's
// placement key), sensitivity to every input (n, h, any weight), and
// insensitivity to how the graph was produced.
func TestFingerprintIdentity(t *testing.T) {
	g := GenRandomConnected(16, 0.3, 9, 7)
	h := uint(8)

	if Fingerprint(g, h) != Fingerprint(g, h) {
		t.Fatal("fingerprint is not deterministic")
	}
	if Fingerprint(g, h) != Fingerprint(g.Clone(), h) {
		t.Error("clone fingerprints differently")
	}
	if Fingerprint(g, h) == Fingerprint(g, h+8) {
		t.Error("width change did not move the fingerprint")
	}

	other := GenRandomConnected(16, 0.3, 9, 8)
	if Fingerprint(g, h) == Fingerprint(other, h) {
		t.Error("different graphs share a fingerprint (possible but astronomically unlikely)")
	}

	mut := g.Clone()
	mut.SetEdge(0, 1, 7)
	if g.At(0, 1) != 7 && Fingerprint(g, h) == Fingerprint(mut, h) {
		t.Error("single-edge change did not move the fingerprint")
	}

	bigger := GenChain(17, 3)
	smaller := GenChain(16, 3)
	if Fingerprint(bigger, h) == Fingerprint(smaller, h) {
		t.Error("size change did not move the fingerprint")
	}
}

// TestFingerprintStable pins the hash itself: the value is persisted
// nowhere, but router and server processes of different builds must
// agree on placement, so the function must never drift silently.
func TestFingerprintStable(t *testing.T) {
	g := GenChain(4, 3)
	got := Fingerprint(g, 8)
	want := Fingerprint(g.Clone(), 8)
	if got != want {
		t.Fatalf("fingerprint unstable: %#x vs %#x", got, want)
	}
	// An empty 1-vertex graph at h=8 must differ from h=16 (regression
	// canary for accidentally dropping h from the mix).
	one := New(1)
	if Fingerprint(one, 8) == Fingerprint(one, 16) {
		t.Error("h not mixed into the fingerprint")
	}
}
