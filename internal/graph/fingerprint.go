package graph

// Fingerprint hashes the solve-relevant identity of a graph at machine
// word width h (FNV-1a over n, h, and the dense weight matrix). It is
// the shared placement key of the serving stack: internal/serve
// micro-batches requests whose fingerprints match (with an exact graph
// compare behind it, so a collision costs a missed coalesce, never a
// wrong answer), and internal/router consistent-hashes it across the
// backend fleet so identical graphs land on the backend already holding
// a warm session for them. Router and server MUST hash identically —
// that is why this lives here and not in either of them.
func Fingerprint(g *Graph, h uint) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	fp := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			fp ^= v & 0xff
			fp *= prime64
			v >>= 8
		}
	}
	mix(uint64(g.N))
	mix(uint64(h))
	for _, w := range g.W {
		mix(uint64(w))
	}
	return fp
}
