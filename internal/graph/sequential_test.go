package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBellmanFordChain(t *testing.T) {
	g := GenChain(5, 2) // 0->1->2->3->4, weight 2
	r, err := BellmanFord(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int64{8, 6, 4, 2, 0}; !reflect.DeepEqual(r.Dist, want) {
		t.Errorf("Dist = %v, want %v", r.Dist, want)
	}
	if want := []int{1, 2, 3, 4, -1}; !reflect.DeepEqual(r.Next, want) {
		t.Errorf("Next = %v, want %v", r.Next, want)
	}
	// Max path length p = 4: 3 productive rounds + 1 detecting round.
	if r.Iterations != 4 {
		t.Errorf("Iterations = %d, want 4", r.Iterations)
	}
	if err := CheckResult(g, r); err != nil {
		t.Error(err)
	}
}

func TestBellmanFordUnreachable(t *testing.T) {
	g := GenChain(4, 1) // nothing reaches vertex 0
	r, err := BellmanFord(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist[0] != 0 || r.Dist[1] != NoEdge || r.Next[1] != -1 {
		t.Errorf("unreachable handling wrong: %v %v", r.Dist, r.Next)
	}
	if err := CheckResult(g, r); err != nil {
		t.Error(err)
	}
}

func TestBellmanFordSingleVertex(t *testing.T) {
	r, err := BellmanFord(New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist[0] != 0 || r.Next[0] != -1 || r.Iterations != 1 {
		t.Errorf("trivial graph: %+v", r)
	}
}

func TestBellmanFordBadDest(t *testing.T) {
	if _, err := BellmanFord(New(3), 5); err == nil {
		t.Error("out-of-range dest accepted")
	}
	if _, err := BellmanFord(New(3), -1); err == nil {
		t.Error("negative dest accepted")
	}
}

func TestBellmanFordKeepsNextOnTies(t *testing.T) {
	// Two equal-cost routes 0->1->3 and 0->2->3; plus direct 0->3 of the
	// same total cost discovered first. PTN rule: the pointer set in an
	// earlier round survives rounds that do not strictly improve the cost.
	g := New(4)
	g.SetEdge(0, 3, 4)
	g.SetEdge(0, 1, 2)
	g.SetEdge(1, 3, 2)
	g.SetEdge(0, 2, 2)
	g.SetEdge(2, 3, 2)
	r, err := BellmanFord(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist[0] != 4 {
		t.Fatalf("Dist[0] = %d, want 4", r.Dist[0])
	}
	if r.Next[0] != 3 {
		t.Errorf("Next[0] = %d, want the initial direct pointer 3", r.Next[0])
	}
}

func TestBellmanFordSmallestIndexTieBreak(t *testing.T) {
	// 0 has two strictly-improving equal-cost choices in the same round:
	// via 1 and via 2. The smaller index must win (selected_min(COL, ...)).
	g := New(4)
	g.SetEdge(0, 2, 5)
	g.SetEdge(0, 1, 5)
	g.SetEdge(1, 3, 5)
	g.SetEdge(2, 3, 5)
	r, err := BellmanFord(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dist[0] != 10 || r.Next[0] != 1 {
		t.Errorf("Dist[0]=%d Next[0]=%d, want 10 and 1", r.Dist[0], r.Next[0])
	}
}

func TestDijkstraMatchesBellmanFordRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(14)
		g := GenRandom(n, 0.3+rng.Float64()*0.5, 1+int64(rng.Intn(30)), rng.Int63())
		d := rng.Intn(n)
		bf, err := BellmanFord(g, d)
		if err != nil {
			t.Fatal(err)
		}
		dj, err := Dijkstra(g, d)
		if err != nil {
			t.Fatal(err)
		}
		if !SameDistances(bf, dj) {
			t.Fatalf("trial %d: BF %v != Dijkstra %v", trial, bf.Dist, dj.Dist)
		}
		if err := CheckResult(g, bf); err != nil {
			t.Fatalf("trial %d BF: %v", trial, err)
		}
		if err := CheckResult(g, dj); err != nil {
			t.Fatalf("trial %d Dijkstra: %v", trial, err)
		}
	}
}

func TestFloydWarshallCrossValidates(t *testing.T) {
	g := GenRandomConnected(9, 0.25, 12, 77)
	fw := FloydWarshall(g)
	for d := 0; d < g.N; d++ {
		bf, err := BellmanFord(g, d)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.N; i++ {
			if fw[i*g.N+d] != bf.Dist[i] {
				t.Errorf("dest %d vertex %d: FW %d, BF %d", d, i, fw[i*g.N+d], bf.Dist[i])
			}
		}
	}
}

func TestFloydWarshallDisconnected(t *testing.T) {
	g := New(3)
	g.SetEdge(0, 1, 2)
	fw := FloydWarshall(g)
	if fw[0*3+1] != 2 || fw[1*3+0] != NoEdge || fw[2*3+2] != 0 {
		t.Errorf("FW = %v", fw)
	}
}

func TestDijkstraBadDest(t *testing.T) {
	if _, err := Dijkstra(New(2), 2); err == nil {
		t.Error("bad dest accepted")
	}
}

func TestPathFrom(t *testing.T) {
	g := GenChain(4, 1)
	r, _ := BellmanFord(g, 3)
	path, ok := r.PathFrom(0)
	if !ok || !reflect.DeepEqual(path, []int{0, 1, 2, 3}) {
		t.Errorf("PathFrom(0) = %v, %v", path, ok)
	}
	if p, ok := r.PathFrom(3); !ok || !reflect.DeepEqual(p, []int{3}) {
		t.Error("PathFrom(dest) wrong")
	}
	if _, ok := r.PathFrom(-1); ok {
		t.Error("PathFrom(-1) succeeded")
	}
	if _, ok := r.PathFrom(9); ok {
		t.Error("PathFrom(out of range) succeeded")
	}
	rev, _ := BellmanFord(g, 0)
	if _, ok := rev.PathFrom(2); ok {
		t.Error("PathFrom(unreachable) succeeded")
	}
}

func TestPathFromDetectsCycle(t *testing.T) {
	r := &Result{Dest: 2, Dist: []int64{1, 1, 0}, Next: []int{1, 0, -1}}
	if _, ok := r.PathFrom(0); ok {
		t.Error("cyclic Next chain not detected")
	}
}

func TestPathCost(t *testing.T) {
	g := GenChain(4, 3)
	if c, err := PathCost(g, []int{0, 1, 2}); err != nil || c != 6 {
		t.Errorf("PathCost = %d, %v", c, err)
	}
	if _, err := PathCost(g, []int{2, 0}); err == nil {
		t.Error("missing edge accepted")
	}
	if _, err := PathCost(g, nil); err == nil {
		t.Error("empty path accepted")
	}
	if _, err := PathCost(g, []int{0, 9}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if c, err := PathCost(g, []int{2}); err != nil || c != 0 {
		t.Error("single-vertex path should cost 0")
	}
}

func TestCheckResultCatchesLies(t *testing.T) {
	g := GenChain(3, 1)
	r, _ := BellmanFord(g, 2)

	tooBig := &Result{Dest: 2, Dist: append([]int64(nil), r.Dist...), Next: append([]int(nil), r.Next...)}
	tooBig.Dist[0] = 5 // claims a worse-than-optimal distance
	if err := CheckResult(g, tooBig); err == nil {
		t.Error("suboptimal distance accepted")
	}

	tooSmall := &Result{Dest: 2, Dist: append([]int64(nil), r.Dist...), Next: append([]int(nil), r.Next...)}
	tooSmall.Dist[0] = 1 // claims an impossible distance
	if err := CheckResult(g, tooSmall); err == nil {
		t.Error("impossible distance accepted")
	}

	badNext := &Result{Dest: 2, Dist: append([]int64(nil), r.Dist...), Next: append([]int(nil), r.Next...)}
	badNext.Next[0] = 0 // self-loop pointer
	if err := CheckResult(g, badNext); err == nil {
		t.Error("cyclic Next accepted")
	}

	badDest := &Result{Dest: 9, Dist: r.Dist, Next: r.Next}
	if err := CheckResult(g, badDest); err == nil {
		t.Error("bad dest accepted")
	}

	short := &Result{Dest: 2, Dist: r.Dist[:2], Next: r.Next}
	if err := CheckResult(g, short); err == nil {
		t.Error("short result accepted")
	}

	badUnreach := &Result{Dest: 0, Dist: []int64{0, NoEdge, NoEdge}, Next: []int{-1, 2, -1}}
	if err := CheckResult(g, badUnreach); err == nil {
		t.Error("unreachable vertex with Next pointer accepted")
	}
}

func TestSameDistances(t *testing.T) {
	a := &Result{Dest: 0, Dist: []int64{0, 1}}
	b := &Result{Dest: 0, Dist: []int64{0, 1}}
	c := &Result{Dest: 0, Dist: []int64{0, 2}}
	d := &Result{Dest: 1, Dist: []int64{0, 1}}
	if !SameDistances(a, b) || SameDistances(a, c) || SameDistances(a, d) {
		t.Error("SameDistances wrong")
	}
}

func TestMaxPathLength(t *testing.T) {
	if p, _ := MaxPathLength(GenChain(6, 1), 5); p != 5 {
		t.Errorf("chain p = %d, want 5", p)
	}
	if p, _ := MaxPathLength(GenStar(6, 1), 0); p != 1 {
		t.Errorf("star p = %d, want 1", p)
	}
	// Equal-cost long and short routes: p counts the shortest witness.
	g := New(3)
	g.SetEdge(0, 2, 2)
	g.SetEdge(0, 1, 1)
	g.SetEdge(1, 2, 1)
	if p, _ := MaxPathLength(g, 2); p != 1 {
		t.Errorf("two-route p = %d, want 1", p)
	}
	if _, err := MaxPathLength(g, 9); err == nil {
		t.Error("bad dest accepted")
	}
}

func TestBellmanFordIterationsEqualsP(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		g := GenRandomConnected(n, 0.2, 9, rng.Int63())
		d := rng.Intn(n)
		r, err := BellmanFord(g, d)
		if err != nil {
			t.Fatal(err)
		}
		p, err := MaxPathLength(g, d)
		if err != nil {
			t.Fatal(err)
		}
		want := p
		if want < 1 {
			want = 1
		}
		if r.Iterations != want {
			t.Errorf("trial %d: Iterations = %d, p = %d", trial, r.Iterations, p)
		}
	}
}
