package serve

import (
	"context"
	"errors"
	"sync"

	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// Admission errors; the handler maps them to 429 and 503.
var (
	ErrOverloaded   = errors.New("serve: queue full")
	ErrShuttingDown = errors.New("serve: shutting down")
)

// job is one request's unit of solver work. The worker answers on done
// (buffered, so a handler that gave up on its deadline never blocks the
// worker).
type job struct {
	ctx   context.Context
	dests []int
	// rows, when non-nil, marks a streaming all-pairs job: the worker
	// sends every destination's result on rows as it lands (the channel is
	// buffered to n, so a handler that gave up never blocks the worker),
	// closes rows when the sweep ends, and only then finishes done with
	// the aggregate cost or error. Streaming jobs never coalesce: the
	// whole point of the sweep is that one session serves all n
	// destinations, so sharing a checkout buys nothing and would
	// interleave two streams' solve order.
	rows chan DestResult
	done chan jobDone
}

type jobDone struct {
	results    []DestResult
	cost       ppa.Metrics
	iterations int
	poolHit    bool
	batched    int
	err        error
	status     int // HTTP status to report err with
}

func (j *job) finish(d jobDone) { j.done <- d }

// batch is one session checkout's worth of work: one graph, the jobs
// queued against it. While a batch sits in the FIFO it is open — later
// requests for the same graph join it instead of occupying a queue slot,
// which is the micro-batching: a burst of queries against one topology
// costs one checkout and one weight DMA, and overlapping destination sets
// are solved once.
type batch struct {
	g    *graph.Graph
	h    uint
	fp   uint64
	jobs []*job
}

// queue is the bounded admission queue of batches. Enqueue never blocks:
// a full FIFO is an overload answered immediately (the closed-loop
// clients back off; the server does not build an unbounded backlog).
type queue struct {
	mu     sync.Mutex
	open   map[uint64][]*batch // still joinable: in FIFO, not yet taken
	ch     chan *batch
	closed bool

	batches, coalesced int64
}

func newQueue(depth int) *queue {
	return &queue{open: make(map[uint64][]*batch), ch: make(chan *batch, depth)}
}

func sameGraph(a, b *graph.Graph) bool {
	if a.N != b.N {
		return false
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			return false
		}
	}
	return true
}

// enqueue admits j: joining an open batch for the same graph if one is
// queued (no new slot consumed), otherwise claiming a FIFO slot. Batches
// are keyed by graph.Fingerprint — the same key the router tier hashes
// across the fleet — followed by an exact compare, so a collision costs
// a missed coalesce opportunity, never a wrong answer.
func (q *queue) enqueue(j *job, g *graph.Graph, h uint, maxBatch int) error {
	fp := graph.Fingerprint(g, h)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrShuttingDown
	}
	if j.rows == nil {
		for _, b := range q.open[fp] {
			if b.h == h && len(b.jobs) < maxBatch && sameGraph(b.g, g) {
				b.jobs = append(b.jobs, j)
				q.coalesced++
				return nil
			}
		}
	}
	b := &batch{g: g, h: h, fp: fp, jobs: []*job{j}}
	select {
	case q.ch <- b:
		// A streaming batch is exclusive: it is never registered as open,
		// so later same-graph jobs cannot join it (and it cannot be found
		// by take's open-list scan, which tolerates absence).
		if j.rows == nil {
			q.open[fp] = append(q.open[fp], b)
		}
		q.batches++
		return nil
	default:
		return ErrOverloaded
	}
}

// take closes b to joiners; the calling worker now owns its job list.
func (q *queue) take(b *batch) {
	q.mu.Lock()
	defer q.mu.Unlock()
	list := q.open[b.fp]
	for i, ob := range list {
		if ob == b {
			list[i] = list[len(list)-1]
			list[len(list)-1] = nil
			if len(list) == 1 {
				delete(q.open, b.fp)
			} else {
				q.open[b.fp] = list[:len(list)-1]
			}
			break
		}
	}
}

// depth is the number of batches waiting in the FIFO.
func (q *queue) depth() int { return len(q.ch) }

// stats returns (batches dispatched, jobs coalesced into existing batches).
func (q *queue) stats() (batches, coalesced int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.batches, q.coalesced
}

// shutdown stops admission and lets workers drain the FIFO.
func (q *queue) shutdown() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}
