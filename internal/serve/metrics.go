package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ppamcp/internal/ppa"
)

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram; +Inf is implicit. Warm solves land in the low-millisecond
// buckets, cold machine builds in the tens of milliseconds.
var latencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Metrics aggregates the service's observable behaviour. All methods are
// safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	requests map[string]map[int]int64 // path -> status -> count

	bucketCounts []int64
	latSum       float64
	latCount     int64

	solves   int64
	panics   int64
	deadline int64 // requests that died on their deadline
	cost     ppa.Metrics
}

// NewMetrics returns an empty aggregate.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:     make(map[string]map[int]int64),
		bucketCounts: make([]int64, len(latencyBuckets)+1),
	}
}

// RecordRequest counts one HTTP request by path and status code.
func (m *Metrics) RecordRequest(path string, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[path]
	if byCode == nil {
		byCode = make(map[int]int64)
		m.requests[path] = byCode
	}
	byCode[status]++
}

// ObserveLatency adds one /v1/solve request duration to the histogram.
func (m *Metrics) ObserveLatency(d time.Duration) {
	s := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	i := sort.SearchFloat64s(latencyBuckets, s)
	m.bucketCounts[i]++
	m.latSum += s
	m.latCount++
}

// AddSolves charges completed destination solves and their machine cost
// (the paper's counters: bus cycles, wired-OR cycles, PE ops, ...).
func (m *Metrics) AddSolves(n int64, cost ppa.Metrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.solves += n
	m.cost = m.cost.Add(cost)
}

// RecordPanic counts one isolated request panic.
func (m *Metrics) RecordPanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

// RecordDeadline counts one request abandoned at its deadline.
func (m *Metrics) RecordDeadline() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deadline++
}

// WritePrometheus renders the aggregate in Prometheus text exposition
// format, folding in the point-in-time gauges passed by the server.
func (m *Metrics) WritePrometheus(w io.Writer, pool PoolStats, queueDepth int, batches, coalesced int64) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP ppaserved_requests_total HTTP requests by path and status.\n")
	fmt.Fprintf(w, "# TYPE ppaserved_requests_total counter\n")
	paths := make([]string, 0, len(m.requests))
	for p := range m.requests {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		codes := make([]int, 0, len(m.requests[p]))
		for c := range m.requests[p] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "ppaserved_requests_total{path=%q,code=\"%d\"} %d\n", p, c, m.requests[p][c])
		}
	}

	fmt.Fprintf(w, "# HELP ppaserved_solve_latency_seconds /v1/solve request latency.\n")
	fmt.Fprintf(w, "# TYPE ppaserved_solve_latency_seconds histogram\n")
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += m.bucketCounts[i]
		fmt.Fprintf(w, "ppaserved_solve_latency_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.bucketCounts[len(latencyBuckets)]
	fmt.Fprintf(w, "ppaserved_solve_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "ppaserved_solve_latency_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(w, "ppaserved_solve_latency_seconds_count %d\n", m.latCount)

	fmt.Fprintf(w, "# HELP ppaserved_session_pool Session pool checkouts.\n")
	fmt.Fprintf(w, "# TYPE ppaserved_session_pool_hits_total counter\n")
	fmt.Fprintf(w, "ppaserved_session_pool_hits_total %d\n", pool.Hits)
	fmt.Fprintf(w, "ppaserved_session_pool_misses_total %d\n", pool.Misses)
	fmt.Fprintf(w, "ppaserved_session_pool_discards_total %d\n", pool.Discards)
	fmt.Fprintf(w, "ppaserved_session_pool_idle %d\n", pool.Idle)

	fmt.Fprintf(w, "# HELP ppaserved_queue_depth Batches waiting for a worker.\n")
	fmt.Fprintf(w, "# TYPE ppaserved_queue_depth gauge\n")
	fmt.Fprintf(w, "ppaserved_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "ppaserved_batches_total %d\n", batches)
	fmt.Fprintf(w, "ppaserved_coalesced_jobs_total %d\n", coalesced)

	fmt.Fprintf(w, "# HELP ppaserved_solves_total Destination solves completed.\n")
	fmt.Fprintf(w, "ppaserved_solves_total %d\n", m.solves)
	fmt.Fprintf(w, "ppaserved_request_panics_total %d\n", m.panics)
	fmt.Fprintf(w, "ppaserved_deadline_exceeded_total %d\n", m.deadline)

	fmt.Fprintf(w, "# HELP ppaserved_machine The paper's cost model, aggregated over all solves.\n")
	fmt.Fprintf(w, "ppaserved_machine_bus_cycles_total %d\n", m.cost.BusCycles)
	fmt.Fprintf(w, "ppaserved_machine_wired_or_cycles_total %d\n", m.cost.WiredOrCycles)
	fmt.Fprintf(w, "ppaserved_machine_global_or_ops_total %d\n", m.cost.GlobalOrOps)
	fmt.Fprintf(w, "ppaserved_machine_pe_ops_total %d\n", m.cost.PEOps)
	fmt.Fprintf(w, "ppaserved_machine_instructions_total %d\n", m.cost.Instructions)
	fmt.Fprintf(w, "ppaserved_machine_comm_cycles_total %d\n", m.cost.CommCycles())
}
