package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ppamcp/internal/core"
	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// Config tunes the service; zero values select the documented defaults.
type Config struct {
	// Workers is the solver goroutine count (default GOMAXPROCS). Each
	// worker owns one session checkout at a time.
	Workers int
	// QueueDepth bounds the admission FIFO (default 64 batches); a full
	// queue answers 429.
	QueueDepth int
	// PoolCap bounds the idle warm sessions kept across requests
	// (default 64).
	PoolCap int
	// RingWorkers is each session's simulator ring fan-out
	// (core.Options.Workers; default 1 = serial). Machine-level
	// parallelism composes with — and competes for cores against — the
	// Workers session-level concurrency, so raise it only when requests
	// are scarce and graphs are large.
	RingWorkers int
	// PhysicalSide, when nonzero, serves requests on block-mapped
	// virtualized sessions (core.Options.PhysicalSide): an n-vertex graph
	// whose n is a positive multiple of PhysicalSide simulates on a
	// PhysicalSide x PhysicalSide machine with k = n/PhysicalSide logical
	// PEs per physical PE. Graphs it cannot tile fall back to direct
	// execution. Answers are identical; reported machine metrics follow
	// the virtualization cost law (default 0 = direct).
	PhysicalSide int
	// MaxVertices is the largest graph accepted (default 512; hard cap
	// graph.MaxParseVertices). An n-vertex request simulates an n x n
	// machine, so this is the primary admission knob.
	MaxVertices int
	// MaxDests bounds the destination list length (default 1024).
	MaxDests int
	// MaxBatch bounds how many requests one session checkout may serve
	// (default 16).
	MaxBatch int
	// DefaultTimeout and MaxTimeout bound the per-request deadline
	// (defaults 30s and 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// SolveDelay, when nonzero, sleeps this long for every destination
	// actually solved (cache-shared destinations pay it once). It
	// emulates the wall-clock occupancy of a fixed-capacity PPA device,
	// so fleet-scaling benchmarks stay meaningful on hosts with fewer
	// cores than backends; production configs leave it zero.
	SolveDelay time.Duration
	// MaxBodyBytes bounds the request body (default 8 MiB).
	MaxBodyBytes int64
	// RetryAfter is the backoff hint sent with 429 (default 1s).
	RetryAfter time.Duration
	// MaxSessions bounds concurrent dynamic-graph sessions (default 16);
	// at the limit POST /v1/session answers 429.
	MaxSessions int
	// SessionIdleTimeout evicts a session with no update or stream
	// activity for this long (default 2m).
	SessionIdleTimeout time.Duration
	// MaxSessionDests bounds a session's explicit destination list
	// (default 16) — every accepted update re-solves the whole set. A
	// session created with "dests": "all" bypasses this list cap and is
	// bounded by MaxDests instead, like /v1/allpairs.
	MaxSessionDests int
	// SessionQueueDepth bounds a session's pending update batches
	// (default 32); a full queue answers 429.
	SessionQueueDepth int
	// MaxUpdateBatch bounds the edits in one update batch (default 4096).
	MaxUpdateBatch int
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.PoolCap <= 0 {
		c.PoolCap = 64
	}
	if c.MaxVertices <= 0 {
		c.MaxVertices = 512
	}
	if c.MaxVertices > graph.MaxParseVertices {
		c.MaxVertices = graph.MaxParseVertices
	}
	if c.MaxDests <= 0 {
		c.MaxDests = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16
	}
	if c.SessionIdleTimeout <= 0 {
		c.SessionIdleTimeout = 2 * time.Minute
	}
	if c.MaxSessionDests <= 0 {
		c.MaxSessionDests = 16
	}
	if c.SessionQueueDepth <= 0 {
		c.SessionQueueDepth = 32
	}
	if c.MaxUpdateBatch <= 0 {
		c.MaxUpdateBatch = 4096
	}
}

// Server is the solver service. Create with New, mount Handler on an
// http.Server, stop with Shutdown.
type Server struct {
	cfg     Config
	pool    *Pool
	q       *queue
	metrics *Metrics
	mux     *http.ServeMux

	wg       sync.WaitGroup
	inflight atomic.Int64
	down     atomic.Bool

	// Dynamic-graph sessions (session.go).
	sessMu      sync.Mutex
	sessions    map[string]*liveSession
	sessWG      sync.WaitGroup
	janitorStop chan struct{}

	// hookBeforeSolve, when non-nil, runs before every destination solve;
	// tests use it to inject panics and verify request isolation.
	hookBeforeSolve func(dest int)
}

// New builds the service and starts its worker goroutines.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:         cfg,
		pool:        NewPool(cfg.PoolCap, cfg.RingWorkers, cfg.PhysicalSide),
		q:           newQueue(cfg.QueueDepth),
		metrics:     NewMetrics(),
		sessions:    make(map[string]*liveSession),
		janitorStop: make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/allpairs", s.handleAllPairs)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("POST /v1/session/{id}/update", s.handleSessionUpdate)
	s.mux.HandleFunc("GET /v1/session/{id}/stream", s.handleSessionStream)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	s.sessWG.Add(1)
	go s.sessionJanitor()
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the service's aggregate counters (shared, live).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Shutdown drains: admission stops (new solves and sessions get 503),
// queued and in-flight batches complete, session runners finish their
// already-accepted updates and close their streams, workers exit. It
// returns ctx's error if the drain outlives it (hard-cancelling any
// session runner still blocked on an unread stream). Callers stop the
// http.Server first so no handler is left waiting on a worker that has
// already exited.
func (s *Server) Shutdown(ctx context.Context) error {
	s.down.Store(true)
	s.q.shutdown()
	s.beginDrainSessions()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.sessWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.pool.Close()
		return nil
	case <-ctx.Done():
		s.cancelSessions()
		return ctx.Err()
	}
}

// worker drains the batch FIFO until shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for b := range s.q.ch {
		s.q.take(b)
		s.inflight.Add(1)
		if b.jobs[0].rows != nil {
			s.runAllPairs(b)
		} else {
			s.runBatch(b)
		}
		s.inflight.Add(-1)
	}
}

// runBatch serves every job queued against one graph with one session
// checkout. Destinations shared between coalesced jobs are solved once.
// A panic while solving fails only the offending job; the session is
// assumed poisoned and dropped instead of repooled.
func (s *Server) runBatch(b *batch) {
	sess, hit, err := s.pool.Get(b.g, b.h)
	if err != nil {
		for _, j := range b.jobs {
			j.finish(jobDone{err: err, status: http.StatusBadRequest})
		}
		return
	}
	healthy := true
	cache := make(map[int]*core.Result, len(b.jobs[0].dests))
	for _, j := range b.jobs {
		if !healthy {
			j.finish(jobDone{err: errors.New("serve: session poisoned by an earlier panic"), status: http.StatusInternalServerError})
			continue
		}
		if err := j.ctx.Err(); err != nil {
			j.finish(jobDone{err: err, status: http.StatusGatewayTimeout})
			continue
		}
		results := make([]DestResult, 0, len(j.dests))
		var cost ppa.Metrics
		jerr := func() (jerr error) {
			defer func() {
				if r := recover(); r != nil {
					healthy = false
					s.metrics.RecordPanic()
					jerr = fmt.Errorf("serve: solve panicked: %v", r)
				}
			}()
			for _, d := range j.dests {
				r, ok := cache[d]
				if !ok {
					if s.hookBeforeSolve != nil {
						s.hookBeforeSolve(d)
					}
					var err error
					r, err = sess.SolveContext(j.ctx, d)
					if err != nil {
						return err
					}
					if s.cfg.SolveDelay > 0 {
						select {
						case <-time.After(s.cfg.SolveDelay):
						case <-j.ctx.Done():
							return j.ctx.Err()
						}
					}
					s.metrics.AddSolves(1, r.Metrics)
					cache[d] = r
				}
				results = append(results, toDestResult(r))
				cost = cost.Add(r.Metrics)
			}
			return nil
		}()
		switch {
		case jerr == nil:
			j.finish(jobDone{results: results, cost: cost, poolHit: hit, batched: len(b.jobs)})
		case errors.Is(jerr, context.Canceled) || errors.Is(jerr, context.DeadlineExceeded):
			j.finish(jobDone{err: jerr, status: http.StatusGatewayTimeout})
		case !healthy:
			j.finish(jobDone{err: jerr, status: http.StatusInternalServerError})
		default:
			j.finish(jobDone{err: jerr, status: http.StatusBadRequest})
		}
	}
	if healthy {
		s.pool.Put(sess)
	} else {
		sess.Close()
	}
}

// runAllPairs serves one streaming all-pairs job: a single warm session
// sweeps the destination set (every destination 0..n-1, or the job's
// requested subset) with one weight DMA and incrementally retargeted
// selector planes, and each row is pushed to the handler the moment it
// lands. Streaming batches are exclusive, so b holds exactly one job.
// The panic and deadline contracts match runBatch: a panic fails this
// job and drops the session; the job's context is observed between
// destinations and between DP iterations.
func (s *Server) runAllPairs(b *batch) {
	j := b.jobs[0]
	defer close(j.rows)
	sess, hit, err := s.pool.Get(b.g, b.h)
	if err != nil {
		j.finish(jobDone{err: err, status: http.StatusBadRequest})
		return
	}
	dests := j.dests
	if len(dests) == 0 {
		dests = make([]int, b.g.N)
		for d := range dests {
			dests[d] = d
		}
	}
	var cost ppa.Metrics
	iterations := 0
	healthy := true
	jerr := func() (jerr error) {
		defer func() {
			if r := recover(); r != nil {
				healthy = false
				s.metrics.RecordPanic()
				jerr = fmt.Errorf("serve: solve panicked: %v", r)
			}
		}()
		if err := j.ctx.Err(); err != nil {
			return err
		}
		return sess.SolveSweep(j.ctx, dests, func(r *core.Result) error {
			if s.hookBeforeSolve != nil {
				s.hookBeforeSolve(r.Dest)
			}
			s.metrics.AddSolves(1, r.Metrics)
			cost = cost.Add(r.Metrics)
			iterations += r.Iterations
			j.rows <- toDestResult(r)
			if s.cfg.SolveDelay > 0 {
				select {
				case <-time.After(s.cfg.SolveDelay):
				case <-j.ctx.Done():
					return j.ctx.Err()
				}
			}
			return nil
		})
	}()
	switch {
	case jerr == nil:
		j.finish(jobDone{cost: cost, iterations: iterations, poolHit: hit, batched: 1})
	case errors.Is(jerr, context.Canceled) || errors.Is(jerr, context.DeadlineExceeded):
		j.finish(jobDone{err: jerr, status: http.StatusGatewayTimeout})
	case !healthy:
		j.finish(jobDone{err: jerr, status: http.StatusInternalServerError})
	default:
		j.finish(jobDone{err: jerr, status: http.StatusBadRequest})
	}
	if healthy {
		s.pool.Put(sess)
	} else {
		sess.Close()
	}
}

func toDestResult(r *core.Result) DestResult {
	out := DestResult{
		Dest:       r.Dest,
		Dist:       make([]int64, len(r.Dist)),
		Next:       append([]int(nil), r.Next...),
		Iterations: r.Iterations,
	}
	for i, d := range r.Dist {
		if d == graph.NoEdge {
			out.Dist[i] = -1
		} else {
			out.Dist[i] = d
		}
	}
	return out
}

// handleSolve is POST /v1/solve.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := s.solve(w, r)
	s.metrics.RecordRequest("/v1/solve", code)
	s.metrics.ObserveLatency(time.Since(start))
}

// solve does the work and returns the status code it wrote.
func (s *Server) solve(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST only")
	}
	if s.down.Load() {
		return writeError(w, http.StatusServiceUnavailable, "shutting down")
	}
	var req SolveRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	g, err := req.BuildGraph(s.cfg.MaxVertices)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	if err := g.Validate(); err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	if len(req.Dests) == 0 {
		return writeError(w, http.StatusBadRequest, "dests must name at least one destination")
	}
	if len(req.Dests) > s.cfg.MaxDests {
		return writeError(w, http.StatusBadRequest, "%d dests exceeds server limit %d", len(req.Dests), s.cfg.MaxDests)
	}
	for _, d := range req.Dests {
		if d < 0 || d >= g.N {
			return writeError(w, http.StatusBadRequest, "dest %d out of range [0,%d)", d, g.N)
		}
	}
	h, err := PickBits(g, req.Bits)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	j := &job{ctx: ctx, dests: req.Dests, done: make(chan jobDone, 1)}
	switch err := s.q.enqueue(j, g, h, s.cfg.MaxBatch); {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		return writeError(w, http.StatusTooManyRequests, "queue full; retry later")
	case errors.Is(err, ErrShuttingDown):
		return writeError(w, http.StatusServiceUnavailable, "shutting down")
	case err != nil:
		return writeError(w, http.StatusInternalServerError, "%v", err)
	}

	select {
	case d := <-j.done:
		if d.err != nil {
			if d.status == http.StatusGatewayTimeout {
				s.metrics.RecordDeadline()
			}
			return writeError(w, d.status, "%v", d.err)
		}
		return writeJSON(w, http.StatusOK, SolveResponse{
			N: g.N, Bits: h, Results: d.results, Cost: d.cost,
			PoolHit: d.poolHit, Batched: d.batched,
		})
	case <-ctx.Done():
		// The worker will observe the same context and abandon the job;
		// the buffered done channel lets it move on regardless.
		s.metrics.RecordDeadline()
		return writeError(w, http.StatusGatewayTimeout, "%v", ctx.Err())
	}
}

// handleAllPairs is POST /v1/allpairs.
func (s *Server) handleAllPairs(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := s.allPairs(w, r)
	s.metrics.RecordRequest("/v1/allpairs", code)
	s.metrics.ObserveLatency(time.Since(start))
}

// allPairs admits the request, enqueues an exclusive streaming job, and
// relays rows as NDJSON. The status code is held back until the first
// event: an error before any row maps to the same HTTP statuses as
// /v1/solve, while an error mid-stream (the 200 is already on the wire)
// becomes a final ErrorResponse line with no done:true trailer.
func (s *Server) allPairs(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST only")
	}
	if s.down.Load() {
		return writeError(w, http.StatusServiceUnavailable, "shutting down")
	}
	var req AllPairsRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	g, err := req.BuildGraph(s.cfg.MaxVertices)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	if err := g.Validate(); err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	// An omitted dests list sweeps every destination; an explicit one
	// streams just that subset, in request order.
	if len(req.Dests) == 0 {
		if g.N > s.cfg.MaxDests {
			return writeError(w, http.StatusBadRequest, "all-pairs over %d dests exceeds server limit %d", g.N, s.cfg.MaxDests)
		}
	} else {
		if len(req.Dests) > s.cfg.MaxDests {
			return writeError(w, http.StatusBadRequest, "%d dests exceeds server limit %d", len(req.Dests), s.cfg.MaxDests)
		}
		seen := make(map[int]bool, len(req.Dests))
		for i, d := range req.Dests {
			if d < 0 || d >= g.N {
				return writeError(w, http.StatusBadRequest, "dest %d out of range [0,%d)", d, g.N)
			}
			if seen[d] {
				return writeError(w, http.StatusBadRequest, "duplicate dest %d at dests[%d]", d, i)
			}
			seen[d] = true
		}
	}
	h, err := PickBits(g, req.Bits)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// rows is buffered to the row count so the worker can finish the sweep
	// and move on even if this handler stops reading.
	nrows := g.N
	if len(req.Dests) > 0 {
		nrows = len(req.Dests)
	}
	j := &job{ctx: ctx, dests: req.Dests, rows: make(chan DestResult, nrows), done: make(chan jobDone, 1)}
	switch err := s.q.enqueue(j, g, h, s.cfg.MaxBatch); {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		return writeError(w, http.StatusTooManyRequests, "queue full; retry later")
	case errors.Is(err, ErrShuttingDown):
		return writeError(w, http.StatusServiceUnavailable, "shutting down")
	case err != nil:
		return writeError(w, http.StatusInternalServerError, "%v", err)
	}

	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	header := func() {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_ = enc.Encode(AllPairsHeader{N: g.N, Bits: h})
		flush()
	}
	streaming := false
	rows := 0
	// The worker closes j.rows when the sweep ends (success or failure)
	// and observes j.ctx between destinations, so this loop terminates
	// even when the client's deadline fires mid-sweep.
	for row := range j.rows {
		if !streaming {
			header()
			streaming = true
		}
		_ = enc.Encode(row)
		rows++
		flush()
	}
	d := <-j.done
	if d.err != nil {
		if d.status == http.StatusGatewayTimeout {
			s.metrics.RecordDeadline()
		}
		if !streaming {
			return writeError(w, d.status, "%v", d.err)
		}
		_ = enc.Encode(ErrorResponse{Error: d.err.Error()})
		flush()
		return http.StatusOK
	}
	if !streaming {
		header()
	}
	_ = enc.Encode(AllPairsTrailer{
		Done: true, Rows: rows, Cost: d.cost,
		Iterations: d.iterations, PoolHit: d.poolHit,
	})
	flush()
	return http.StatusOK
}

// PickBits chooses the machine word width: an explicit request is taken
// as-is (width experiments), otherwise the smallest sufficient width is
// rounded up to a multiple of 8 so graphs of slightly different weight
// scales still share pooled sessions. Exported because the router tier
// must resolve the width the same way before fingerprinting — placement
// and result-cache keys are functions of (graph, h).
func PickBits(g *graph.Graph, reqBits uint) (uint, error) {
	if reqBits > 0 {
		if reqBits > ppa.MaxBits {
			return 0, fmt.Errorf("bits %d exceeds machine maximum %d", reqBits, ppa.MaxBits)
		}
		return reqBits, nil
	}
	need := g.BitsNeeded()
	h := (need + 7) / 8 * 8
	if h > ppa.MaxBits {
		h = ppa.MaxBits
	}
	if h < need {
		return 0, fmt.Errorf("graph needs %d-bit words, machine maximum is %d", need, ppa.MaxBits)
	}
	return h, nil
}

// handleHealthz keeps the load-balancer status-code contract (200
// serving, 503 draining) and carries a small JSON body so a router can
// weight and evict on load — pool occupancy, queue depth, in-flight
// batches — not just liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hs := HealthStatus{
		Status:          "ok",
		PoolIdle:        s.pool.Stats().Idle,
		QueueDepth:      s.q.depth(),
		InflightBatches: s.inflight.Load(),
		Sessions:        s.sessionCount(),
	}
	code := http.StatusOK
	if s.down.Load() {
		hs.Status = "draining"
		hs.Draining = true
		code = http.StatusServiceUnavailable
	}
	s.metrics.RecordRequest("/healthz", code)
	writeJSON(w, code, hs)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.RecordRequest("/metrics", http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	batches, coalesced := s.q.stats()
	s.metrics.WritePrometheus(w, s.pool.Stats(), s.q.depth(), batches, coalesced)
	fmt.Fprintf(w, "ppaserved_inflight_batches %d\n", s.inflight.Load())
	fmt.Fprintf(w, "# HELP ppaserved_sessions Live dynamic-graph sessions.\n")
	fmt.Fprintf(w, "# TYPE ppaserved_sessions gauge\n")
	fmt.Fprintf(w, "ppaserved_sessions %d\n", s.sessionCount())
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
	return status
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) int {
	return writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}
