package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ppamcp/internal/graph"
)

// apStream is one parsed /v1/allpairs exchange. For non-200 replies only
// code and er are set; for streams, header/rows plus either trailer
// (complete) or errLine (failed mid-stream).
type apStream struct {
	code    int
	er      *ErrorResponse
	header  *AllPairsHeader
	rows    []DestResult
	trailer *AllPairsTrailer
	errLine *ErrorResponse
}

// postAllPairs sends an AllPairsRequest and parses the NDJSON stream.
// Each line is classified by its discriminating key: the header comes
// first, "done" marks the trailer, "error" a mid-stream failure, and
// everything else is a destination row.
func postAllPairs(t *testing.T, c *http.Client, url string, req AllPairsRequest) *apStream {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Post(url+"/v1/allpairs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/allpairs: %v", err)
	}
	defer resp.Body.Close()
	out := &apStream{code: resp.StatusCode}
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("decode %d error body: %v", resp.StatusCode, err)
		}
		out.er = &er
		return out
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if out.trailer != nil || out.errLine != nil {
			t.Fatalf("line after stream end: %s", line)
		}
		if out.header == nil {
			var h AllPairsHeader
			if err := json.Unmarshal(line, &h); err != nil {
				t.Fatalf("decode header: %v\n%s", err, line)
			}
			out.header = &h
			continue
		}
		var probe struct {
			Done  *bool   `json:"done"`
			Error *string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("decode line: %v\n%s", err, line)
		}
		switch {
		case probe.Error != nil:
			out.errLine = &ErrorResponse{Error: *probe.Error}
		case probe.Done != nil:
			var tr AllPairsTrailer
			if err := json.Unmarshal(line, &tr); err != nil {
				t.Fatalf("decode trailer: %v\n%s", err, line)
			}
			out.trailer = &tr
		default:
			var dr DestResult
			if err := json.Unmarshal(line, &dr); err != nil {
				t.Fatalf("decode row: %v\n%s", err, line)
			}
			out.rows = append(out.rows, dr)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read stream: %v", err)
	}
	return out
}

// checkTable verifies a complete stream: header, one row per destination
// in ascending order, each row matching Bellman-Ford with valid next-hop
// witnesses, and a consistent done trailer.
func checkTable(t *testing.T, g *graph.Graph, st *apStream) {
	t.Helper()
	if st.header == nil || st.header.N != g.N {
		t.Fatalf("stream header = %+v, want n = %d", st.header, g.N)
	}
	if st.errLine != nil {
		t.Fatalf("stream failed: %v", st.errLine.Error)
	}
	if st.trailer == nil || !st.trailer.Done || st.trailer.Rows != g.N {
		t.Fatalf("stream trailer = %+v, want done with %d rows", st.trailer, g.N)
	}
	if st.trailer.Cost.PEOps == 0 || st.trailer.Iterations < g.N {
		t.Fatalf("implausible trailer accounting: %+v", st.trailer)
	}
	dests := make([]int, g.N)
	for d := range dests {
		dests[d] = d
	}
	checkResponse(t, g, &SolveResponse{N: st.header.N, Results: st.rows}, dests)
}

// TestAllPairsE2E is the endpoint acceptance test: a full n=32 table
// streamed as NDJSON, every row verified against the sequential
// reference, and the second request for the same graph served warm.
func TestAllPairsE2E(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	g := graph.GenRandomConnected(32, 0.15, 25, 41)
	st := postAllPairs(t, ts.Client(), ts.URL, AllPairsRequest{Graph: rawGraph(t, g)})
	if st.code != http.StatusOK {
		t.Fatalf("status = %d (%v), want 200", st.code, st.er)
	}
	checkTable(t, g, st)

	st2 := postAllPairs(t, ts.Client(), ts.URL, AllPairsRequest{Graph: rawGraph(t, g)})
	if st2.code != http.StatusOK {
		t.Fatalf("second request: status = %d (%v)", st2.code, st2.er)
	}
	checkTable(t, g, st2)
	if !st2.trailer.PoolHit {
		t.Error("second identical request did not hit the session pool")
	}

	// The endpoint shows up on the metrics surface under its own path.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if want := `ppaserved_requests_total{path="/v1/allpairs",code="200"} 2`; !strings.Contains(body.String(), want) {
		t.Errorf("/metrics missing %q", want)
	}
}

// TestAllPairsDrainMidStream starts a slow sweep, initiates shutdown
// while rows are still streaming, and requires the stream to complete:
// shutdown drains in-flight batches rather than truncating them.
func TestAllPairsDrainMidStream(t *testing.T) {
	srv := New(Config{Workers: 1, SolveDelay: 5 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g := graph.GenRandomConnected(16, 0.3, 9, 7)
	var wg sync.WaitGroup
	wg.Add(1)
	shutErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		// Give the sweep time to start streaming, then drain.
		time.Sleep(20 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutErr <- srv.Shutdown(ctx)
	}()
	st := postAllPairs(t, ts.Client(), ts.URL, AllPairsRequest{Graph: rawGraph(t, g)})
	wg.Wait()
	if err := <-shutErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st.code != http.StatusOK {
		t.Fatalf("status = %d (%v), want 200", st.code, st.er)
	}
	checkTable(t, g, st)

	// Post-drain, the endpoint sheds like the rest of the surface.
	st = postAllPairs(t, ts.Client(), ts.URL, AllPairsRequest{Graph: rawGraph(t, g)})
	if st.code != http.StatusServiceUnavailable {
		t.Errorf("allpairs after shutdown = %d, want 503", st.code)
	}
}

// TestAllPairsMidStreamFailure injects a panic at destination 5 of a
// sweep: the committed stream must end with an in-band error line and no
// done trailer, the poisoned session must not be repooled, and the
// service must keep answering.
func TestAllPairsMidStreamFailure(t *testing.T) {
	srv := New(Config{Workers: 1})
	var once sync.Once
	srv.hookBeforeSolve = func(dest int) {
		if dest == 5 {
			var boom bool
			once.Do(func() { boom = true })
			if boom {
				panic("injected test panic")
			}
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	g := graph.GenRandomConnected(12, 0.3, 9, 13)
	st := postAllPairs(t, ts.Client(), ts.URL, AllPairsRequest{Graph: rawGraph(t, g)})
	if st.code != http.StatusOK {
		t.Fatalf("status = %d (%v); the 200 was committed before the panic", st.code, st.er)
	}
	if len(st.rows) != 5 {
		t.Errorf("got %d rows before the failure, want 5 (dests 0..4)", len(st.rows))
	}
	if st.trailer != nil {
		t.Errorf("failed stream carries a done trailer: %+v", st.trailer)
	}
	if st.errLine == nil || !strings.Contains(st.errLine.Error, "panicked") {
		t.Errorf("failed stream error line = %+v, want a panic report", st.errLine)
	}
	if hits := srv.pool.Stats().Hits; hits != 0 {
		t.Errorf("poisoned session was repooled: %d hits", hits)
	}

	// The service recovers: the same sweep now completes.
	st = postAllPairs(t, ts.Client(), ts.URL, AllPairsRequest{Graph: rawGraph(t, g)})
	if st.code != http.StatusOK {
		t.Fatalf("follow-up status = %d (%v)", st.code, st.er)
	}
	checkTable(t, g, st)
}

// TestAllPairsDeadlinePreStream pins the pre-stream error contract: a
// deadline that fires before the first row maps to a plain 504, exactly
// like /v1/solve.
func TestAllPairsDeadlinePreStream(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	// Destination 0 of a reversed long chain needs n DP rounds on a
	// 25600-PE machine — far beyond a 1 ms budget, so no row is ever
	// produced. (On the forward chain dest 0 converges in one round and
	// the stream would be committed before the deadline fires.)
	g := graph.GenChain(160, 3).Transpose()
	st := postAllPairs(t, ts.Client(), ts.URL, AllPairsRequest{Graph: rawGraph(t, g), TimeoutMS: 1})
	if st.code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%v), want 504", st.code, st.er)
	}
}

// TestAllPairsBadRequests walks the endpoint's admission surface.
func TestAllPairsBadRequests(t *testing.T) {
	srv := New(Config{Workers: 1, MaxVertices: 64, MaxDests: 16})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()
	g := graph.GenChain(8, 3)
	big := graph.GenChain(32, 3) // admitted by MaxVertices, refused by MaxDests

	cases := []struct {
		name string
		req  AllPairsRequest
		want int
	}{
		{"no graph", AllPairsRequest{}, 400},
		{"both graph and gen", AllPairsRequest{Graph: rawGraph(t, g), Gen: json.RawMessage(`{"gen":"chain"}`)}, 400},
		{"oversized inline graph", AllPairsRequest{Graph: json.RawMessage(`{"n":4096,"edges":[]}`)}, 400},
		{"n beyond dest cap", AllPairsRequest{Graph: rawGraph(t, big)}, 400},
		{"excessive bits", AllPairsRequest{Graph: rawGraph(t, g), Bits: 63}, 400},
		{"negative weight", AllPairsRequest{Graph: json.RawMessage(`{"n":2,"edges":[[0,1,-5]]}`)}, 400},
	}
	for _, c := range cases {
		st := postAllPairs(t, ts.Client(), ts.URL, c.req)
		if st.code != c.want {
			t.Errorf("%s: status = %d (%v), want %d", c.name, st.code, st.er, c.want)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/allpairs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/allpairs = %d, want 405", resp.StatusCode)
	}
}

// TestAllPairsGenWorkload runs the endpoint off a generator spec, the
// form the ppaload driver uses.
func TestAllPairsGenWorkload(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	spec := json.RawMessage(`{"gen":"connected","n":10,"density":0.3,"maxw":9,"seed":5}`)
	st := postAllPairs(t, ts.Client(), ts.URL, AllPairsRequest{Gen: spec})
	if st.code != http.StatusOK {
		t.Fatalf("status = %d (%v)", st.code, st.er)
	}
	g := graph.GenRandomConnected(10, 0.3, 9, 5)
	checkTable(t, g, st)
}

// TestAllPairsDestsSubset exercises the optional dests list: the stream
// carries exactly the requested rows in request order, the trailer counts
// the subset, and malformed subsets are refused before any work runs.
func TestAllPairsDestsSubset(t *testing.T) {
	srv := New(Config{Workers: 1, MaxVertices: 64, MaxDests: 4})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	// n = 24 exceeds MaxDests, so the full table would be refused; the
	// subset form is exactly how a client takes rows from such a graph.
	g := graph.GenRandomConnected(24, 0.25, 19, 11)
	dests := []int{17, 0, 23}
	st := postAllPairs(t, ts.Client(), ts.URL, AllPairsRequest{Graph: rawGraph(t, g), Dests: dests})
	if st.code != http.StatusOK {
		t.Fatalf("status = %d (%v)", st.code, st.er)
	}
	if st.errLine != nil {
		t.Fatalf("stream failed: %v", st.errLine.Error)
	}
	if st.trailer == nil || !st.trailer.Done || st.trailer.Rows != len(dests) {
		t.Fatalf("trailer = %+v, want done with %d rows", st.trailer, len(dests))
	}
	checkResponse(t, g, &SolveResponse{N: st.header.N, Results: st.rows}, dests)

	bad := []struct {
		name  string
		dests []int
	}{
		{"out of range high", []int{0, 24}},
		{"out of range negative", []int{-1}},
		{"duplicate", []int{3, 9, 3}},
		{"over dest cap", []int{0, 1, 2, 3, 4}},
	}
	for _, c := range bad {
		st := postAllPairs(t, ts.Client(), ts.URL, AllPairsRequest{Graph: rawGraph(t, g), Dests: c.dests})
		if st.code != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%v), want 400", c.name, st.code, st.er)
		}
	}
}
