package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"ppamcp/internal/cli"
)

// TestRingWorkersSmoke runs the service with per-session ring fan-out
// enabled (RingWorkers > 1) composed with solver-goroutine concurrency,
// checks answers against the sequential reference, and verifies shutdown
// tears the pooled sessions — and their persistent ring workers, on hosts
// where the dispatch policy spawns them — down without leaking goroutines.
func TestRingWorkersSmoke(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	srv := New(Config{Workers: 2, PoolCap: 4, RingWorkers: 2})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	spec := cli.Workload{Gen: "connected", N: 24, Density: 0.3, MaxW: 9, Seed: 11}
	g, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	dests := []int{0, 5, 23}
	for r := 0; r < 3; r++ {
		code, sr, er, _ := postSolve(t, client, ts.URL, SolveRequest{Graph: rawGraph(t, g), Dests: dests})
		if code != http.StatusOK {
			t.Fatalf("round %d: status %d: %v", r, code, er)
		}
		checkResponse(t, g, sr, dests)
	}

	ts.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	leakCheck(t, baseGoroutines)
}
