package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ppamcp/internal/core"
	"ppamcp/internal/graph"
	"ppamcp/internal/ppa"
)

// This file is the dynamic-graph session surface: a stateful counterpart
// to the stateless /v1/solve path, built on core.Session.Update/Resolve.
// A client creates a session bound to one graph and a destination set,
// opens a long-lived NDJSON stream, and POSTs weight-delta batches; each
// accepted batch is patched into the resident weight plane (O(k) sparse
// DMA) and the destinations are re-solved warm, with the refreshed rows
// pushed down the stream tagged by the batch's sequence number.
//
// The lifecycle envelope matches the rest of the service: per-session
// update queues bound admission (full queue answers 429), an idle janitor
// evicts abandoned sessions, a panic while re-solving poisons only that
// session (its core session is discarded, not repooled), and server
// shutdown drains every session's pending updates before the streams are
// closed with an in-band reason line.

// SessionCreateRequest is the body of POST /v1/session. Graph/Gen/Bits
// follow SolveRequest; Dests is the destination set re-solved after every
// update batch (each solved once eagerly at creation, sequence 0). On the
// wire "dests" is either an explicit list or the string "all" — every
// destination 0..n-1, the incremental all-pairs session (AllDests on the
// Go side). An explicit list is bounded by MaxSessionDests; "all" is
// bounded by MaxDests, the same cap as /v1/allpairs, since it rides the
// same one-fabric sweep.
type SessionCreateRequest struct {
	Graph    json.RawMessage `json:"graph,omitempty"`
	Gen      json.RawMessage `json:"gen,omitempty"`
	Dests    []int           `json:"-"`
	AllDests bool            `json:"-"`
	Bits     uint            `json:"bits,omitempty"`
}

// sessionCreateWire is the raw JSON shape of SessionCreateRequest: dests
// needs a custom decode to accept both a list and the "all" keyword.
type sessionCreateWire struct {
	Graph json.RawMessage `json:"graph,omitempty"`
	Gen   json.RawMessage `json:"gen,omitempty"`
	Dests json.RawMessage `json:"dests"`
	Bits  uint            `json:"bits,omitempty"`
}

func (r *SessionCreateRequest) UnmarshalJSON(b []byte) error {
	var w sessionCreateWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = SessionCreateRequest{Graph: w.Graph, Gen: w.Gen, Bits: w.Bits}
	if len(w.Dests) == 0 || string(w.Dests) == "null" {
		return nil
	}
	var kw string
	if err := json.Unmarshal(w.Dests, &kw); err == nil {
		if kw != "all" {
			return fmt.Errorf(`dests: unknown keyword %q (want "all" or a destination list)`, kw)
		}
		r.AllDests = true
		return nil
	}
	return json.Unmarshal(w.Dests, &r.Dests)
}

func (r SessionCreateRequest) MarshalJSON() ([]byte, error) {
	w := sessionCreateWire{Graph: r.Graph, Gen: r.Gen, Bits: r.Bits}
	if r.AllDests {
		w.Dests = json.RawMessage(`"all"`)
	} else {
		b, err := json.Marshal(r.Dests)
		if err != nil {
			return nil, err
		}
		w.Dests = b
	}
	return json.Marshal(w)
}

// SessionCreated is the body of a successful POST /v1/session.
type SessionCreated struct {
	SessionID string `json:"session_id"`
	N         int    `json:"n"`
	Bits      uint   `json:"bits"`
	Dests     []int  `json:"dests"`
	// PoolHit reports whether the session runs on a recycled warm fabric.
	PoolHit bool `json:"pool_hit"`
}

// WireUpdate is one weight edit on the wire: set edge u->v to weight w,
// with w = -1 deleting the edge (mirroring the -1 = unreachable encoding
// of DestResult.Dist).
type WireUpdate struct {
	U int   `json:"u"`
	V int   `json:"v"`
	W int64 `json:"w"`
}

// SessionUpdateRequest is the body of POST /v1/session/{id}/update: one
// atomic batch of weight edits (validated as a whole before acceptance,
// last write wins within the batch).
type SessionUpdateRequest struct {
	Updates []WireUpdate `json:"updates"`
}

// UpdateAccepted is the body of a successful update POST. Seq is the
// batch's sequence number; the stream's re-solved rows for this batch
// carry the same seq.
type UpdateAccepted struct {
	Seq     uint64 `json:"seq"`
	Pending int    `json:"pending"`
}

// SessionHeader is the first NDJSON line of GET /v1/session/{id}/stream.
// Then, per re-solve generation: one SessionRow per destination followed
// by a SessionTrailer, all tagged with the generation's seq (0 = the
// solve performed at session creation). A SessionClosed line ends a
// cleanly closed stream; an ErrorResponse line ends a poisoned one.
type SessionHeader struct {
	SessionID string `json:"session_id"`
	N         int    `json:"n"`
	Bits      uint   `json:"bits"`
	Dests     []int  `json:"dests"`
}

// SessionRow is one re-solved destination row.
type SessionRow struct {
	Seq uint64 `json:"seq"`
	DestResult
}

// SessionTrailer closes one re-solve generation.
type SessionTrailer struct {
	Seq  uint64 `json:"seq"`
	Rows int    `json:"rows"`
	// Cost is the machine cost of this generation's re-solves; Iterations
	// the summed DP round count (warm re-solves converge in a handful of
	// rounds; cold ones in ~diameter+1; destinations the batch provably
	// did not touch are emitted from the retained solution and contribute
	// zero to both).
	Cost       ppa.Metrics `json:"cost"`
	Iterations int         `json:"iterations"`
}

// SessionClosed is the final NDJSON line of a cleanly closed stream.
type SessionClosed struct {
	Closed bool   `json:"closed"`
	Reason string `json:"reason"`
}

type sessEventKind int

const (
	evRow sessEventKind = iota
	evTrailer
	evError
	evClosed
)

type sessEvent struct {
	kind    sessEventKind
	row     SessionRow
	trailer SessionTrailer
	msg     string
}

// liveSession is one server-side dynamic-graph session.
type liveSession struct {
	id    string
	n     int
	h     uint
	dests []int

	// jobs carries accepted update batches to the runner; closing it asks
	// the runner to drain and exit. events carries stream lines to the
	// (single) stream handler; the runner blocks on it when the buffer
	// fills, which backpressures the jobs queue and ultimately answers 429
	// — an unread stream cannot grow server memory without bound.
	jobs   chan sessJob
	events chan sessEvent

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu         sync.Mutex
	seq        uint64
	pending    int
	closing    bool
	streaming  bool
	lastActive time.Time
}

type sessJob struct {
	seq     uint64
	updates []graph.WeightUpdate
}

func (ls *liveSession) touch() {
	ls.mu.Lock()
	ls.lastActive = time.Now()
	ls.mu.Unlock()
}

// send delivers one event to the stream, or gives up when the session is
// cancelled (evicted, poisoned elsewhere, or force-stopped).
func (ls *liveSession) send(ev sessEvent) bool {
	select {
	case ls.events <- ev:
		return true
	case <-ls.ctx.Done():
		return false
	}
}

// trySend delivers an event only if the stream buffer has room — used for
// the final closed line after the session context is already cancelled,
// where blocking is not an option and dropping the line is acceptable.
func (ls *liveSession) trySend(ev sessEvent) {
	select {
	case ls.events <- ev:
	default:
	}
}

// newSessionID returns a fresh 128-bit hex session identifier.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: session id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// sessionCount returns the number of live sessions (for /metrics and
// /healthz).
func (s *Server) sessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

// handleSessionCreate is POST /v1/session.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	code := s.sessionCreate(w, r)
	s.metrics.RecordRequest("/v1/session", code)
}

func (s *Server) sessionCreate(w http.ResponseWriter, r *http.Request) int {
	if s.down.Load() {
		return writeError(w, http.StatusServiceUnavailable, "shutting down")
	}
	var req SessionCreateRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	sr := SolveRequest{Graph: req.Graph, Gen: req.Gen}
	g, err := sr.BuildGraph(s.cfg.MaxVertices)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	if err := g.Validate(); err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	dests := req.Dests
	if req.AllDests {
		// The incremental all-pairs session: every destination, one warm
		// fabric, gated by the same row cap as /v1/allpairs.
		if g.N > s.cfg.MaxDests {
			return writeError(w, http.StatusBadRequest, "all dests over %d vertices exceeds server limit %d", g.N, s.cfg.MaxDests)
		}
		dests = make([]int, g.N)
		for d := range dests {
			dests[d] = d
		}
	} else {
		if len(dests) == 0 {
			return writeError(w, http.StatusBadRequest, `dests must name at least one destination (or "all")`)
		}
		if len(dests) > s.cfg.MaxSessionDests {
			return writeError(w, http.StatusBadRequest, "%d dests exceeds session limit %d", len(dests), s.cfg.MaxSessionDests)
		}
		seen := make(map[int]bool, len(dests))
		for i, d := range dests {
			if d < 0 || d >= g.N {
				return writeError(w, http.StatusBadRequest, "dest %d out of range [0,%d)", d, g.N)
			}
			if seen[d] {
				return writeError(w, http.StatusBadRequest, "duplicate dest %d at dests[%d]", d, i)
			}
			seen[d] = true
		}
	}
	h, err := PickBits(g, req.Bits)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}

	s.sessMu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.sessMu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		return writeError(w, http.StatusTooManyRequests, "session limit %d reached", s.cfg.MaxSessions)
	}
	s.sessMu.Unlock()

	sess, hit, err := s.pool.Get(g, h)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	ls := &liveSession{
		id:    newSessionID(),
		n:     g.N,
		h:     h,
		dests: append([]int(nil), dests...),
		jobs:  make(chan sessJob, s.cfg.SessionQueueDepth),
		// Sized so a full jobs queue plus the initial solve fit without a
		// reader; past that the runner blocks and admission sheds load.
		events:     make(chan sessEvent, (s.cfg.SessionQueueDepth+2)*(len(dests)+1)+2),
		ctx:        ctx,
		cancel:     cancel,
		done:       make(chan struct{}),
		lastActive: time.Now(),
	}

	s.sessMu.Lock()
	if s.sessions == nil {
		s.sessions = make(map[string]*liveSession)
	}
	if len(s.sessions) >= s.cfg.MaxSessions || s.down.Load() {
		s.sessMu.Unlock()
		cancel()
		s.pool.Put(sess)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		return writeError(w, http.StatusTooManyRequests, "session limit %d reached", s.cfg.MaxSessions)
	}
	s.sessions[ls.id] = ls
	s.sessMu.Unlock()

	s.sessWG.Add(1)
	go s.sessionRunner(ls, sess)

	return writeJSON(w, http.StatusOK, SessionCreated{
		SessionID: ls.id, N: g.N, Bits: h, Dests: ls.dests, PoolHit: hit,
	})
}

// sessionRunner owns one session's core.Session for the session's whole
// life: it performs the creation-time solve (seq 0), then applies each
// queued update batch and re-solves the destination set warm. A panic
// poisons only this session; its fabric is discarded rather than
// repooled.
func (s *Server) sessionRunner(ls *liveSession, sess *core.Session) {
	defer s.sessWG.Done()
	healthy := true
	defer func() {
		s.sessMu.Lock()
		delete(s.sessions, ls.id)
		s.sessMu.Unlock()
		ls.cancel()
		close(ls.done)
		if healthy {
			s.pool.Put(sess)
		} else {
			sess.Close()
		}
	}()

	// resolveGen streams one re-solve generation: a single warm
	// ResolveSweep over the whole destination set (retained solutions as
	// seeds, untouched destinations skipped outright) instead of
	// per-destination Resolve calls. The test hook keeps its contract —
	// it fires before each destination's solve — by running for the next
	// destination inside the previous row's yield.
	resolveGen := func(seq uint64) (jerr error) {
		defer func() {
			if r := recover(); r != nil {
				healthy = false
				s.metrics.RecordPanic()
				jerr = fmt.Errorf("serve: session re-solve panicked: %v", r)
			}
		}()
		var cost ppa.Metrics
		iterations := 0
		row := 0
		if s.hookBeforeSolve != nil {
			s.hookBeforeSolve(ls.dests[0])
		}
		err := sess.ResolveSweep(ls.ctx, ls.dests, func(r *core.Result) error {
			s.metrics.AddSolves(1, r.Metrics)
			cost = cost.Add(r.Metrics)
			iterations += r.Iterations
			if !ls.send(sessEvent{kind: evRow, row: SessionRow{Seq: seq, DestResult: toDestResult(r)}}) {
				return context.Canceled
			}
			row++
			if s.hookBeforeSolve != nil && row < len(ls.dests) {
				s.hookBeforeSolve(ls.dests[row])
			}
			return nil
		})
		if err != nil {
			return err
		}
		if !ls.send(sessEvent{kind: evTrailer, trailer: SessionTrailer{
			Seq: seq, Rows: len(ls.dests), Cost: cost, Iterations: iterations,
		}}) {
			return context.Canceled
		}
		return nil
	}

	fail := func(err error) {
		ls.trySend(sessEvent{kind: evError, msg: err.Error()})
		ls.cancel()
	}

	if err := resolveGen(0); err != nil {
		fail(err)
		return
	}
	for {
		select {
		case j, ok := <-ls.jobs:
			if !ok {
				ls.send(sessEvent{kind: evClosed, msg: "session closed"})
				return
			}
			ls.mu.Lock()
			ls.pending--
			ls.mu.Unlock()
			if err := sess.Update(j.updates); err != nil {
				// Batches are fully validated at admission; reaching this
				// means the session state is unexplainable — poison it.
				healthy = false
				fail(fmt.Errorf("serve: update rejected post-admission: %v", err))
				return
			}
			if err := resolveGen(j.seq); err != nil {
				fail(err)
				return
			}
		case <-ls.ctx.Done():
			ls.trySend(sessEvent{kind: evClosed, msg: "session evicted"})
			return
		}
	}
}

// handleSessionUpdate is POST /v1/session/{id}/update.
func (s *Server) handleSessionUpdate(w http.ResponseWriter, r *http.Request) {
	code := s.sessionUpdate(w, r)
	s.metrics.RecordRequest("/v1/session/update", code)
}

func (s *Server) sessionUpdate(w http.ResponseWriter, r *http.Request) int {
	ls := s.lookupSession(r.PathValue("id"))
	if ls == nil {
		return writeError(w, http.StatusNotFound, "no such session")
	}
	var req SessionUpdateRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, "bad request body: %v", err)
	}
	if len(req.Updates) == 0 {
		return writeError(w, http.StatusBadRequest, "updates must name at least one edit")
	}
	if len(req.Updates) > s.cfg.MaxUpdateBatch {
		return writeError(w, http.StatusBadRequest, "%d updates exceeds batch limit %d", len(req.Updates), s.cfg.MaxUpdateBatch)
	}
	// Full validation happens here, synchronously, so acceptance means the
	// batch will apply: endpoint range plus the word-width rule the core
	// enforces (weights only widen costs; (n-1)*w must stay below MAXINT).
	ups := make([]graph.WeightUpdate, len(req.Updates))
	inf := int64(ppa.Infinity(ls.h))
	for i, u := range req.Updates {
		wt := u.W
		if wt == -1 {
			wt = graph.NoEdge
		}
		ups[i] = graph.WeightUpdate{U: u.U, V: u.V, W: wt}
		if err := ups[i].Validate(ls.n); err != nil {
			return writeError(w, http.StatusBadRequest, "%v", err)
		}
		if wt != graph.NoEdge && u.U != u.V && ls.n > 1 && wt > (inf-1)/int64(ls.n-1) {
			return writeError(w, http.StatusBadRequest,
				"update %d->%d: weight %d too wide for %d-bit words at n=%d", u.U, u.V, wt, ls.h, ls.n)
		}
	}

	ls.mu.Lock()
	if ls.closing {
		ls.mu.Unlock()
		return writeError(w, http.StatusGone, "session is closing")
	}
	if ls.pending >= s.cfg.SessionQueueDepth {
		ls.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		return writeError(w, http.StatusTooManyRequests, "session update queue full; retry later")
	}
	ls.seq++
	seq := ls.seq
	ls.pending++
	pending := ls.pending
	ls.lastActive = time.Now()
	// Enqueue under the lock: pending was reserved against the queue
	// depth, so the buffered send cannot block, and closing cannot race
	// ahead to close(jobs) before the send lands.
	ls.jobs <- sessJob{seq: seq, updates: ups}
	ls.mu.Unlock()

	return writeJSON(w, http.StatusOK, UpdateAccepted{Seq: seq, Pending: pending})
}

// handleSessionStream is GET /v1/session/{id}/stream.
func (s *Server) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	code := s.sessionStream(w, r)
	s.metrics.RecordRequest("/v1/session/stream", code)
}

func (s *Server) sessionStream(w http.ResponseWriter, r *http.Request) int {
	ls := s.lookupSession(r.PathValue("id"))
	if ls == nil {
		return writeError(w, http.StatusNotFound, "no such session")
	}
	ls.mu.Lock()
	if ls.streaming {
		ls.mu.Unlock()
		return writeError(w, http.StatusConflict, "session already has a stream consumer")
	}
	ls.streaming = true
	ls.lastActive = time.Now()
	ls.mu.Unlock()
	defer func() {
		ls.mu.Lock()
		ls.streaming = false
		ls.mu.Unlock()
	}()

	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	_ = enc.Encode(SessionHeader{SessionID: ls.id, N: ls.n, Bits: ls.h, Dests: ls.dests})
	flush()

	// writeEvent renders one event; it reports whether the stream is over.
	writeEvent := func(ev sessEvent) bool {
		ls.touch()
		switch ev.kind {
		case evRow:
			_ = enc.Encode(ev.row)
		case evTrailer:
			_ = enc.Encode(ev.trailer)
		case evError:
			_ = enc.Encode(ErrorResponse{Error: ev.msg})
			flush()
			return true
		case evClosed:
			_ = enc.Encode(SessionClosed{Closed: true, Reason: ev.msg})
			flush()
			return true
		}
		flush()
		return false
	}
	for {
		select {
		case ev := <-ls.events:
			if writeEvent(ev) {
				return http.StatusOK
			}
		case <-ls.done:
			// Runner gone: flush whatever it left buffered, then end.
			for {
				select {
				case ev := <-ls.events:
					if writeEvent(ev) {
						return http.StatusOK
					}
				default:
					return http.StatusOK
				}
			}
		case <-r.Context().Done():
			// Client went away; the session (and its buffered rows) stay
			// for a reconnect until the idle janitor collects it.
			return http.StatusOK
		}
	}
}

// handleSessionDelete is DELETE /v1/session/{id}: a graceful close. The
// runner drains already-accepted updates, their rows still reach the
// stream, then a closed line ends it.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	ls := s.lookupSession(r.PathValue("id"))
	if ls == nil {
		s.metrics.RecordRequest("/v1/session/delete", http.StatusNotFound)
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	ls.beginClose()
	s.metrics.RecordRequest("/v1/session/delete", http.StatusOK)
	writeJSON(w, http.StatusOK, SessionClosed{Closed: true, Reason: "client close"})
}

// beginClose stops admission and hands the runner its drain signal; safe
// to call more than once.
func (ls *liveSession) beginClose() {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.closing {
		return
	}
	ls.closing = true
	close(ls.jobs)
}

func (s *Server) lookupSession(id string) *liveSession {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return s.sessions[id]
}

// sessionJanitor evicts sessions idle past the configured timeout. Idle
// means no update, no stream activity: a client that keeps its stream
// open but sends nothing is evicted too — the closed line tells it why.
func (s *Server) sessionJanitor() {
	defer s.sessWG.Done()
	period := s.cfg.SessionIdleTimeout / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			cutoff := time.Now().Add(-s.cfg.SessionIdleTimeout)
			s.sessMu.Lock()
			var idle []*liveSession
			for _, ls := range s.sessions {
				ls.mu.Lock()
				if ls.lastActive.Before(cutoff) {
					idle = append(idle, ls)
				}
				ls.mu.Unlock()
			}
			s.sessMu.Unlock()
			for _, ls := range idle {
				// Cancel rather than drain: an idle session has nothing
				// in flight worth finishing.
				ls.cancel()
			}
		}
	}
}

// beginDrainSessions starts a graceful close of every session and stops
// the janitor; runners finish already-accepted updates and exit (tracked
// by sessWG). cancelSessions is the hard fallback for a drain deadline:
// it unblocks any runner stuck on an unread stream.
func (s *Server) beginDrainSessions() {
	s.sessMu.Lock()
	all := make([]*liveSession, 0, len(s.sessions))
	for _, ls := range s.sessions {
		all = append(all, ls)
	}
	s.sessMu.Unlock()
	for _, ls := range all {
		ls.beginClose()
	}
	close(s.janitorStop)
}

func (s *Server) cancelSessions() {
	s.sessMu.Lock()
	all := make([]*liveSession, 0, len(s.sessions))
	for _, ls := range s.sessions {
		all = append(all, ls)
	}
	s.sessMu.Unlock()
	for _, ls := range all {
		ls.cancel()
	}
}
