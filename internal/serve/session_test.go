package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"ppamcp/internal/graph"
)

// sessLine is one parsed NDJSON line of a session stream, classified by
// its discriminating key.
type sessLine struct {
	header  *SessionHeader
	row     *SessionRow
	trailer *SessionTrailer
	errLine *ErrorResponse
	closed  *SessionClosed
}

// openSessionStream connects GET /v1/session/{id}/stream and pumps the
// parsed lines into the returned channel, which closes when the stream
// ends. The first line (the header) is checked here.
func openSessionStream(t *testing.T, ts *httptest.Server, id string) <-chan sessLine {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/session/"+id+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var er ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		t.Fatalf("GET stream: status %d: %s", resp.StatusCode, er.Error)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	ch := make(chan sessLine, 1024)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		first := true
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var probe struct {
				SessionID *string `json:"session_id"`
				Closed    *bool   `json:"closed"`
				Error     *string `json:"error"`
				Rows      *int    `json:"rows"`
				Dest      *int    `json:"dest"`
			}
			if err := json.Unmarshal(line, &probe); err != nil {
				return
			}
			var out sessLine
			switch {
			case first && probe.SessionID != nil:
				h := new(SessionHeader)
				_ = json.Unmarshal(line, h)
				out.header = h
			case probe.Error != nil:
				out.errLine = &ErrorResponse{Error: *probe.Error}
			case probe.Closed != nil:
				c := new(SessionClosed)
				_ = json.Unmarshal(line, c)
				out.closed = c
			case probe.Dest != nil:
				r := new(SessionRow)
				_ = json.Unmarshal(line, r)
				out.row = r
			default:
				tr := new(SessionTrailer)
				_ = json.Unmarshal(line, tr)
				out.trailer = tr
			}
			first = false
			ch <- out
		}
	}()
	return ch
}

// nextLine reads one stream line with a timeout.
func nextLine(t *testing.T, ch <-chan sessLine) (sessLine, bool) {
	t.Helper()
	select {
	case l, ok := <-ch:
		return l, ok
	case <-time.After(15 * time.Second):
		t.Fatal("timed out waiting for a stream line")
		return sessLine{}, false
	}
}

// collectGeneration reads one full re-solve generation (rows + trailer)
// and verifies every row against Bellman-Ford on the mirror graph.
func collectGeneration(t *testing.T, ch <-chan sessLine, mirror *graph.Graph, seq uint64, dests []int) *SessionTrailer {
	t.Helper()
	rows := make([]DestResult, 0, len(dests))
	for {
		l, ok := nextLine(t, ch)
		if !ok {
			t.Fatalf("seq %d: stream ended after %d rows", seq, len(rows))
		}
		if l.errLine != nil {
			t.Fatalf("seq %d: stream error: %s", seq, l.errLine.Error)
		}
		if l.row != nil {
			if l.row.Seq != seq {
				t.Fatalf("row seq = %d, want %d", l.row.Seq, seq)
			}
			rows = append(rows, l.row.DestResult)
			continue
		}
		if l.trailer == nil {
			t.Fatalf("seq %d: unexpected line %+v", seq, l)
		}
		if l.trailer.Seq != seq || l.trailer.Rows != len(dests) {
			t.Fatalf("trailer = %+v, want seq %d with %d rows", l.trailer, seq, len(dests))
		}
		checkResponse(t, mirror, &SolveResponse{N: mirror.N, Results: rows}, dests)
		return l.trailer
	}
}

func createSession(t *testing.T, ts *httptest.Server, req SessionCreateRequest) (*SessionCreated, int, *ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return nil, resp.StatusCode, &er
	}
	var sc SessionCreated
	if err := json.NewDecoder(resp.Body).Decode(&sc); err != nil {
		t.Fatal(err)
	}
	return &sc, resp.StatusCode, nil
}

func postUpdate(t *testing.T, ts *httptest.Server, id string, ups []WireUpdate) (*UpdateAccepted, int, *ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(SessionUpdateRequest{Updates: ups})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/session/"+id+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		return nil, resp.StatusCode, &er
	}
	var ua UpdateAccepted
	if err := json.NewDecoder(resp.Body).Decode(&ua); err != nil {
		t.Fatal(err)
	}
	return &ua, resp.StatusCode, nil
}

func deleteSession(t *testing.T, ts *httptest.Server, id string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestSessionE2E is the dynamic-graph acceptance test: create a session,
// receive the creation-time rows, stream a sequence of weight-delta
// batches through it with every re-solved generation verified against
// Bellman-Ford on a client-side mirror, then close it gracefully and see
// the closed line and a pool return.
func TestSessionE2E(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		leakCheck(t, baseGoroutines)
	}()

	g := graph.GenRandomConnected(24, 0.2, 25, 9)
	mirror := g.Clone()
	dests := []int{0, 11, 23}
	sc, code, er := createSession(t, ts, SessionCreateRequest{Graph: rawGraph(t, g), Dests: dests})
	if code != http.StatusOK {
		t.Fatalf("create: status %d (%v)", code, er)
	}
	if sc.N != g.N || len(sc.SessionID) == 0 {
		t.Fatalf("created = %+v", sc)
	}

	ch := openSessionStream(t, ts, sc.SessionID)
	l, _ := nextLine(t, ch)
	if l.header == nil || l.header.SessionID != sc.SessionID {
		t.Fatalf("first line = %+v, want header for %s", l, sc.SessionID)
	}
	collectGeneration(t, ch, mirror, 0, dests)

	// A second stream consumer is rejected while this one lives.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/session/"+sc.SessionID+"/stream", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second stream: status %d, want 409", resp.StatusCode)
	}

	// Stream update batches: inserts, deletions, weight changes.
	batches := [][]WireUpdate{
		{{U: 0, V: 11, W: 1}},
		{{U: 0, V: 11, W: -1}, {U: 3, V: 23, W: 2}},
		{{U: 5, V: 6, W: 0}, {U: 6, V: 7, W: 4}, {U: 3, V: 23, W: 9}},
	}
	var warmIter, firstIter int
	for bi, b := range batches {
		ua, code, er := postUpdate(t, ts, sc.SessionID, b)
		if code != http.StatusOK {
			t.Fatalf("update %d: status %d (%v)", bi, code, er)
		}
		if ua.Seq != uint64(bi+1) {
			t.Fatalf("update %d: seq %d, want %d", bi, ua.Seq, bi+1)
		}
		ups := make([]graph.WeightUpdate, len(b))
		for i, u := range b {
			w := u.W
			if w == -1 {
				w = graph.NoEdge
			}
			ups[i] = graph.WeightUpdate{U: u.U, V: u.V, W: w}
		}
		if err := mirror.Apply(ups); err != nil {
			t.Fatal(err)
		}
		tr := collectGeneration(t, ch, mirror, ua.Seq, dests)
		if bi == 0 {
			firstIter = tr.Iterations
		}
		warmIter = tr.Iterations
	}
	if warmIter <= 0 || firstIter <= 0 {
		t.Fatalf("trailers reported no iterations")
	}

	if code := deleteSession(t, ts, sc.SessionID); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	for {
		l, ok := nextLine(t, ch)
		if !ok {
			t.Fatal("stream ended without a closed line")
		}
		if l.closed != nil {
			if !l.closed.Closed {
				t.Fatalf("closed line = %+v", l.closed)
			}
			break
		}
	}
	// The id is gone for every verb.
	if _, code, _ := postUpdate(t, ts, sc.SessionID, batches[0]); code != http.StatusNotFound {
		t.Fatalf("update after close: status %d, want 404", code)
	}
	if code := deleteSession(t, ts, sc.SessionID); code != http.StatusNotFound {
		t.Fatalf("delete after close: status %d, want 404", code)
	}
}

// TestSessionValidationAndQuotas covers the admission envelope: bad
// bodies and edits answer 400 synchronously, unknown ids 404, the session
// cap 429.
func TestSessionValidationAndQuotas(t *testing.T) {
	srv := New(Config{Workers: 1, MaxSessions: 1, MaxSessionDests: 2})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	g := graph.GenRandomConnected(8, 0.4, 9, 2)
	for _, bad := range []SessionCreateRequest{
		{Graph: rawGraph(t, g)},                                // no dests
		{Graph: rawGraph(t, g), Dests: []int{0, 1, 2}},         // too many dests
		{Graph: rawGraph(t, g), Dests: []int{8}},               // dest out of range
		{Dests: []int{0}},                                      // no graph
		{Graph: json.RawMessage(`{"n": -3}`), Dests: []int{0}}, // junk graph
	} {
		if _, code, _ := createSession(t, ts, bad); code != http.StatusBadRequest {
			t.Fatalf("create %+v: status %d, want 400", bad, code)
		}
	}

	sc, code, er := createSession(t, ts, SessionCreateRequest{Graph: rawGraph(t, g), Dests: []int{0}, Bits: 10})
	if code != http.StatusOK {
		t.Fatalf("create: status %d (%v)", code, er)
	}
	if _, code, _ = createSession(t, ts, SessionCreateRequest{Graph: rawGraph(t, g), Dests: []int{0}}); code != http.StatusTooManyRequests {
		t.Fatalf("create over cap: status %d, want 429", code)
	}

	for _, bad := range [][]WireUpdate{
		nil,                        // empty batch
		{{U: 0, V: 8, W: 1}},       // endpoint out of range
		{{U: 0, V: 1, W: -2}},      // negative weight that is not -1
		{{U: 0, V: 1, W: 1 << 40}}, // too wide for 10-bit words
	} {
		if _, code, _ := postUpdate(t, ts, sc.SessionID, bad); code != http.StatusBadRequest {
			t.Fatalf("update %+v: status %d, want 400", bad, code)
		}
	}
	if _, code, _ := postUpdate(t, ts, "deadbeef", []WireUpdate{{U: 0, V: 1, W: 1}}); code != http.StatusNotFound {
		t.Fatalf("update unknown id: status %d, want 404", code)
	}
	if code := deleteSession(t, ts, sc.SessionID); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
}

// TestSessionIdleEviction: an abandoned session is collected by the
// janitor and its id stops resolving.
func TestSessionIdleEviction(t *testing.T) {
	srv := New(Config{Workers: 1, SessionIdleTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	g := graph.GenRandomConnected(8, 0.4, 9, 3)
	sc, code, er := createSession(t, ts, SessionCreateRequest{Graph: rawGraph(t, g), Dests: []int{0}})
	if code != http.StatusOK {
		t.Fatalf("create: status %d (%v)", code, er)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, code, _ := postUpdate(t, ts, sc.SessionID, []WireUpdate{{U: 0, V: 1, W: 1}}); code == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session was never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSessionPanicIsolation: a panic while re-solving poisons only that
// session — its stream ends with an in-band error line, its fabric is
// not repooled, and the server keeps serving.
func TestSessionPanicIsolation(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	g := graph.GenRandomConnected(8, 0.4, 9, 4)
	sc, code, er := createSession(t, ts, SessionCreateRequest{Graph: rawGraph(t, g), Dests: []int{2}})
	if code != http.StatusOK {
		t.Fatalf("create: status %d (%v)", code, er)
	}
	ch := openSessionStream(t, ts, sc.SessionID)
	l, _ := nextLine(t, ch)
	if l.header == nil {
		t.Fatalf("first line = %+v", l)
	}
	collectGeneration(t, ch, g, 0, []int{2})

	armed := true
	srv.hookBeforeSolve = func(dest int) {
		if armed {
			armed = false
			panic(fmt.Sprintf("injected session panic at dest %d", dest))
		}
	}
	if _, code, er := postUpdate(t, ts, sc.SessionID, []WireUpdate{{U: 0, V: 2, W: 1}}); code != http.StatusOK {
		t.Fatalf("update: status %d (%v)", code, er)
	}
	sawError := false
	for {
		l, ok := nextLine(t, ch)
		if !ok {
			break
		}
		if l.errLine != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("poisoned stream ended without an error line")
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.sessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("poisoned session not removed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv.hookBeforeSolve = nil

	// The rest of the service is unharmed: a fresh session works.
	sc2, code, er := createSession(t, ts, SessionCreateRequest{Graph: rawGraph(t, g), Dests: []int{2}})
	if code != http.StatusOK {
		t.Fatalf("create after panic: status %d (%v)", code, er)
	}
	ch2 := openSessionStream(t, ts, sc2.SessionID)
	if l, _ := nextLine(t, ch2); l.header == nil {
		t.Fatalf("first line = %+v", l)
	}
	collectGeneration(t, ch2, g, 0, []int{2})
	if code := deleteSession(t, ts, sc2.SessionID); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
}

// TestSessionShutdownDrain: server shutdown finishes the accepted update
// work and ends every stream with a closed line.
func TestSessionShutdownDrain(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	g := graph.GenRandomConnected(12, 0.3, 9, 6)
	mirror := g.Clone()
	dests := []int{0, 5}
	sc, code, er := createSession(t, ts, SessionCreateRequest{Graph: rawGraph(t, g), Dests: dests})
	if code != http.StatusOK {
		t.Fatalf("create: status %d (%v)", code, er)
	}
	ch := openSessionStream(t, ts, sc.SessionID)
	if l, _ := nextLine(t, ch); l.header == nil {
		t.Fatalf("first line = %+v", l)
	}
	collectGeneration(t, ch, mirror, 0, dests)
	ua, code, er := postUpdate(t, ts, sc.SessionID, []WireUpdate{{U: 0, V: 5, W: 1}})
	if code != http.StatusOK {
		t.Fatalf("update: status %d (%v)", code, er)
	}
	if err := mirror.Apply([]graph.WeightUpdate{{U: 0, V: 5, W: 1}}); err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// The accepted batch's rows still arrive, then the closed line.
	collectGeneration(t, ch, mirror, ua.Seq, dests)
	sawClosed := false
	for {
		l, ok := nextLine(t, ch)
		if !ok {
			break
		}
		if l.closed != nil {
			sawClosed = true
		}
	}
	if !sawClosed {
		t.Fatal("drained stream ended without a closed line")
	}
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	// Post-shutdown, session creation is refused.
	if _, code, _ := createSession(t, ts, SessionCreateRequest{Graph: rawGraph(t, g), Dests: []int{0}}); code != http.StatusServiceUnavailable {
		t.Fatalf("create after shutdown: status %d, want 503", code)
	}
}

// TestSessionAllDests: a session created with "dests": "all" tracks every
// destination — the created body names 0..n-1, generation 0 carries the
// full table, and a warm generation after a batch is re-verified row by
// row. A no-op generation (an update that changes nothing reachable)
// still streams n rows but the trailer shows the skip-converged fast
// path: zero iterations.
func TestSessionAllDests(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	g := graph.GenRandomConnected(12, 0.3, 15, 21)
	mirror := g.Clone()
	sc, code, er := createSession(t, ts, SessionCreateRequest{Graph: rawGraph(t, g), AllDests: true})
	if code != http.StatusOK {
		t.Fatalf("create: status %d (%v)", code, er)
	}
	if len(sc.Dests) != g.N {
		t.Fatalf("created dests = %v, want 0..%d", sc.Dests, g.N-1)
	}
	for d, v := range sc.Dests {
		if v != d {
			t.Fatalf("created dests[%d] = %d", d, v)
		}
	}

	ch := openSessionStream(t, ts, sc.SessionID)
	if l, _ := nextLine(t, ch); l.header == nil {
		t.Fatalf("first line = %+v, want header", l)
	}
	collectGeneration(t, ch, mirror, 0, sc.Dests)

	// A real edit: every row re-verified against the mirror.
	ups := []WireUpdate{{U: 0, V: 5, W: 1}, {U: 7, V: 2, W: -1}}
	ua, code, er := postUpdate(t, ts, sc.SessionID, ups)
	if code != http.StatusOK {
		t.Fatalf("update: status %d (%v)", code, er)
	}
	gu := make([]graph.WeightUpdate, len(ups))
	for i, u := range ups {
		w := u.W
		if w == -1 {
			w = graph.NoEdge
		}
		gu[i] = graph.WeightUpdate{U: u.U, V: u.V, W: w}
	}
	if err := mirror.Apply(gu); err != nil {
		t.Fatal(err)
	}
	collectGeneration(t, ch, mirror, ua.Seq, sc.Dests)

	// Re-post the same weights: nothing changes, so every destination is
	// untouched by the delta and the whole generation is emitted from
	// retained rows without running the DP.
	ua, code, er = postUpdate(t, ts, sc.SessionID, ups)
	if code != http.StatusOK {
		t.Fatalf("no-op update: status %d (%v)", code, er)
	}
	tr := collectGeneration(t, ch, mirror, ua.Seq, sc.Dests)
	if tr.Iterations != 0 || tr.Cost.PEOps != 0 {
		t.Fatalf("no-op generation trailer = %+v, want zero iterations and cost", tr)
	}

	if code := deleteSession(t, ts, sc.SessionID); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
}

// TestSessionAllDestsAdmission: "all" is bounded by MaxDests, unknown
// dests keywords are rejected at decode time, and duplicate explicit
// dests are refused.
func TestSessionAllDestsAdmission(t *testing.T) {
	srv := New(Config{Workers: 1, MaxVertices: 64, MaxDests: 8, MaxSessionDests: 4})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	big := graph.GenChain(12, 3) // within MaxVertices, "all" beyond MaxDests
	if _, code, _ := createSession(t, ts, SessionCreateRequest{Graph: rawGraph(t, big), AllDests: true}); code != http.StatusBadRequest {
		t.Fatalf(`create "all" over MaxDests: status %d, want 400`, code)
	}

	small := graph.GenChain(6, 3)
	if _, code, _ := createSession(t, ts, SessionCreateRequest{Graph: rawGraph(t, small), Dests: []int{2, 0, 2}}); code != http.StatusBadRequest {
		t.Fatalf("create duplicate dests: status %d, want 400", code)
	}

	// "all" names more destinations than MaxSessionDests allows for an
	// explicit list — the keyword is bounded by MaxDests instead.
	sc, code, er := createSession(t, ts, SessionCreateRequest{Graph: rawGraph(t, small), AllDests: true})
	if code != http.StatusOK {
		t.Fatalf(`create "all": status %d (%v)`, code, er)
	}
	if len(sc.Dests) != small.N {
		t.Fatalf("created dests = %v, want all %d", sc.Dests, small.N)
	}
	if code := deleteSession(t, ts, sc.SessionID); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}

	body := fmt.Sprintf(`{"graph": %s, "dests": "everything"}`, rawGraph(t, small))
	resp, err := ts.Client().Post(ts.URL+"/v1/session", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown dests keyword: status %d, want 400", resp.StatusCode)
	}
}
